// Benchmarks regenerating every table and figure of the paper's evaluation
// (sections 7-8), plus ablations for the design choices called out in
// DESIGN.md. Efficiency/speedup numbers are emitted as custom metrics
// (b.ReportMetric), so `go test -bench=. -benchmem` prints the figures'
// headline values alongside this machine's real solver speeds.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fd"
	"repro/internal/fluid"
	"repro/internal/grid"
	"repro/internal/lbm"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/syncfile"
)

// ---------------------------------------------------------------------------
// Section 7 speed table: real solver speeds on this machine, in fluid
// nodes integrated per second, next to the paper's 39,132 nodes/s baseline.

func BenchmarkTableWorkstationSpeeds(b *testing.B) {
	par := fluid.DefaultParams()
	par.Nu = 0.05
	par.Eps = 0.01
	b.Run("LB2D", func(b *testing.B) {
		m := fluid.ChannelMask2D(128, 128)
		s, err := lbm.NewSolver2D(128, 128, par, func(x, y int) fluid.CellType { return m.At(x, y) })
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.StepSerial(true, false)
		}
		reportNodesPerSec(b, 128*128, "lb2d")
	})
	b.Run("FD2D", func(b *testing.B) {
		m := fluid.ChannelMask2D(128, 128)
		s, err := fd.NewSolver2D(128, 128, par, func(x, y int) fluid.CellType { return m.At(x, y) })
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.StepSerial(true, false)
		}
		reportNodesPerSec(b, 128*128, "fd2d")
	})
	b.Run("LB3D", func(b *testing.B) {
		m := fluid.ChannelMask3D(24, 24, 24)
		s, err := lbm.NewSolver3D(24, 24, 24, par, func(x, y, z int) fluid.CellType { return m.At(x, y, z) })
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.StepSerial(true, false, true)
		}
		reportNodesPerSec(b, 24*24*24, "lb3d")
	})
	b.Run("FD3D", func(b *testing.B) {
		m := fluid.ChannelMask3D(24, 24, 24)
		s, err := fd.NewSolver3D(24, 24, 24, par, func(x, y, z int) fluid.CellType { return m.At(x, y, z) })
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.StepSerial(true, false, true)
		}
		reportNodesPerSec(b, 24*24*24, "fd3d")
	})
}

func reportNodesPerSec(b *testing.B, nodes int, method string) {
	nps := float64(nodes) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(nps, "nodes/s")
	paper := cluster.BaseNodesPerSecond * cluster.HP715.SpeedFactor(method)
	b.ReportMetric(nps/paper, "x-715/50")
}

// ---------------------------------------------------------------------------
// CI benchmark trajectory: deterministic per-cell kernel cost of each
// solver at fixed worker budgets. Every b.N iteration integrates the
// same fixed number of steps on the same lattice, so the gated ns/cell
// metric is stable even at -benchtime 1x — this is what cmd/benchcmp
// compares against the committed BENCH_main.json. Worker sub-bench names
// avoid trailing numeric segments ("w4", not "4") so plain-text
// normalization can strip GOMAXPROCS suffixes unambiguously.

const stepKernelInner = 8 // fixed steps per b.N iteration

func reportNsPerCell(b *testing.B, nodes int) {
	cells := float64(nodes) * float64(b.N) * stepKernelInner
	b.ReportMetric(b.Elapsed().Seconds()*1e9/cells, "ns/cell")
	b.ReportMetric(cells/b.Elapsed().Seconds(), "nodes/s")
}

func BenchmarkStepKernels(b *testing.B) {
	par := fluid.DefaultParams()
	par.Nu = 0.05
	par.Eps = 0.01
	workerSet := []struct {
		name string
		n    int
	}{{"w1", 1}, {"w4", 4}}

	bench2D := func(b *testing.B, step func(int) interface {
		StepSerial(bool, bool)
		SetWorkers(int)
	}) {
		const nx, ny = 128, 128
		for _, w := range workerSet {
			b.Run(w.name, func(b *testing.B) {
				s := step(w.n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for k := 0; k < stepKernelInner; k++ {
						s.StepSerial(true, false)
					}
				}
				reportNsPerCell(b, nx*ny)
			})
		}
	}
	bench3D := func(b *testing.B, step func(int) interface {
		StepSerial(bool, bool, bool)
		SetWorkers(int)
	}) {
		const side = 24
		for _, w := range workerSet {
			b.Run(w.name, func(b *testing.B) {
				s := step(w.n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for k := 0; k < stepKernelInner; k++ {
						s.StepSerial(true, false, true)
					}
				}
				reportNsPerCell(b, side*side*side)
			})
		}
	}

	b.Run("LB2D", func(b *testing.B) {
		bench2D(b, func(workers int) interface {
			StepSerial(bool, bool)
			SetWorkers(int)
		} {
			m := fluid.ChannelMask2D(128, 128)
			s, err := lbm.NewSolver2D(128, 128, par, func(x, y int) fluid.CellType { return m.At(x, y) })
			if err != nil {
				b.Fatal(err)
			}
			s.SetWorkers(workers)
			return s
		})
	})
	b.Run("FD2D", func(b *testing.B) {
		bench2D(b, func(workers int) interface {
			StepSerial(bool, bool)
			SetWorkers(int)
		} {
			m := fluid.ChannelMask2D(128, 128)
			s, err := fd.NewSolver2D(128, 128, par, func(x, y int) fluid.CellType { return m.At(x, y) })
			if err != nil {
				b.Fatal(err)
			}
			s.SetWorkers(workers)
			return s
		})
	})
	b.Run("LB3D", func(b *testing.B) {
		bench3D(b, func(workers int) interface {
			StepSerial(bool, bool, bool)
			SetWorkers(int)
		} {
			m := fluid.ChannelMask3D(24, 24, 24)
			s, err := lbm.NewSolver3D(24, 24, 24, par, func(x, y, z int) fluid.CellType { return m.At(x, y, z) })
			if err != nil {
				b.Fatal(err)
			}
			s.SetWorkers(workers)
			return s
		})
	})
	b.Run("FD3D", func(b *testing.B) {
		bench3D(b, func(workers int) interface {
			StepSerial(bool, bool, bool)
			SetWorkers(int)
		} {
			m := fluid.ChannelMask3D(24, 24, 24)
			s, err := fd.NewSolver3D(24, 24, 24, par, func(x, y, z int) fluid.CellType { return m.At(x, y, z) })
			if err != nil {
				b.Fatal(err)
			}
			s.SetWorkers(workers)
			return s
		})
	})
}

// ---------------------------------------------------------------------------
// Figures 5-8: 2D efficiency and speedup versus subregion size.

func benchFig2D(b *testing.B, method string, speedup bool) {
	var last []perf.Series
	for i := 0; i < b.N; i++ {
		var err error
		if speedup {
			last, err = perf.FigSpeedup2D(method)
		} else {
			last, err = perf.FigEfficiency2D(method)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline metrics: the (5x4) curve at sqrt(N) = 100 and 300.
	curve := last[len(last)-1].Points
	b.ReportMetric(curve[4].Y, "at100")
	b.ReportMetric(curve[len(curve)-1].Y, "at300")
}

func BenchmarkFig5EfficiencyLB2D(b *testing.B) { benchFig2D(b, perf.LB2D, false) }
func BenchmarkFig6SpeedupLB2D(b *testing.B)    { benchFig2D(b, perf.LB2D, true) }
func BenchmarkFig7EfficiencyFD2D(b *testing.B) { benchFig2D(b, perf.FD2D, false) }
func BenchmarkFig8SpeedupFD2D(b *testing.B)    { benchFig2D(b, perf.FD2D, true) }

// ---------------------------------------------------------------------------
// Figure 9: scaled problem, 2D versus 3D on the shared bus.

func BenchmarkFig9Efficiency2Dvs3D(b *testing.B) {
	var last []perf.Series
	for i := 0; i < b.N; i++ {
		var err error
		last, err = perf.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	p20 := len(last[0].Points) - 1
	b.ReportMetric(last[0].Points[p20].Y, "2D-P20")
	b.ReportMetric(last[1].Points[p20].Y, "3D-P20")
}

// ---------------------------------------------------------------------------
// Figures 10-11: 3D efficiency and network-bound speedup.

func BenchmarkFig10Efficiency3D(b *testing.B) {
	var last []perf.Series
	for i := 0; i < b.N; i++ {
		var err error
		last, err = perf.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := last[0].Points
	b.ReportMetric(pts[len(pts)-1].Y, "2x2x2-at40")
}

func BenchmarkFig11Speedup3D(b *testing.B) {
	var last []perf.Series
	for i := 0; i < b.N; i++ {
		var err error
		last, err = perf.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	// The network bottleneck: the finest decomposition's best speedup.
	best := 0.0
	for _, p := range last[len(last)-1].Points {
		if p.Y > best {
			best = p.Y
		}
	}
	b.ReportMetric(best, "best-speedup")
}

// ---------------------------------------------------------------------------
// Figures 12-13: the closed-form model.

func BenchmarkFig12ModelEfficiency2D(b *testing.B) {
	var last []perf.Series
	for i := 0; i < b.N; i++ {
		last = perf.Fig12()
	}
	b.ReportMetric(last[3].Points[4].Y, "P20-at100")
}

func BenchmarkFig13ModelEfficiencyVsP(b *testing.B) {
	var last []perf.Series
	for i := 0; i < b.N; i++ {
		last = perf.Fig13()
	}
	n2 := len(last[0].Points) - 1
	b.ReportMetric(last[0].Points[n2].Y, "2D-P20")
	b.ReportMetric(last[1].Points[n2].Y, "3D-P20")
}

// ---------------------------------------------------------------------------
// Section 5.1: migration cost, measured through the real protocol.

func BenchmarkMigrationOverhead(b *testing.B) {
	d, err := decomp.New2D(2, 2, 32, 24, decomp.Full)
	if err != nil {
		b.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.ForceX = 1e-5
	var protocol time.Duration
	for i := 0; i < b.N; i++ {
		cfg := &core.Config2D{Method: core.MethodLB, Par: par, Mask: fluid.ChannelMask2D(32, 24), D: d}
		sf, err := syncfile.New(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sf.Poll = time.Millisecond
		job, _, err := core.NewJob2D(cfg, core.HubFactory(), sf, 60)
		if err != nil {
			b.Fatal(err)
		}
		job.Start()
		t0 := time.Now()
		if err := job.MigrateRanks([]int{1}, nil); err != nil {
			b.Fatal(err)
		}
		protocol += time.Since(t0)
		if err := job.WaitDone(); err != nil {
			b.Fatal(err)
		}
		job.Shutdown()
	}
	b.ReportMetric(protocol.Seconds()/float64(b.N), "protocol-s")
	b.ReportMetric(model.MigrationOverhead(30, 45*60), "paper-frac")
}

// ---------------------------------------------------------------------------
// Appendix C ablation: FCFS versus strict-order communication.

func BenchmarkAblationFCFSvsStrictOrder(b *testing.B) {
	var fcfs, strict float64
	for i := 0; i < b.N; i++ {
		var err error
		fcfs, strict, err = perf.AblationFCFS(10, 120, 0.1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(strict/fcfs, "strict/fcfs")
}

// ---------------------------------------------------------------------------
// Appendix E ablation: array lengths near multiples of the 4096-byte page
// size versus the padded lengths AvoidPageResonance produces. On the
// paper's HP9000/700s the resonant length halved the speed; the metric
// shows what this machine's prefetcher does with the same access pattern.

func BenchmarkAblationArrayPadding(b *testing.B) {
	const rows, cols = 512, 512 // 512*8 bytes per row = exactly one page
	traverse := func(stride int, data []float64) float64 {
		// Column-major walk: consecutive accesses are one stride apart,
		// the pattern that resonates with page-aligned rows.
		s := 0.0
		for x := 0; x < cols; x++ {
			for y := 0; y < rows; y++ {
				s += data[y*stride+x]
			}
		}
		return s
	}
	b.Run("resonant", func(b *testing.B) {
		data := make([]float64, rows*cols)
		sink := 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += traverse(cols, data)
		}
		_ = sink
		b.ReportMetric(float64(rows*cols)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
	})
	b.Run("padded", func(b *testing.B) {
		stride := grid.AvoidPageResonance(cols)
		data := make([]float64, rows*stride)
		sink := 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += traverse(stride, data)
		}
		_ = sink
		b.ReportMetric(float64(rows*cols)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
	})
}

// ---------------------------------------------------------------------------
// Real concurrency: actual speedup of the goroutine-parallel driver over
// the sequential executor on this machine (not a paper figure, but the
// modern analogue of the whole exercise).

func BenchmarkParallelDriverRealSpeedup(b *testing.B) {
	mkCfg := func(st decomp.Stencil, jx, jy int) *core.Config2D {
		d, err := decomp.New2D(jx, jy, 256, 256, st)
		if err != nil {
			b.Fatal(err)
		}
		d.PeriodicX = true
		par := fluid.DefaultParams()
		par.Nu = 0.1
		par.ForceX = 1e-6
		return &core.Config2D{Method: core.MethodLB, Par: par, Mask: fluid.ChannelMask2D(256, 256), D: d}
	}
	const steps = 10
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunSequential2D(mkCfg(decomp.Full, 4, 2), steps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-8workers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunParallel2D(mkCfg(decomp.Full, 4, 2), steps, core.HubFactory()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Transport microbenchmarks: the custom messaging layer.

func BenchmarkHaloExchangeRoundTrip(b *testing.B) {
	for _, l := range []int{50, 100, 300} {
		b.Run(fmt.Sprintf("side-%d", l), func(b *testing.B) {
			// One LB halo message pack/unpack pair at side length l.
			par := fluid.DefaultParams()
			m := fluid.ChannelMask2D(l, l)
			s, err := lbm.NewSolver2D(l, l, par, func(x, y int) fluid.CellType { return m.At(x, y) })
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]float64, 0, 4*l)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = s.Pack(0, decomp.East, buf[:0])
				s.Unpack(0, decomp.West, buf)
			}
			b.SetBytes(int64(8 * len(buf)))
		})
	}
}

// BenchmarkBusSimulation measures the discrete-event engine itself.
func BenchmarkBusSimulation(b *testing.B) {
	d, err := decomp.New2D(5, 4, 500, 400, decomp.Full)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := perf.Build2D(d, perf.LB2D, perf.PaperHosts(20))
	if err != nil {
		b.Fatal(err)
	}
	bus := netsim.DefaultEthernet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perf.Run(&perf.Spec{Workers: specs, Steps: 20, Bus: bus}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Extensions: the conclusion's network outlook and the section-1.1
// load-balancing comparison.

func BenchmarkFutureNetworks(b *testing.B) {
	var last []perf.Series
	for i := 0; i < b.N; i++ {
		var err error
		last, err = perf.FutureNetworks()
		if err != nil {
			b.Fatal(err)
		}
	}
	at16 := func(s perf.Series) float64 {
		for _, p := range s.Points {
			if p.X == 16 {
				return p.Y
			}
		}
		return 0
	}
	b.ReportMetric(at16(last[0]), "bus-P16")
	b.ReportMetric(at16(last[1]), "switch-P16")
	b.ReportMetric(at16(last[3]), "atm-P16")
}

func BenchmarkDynamicVsMigration(b *testing.B) {
	var ig, mig, dyn float64
	for i := 0; i < b.N; i++ {
		var err error
		ig, mig, dyn, err = perf.DynamicVsMigration(10, 120, 5000, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ig, "ignore")
	b.ReportMetric(mig, "migrate")
	b.ReportMetric(dyn, "dynamic")
}
