// Package repro reproduces P. A. Skordos, "Parallel simulation of subsonic
// fluid dynamics on a cluster of workstations" (MIT AI Memo 1485, 1994;
// HPDC 1995): a distributed fluid-dynamics system for non-dedicated
// workstations built from explicit local-interaction numerical methods
// (finite differences and lattice Boltzmann), static rectangular domain
// decomposition with ghost-cell exchange, TCP messaging with a shared-file
// port registry, and automatic migration of parallel processes from busy
// hosts to free hosts — extended into a multi-job simulation farm that
// reuses the migration protocol for preemption.
//
// The farm package at the module root is the supported public surface
// for running a simulation farm: functional-option construction, typed
// job handles, sentinel errors, a context-aware lifecycle and a
// structured event stream over the internal scheduler.
//
// The rest of the library lives under internal/; see README.md for the
// architecture
// and package map, DESIGN.md for the per-experiment index, and
// EXPERIMENTS.md for how to run the evaluation and what to expect. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.
package repro
