package main

import (
	"time"

	"repro/internal/cluster"
)

// quietPaperPool returns the paper's 25-host pool with half an hour of
// idle time elapsed, so the load averages have decayed and every user
// counts as idle — the common starting condition of the farm, reclaim,
// crash and hetero scenes. Factoring it here keeps the experiments'
// pools from drifting apart.
func quietPaperPool() *cluster.Cluster {
	c := cluster.NewPaperCluster()
	c.Advance(30 * time.Minute)
	return c
}
