package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"repro/farm"
	"repro/internal/ckpt"
	"repro/internal/cluster"
)

// crashStorm scripts deterministic user activity from nothing but the
// virtual time and the observable cluster state: every ten minutes a
// user sits down at the first reserved, un-reclaimed workstation (scan
// order), and at every ten-minutes-plus-five mark the first returned
// user packs up again. Because it keeps no state of its own, the exact
// same function can be re-attached to a farm restored from a
// checkpoint — the restored cluster snapshot makes it take the same
// decisions the dead coordinator's copy would have.
func crashStorm(t time.Duration, c *cluster.Cluster) {
	switch {
	case t > 0 && t%(10*time.Minute) == 0:
		for _, h := range c.Hosts {
			if h.Assigned() >= 0 && !h.Reclaimed() {
				c.Reclaim(h)
				return
			}
		}
	case t > 5*time.Minute && t%(10*time.Minute) == 5*time.Minute:
		for _, h := range c.Hosts {
			if h.Reclaimed() && h.Jobs() > 0 {
				c.UserGone(h)
				return
			}
		}
	}
}

// crashRecovery is the coordinator-crash experiment: the reclaim-storm
// workload runs twice on the same seed — once uninterrupted, once
// checkpointed to disk twelve minutes in and then killed mid-storm. A
// fresh farm restored from the checkpoint directory finishes the second
// run, and the two summaries must match bit for bit: the manifest
// carries the virtual clock, RNG state, queue order, per-job accounting
// and full cluster snapshot, so recovery replays the exact future the
// crash stole. Any mismatch is a fatal error (CI runs this as a smoke
// test).
func crashRecovery() {
	const crashAt = 12 * time.Minute
	header("Coordinator crash recovery: checkpoint mid-storm, kill, restore (seed 1, FIFO)")
	specs := stormMix()
	fmt.Printf("%d jobs; a user reclaims a reserved host every 10 virtual minutes and\n", len(specs))
	fmt.Printf("leaves at the +5 marks; the coordinator dies at t=%v and is restored\n\n", crashAt)

	setup := func(scenario func(time.Duration, *cluster.Cluster)) *farm.Farm {
		f, err := farm.New(quietPaperPool(),
			farm.WithSeed(1),
			farm.WithScenario(time.Minute, scenario))
		if err != nil {
			log.Fatal(err)
		}
		for _, sp := range specs {
			if _, err := f.Submit(sp, nil); err != nil {
				log.Fatal(err)
			}
		}
		f.Drain()
		return f
	}

	// The uninterrupted reference.
	want, err := setup(crashStorm).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The doomed coordinator: same trace, but at crashAt it persists the
	// farm and "dies" (the in-memory farm is discarded).
	dir, err := os.MkdirTemp("", "fluidsim-crash-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	var doomed *farm.Farm
	crashed := false
	doomed = setup(func(t time.Duration, c *cluster.Cluster) {
		crashStorm(t, c)
		if t >= crashAt && !crashed {
			crashed = true
			if err := doomed.Checkpoint(dir); err != nil {
				log.Fatal(err)
			}
			doomed.Interrupt()
		}
	})
	if _, err := doomed.Run(context.Background()); !errors.Is(err, farm.ErrInterrupted) {
		log.Fatalf("crashed run: %v (want ErrInterrupted)", err)
	}
	doomed.Drain() // hand the doomed pool's reservations back (idempotent)

	m, err := ckpt.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	byPhase := map[string]int{}
	for _, jr := range m.Jobs {
		byPhase[jr.Phase]++
	}
	fmt.Printf("checkpoint at t=%v: %d jobs (%d running, %d queued, %d pending, %d finished), %d reclaims so far\n",
		m.SavedAt, len(m.Jobs), byPhase[ckpt.PhaseRunning], byPhase[ckpt.PhaseQueued],
		byPhase[ckpt.PhasePending], byPhase[ckpt.PhaseFinished], m.Reclaims)

	// Recovery: a fresh pool, a restored farm, the same stateless
	// scenario re-attached — and the tail of the storm replayed.
	restored, err := farm.Restore(dir, cluster.NewPaperCluster(), nil,
		farm.WithScenario(time.Minute, crashStorm))
	if err != nil {
		log.Fatal(err)
	}
	got, err := restored.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %12s %12s %12s %9s %9s %9s\n",
		"run", "makespan", "mean wait", "max wait", "util", "reclaims", "migr")
	for _, row := range []struct {
		name string
		sum  farm.Summary
	}{{"uninterrupted", want}, {"restored", got}} {
		fmt.Printf("%-14s %12s %12s %12s %9.3f %9d %9d\n",
			row.name, row.sum.Makespan.Round(time.Second), row.sum.MeanWait.Round(time.Second),
			row.sum.MaxWait.Round(time.Second), row.sum.Utilization, row.sum.Reclaims, row.sum.Migrations)
	}

	if !reflect.DeepEqual(want, got) {
		log.Fatalf("IDENTITY MISMATCH: the restored farm's summary differs from the uninterrupted run\nwant:\n%v\ngot:\n%v", want, got)
	}
	fmt.Println("\nevery per-job field and aggregate metric of the restored run is")
	fmt.Println("bit-identical to the uninterrupted one: the manifest (virtual clock,")
	fmt.Println("RNG state, queue order, fair-share credit, cluster snapshot) plus the")
	fmt.Println("per-rank dump files are a complete coordinator state.")
}
