package main

import (
	"fmt"
	"log"
	"time"

	"repro/farm"
	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/perf"
)

// uniformPricing prices every placement with the uniform
// (identical-spans) decomposition regardless of the job's chosen shape —
// the pre-weighting behaviour, kept as the experiment's baseline.
func uniformPricing(spec farm.JobSpec, _ decomp.Shape, hosts []*cluster.Host) (float64, error) {
	return farm.ComputeTimer(spec, decomp.Shape{}, hosts)
}

// hetero compares uniform and speed-weighted decomposition on
// mixed-model placements: per-step compute and perf-engine prices with
// their load-imbalance ratios, then a full farm replay priced both ways.
// It exits non-zero when weighting regresses — a weighted step not
// strictly cheaper than the uniform one on a mixed placement, or a
// weighted imbalance ratio drifting from balance — so CI runs it as a
// smoke test.
func hetero() {
	header("Heterogeneous pool: uniform vs speed-weighted decomposition")
	fmt.Println("spans sized by per-rank host speed (section 7's 715/720/710 mix);")
	fmt.Println("uniform splitting runs every job at its slowest host's pace")
	fmt.Println()

	host := func(m cluster.Model, i int) *cluster.Host {
		return cluster.NewHost(fmt.Sprintf("%v-%02d", m, i), m)
	}
	cases := []struct {
		name  string
		spec  farm.JobSpec
		hosts []*cluster.Host
	}{
		{"(4x1) lb2d chain", farm.JobSpec{ID: "chain", Method: "lb2d", JX: 4, JY: 1, Side: 40, Steps: 1},
			[]*cluster.Host{host(cluster.HP715, 0), host(cluster.HP715, 1), host(cluster.HP720, 2), host(cluster.HP710, 3)}},
		{"(5x4) lb2d wide", farm.JobSpec{ID: "wide", Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 1},
			perf.PaperHosts(20)}, // 16x 715 + 4x 720
		{"(2x1x1) lb3d box", farm.JobSpec{ID: "box", Method: "lb3d", JX: 2, JY: 1, JZ: 1, Side: 25, Steps: 1},
			[]*cluster.Host{host(cluster.HP715, 0), host(cluster.HP710, 1)}},
	}

	fmt.Printf("%-18s %-9s %14s %14s %10s\n", "job", "decomp", "compute s/step", "perf s/step", "imbalance")
	perfTimer := farm.PerfTimer(perf.Ethernet)
	for _, tc := range cases {
		wsh, err := farm.WeightedShape(tc.spec, tc.hosts)
		if err != nil {
			log.Fatal(err)
		}
		row := func(label string, sh decomp.Shape) (compute, imb float64) {
			compute, err := farm.ComputeTimer(tc.spec, sh, tc.hosts)
			if err != nil {
				log.Fatal(err)
			}
			net, err := perfTimer(tc.spec, sh, tc.hosts)
			if err != nil {
				log.Fatal(err)
			}
			imb, err = farm.Imbalance(tc.spec, sh, tc.hosts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %-9s %14.4f %14.4f %10.3f\n", tc.name, label, compute, net, imb)
			return compute, imb
		}
		uniSec, uniImb := row("uniform", decomp.Shape{})
		wSec, wImb := row("weighted", wsh)
		fmt.Printf("%-18s compute speedup %.3fx\n", "", uniSec/wSec)

		// The CI gates: weighting must strictly beat the uniform split on
		// every mixed placement and land near perfect balance.
		if !(wSec < uniSec) {
			log.Fatalf("REGRESSION: weighted step %.6f not strictly below uniform %.6f for %s", wSec, uniSec, tc.name)
		}
		if !(wImb < uniImb) {
			log.Fatalf("REGRESSION: weighted imbalance %.4f not below uniform %.4f for %s", wImb, uniImb, tc.name)
		}
		if wImb > 1.10 {
			log.Fatalf("REGRESSION: weighted imbalance %.4f above the 1.10 ceiling for %s", wImb, tc.name)
		}
	}

	fmt.Println("\nfarm replay on the paper pool (seed 1, FIFO), same trace priced")
	fmt.Println("uniform vs weighted (jobs on mixed-model reservations benefit):")
	fmt.Printf("\n%-10s %12s %12s %12s %9s %15s\n",
		"pricing", "makespan", "mean wait", "util", "weighted", "imbalance (max)")
	replay := func(label string, timer farm.StepTimer) farm.Summary {
		sum, err := farm.Replay(quietPaperPool(), farm.FIFO, 1, timer, farmMix())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12s %12s %12.3f %9d %15.3f\n",
			label, sum.Makespan.Round(time.Second), sum.MeanWait.Round(time.Second),
			sum.Utilization, sum.Weighted, sum.MaxImbalance)
		return sum
	}
	uni := replay("uniform", uniformPricing)
	w := replay("weighted", nil)
	if w.Makespan > uni.Makespan {
		log.Fatalf("REGRESSION: weighted pricing lengthened the farm makespan (%v > %v)", w.Makespan, uni.Makespan)
	}

	fmt.Println("\nweighted spans keep subregions lattice-aligned, so the halo-exchange")
	fmt.Println("topology — and the bitwise reproducibility guarantees — are unchanged;")
	fmt.Println("equal-speed pools reproduce the uniform decomposition bit for bit.")
}
