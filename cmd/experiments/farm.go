package main

import (
	"fmt"
	"log"
	"time"

	"repro/farm"
	"repro/internal/perf"
)

// farmMix is the reproducible workload of the farm experiment: eight jobs
// built from the example setups — 2D LB ducts (examples/fluepipe and the
// figure-5 scaling duct), 3D boxes (examples/duct3d), 2D FD acoustics
// (examples/acoustics) — with mixed sizes, tenants and priorities
// arriving over the first simulated hour.
func farmMix() []farm.JobSpec {
	return []farm.JobSpec{
		{ID: "duct-wide", User: "cfd", Method: "lb2d", JX: 5, JY: 4, Side: 40,
			Steps: 8000, Priority: 1, Weight: 2},
		{ID: "duct-quad", User: "cfd", Method: "lb2d", JX: 2, JY: 2, Side: 40,
			Steps: 12000, Priority: 1, Weight: 2},
		{ID: "probe-serial", User: "cal", Method: "fd2d", JX: 1, JY: 1, Side: 64,
			Steps: 12000, Priority: 0, Weight: 1},
		{ID: "box3d", User: "cfd", Method: "lb3d", JX: 2, JY: 2, JZ: 2, Side: 16,
			Steps: 3000, Priority: 1, Weight: 2, Submit: 4 * time.Minute},
		{ID: "acoustics", User: "ac", Method: "fd2d", JX: 3, JY: 3, Side: 30,
			Steps: 8000, Priority: 3, Weight: 1, Submit: 6 * time.Minute},
		{ID: "urgent-duct", User: "ops", Method: "lb2d", JX: 4, JY: 4, Side: 20,
			Steps: 4000, Priority: 9, Weight: 4, Submit: 8 * time.Minute},
		{ID: "grand-duct", User: "cfd", Method: "lb2d", JX: 6, JY: 4, Side: 40,
			Steps: 2000, Priority: 5, Weight: 2, Submit: 12 * time.Minute},
		{ID: "tail-probe", User: "cal", Method: "fd2d", JX: 1, JY: 1, Side: 40,
			Steps: 8000, Priority: 0, Weight: 1, Submit: 15 * time.Minute},
	}
}

// farmExp compares the three queueing policies on the fixed workload
// mix, replayed deterministically in virtual time on the paper's
// 25-host pool with the perf engine pricing each job's steps (compute +
// halo exchange on the modelled Ethernet).
func farmExp() {
	header("Simulation farm: FIFO vs priority vs weighted-fair (seed 1)")
	fmt.Printf("%d jobs on the 25-host pool; step times from the perf engine\n\n", len(farmMix()))
	fmt.Printf("%-10s %12s %12s %12s %12s %9s %9s\n",
		"policy", "makespan", "mean wait", "max wait", "util", "preempts", "bfills")
	var prioSum fmt.Stringer
	for _, pol := range []farm.Policy{farm.FIFO, farm.Priority, farm.WeightedFair} {
		sum, err := farm.Replay(quietPaperPool(), pol, 1, farm.PerfTimer(perf.Ethernet), farmMix())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12s %12s %12s %12.3f %9d %9d\n",
			pol, sum.Makespan.Round(time.Second), sum.MeanWait.Round(time.Second),
			sum.MaxWait.Round(time.Second), sum.Utilization, sum.Preemptions, sum.Backfills)
		if pol == farm.Priority {
			prioSum = sum
		}
	}
	fmt.Println("\nper-job detail under the priority policy:")
	fmt.Print(prioSum)
	fmt.Println("\npreemption suspends a job through the section-5.1 migration dump")
	fmt.Println("and resumes it later — the preempted simulation's results stay")
	fmt.Println("bit-identical (internal/sched TestFarmPreemptsRealCoreJob).")
}
