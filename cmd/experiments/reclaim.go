package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/farm"
	"repro/internal/cluster"
)

// stormMix is the reclaim-storm workload: a 20-rank head job arrives two
// minutes in behind a steady stream of 8-rank jobs — the EASY-versus-
// aggressive starvation scenario — while users keep taking workstations
// back from under the running jobs. The head stays narrower than the
// pool minus the reclaimed hosts, so its projected start remains
// computable and the EASY reservation can bite.
func stormMix() []farm.JobSpec {
	specs := []farm.JobSpec{
		{ID: "head-wide", Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 6000,
			Submit: 2 * time.Minute},
	}
	for k := 0; k < 8; k++ {
		specs = append(specs, farm.JobSpec{
			ID:     fmt.Sprintf("small-%d", k),
			Method: "lb2d", JX: 4, JY: 2, Side: 40, Steps: 15000,
			Submit: time.Duration(k) * 5 * time.Minute,
		})
	}
	return specs
}

// reclaimStorm runs the online farm through a scripted storm of users
// returning to reserved workstations: every ten virtual minutes a user
// sits down at a busy host (and leaves half an hour later). The farm
// reacts within the same scheduling round — the displaced rank migrates
// through the section-5.1 dump/rebuild path and the job is repriced on
// its patched placement — instead of squatting beside the user. The same
// trace replays under EASY and aggressive backfill, exposing the
// head-of-line starvation EASY closes.
func reclaimStorm() {
	header("Reclaim storm: users take hosts back mid-run (seed 1, FIFO)")
	fmt.Printf("%d jobs; a user reclaims one reserved host every 10 virtual minutes\n", len(stormMix()))
	fmt.Printf("and leaves 30 minutes later; displaced ranks migrate the same round\n\n")
	fmt.Printf("%-12s %12s %12s %12s %9s %9s %9s %9s %9s\n",
		"backfill", "makespan", "mean wait", "head wait", "util", "bfills", "reclaims", "migr", "repriced")
	for _, mode := range []farm.BackfillMode{farm.BackfillEASY, farm.BackfillAggressive} {
		reclaimAt := make(map[*cluster.Host]time.Duration)
		f, err := farm.New(quietPaperPool(),
			farm.WithSeed(1),
			farm.WithBackfill(mode),
			farm.WithScenario(time.Minute, func(t time.Duration, c *cluster.Cluster) {
				for h, at := range reclaimAt {
					if at >= 0 && t-at >= 30*time.Minute {
						c.UserGone(h)
						reclaimAt[h] = -1 // gone; don't release twice
					}
				}
				if t%(10*time.Minute) != 0 {
					return
				}
				for _, h := range c.Hosts { // deterministic scan order
					if h.Assigned() >= 0 && !h.Reclaimed() {
						c.Reclaim(h)
						reclaimAt[h] = t
						return
					}
				}
			}))
		if err != nil {
			log.Fatal(err)
		}
		var head *farm.Job
		for _, sp := range stormMix() {
			j, err := f.Submit(sp, nil)
			if err != nil {
				log.Fatal(err)
			}
			if sp.ID == "head-wide" {
				head = j
			}
		}
		f.Drain()
		sum, err := f.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		headRec, ok := head.Metrics()
		if !ok {
			log.Fatalf("head-wide has no metrics after the run (status %v)", head.Status())
		}
		fmt.Printf("%-12s %12s %12s %12s %9.3f %9d %9d %9d %9d\n",
			mode, sum.Makespan.Round(time.Second), sum.MeanWait.Round(time.Second),
			headRec.Wait().Round(time.Second), sum.Utilization,
			sum.Backfills, sum.Reclaims, sum.Migrations, sum.Repricings)
	}
	fmt.Println("\nEASY backfill holds the wide head's projected start (computed from the")
	fmt.Println("running jobs' virtual finish times) and only backfills jobs that finish")
	fmt.Println("before it; aggressive backfill lets the small-job stream starve the head.")
	fmt.Println("Either way every reclaimed host is vacated in the round the user returns.")
}
