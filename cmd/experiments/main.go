// Command experiments regenerates every table and figure of the paper's
// evaluation (sections 7-8) from this reproduction's performance plane:
// the virtual HP-workstation pool, the shared-bus Ethernet model and the
// closed-form efficiency model. Absolute times are the calibrated 1994
// constants (39,132 nodes/s per 715/50, 10 Mbps bus); the shapes are the
// experiment.
//
// Usage:
//
//	go run ./cmd/experiments              # everything
//	go run ./cmd/experiments -exp=fig5    # one experiment
//
// Experiments: speed-table, mtable, fig5, fig6, fig7, fig8, fig9, fig10,
// fig11, fig12, fig13, ablation, migration, convergence, networks
// (the conclusion's switched/FDDI/ATM outlook), balancing (section 1.1's
// migration-versus-dynamic-allocation comparison), farm (the multi-job
// scheduler: FIFO vs priority vs weighted-fair on a fixed workload mix),
// reclaim (the online farm under a storm of users taking reserved hosts
// back: same-round migration off reclaimed hosts, repricing, EASY vs
// aggressive backfill), crash (coordinator crash recovery: checkpoint
// the farm mid-storm, kill it, restore from disk and finish
// bit-identically), hetero (uniform vs speed-weighted decomposition on
// mixed-model placements; exits non-zero on an imbalance regression),
// sweep (the scenario engine: seeded workload specs fanned across seeds
// and policy/backfill knobs, every cell trace-verified — exits non-zero
// on a replay divergence — emitting the summary table as text and JSON;
// see -sweep-seeds and -sweep-out), autoscale (malleable jobs: the
// supply/demand control loop vs static ranks on a diurnal-churn
// workload, both runs trace-verified; exits non-zero unless the
// autoscaler improves makespan or utilization; see -autoscale-seed).
// `-list` prints the available names sorted, one per line.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/fd"
	"repro/internal/fluid"
	"repro/internal/lbm"
	"repro/internal/perf"
	"repro/internal/viz"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "print the available experiment names (sorted) and exit")
	flag.Parse()

	all := map[string]func(){
		"speed-table": speedTable,
		"mtable":      mTable,
		"fig5":        func() { figure2D("Figure 5: 2D LB efficiency vs sqrt(N)", perf.LB2D, false) },
		"fig6":        func() { figure2D("Figure 6: 2D LB speedup vs sqrt(N)", perf.LB2D, true) },
		"fig7":        func() { figure2D("Figure 7: 2D FD efficiency vs sqrt(N)", perf.FD2D, false) },
		"fig8":        func() { figure2D("Figure 8: 2D FD speedup vs sqrt(N)", perf.FD2D, true) },
		"fig9":        fig9,
		"fig10":       fig10,
		"fig11":       fig11,
		"fig12":       fig12,
		"fig13":       fig13,
		"ablation":    ablation,
		"migration":   migration,
		"convergence": convergence,
		"networks":    futureNetworks,
		"balancing":   balancing,
		"farm":        farmExp,
		"reclaim":     reclaimStorm,
		"crash":       crashRecovery,
		"hetero":      hetero,
		"sweep":       sweep,
		"autoscale":   autoscaleExp,
	}
	order := []string{
		"speed-table", "mtable", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "ablation", "migration", "convergence",
		"networks", "balancing", "farm", "reclaim", "crash", "hetero",
		"sweep", "autoscale",
	}
	if *list {
		names := make([]string, 0, len(all))
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(name)
		}
		return
	}
	if *exp == "all" {
		for _, name := range order {
			all[name]()
		}
		return
	}
	fn, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s all\n", *exp, strings.Join(order, " "))
		os.Exit(2)
	}
	fn()
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n\n", title)
}

// speedTable reprints the section-7 workstation speed table (the paper's
// measured calibration, which the virtual cluster embeds) and measures the
// actual speed of this reproduction's Go solvers on the current machine
// for comparison.
func speedTable() {
	header("Section 7 speed table: relative speeds (1.0 = 39,132 fluid nodes/s)")
	fmt.Printf("%-8s %10s %10s %10s\n", "method", "715/50", "710", "720")
	for _, m := range []string{"lb2d", "lb3d", "fd2d", "fd3d"} {
		fmt.Printf("%-8s %10.2f %10.2f %10.2f\n", m,
			cluster.HP715.SpeedFactor(m), cluster.HP710.SpeedFactor(m), cluster.HP720.SpeedFactor(m))
	}
	fmt.Println("\nthis machine's Go solvers (fluid nodes integrated per second):")
	fmt.Printf("%-8s %14s %14s\n", "method", "nodes/s", "vs 715/50")
	for _, m := range []string{"lb2d", "fd2d", "lb3d", "fd3d"} {
		sp := measureSolver(m)
		fmt.Printf("%-8s %14.0f %13.1fx\n", m, sp, sp/(cluster.BaseNodesPerSecond*cluster.HP715.SpeedFactor(m)))
	}
}

// measureSolver times a short serial run of a solver and returns nodes/s.
func measureSolver(method string) float64 {
	par := fluid.DefaultParams()
	par.Nu = 0.05
	par.Eps = 0.01
	const steps = 50
	switch method {
	case "lb2d":
		m := fluid.ChannelMask2D(128, 128)
		s, _ := lbm.NewSolver2D(128, 128, par, func(x, y int) fluid.CellType { return m.At(x, y) })
		return timeSteps(steps, 128*128, func() { s.StepSerial(true, false) })
	case "fd2d":
		m := fluid.ChannelMask2D(128, 128)
		s, _ := fd.NewSolver2D(128, 128, par, func(x, y int) fluid.CellType { return m.At(x, y) })
		return timeSteps(steps, 128*128, func() { s.StepSerial(true, false) })
	case "lb3d":
		m := fluid.ChannelMask3D(24, 24, 24)
		s, _ := lbm.NewSolver3D(24, 24, 24, par, func(x, y, z int) fluid.CellType { return m.At(x, y, z) })
		return timeSteps(steps, 24*24*24, func() { s.StepSerial(true, false, true) })
	case "fd3d":
		m := fluid.ChannelMask3D(24, 24, 24)
		s, _ := fd.NewSolver3D(24, 24, 24, par, func(x, y, z int) fluid.CellType { return m.At(x, y, z) })
		return timeSteps(steps, 24*24*24, func() { s.StepSerial(true, false, true) })
	}
	return 0
}

func timeSteps(steps, nodes int, step func()) float64 {
	t0 := nowSec()
	for i := 0; i < steps; i++ {
		step()
	}
	return float64(steps) * float64(nodes) / (nowSec() - t0)
}

func mTable() {
	header("Section 8 m table: decomposition geometry constant")
	fmt.Printf("%-10s %10s %12s %12s\n", "decomp", "paper m", "max sides", "mean sides")
	for _, c := range []struct{ jx, jy int }{{7, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 4}} {
		d, err := decomp.New2D(c.jx, c.jy, 40*c.jx, 40*c.jy, decomp.Star)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("(%dx%d)", c.jx, c.jy)
		if c.jy == 1 {
			label = "(Px1)"
		}
		fmt.Printf("%-10s %10d %12d %12.2f\n", label, d.PaperM(), d.SurfaceFactor(), d.MeanSideCount())
	}
}

func printSeries(series []perf.Series) {
	labels := make([]string, len(series))
	for i, s := range series {
		labels[i] = s.Label
	}
	xs := make([]float64, len(series[0].Points))
	ys := make([][]float64, len(series))
	for i, s := range series {
		ys[i] = make([]float64, len(s.Points))
		for j, p := range s.Points {
			if i == 0 {
				xs[j] = p.X
			}
			ys[i][j] = p.Y
		}
	}
	fmt.Print(viz.SeriesTable("x", labels, xs, ys))
}

func figure2D(title, method string, speedup bool) {
	header(title)
	var series []perf.Series
	var err error
	if speedup {
		series, err = perf.FigSpeedup2D(method)
	} else {
		series, err = perf.FigEfficiency2D(method)
	}
	if err != nil {
		log.Fatal(err)
	}
	printSeries(series)
}

func fig9() {
	header("Figure 9: efficiency vs P — 2D scales, 3D collapses on the shared bus")
	series, err := perf.Fig9()
	if err != nil {
		log.Fatal(err)
	}
	printSeries(series)
}

func fig10() {
	header("Figure 10: 3D LB efficiency vs subregion side")
	series, err := perf.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	printSeries(series)
}

func fig11() {
	header("Figure 11: 3D LB speedup vs total problem size (network-bound)")
	series, err := perf.Fig11()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range series {
		fmt.Printf("%s\n", s.Label)
		for _, p := range s.Points {
			fmt.Printf("  total nodes %9.0f  speedup %6.2f\n", p.X, p.Y)
		}
	}
}

func fig12() {
	header("Figure 12: theoretical 2D efficiency (eq. 20), Ucalc/Vcom = 2/3")
	printSeries(perf.Fig12())
}

func fig13() {
	header("Figure 13: theoretical efficiency vs P (eqs. 20-21)")
	printSeries(perf.Fig13())
}

func ablation() {
	header("Appendix C ablation: FCFS vs strict-order communication, (10x1) chain")
	fmt.Printf("%-12s %14s %14s %10s\n", "spike prob", "FCFS s/step", "strict s/step", "strict/FCFS")
	for _, sp := range []float64{0, 0.05, 0.1, 0.2} {
		fcfs, strict, err := perf.AblationFCFS(10, 120, sp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.2f %14.4f %14.4f %10.3f\n", sp, fcfs, strict, strict/fcfs)
	}
	fmt.Println("\nwith time-sharing delays, strict ordering amplifies them to global")
	fmt.Println("delays; asynchronous FCFS achieves better performance overall.")
}

func migration() {
	header("Section 5.1 migration cost")
	fmt.Printf("one ~30 s migration every ~45 min: %.2f%% of run time\n", 100*perf.MigrationCost())
	fmt.Printf("efficiency 0.80 becomes %.3f — insignificant, as the paper states\n",
		0.80*(1-perf.MigrationCost()))
}

func convergence() {
	header("Section 6/7 convergence: both methods vs exact Hagen-Poiseuille")
	fmt.Println("see `go run ./examples/poiseuille` for the resolution sweep;")
	fmt.Println("summary at NY=21: FD at machine precision, LB ~2.5e-3 relative,")
	fmt.Println("LB error ratio ~4x per resolution doubling (quadratic).")
}

func futureNetworks() {
	header("Conclusion outlook: 3D (P x 1 x 1, 25^3/proc) on future networks")
	series, err := perf.FutureNetworks()
	if err != nil {
		log.Fatal(err)
	}
	printSeries(series)
	fmt.Println("\nswitched/FDDI/ATM fabrics lift the 3D efficiency the shared bus")
	fmt.Println("destroys - the paper's closing prediction, quantified.")
}

func balancing() {
	header("Section 1.1: fixed subregions + migration vs dynamic load allocation")
	fmt.Printf("%-12s %10s %10s %10s\n", "slow factor", "ignore", "migrate", "dynamic")
	for _, sf := range []float64{0.75, 0.5, 0.25} {
		ig, mig, dyn, err := perf.DynamicVsMigration(10, 120, 5000, sf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.2f %10.3f %10.3f %10.3f\n", sf, ig, mig, dyn)
	}
	fmt.Println("\nfor static-geometry flow problems, migrating off the slow host beats")
	fmt.Println("resizing subregions around it - the paper's section-1.1 position.")
}

func nowSec() float64 {
	return float64(nowNano()) / 1e9
}
