package main

import "time"

// nowNano isolates the wall clock so the rest of main stays testable.
func nowNano() int64 { return time.Now().UnixNano() }
