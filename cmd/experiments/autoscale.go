package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/farm"
	"repro/farm/workload"
)

var autoSeed = flag.Int64("autoscale-seed", 11, "autoscale: workload seed for the diurnal-churn comparison")

// autoscaleSpec is the diurnal-churn regime the autoscaler is built
// for: a sparse night-time stream of mid-size jobs on the mostly idle
// pool — plenty of supply for growth — followed by a morning wave of
// returning owners that shrinks the pool while arrivals pick up, so
// grown jobs must hand ranks back for queued demand.
func autoscaleSpec() *workload.Spec {
	return &workload.Spec{
		Name:    "autoscale-diurnal",
		Horizon: 50 * time.Minute,
		Cohorts: []workload.Cohort{
			{
				Name: "night",
				Arrivals: workload.Arrivals{Process: workload.Weibull, MeanGap: 6 * time.Minute,
					Shape: 0.8, Diurnal: []float64{0.6, 1, 2, 2}, Day: time.Hour},
				Jobs: workload.JobDist{
					Shapes: []workload.ShapeChoice{
						{Method: "lb2d", JX: 3, JY: 2, Weight: 2},
						{Method: "lb2d", JX: 2, JY: 2, Weight: 1},
					},
					SideMin: 20, SideMax: 30,
					Steps: workload.StepsDist{Median: 6000, Sigma: 0.4},
				},
				MaxJobs: 5,
			},
			{
				// The morning cohort: wide jobs arriving as the owners
				// return, so grown night jobs must hand ranks back.
				Name: "morning",
				Arrivals: workload.Arrivals{Process: workload.Poisson, MeanGap: 8 * time.Minute,
					Start: 18 * time.Minute},
				Jobs: workload.JobDist{
					Shapes:  []workload.ShapeChoice{{Method: "lb2d", JX: 4, JY: 3}},
					SideMin: 20, SideMax: 24,
					Steps: workload.StepsDist{Median: 4000, Sigma: 0.3},
				},
				MaxJobs: 2,
			},
		},
		Scenario: &workload.Scenario{
			Every: time.Minute,
			Events: []workload.Event{
				{Kind: workload.HostChurn, At: 5 * time.Minute, Until: 20 * time.Minute,
					Every: 5 * time.Minute, Hosts: 2},
				{Kind: workload.OwnerReturn, At: 20 * time.Minute, Hosts: 10, Dwell: 15 * time.Minute},
			},
		},
	}
}

// autoscaleCollapseSpec is the shrink-heavy regime: the diurnal pool
// under a demand collapse. An early surge of narrow, long-running jobs
// meets the mostly idle 25-host pool, so the autoscaler grows them
// toward MaxFactor — then the surge dries up (MaxJobs caps it), a
// large owner wave reclaims most of the pool, and the only arrivals
// left are a late trickle of wide jobs that the collapsed pool cannot
// seat while grown jobs squat on lent ranks. The control loop's only
// correct move is Resize shrink — the path the diurnal regime rarely
// exercises end-to-end.
func autoscaleCollapseSpec() *workload.Spec {
	return &workload.Spec{
		Name:    "autoscale-collapse",
		Horizon: 50 * time.Minute,
		Cohorts: []workload.Cohort{
			{
				Name: "surge",
				Arrivals: workload.Arrivals{Process: workload.Poisson,
					MeanGap: 90 * time.Second},
				Jobs: workload.JobDist{
					Shapes: []workload.ShapeChoice{
						{Method: "lb2d", JX: 2, JY: 1, Weight: 2},
						{Method: "lb2d", JX: 2, JY: 2, Weight: 1},
					},
					SideMin: 20, SideMax: 26,
					Steps: workload.StepsDist{Median: 250000, Sigma: 0.3},
				},
				MaxJobs: 4,
			},
			{
				// The residual demand after the collapse: wide jobs the
				// reclaimed pool cannot seat without clawing ranks back.
				Name: "late",
				Arrivals: workload.Arrivals{Process: workload.Poisson,
					MeanGap: 4 * time.Minute, Start: 16 * time.Minute},
				Jobs: workload.JobDist{
					Shapes:  []workload.ShapeChoice{{Method: "lb2d", JX: 4, JY: 3}},
					SideMin: 20, SideMax: 24,
					Steps: workload.StepsDist{Median: 4000, Sigma: 0.3},
				},
				MaxJobs: 2,
			},
		},
		Scenario: &workload.Scenario{
			Every: time.Minute,
			Events: []workload.Event{
				{Kind: workload.OwnerReturn, At: 15 * time.Minute, Hosts: 6,
					Dwell: 30 * time.Minute},
			},
		},
	}
}

// autoscalePlan is the control loop under test: tick twice a virtual
// minute, lend idle hosts in chunks of four, grow a job to at most
// three times its submitted width, confirm each decision over two
// ticks, and leave a resized job alone for two minutes.
func autoscalePlan() *workload.AutoscalePlan {
	return &workload.AutoscalePlan{
		Every: 30 * time.Second,
		Spare: 2, Chunk: 4, MaxFactor: 3,
		Confirm: 2, Cooldown: 2 * time.Minute,
	}
}

// autoscaleExp runs the diurnal-churn workload twice at the same seed —
// static ranks vs the supply/demand autoscaler — trace-verifies the
// autoscaled run (the v1.1 determinism pin), and exits non-zero unless
// the autoscaler improves makespan or mean utilization: the regression
// gate CI runs.
func autoscaleExp() {
	header("Malleable farm: supply/demand autoscaler vs static ranks (diurnal churn)")
	spec := autoscaleSpec()
	static := workload.RunConfig{Seed: *autoSeed, Policy: farm.FIFO, Backfill: farm.BackfillEASY}
	scaled := static
	scaled.Autoscale = autoscalePlan()

	trS, sumS, err := workload.Record(spec, static)
	if err != nil {
		log.Fatalf("autoscale: static baseline: %v", err)
	}
	trA, sumA, err := workload.Record(spec, scaled)
	if err != nil {
		log.Fatalf("autoscale: autoscaled run: %v", err)
	}
	if trA.Minor != workload.TraceMinor {
		log.Fatalf("autoscale: autoscaled trace written at v%d.%d, want v%d.%d",
			trA.Version, trA.Minor, workload.TraceVersion, workload.TraceMinor)
	}
	// Both runs must replay byte-identically: the static one pins the
	// v1 path, the autoscaled one pins v1.1 with the engine re-compiled
	// from the recorded plan.
	if err := trS.Verify(); err != nil {
		log.Fatalf("autoscale: static trace: %v", err)
	}
	if err := trA.Verify(); err != nil {
		log.Fatalf("autoscale: autoscaled trace: %v", err)
	}

	fmt.Printf("%d jobs at seed %d, FIFO + EASY, compute timer\n\n", len(trS.Jobs), *autoSeed)
	fmt.Printf("%-12s %12s %12s %8s %8s %6s %6s\n",
		"ranks", "makespan", "mean wait", "util", "resizes", "+rk", "-rk")
	row := func(label string, s farm.Summary) {
		fmt.Printf("%-12s %12s %12s %8.3f %8d %6d %6d\n",
			label, s.Makespan.Round(time.Second), s.MeanWait.Round(time.Second),
			s.Utilization, s.Resizes, s.GrowRanks, s.ShrinkRanks)
	}
	row("static", sumS)
	row("autoscaled", sumA)

	if sumA.Resizes == 0 {
		log.Fatal("autoscale: the control loop never resized; the scenario exercises nothing")
	}
	dMake := sumS.Makespan - sumA.Makespan
	dUtil := sumA.Utilization - sumS.Utilization
	fmt.Printf("\nmakespan %+v, utilization %+.3f vs static\n", -dMake, dUtil)
	if dMake <= 0 && dUtil <= 0 {
		log.Fatal("autoscale: REGRESSION — autoscaler improved neither makespan nor utilization")
	}
	fmt.Println("gate passed: autoscaler improves on static ranks")

	// Shrink-heavy regime: demand collapse. The diurnal scenario above
	// proves growth; unit tests prove Resize shrink in isolation; this
	// run proves the control loop chooses shrink end-to-end when supply
	// is withdrawn under grown jobs and the residual wide demand cannot
	// be seated without clawing lent ranks back.
	header("Malleable farm: demand collapse (shrink-heavy regime)")
	cSpec := autoscaleCollapseSpec()
	trC, sumC, err := workload.Record(cSpec, scaled)
	if err != nil {
		log.Fatalf("autoscale: collapse run: %v", err)
	}
	if err := trC.Verify(); err != nil {
		log.Fatalf("autoscale: collapse trace: %v", err)
	}
	fmt.Printf("%d jobs at seed %d, FIFO + EASY, compute timer\n\n", len(trC.Jobs), *autoSeed)
	fmt.Printf("%-12s %12s %12s %8s %8s %6s %6s\n",
		"ranks", "makespan", "mean wait", "util", "resizes", "+rk", "-rk")
	row("autoscaled", sumC)
	if sumC.GrowRanks == 0 {
		log.Fatal("autoscale: collapse regime never grew; there is nothing to hand back")
	}
	if sumC.ShrinkRanks == 0 {
		log.Fatal("autoscale: collapse regime never shrank; the owner-return wave forced no Resize shrink")
	}
	fmt.Printf("\ngate passed: demand collapse forced shrink (%d ranks handed back over %d resizes)\n",
		sumC.ShrinkRanks, sumC.Resizes)
}
