package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/farm"
	"repro/farm/workload"
	"repro/internal/perf"
)

var (
	sweepSeedCount = flag.Int("sweep-seeds", 2, "sweep: seeds per (spec, policy, backfill) cell, numbered 1..N")
	sweepOut       = flag.String("sweep-out", "", "sweep: also write the JSON summary table to this file")
)

// sweepTimer is the registry name of the sweep's step timer: the perf
// discrete-event engine on the paper's shared 10 Mbps Ethernet, the
// same pricing the farm experiment uses.
const sweepTimer = "perf-ethernet"

// sweepSpecs are the built-in scenario family: a quiet baseline, the
// section-5.1 reclaim regime, and a bursty diurnal pool with churn and
// an owner-return wave. All three are bounded (MaxJobs per cohort) so a
// sweep cell runs in well under a second.
func sweepSpecs() []*workload.Spec {
	return []*workload.Spec{
		{
			Name:    "steady",
			Horizon: 40 * time.Minute,
			Cohorts: []workload.Cohort{
				{
					Name: "cfd", Weight: 2,
					Arrivals: workload.Arrivals{Process: workload.Poisson, MeanGap: 5 * time.Minute},
					Jobs: workload.JobDist{
						Shapes: []workload.ShapeChoice{
							{Method: "lb2d", JX: 4, JY: 2, Weight: 3},
							{Method: "lb2d", JX: 5, JY: 4, Weight: 1},
						},
						SideMin: 20, SideMax: 40,
						Steps: workload.StepsDist{Median: 6000, Sigma: 0.4},
					},
					Priorities: []workload.IntChoice{{Value: 1, Weight: 1}},
					MaxJobs:    6,
				},
				{
					Name: "cal",
					Arrivals: workload.Arrivals{Process: workload.Gamma, MeanGap: 8 * time.Minute,
						Shape: 2, Start: 2 * time.Minute},
					Jobs: workload.JobDist{
						Shapes:  []workload.ShapeChoice{{Method: "fd2d", JX: 3, JY: 3}},
						SideMin: 40, SideMax: 64,
						Steps: workload.StepsDist{Median: 8000, Sigma: 0.3},
					},
					MaxJobs: 4,
				},
			},
		},
		{
			Name:    "storm",
			Horizon: 40 * time.Minute,
			Cohorts: []workload.Cohort{
				{
					Name: "cfd", Weight: 2,
					Arrivals: workload.Arrivals{Process: workload.Poisson, MeanGap: 3 * time.Minute},
					Jobs: workload.JobDist{
						Shapes: []workload.ShapeChoice{
							{Method: "lb2d", JX: 4, JY: 3, Weight: 2},
							{Method: "lb3d", JX: 2, JY: 2, JZ: 2, Weight: 1},
						},
						SideMin: 16, SideMax: 32,
						Steps: workload.StepsDist{Median: 5000, Sigma: 0.5},
					},
					Priorities: []workload.IntChoice{{Value: 1, Weight: 3}, {Value: 5, Weight: 1}},
					MaxJobs:    7,
				},
			},
			Scenario: &workload.Scenario{
				Every: time.Minute,
				Events: []workload.Event{
					{Kind: workload.ReclaimStorm, At: 8 * time.Minute, Until: 23 * time.Minute,
						Every: 5 * time.Minute, Hosts: 2, Dwell: 4 * time.Minute},
				},
			},
		},
		{
			Name:    "diurnal-churn",
			Horizon: time.Hour,
			Cohorts: []workload.Cohort{
				{
					Name: "night", Weight: 1,
					Arrivals: workload.Arrivals{Process: workload.Weibull, MeanGap: 6 * time.Minute,
						Shape: 0.7, Diurnal: []float64{2, 1, 0.5, 1}, Day: time.Hour},
					Jobs: workload.JobDist{
						Shapes: []workload.ShapeChoice{
							{Method: "fd2d", JX: 4, JY: 3, Weight: 1},
							{Method: "lb2d", JX: 3, JY: 3, Weight: 1},
						},
						SideMin: 20, SideMax: 30,
						Steps: workload.StepsDist{Median: 4000, Sigma: 0.6},
					},
					MaxJobs: 8,
				},
			},
			Scenario: &workload.Scenario{
				Every: time.Minute,
				Events: []workload.Event{
					{Kind: workload.HostChurn, At: 5 * time.Minute, Until: 50 * time.Minute,
						Every: 15 * time.Minute, Hosts: 3},
					{Kind: workload.OwnerReturn, At: 30 * time.Minute, Hosts: 4, Dwell: 10 * time.Minute},
				},
			},
		},
	}
}

// sweepRow is one cell of the sweep table: the knobs plus the run's
// pinned-schema metrics summary.
type sweepRow struct {
	Spec     string       `json:"spec"`
	Seed     int64        `json:"seed"`
	Policy   string       `json:"policy"`
	Backfill string       `json:"backfill"`
	Jobs     int          `json:"jobs"`
	Summary  farm.Summary `json:"summary"`
}

// sweepTable is the JSON envelope of a sweep run.
type sweepTable struct {
	Format  string     `json:"format"`
	Version int        `json:"version"`
	Timer   string     `json:"timer"`
	Rows    []sweepRow `json:"rows"`
}

// sweep fans the built-in scenario specs across seeds and scheduling
// knobs: each cell generates the workload at its seed, records the full
// event trace, re-runs it in verify mode (exiting non-zero if the
// replay is not byte-identical — the determinism regression pin), and
// reports the run's metrics. The table prints as text and as JSON
// (stdout, plus -sweep-out to write a file).
func sweep() {
	workload.RegisterTimer(sweepTimer, farm.PerfTimer(perf.Ethernet))
	knobs := []struct {
		policy   farm.Policy
		backfill farm.BackfillMode
	}{
		{farm.FIFO, farm.BackfillEASY},
		{farm.FIFO, farm.BackfillAggressive},
		{farm.Priority, farm.BackfillEASY},
		{farm.WeightedFair, farm.BackfillEASY},
	}
	seeds := *sweepSeedCount
	if seeds < 1 {
		seeds = 1
	}
	table := sweepTable{Format: "farm-sweep-summary", Version: 1, Timer: sweepTimer}
	for _, spec := range sweepSpecs() {
		header(fmt.Sprintf("Sweep %q: %d knob sets x %d seeds (trace-verified)", spec.Name, len(knobs), seeds))
		fmt.Printf("%-10s %-12s %5s %5s %12s %12s %8s %9s %7s %6s\n",
			"policy", "backfill", "seed", "jobs", "makespan", "mean wait", "util", "preempts", "bfills", "migr")
		for _, k := range knobs {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				cfg := workload.RunConfig{
					Seed: seed, Policy: k.policy, Backfill: k.backfill, Timer: sweepTimer,
				}
				tr, sum, err := workload.Record(spec, cfg)
				if err != nil {
					log.Fatalf("sweep %s/%s/%s seed %d: %v", spec.Name, k.policy, k.backfill, seed, err)
				}
				if err := tr.Verify(); err != nil {
					log.Fatalf("sweep %s/%s/%s seed %d: %v", spec.Name, k.policy, k.backfill, seed, err)
				}
				table.Rows = append(table.Rows, sweepRow{
					Spec: spec.Name, Seed: seed,
					Policy: k.policy.String(), Backfill: k.backfill.String(),
					Jobs: len(tr.Jobs), Summary: sum,
				})
				fmt.Printf("%-10s %-12s %5d %5d %12s %12s %8.3f %9d %7d %6d\n",
					k.policy, k.backfill, seed, len(tr.Jobs),
					sum.Makespan.Round(time.Second), sum.MeanWait.Round(time.Second),
					sum.Utilization, sum.Preemptions, sum.Backfills, sum.Migrations)
			}
		}
	}
	data, err := json.MarshalIndent(table, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJSON summary table (%d rows):\n%s\n", len(table.Rows), data)
	if *sweepOut != "" {
		if err := os.WriteFile(*sweepOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *sweepOut)
	}
}
