// Command fluepipe renders the figure-1 and figure-2 flue-pipe geometries
// as ASCII maps and reports the decomposition statistics of section 2
// (figure 2: a (6 x 4) decomposition with all-wall subregions left
// unassigned, so 15 of 24 workstations suffice).
//
//	go run ./cmd/fluepipe [-nx 240 -ny 160]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/geom"
	"repro/internal/viz"
)

func main() {
	nx := flag.Int("nx", 240, "grid width")
	ny := flag.Int("ny", 160, "grid height")
	flag.Parse()

	for _, g := range []struct {
		name   string
		mask   *fluid.Mask2D
		jx, jy int
	}{
		{"figure 1: flue pipe", geom.FluePipe(*nx, *ny), 5, 4},
		{"figure 2: flue pipe with channel", geom.FluePipeChannel(*nx, *ny), 6, 4},
	} {
		fmt.Printf("=== %s (%dx%d) ===\n\n", g.name, *nx, *ny)
		zero := make([]float64, (*nx)*(*ny))
		fmt.Println(viz.ASCIIVorticity(*nx, *ny, zero, g.mask, 96))

		d, err := decomp.New2D(g.jx, g.jy, *nx, *ny, decomp.Full)
		if err != nil {
			log.Fatal(err)
		}
		inactive := d.DeactivateWalls(g.mask.Solid)
		total := float64((*nx) * (*ny))
		active := 0
		for _, s := range d.ActiveSubregions() {
			active += s.Nodes()
		}
		fmt.Printf("decomposition (%d x %d): %d active subregions, %d inactive (all wall)\n",
			g.jx, g.jy, d.P(), inactive)
		fmt.Printf("simulated nodes: %d of %.0f (%.0f%%)\n\n", active, total, 100*float64(active)/total)
	}
}
