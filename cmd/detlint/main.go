// Detlint statically enforces the farm's determinism and API
// invariants. It is a vet tool: build it once and run the suite over
// the module with
//
//	go build -o bin/detlint ./cmd/detlint
//	go vet -vettool=$PWD/bin/detlint ./...
//
// or invoke it directly (`go run ./cmd/detlint ./...`) and it re-execs
// itself under go vet. Scopes come from detlint.json at the module
// root (see internal/analysis.Config); findings are suppressed, with a
// mandatory reason, by `//detlint:allow <analyzer> -- <reason>`.
//
// The suite:
//
//	nodeterm   no ambient entropy (wall clock, global RNG) in
//	           deterministic packages
//	maporder   no iteration-order-sensitive map ranges feeding
//	           traces, events or accumulators
//	errwrap    public farm errors wrap with %w and stay
//	           errors.Is-checkable
//	strayrng   all RNG state flows through sched.SplitMix/Derive
//	goentropy  no stray go statements on the step/decision path
package main

import (
	"repro/internal/analysis/passes/errwrap"
	"repro/internal/analysis/passes/goentropy"
	"repro/internal/analysis/passes/maporder"
	"repro/internal/analysis/passes/nodeterm"
	"repro/internal/analysis/passes/strayrng"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		nodeterm.Analyzer,
		maporder.Analyzer,
		errwrap.Analyzer,
		strayrng.Analyzer,
		goentropy.Analyzer,
	)
}
