// Detlint statically enforces the farm's determinism and API
// invariants. It is a vet tool: build it once and run the suite over
// the module with
//
//	go build -o bin/detlint ./cmd/detlint
//	go vet -vettool=$PWD/bin/detlint ./...
//
// or invoke it directly (`go run ./cmd/detlint ./...`) and it re-execs
// itself under go vet. Scopes come from detlint.json at the module
// root (see internal/analysis.Config); findings are suppressed, with a
// mandatory reason, by `//detlint:allow <analyzer> -- <reason>`.
// `-diff` prints suggested fixes as a unified diff (dry run); `-fix`
// applies them to the tree.
//
// The suite:
//
//	nodeterm       no ambient entropy (wall clock, global RNG) in
//	               deterministic packages
//	maporder       no iteration-order-sensitive map ranges feeding
//	               traces, events or accumulators
//	errwrap        public farm errors wrap with %w and stay
//	               errors.Is-checkable
//	strayrng       all RNG state flows through sched.SplitMix/Derive
//	goentropy      no stray go statements on the step/decision path
//	allocsteady    nothing reachable from the collide-stream /
//	               halo-exchange / step-driver kernels allocates
//	lockorder      mutexes are acquired in one global order across
//	               the pool/msg/sched/farm layers
//	eventcomplete  every scheduler path mutating job phase or
//	               placement emits its typed Event before returning
//	ckptpair       every field the snapshot side writes is read by
//	               restore, and vice versa
//
// The last four compose across packages: each package's analysis
// exports a facts summary through the vet .vetx protocol, so a kernel
// calling into a helper package still sees that helper's allocations,
// lock orders and checkpoint field sets.
package main

import (
	"repro/internal/analysis/passes/allocsteady"
	"repro/internal/analysis/passes/ckptpair"
	"repro/internal/analysis/passes/errwrap"
	"repro/internal/analysis/passes/eventcomplete"
	"repro/internal/analysis/passes/goentropy"
	"repro/internal/analysis/passes/lockorder"
	"repro/internal/analysis/passes/maporder"
	"repro/internal/analysis/passes/nodeterm"
	"repro/internal/analysis/passes/strayrng"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		nodeterm.Analyzer,
		maporder.Analyzer,
		errwrap.Analyzer,
		strayrng.Analyzer,
		goentropy.Analyzer,
		allocsteady.Analyzer,
		lockorder.Analyzer,
		eventcomplete.Analyzer,
		ckptpair.Analyzer,
	)
}
