package main

import (
	"encoding/gob"
	"fmt"
	"os"
)

// saveGob writes a value atomically (temp + rename).
func saveGob(path string, v interface{}) error {
	tmp, err := os.CreateTemp(".", ".tmp-gob-*")
	if err != nil {
		return fmt.Errorf("save %s: %w", path, err)
	}
	name := tmp.Name()
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("save %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("save %s: %w", path, err)
	}
	return nil
}

// loadGob reads a value written by saveGob.
func loadGob(path string, v interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	return nil
}
