// Command fluidsim is the distributed simulation driver: the paper's four
// control modules (section 4.1) as subcommands over a shared work
// directory.
//
//	fluidsim init   -dir DIR [-method lb|fd] [-geom channel|fluepipe|fluepipe2] [-nx N -ny N] [-jx J -jy K]
//	    the initialization + decomposition programs: builds the problem,
//	    splits it into subregions and writes one dump file per rank.
//
//	fluidsim run    -dir DIR -steps S [-tcp]
//	    the job-submit program: restarts every rank from its dump file
//	    (one goroutine per rank; -tcp uses real TCP sockets on loopback
//	    with the shared-file port registry), runs S steps, saves the
//	    final dumps in an orderly staggered sequence, and writes the
//	    gathered vorticity field to DIR/vorticity.pgm.
//
//	fluidsim status -dir DIR
//	    the monitoring program's read side: reports each rank's dump.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dump"
	"repro/internal/fluid"
	"repro/internal/geom"
	"repro/internal/msg"
	"repro/internal/registry"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fluidsim: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "init":
		cmdInit(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fluidsim {init|run|status} [flags]")
	os.Exit(2)
}

// configFile is the problem description persisted by init for run/status.
type configFile struct {
	Method string
	Geom   string
	NX, NY int
	JX, JY int
}

func configPath(dir string) string { return filepath.Join(dir, "problem.gob") }

func buildConfig(cf configFile) (*core.Config2D, error) {
	var mask *fluid.Mask2D
	par := fluid.DefaultParams()
	periodicX := false
	switch cf.Geom {
	case "channel":
		mask = fluid.ChannelMask2D(cf.NX, cf.NY)
		par.Nu = 0.1
		par.Eps = 0.005
		par.ForceX = 1e-5
		periodicX = true
	case "fluepipe":
		mask = geom.FluePipe(cf.NX, cf.NY)
		par.Nu = 0.02
		par.Eps = 0.01
		par.InletVx = 0.08
	case "fluepipe2":
		mask = geom.FluePipeChannel(cf.NX, cf.NY)
		par.Nu = 0.02
		par.Eps = 0.01
		par.InletVx = 0.08
	default:
		return nil, fmt.Errorf("unknown geometry %q", cf.Geom)
	}
	st := decomp.Full
	if cf.Method == core.MethodFD {
		st = decomp.Star
	}
	d, err := decomp.New2D(cf.JX, cf.JY, cf.NX, cf.NY, st)
	if err != nil {
		return nil, err
	}
	d.PeriodicX = periodicX
	if cf.Geom == "fluepipe2" {
		if n := d.DeactivateWalls(mask.Solid); n > 0 {
			log.Printf("deactivated %d all-wall subregions; %d active (figure-2 style)", n, d.P())
		}
	}
	return &core.Config2D{Method: cf.Method, Par: par, Mask: mask, D: d}, nil
}

func cmdInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "", "work directory (required)")
	method := fs.String("method", "lb", "numerical method: lb or fd")
	geomName := fs.String("geom", "fluepipe", "geometry: channel, fluepipe, fluepipe2")
	nx := fs.Int("nx", 200, "grid width")
	ny := fs.Int("ny", 125, "grid height")
	jx := fs.Int("jx", 5, "subregions in x")
	jy := fs.Int("jy", 4, "subregions in y")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("init: -dir is required")
	}
	cf := configFile{Method: *method, Geom: *geomName, NX: *nx, NY: *ny, JX: *jx, JY: *jy}
	cfg, err := buildConfig(cf)
	if err != nil {
		log.Fatal(err)
	}
	states, err := core.Decompose2D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := saveGob(configPath(*dir), cf); err != nil {
		log.Fatal(err)
	}
	for _, st := range states {
		if err := dump.Save(dump.Path(*dir, st.Rank), st); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("decomposed %dx%d %s/%s into %d dump files under %s",
		*nx, *ny, *method, *geomName, len(states), *dir)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	dir := fs.String("dir", "", "work directory (required)")
	steps := fs.Int("steps", 500, "integration steps to add")
	useTCP := fs.Bool("tcp", false, "communicate over TCP sockets instead of channels")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("run: -dir is required")
	}
	var cf configFile
	if err := loadGob(configPath(*dir), &cf); err != nil {
		log.Fatal(err)
	}
	cfg, err := buildConfig(cf)
	if err != nil {
		log.Fatal(err)
	}
	states, err := dump.LoadAll(*dir, cfg.D.P())
	if err != nil {
		log.Fatal(err)
	}
	startStep := states[0].Step
	until := startStep + *steps

	factory := core.HubFactory()
	if *useTCP {
		reg, err := registry.New(filepath.Join(*dir, "registry"))
		if err != nil {
			log.Fatal(err)
		}
		run := time.Now().UnixNano() // fresh epoch namespace per run
		factory = func(rank, epoch int) (msg.Transport, error) {
			return msg.NewTCP(rank, epoch+int(run%1000)*1000, reg)
		}
	}

	events := make(chan core.Event, 8*cfg.D.P())
	workers := make([]*core.Worker, 0, cfg.D.P())
	progs := make([]*core.Program2D, 0, cfg.D.P())
	for _, st := range states {
		p, err := cfg.NewProgram(st.Rank)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.RestoreState(st); err != nil {
			log.Fatal(err)
		}
		progs = append(progs, p)
		w, err := core.NewWorkerAt(p, factory, st.Epoch, events, st.Step)
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
	}
	t0 := time.Now()
	errs := make(chan error, len(workers))
	for _, w := range workers {
		go func(w *core.Worker) { errs <- w.RunSteps(until) }(w)
	}
	for range workers {
		if err := <-errs; err != nil {
			log.Fatal(err)
		}
	}
	for _, w := range workers {
		w.Close()
	}
	elapsed := time.Since(t0)
	log.Printf("ran %d ranks from step %d to %d in %v (%.0f node-updates/s)",
		len(workers), startStep, until, elapsed.Round(time.Millisecond),
		float64(*steps)*float64(cfg.D.GX*cfg.D.GY)/elapsed.Seconds())

	// Orderly staggered saving (section 5.2).
	seq := dump.NewSequencer(0)
	finals := make([]*dump.State, len(progs))
	for i, p := range progs {
		finals[i] = p.DumpState(until, 0)
	}
	if err := seq.SaveAll(*dir, finals); err != nil {
		log.Fatal(err)
	}

	res := core.Gather2D(cfg, progs, until)
	out := filepath.Join(*dir, "vorticity.pgm")
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	lo, hi := viz.SymmetricRange(res.Vorticity)
	if err := viz.WritePGM(f, res.NX, res.NY, res.Vorticity, lo, hi); err != nil {
		log.Fatal(err)
	}
	log.Printf("saved dumps and %s", out)
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	dir := fs.String("dir", "", "work directory (required)")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("status: -dir is required")
	}
	var cf configFile
	if err := loadGob(configPath(*dir), &cf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %s %s %dx%d, decomposition (%d x %d)\n",
		cf.Method, cf.Geom, cf.NX, cf.NY, cf.JX, cf.JY)
	for rank := 0; ; rank++ {
		st, err := dump.Load(dump.Path(*dir, rank))
		if err != nil {
			if rank == 0 {
				log.Fatal(err)
			}
			break
		}
		fmt.Printf("rank %3d: step %6d, %2d fields, %dx%d interior\n",
			st.Rank, st.Step, len(st.Fields), st.NX, st.NY)
	}
}
