package main

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Direction classifies how a metric's value relates to goodness.
type direction int

const (
	lowerBetter direction = iota
	higherBetter
	informational
)

// metricDirection maps a benchmark unit to its goodness direction by
// convention: times and allocation costs shrink when things improve,
// rates grow, and anything unrecognized is reported but never gated.
func metricDirection(unit string) direction {
	switch {
	case strings.HasPrefix(unit, "ns/"),
		unit == "B/op", unit == "allocs/op",
		strings.HasSuffix(unit, "-s"), unit == "s":
		return lowerBetter
	case strings.HasSuffix(unit, "/s"):
		return higherBetter
	default:
		return informational
	}
}

// Delta is one (benchmark, metric) comparison row.
type Delta struct {
	Bench   string
	Unit    string
	Base    float64
	Cur     float64
	Ratio   float64 // (cur-base)/base; 0 when base is 0
	Gated   bool
	Regress bool
	Missing bool // gated benchmark present in baseline, absent in current
}

// Compare diffs current against baseline. A metric is gated when its
// unit matches the gate expression and its direction is known; a gated
// metric that moves beyond tolerance in the bad direction — or a
// baseline benchmark that vanished from the current run while gated —
// is a regression. Improvements and informational metrics only show up
// in the table.
func Compare(baseline, current *Snapshot, gate *regexp.Regexp, tolerance float64) []Delta {
	curByName := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		curByName[b.Name] = b
	}
	var deltas []Delta
	for _, base := range baseline.Benchmarks {
		cur, ok := curByName[base.Name]
		if !ok {
			// The baseline pins the trajectory: a benchmark silently
			// disappearing would let its numbers rot unnoticed.
			gated := false
			for unit := range base.Metrics {
				if gate.MatchString(unit) && metricDirection(unit) != informational {
					gated = true
				}
			}
			deltas = append(deltas, Delta{
				Bench: base.Name, Gated: gated, Regress: gated, Missing: true,
			})
			continue
		}
		units := make([]string, 0, len(base.Metrics))
		for unit := range base.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := base.Metrics[unit]
			cv, has := cur.Metrics[unit]
			dir := metricDirection(unit)
			gated := has && gate.MatchString(unit) && dir != informational
			d := Delta{Bench: base.Name, Unit: unit, Base: bv, Cur: cv, Gated: gated}
			if !has {
				d.Missing = true
				d.Regress = gate.MatchString(unit) && dir != informational
				d.Gated = d.Regress
				deltas = append(deltas, d)
				continue
			}
			if bv != 0 {
				d.Ratio = (cv - bv) / bv
			}
			if gated {
				switch dir {
				case lowerBetter:
					d.Regress = d.Ratio > tolerance
				case higherBetter:
					d.Regress = d.Ratio < -tolerance
				}
			}
			deltas = append(deltas, d)
		}
	}
	return deltas
}

// Regressions filters the rows that should fail the gate.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regress {
			out = append(out, d)
		}
	}
	return out
}

// MarkdownTable renders the deltas as a GitHub-flavoured markdown table
// for the CI step summary.
func MarkdownTable(deltas []Delta, tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "| benchmark | metric | baseline | current | delta | status |\n")
	fmt.Fprintf(&sb, "|---|---|---:|---:|---:|---|\n")
	for _, d := range deltas {
		status := ""
		switch {
		case d.Missing:
			status = "missing from current run"
			if d.Regress {
				status = "**FAIL** (gated benchmark missing)"
			}
			fmt.Fprintf(&sb, "| %s | %s | %s | — | — | %s |\n",
				d.Bench, orDash(d.Unit), num(d.Base), status)
			continue
		case d.Regress:
			status = fmt.Sprintf("**FAIL** (beyond ±%.0f%%)", tolerance*100)
		case d.Gated:
			status = "ok"
		default:
			status = "info"
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %+.1f%% | %s |\n",
			d.Bench, d.Unit, num(d.Base), num(d.Cur), d.Ratio*100, status)
	}
	return sb.String()
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

// num renders a metric value compactly: integers stay integral, small
// fractions keep enough digits to be meaningful.
func num(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
