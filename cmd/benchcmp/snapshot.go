// Command benchcmp normalizes `go test -json -bench` streams into a
// compact pinned snapshot schema and diffs two snapshots with a
// configurable tolerance, failing on step-throughput regressions. It is
// the gate that turns BENCH_main.json from a passive artifact into a CI
// trajectory: every PR regenerates BENCH_ci.json, benchcmp compares it
// against the committed baseline, and a regression beyond tolerance
// fails the job with a per-benchmark delta table.
//
// Usage:
//
//	benchcmp -normalize [-in stream.json|-] [-out snapshot.json|-]
//	benchcmp -baseline BENCH_main.json -current BENCH_ci.json
//	         [-tolerance 0.5] [-gate 'ns/cell'] [-summary table.md]
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// formatName and formatVersion pin the snapshot schema. Bump the version
// only on a deliberate schema break; the exact-bytes test in
// snapshot_test.go is the tripwire.
const (
	formatName    = "benchcmp"
	formatVersion = 1
)

// Snapshot is the normalized form of one benchmark run: machine context
// plus one entry per benchmark, sorted by name, each carrying its
// metrics (unit -> value; maps marshal with sorted keys).
type Snapshot struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Goos/Goarch/CPU describe the machine the numbers came from; they
	// are informational and never compared.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one normalized benchmark result. Name has the -<procs>
// suffix stripped so snapshots from machines with different GOMAXPROCS
// line up; Iters keeps the -benchtime iteration count for context.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Encode renders the snapshot in its canonical committed form: two-space
// indented JSON, benchmarks sorted by name, trailing newline.
func (s *Snapshot) Encode() ([]byte, error) {
	sort.Slice(s.Benchmarks, func(i, j int) bool {
		return s.Benchmarks[i].Name < s.Benchmarks[j].Name
	})
	if s.Benchmarks == nil {
		s.Benchmarks = []Benchmark{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses a snapshot and rejects other formats loudly —
// comparing a raw test2json stream against a snapshot produces nonsense
// deltas, so the format/version handshake is strict.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchcmp: not a snapshot (run -normalize first?): %w", err)
	}
	if s.Format != formatName {
		return nil, fmt.Errorf("benchcmp: format %q, want %q (run -normalize first?)", s.Format, formatName)
	}
	if s.Version != formatVersion {
		return nil, fmt.Errorf("benchcmp: snapshot version %d, this tool reads %d", s.Version, formatVersion)
	}
	return &s, nil
}
