package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestSnapshotEncodingPinned pins the committed snapshot schema byte for
// byte, the same way internal/sched/metrics pins its JSON reports. If
// this test fails you changed the BENCH_main.json format: bump
// formatVersion deliberately and regenerate the baseline, or revert.
func TestSnapshotEncodingPinned(t *testing.T) {
	s := &Snapshot{
		Format:  formatName,
		Version: formatVersion,
		Goos:    "linux",
		Goarch:  "amd64",
		CPU:     "Example CPU @ 2.00GHz",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkZ/sub", Iters: 3, Metrics: map[string]float64{"ns/op": 1250, "nodes/s": 2.5e6}},
			{Name: "BenchmarkA", Iters: 1, Metrics: map[string]float64{"ns/cell": 41.5}},
		},
	}
	got, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "format": "benchcmp",
  "version": 1,
  "goos": "linux",
  "goarch": "amd64",
  "cpu": "Example CPU @ 2.00GHz",
  "benchmarks": [
    {
      "name": "BenchmarkA",
      "iters": 1,
      "metrics": {
        "ns/cell": 41.5
      }
    },
    {
      "name": "BenchmarkZ/sub",
      "iters": 3,
      "metrics": {
        "nodes/s": 2500000,
        "ns/op": 1250
      }
    }
  ]
}
`
	if string(got) != want {
		t.Errorf("snapshot encoding changed:\n got: %s\nwant: %s", got, want)
	}
	back, err := DecodeSnapshot(got)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Benchmarks) != 2 || back.Benchmarks[0].Name != "BenchmarkA" {
		t.Errorf("round trip lost benchmarks: %+v", back.Benchmarks)
	}
}

// TestNormalizeTest2JSON feeds the tool the stream shape `go test -json
// -bench` actually emits — result lines split across output events,
// attributed to a Test field without the -procs suffix — plus noise
// lines that must be skipped.
func TestNormalizeTest2JSON(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"repro"}`,
		`{"Action":"output","Package":"repro","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"repro","Output":"goarch: amd64\n"}`,
		`{"Action":"output","Package":"repro","Output":"cpu: Example CPU @ 2.00GHz\n"}`,
		`{"Action":"run","Package":"repro","Test":"BenchmarkStepKernels"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkStepKernels/LB2D/w1","Output":"BenchmarkStepKernels/LB2D/w1-8 \t"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkStepKernels/LB2D/w1","Output":"       1\t  52000000 ns/op\t        41.50 ns/cell\t  24100000 nodes/s\n"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkStepKernels/LB2D/w4","Output":"BenchmarkStepKernels/LB2D/w4-8 \t       1\t  15000000 ns/op\t        12.20 ns/cell\t  81900000 nodes/s\n"}`,
		`{"Action":"output","Package":"repro","Output":"PASS\n"}`,
		`{"Action":"output","Package":"repro","Output":"ok  \trepro\t2.1s\n"}`,
		`{"Action":"pass","Package":"repro"}`,
	}, "\n")
	snap, err := Normalize([]byte(stream))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.CPU != "Example CPU @ 2.00GHz" {
		t.Errorf("machine context = %q/%q/%q", snap.Goos, snap.Goarch, snap.CPU)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	byName := map[string]Benchmark{}
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	w1, ok := byName["BenchmarkStepKernels/LB2D/w1"]
	if !ok {
		t.Fatalf("missing w1 (procs suffix not stripped?): %+v", snap.Benchmarks)
	}
	if w1.Metrics["ns/cell"] != 41.5 || w1.Metrics["nodes/s"] != 24100000 {
		t.Errorf("w1 metrics = %v", w1.Metrics)
	}
	if w4 := byName["BenchmarkStepKernels/LB2D/w4"]; w4.Iters != 1 || w4.Metrics["ns/cell"] != 12.2 {
		t.Errorf("w4 = %+v", w4)
	}
}

// TestNormalizePlainText covers the fallback path for a raw `go test
// -bench` text stream, including the single-core case where Go appends
// no -procs suffix.
func TestNormalizePlainText(t *testing.T) {
	text := "goos: linux\ngoarch: arm64\n" +
		"BenchmarkFoo-8 \t 100\t 250 ns/op\n" +
		"BenchmarkBar \t 7\t 9 ns/op\t 3 B/op\t 0 allocs/op\n" +
		"BenchmarkHalo/side-100 \t 2\t 500 ns/op\n" +
		"PASS\nok  \trepro\t0.1s\n"
	snap, err := Normalize([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFoo":           250,
		"BenchmarkBar":           9,
		"BenchmarkHalo/side-100": 500, // plain-text stripProcs: "-100" is ambiguous on 1-core machines
	}
	if len(snap.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	for _, b := range snap.Benchmarks {
		if v, ok := want[b.Name]; !ok {
			// The heuristic strips the last numeric segment; "side-100"
			// without a procs suffix becomes "side". JSON streams avoid
			// this via the Test field; plain text accepts it.
			if b.Name != "BenchmarkHalo/side" {
				t.Errorf("unexpected name %q", b.Name)
			}
		} else if b.Metrics["ns/op"] != v {
			t.Errorf("%s ns/op = %v, want %v", b.Name, b.Metrics["ns/op"], v)
		}
	}
	if _, err := Normalize([]byte(`{"Action":"oops"`)); err == nil {
		t.Error("truncated JSON line accepted")
	}
}

func snapOf(t *testing.T, benches ...Benchmark) *Snapshot {
	t.Helper()
	return &Snapshot{Format: formatName, Version: formatVersion, Benchmarks: benches}
}

// TestCompareGatesRegressions is the acceptance check for the CI gate:
// an injected synthetic regression on the gated ns/cell metric must
// fail, improvements and informational drift must not.
func TestCompareGatesRegressions(t *testing.T) {
	gate := regexp.MustCompile(`^ns/cell$`)
	base := snapOf(t,
		Benchmark{Name: "BenchmarkStepKernels/LB2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 40, "nodes/s": 1e6}},
		Benchmark{Name: "BenchmarkStepKernels/FD2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 30}},
	)

	// Injected 2x slowdown on LB2D: beyond the 0.5 tolerance -> regression.
	cur := snapOf(t,
		Benchmark{Name: "BenchmarkStepKernels/LB2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 80, "nodes/s": 5e5}},
		Benchmark{Name: "BenchmarkStepKernels/FD2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 33}},
	)
	regs := Regressions(Compare(base, cur, gate, 0.5))
	if len(regs) != 1 || regs[0].Bench != "BenchmarkStepKernels/LB2D/w1" || regs[0].Unit != "ns/cell" {
		t.Fatalf("regressions = %+v, want the injected LB2D ns/cell slowdown", regs)
	}

	// Within tolerance and improvements: clean.
	cur = snapOf(t,
		Benchmark{Name: "BenchmarkStepKernels/LB2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 55, "nodes/s": 2e6}},
		Benchmark{Name: "BenchmarkStepKernels/FD2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 10}},
	)
	if regs := Regressions(Compare(base, cur, gate, 0.5)); len(regs) != 0 {
		t.Errorf("clean run flagged: %+v", regs)
	}

	// A gated benchmark vanishing from the current run fails too.
	cur = snapOf(t,
		Benchmark{Name: "BenchmarkStepKernels/LB2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 40}},
	)
	regs = Regressions(Compare(base, cur, gate, 0.5))
	if len(regs) != 1 || !regs[0].Missing || regs[0].Bench != "BenchmarkStepKernels/FD2D/w1" {
		t.Errorf("missing gated benchmark not flagged: %+v", regs)
	}

	// Ungated units never regress: nodes/s halving above was not flagged,
	// and a wide-open gate flags it.
	cur = snapOf(t,
		Benchmark{Name: "BenchmarkStepKernels/LB2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 40, "nodes/s": 1e5}},
		Benchmark{Name: "BenchmarkStepKernels/FD2D/w1", Iters: 1, Metrics: map[string]float64{"ns/cell": 30}},
	)
	regs = Regressions(Compare(base, cur, regexp.MustCompile(`.`), 0.5))
	if len(regs) != 1 || regs[0].Unit != "nodes/s" {
		t.Errorf("higher-better gate: %+v", regs)
	}
}

// TestRunEndToEnd drives the CLI surface: normalize a stream to a file,
// compare clean (exit nil), then compare against an injected regression
// (errRegression) with the summary table appended.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	stream := `{"Action":"output","Package":"repro","Test":"BenchmarkStepKernels/LB2D/w1","Output":"BenchmarkStepKernels/LB2D/w1-4 \t 1\t 100 ns/op\t 40.0 ns/cell\n"}`
	streamPath := filepath.Join(dir, "raw.json")
	if err := os.WriteFile(streamPath, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.json")
	var out bytes.Buffer
	if err := run([]string{"-normalize", "-in", streamPath, "-out", basePath}, &out); err != nil {
		t.Fatal(err)
	}

	// Same snapshot on both sides: clean.
	if err := run([]string{"-baseline", basePath, "-current", basePath}, &out); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}

	// Inject a synthetic 3x ns/cell regression and require failure.
	slow := strings.Replace(stream, "40.0 ns/cell", "120.0 ns/cell", 1)
	slowRaw := filepath.Join(dir, "slow-raw.json")
	if err := os.WriteFile(slowRaw, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	slowPath := filepath.Join(dir, "slow.json")
	if err := run([]string{"-normalize", "-in", slowRaw, "-out", slowPath}, &out); err != nil {
		t.Fatal(err)
	}
	summaryPath := filepath.Join(dir, "summary.md")
	out.Reset()
	err := run([]string{"-baseline", basePath, "-current", slowPath, "-summary", summaryPath}, &out)
	if _, ok := err.(errRegression); !ok {
		t.Fatalf("injected regression not fatal: err=%v, output:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkStepKernels/LB2D/w1 ns/cell") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
	md, err2 := os.ReadFile(summaryPath)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !strings.Contains(string(md), "**FAIL**") || !strings.Contains(string(md), "| benchmark |") {
		t.Errorf("summary table missing FAIL row:\n%s", md)
	}

	// Raw streams are rejected by the compare path: the handshake forces
	// -normalize first.
	if err := run([]string{"-baseline", basePath, "-current", streamPath}, &out); err == nil {
		t.Error("raw test2json stream accepted as a snapshot")
	}
}
