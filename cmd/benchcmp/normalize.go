package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json event schema benchmarks
// appear in (`go doc test2json`). A benchmark's result line arrives as
// Output events attributed to the benchmark's synthetic Test — often
// split across several events ("BenchmarkX \t", then the measurements) —
// so Normalize reassembles logical lines per Test before parsing.
type testEvent struct {
	Action  string
	Package string
	Test    string
	Output  string
}

// Normalize parses a `go test -json -bench` stream (or, as a
// convenience, plain `go test -bench` text) into a Snapshot. Lines that
// are not benchmark results — PASS, ok, RUN headers — are skipped;
// goos/goarch/cpu headers are captured as machine context. For JSON
// streams the benchmark name is taken from the event's Test field, which
// never carries the -GOMAXPROCS suffix, so snapshots from machines with
// different core counts align by construction.
func Normalize(data []byte) (*Snapshot, error) {
	s := &Snapshot{Format: formatName, Version: formatVersion}
	seen := map[string]int{}
	add := func(b Benchmark) {
		if i, dup := seen[b.Name]; dup {
			// -count > 1 reruns: keep the last result (one entry per
			// name; CI runs -benchtime 1x -count 1).
			s.Benchmarks[i] = b
			return
		}
		seen[b.Name] = len(s.Benchmarks)
		s.Benchmarks = append(s.Benchmarks, b)
	}
	// Partial output per package/test, reassembled into logical lines.
	partial := map[string]string{}
	handleText := func(key, text string) {
		acc := partial[key] + text
		for {
			nl := strings.IndexByte(acc, '\n')
			if nl < 0 {
				break
			}
			line := acc[:nl]
			acc = acc[nl+1:]
			if v, ok := strings.CutPrefix(line, "goos: "); ok {
				s.Goos = v
				continue
			}
			if v, ok := strings.CutPrefix(line, "goarch: "); ok {
				s.Goarch = v
				continue
			}
			if v, ok := strings.CutPrefix(line, "cpu: "); ok {
				s.CPU = v
				continue
			}
			if b, ok := parseBenchLine(line); ok {
				add(b)
			}
		}
		partial[key] = acc
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1024*1024), 4*1024*1024)
	jsonStream := false
	for sc.Scan() {
		line := sc.Bytes()
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		if trimmed[0] == '{' {
			var ev testEvent
			if err := json.Unmarshal(trimmed, &ev); err != nil {
				return nil, fmt.Errorf("benchcmp: bad test2json line %q: %w", string(trimmed), err)
			}
			jsonStream = true
			if ev.Action != "output" {
				continue
			}
			handleText(ev.Package+"\x00"+ev.Test, ev.Output)
			continue
		}
		if jsonStream {
			return nil, fmt.Errorf("benchcmp: mixed JSON and plain text at %q", string(trimmed))
		}
		handleText("", string(line)+"\n")
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, rest := range partial {
		if rest != "" {
			handleText(key, "\n") // flush a final unterminated line
		}
	}
	return s, nil
}

// parseBenchLine parses one reassembled benchmark result line:
//
//	BenchmarkName[-procs] <iters> <value> <unit> [<value> <unit>...]
//
// Bare "BenchmarkX" progress lines have no measurement pairs and report
// !ok.
func parseBenchLine(text string) (Benchmark, bool) {
	if !strings.HasPrefix(text, "Benchmark") {
		return Benchmark{}, false
	}
	f := strings.Fields(text)
	// Need name, iters and at least one value+unit pair, in full pairs.
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: stripProcs(f[0]), Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// stripProcs removes the trailing -<GOMAXPROCS> suffix Go appends to
// benchmark names when GOMAXPROCS != 1. The heuristic (drop a purely
// numeric final segment) cannot distinguish a genuine numeric sub-bench
// suffix on a single-core machine, so gated benchmarks should avoid
// trailing numeric name segments ("w4", not "4"); JSON streams are
// immune because the Test field carries the canonical name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
