package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// errRegression is the compare-mode failure: deltas were produced and
// written, but a gated metric regressed, so the process must exit 1.
type errRegression struct{ n int }

func (e errRegression) Error() string {
	return fmt.Sprintf("benchcmp: %d benchmark regression(s) beyond tolerance", e.n)
}

func run(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	var (
		normalize = fs.Bool("normalize", false, "normalize a `go test -json -bench` stream into a snapshot")
		in        = fs.String("in", "-", "input stream for -normalize (file or - for stdin)")
		out       = fs.String("out", "-", "output snapshot for -normalize (file or - for stdout)")
		baseline  = fs.String("baseline", "", "baseline snapshot (committed trajectory)")
		current   = fs.String("current", "", "current snapshot (this run)")
		tolerance = fs.Float64("tolerance", 0.5, "allowed fractional change of gated metrics in the bad direction")
		gate      = fs.String("gate", `^ns/cell$`, "regexp over metric units; matching known-direction metrics fail the run on regression")
		summary   = fs.String("summary", "", "append the markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *normalize {
		data, err := readInput(*in)
		if err != nil {
			return err
		}
		snap, err := Normalize(data)
		if err != nil {
			return err
		}
		enc, err := snap.Encode()
		if err != nil {
			return err
		}
		return writeOutput(*out, enc, stdout)
	}

	if *baseline == "" || *current == "" {
		return fmt.Errorf("benchcmp: need -normalize, or both -baseline and -current")
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		return fmt.Errorf("benchcmp: bad -gate: %w", err)
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	curData, err := os.ReadFile(*current)
	if err != nil {
		return err
	}
	baseSnap, err := DecodeSnapshot(baseData)
	if err != nil {
		return fmt.Errorf("%s: %w", *baseline, err)
	}
	curSnap, err := DecodeSnapshot(curData)
	if err != nil {
		return fmt.Errorf("%s: %w", *current, err)
	}

	deltas := Compare(baseSnap, curSnap, gateRe, *tolerance)
	table := MarkdownTable(deltas, *tolerance)
	fmt.Fprint(stdout, table)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(f, "### Benchmark trajectory\n\n%s\n", table); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if regs := Regressions(deltas); len(regs) > 0 {
		for _, d := range regs {
			if d.Missing {
				fmt.Fprintf(stdout, "REGRESSION %s: gated benchmark missing from current run\n", d.Bench)
				continue
			}
			fmt.Fprintf(stdout, "REGRESSION %s %s: %s -> %s (%+.1f%%)\n",
				d.Bench, d.Unit, num(d.Base), num(d.Cur), d.Ratio*100)
		}
		return errRegression{n: len(regs)}
	}
	fmt.Fprintf(stdout, "benchcmp: %d delta rows, no gated regressions\n", len(deltas))
	return nil
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func writeOutput(path string, data []byte, stdout io.Writer) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
