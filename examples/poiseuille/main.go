// Poiseuille: the section-7 validation problem run serially with both
// numerical methods at several resolutions, demonstrating convergence to
// the exact Hagen-Poiseuille solution (the paper: "both methods converge
// quadratically with increased resolution in space").
//
// With node-centred walls, the finite-difference steady state is the exact
// discrete parabola, so its error column sits at the numerical floor; the
// lattice Boltzmann error is dominated by the half-node wall placement of
// bounce-back and shrinks quadratically.
//
//	go run ./examples/poiseuille
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/fd"
	"repro/internal/fluid"
	"repro/internal/lbm"
)

func run(method string, ny int) float64 {
	nu := 0.1
	h := float64(ny) - 2
	g := 0.01 * 2 * nu / (h * h / 4) // fixed peak velocity across resolutions
	par := fluid.DefaultParams()
	par.Nu = nu
	par.Eps = 0.005
	par.ForceX = g
	mask := fluid.ChannelMask2D(4, ny)
	lm := func(x, y int) fluid.CellType { return mask.At(x, y) }
	steps := int(6 * h * h / nu)

	switch method {
	case "fd":
		s, err := fd.NewSolver2D(4, ny, par, lm)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			s.StepSerial(true, false)
		}
		umax := fluid.PoiseuilleMax(0, float64(ny-1), g, nu)
		worst := 0.0
		for y := 1; y < ny-1; y++ {
			want := fluid.PoiseuilleProfile(float64(y), 0, float64(ny-1), g, nu)
			if rel := math.Abs(s.Vx.At(2, y)-want) / umax; rel > worst {
				worst = rel
			}
		}
		return worst
	case "lb":
		s, err := lbm.NewSolver2D(4, ny, par, lm)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			s.StepSerial(true, false)
		}
		y0, y1 := 0.5, float64(ny)-1.5
		umax := fluid.PoiseuilleMax(y0, y1, g, nu)
		worst := 0.0
		for y := 1; y < ny-1; y++ {
			want := fluid.PoiseuilleProfile(float64(y), y0, y1, g, nu)
			if rel := math.Abs(s.Vx.At(2, y)-want) / umax; rel > worst {
				worst = rel
			}
		}
		return worst
	}
	panic("unknown method")
}

func main() {
	fmt.Println("Hagen-Poiseuille convergence (max relative profile error)")
	fmt.Printf("\n%8s %14s %14s %12s\n", "NY", "FD error", "LB error", "LB ratio")
	prev := 0.0
	for _, ny := range []int{11, 16, 21, 31} {
		efd := run("fd", ny)
		elb := run("lb", ny)
		ratio := ""
		if prev > 0 {
			ratio = fmt.Sprintf("%.2fx", prev/elb)
		}
		fmt.Printf("%8d %14.3e %14.3e %12s\n", ny, efd, elb, ratio)
		prev = elb
	}
	fmt.Println("\nLB error falls ~quadratically as the channel is refined;")
	fmt.Println("FD is exact for the parabolic profile (machine-level error).")
}
