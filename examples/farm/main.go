// Farm: the online multi-job scheduler end to end with a real simulation
// in the mix. A low-priority 2D lattice-Boltzmann channel flow starts on
// four hosts of the paper's 25-workstation pool; five virtual minutes
// later a high-priority 22-rank burst arrives and the scheduler preempts
// the simulation through the section-5.1 migration protocol — every rank
// synchronizes, dumps its state and exits. When the burst drains, the
// simulation resumes from its checkpoint on freshly reserved hosts. At
// fifteen virtual minutes a regular user sits back down at one of the
// simulation's workstations: the farm reacts in the same scheduling
// round, migrating just the displaced rank to a fresh host and repricing
// the job, instead of squatting beside the user. After all of that, the
// final solution is still bitwise identical to an undisturbed run.
//
// The scheduler runs with its default EASY backfill (sched.BackfillEASY):
// jobs behind a blocked queue head may only fill gaps if they finish
// before the head's projected start, so bursts of small jobs cannot
// starve a wide one. Set Backfill to sched.BackfillAggressive to see the
// pre-EASY behaviour, or sched.BackfillNone for strict head-of-line
// order.
//
// The farm also checkpoints itself to disk every four virtual minutes
// (CheckpointEvery): the running simulation's rank states are persisted
// through the suspend-and-resume snapshot — without evicting it — next
// to a manifest holding the coordinator's complete bookkeeping, so a
// crashed coordinator could be rebuilt with sched.Restore and finish
// bit-identically (see `go run ./cmd/experiments -exp=crash`).
//
//	go run ./examples/farm
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/sched"
	"repro/internal/syncfile"
)

func config() *core.Config2D {
	d, err := decomp.New2D(2, 2, 40, 24, decomp.Full)
	if err != nil {
		log.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0.01
	par.ForceX = 1e-5
	return &core.Config2D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask2D(40, 24),
		D:      d,
	}
}

func main() {
	const steps = 200

	// Reference: the same flow with the farm to itself.
	ref, _, err := core.RunSequential2D(config(), steps)
	if err != nil {
		log.Fatal(err)
	}

	syncDir, err := os.MkdirTemp("", "fluidsim-farm-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(syncDir)
	sf, err := syncfile.New(syncDir)
	if err != nil {
		log.Fatal(err)
	}
	sf.Poll = time.Millisecond

	job, progs, err := core.NewJob2D(config(), core.HubFactory(), sf, steps)
	if err != nil {
		log.Fatal(err)
	}

	pool := cluster.NewPaperCluster()
	pool.Advance(30 * time.Minute) // everyone idle: the whole pool is free

	s := sched.New(pool, sched.Priority, 42)
	// Durability: persist the whole farm every four virtual minutes. A
	// running simulation is checkpointed through the suspend/resume
	// round trip, so it keeps its hosts and its results stay identical.
	ckptDir, err := os.MkdirTemp("", "fluidsim-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	s.CheckpointEvery = 4 * time.Minute
	s.CheckpointDir = ckptDir
	// The simulation: low priority. Side inflates its virtual workload so
	// the burst arrives mid-run on the scheduler's clock.
	err = s.Submit(sched.JobSpec{
		ID: "channel-sim", Method: "lb2d", JX: 2, JY: 2, Side: 1000, Steps: steps,
		Priority: 0,
	}, &sched.CoreWorkload{Job: job, Cluster: pool})
	if err != nil {
		log.Fatal(err)
	}
	// The burst: 22 ranks, high priority, five virtual minutes in. Only
	// 21 hosts are free then, so the scheduler must preempt.
	err = s.Submit(sched.JobSpec{
		ID: "param-sweep", Method: "lb2d", JX: 11, JY: 2, Side: 40, Steps: 2000,
		Priority: 9, Submit: 5 * time.Minute,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Fifteen virtual minutes in — after the burst has drained and the
	// simulation resumed — a user reclaims one of its workstations.
	reclaimed := false
	s.ScenarioEvery = time.Minute
	s.Scenario = func(t time.Duration, c *cluster.Cluster) {
		if t < 15*time.Minute || reclaimed {
			return
		}
		for _, h := range c.Hosts {
			if h.Owner() == "channel-sim" {
				fmt.Printf("t=%v: user returns to %s; farm migrates the displaced rank\n", t, h.Name)
				c.Reclaim(h)
				reclaimed = true
				return
			}
		}
	}

	fmt.Println("running the farm (priority policy, EASY backfill, seed 42)...")
	s.Close() // no more submissions: Run drains the farm and returns
	sum, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum)

	got := progs.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Vx[i] != got.Vx[i] || ref.Vy[i] != got.Vy[i] {
			log.Fatalf("solution differs at node %d after preemption + migration", i)
		}
	}
	fmt.Printf("\nthe simulation survived %d preemption(s) and %d mid-run migration(s)\n",
		sum.Preemptions, sum.Migrations)
	fmt.Printf("and its %d-step solution is bitwise identical to the undisturbed run\n", steps)
	fmt.Printf("(communication epoch %d after the dump/rebuild round trips)\n", job.Epoch())

	if m, err := ckpt.Load(ckptDir); err == nil {
		saved := 0
		for _, jr := range m.Jobs {
			if len(jr.StateSteps) > 0 {
				saved++
			}
		}
		fmt.Printf("\nlast auto-checkpoint: t=%v, %d jobs in the manifest (%d with rank\n",
			m.SavedAt, len(m.Jobs), saved)
		fmt.Println("states on disk) — a crashed coordinator would restore from it with")
		fmt.Println("sched.Restore and finish this exact farm, bit-identically")
	}
}
