// Farm: the public farm API end to end with a real simulation in the
// mix. A low-priority 2D lattice-Boltzmann channel flow starts on four
// hosts of the paper's 25-workstation pool; five virtual minutes later
// a high-priority 22-rank burst arrives and the farm preempts the
// simulation through the section-5.1 migration protocol — every rank
// synchronizes, dumps its state and exits. When the burst drains, the
// simulation resumes from its checkpoint on freshly reserved hosts. At
// fifteen virtual minutes a regular user sits back down at one of the
// simulation's workstations: the farm reacts in the same scheduling
// round, migrating just the displaced rank to a fresh host and
// repricing the job, instead of squatting beside the user. After all of
// that, the final solution is still bitwise identical to an undisturbed
// run.
//
// The example is written against the public farm package — the
// supported control-plane surface:
//
//   - farm.New builds the farm with functional options (policy, seed,
//     periodic checkpointing, a scripted scenario);
//   - Submit returns a typed *farm.Job handle whose Metrics report the
//     job's lifecycle after the run;
//   - Subscribe taps the structured event stream — every preemption,
//     migration, host reclaim and checkpoint commit of the scheduling
//     rounds, in deterministic order for the fixed seed;
//   - Drain closes the farm and Run(ctx) drives it to completion
//     (cancelling the context would checkpoint and stop it instead).
//
// The farm runs with its default EASY backfill: jobs behind a blocked
// queue head may only fill gaps if they finish before the head's
// projected start, so bursts of small jobs cannot starve a wide one.
// farm.WithBackfill selects the aggressive or strict-order modes.
//
// The farm also checkpoints itself to disk every four virtual minutes
// (farm.WithCheckpoint): the running simulation's rank states are
// persisted through the suspend-and-resume snapshot — without evicting
// it — next to a manifest holding the coordinator's complete
// bookkeeping, so a crashed coordinator could be rebuilt with
// farm.Restore and finish bit-identically (see `go run
// ./cmd/experiments -exp=crash`).
//
//	go run ./examples/farm
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/farm"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/syncfile"
)

func config() *core.Config2D {
	d, err := decomp.New2D(2, 2, 40, 24, decomp.Full)
	if err != nil {
		log.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0.01
	par.ForceX = 1e-5
	return &core.Config2D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask2D(40, 24),
		D:      d,
	}
}

func main() {
	const steps = 200

	// Reference: the same flow with the farm to itself.
	ref, _, err := core.RunSequential2D(config(), steps)
	if err != nil {
		log.Fatal(err)
	}

	syncDir, err := os.MkdirTemp("", "fluidsim-farm-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(syncDir)
	sf, err := syncfile.New(syncDir)
	if err != nil {
		log.Fatal(err)
	}
	sf.Poll = time.Millisecond

	job, progs, err := core.NewJob2D(config(), core.HubFactory(), sf, steps)
	if err != nil {
		log.Fatal(err)
	}

	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute) // everyone idle: the whole pool is free

	// Durability: persist the whole farm every four virtual minutes. A
	// running simulation is checkpointed through the suspend/resume
	// round trip, so it keeps its hosts and its results stay identical.
	ckptDir, err := os.MkdirTemp("", "fluidsim-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)

	// Fifteen virtual minutes in — after the burst has drained and the
	// simulation resumed — a user reclaims one of its workstations.
	reclaimed := false
	f, err := farm.New(pool,
		farm.WithPolicy(farm.Priority),
		farm.WithSeed(42),
		farm.WithCheckpoint(ckptDir, 4*time.Minute, 0),
		farm.WithScenario(time.Minute, func(t time.Duration, c *farm.Cluster) {
			if t < 15*time.Minute || reclaimed {
				return
			}
			for _, h := range c.Hosts {
				if h.Owner() == "channel-sim" {
					c.Reclaim(h)
					reclaimed = true
					return
				}
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	// Tap the structured decision stream before running; the interesting
	// lifecycle events are printed after the run, in emission order.
	sub := f.Subscribe()

	// The simulation: low priority. Side inflates its virtual workload so
	// the burst arrives mid-run on the scheduler's clock.
	sim, err := f.Submit(farm.JobSpec{
		ID: "channel-sim", Method: "lb2d", JX: 2, JY: 2, Side: 1000, Steps: steps,
		Priority: 0,
	}, &farm.CoreWorkload{Job: job, Cluster: pool})
	if err != nil {
		log.Fatal(err)
	}
	// The burst: 22 ranks, high priority, five virtual minutes in. Only
	// 21 hosts are free then, so the scheduler must preempt.
	if _, err := f.Submit(farm.JobSpec{
		ID: "param-sweep", Method: "lb2d", JX: 11, JY: 2, Side: 40, Steps: 2000,
		Priority: 9, Submit: 5 * time.Minute,
	}, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the farm (priority policy, EASY backfill, seed 42)...")
	f.Drain() // no more submissions: Run drains the farm and returns
	sum, err := f.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum)

	fmt.Println("\nlifecycle events (from the farm's structured stream):")
	checkpoints := 0
	for ev := range sub.Events() {
		switch ev.(type) {
		case farm.JobPreempted, farm.HostReclaimed, farm.JobMigrated:
			fmt.Printf("  %s\n", ev)
		case farm.CheckpointSaved:
			checkpoints++
		}
	}
	fmt.Printf("  (plus %d periodic checkpoint commits, every 4 virtual minutes)\n", checkpoints)

	got := progs.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Vx[i] != got.Vx[i] || ref.Vy[i] != got.Vy[i] {
			log.Fatalf("solution differs at node %d after preemption + migration", i)
		}
	}
	simRec, _ := sim.Metrics()
	fmt.Printf("\nthe simulation survived %d preemption(s) and %d mid-run migration(s)\n",
		simRec.Preemptions, simRec.Migrations)
	fmt.Printf("and its %d-step solution is bitwise identical to the undisturbed run\n", steps)
	fmt.Printf("(communication epoch %d after the dump/rebuild round trips)\n", job.Epoch())

	if m, err := ckpt.Load(ckptDir); err == nil {
		saved := 0
		for _, jr := range m.Jobs {
			if len(jr.StateSteps) > 0 {
				saved++
			}
		}
		fmt.Printf("\nlast auto-checkpoint: t=%v, %d jobs in the manifest (%d with rank\n",
			m.SavedAt, len(m.Jobs), saved)
		fmt.Println("states on disk) — a crashed coordinator would restore from it with")
		fmt.Println("farm.Restore and finish this exact farm, bit-identically")
	}
}
