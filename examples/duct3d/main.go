// Duct3d: the three-dimensional story of figure 9. Runs plane-Poiseuille
// flow between plates with the D3Q15 lattice Boltzmann method on a
// (2 x 2 x 2) decomposition — eight worker goroutines exchanging five
// populations per face node through the x/y/z sweep protocol — validates
// the profile against the exact solution, and then asks the performance
// plane what the same decomposition would have cost on the paper's shared
// Ethernet versus the networks its conclusion predicted.
//
//	go run ./examples/duct3d
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/netsim"
	"repro/internal/perf"
)

func main() {
	const (
		nx, ny, nz = 16, 17, 16
		steps      = 3000
	)
	nu, g := 0.1, 2e-5
	par := fluid.DefaultParams()
	par.Nu = nu
	par.Eps = 0
	par.ForceX = g

	d, err := decomp.New3D(2, 2, 2, nx, ny, nz)
	if err != nil {
		log.Fatal(err)
	}
	d.PeriodicX, d.PeriodicZ = true, true
	cfg := &core.Config3D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask3D(nx, ny, nz),
		D:      d,
	}
	fmt.Printf("3D duct %dx%dx%d, (2 x 2 x 2) decomposition, 8 workers, %d steps\n\n",
		nx, ny, nz, steps)
	res, err := core.RunParallel3D(cfg, steps, core.HubFactory())
	if err != nil {
		log.Fatal(err)
	}

	y0, y1 := 0.5, float64(ny)-1.5
	umax := fluid.PoiseuilleMax(y0, y1, g, nu)
	worst := 0.0
	fmt.Printf("%4s %12s %12s\n", "y", "computed", "exact")
	for y := 1; y < ny-1; y++ {
		got := res.At(res.Vx, nx/2, y, nz/2)
		want := fluid.PoiseuilleProfile(float64(y), y0, y1, g, nu)
		fmt.Printf("%4d %12.6g %12.6g\n", y, got, want)
		if rel := abs(got-want) / umax; rel > worst {
			worst = rel
		}
	}
	fmt.Printf("\nworst relative error: %.3g\n\n", worst)

	// What would this cost on 1994 networks? (25^3-per-processor scaled
	// problem of figure 9, P = 8.)
	fmt.Println("the same (P x 1 x 1) 3D workload at 25^3 nodes per processor, P = 8:")
	for _, n := range []struct {
		name string
		net  netsim.Network
	}{
		{"shared 10 Mbps Ethernet  ", perf.Ethernet()},
		{"switched 10 Mbps Ethernet", netsim.SwitchedEthernet()},
		{"FDDI 100 Mbps            ", netsim.FDDI()},
		{"ATM 155 Mbps             ", netsim.ATM()},
	} {
		f, _, _, err := perf.Efficiency3D(8, 1, 1, 25, perf.LB3D, n.net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  efficiency %.3f\n", n.name, f)
	}
	fmt.Println("\nthe shared bus is why the paper calls 3D impractical; the predicted")
	fmt.Println("future networks fix it (see EXPERIMENTS.md, 'networks').")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
