// Acoustics: why subsonic flow forces small time steps (section 6 and
// equation 4). A Gaussian density pulse launched in a periodic box expands
// as an acoustic ring at the speed of sound c_s; the integration step must
// satisfy dx ~ c_s dt to resolve it, which is exactly why the paper uses
// explicit methods — the implicit methods' large time steps buy nothing
// here. The example tracks the wavefront radius against c_s * t for both
// numerical methods.
//
//	go run ./examples/acoustics
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
)

func wavefront(res *core.Result2D, n int, rho0 float64) int {
	bestR, bestV := 0, -1.0
	for r := 1; r < n/2-2; r++ {
		v := res.At(res.Rho, n/2+r, n/2) - rho0
		if v > bestV {
			bestV, bestR = v, r
		}
	}
	return bestR
}

func run(method string, n, steps int) *core.Result2D {
	d, err := decomp.New2D(2, 2, n, n, decomp.Full)
	if err != nil {
		log.Fatal(err)
	}
	d.PeriodicX, d.PeriodicY = true, true
	par := fluid.DefaultParams()
	par.Nu = 0.02
	par.Eps = 0.003
	c := float64(n) / 2
	cfg := &core.Config2D{
		Method: method,
		Par:    par,
		Mask:   fluid.NewMask2D(n, n),
		D:      d,
		InitRho: func(x, y int) float64 {
			return par.Rho0 + fluid.AcousticPulse2D(float64(x), float64(y), c, c, 1e-3, 3)
		},
	}
	res, err := core.RunParallel2D(cfg, steps, core.HubFactory())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	const n = 96
	par := fluid.DefaultParams()
	fmt.Printf("acoustic pulse in a %dx%d periodic box, c_s = %.4f, dt = %g\n", n, n, par.Cs, par.Dt)
	fmt.Printf("(both methods share c_s = 1/sqrt(3) in lattice units)\n\n")
	fmt.Printf("%6s %10s %12s %12s\n", "steps", "c_s*t", "FD radius", "LB radius")
	for _, steps := range []int{15, 25, 35, 45} {
		fd := run(core.MethodFD, n, steps)
		lb := run(core.MethodLB, n, steps)
		fmt.Printf("%6d %10.1f %12d %12d\n",
			steps, par.Cs*float64(steps), wavefront(fd, n, par.Rho0), wavefront(lb, n, par.Rho0))
	}
	fmt.Println("\nthe ring tracks c_s*t: the time step is pinned by acoustics (eq. 4),")
	fmt.Println("so explicit local methods are the right tool and parallelize with")
	fmt.Println("one small boundary exchange per step.")
}
