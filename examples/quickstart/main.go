// Quickstart: simulate Hagen-Poiseuille channel flow with the lattice
// Boltzmann method on a (2 x 2) decomposition, one goroutine per subregion
// (each goroutine playing one workstation), and compare the computed
// velocity profile with the exact solution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
)

func main() {
	const (
		nx, ny = 32, 21
		steps  = 4000
	)

	// The initialization program: physical parameters and the channel
	// geometry (solid walls top and bottom, periodic in the flow
	// direction, driven by a gentle body force).
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0.005
	par.ForceX = 1e-5

	// The decomposition program: a (2 x 2) array of subregions.
	d, err := decomp.New2D(2, 2, nx, ny, decomp.Full)
	if err != nil {
		log.Fatal(err)
	}
	d.PeriodicX = true

	cfg := &core.Config2D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask2D(nx, ny),
		D:      d,
	}

	// The job-submit program: run the four parallel subprocesses over the
	// in-process channel transport.
	res, err := core.RunParallel2D(cfg, steps, core.HubFactory())
	if err != nil {
		log.Fatal(err)
	}

	// Compare with the exact parabolic profile (walls sit half a node
	// outside the outermost fluid nodes under bounce-back).
	y0, y1 := 0.5, float64(ny)-1.5
	umax := fluid.PoiseuilleMax(y0, y1, par.ForceX, par.Nu)
	fmt.Printf("Poiseuille channel %dx%d, %d steps, (2 x 2) decomposition, 4 workers\n\n", nx, ny, steps)
	fmt.Printf("%4s %12s %12s %10s\n", "y", "computed", "exact", "rel.err")
	worst := 0.0
	for y := 1; y < ny-1; y++ {
		got := res.At(res.Vx, nx/2, y)
		want := fluid.PoiseuilleProfile(float64(y), y0, y1, par.ForceX, par.Nu)
		rel := (got - want) / umax
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
		fmt.Printf("%4d %12.6g %12.6g %9.2e\n", y, got, want, rel)
	}
	fmt.Printf("\nworst relative error: %.3g (umax %.4g)\n", worst, umax)
}
