// Fluepipe: a scaled-down version of the paper's figure-1 simulation — a
// jet of air enters a flue pipe, impinges the sharp edge in front of the
// resonant cavity, and sheds vorticity. Runs the lattice Boltzmann method
// on a (5 x 4) decomposition with 20 worker goroutines, then renders the
// equi-vorticity field as ASCII art and a PGM image (fluepipe.pgm).
//
//	go run ./examples/fluepipe
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/geom"
	"repro/internal/viz"
)

func main() {
	const (
		nx, ny = 200, 125 // the paper's 800x500 grid at quarter scale
		steps  = 1200
	)

	par := fluid.DefaultParams()
	par.Nu = 0.02
	par.Eps = 0.01
	par.InletVx = 0.08 // the jet
	par.InletRho = 1.0
	par.OutletRho = 1.0

	mask := geom.FluePipe(nx, ny)
	d, err := decomp.New2D(5, 4, nx, ny, decomp.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flue pipe %dx%d, decomposition %s\n", nx, ny, d)

	cfg := &core.Config2D{Method: core.MethodLB, Par: par, Mask: mask, D: d}
	res, err := core.RunParallel2D(cfg, steps, core.HubFactory())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nequi-vorticity field after %d steps (walls '#', inlet '>', outlet '<'):\n\n", steps)
	fmt.Println(viz.ASCIIVorticity(nx, ny, res.Vorticity, mask, 100))

	f, err := os.Create("fluepipe.pgm")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	lo, hi := viz.SymmetricRange(res.Vorticity)
	if err := viz.WritePGM(f, nx, ny, res.Vorticity, lo, hi); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote fluepipe.pgm")
}
