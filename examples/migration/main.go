// Migration: the section-5.1 scenario end to end. Twenty worker goroutines
// run a flow problem placed on the paper's virtual 25-workstation pool;
// mid-run a regular user starts a full-time job on one of the hosts, the
// five-minute load average climbs past 1.5, the monitoring program detects
// it and migrates the affected subprocess to a free host (global sync,
// state dump, restart, channel re-open) — and the final solution is
// bitwise identical to an undisturbed run.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dump"
	"repro/internal/fluid"
	"repro/internal/syncfile"
)

func config() *core.Config2D {
	d, err := decomp.New2D(5, 4, 60, 40, decomp.Full)
	if err != nil {
		log.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0.01
	par.ForceX = 1e-5
	return &core.Config2D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask2D(60, 40),
		D:      d,
		InitRho: func(x, y int) float64 {
			return 1 + 0.001*math.Sin(2*math.Pi*float64(x)/60)
		},
	}
}

func main() {
	const steps = 400

	// Reference: the same problem with nobody disturbing the cluster.
	ref, _, err := core.RunSequential2D(config(), steps)
	if err != nil {
		log.Fatal(err)
	}

	syncDir, err := os.MkdirTemp("", "fluidsim-sync-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(syncDir)
	sf, err := syncfile.New(syncDir)
	if err != nil {
		log.Fatal(err)
	}
	sf.Poll = time.Millisecond

	job, progs, err := core.NewJob2D(config(), core.HubFactory(), sf, steps)
	if err != nil {
		log.Fatal(err)
	}

	pool := cluster.NewPaperCluster()
	pool.Advance(30 * time.Minute) // everyone idle: the whole pool is free
	if err := job.PlaceOnCluster(pool); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed 20 subprocesses on the pool; rank 7 runs on %s\n", job.HostOf(7).Name)

	job.Start()
	time.Sleep(50 * time.Millisecond) // the computation gets going

	// A regular user shows up on rank 7's workstation.
	busy := job.HostOf(7)
	busy.TouchUser()
	busy.StartJob()
	pool.Advance(10 * time.Minute)
	l1, l5, l15 := busy.Uptime()
	fmt.Printf("user job started on %s; uptime: %.2f %.2f %.2f\n", busy.Name, l1, l5, l15)

	// The monitoring program notices and migrates.
	migrated, err := job.MonitorOnce(cluster.DefaultMigrationPolicy(), func(rank int, st *dump.State) {
		fmt.Printf("rank %d dumped at step %d (%d fields)\n", rank, st.Step, len(st.Fields))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated ranks %v; rank 7 now runs on %s (epoch %d)\n",
		migrated, job.HostOf(7).Name, job.Epoch())

	if err := job.WaitDone(); err != nil {
		log.Fatal(err)
	}
	job.Shutdown()

	got := progs.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Vx[i] != got.Vx[i] || ref.Vy[i] != got.Vy[i] {
			log.Fatalf("solution differs at node %d after migration", i)
		}
	}
	fmt.Printf("final state after %d steps is bitwise identical to the undisturbed run\n", steps)
	fmt.Printf("migration cost model: one 30 s migration per 45 min = %.1f%% overhead\n", 100*30.0/(45*60))
}
