package farm

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// Option configures a farm at construction (New) or restoration
// (Restore). Options replace the old poke-the-scheduler-struct wiring;
// unspecified knobs keep the documented defaults.
type Option func(*config)

type config struct {
	policy      Policy
	policySet   bool
	backfill    BackfillMode
	backfillSet bool
	seed        int64
	seedSet     bool

	timer StepTimer

	workers int

	ckptDir   string
	ckptEvery time.Duration
	ckptGap   time.Duration

	scenario      func(t time.Duration, c *cluster.Cluster)
	scenarioEvery time.Duration

	autoscale      func(t time.Duration, ctl AutoscaleControl)
	autoscaleEvery time.Duration

	logf func(format string, args ...any)
}

func newConfig(opts []Option) config {
	cfg := config{policy: FIFO, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// validate rejects option combinations the event loop would otherwise
// accept and silently ignore. Every failure wraps ErrInvalidSpec.
func (cfg config) validate() error {
	if cfg.scenario != nil && cfg.scenarioEvery <= 0 {
		return fmt.Errorf("farm: %w: WithScenario interval %v is not positive; the callback would never fire",
			ErrInvalidSpec, cfg.scenarioEvery)
	}
	if cfg.scenario == nil && cfg.scenarioEvery > 0 {
		return fmt.Errorf("farm: %w: WithScenario interval %v with a nil callback",
			ErrInvalidSpec, cfg.scenarioEvery)
	}
	if cfg.autoscale != nil && cfg.autoscaleEvery <= 0 {
		return fmt.Errorf("farm: %w: WithAutoscaler interval %v is not positive; the control loop would never tick",
			ErrInvalidSpec, cfg.autoscaleEvery)
	}
	if cfg.autoscale == nil && cfg.autoscaleEvery > 0 {
		return fmt.Errorf("farm: %w: WithAutoscaler interval %v with a nil callback",
			ErrInvalidSpec, cfg.autoscaleEvery)
	}
	if cfg.ckptEvery < 0 {
		return fmt.Errorf("farm: %w: WithCheckpoint interval %v is negative",
			ErrInvalidSpec, cfg.ckptEvery)
	}
	if cfg.ckptEvery > 0 && cfg.ckptDir == "" {
		return fmt.Errorf("farm: %w: WithCheckpoint interval %v without a directory",
			ErrInvalidSpec, cfg.ckptEvery)
	}
	if cfg.workers < 0 {
		return fmt.Errorf("farm: %w: WithWorkers count %d is negative",
			ErrInvalidSpec, cfg.workers)
	}
	return nil
}

// apply transfers the configured knobs onto the scheduler. Policy and
// seed are constructor arguments (New) or manifest state (Restore), so
// they are not re-applied here.
func (cfg config) apply(s *sched.Scheduler) {
	if cfg.backfillSet {
		s.Backfill = cfg.backfill
	}
	if cfg.timer != nil {
		s.Timer = cfg.timer
	}
	s.Workers = cfg.workers
	s.CheckpointDir = cfg.ckptDir
	s.CheckpointEvery = cfg.ckptEvery
	s.CheckpointGap = cfg.ckptGap
	s.Scenario = cfg.scenario
	s.ScenarioEvery = cfg.scenarioEvery
	s.Autoscale = cfg.autoscale
	s.AutoscaleEvery = cfg.autoscaleEvery
	s.Logf = cfg.logf
}

// WithPolicy selects the queueing discipline: FIFO (the default),
// Priority (preempting), or WeightedFair (per-tenant shares). Rejected
// by Restore — a checkpoint manifest carries its own policy.
func WithPolicy(p Policy) Option {
	return func(cfg *config) { cfg.policy = p; cfg.policySet = true }
}

// WithBackfill selects how jobs behind a blocked queue head may use the
// gaps its ranks cannot fill: BackfillEASY (the default), aggressive,
// or none. Rejected by Restore.
func WithBackfill(m BackfillMode) Option {
	return func(cfg *config) { cfg.backfill = m; cfg.backfillSet = true }
}

// WithTimer prices one integration step per placement or migration. The
// default is the compute-only ComputeTimer; PerfTimer adds the modelled
// network. Not persisted in checkpoints — re-pass it to Restore.
func WithTimer(t StepTimer) Option {
	return func(cfg *config) { cfg.timer = t }
}

// WithWorkers sets the intra-rank worker-slab budget applied to every
// placed workload whose solvers accept one (the core jobs do): each
// rank's collide-stream kernels run as n concurrent row or z-plane slabs
// on the shared process pool. Zero (the default) leaves each job its own
// budget — an even share of GOMAXPROCS across its ranks, so co-scheduled
// ranks don't oversubscribe the machine. Solver fields are bit-identical
// at every value — the knob trades wall-clock speed only — and the
// virtual-time pricing still reflects the paper's serial-equivalent
// per-rank work, so figures are unaffected. Not persisted in checkpoints
// — re-pass it to Restore.
func WithWorkers(n int) Option {
	return func(cfg *config) { cfg.workers = n }
}

// WithSeed seeds the randomized placement scan (default 1). A fixed
// seed makes a farm's trace — and its event stream — deterministic.
// Rejected by Restore — the manifest carries the mid-run RNG state.
func WithSeed(seed int64) Option {
	return func(cfg *config) { cfg.seed = seed; cfg.seedSet = true }
}

// WithCheckpoint makes the farm durable in dir: the event loop persists
// the whole farm at every multiple of every in virtual time (while the
// farm has work), so a crashed coordinator loses at most one interval,
// and Run's cancellation path saves a final checkpoint before
// interrupting. gap paces the per-rank dump writes (the section-5.2
// etiquette for a shared file server); zero writes back to back. An
// every of zero arms the directory for cancellation saves only. Not
// persisted in checkpoints — re-pass it to Restore.
func WithCheckpoint(dir string, every, gap time.Duration) Option {
	return func(cfg *config) { cfg.ckptDir = dir; cfg.ckptEvery = every; cfg.ckptGap = gap }
}

// WithScenario invokes fn on the scheduling goroutine at every multiple
// of every of virtual time while the farm has work. Experiments script
// user activity through it (cluster.Reclaim / cluster.UserGone storms)
// and may Submit new jobs or call Farm.Checkpoint / Farm.Interrupt;
// farm/workload compiles declarative scenario scripts onto this hook.
// The interval must be positive when fn is set: New and Restore reject
// every <= 0 with ErrInvalidSpec instead of arming a callback that
// never fires. Not persisted in checkpoints — re-attach the same
// stateless function to a restored farm or its virtual-time grid
// changes.
func WithScenario(every time.Duration, fn func(t time.Duration, c *cluster.Cluster)) Option {
	return func(cfg *config) { cfg.scenarioEvery = every; cfg.scenario = fn }
}

// WithAutoscaler attaches a resize control loop: fn is invoked on the
// scheduling goroutine at every multiple of every of virtual time while
// the farm has work, right after the scenario tick of the same instant,
// so the controller observes the scripted user activity it must react
// to. The control handle samples queue depth, pool utilization and
// per-job progress, and actuates grow/shrink decisions synchronously —
// farm/autoscale provides a ready-made supply/demand policy with
// hysteresis and cooldown to plug in here. The interval must be
// positive when fn is set: New and Restore reject every <= 0 with
// ErrInvalidSpec. Not persisted in checkpoints — re-attach the same
// controller to a restored farm (like WithScenario) or the virtual-time
// grid, and with it the bit-identity guarantee, changes.
func WithAutoscaler(every time.Duration, fn func(t time.Duration, ctl AutoscaleControl)) Option {
	return func(cfg *config) { cfg.autoscaleEvery = every; cfg.autoscale = fn }
}

// WithLogf attaches a debug log sink — a thin string adapter over the
// diagnostic events (EASY degrades and the like). Prefer Subscribe for
// structured consumption.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(cfg *config) { cfg.logf = logf }
}
