package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/sched"
)

// ErrStopped is returned by Job.Wait when the farm's Run returned —
// drained, interrupted or failed — before the job finished.
var ErrStopped = errors.New("farm run ended before the job finished")

// Status is a job's position in the farm lifecycle — the scheduler's
// Phase, shared so the two can never drift.
type Status = sched.Phase

const (
	// StatusPending: submitted, arrival time not yet reached.
	StatusPending = sched.PhasePending
	// StatusQueued: admitted (or preempted back), waiting for placement.
	StatusQueued = sched.PhaseQueued
	// StatusRunning: placed on a reservation, accruing virtual time.
	StatusRunning = sched.PhaseRunning
	// StatusFinished: completed; Metrics is final.
	StatusFinished = sched.PhaseFinished
)

// Job is the typed handle Submit returns: it tracks one job through the
// farm without exposing scheduler internals. All methods are safe from
// any goroutine while the farm runs.
type Job struct {
	id string
	f  *Farm

	mu     sync.Mutex
	status Status
	rec    JobMetrics
	hasRec bool
	done   chan struct{} // closed when the job finishes
}

func newJob(f *Farm, id string) *Job {
	return &Job{id: id, f: f, done: make(chan struct{})}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status returns the job's current lifecycle position, maintained from
// the farm's event stream (preemption moves a job back to
// StatusQueued; migration keeps it StatusRunning).
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Metrics returns the job's final metrics record; ok is false until the
// job has finished.
func (j *Job) Metrics() (JobMetrics, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec, j.hasRec
}

// Done returns a channel closed when the job finishes — the select-able
// form of Wait.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes (nil), the context is done
// (ctx.Err()), or the farm's Run returns without finishing it (an error
// wrapping ErrStopped, and the run's own error when it failed). Wait
// may start before Run does, and a waiter that outlives one Run re-arms
// on the next: it reports ErrStopped only for the run generation that
// actually ended without finishing the job.
func (j *Job) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() // tolerate nil like Farm.Run does
	}
	f := j.f
	for {
		f.mu.Lock()
		rs := f.run
		f.mu.Unlock()
		select {
		case <-j.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-rs.done:
			// That run returned; the job may have finished in its last
			// round.
			select {
			case <-j.done:
				return nil
			default:
			}
			f.mu.Lock()
			superseded := f.run != rs
			f.mu.Unlock()
			if superseded {
				// A newer Run took over while this waiter slept; wait on
				// it instead of reporting a stale generation's ending.
				continue
			}
			if rs.err != nil {
				return fmt.Errorf("farm: job %s: %w: %w", j.id, ErrStopped, rs.err)
			}
			return fmt.Errorf("farm: job %s: %w", j.id, ErrStopped)
		}
	}
}

// Resize asks the farm to re-decompose the running job onto n ranks at
// the event loop's current virtual time: the job suspends at a step
// boundary, re-splits onto a near-square lattice of n subregions within
// its original global grid, and continues bit-identically on the new
// placement (growing claims extra hosts, shrinking releases the tail).
// Resizing to the current rank count is a no-op.
//
// Safe from any goroutine; the request is processed by the next loop
// iteration and Resize blocks until it is answered, the context is done
// (ctx.Err()), or the farm's Run returns without answering (an error
// wrapping ErrStopped). Failures are typed — ErrUnknownJob,
// ErrNotRunning, ErrNoCapacity, or the workload's refusal (a simulation
// with the seam-dependent filter enabled cannot resize) — and leave the
// job running on its old decomposition.
func (j *Job) Resize(ctx context.Context, n int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	f := j.f
	ch := f.s.RequestResize(j.id, n)
	for {
		f.mu.Lock()
		rs := f.run
		f.mu.Unlock()
		select {
		case err := <-ch:
			return err
		case <-ctx.Done():
			return ctx.Err()
		case <-rs.done:
			// That run returned; the request may have been answered in its
			// last iteration — and a newer Run may yet drain the queue.
			select {
			case err := <-ch:
				return err
			default:
			}
			f.mu.Lock()
			superseded := f.run != rs
			f.mu.Unlock()
			if superseded {
				continue
			}
			if rs.err != nil {
				return fmt.Errorf("farm: resize %s: %w: %w", j.id, ErrStopped, rs.err)
			}
			return fmt.Errorf("farm: resize %s: %w", j.id, ErrStopped)
		}
	}
}

// finish records the job's completion.
func (j *Job) finish(rec JobMetrics) {
	j.mu.Lock()
	j.status = StatusFinished
	j.rec, j.hasRec = rec, true
	j.mu.Unlock()
	close(j.done)
}

// setStatus records a lifecycle transition short of completion.
func (j *Job) setStatus(st Status) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}
