package farm_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/farm"
	"repro/internal/cluster"
	"repro/internal/sched"
)

func quietPool() *cluster.Cluster {
	c := cluster.NewPaperCluster()
	c.Advance(30 * time.Minute)
	return c
}

// mustNew builds a farm from options the test knows are valid.
func mustNew(t testing.TB, c *cluster.Cluster, opts ...farm.Option) *farm.Farm {
	t.Helper()
	f, err := farm.New(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestNewRejectsInvalidOptions: misconfigured options are refused at
// construction with ErrInvalidSpec — notably a scenario interval that
// is not positive, which the event loop would otherwise arm and never
// fire (the old silent behavior).
func TestNewRejectsInvalidOptions(t *testing.T) {
	noop := func(time.Duration, *cluster.Cluster) {}
	cases := []struct {
		name string
		opts []farm.Option
	}{
		{"scenario-zero-interval", []farm.Option{farm.WithScenario(0, noop)}},
		{"scenario-negative-interval", []farm.Option{farm.WithScenario(-time.Minute, noop)}},
		{"scenario-nil-callback", []farm.Option{farm.WithScenario(time.Minute, nil)}},
		{"checkpoint-negative-interval", []farm.Option{farm.WithCheckpoint(t.TempDir(), -time.Second, 0)}},
		{"checkpoint-interval-without-dir", []farm.Option{farm.WithCheckpoint("", time.Minute, 0)}},
		{"workers-negative", []farm.Option{farm.WithWorkers(-1)}},
	}
	for _, tc := range cases {
		if _, err := farm.New(quietPool(), tc.opts...); !errors.Is(err, farm.ErrInvalidSpec) {
			t.Errorf("%s: New returned %v, want ErrInvalidSpec", tc.name, err)
		}
	}
	// Restore applies the same option validation before touching disk.
	if _, err := farm.Restore(t.TempDir(), quietPool(), nil, farm.WithScenario(0, noop)); !errors.Is(err, farm.ErrInvalidSpec) {
		t.Errorf("Restore with zero scenario interval: %v, want ErrInvalidSpec", err)
	}
}

// stormMix is the reclaim-storm workload of the experiments: a 20-rank
// head behind a stream of 8-rank jobs.
func stormMix() []farm.JobSpec {
	specs := []farm.JobSpec{
		{ID: "head-wide", Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 6000,
			Submit: 2 * time.Minute},
	}
	for k := 0; k < 8; k++ {
		specs = append(specs, farm.JobSpec{
			ID:     fmt.Sprintf("small-%d", k),
			Method: "lb2d", JX: 4, JY: 2, Side: 40, Steps: 15000,
			Submit: time.Duration(k) * 5 * time.Minute,
		})
	}
	return specs
}

// storm scripts deterministic user activity from the observable cluster
// state only, so the same function can be re-attached to a restored
// farm.
func storm(t time.Duration, c *cluster.Cluster) {
	switch {
	case t > 0 && t%(10*time.Minute) == 0:
		for _, h := range c.Hosts {
			if h.Assigned() >= 0 && !h.Reclaimed() {
				c.Reclaim(h)
				return
			}
		}
	case t > 5*time.Minute && t%(10*time.Minute) == 5*time.Minute:
		for _, h := range c.Hosts {
			if h.Reclaimed() && h.Jobs() > 0 {
				c.UserGone(h)
				return
			}
		}
	}
}

// collectTrace runs the storm workload under the farm API and returns
// the event trace (one String per event) plus the summary.
func collectTrace(t *testing.T, opts ...farm.Option) ([]string, farm.Summary) {
	t.Helper()
	opts = append([]farm.Option{
		farm.WithSeed(1),
		farm.WithScenario(time.Minute, storm),
	}, opts...)
	f := mustNew(t, quietPool(), opts...)
	sub := f.SubscribeBuffered(1 << 14)
	for _, sp := range stormMix() {
		if _, err := f.Submit(sp, nil); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	sum, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("trace subscriber dropped %d events; grow the buffer", sub.Dropped())
	}
	var trace []string
	for ev := range sub.Events() {
		trace = append(trace, ev.String())
	}
	return trace, sum
}

// TestEventTraceDeterministic: two runs of the same trace with the same
// seed produce byte-identical event streams.
func TestEventTraceDeterministic(t *testing.T) {
	a, sumA := collectTrace(t)
	b, sumB := collectTrace(t)
	if len(a) == 0 {
		t.Fatal("no events emitted")
	}
	if ta, tb := strings.Join(a, "\n"), strings.Join(b, "\n"); ta != tb {
		t.Errorf("event traces differ between identical runs:\n--- run A ---\n%s\n--- run B ---\n%s", ta, tb)
	}
	if !reflect.DeepEqual(sumA, sumB) {
		t.Error("summaries differ between identical runs")
	}
	// The stream covers the round's decision points: admissions,
	// placements, completions, reclaims and migrations all appear for
	// this workload.
	kinds := map[string]bool{}
	for _, line := range a {
		for _, k := range []string{" queued ", " placed ", " finished ", " reclaimed ", " migrated "} {
			if strings.Contains(line, k) {
				kinds[k] = true
			}
		}
	}
	if len(kinds) != 5 {
		t.Errorf("storm trace misses decision points: got %v", kinds)
	}
}

// TestEventTraceAcrossRestore: the concatenation of a crashed farm's
// events and its restored continuation is byte-identical to the
// uninterrupted stream — a restored farm emits exactly the events the
// dead coordinator had not yet emitted.
func TestEventTraceAcrossRestore(t *testing.T) {
	const crashAt = 12 * time.Minute

	// Reference: uninterrupted, but checkpointing at the same virtual
	// time so the CheckpointSaved event appears in both streams.
	refDir := t.TempDir()
	saved := false
	var ref *farm.Farm
	refTraceRun := func() []string {
		ref = mustNew(t, quietPool(),
			farm.WithSeed(1),
			farm.WithScenario(time.Minute, func(tt time.Duration, c *cluster.Cluster) {
				storm(tt, c)
				if tt >= crashAt && !saved {
					saved = true
					if err := ref.Checkpoint(refDir); err != nil {
						t.Error(err)
					}
				}
			}))
		sub := ref.SubscribeBuffered(1 << 14)
		for _, sp := range stormMix() {
			if _, err := ref.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		ref.Drain()
		if _, err := ref.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var trace []string
		for ev := range sub.Events() {
			trace = append(trace, ev.String())
		}
		return trace
	}
	want := refTraceRun()

	// The doomed run: checkpoint at crashAt, then die.
	dir := t.TempDir()
	crashed := false
	var doomed *farm.Farm
	doomed = mustNew(t, quietPool(),
		farm.WithSeed(1),
		farm.WithScenario(time.Minute, func(tt time.Duration, c *cluster.Cluster) {
			storm(tt, c)
			if tt >= crashAt && !crashed {
				crashed = true
				if err := doomed.Checkpoint(dir); err != nil {
					t.Error(err)
				}
				doomed.Interrupt()
			}
		}))
	subA := doomed.SubscribeBuffered(1 << 14)
	for _, sp := range stormMix() {
		if _, err := doomed.Submit(sp, nil); err != nil {
			t.Fatal(err)
		}
	}
	doomed.Drain()
	if _, err := doomed.Run(context.Background()); !errors.Is(err, farm.ErrInterrupted) {
		t.Fatalf("doomed run: %v, want ErrInterrupted", err)
	}
	// An interrupted farm's stream stays open (the farm could Run
	// again); this coordinator is dead, so detach explicitly — the
	// buffered events stay readable and the range ends.
	subA.Close()
	var got []string
	for ev := range subA.Events() {
		got = append(got, ev.String())
	}

	// The restored continuation re-attaches a fresh subscriber.
	restored, err := farm.Restore(dir, cluster.NewPaperCluster(), nil,
		farm.WithScenario(time.Minute, storm))
	if err != nil {
		t.Fatal(err)
	}
	subB := restored.SubscribeBuffered(1 << 14)
	if _, err := restored.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for ev := range subB.Events() {
		got = append(got, ev.String())
	}

	if wantS, gotS := strings.Join(want, "\n"), strings.Join(got, "\n"); wantS != gotS {
		t.Errorf("crash+restore event stream differs from the uninterrupted one:\n--- uninterrupted ---\n%s\n--- crashed+restored ---\n%s", wantS, gotS)
	}
}

// TestFarmMatchesRawScheduler: the reclaim-storm experiment driven
// through the public farm API produces a summary bit-identical to the
// raw internal scheduler configured by struct fields — the redesign
// changed the surface, not the schedule.
func TestFarmMatchesRawScheduler(t *testing.T) {
	for _, mode := range []farm.BackfillMode{farm.BackfillEASY, farm.BackfillAggressive} {
		raw := sched.New(quietPool(), sched.FIFO, 1)
		raw.Backfill = mode
		raw.ScenarioEvery = time.Minute
		raw.Scenario = storm
		for _, sp := range stormMix() {
			if err := raw.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		raw.Close()
		want, err := raw.Run()
		if err != nil {
			t.Fatal(err)
		}

		f := mustNew(t, quietPool(),
			farm.WithSeed(1),
			farm.WithBackfill(mode),
			farm.WithScenario(time.Minute, storm))
		for _, sp := range stormMix() {
			if _, err := f.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		f.Drain()
		got, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("backfill %v: farm summary differs from the raw scheduler\nraw:\n%v\nfarm:\n%v", mode, want, got)
		}
	}
}

// TestSlowSubscriberDoesNotStall: a subscriber that never drains cannot
// block the scheduling round — overflow events are dropped and counted,
// and the buffered prefix stays readable.
func TestSlowSubscriberDoesNotStall(t *testing.T) {
	f := mustNew(t, quietPool(), farm.WithSeed(1),
		farm.WithScenario(time.Minute, storm))
	sub := f.SubscribeBuffered(2)
	for _, sp := range stormMix() {
		if _, err := f.Submit(sp, nil); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := f.Run(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run stalled behind an undrained subscriber")
	}
	if sub.Dropped() == 0 {
		t.Error("expected overflow drops on a 2-slot buffer")
	}
	var kept []farm.Event
	for ev := range sub.Events() {
		kept = append(kept, ev)
	}
	if len(kept) != 2 {
		t.Errorf("kept %d buffered events, want exactly the 2 oldest", len(kept))
	}
}

// TestSubmitTypedErrors: the public surface exposes the sentinel
// rejections for errors.Is branching.
func TestSubmitTypedErrors(t *testing.T) {
	f := mustNew(t, quietPool())
	ok := farm.JobSpec{ID: "x", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}
	if _, err := f.Submit(ok, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(ok, nil); !errors.Is(err, farm.ErrDuplicateID) {
		t.Errorf("duplicate: %v, want ErrDuplicateID", err)
	}
	if _, err := f.Submit(farm.JobSpec{ID: "bad"}, nil); !errors.Is(err, farm.ErrInvalidSpec) {
		t.Errorf("invalid: %v, want ErrInvalidSpec", err)
	}
	if _, err := f.Submit(farm.JobSpec{ID: "huge", Method: "lb2d", JX: 6, JY: 5, Side: 4, Steps: 1}, nil); !errors.Is(err, farm.ErrNoCapacity) {
		t.Errorf("oversized: %v, want ErrNoCapacity", err)
	}
	f.Drain()
	if _, err := f.Submit(farm.JobSpec{ID: "late", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}, nil); !errors.Is(err, farm.ErrClosed) {
		t.Errorf("after Drain: %v, want ErrClosed", err)
	}
	// A rejected ID is not burned: the huge job's slot is reusable on a
	// pool that fits it (fresh farm, since this one is drained).
	f2 := mustNew(t, quietPool())
	if _, err := f2.Submit(farm.JobSpec{ID: "huge", Method: "lb2d", JX: 5, JY: 5, Side: 4, Steps: 1}, nil); err != nil {
		t.Errorf("25-rank job on the 25-host pool rejected: %v", err)
	}
}

// TestJobHandleLifecycle: the handle tracks status through the farm,
// Wait unblocks on completion, and Metrics carries the final record.
func TestJobHandleLifecycle(t *testing.T) {
	f := mustNew(t, quietPool(), farm.WithSeed(1))
	j, err := f.Submit(farm.JobSpec{
		ID: "solo", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 100,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "solo" || j.Status() != farm.StatusPending {
		t.Fatalf("fresh handle: id %q status %v", j.ID(), j.Status())
	}
	if _, ok := j.Metrics(); ok {
		t.Error("metrics available before the job ran")
	}
	f.Drain()
	go func() {
		if _, err := f.Run(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status() != farm.StatusFinished {
		t.Errorf("status after Wait = %v, want finished", j.Status())
	}
	rec, ok := j.Metrics()
	if !ok || rec.ID != "solo" || rec.Ranks != 4 {
		t.Errorf("metrics after Wait: %+v ok=%v", rec, ok)
	}
	// A second Wait returns immediately; a canceled context wins over a
	// never-finishing wait.
	if err := j.Wait(ctx); err != nil {
		t.Errorf("second Wait: %v", err)
	}
	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	f2 := mustNew(t, quietPool())
	jj, err := f2.Submit(farm.JobSpec{ID: "later", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jj.Wait(canceled); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait with canceled ctx: %v", err)
	}
}

// TestWaitAfterInterruptedRun: when Run returns without finishing a
// job, Wait reports ErrStopped (wrapping the run's error) instead of
// hanging — including a Wait that started before Run was ever called.
func TestWaitAfterInterruptedRun(t *testing.T) {
	f := mustNew(t, quietPool())
	j, err := f.Submit(farm.JobSpec{ID: "orphan", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A waiter that begins before Run must still observe the run ending.
	earlyErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		earlyErr <- j.Wait(ctx)
	}()
	f.Interrupt()
	if _, err := f.Run(context.Background()); !errors.Is(err, farm.ErrInterrupted) {
		t.Fatalf("interrupted Run: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = j.Wait(ctx)
	if !errors.Is(err, farm.ErrStopped) || !errors.Is(err, farm.ErrInterrupted) {
		t.Errorf("Wait after interrupted run: %v, want ErrStopped wrapping ErrInterrupted", err)
	}
	if err := <-earlyErr; !errors.Is(err, farm.ErrStopped) {
		t.Errorf("Wait started before Run: %v, want ErrStopped (not a context timeout)", err)
	}
	if _, ok := f.Job("orphan"); !ok {
		t.Error("handle lookup lost the job")
	}
}

// TestRunContextCancelCheckpoints: cancelling Run's context persists
// the farm (checkpoint directory configured) before interrupting, and
// the restored continuation finishes bit-identically to a run that was
// never cancelled.
func TestRunContextCancelCheckpoints(t *testing.T) {
	newStorm := func(dir string) *farm.Farm {
		f := mustNew(t, quietPool(),
			farm.WithSeed(1),
			farm.WithCheckpoint(dir, 0, 0), // cancellation saves only
			farm.WithScenario(time.Minute, storm))
		for _, sp := range stormMix() {
			if _, err := f.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		f.Drain()
		return f
	}

	// Reference: the same farm, never cancelled. The checkpoint dir is
	// configured but no periodic save fires, so the trace is untouched.
	want, err := newStorm(t.TempDir()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	f := newStorm(dir)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the run checkpoints and stops at its first check
	_, err = f.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Run: %v, want context.Canceled", err)
	}

	restored, err := farm.Restore(dir, cluster.NewPaperCluster(), nil,
		farm.WithScenario(time.Minute, storm))
	if err != nil {
		t.Fatalf("restore from the cancellation checkpoint: %v", err)
	}
	got, err := restored.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored-after-cancel summary differs from the uninterrupted run\nwant:\n%v\ngot:\n%v", want, got)
	}
}

// TestSubscribeAfterRunIsClosed: a subscription made once the stream is
// over arrives pre-closed instead of blocking its reader forever; one
// made before the next Run observes that run and closes with it.
func TestSubscribeAfterRunIsClosed(t *testing.T) {
	f := mustNew(t, quietPool())
	if _, err := f.Submit(farm.JobSpec{ID: "a", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}, nil); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	late := f.Subscribe()
	for range late.Events() {
		t.Error("pre-closed subscription delivered an event")
	}
	if late.Dropped() != 0 {
		t.Errorf("pre-closed subscription dropped %d", late.Dropped())
	}
}

// TestRunAgainAfterInterrupt: an interrupt is consumed by the Run that
// honors it — a later Run of the same farm starts clean instead of
// being aborted by the stale request.
func TestRunAgainAfterInterrupt(t *testing.T) {
	f := mustNew(t, quietPool())
	j, err := f.Submit(farm.JobSpec{ID: "late-bloomer", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Interrupt()
	if _, err := f.Run(context.Background()); !errors.Is(err, farm.ErrInterrupted) {
		t.Fatalf("interrupted Run: %v", err)
	}
	f.Drain()
	sum, err := f.Run(context.Background())
	if err != nil {
		t.Fatalf("re-Run after a consumed interrupt: %v", err)
	}
	if len(sum.Jobs) != 1 || j.Status() != farm.StatusFinished {
		t.Errorf("re-Run finished %d jobs, handle status %v", len(sum.Jobs), j.Status())
	}
}

// TestRunAfterDrainFinalized: draining a farm whose Run was interrupted
// hands its placed jobs' reservations back, so a later Run refuses with
// a descriptive error instead of panicking on the missing reservations.
func TestRunAfterDrainFinalized(t *testing.T) {
	interrupted := false
	var f *farm.Farm
	f = mustNew(t, quietPool(),
		farm.WithSeed(1),
		farm.WithScenario(time.Minute, func(tt time.Duration, c *cluster.Cluster) {
			if tt >= 2*time.Minute && !interrupted {
				interrupted = true
				f.Interrupt()
			}
		}))
	if _, err := f.Submit(farm.JobSpec{ID: "held", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 100000}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); !errors.Is(err, farm.ErrInterrupted) {
		t.Fatalf("interrupted run: %v", err)
	}
	f.Drain() // finalizes: the held reservations go back to the pool
	if _, err := f.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "finalized") {
		t.Fatalf("Run after finalizing Drain: %v, want the finalized-farm refusal", err)
	}
}

// TestRunResumesBitIdentical: interrupting a farm mid-storm — with
// virtual time elapsed and jobs placed — and calling Run again on the
// same in-memory farm finishes bit-identically to an uninterrupted run:
// the resumed Run keeps the original clock anchor and re-enters the
// loop exactly at the round boundary the interrupt cut.
func TestRunResumesBitIdentical(t *testing.T) {
	const stopAt = 12 * time.Minute

	run := func(interrupt bool) farm.Summary {
		interrupted := false
		var f *farm.Farm
		f = mustNew(t, quietPool(),
			farm.WithSeed(1),
			farm.WithScenario(time.Minute, func(tt time.Duration, c *cluster.Cluster) {
				storm(tt, c)
				if interrupt && tt >= stopAt && !interrupted {
					interrupted = true
					f.Interrupt()
				}
			}))
		for _, sp := range stormMix() {
			if _, err := f.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		f.Drain()
		if interrupt {
			if _, err := f.Run(context.Background()); !errors.Is(err, farm.ErrInterrupted) {
				t.Fatalf("interrupted run: %v", err)
			}
		}
		sum, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}

	want := run(false)
	got := run(true)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed farm differs from the uninterrupted one\nwant:\n%v\ngot:\n%v", want, got)
	}
}

// TestRestoreRejectsManifestOptions: policy, backfill and seed belong
// to the checkpoint manifest; Restore refuses overrides.
func TestRestoreRejectsManifestOptions(t *testing.T) {
	dir := t.TempDir()
	f := mustNew(t, quietPool(), farm.WithSeed(7))
	if _, err := f.Submit(farm.JobSpec{ID: "a", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []farm.Option{
		farm.WithPolicy(farm.Priority),
		farm.WithBackfill(farm.BackfillNone),
		farm.WithSeed(9),
	} {
		if _, err := farm.Restore(dir, cluster.NewPaperCluster(), nil, opt); err == nil {
			t.Error("Restore accepted a manifest-owned option override")
		}
	}
	if _, err := farm.Restore(dir, cluster.NewPaperCluster(), nil); err != nil {
		t.Errorf("plain Restore failed: %v", err)
	}
}
