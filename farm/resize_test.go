package farm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/farm"
	"repro/internal/cluster"
)

// oneSecondTimer prices every step at one virtual second, so resize
// timelines are independent of host speeds and rank counts.
func oneSecondTimer(farm.JobSpec, farm.Shape, []*farm.Host) (float64, error) {
	return 1, nil
}

// TestWithAutoscalerValidation: the autoscaler option is validated at
// construction like WithScenario — an interval that would never tick,
// or a tick with no callback, is refused with ErrInvalidSpec.
func TestWithAutoscalerValidation(t *testing.T) {
	noop := func(time.Duration, farm.AutoscaleControl) {}
	cases := []struct {
		name string
		opt  farm.Option
	}{
		{"zero-interval", farm.WithAutoscaler(0, noop)},
		{"negative-interval", farm.WithAutoscaler(-time.Second, noop)},
		{"nil-callback", farm.WithAutoscaler(time.Second, nil)},
	}
	for _, tc := range cases {
		if _, err := farm.New(quietPool(), tc.opt); !errors.Is(err, farm.ErrInvalidSpec) {
			t.Errorf("%s: New returned %v, want ErrInvalidSpec", tc.name, err)
		}
	}
	if _, err := farm.New(quietPool(), farm.WithAutoscaler(time.Second, noop)); err != nil {
		t.Errorf("valid autoscaler refused: %v", err)
	}
}

// TestJobResizeLifecycle drives Job.Resize through the public API from
// a separate goroutine — the supported pattern — covering the success
// path, the no-op, the typed refusals, and the post-completion and
// post-run answers. The scenario hook releases one request per tick and
// briefly holds the event loop, so each request is enqueued while the
// job is deterministically in the state the assertion wants.
func TestJobResizeLifecycle(t *testing.T) {
	const requests = 6
	start := make([]chan struct{}, requests)
	for i := range start {
		start[i] = make(chan struct{})
	}
	step := 0
	hook := func(tt time.Duration, _ *cluster.Cluster) {
		due := step < requests-1 && tt >= time.Duration(step+1)*5*time.Second ||
			step == requests-1 && tt > 600*time.Second // after demo finishes
		if due {
			close(start[step])
			step++
			// Give the released request time to reach the farm's queue
			// before the loop moves on; it is answered next iteration.
			time.Sleep(20 * time.Millisecond)
		}
	}
	f := mustNew(t, quietPool(),
		farm.WithSeed(5),
		farm.WithTimer(oneSecondTimer),
		farm.WithScenario(5*time.Second, hook))
	job, err := f.Submit(farm.JobSpec{
		ID: "demo", Method: "lb2d", JX: 2, JY: 2, Side: 10, Steps: 600,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A second, longer job keeps the event loop alive after demo
	// finishes, so the post-completion request gets a real answer.
	if _, err := f.Submit(farm.JobSpec{
		ID: "tail", Method: "lb2d", JX: 1, JY: 1, Side: 10, Steps: 1200,
	}, nil); err != nil {
		t.Fatal(err)
	}
	f.Drain()

	res := make(chan []error, 1)
	go func() {
		var errs []error
		for i, n := range []int{6, 6, 0, 26, 4} {
			// grow 4->6; already 6: no-op; nonsense width; wider than
			// the pool; shrink back 6->4.
			<-start[i]
			errs = append(errs, job.Resize(nil, n))
		}
		<-job.Done()
		<-start[requests-1]
		errs = append(errs, job.Resize(nil, 6)) // finished: not running
		res <- errs
	}()

	sum, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	errs := <-res
	if errs[0] != nil {
		t.Errorf("grow: %v", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("same-size no-op: %v", errs[1])
	}
	if errs[2] == nil {
		t.Error("resize to 0 ranks succeeded")
	}
	if !errors.Is(errs[3], farm.ErrNoCapacity) {
		t.Errorf("resize past the pool: %v, want ErrNoCapacity", errs[3])
	}
	if errs[4] != nil {
		t.Errorf("shrink: %v", errs[4])
	}
	if !errors.Is(errs[5], farm.ErrNotRunning) {
		t.Errorf("resize after finish: %v, want ErrNotRunning", errs[5])
	}

	rec, ok := job.Metrics()
	if !ok {
		t.Fatal("demo has no final metrics")
	}
	if rec.Resizes != 2 || rec.GrowRanks != 2 || rec.ShrinkRanks != 2 || rec.Ranks != 4 {
		t.Errorf("resizes=%d grow=%d shrink=%d ranks=%d, want 2/2/2/4",
			rec.Resizes, rec.GrowRanks, rec.ShrinkRanks, rec.Ranks)
	}
	if sum.Resizes != 2 {
		t.Errorf("summary resizes = %d, want 2", sum.Resizes)
	}

	// The run has drained: a late request is answered by the generation
	// check, not left hanging.
	if err := job.Resize(nil, 8); !errors.Is(err, farm.ErrStopped) {
		t.Errorf("resize after Run returned: %v, want ErrStopped", err)
	}
}

// TestJobResizeContextCanceled: a request against a farm whose loop is
// not serving unblocks on the caller's context.
func TestJobResizeContextCanceled(t *testing.T) {
	f := mustNew(t, quietPool())
	job, err := f.Submit(farm.JobSpec{
		ID: "idle", Method: "lb2d", JX: 2, JY: 2, Side: 10, Steps: 100,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := job.Resize(ctx, 6); !errors.Is(err, context.Canceled) {
		t.Errorf("resize with canceled context: %v, want context.Canceled", err)
	}
}
