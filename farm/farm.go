// Package farm is the supported public surface for running a
// simulation farm: many queued jobs sharing one virtual workstation
// pool, with admission, capacity-aware placement, EASY backfill,
// migration-based preemption, host-reclaim migration, durable
// checkpointing and crash recovery. It wraps the internal scheduler
// behind a stable control-plane API — functional-option construction,
// typed job handles, sentinel errors, context-aware lifecycle and a
// structured event stream — so the internals can keep evolving freely
// underneath it.
//
// A farm is built over a cluster with functional options:
//
//	pool := cluster.NewPaperCluster()
//	f := farm.New(pool,
//		farm.WithPolicy(farm.Priority),
//		farm.WithSeed(42),
//		farm.WithCheckpoint(dir, 4*time.Minute, 0))
//
// Submit returns a typed *Job handle whose Wait, Status and Metrics
// track the job through the farm; rejections are sentinel errors
// (ErrClosed, ErrDuplicateID, ErrNoCapacity, ErrInvalidSpec) checkable
// with errors.Is. Run drives the event loop under a context: cancelling
// the context checkpoints the farm (when a checkpoint directory is
// configured) and interrupts the loop, while Drain closes the farm
// gracefully so Run returns once every accepted job has finished.
// Subscribe yields the structured event stream of every scheduling
// decision, in a deterministic order for a fixed seed.
//
// Everything runs in the cluster's virtual time, so multi-job traces —
// and their event streams — replay deterministically regardless of how
// fast the attached workloads really compute.
//
// The boundary this package draws is intra-module: consumers inside
// this repository (experiments, examples, future subsystems) compile
// against farm only, never against internal/sched, so the scheduler's
// internals can keep evolving freely. The data types are deliberately
// re-exported as aliases — farm is a control-plane surface, not a
// serialization layer — and the pool entry points (Cluster,
// NewPaperCluster) are re-exported so the common path needs no
// internal import; richer pool construction still lives in
// internal/cluster.
package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// Farm is one simulation farm: a scheduler over a shared cluster plus
// the handle, subscription and lifecycle bookkeeping of the public API.
// Build it with New or Restore.
type Farm struct {
	s *sched.Scheduler

	mu   sync.Mutex
	jobs map[string]*Job
	subs []*Subscription
	// run is the current run generation: its done channel is closed when
	// that Run returns, with err valid from then on. It exists from
	// construction (and is recycled at the next Run) so a Wait that
	// starts before Run still observes the run ending, and a Wait that
	// wakes on a superseded generation re-waits on the new one.
	run *runState
}

// runState is one Run generation's termination signal.
type runState struct {
	done chan struct{}
	err  error // valid once done is closed
}

// New builds a farm over the cluster. Defaults: FIFO policy, EASY
// backfill, the compute-only step timer, seed 1, no checkpointing, no
// scenario. Override any of them with options.
//
// Misconfigured options are rejected here, wrapping ErrInvalidSpec so
// callers branch with errors.Is — notably a WithScenario whose interval
// is not positive, which would otherwise arm a callback that never
// fires.
func New(c *cluster.Cluster, opts ...Option) (*Farm, error) {
	cfg := newConfig(opts)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := sched.New(c, cfg.policy, cfg.seed)
	cfg.apply(s)
	return wrap(s), nil
}

// Restore rebuilds a farm from a checkpoint directory written by a
// previous farm's checkpointing (periodic, scenario-driven, or the
// cancellation path of Run): the cluster — an identically shaped,
// typically freshly built pool — is overwritten from the manifest's
// snapshot, every job is reconstructed in its checkpointed phase (with
// handles: Farm.Job finds them, and finished jobs already carry their
// metrics), real workloads are rebuilt through the registry, and the
// restored Run finishes bit-identically to one that never crashed.
//
// Policy, backfill mode and RNG state belong to the manifest, so
// WithPolicy, WithBackfill and WithSeed are rejected here. Scenario,
// timer and checkpoint options are not persisted (function pointers and
// operator-local paths); re-attach them exactly as originally
// configured, or the restored run's virtual-time grid — and with it the
// bit-identity guarantee — changes. Subscriptions do not survive a
// coordinator either: Subscribe on the restored farm before Run to
// re-attach; the stream continues with exactly the events the dead
// coordinator had not yet emitted.
func Restore(dir string, c *cluster.Cluster, reg WorkloadRegistry, opts ...Option) (*Farm, error) {
	cfg := newConfig(opts)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.policySet || cfg.backfillSet || cfg.seedSet {
		return nil, fmt.Errorf("farm: restore: policy, backfill and seed come from the checkpoint manifest; drop WithPolicy/WithBackfill/WithSeed")
	}
	s, err := sched.Restore(dir, c, reg)
	if err != nil {
		return nil, err
	}
	cfg.apply(s)
	f := wrap(s)
	for _, info := range s.Jobs() {
		j := newJob(f, info.ID)
		j.status = info.Phase // Status is the scheduler's Phase
		if info.Phase == sched.PhaseFinished {
			j.rec, j.hasRec = info.Metrics, true
			close(j.done)
		}
		f.jobs[info.ID] = j
	}
	return f, nil
}

// wrap builds the public farm around a configured scheduler and wires
// the event dispatch.
func wrap(s *sched.Scheduler) *Farm {
	f := &Farm{s: s, jobs: make(map[string]*Job), run: &runState{done: make(chan struct{})}}
	s.Events = f.dispatch
	return f
}

// Submit queues a job and returns its handle. A nil workload replays
// the spec in virtual time without running a simulation. Submit is safe
// from any goroutine and works while Run is active (live submissions
// are admitted at the current virtual time). Rejections are typed:
// branch with errors.Is against ErrInvalidSpec, ErrNoCapacity,
// ErrClosed and ErrDuplicateID — the sentinels are the contract; the
// error strings are diagnostics and not stable across releases.
func (f *Farm) Submit(spec JobSpec, w Workload) (*Job, error) {
	j := newJob(f, spec.ID)
	// Register the handle before the scheduler can emit events for the
	// job: a live submission may be admitted (and finish) while Submit
	// is still returning.
	f.mu.Lock()
	if f.jobs[spec.ID] != nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("farm: submit %q: %w", spec.ID, ErrDuplicateID)
	}
	f.jobs[spec.ID] = j
	f.mu.Unlock()
	if err := f.s.Submit(spec, w); err != nil {
		f.mu.Lock()
		delete(f.jobs, spec.ID)
		f.mu.Unlock()
		return nil, err
	}
	return j, nil
}

// Job returns the handle of a previously submitted (or restored) job.
func (f *Farm) Job(id string) (*Job, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	return j, ok
}

// Drain closes the farm to new submissions: Run finishes every job
// already accepted and returns. Safe from any goroutine; Submit after
// Drain fails with ErrClosed.
//
// Draining after a Run returned with an error also finalizes the farm:
// the interrupted jobs' reservations are handed back to the pool, so a
// later Run reports an error instead of resuming — use Restore to
// continue from a checkpoint. To resume in memory instead, call Run
// again without draining in between.
func (f *Farm) Drain() { f.s.Close() }

// Interrupt aborts a running event loop without draining it: Run
// returns an error wrapping ErrInterrupted at its next check,
// abandoning the in-memory farm the way a coordinator crash would.
// Pair it with Checkpoint (from a scenario callback) to script crash
// experiments; prefer cancelling Run's context for graceful shutdown.
func (f *Farm) Interrupt() { f.s.Interrupt() }

// Checkpoint persists the whole farm into dir — every job's accounting
// and rank states, queue order, RNG state, fair-share credit and a full
// cluster snapshot — committed atomically, so a crash at any point
// leaves the previous complete checkpoint restorable by Restore. It
// must run on the scheduling goroutine: either before Run starts, after
// it returns, or from a scenario callback at an exact virtual time
// (periodic saves are WithCheckpoint's job).
func (f *Farm) Checkpoint(dir string) error { return f.s.Checkpoint(dir) }

// Run drives the farm: jobs are admitted as their arrival times pass,
// reclaimed hosts are vacated by migration, completions retire in
// virtual time, and the loop blocks (virtual time frozen) whenever the
// farm is empty and still open. After Drain it returns the metrics
// summary once everything accepted has finished.
//
// Cancelling the context stops the farm: when a checkpoint directory is
// configured (WithCheckpoint) the farm is persisted first, so the run
// is restorable, and Run returns an error wrapping context.Canceled
// (or the context's cause). Run must not be called concurrently with
// itself.
func (f *Farm) Run(ctx context.Context) (Summary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	f.mu.Lock()
	select {
	case <-f.run.done:
		// A previous Run already retired; this run is a new generation.
		// Waiters still holding the old one re-check and move over.
		f.run = &runState{done: make(chan struct{})}
	default:
		// First Run: keep the construction-time generation, which
		// waiters that started before Run already hold.
	}
	rs := f.run
	f.mu.Unlock()

	// An already-canceled context stops the run at its first check,
	// deterministically; the watcher goroutine handles cancellation
	// arriving mid-run.
	if ctx.Err() != nil {
		f.s.InterruptCheckpoint()
	}
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	//detlint:allow goentropy -- the watcher only forwards ctx cancellation to InterruptCheckpoint, which the scheduler applies at its next step boundary; it cannot reorder scheduler decisions
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			f.s.InterruptCheckpoint()
		case <-stop:
		}
	}()
	sum, err := f.s.Run()
	close(stop)
	<-watcherDone
	if ctx.Err() != nil {
		// The watcher may have fired just as the loop exited on its own;
		// a stale, unconsumed interrupt must not poison the next Run.
		f.s.ClearInterrupt()
	}
	if errors.Is(err, ErrInterrupted) && ctx.Err() != nil {
		// Wrap both chains: errors.Is finds the context cause, and a
		// failed cancellation checkpoint stays diagnosable through the
		// scheduler's error.
		err = fmt.Errorf("farm: run canceled: %w (%w)", context.Cause(ctx), err)
	}

	f.mu.Lock()
	rs.err = err
	// A Run only returns nil once the farm is drained and every job has
	// finished — the farm is over for good, so closing the channels ends
	// every subscriber's range loop. An errored Run (interrupt,
	// cancellation, workload failure) may be followed by another, so its
	// subscriptions stay attached and observe the next run.
	var subs []*Subscription
	if err == nil {
		subs = f.subs
		f.subs = nil
	}
	close(rs.done)
	f.mu.Unlock()
	for _, sub := range subs {
		sub.shut()
	}
	return sum, err
}

// Replay is the trace-replay convenience: it submits every spec without
// a workload, drains the farm and runs it to completion — the
// deterministic policy-comparison entry point the experiments use. A
// nil timer keeps the compute-only default.
func Replay(c *cluster.Cluster, policy Policy, seed int64, timer StepTimer, specs []JobSpec) (Summary, error) {
	opts := []Option{WithPolicy(policy), WithSeed(seed)}
	if timer != nil {
		opts = append(opts, WithTimer(timer))
	}
	f, err := New(c, opts...)
	if err != nil {
		return Summary{}, err
	}
	for _, sp := range specs {
		if _, err := f.Submit(sp, nil); err != nil {
			return Summary{}, err
		}
	}
	f.Drain()
	return f.Run(context.Background())
}
