package farm

import (
	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/sched/metrics"
)

// Cluster is the virtual workstation pool a farm schedules onto, and
// Host one of its machines; NewPaperCluster builds the paper's 25-host
// HP9000/700 pool, so the common path — build a pool, run a farm —
// needs no internal import. Scenario callbacks receive the *Cluster to
// script user activity (Reclaim, UserGone) against it.
type (
	Cluster = cluster.Cluster
	Host    = cluster.Host
)

// NewPaperCluster builds the paper's 25-workstation pool (16x 715/50,
// 4x 720, 5x 710) with its calibrated speed table and activity model.
func NewPaperCluster() *Cluster { return cluster.NewPaperCluster() }

// JobSpec describes one job of the farm: the decomposed simulation it
// stands for (method, decomposition, subregion side), how long it runs,
// and how the queue should treat it (priority, tenant, weight, arrival
// time). See the field docs in the scheduler's definition; the spec
// drives the virtual-time accounting whether or not a real simulation
// is attached.
type JobSpec = sched.JobSpec

// Workload is the functional side of a scheduled job: what actually
// runs when the farm places it (Start/Suspend/Resume/Migrate/Finish,
// plus the Checkpoint/Restore durability hooks). Pass nil to Submit for
// a spec-only replay.
type Workload = sched.Workload

// NullWorkload replays scheduling decisions only — no simulation runs.
type NullWorkload = sched.NullWorkload

// CoreWorkload drives a real core.Job under the farm: preemption and
// migration go through the section-5.1 dump/rebuild protocol, so the
// simulation's results stay bit-identical to an undisturbed run.
type CoreWorkload = sched.CoreWorkload

// WorkloadFactory rebuilds the functional side of one restored job from
// its spec; WorkloadRegistry maps job IDs to factories for Restore.
type (
	WorkloadFactory  = sched.WorkloadFactory
	WorkloadRegistry = sched.WorkloadRegistry
)

// Policy selects the queueing discipline.
type Policy = sched.Policy

const (
	// FIFO runs jobs in submission order (ties broken by ID).
	FIFO = sched.FIFO
	// Priority runs the highest-priority job first and preempts running
	// lower-priority jobs when the head of the queue cannot fit.
	Priority = sched.Priority
	// WeightedFair picks the queued job with the least virtual service
	// time per unit weight.
	WeightedFair = sched.WeightedFair
)

// ParsePolicy maps a policy name (fifo, priority, fair) to its Policy.
func ParsePolicy(s string) (Policy, error) { return sched.ParsePolicy(s) }

// BackfillMode selects how jobs behind a blocked queue head may use the
// gaps its ranks cannot fill.
type BackfillMode = sched.BackfillMode

const (
	// BackfillNone enforces strict head-of-line order.
	BackfillNone = sched.BackfillNone
	// BackfillAggressive places any queued job that fits right now —
	// the starvation-prone pre-EASY behaviour.
	BackfillAggressive = sched.BackfillAggressive
	// BackfillEASY bounds the head's extra wait with a reservation at
	// its projected start. The default.
	BackfillEASY = sched.BackfillEASY
)

// ParseBackfill maps a backfill mode name (none, aggressive, easy) to
// its BackfillMode.
func ParseBackfill(s string) (BackfillMode, error) { return sched.ParseBackfill(s) }

// Sentinel errors; Submit wraps them with job context, so check with
// errors.Is.
var (
	// ErrClosed rejects a submission after Drain.
	ErrClosed = sched.ErrClosed
	// ErrDuplicateID rejects a job ID the farm has already accepted.
	ErrDuplicateID = sched.ErrDuplicateID
	// ErrNoCapacity rejects a job that needs more ranks than the pool
	// has hosts.
	ErrNoCapacity = sched.ErrNoCapacity
	// ErrInvalidSpec wraps every JobSpec validation failure.
	ErrInvalidSpec = sched.ErrInvalidSpec
	// ErrInterrupted is wrapped by Run when Interrupt (or a canceled
	// context) aborts the event loop.
	ErrInterrupted = sched.ErrInterrupted
	// ErrUnknownJob flags a resize request for an ID the farm never
	// accepted.
	ErrUnknownJob = sched.ErrUnknownJob
	// ErrNotRunning flags a resize request for a job the farm knows but
	// is not currently running (pending, queued, suspended or finished):
	// only a placed job has a reservation to grow or shrink.
	ErrNotRunning = sched.ErrNotRunning
)

// AutoscaleControl is the deterministic handle a WithAutoscaler callback
// receives each control tick: Sample captures the farm's supply/demand
// state at one virtual instant, Resize actuates a decision synchronously,
// and Decide records a policy decision on the event stream without
// acting. The handle is only valid inside the callback invocation that
// received it.
type AutoscaleControl = sched.AutoscaleControl

// Sample is one control tick's view of the farm — queue depth, free and
// total hosts, and a JobSample per running and queued job with progress
// extrapolated to the tick's instant. The farm/autoscale policies decide
// over it.
type (
	Sample    = sched.Sample
	JobSample = sched.JobSample
)

// Summary aggregates a finished farm run; JobMetrics is one job's
// lifecycle record within it.
type (
	Summary    = metrics.Summary
	JobMetrics = metrics.Job
)

// RNG is the farm's serializable random source: SplitMix64, whose
// entire state is one word (State/SetState), with Derive splitting off
// independent deterministic substreams per label. The scheduler drives
// its randomized placement scan with it, and farm/workload draws seeded
// arrival processes and job distributions from it, so a (spec, seed)
// pair is bit-reproducible.
type RNG = sched.SplitMix

// NewRNG returns a seeded RNG.
func NewRNG(seed int64) *RNG { return sched.NewSplitMix(seed) }

// Shape is a decomposition's per-axis span assignment — the zero value
// means uniform splitting. StepTimer implementations receive the shape
// being priced; UniformShape and WeightedShape build them.
type Shape = decomp.Shape

// StepTimer estimates the wall-clock seconds one integration step of a
// job takes on a given placement; the farm prices every placement,
// resumption and migration through it.
type StepTimer = sched.StepTimer

// ComputeTimer is the communication-free estimate: the parallel step
// runs at the pace of the slowest rank's local compute. The default.
func ComputeTimer(spec JobSpec, shape decomp.Shape, hosts []*cluster.Host) (float64, error) {
	return sched.ComputeTimer(spec, shape, hosts)
}

// PerfTimer prices each step through the perf discrete-event engine
// over a netFn() network, adding the halo-exchange and pipeline effects
// the compute-only estimate ignores.
func PerfTimer(netFn func() netsim.Network) StepTimer { return sched.PerfTimer(netFn) }

// UniformShape returns the spec's uniform (equal-spans) decomposition
// shape; WeightedShape sizes per-rank spans proportionally to host
// speed for a placement; Imbalance is the placement's load-imbalance
// ratio (1.0 is perfect balance). The hetero experiment builds on them.
func UniformShape(spec JobSpec) decomp.Shape { return sched.UniformShape(spec) }

// WeightedShape returns the spec's speed-weighted shape for a
// placement: hosts[rank] serves rank. Equal speeds reproduce
// UniformShape bit for bit.
func WeightedShape(spec JobSpec, hosts []*cluster.Host) (decomp.Shape, error) {
	return sched.WeightedShape(spec, hosts)
}

// Imbalance returns a placement's load-imbalance ratio under a shape:
// the slowest rank's compute time over the perfectly balanced ideal.
func Imbalance(spec JobSpec, shape decomp.Shape, hosts []*cluster.Host) (float64, error) {
	return sched.Imbalance(spec, shape, hosts)
}
