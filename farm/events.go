package farm

import (
	"sync"

	"repro/internal/sched"
)

// Event is one structured entry of the farm's decision stream; see the
// concrete types below. Events are emitted at every decision point of a
// scheduling round, in a deterministic order for a fixed seed —
// including across a checkpoint/restore boundary, where a restored farm
// emits exactly the events the dead coordinator had not yet emitted.
// String renders a stable single-line trace form.
type Event = sched.Event

// The concrete event types.
type (
	// JobQueued: a job was admitted to the queue.
	JobQueued = sched.JobQueued
	// JobPlaced: the queue head started (or resumed) on a reservation.
	JobPlaced = sched.JobPlaced
	// JobBackfilled: a job behind the blocked head started in its gaps.
	JobBackfilled = sched.JobBackfilled
	// JobPreempted: a running job was suspended off the pool and requeued.
	JobPreempted = sched.JobPreempted
	// JobMigrated: displaced ranks moved to replacement hosts mid-run.
	JobMigrated = sched.JobMigrated
	// JobResized: a running job re-decomposed onto a new rank count at a
	// step boundary (Job.Resize or an autoscale decision).
	JobResized = sched.JobResized
	// AutoscaleDecision: the control loop recorded a grow/shrink/hold
	// decision (and its reason) on the stream, whether or not it acted.
	AutoscaleDecision = sched.AutoscaleDecision
	// JobFinished: a job completed; carries its final metrics record.
	JobFinished = sched.JobFinished
	// HostReclaimed: a regular user sat back down at a reserved host.
	HostReclaimed = sched.HostReclaimed
	// CheckpointSaved: a farm checkpoint committed to disk.
	CheckpointSaved = sched.CheckpointSaved
	// EASYDegraded: a round's EASY shadow was incomputable; backfill
	// explicitly fell back to the aggressive mode for the round.
	EASYDegraded = sched.EASYDegraded
)

// DefaultSubscriptionBuffer is Subscribe's channel capacity. A farm
// emits a handful of events per scheduling round, so the default rides
// out a subscriber that drains in batches; size it explicitly with
// SubscribeBuffered when collecting full traces of long storms.
const DefaultSubscriptionBuffer = 1024

// Subscription is one bounded tap on the farm's event stream.
//
// Delivery never blocks the scheduling round: events are sent
// non-blockingly into the subscription's buffered channel, and when the
// buffer is full the new event is dropped and counted — Dropped
// reports how many. A subscriber that must see every event sizes its
// buffer for the trace (SubscribeBuffered) or drains concurrently; a
// slow or abandoned subscriber costs the farm nothing.
//
// The channel is closed when the stream is over — a drained farm's Run
// returned successfully, ending any range loop over Events. A farm
// whose Run returned an error may Run again (after an interrupt or
// cancellation), so its subscriptions survive the gap and observe the
// next run; the farm cannot know whether a resume is coming, so a
// consumer that will not resume after an errored Run must Close its
// subscription to end the stream — ranging on without closing parks
// that goroutine forever.
type Subscription struct {
	f *Farm

	mu      sync.Mutex
	ch      chan Event
	dropped int
	closed  bool
}

// Subscribe taps the farm's event stream with the default buffer.
// Subscribe before Run to see the whole stream; a subscription made
// mid-run starts at the current round.
func (f *Farm) Subscribe() *Subscription {
	return f.SubscribeBuffered(DefaultSubscriptionBuffer)
}

// SubscribeBuffered taps the farm's event stream with an explicit
// buffer capacity (minimum 1). See Subscription for the overflow
// policy. A subscription made after a drained farm's Run has returned
// arrives already closed: the stream it would have observed is over,
// so a range over Events ends immediately instead of blocking on a
// channel nothing will ever close.
func (f *Farm) SubscribeBuffered(n int) *Subscription {
	if n < 1 {
		n = 1
	}
	sub := &Subscription{f: f, ch: make(chan Event, n)}
	f.mu.Lock()
	select {
	case <-f.run.done:
		// rs.err is valid once done is closed; a nil error means the
		// farm drained to completion and no further run will come.
		if f.run.err == nil {
			f.mu.Unlock()
			sub.shut()
			return sub
		}
	default:
	}
	f.subs = append(f.subs, sub)
	f.mu.Unlock()
	return sub
}

// Events returns the subscription's channel. It is closed when the
// stream ends — a drained farm's Run returned — or the subscription is
// closed.
func (sub *Subscription) Events() <-chan Event { return sub.ch }

// Dropped reports how many events overflowed the buffer and were
// discarded.
func (sub *Subscription) Dropped() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}

// Close detaches the subscription from the farm and closes its channel.
// Idempotent; buffered events remain readable until drained.
func (sub *Subscription) Close() {
	f := sub.f
	f.mu.Lock()
	for i, s := range f.subs {
		if s == sub {
			f.subs = append(f.subs[:i], f.subs[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
	sub.shut()
}

// send delivers one event without ever blocking; overflow drops it.
func (sub *Subscription) send(ev Event) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	select {
	case sub.ch <- ev:
	default:
		sub.dropped++
	}
}

// shut closes the channel once.
func (sub *Subscription) shut() {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
}

// dispatch is the scheduler's Events hook: it updates the job handles,
// then fans the event out to every subscription. It runs synchronously
// on the scheduling goroutine, so handle state and subscriber order are
// deterministic for a fixed seed.
func (f *Farm) dispatch(ev Event) {
	f.track(ev)
	f.mu.Lock()
	subs := append([]*Subscription(nil), f.subs...)
	f.mu.Unlock()
	for _, sub := range subs {
		sub.send(ev)
	}
}

// track folds one event into the job-handle lifecycle.
func (f *Farm) track(ev Event) {
	var (
		id string
		st Status
	)
	switch e := ev.(type) {
	case JobQueued:
		id, st = e.ID, StatusQueued
	case JobPlaced:
		id, st = e.ID, StatusRunning
	case JobBackfilled:
		id, st = e.ID, StatusRunning
	case JobPreempted:
		id, st = e.ID, StatusQueued
	case JobFinished:
		f.mu.Lock()
		j := f.jobs[e.ID]
		f.mu.Unlock()
		if j != nil {
			j.finish(e.Job)
		}
		return
	default:
		return // migrations and resizes keep the job running; host/checkpoint/autoscale events carry no job state
	}
	f.mu.Lock()
	j := f.jobs[id]
	f.mu.Unlock()
	if j != nil {
		j.setStatus(st)
	}
}
