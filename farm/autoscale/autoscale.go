// Package autoscale drives rank counts of running malleable jobs from a
// supply/demand control loop. The paper's farm scavenges idle cycles of
// non-dedicated workstations, so both sides of the market fluctuate:
// supply (reservable hosts) swings with user activity, demand (queued
// jobs) with arrivals. A fixed rank count chosen at submission is wrong
// in both directions — idle hosts go to waste while a job crawls on its
// submitted width, and a grown job squats on capacity a queued job
// needs. The control loop closes that gap over the farm's malleability
// primitive (Job.Resize): analyze a per-tick Sample of the farm, decide
// grow/shrink/hold per job through a Policy, and actuate through the
// AutoscaleControl handle — all synchronously on the scheduling
// goroutine at exact virtual times, so an autoscaled farm replays
// deterministically and its simulations stay bit-identical.
//
// The three stages are separable: Policy is pure (Sample in, Decisions
// out — unit-testable on handmade samples), Engine adds the temporal
// smoothing every real control loop needs (hysteresis: a decision must
// persist for Confirm consecutive ticks; cooldown: a just-resized job is
// left alone for a while), and the farm's WithAutoscaler option is the
// clock. Wire it up with:
//
//	eng := &autoscale.Engine{
//		Policy:   autoscale.SupplyDemand{},
//		Confirm:  2,
//		Cooldown: 2 * time.Minute,
//	}
//	f, err := farm.New(pool, eng.Option(30*time.Second))
package autoscale

import (
	"fmt"
	"sort"
	"time"

	"repro/farm"
)

// Action is what a policy wants done to one job's rank count.
type Action int

const (
	// Hold leaves the job's rank count alone (and resets any pending
	// hysteresis streak for it).
	Hold Action = iota
	// Grow adds ranks to a running job.
	Grow
	// Shrink removes ranks from a running job (never below its
	// submitted width under the bundled policy).
	Shrink
)

func (a Action) String() string {
	switch a {
	case Hold:
		return "hold"
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Decision is one job's proposed rank-count change: From is the current
// width, To the target, Reason the operator-facing explanation recorded
// on the event stream.
type Decision struct {
	Job    string
	Action Action
	From   int
	To     int
	Reason string
}

// Policy proposes per-job decisions from one control-tick sample. It
// must be pure and deterministic: same sample, same decisions, in a
// stable order — the engine replays it on the scheduling goroutine and
// the farm's bit-reproducibility depends on it.
type Policy interface {
	Decide(s farm.Sample) []Decision
}

// SupplyDemand is the bundled market-clearing policy.
//
// When no demand waits (the queue is empty) and more than Spare hosts
// are free, it grows the running job farthest from completion — the one
// the extra ranks help longest — by at most Chunk ranks, bounded by the
// free hosts and by MaxFactor times the job's submitted width.
//
// When demand waits and the free hosts cannot seat the widest queued
// job, it shrinks previously grown jobs — never below their submitted
// width, most-nearly-done first, so the give-back disturbs the least
// remaining work — by at most Chunk ranks each until the shortfall is
// covered.
//
// The zero value is usable: Spare 2, Chunk 2, MaxFactor 2.
type SupplyDemand struct {
	// Spare is the free-host headroom never lent to growth, kept for
	// arrivals and reclaim storms. <= 0 means 2.
	Spare int
	// Chunk caps how many ranks one decision adds or removes. <= 0
	// means 2.
	Chunk int
	// MaxFactor caps a job's grown width at MaxFactor times its
	// submitted ranks. <= 0 means 2.
	MaxFactor float64
}

func (p SupplyDemand) spare() int { return defInt(p.Spare, 2) }
func (p SupplyDemand) chunk() int { return defInt(p.Chunk, 2) }
func (p SupplyDemand) maxFactor() float64 {
	if p.MaxFactor <= 0 {
		return 2
	}
	return p.MaxFactor
}

func defInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// Decide implements Policy.
func (p SupplyDemand) Decide(s farm.Sample) []Decision {
	if s.QueueDepth == 0 {
		return p.growIntoIdle(s)
	}
	return p.shrinkForDemand(s)
}

// growIntoIdle lends idle supply to the running job with the most work
// left.
func (p SupplyDemand) growIntoIdle(s farm.Sample) []Decision {
	free := s.FreeHosts - p.spare()
	if free <= 0 || len(s.Running) == 0 {
		return nil
	}
	cand := s.Running[0]
	for _, j := range s.Running[1:] {
		if j.Progress < cand.Progress || (j.Progress == cand.Progress && j.ID < cand.ID) {
			cand = j
		}
	}
	lim := int(p.maxFactor() * float64(cand.SpecRanks))
	if lim > s.TotalHosts {
		lim = s.TotalHosts
	}
	to := cand.Ranks + p.chunk()
	if to > cand.Ranks+free {
		to = cand.Ranks + free
	}
	if to > lim {
		to = lim
	}
	if to <= cand.Ranks {
		return nil
	}
	return []Decision{{
		Job: cand.ID, Action: Grow, From: cand.Ranks, To: to,
		Reason: fmt.Sprintf("queue empty, %d hosts idle beyond the %d-host spare", free, p.spare()),
	}}
}

// shrinkForDemand reclaims lent ranks when the widest queued job cannot
// be seated.
func (p SupplyDemand) shrinkForDemand(s farm.Sample) []Decision {
	widest := 0
	for _, j := range s.Queued {
		if j.Ranks > widest {
			widest = j.Ranks
		}
	}
	need := widest - s.FreeHosts
	if need <= 0 {
		return nil
	}
	grown := make([]farm.JobSample, 0, len(s.Running))
	for _, j := range s.Running {
		if j.Ranks > j.SpecRanks {
			grown = append(grown, j)
		}
	}
	sort.SliceStable(grown, func(i, k int) bool {
		if grown[i].Progress != grown[k].Progress {
			return grown[i].Progress > grown[k].Progress
		}
		return grown[i].ID < grown[k].ID
	})
	var decs []Decision
	freed := 0
	for _, g := range grown {
		if freed >= need {
			break
		}
		to := g.Ranks - p.chunk()
		if to < g.SpecRanks {
			to = g.SpecRanks
		}
		if to >= g.Ranks {
			continue
		}
		decs = append(decs, Decision{
			Job: g.ID, Action: Shrink, From: g.Ranks, To: to,
			Reason: fmt.Sprintf("queued demand is %d hosts short", need),
		})
		freed += g.Ranks - to
	}
	return decs
}

// streak tracks one job's consecutive identical proposals.
type streak struct {
	action Action
	n      int
}

// Engine turns a pure Policy into the farm's control loop, adding the
// temporal smoothing that keeps a noisy market from thrashing jobs
// through the (cheap but not free) suspend/re-split/resume cycle:
// hysteresis — a non-hold proposal must persist for Confirm consecutive
// ticks before it actuates — and a per-job cooldown after each committed
// resize. Every suppressed proposal is still recorded on the event
// stream as a hold decision with the pending action in its reason, so
// traces show the controller deliberating, not just acting.
//
// An Engine is stateful (streaks and cooldown clocks) but all its state
// is rebuilt from the tick stream, so re-attaching a fresh Engine to a
// restored farm reproduces the original run's decisions as long as the
// tick grid matches. Not safe for concurrent use; the farm invokes Tick
// on the scheduling goroutine only.
type Engine struct {
	// Policy proposes the decisions. Required.
	Policy Policy
	// Confirm is how many consecutive ticks must propose the same action
	// for a job before the engine actuates it. < 2 actuates immediately.
	Confirm int
	// Cooldown is the minimum virtual time between committed resizes of
	// one job. Zero disables it.
	Cooldown time.Duration

	streaks map[string]streak
	last    map[string]time.Duration
}

// Option wires the engine into a farm: pass the result to farm.New (or
// Restore, re-attaching the controller exactly as originally
// configured).
func (e *Engine) Option(every time.Duration) farm.Option {
	return farm.WithAutoscaler(every, e.Tick)
}

// Tick runs one control cycle: sample, decide, smooth, actuate. It is
// the function WithAutoscaler invokes; call it directly only in tests.
func (e *Engine) Tick(t time.Duration, ctl farm.AutoscaleControl) {
	if e.Policy == nil {
		return
	}
	if e.streaks == nil {
		e.streaks = make(map[string]streak)
		e.last = make(map[string]time.Duration)
	}
	decs := e.Policy.Decide(ctl.Sample())
	proposed := make(map[string]bool, len(decs))
	confirm := e.Confirm
	if confirm < 2 {
		confirm = 1
	}
	for _, d := range decs {
		if d.Action == Hold {
			delete(e.streaks, d.Job)
			continue
		}
		proposed[d.Job] = true
		st := e.streaks[d.Job]
		if st.action == d.Action {
			st.n++
		} else {
			st = streak{action: d.Action, n: 1}
		}
		e.streaks[d.Job] = st
		if st.n < confirm {
			ctl.Decide(d.Job, Hold.String(), d.From, d.To,
				fmt.Sprintf("%s pending confirmation %d/%d: %s", d.Action, st.n, confirm, d.Reason))
			continue
		}
		if e.Cooldown > 0 {
			if lastAt, ok := e.last[d.Job]; ok && t-lastAt < e.Cooldown {
				ctl.Decide(d.Job, Hold.String(), d.From, d.To,
					fmt.Sprintf("%s cooling down until %v: %s", d.Action, lastAt+e.Cooldown, d.Reason))
				continue
			}
		}
		ctl.Decide(d.Job, d.Action.String(), d.From, d.To, d.Reason)
		if err := ctl.Resize(d.Job, d.To); err != nil {
			// The farm moved between sample and actuation (a completion, a
			// reclaim, a capacity change): drop the streak and let the next
			// tick re-derive the decision from fresh state.
			delete(e.streaks, d.Job)
			continue
		}
		e.last[d.Job] = t
		delete(e.streaks, d.Job)
	}
	// A job the policy stopped proposing for loses its streak: the
	// hysteresis counts consecutive ticks, not lifetime occurrences.
	for id := range e.streaks {
		if !proposed[id] {
			delete(e.streaks, id)
		}
	}
}
