package autoscale_test

import (
	"context"
	"testing"
	"time"

	"repro/farm"
	"repro/farm/autoscale"
)

// fixedTimer prices every step at one virtual second, decoupling the
// tests' virtual timelines from host speeds and rank counts.
func fixedTimer(farm.JobSpec, farm.Shape, []*farm.Host) (float64, error) {
	return 1, nil
}

func sample(queue int, free, total int, running, queued []farm.JobSample) farm.Sample {
	return farm.Sample{QueueDepth: queue, FreeHosts: free, TotalHosts: total,
		Running: running, Queued: queued}
}

// TestSupplyDemandGrow pins the pure grow-side policy arithmetic on
// handmade samples.
func TestSupplyDemandGrow(t *testing.T) {
	p := autoscale.SupplyDemand{} // Spare 2, Chunk 2, MaxFactor 2

	// Queue empty, plenty idle: grow the job farthest from done by one
	// chunk.
	decs := p.Decide(sample(0, 10, 25, []farm.JobSample{
		{ID: "near-done", Ranks: 4, SpecRanks: 4, Progress: 0.9},
		{ID: "fresh", Ranks: 4, SpecRanks: 4, Progress: 0.2},
	}, nil))
	if len(decs) != 1 || decs[0].Job != "fresh" || decs[0].Action != autoscale.Grow ||
		decs[0].From != 4 || decs[0].To != 6 {
		t.Errorf("grow decisions = %+v, want fresh 4->6", decs)
	}

	// Only the spare is free: hold.
	if decs := p.Decide(sample(0, 2, 25, []farm.JobSample{
		{ID: "a", Ranks: 4, SpecRanks: 4},
	}, nil)); len(decs) != 0 {
		t.Errorf("spare-only decisions = %+v, want none", decs)
	}

	// MaxFactor caps the width: a job already at twice its submitted
	// ranks grows no further.
	if decs := p.Decide(sample(0, 10, 25, []farm.JobSample{
		{ID: "a", Ranks: 8, SpecRanks: 4},
	}, nil)); len(decs) != 0 {
		t.Errorf("capped decisions = %+v, want none", decs)
	}

	// One rank below the cap: the chunk is clipped to it.
	decs = p.Decide(sample(0, 10, 25, []farm.JobSample{
		{ID: "a", Ranks: 7, SpecRanks: 4},
	}, nil))
	if len(decs) != 1 || decs[0].To != 8 {
		t.Errorf("near-cap decisions = %+v, want a 7->8", decs)
	}

	// Free hosts below the chunk: the grow is clipped to what exists.
	decs = p.Decide(sample(0, 3, 25, []farm.JobSample{
		{ID: "a", Ranks: 4, SpecRanks: 4},
	}, nil))
	if len(decs) != 1 || decs[0].To != 5 {
		t.Errorf("scarce decisions = %+v, want a 4->5", decs)
	}
}

// TestSupplyDemandShrink pins the demand side: grown jobs give back
// ranks, nearest-done first, never below their submitted width.
func TestSupplyDemandShrink(t *testing.T) {
	p := autoscale.SupplyDemand{Chunk: 4}

	decs := p.Decide(sample(1, 2, 25, []farm.JobSample{
		{ID: "halfway", Ranks: 6, SpecRanks: 4, Progress: 0.5},
		{ID: "almost", Ranks: 8, SpecRanks: 4, Progress: 0.9},
		{ID: "unstretched", Ranks: 4, SpecRanks: 4, Progress: 0.1},
	}, []farm.JobSample{{ID: "w", Ranks: 8, SpecRanks: 8}}))
	// The widest queued job needs 8, 2 are free: 6 short. "almost" gives
	// back a chunk (8->4, frees 4), then "halfway" covers the rest
	// (6->4, frees 2). The unstretched job is never touched.
	if len(decs) != 2 {
		t.Fatalf("shrink decisions = %+v, want 2", decs)
	}
	if decs[0].Job != "almost" || decs[0].Action != autoscale.Shrink || decs[0].To != 4 {
		t.Errorf("first shrink = %+v, want almost 8->4", decs[0])
	}
	if decs[1].Job != "halfway" || decs[1].To != 4 {
		t.Errorf("second shrink = %+v, want halfway 6->4", decs[1])
	}

	// Demand already seated by free hosts: nothing to do.
	if decs := p.Decide(sample(1, 8, 25, []farm.JobSample{
		{ID: "a", Ranks: 8, SpecRanks: 4},
	}, []farm.JobSample{{ID: "w", Ranks: 8, SpecRanks: 8}})); len(decs) != 0 {
		t.Errorf("seated-demand decisions = %+v, want none", decs)
	}

	// No grown jobs: nothing can be given back.
	if decs := p.Decide(sample(1, 0, 25, []farm.JobSample{
		{ID: "a", Ranks: 20, SpecRanks: 20},
	}, []farm.JobSample{{ID: "w", Ranks: 8, SpecRanks: 8}})); len(decs) != 0 {
		t.Errorf("no-grown decisions = %+v, want none", decs)
	}
}

// TestEngineHysteresisAndCooldown runs the full loop on a real farm: a
// lone 4-rank job on the paper pool grows in chunks, but only after two
// confirming ticks, and at most once per cooldown window.
func TestEngineHysteresisAndCooldown(t *testing.T) {
	eng := &autoscale.Engine{
		Policy:   autoscale.SupplyDemand{}, // chunk 2, max factor 2 -> cap 8
		Confirm:  2,
		Cooldown: 30 * time.Second,
	}
	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute)
	f, err := farm.New(pool,
		farm.WithSeed(42),
		farm.WithTimer(fixedTimer),
		eng.Option(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.Subscribe()
	job, err := f.Submit(farm.JobSpec{
		ID: "solo", Method: "lb2d", JX: 2, JY: 2, Side: 10, Steps: 60,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	sum, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Ticks propose grow from 5s on. Confirm=2 actuates at 10s (4->6);
	// the 30s cooldown delays the next commit to 40s (6->8, the cap);
	// nothing further is proposed at 8 ranks.
	var resizes []farm.JobResized
	holds, acts := 0, 0
	for ev := range sub.Events() {
		switch e := ev.(type) {
		case farm.JobResized:
			resizes = append(resizes, e)
		case farm.AutoscaleDecision:
			if e.Action == "hold" {
				holds++
			} else {
				acts++
			}
		}
	}
	if len(resizes) != 2 {
		t.Fatalf("JobResized events %+v, want 2", resizes)
	}
	if resizes[0].T != 10*time.Second || resizes[0].From != 4 || resizes[0].To != 6 {
		t.Errorf("first resize %+v, want 4->6 at 10s (one confirming tick first)", resizes[0])
	}
	if resizes[1].T != 40*time.Second || resizes[1].From != 6 || resizes[1].To != 8 {
		t.Errorf("second resize %+v, want 6->8 at 40s (cooldown from 10s)", resizes[1])
	}
	if acts != 2 {
		t.Errorf("%d actuating decisions, want 2", acts)
	}
	// Held ticks: the confirming ones (5s, 15s) and the cooldown ones
	// (20s..35s).
	if holds < 4 {
		t.Errorf("%d hold decisions recorded, want >= 4 (hysteresis and cooldown deliberation)", holds)
	}

	rec, ok := job.Metrics()
	if !ok {
		t.Fatal("job has no final metrics")
	}
	if rec.Resizes != 2 || rec.GrowRanks != 4 || rec.Ranks != 8 {
		t.Errorf("resizes=%d grow=%d ranks=%d, want 2/4/8", rec.Resizes, rec.GrowRanks, rec.Ranks)
	}
	if sum.Resizes != 2 {
		t.Errorf("summary resizes = %d, want 2", sum.Resizes)
	}
}

// TestEngineShrinksForArrival: a grown job gives capacity back when a
// wide job arrives, and the arrival gets seated.
func TestEngineShrinksForArrival(t *testing.T) {
	eng := &autoscale.Engine{
		Policy: autoscale.SupplyDemand{Chunk: 8, MaxFactor: 6},
		// Confirm < 2 and zero cooldown: act on every tick.
	}
	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute)
	f, err := farm.New(pool,
		farm.WithSeed(7),
		farm.WithTimer(fixedTimer),
		eng.Option(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.Subscribe()
	if _, err := f.Submit(farm.JobSpec{
		ID: "elastic", Method: "lb2d", JX: 2, JY: 2, Side: 10, Steps: 120,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(farm.JobSpec{
		ID: "wide", Method: "lb2d", JX: 5, JY: 4, Side: 10, Steps: 20,
		Submit: 12 * time.Second,
	}, nil); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	sum, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Jobs) != 2 {
		t.Fatalf("%d jobs finished, want 2", len(sum.Jobs))
	}

	grew, shrank, placedWide := false, false, false
	for ev := range sub.Events() {
		switch e := ev.(type) {
		case farm.JobResized:
			if e.ID == "elastic" && e.To > e.From {
				grew = true
			}
			if e.ID == "elastic" && e.To < e.From {
				if !grew {
					t.Error("shrink before any grow")
				}
				shrank = true
			}
		case farm.JobPlaced:
			if e.ID == "wide" {
				placedWide = true
				if !shrank {
					t.Error("wide job placed before the elastic job shrank")
				}
			}
		}
	}
	if !grew || !shrank || !placedWide {
		t.Errorf("grew=%v shrank=%v placedWide=%v, want all true", grew, shrank, placedWide)
	}
}
