package farm_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/farm"
)

// ExampleNew runs the smallest complete farm: one spec-only job on the
// paper's 25-host pool, replayed deterministically in virtual time.
func ExampleNew() {
	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute) // everyone idle: the whole pool is free

	f, err := farm.New(pool,
		farm.WithPolicy(farm.FIFO),
		farm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	job, err := f.Submit(farm.JobSpec{
		ID: "demo", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 1000,
	}, nil) // nil workload: replay the spec without running a simulation
	if err != nil {
		log.Fatal(err)
	}
	f.Drain() // no more submissions: Run returns once the farm is empty
	sum, err := f.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	rec, _ := job.Metrics()
	fmt.Printf("jobs finished: %d\n", len(sum.Jobs))
	fmt.Printf("demo ran on %d hosts, status %v\n", rec.Ranks, job.Status())
	// Output:
	// jobs finished: 1
	// demo ran on 4 hosts, status finished
}

// ExampleJob_Wait drives the farm on one goroutine and blocks on the
// job handle from another — the supported pattern for a long-running
// farm serving live submissions.
func ExampleJob_Wait() {
	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute)

	f, err := farm.New(pool)
	if err != nil {
		log.Fatal(err)
	}
	job, err := f.Submit(farm.JobSpec{
		ID: "demo", Method: "fd2d", JX: 1, JY: 1, Side: 32, Steps: 500,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	f.Drain()
	go func() {
		_, _ = f.Run(context.Background())
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("demo:", job.Status())
	// Output:
	// demo: finished
}
