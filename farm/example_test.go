package farm_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/farm"
)

// ExampleNew runs the smallest complete farm: one spec-only job on the
// paper's 25-host pool, replayed deterministically in virtual time.
func ExampleNew() {
	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute) // everyone idle: the whole pool is free

	f, err := farm.New(pool,
		farm.WithPolicy(farm.FIFO),
		farm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	job, err := f.Submit(farm.JobSpec{
		ID: "demo", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 1000,
	}, nil) // nil workload: replay the spec without running a simulation
	if err != nil {
		log.Fatal(err)
	}
	f.Drain() // no more submissions: Run returns once the farm is empty
	sum, err := f.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	rec, _ := job.Metrics()
	fmt.Printf("jobs finished: %d\n", len(sum.Jobs))
	fmt.Printf("demo ran on %d hosts, status %v\n", rec.Ranks, job.Status())
	// Output:
	// jobs finished: 1
	// demo ran on 4 hosts, status finished
}

// ExampleJob_Resize widens a running job from another goroutine: the
// job suspends at a step boundary, re-splits its global grid onto six
// subregions, and finishes on the wider placement with its numerics
// unchanged. The scenario hook here only sequences the demo — it holds
// the event loop at one virtual instant until the request is in
// flight, so the example is deterministic.
func ExampleJob_Resize() {
	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute)

	grow := make(chan struct{})
	asked := make(chan struct{})
	f, err := farm.New(pool,
		farm.WithSeed(1),
		farm.WithScenario(time.Second, func(t time.Duration, _ *farm.Cluster) {
			if t == 10*time.Second { // ten virtual seconds in: widen the job
				close(grow)
				<-asked
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	job, err := f.Submit(farm.JobSpec{
		ID: "elastic", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 5000,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		<-grow
		close(asked)
		errc <- job.Resize(context.Background(), 6)
	}()
	f.Drain()
	if _, err := f.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := <-errc; err != nil {
		log.Fatal(err)
	}
	rec, _ := job.Metrics()
	fmt.Printf("resized %d time(s), finished on %d hosts\n", rec.Resizes, rec.Ranks)
	// Output:
	// resized 1 time(s), finished on 6 hosts
}

// ExampleJob_Wait drives the farm on one goroutine and blocks on the
// job handle from another — the supported pattern for a long-running
// farm serving live submissions.
func ExampleJob_Wait() {
	pool := farm.NewPaperCluster()
	pool.Advance(30 * time.Minute)

	f, err := farm.New(pool)
	if err != nil {
		log.Fatal(err)
	}
	job, err := f.Submit(farm.JobSpec{
		ID: "demo", Method: "fd2d", JX: 1, JY: 1, Side: 32, Steps: 500,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	f.Drain()
	go func() {
		_, _ = f.Run(context.Background())
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("demo:", job.Status())
	// Output:
	// demo: finished
}
