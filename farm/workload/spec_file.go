package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"os"
	"slices"
	"time"
)

// Spec file identification, mirroring the trace header: a spec file is
// self-describing, and readers reject what they do not understand
// instead of misparsing it.
const (
	SpecFormat  = "farm-workload-spec"
	SpecVersion = 1
)

// ErrBadSpec: the spec file is unreadable — wrong format or version,
// malformed JSON, an unknown field (a likely typo), or a duration that
// does not parse. Semantic failures (a cohort without shapes, a
// negative horizon) surface through Spec.Validate and wrap
// farm.ErrInvalidSpec instead.
var ErrBadSpec = errors.New("unsupported workload spec")

// specFile is the on-disk envelope around a Spec.
type specFile struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Spec    json.RawMessage `json:"spec"`
}

// durationKeys are the Spec fields that hold virtual durations; in a
// spec file they may be written either as Go duration strings ("45s",
// "1h30m") or as bare nanosecond numbers (the trace convention).
var durationKeys = map[string]bool{
	"Horizon": true,                             // Spec
	"MeanGap": true, "Start": true, "Day": true, // Arrivals
	"Every": true, "At": true, "Until": true, "Dwell": true, // Scenario
}

// LoadSpec reads a user-authored workload spec file: the JSON envelope
// {"format": "farm-workload-spec", "version": 1, "spec": {...}} around
// a Spec, with durations accepted as Go duration strings or nanosecond
// numbers. The loaded spec is fully validated — unreadable files wrap
// ErrBadSpec, semantically invalid specs wrap farm.ErrInvalidSpec — so
// a nil error means the spec can drive Generate and Record as is.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: read spec: %w", err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

// ParseSpec parses and validates spec-file bytes; see LoadSpec.
func ParseSpec(data []byte) (*Spec, error) {
	var file specFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("workload: %w: %w", ErrBadSpec, err)
	}
	if file.Format != SpecFormat {
		return nil, fmt.Errorf("workload: %w: format %q, want %q", ErrBadSpec, file.Format, SpecFormat)
	}
	if file.Version != SpecVersion {
		return nil, fmt.Errorf("workload: %w: version %d, this build reads version %d", ErrBadSpec, file.Version, SpecVersion)
	}
	if len(file.Spec) == 0 {
		return nil, fmt.Errorf("workload: %w: no spec body", ErrBadSpec)
	}
	normalized, err := normalizeDurations(file.Spec)
	if err != nil {
		return nil, err
	}
	var spec Spec
	dec = json.NewDecoder(bytes.NewReader(normalized))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("workload: %w: %w", ErrBadSpec, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// normalizeDurations rewrites duration-valued string fields ("45s") to
// the nanosecond numbers encoding/json expects for time.Duration.
func normalizeDurations(raw json.RawMessage) (json.RawMessage, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("workload: %w: %w", ErrBadSpec, err)
	}
	conv, err := convertDurations(v, "")
	if err != nil {
		return nil, err
	}
	out, err := json.Marshal(conv)
	if err != nil {
		return nil, fmt.Errorf("workload: %w: %w", ErrBadSpec, err)
	}
	return out, nil
}

// convertDurations walks the decoded JSON; key is the field name the
// value sits under (slices keep their parent's key).
func convertDurations(v any, key string) (any, error) {
	switch x := v.(type) {
	case map[string]any:
		for _, k := range slices.Sorted(maps.Keys(x)) {
			nv, err := convertDurations(x[k], k)
			if err != nil {
				return nil, err
			}
			x[k] = nv
		}
		return x, nil
	case []any:
		for i, ev := range x {
			nv, err := convertDurations(ev, key)
			if err != nil {
				return nil, err
			}
			x[i] = nv
		}
		return x, nil
	case string:
		if durationKeys[key] {
			d, err := time.ParseDuration(x)
			if err != nil {
				return nil, fmt.Errorf("workload: %w: field %s: %w", ErrBadSpec, key, err)
			}
			return int64(d), nil
		}
		return x, nil
	default:
		return v, nil
	}
}

// WriteSpecFile serializes the spec into its file envelope as indented
// JSON (durations as nanosecond numbers) — the round-trip partner of
// LoadSpec for generating starter files to edit by hand.
func WriteSpecFile(spec *Spec, path string) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("workload: encode spec: %w", err)
	}
	data, err := json.MarshalIndent(specFile{
		Format: SpecFormat, Version: SpecVersion, Spec: body,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: encode spec: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
