// Package workload is the farm's scenario engine: seeded synthetic
// workload generation plus a versioned trace format for recording and
// replaying farm runs.
//
// The paper's evaluation — and this repository's first experiments —
// rest on a handful of hand-built job lists. This package turns those
// four hand-coded experiments into an unbounded family of reproducible
// scenarios:
//
//   - Generators. A Spec describes multi-client cohorts declaratively:
//     each cohort has a seeded arrival process (Poisson, Gamma or
//     Weibull inter-arrivals, optionally modulated by a diurnal rate
//     curve) and per-cohort job-size, shape, priority and runtime
//     distributions. Generate(spec, seed) expands it into a concrete
//     job list, and because every draw comes from the farm's
//     serializable SplitMix64 RNG, a (spec, seed) pair is
//     bit-reproducible: the same pair always yields byte-identical job
//     lists, and different seeds yield different orderings — the
//     randomized-but-seeded regime that guards policy comparisons
//     against the worst-case bias fixed deterministic sweeps exhibit.
//
//   - Scenarios. Cluster-side user activity — reclaim storms, host
//     churn, owner-return waves — is expressed declaratively as a
//     Scenario and compiled (Compile) onto the farm.WithScenario hook
//     as a pure function of the virtual time and the observable
//     cluster state, so the identical script can be re-attached to a
//     farm restored from a checkpoint.
//
//   - Traces. Record captures a run's structured event stream (the
//     farm.Subscribe surface) together with everything needed to
//     reproduce it into a versioned, self-describing Trace file.
//     ReplayOpenLoop re-submits the recorded arrivals against any
//     policy, backfill mode, seed or pool — the policy-comparison
//     path — while Verify re-runs the recorded configuration and
//     asserts the event stream is byte-identical, the regression pin
//     CI runs (`go run ./cmd/experiments -exp=sweep`).
//
// All times are the farm's virtual times; nothing here depends on wall
// clocks, so generation and replay are deterministic everywhere.
package workload

import (
	"fmt"
	"time"

	"repro/farm"
)

// Spec is one declarative workload: a set of client cohorts generating
// jobs over a horizon, plus an optional cluster-side scenario script.
type Spec struct {
	// Name labels the spec in sweep tables and traces.
	Name string
	// Horizon bounds generation: arrivals past it are not produced.
	Horizon time.Duration
	// Cohorts are the client populations submitting jobs.
	Cohorts []Cohort
	// Scenario, when non-nil, scripts user activity against the pool
	// (compiled onto farm.WithScenario by Compile).
	Scenario *Scenario
}

// Cohort is one client population: an arrival process plus the
// distributions its jobs are drawn from. Each cohort draws from its own
// RNG substream (derived from the seed and the cohort name), so editing
// one cohort never shifts another's draws.
type Cohort struct {
	// Name is the tenant (JobSpec.User) and the job-ID prefix; it must
	// be unique within the spec.
	Name string
	// Weight is the cohort's WeightedFair share (<= 0 means 1).
	Weight float64
	// Arrivals is the cohort's arrival process.
	Arrivals Arrivals
	// Jobs draws each job's method, decomposition, size and runtime.
	Jobs JobDist
	// Priorities is the weighted choice of JobSpec.Priority values; an
	// empty list means priority 0.
	Priorities []IntChoice
	// MaxJobs caps the cohort's job count; 0 means horizon-bounded only.
	MaxJobs int
}

// Arrival process names.
const (
	// Poisson draws exponential inter-arrivals (a memoryless stream).
	Poisson = "poisson"
	// Gamma draws Gamma(shape, ·) inter-arrivals: shape > 1 is more
	// regular than Poisson, shape < 1 burstier.
	Gamma = "gamma"
	// Weibull draws Weibull(shape, ·) inter-arrivals: shape < 1 yields
	// heavy-tailed gaps (long quiet stretches between bursts).
	Weibull = "weibull"
)

// Arrivals describes a cohort's arrival process. Inter-arrival draws
// are normalized to mean 1 and scaled by MeanGap, so the process choice
// changes the variability of the stream, not its average rate.
type Arrivals struct {
	// Process is one of Poisson, Gamma, Weibull.
	Process string
	// MeanGap is the mean inter-arrival time (at diurnal rate 1).
	MeanGap time.Duration
	// Shape is the Gamma/Weibull shape parameter (ignored for Poisson;
	// <= 0 defaults to 1, which makes either process Poisson).
	Shape float64
	// Start offsets the cohort's first gap from the farm's start.
	Start time.Duration
	// Diurnal, when non-empty, is a relative rate curve spread evenly
	// over one Day: an arrival landing in bucket i has its mean gap
	// divided by Diurnal[i]. Values must be positive; a flat curve
	// {1, 1, ...} is the default behavior.
	Diurnal []float64
	// Day is the diurnal curve's period (default 24h). Compressed days
	// (e.g. 2h) let short virtual-time experiments see a full cycle.
	Day time.Duration
}

// rate returns the diurnal rate multiplier at virtual time t.
func (a Arrivals) rate(t time.Duration) float64 {
	if len(a.Diurnal) == 0 {
		return 1
	}
	day := a.Day
	if day <= 0 {
		day = 24 * time.Hour
	}
	phase := t % day
	i := int(int64(phase) * int64(len(a.Diurnal)) / int64(day))
	if i >= len(a.Diurnal) { // t == multiple of day rounds exactly
		i = len(a.Diurnal) - 1
	}
	return a.Diurnal[i]
}

// ShapeChoice is one weighted (method, decomposition) candidate of a
// cohort's job distribution.
type ShapeChoice struct {
	// Method is lb2d, fd2d, lb3d or fd3d; JX, JY, JZ the decomposition
	// (JZ = 0 for 2D). Ranks = JX*JY*max(JZ,1) hosts are needed.
	Method     string
	JX, JY, JZ int
	// Weight is the candidate's relative probability (<= 0 means 1).
	Weight float64
}

// ranks returns the hosts the choice needs.
func (sc ShapeChoice) ranks() int {
	jz := sc.JZ
	if jz < 1 {
		jz = 1
	}
	return sc.JX * sc.JY * jz
}

// IntChoice is one weighted integer candidate (priorities).
type IntChoice struct {
	Value  int
	Weight float64
}

// StepsDist draws a job's integration-step count: log-normal around
// Median with spread Sigma, clamped to [Min, Max]. Sigma 0 makes every
// job exactly Median steps.
type StepsDist struct {
	Median int
	Sigma  float64
	// Min and Max clamp the draw; zero values default to Median/4 and
	// 4*Median respectively.
	Min, Max int
}

// JobDist draws the per-job fields of one cohort.
type JobDist struct {
	// Shapes is the weighted choice of (method, decomposition)
	// candidates; at least one is required.
	Shapes []ShapeChoice
	// SideMin and SideMax bound the uniform subregion-side draw
	// (inclusive). SideMax 0 means SideMin exactly.
	SideMin, SideMax int
	// Steps draws the integration-step count.
	Steps StepsDist
}

// MaxRanks returns the widest job the spec can generate — callers check
// it against the pool before submitting (the farm rejects wider jobs
// with ErrNoCapacity).
func (s *Spec) MaxRanks() int {
	max := 0
	for _, c := range s.Cohorts {
		for _, sc := range c.Jobs.Shapes {
			if r := sc.ranks(); r > max {
				max = r
			}
		}
	}
	return max
}

// Validate checks the spec; every failure wraps farm.ErrInvalidSpec so
// callers branch with errors.Is, mirroring JobSpec validation.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: %w: spec needs a name", farm.ErrInvalidSpec)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("workload: %w: spec %s: horizon %v", farm.ErrInvalidSpec, s.Name, s.Horizon)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: %w: spec %s has no cohorts", farm.ErrInvalidSpec, s.Name)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			return fmt.Errorf("workload: %w: spec %s: cohort %d needs a name", farm.ErrInvalidSpec, s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: %w: spec %s: duplicate cohort %q", farm.ErrInvalidSpec, s.Name, c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(); err != nil {
			return fmt.Errorf("workload: %w: spec %s: cohort %s: %w", farm.ErrInvalidSpec, s.Name, c.Name, err)
		}
	}
	if s.Scenario != nil {
		if err := s.Scenario.Validate(); err != nil {
			return fmt.Errorf("workload: spec %s: %w", s.Name, err)
		}
	}
	return nil
}

// validate checks one cohort (wrapped with context by Spec.Validate).
func (c *Cohort) validate() error {
	switch c.Arrivals.Process {
	case Poisson, Gamma, Weibull:
	default:
		return fmt.Errorf("unknown arrival process %q (poisson, gamma, weibull)", c.Arrivals.Process)
	}
	if c.Arrivals.MeanGap <= 0 {
		return fmt.Errorf("mean inter-arrival %v", c.Arrivals.MeanGap)
	}
	if c.Arrivals.Start < 0 {
		return fmt.Errorf("negative arrival start %v", c.Arrivals.Start)
	}
	for i, r := range c.Arrivals.Diurnal {
		if r <= 0 {
			return fmt.Errorf("diurnal rate %g in bucket %d", r, i)
		}
	}
	if c.Arrivals.Day < 0 {
		return fmt.Errorf("negative diurnal day %v", c.Arrivals.Day)
	}
	if len(c.Jobs.Shapes) == 0 {
		return fmt.Errorf("no shape candidates")
	}
	for _, sc := range c.Jobs.Shapes {
		probe := farm.JobSpec{ID: "probe", Method: sc.Method,
			JX: sc.JX, JY: sc.JY, JZ: sc.JZ, Side: 4, Steps: 1}
		if err := probe.Validate(); err != nil {
			return fmt.Errorf("shape %s %dx%dx%d: %w", sc.Method, sc.JX, sc.JY, sc.JZ, err)
		}
	}
	if c.Jobs.SideMin < 1 {
		return fmt.Errorf("subregion side %d", c.Jobs.SideMin)
	}
	if c.Jobs.SideMax != 0 && c.Jobs.SideMax < c.Jobs.SideMin {
		return fmt.Errorf("side range [%d, %d]", c.Jobs.SideMin, c.Jobs.SideMax)
	}
	if c.Jobs.Steps.Median < 1 {
		return fmt.Errorf("median steps %d", c.Jobs.Steps.Median)
	}
	if c.Jobs.Steps.Sigma < 0 {
		return fmt.Errorf("steps sigma %g", c.Jobs.Steps.Sigma)
	}
	if c.MaxJobs < 0 {
		return fmt.Errorf("max jobs %d", c.MaxJobs)
	}
	return nil
}
