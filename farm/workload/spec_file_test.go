package workload_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/farm"
	"repro/farm/workload"
)

// specText is a hand-authored spec file exercising both duration
// spellings: Go strings ("30m") and nanosecond numbers.
const specText = `{
  "format": "farm-workload-spec",
  "version": 1,
  "spec": {
    "Name": "authored",
    "Horizon": "30m",
    "Cohorts": [
      {
        "Name": "eng",
        "Weight": 2,
        "Arrivals": {"Process": "poisson", "MeanGap": "4m", "Start": 120000000000},
        "Jobs": {
          "Shapes": [{"Method": "lb2d", "JX": 2, "JY": 2, "JZ": 0, "Weight": 1}],
          "SideMin": 20, "SideMax": 40,
          "Steps": {"Median": 4000, "Sigma": 0.4, "Min": 0, "Max": 0}
        },
        "Priorities": [{"Value": 0, "Weight": 1}],
        "MaxJobs": 5
      }
    ],
    "Scenario": {
      "Every": "1m",
      "Events": [
        {"Kind": "reclaim-storm", "At": "8m", "Until": "18m", "Every": "5m", "Hosts": 2, "Dwell": "4m"}
      ]
    }
  }
}`

// TestLoadSpec: a user-authored file loads into the exact Spec literal,
// string and numeric durations both accepted, and drives Generate.
func TestLoadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "authored.json")
	if err := os.WriteFile(path, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := workload.LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	want := &workload.Spec{
		Name:    "authored",
		Horizon: 30 * time.Minute,
		Cohorts: []workload.Cohort{{
			Name:     "eng",
			Weight:   2,
			Arrivals: workload.Arrivals{Process: workload.Poisson, MeanGap: 4 * time.Minute, Start: 2 * time.Minute},
			Jobs: workload.JobDist{
				Shapes:  []workload.ShapeChoice{{Method: "lb2d", JX: 2, JY: 2, Weight: 1}},
				SideMin: 20, SideMax: 40,
				Steps: workload.StepsDist{Median: 4000, Sigma: 0.4},
			},
			Priorities: []workload.IntChoice{{Value: 0, Weight: 1}},
			MaxJobs:    5,
		}},
		Scenario: &workload.Scenario{
			Every: time.Minute,
			Events: []workload.Event{{
				Kind: workload.ReclaimStorm, At: 8 * time.Minute, Until: 18 * time.Minute,
				Every: 5 * time.Minute, Hosts: 2, Dwell: 4 * time.Minute,
			}},
		},
	}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("loaded spec differs\ngot:  %+v\nwant: %+v", spec, want)
	}
	jobs, err := workload.Generate(spec, 7)
	if err != nil {
		t.Fatalf("generate from loaded spec: %v", err)
	}
	if len(jobs) == 0 {
		t.Error("loaded spec generated no jobs")
	}
}

// TestLoadSpecRejections: unreadable files wrap ErrBadSpec with the
// failure named; semantically invalid specs wrap farm.ErrInvalidSpec.
func TestLoadSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		text string
		want error
	}{
		{"alien-format", `{"format": "not-a-spec", "version": 1, "spec": {}}`, workload.ErrBadSpec},
		{"future-version", `{"format": "farm-workload-spec", "version": 99, "spec": {}}`, workload.ErrBadSpec},
		{"no-body", `{"format": "farm-workload-spec", "version": 1}`, workload.ErrBadSpec},
		{"typo-field", `{"format": "farm-workload-spec", "version": 1,
			"spec": {"Name": "x", "Horizont": "30m"}}`, workload.ErrBadSpec},
		{"bad-duration", `{"format": "farm-workload-spec", "version": 1,
			"spec": {"Name": "x", "Horizon": "half past nine"}}`, workload.ErrBadSpec},
		{"not-json", `{"format": `, workload.ErrBadSpec},
		{"semantically-empty", `{"format": "farm-workload-spec", "version": 1,
			"spec": {"Name": "x", "Horizon": "30m", "Cohorts": []}}`, farm.ErrInvalidSpec},
	}
	for _, tc := range cases {
		if _, err := workload.ParseSpec([]byte(tc.text)); !errors.Is(err, tc.want) {
			t.Errorf("%s: ParseSpec returned %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := workload.LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil ||
		!strings.Contains(err.Error(), "read spec") {
		t.Errorf("missing file: %v, want a read error", err)
	}
}

// TestSpecFileRoundTrip: WriteSpecFile output loads back equal, so a
// generated starter file is a valid authoring seed.
func TestSpecFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "round.json")
	spec := testSpec()
	if err := workload.WriteSpecFile(spec, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, spec) {
		t.Errorf("round-tripped spec differs\ngot:  %+v\nwant: %+v", loaded, spec)
	}
}
