package workload

import (
	"fmt"
	"time"

	"repro/farm"
)

// Scenario event kinds.
const (
	// ReclaimStorm: at every firing, regular users sit back down at
	// Hosts farm-reserved workstations (deterministic scan order), the
	// section-5.1 trigger — the farm must vacate them that round. Each
	// user leaves Dwell later.
	ReclaimStorm = "reclaim-storm"
	// OwnerReturn: a wave of owners returns to Hosts workstations,
	// farm-reserved or not — the whole pool shrinks (end-of-lunch, the
	// morning wave). Each owner leaves Dwell later.
	OwnerReturn = "owner-return"
	// HostChurn: Hosts idle, unreserved workstations see a burst of
	// user activity, resetting their idle clocks — they drop out of the
	// reservable set and drift back as the section-4.1 idle threshold
	// re-passes. Churn without displacement.
	HostChurn = "host-churn"
)

// Scenario is a declarative cluster-side script: user activity at exact
// virtual times, expressed as data so it can ride in a workload spec or
// a trace file. Compile turns it into the farm.WithScenario callback.
type Scenario struct {
	// Every is the tick grid the compiled callback runs on; every event
	// time must be a multiple of it.
	Every time.Duration
	// Events are the scripted activities.
	Events []Event
}

// Event is one scripted activity window. The event fires at At and,
// when Until extends the window, at every Every step up to and
// including Until. Each firing affects up to Hosts hosts (scanned in
// deterministic pool order); firings of reclaiming kinds are undone
// Dwell later (the user leaves), or never when Dwell is 0.
type Event struct {
	Kind  string
	At    time.Duration
	Until time.Duration // 0: fire once, at At
	Every time.Duration // required when Until > At
	Hosts int           // hosts per firing (<= 0 means 1)
	Dwell time.Duration // user stay; 0 = stays forever
}

// hosts returns the per-firing host count.
func (e Event) hosts() int {
	if e.Hosts <= 0 {
		return 1
	}
	return e.Hosts
}

// firesAt reports whether the event has a firing at virtual time t.
func (e Event) firesAt(t time.Duration) bool {
	if t < e.At {
		return false
	}
	if e.Until <= e.At {
		return t == e.At
	}
	return t <= e.Until && (t-e.At)%e.Every == 0
}

// Validate checks the scenario; failures wrap farm.ErrInvalidSpec.
func (s *Scenario) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("workload: %w: scenario: %s", farm.ErrInvalidSpec, fmt.Sprintf(format, args...))
	}
	if s.Every <= 0 {
		return bad("tick interval %v is not positive", s.Every)
	}
	for i, e := range s.Events {
		switch e.Kind {
		case ReclaimStorm, OwnerReturn, HostChurn:
		default:
			return bad("event %d: unknown kind %q", i, e.Kind)
		}
		if e.At < 0 {
			return bad("event %d: negative start %v", i, e.At)
		}
		if e.Until != 0 && e.Until < e.At {
			return bad("event %d: window end %v before start %v", i, e.Until, e.At)
		}
		if e.Until > e.At && e.Every <= 0 {
			return bad("event %d: window without a firing period", i)
		}
		for _, f := range []struct {
			name string
			d    time.Duration
		}{{"start", e.At}, {"end", e.Until}, {"period", e.Every}, {"dwell", e.Dwell}} {
			if f.d%s.Every != 0 {
				return bad("event %d: %s %v is not a multiple of the %v tick", i, f.name, f.d, s.Every)
			}
		}
	}
	return nil
}

// Compile turns the scenario into the farm.WithScenario pair. The
// compiled callback is a pure function of the virtual time and the
// observable cluster state — it keeps no state of its own — so the
// identical function can be re-attached to a farm restored from a
// checkpoint and take the same decisions the dead coordinator's copy
// would have.
func (s *Scenario) Compile() (every time.Duration, fn func(time.Duration, *farm.Cluster), err error) {
	if err := s.Validate(); err != nil {
		return 0, nil, err
	}
	events := append([]Event(nil), s.Events...)
	return s.Every, func(t time.Duration, c *farm.Cluster) {
		for _, e := range events {
			if e.firesAt(t) {
				e.onset(c)
			}
			// A firing's users leave Dwell after it fired.
			if e.Dwell > 0 && t >= e.Dwell && e.firesAt(t-e.Dwell) {
				e.release(c)
			}
		}
	}, nil
}

// onset applies one firing's user activity, scanning hosts in pool
// order so the effect is deterministic.
func (e Event) onset(c *farm.Cluster) {
	n := e.hosts()
	for _, h := range c.Hosts {
		if n == 0 {
			return
		}
		switch e.Kind {
		case ReclaimStorm:
			if h.Assigned() >= 0 && !h.Reclaimed() {
				c.Reclaim(h)
				n--
			}
		case OwnerReturn:
			if !h.Reclaimed() {
				c.Reclaim(h)
				n--
			}
		case HostChurn:
			if h.Assigned() < 0 && !h.Reclaimed() && h.UserIdle() {
				h.TouchUser()
				n--
			}
		}
	}
}

// release undoes one firing Dwell later: the first still-present users
// pack up. Churn needs no release — the idle clocks it reset recover on
// their own.
func (e Event) release(c *farm.Cluster) {
	if e.Kind == HostChurn {
		return
	}
	n := e.hosts()
	for _, h := range c.Hosts {
		if n == 0 {
			return
		}
		if h.Reclaimed() {
			c.UserGone(h)
			n--
		}
	}
}
