package workload

import (
	"fmt"
	"sort"
	"time"

	"repro/farm"
)

// Generate expands a spec into a concrete job list: each cohort's
// arrival process runs over the horizon and each arrival draws its
// method, decomposition, size, runtime and priority from the cohort's
// distributions. The result is sorted by (Submit, ID) and every spec is
// validated.
//
// Generation is bit-reproducible: every draw comes from a SplitMix64
// substream derived from (seed, cohort name), so the same (spec, seed)
// pair always yields a byte-identical job list, editing one cohort
// never shifts another cohort's draws, and different seeds yield
// different orderings.
func Generate(spec *Spec, seed int64) ([]farm.JobSpec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := farm.NewRNG(seed)
	var jobs []farm.JobSpec
	for i := range spec.Cohorts {
		c := &spec.Cohorts[i]
		rng := root.Derive(c.Name)
		t := c.Arrivals.Start
		for n := 0; c.MaxJobs == 0 || n < c.MaxJobs; n++ {
			// The gap is scaled by the diurnal rate at the draw time: a
			// bucket with rate 2 halves the mean gap, doubling the rate.
			gap := interArrival(rng, c.Arrivals) * float64(c.Arrivals.MeanGap) / c.Arrivals.rate(t)
			t += time.Duration(gap)
			if t > spec.Horizon {
				break
			}
			sc := shapeDraw(rng, c.Jobs.Shapes)
			js := farm.JobSpec{
				ID:       fmt.Sprintf("%s-%04d", c.Name, n),
				Method:   sc.Method,
				JX:       sc.JX,
				JY:       sc.JY,
				JZ:       sc.JZ,
				Side:     sideDraw(rng, c.Jobs),
				Steps:    stepsDraw(rng, c.Jobs.Steps),
				Priority: priorityDraw(rng, c.Priorities),
				User:     c.Name,
				Weight:   c.Weight,
				Submit:   t,
			}
			if err := js.Validate(); err != nil {
				return nil, fmt.Errorf("workload: spec %s: generated job %s: %w", spec.Name, js.ID, err)
			}
			jobs = append(jobs, js)
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Submit != jobs[j].Submit {
			return jobs[i].Submit < jobs[j].Submit
		}
		return jobs[i].ID < jobs[j].ID
	})
	return jobs, nil
}
