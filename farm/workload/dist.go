package workload

import (
	"math"

	"repro/farm"
)

// The draws below are classical inverse-transform and rejection
// samplers built on the SplitMix64 uniform stream. They deliberately
// avoid math/rand: every consumed word comes from the one serializable
// generator, so a (spec, seed) pair fixes the entire draw sequence and
// the generated workload is bit-reproducible.

// expDraw returns an Exponential(1) draw (mean 1) by inversion.
func expDraw(r *farm.RNG) float64 {
	// 1-U is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// normDraw returns a standard normal draw via Box-Muller. Both uniforms
// are consumed and the spare is discarded, keeping the generator's
// one-word state the only state there is.
func normDraw(r *farm.RNG) float64 {
	u := 1 - r.Float64() // (0, 1]
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// gammaDraw returns a Gamma(shape, 1) draw (mean shape) using
// Marsaglia & Tsang's squeeze method, with the standard boost for
// shape < 1.
func gammaDraw(r *farm.RNG, shape float64) float64 {
	if shape <= 0 {
		return expDraw(r)
	}
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k).
		return gammaDraw(r, shape+1) * math.Pow(1-r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normDraw(r)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullDraw returns a Weibull(shape, 1) draw by inversion (scale 1,
// mean Gamma(1 + 1/shape)).
func weibullDraw(r *farm.RNG, shape float64) float64 {
	if shape <= 0 {
		shape = 1
	}
	return math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// interArrival returns one inter-arrival draw normalized to mean 1, so
// the process choice changes only the stream's variability.
func interArrival(r *farm.RNG, a Arrivals) float64 {
	shape := a.Shape
	if shape <= 0 {
		shape = 1
	}
	switch a.Process {
	case Gamma:
		// Gamma(k, 1) has mean k; divide it out.
		return gammaDraw(r, shape) / shape
	case Weibull:
		// Weibull(k, 1) has mean Gamma(1 + 1/k); divide it out.
		return weibullDraw(r, shape) / math.Gamma(1+1/shape)
	default: // Poisson
		return expDraw(r)
	}
}

// stepsDraw returns a job's integration-step count: log-normal around
// the median with spread sigma, clamped.
func stepsDraw(r *farm.RNG, d StepsDist) int {
	n := d.Median
	if d.Sigma > 0 {
		n = int(math.Round(float64(d.Median) * math.Exp(d.Sigma*normDraw(r))))
	}
	lo, hi := d.Min, d.Max
	if lo <= 0 {
		lo = (d.Median + 3) / 4
	}
	if hi <= 0 {
		hi = 4 * d.Median
	}
	if lo < 1 {
		lo = 1
	}
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// sideDraw returns a uniform subregion side in [SideMin, SideMax].
func sideDraw(r *farm.RNG, d JobDist) int {
	if d.SideMax <= d.SideMin {
		return d.SideMin
	}
	return d.SideMin + r.Intn(d.SideMax-d.SideMin+1)
}

// shapeDraw returns a weighted choice among the shape candidates.
func shapeDraw(r *farm.RNG, shapes []ShapeChoice) ShapeChoice {
	total := 0.0
	for _, sc := range shapes {
		total += weightOf(sc.Weight)
	}
	x := r.Float64() * total
	for _, sc := range shapes {
		x -= weightOf(sc.Weight)
		if x < 0 {
			return sc
		}
	}
	return shapes[len(shapes)-1]
}

// priorityDraw returns a weighted choice among the priority candidates;
// an empty list is priority 0.
func priorityDraw(r *farm.RNG, prios []IntChoice) int {
	if len(prios) == 0 {
		return 0
	}
	total := 0.0
	for _, p := range prios {
		total += weightOf(p.Weight)
	}
	x := r.Float64() * total
	for _, p := range prios {
		x -= weightOf(p.Weight)
		if x < 0 {
			return p.Value
		}
	}
	return prios[len(prios)-1].Value
}

// weightOf normalizes a non-positive weight to 1.
func weightOf(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}
