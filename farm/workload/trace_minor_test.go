package workload_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/farm"
	"repro/farm/workload"
)

// malleableSpec is a lone long-running job on an otherwise idle pool —
// the shape the supply/demand policy reliably grows.
func malleableSpec() *workload.Spec {
	return &workload.Spec{
		Name:    "malleable",
		Horizon: 10 * time.Minute,
		Cohorts: []workload.Cohort{{
			Name:     "solo",
			Arrivals: workload.Arrivals{Process: workload.Poisson, MeanGap: time.Minute},
			Jobs: workload.JobDist{
				Shapes:  []workload.ShapeChoice{{Method: "lb2d", JX: 2, JY: 2}},
				SideMin: 20,
				Steps:   workload.StepsDist{Median: 20000},
			},
			MaxJobs: 1,
		}},
	}
}

// TestTraceAutoscaledRoundTrip: a run recorded with an autoscaler plan
// is written at v1.1, carries resize events, survives the file round
// trip, and — the regression pin — Verify re-runs it byte-identically
// with a fresh engine compiled from the recorded plan.
func TestTraceAutoscaledRoundTrip(t *testing.T) {
	cfg := workload.RunConfig{
		Seed: 11, Policy: farm.FIFO, Backfill: farm.BackfillEASY,
		Autoscale: &workload.AutoscalePlan{Every: 15 * time.Second, Confirm: 2, Cooldown: time.Minute},
	}
	tr, sum, err := workload.Record(malleableSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Minor != workload.TraceMinor {
		t.Errorf("autoscaled trace minor = %d, want %d", tr.Minor, workload.TraceMinor)
	}
	if sum.Resizes == 0 {
		t.Error("autoscaled run recorded no resizes; the scenario does not exercise v1.1")
	}
	resized := false
	for _, l := range tr.Events {
		if strings.Contains(l, " resized ") || strings.Contains(l, " autoscale ") {
			resized = true
			break
		}
	}
	if !resized {
		t.Error("no resize/autoscale event lines in the recorded stream")
	}

	path := filepath.Join(t.TempDir(), "auto.trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Minor != workload.TraceMinor || loaded.Autoscale == nil ||
		loaded.Autoscale.Every != cfg.Autoscale.Every {
		t.Errorf("round trip lost v1.1 header: minor=%d autoscale=%+v", loaded.Minor, loaded.Autoscale)
	}
	if err := loaded.Verify(); err != nil {
		t.Errorf("autoscaled verify: %v", err)
	}
}

// TestTraceMinorRejections: a plain run still writes minor 0; v1.0
// traces carrying resize material and traces from newer minors are
// rejected with ErrBadTrace instead of silently diverging.
func TestTraceMinorRejections(t *testing.T) {
	plain, _, err := workload.Record(testSpec(), workload.RunConfig{Seed: 3, Policy: farm.FIFO, Backfill: farm.BackfillEASY})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Minor != 0 {
		t.Errorf("plain trace minor = %d, want 0 (pinned v1 output)", plain.Minor)
	}

	auto, _, err := workload.Record(malleableSpec(), workload.RunConfig{
		Seed: 11, Policy: farm.FIFO, Backfill: farm.BackfillEASY,
		Autoscale: &workload.AutoscalePlan{Every: 15 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A trace claiming the original v1 schema but containing resize
	// events was mislabeled or hand-edited.
	downgraded := *auto
	downgraded.Minor = 0
	downgraded.Autoscale = nil
	if err := downgraded.Verify(); !errors.Is(err, workload.ErrBadTrace) {
		t.Errorf("v1.0 trace with resize events: %v, want ErrBadTrace", err)
	}
	// Same mislabeling with only the plan present.
	headerOnly := *plain
	headerOnly.Autoscale = &workload.AutoscalePlan{Every: time.Minute}
	if err := headerOnly.Verify(); !errors.Is(err, workload.ErrBadTrace) {
		t.Errorf("v1.0 trace with autoscale plan: %v, want ErrBadTrace", err)
	}
	// A newer writer's minor is beyond this build.
	future := *auto
	future.Minor = workload.TraceMinor + 1
	if err := future.Verify(); !errors.Is(err, workload.ErrBadTrace) {
		t.Errorf("future minor: %v, want ErrBadTrace", err)
	}

	// An invalid recorded plan is refused at build time, not replayed.
	if _, _, err := workload.Record(testSpec(), workload.RunConfig{
		Policy: farm.FIFO, Backfill: farm.BackfillEASY,
		Autoscale: &workload.AutoscalePlan{Every: 0},
	}); !errors.Is(err, farm.ErrInvalidSpec) {
		t.Errorf("zero-tick plan: %v, want ErrInvalidSpec", err)
	}
}
