package workload_test

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/farm"
	"repro/farm/workload"
)

// testSpec is a small two-cohort spec with a scripted reclaim storm:
// big enough to exercise placement, backfill and reclaim migration,
// small enough to run in well under a second.
func testSpec() *workload.Spec {
	return &workload.Spec{
		Name:    "unit",
		Horizon: 30 * time.Minute,
		Cohorts: []workload.Cohort{
			{
				Name:     "eng",
				Weight:   2,
				Arrivals: workload.Arrivals{Process: workload.Poisson, MeanGap: 4 * time.Minute},
				Jobs: workload.JobDist{
					Shapes: []workload.ShapeChoice{
						{Method: "lb2d", JX: 2, JY: 2, Weight: 3},
						{Method: "fd2d", JX: 4, JY: 2, Weight: 1},
					},
					SideMin: 20, SideMax: 40,
					Steps: workload.StepsDist{Median: 4000, Sigma: 0.4},
				},
				Priorities: []workload.IntChoice{{Value: 0, Weight: 3}, {Value: 5, Weight: 1}},
				MaxJobs:    5,
			},
			{
				Name:     "sci",
				Arrivals: workload.Arrivals{Process: workload.Gamma, MeanGap: 6 * time.Minute, Shape: 2, Start: 2 * time.Minute},
				Jobs: workload.JobDist{
					Shapes:  []workload.ShapeChoice{{Method: "lb3d", JX: 2, JY: 2, JZ: 2}},
					SideMin: 10,
					Steps:   workload.StepsDist{Median: 2000, Sigma: 0.3},
				},
				MaxJobs: 3,
			},
		},
		Scenario: &workload.Scenario{
			Every: time.Minute,
			Events: []workload.Event{
				{Kind: workload.ReclaimStorm, At: 8 * time.Minute, Until: 18 * time.Minute,
					Every: 5 * time.Minute, Hosts: 2, Dwell: 4 * time.Minute},
				{Kind: workload.HostChurn, At: 5 * time.Minute, Hosts: 3},
			},
		},
	}
}

func jobsJSON(t *testing.T, jobs []farm.JobSpec) string {
	t.Helper()
	b, err := json.Marshal(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGenerateDeterministic is the regression pin on generation: the
// same (spec, seed) pair yields a byte-identical job list, and
// different seeds yield different ones.
func TestGenerateDeterministic(t *testing.T) {
	a, err := workload.Generate(testSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Generate(testSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("spec generated no jobs")
	}
	if ja, jb := jobsJSON(t, a), jobsJSON(t, b); ja != jb {
		t.Errorf("same (spec, seed) produced different job lists:\n%s\n%s", ja, jb)
	}
	c, err := workload.Generate(testSpec(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if jobsJSON(t, a) == jobsJSON(t, c) {
		t.Error("different seeds produced identical job lists")
	}

	seen := make(map[string]bool)
	for i, sp := range a {
		if seen[sp.ID] {
			t.Errorf("duplicate job ID %s", sp.ID)
		}
		seen[sp.ID] = true
		if sp.Submit > testSpec().Horizon {
			t.Errorf("job %s submitted at %v, past the horizon", sp.ID, sp.Submit)
		}
		if i > 0 && sp.Submit < a[i-1].Submit {
			t.Errorf("job list not sorted at %d: %v after %v", i, sp.Submit, a[i-1].Submit)
		}
	}
}

// TestGenerateCohortIsolation: editing one cohort must not shift
// another cohort's draws — each cohort has its own derived substream.
func TestGenerateCohortIsolation(t *testing.T) {
	base, err := workload.Generate(testSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	edited := testSpec()
	edited.Cohorts[1].Arrivals.MeanGap = 3 * time.Minute // perturb sci only
	got, err := workload.Generate(edited, 7)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(jobs []farm.JobSpec, user string) []farm.JobSpec {
		var out []farm.JobSpec
		for _, sp := range jobs {
			if sp.User == user {
				out = append(out, sp)
			}
		}
		return out
	}
	if a, b := jobsJSON(t, filter(base, "eng")), jobsJSON(t, filter(got, "eng")); a != b {
		t.Errorf("editing cohort sci changed cohort eng's jobs:\n%s\n%s", a, b)
	}
}

// TestGenerateDiurnal: a diurnal rate curve shifts arrival mass into
// its high-rate buckets.
func TestGenerateDiurnal(t *testing.T) {
	spec := &workload.Spec{
		Name:    "diurnal",
		Horizon: 24 * time.Hour,
		Cohorts: []workload.Cohort{{
			Name: "d",
			Arrivals: workload.Arrivals{
				Process: workload.Poisson,
				MeanGap: 2 * time.Minute,
				Diurnal: []float64{4, 0.25},
				Day:     2 * time.Hour,
			},
			Jobs: workload.JobDist{
				Shapes:  []workload.ShapeChoice{{Method: "lb2d", JX: 2, JY: 1}},
				SideMin: 8,
				Steps:   workload.StepsDist{Median: 100},
			},
		}},
	}
	jobs, err := workload.Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	var busy, quiet int
	for _, sp := range jobs {
		if sp.Submit%(2*time.Hour) < time.Hour {
			busy++
		} else {
			quiet++
		}
	}
	if busy+quiet < 100 {
		t.Fatalf("only %d arrivals; spec too sparse to test", busy+quiet)
	}
	// Rates 4 vs 0.25 put 16x the mass in the busy half-day; even a
	// noisy draw clears 2x.
	if busy < 2*quiet {
		t.Errorf("diurnal curve ignored: %d arrivals in the rate-4 buckets, %d in the rate-0.25 buckets", busy, quiet)
	}
}

// TestSpecValidation: malformed specs are rejected with ErrInvalidSpec.
func TestSpecValidation(t *testing.T) {
	cases := map[string]func(*workload.Spec){
		"no name":        func(s *workload.Spec) { s.Name = "" },
		"no horizon":     func(s *workload.Spec) { s.Horizon = 0 },
		"no cohorts":     func(s *workload.Spec) { s.Cohorts = nil },
		"dup cohort":     func(s *workload.Spec) { s.Cohorts[1].Name = s.Cohorts[0].Name },
		"bad process":    func(s *workload.Spec) { s.Cohorts[0].Arrivals.Process = "bursty" },
		"no mean gap":    func(s *workload.Spec) { s.Cohorts[0].Arrivals.MeanGap = 0 },
		"bad diurnal":    func(s *workload.Spec) { s.Cohorts[0].Arrivals.Diurnal = []float64{1, 0} },
		"no shapes":      func(s *workload.Spec) { s.Cohorts[0].Jobs.Shapes = nil },
		"bad method":     func(s *workload.Spec) { s.Cohorts[0].Jobs.Shapes[0].Method = "lb4d" },
		"no side":        func(s *workload.Spec) { s.Cohorts[0].Jobs.SideMin = 0 },
		"side range":     func(s *workload.Spec) { s.Cohorts[0].Jobs.SideMax = s.Cohorts[0].Jobs.SideMin - 1 },
		"no steps":       func(s *workload.Spec) { s.Cohorts[0].Jobs.Steps.Median = 0 },
		"negative sigma": func(s *workload.Spec) { s.Cohorts[0].Jobs.Steps.Sigma = -1 },

		"scenario tick":      func(s *workload.Spec) { s.Scenario.Every = 0 },
		"scenario kind":      func(s *workload.Spec) { s.Scenario.Events[0].Kind = "meteor" },
		"scenario off-grid":  func(s *workload.Spec) { s.Scenario.Events[0].At = 90 * time.Second; s.Scenario.Every = time.Minute },
		"scenario window":    func(s *workload.Spec) { s.Scenario.Events[0].Until = s.Scenario.Events[0].At - time.Minute },
		"scenario no period": func(s *workload.Spec) { s.Scenario.Events[0].Every = 0 },
		"scenario neg start": func(s *workload.Spec) { s.Scenario.Events[0].At = -time.Minute },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			spec := testSpec()
			mutate(spec)
			if _, err := workload.Generate(spec, 1); !errors.Is(err, farm.ErrInvalidSpec) {
				t.Errorf("got %v, want ErrInvalidSpec", err)
			}
		})
	}
}

// TestRecordVerifyRoundTrip records a run, round-trips the trace
// through a file, and verifies it: the re-run's event stream must be
// byte-identical. Recording twice must also produce identical traces —
// the event-stream half of the determinism pin.
func TestRecordVerifyRoundTrip(t *testing.T) {
	cfg := workload.RunConfig{Seed: 7, Policy: farm.Priority, Backfill: farm.BackfillEASY}
	tr, sum, err := workload.Record(testSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 || len(tr.Jobs) == 0 {
		t.Fatalf("empty trace: %d jobs, %d events", len(tr.Jobs), len(tr.Events))
	}
	if len(sum.Jobs) != len(tr.Jobs) {
		t.Errorf("summary has %d jobs, trace %d", len(sum.Jobs), len(tr.Jobs))
	}
	// The scripted storm must actually bite.
	if !strings.Contains(strings.Join(tr.Events, "\n"), "reclaim") {
		t.Error("reclaim-storm scenario produced no reclaim events")
	}

	tr2, _, err := workload.Record(testSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := strings.Join(tr.Events, "\n"), strings.Join(tr2.Events, "\n"); a != b {
		t.Error("recording the same (spec, seed) twice produced different event streams")
	}

	path := filepath.Join(t.TempDir(), "unit.trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(); err != nil {
		t.Errorf("verify after round-trip: %v", err)
	}
}

// TestVerifyCatchesDrift: a trace whose recorded stream no longer
// matches the configuration must fail Verify with ErrTraceDiverged.
func TestVerifyCatchesDrift(t *testing.T) {
	tr, _, err := workload.Record(testSpec(), workload.RunConfig{Seed: 7, Policy: farm.FIFO, Backfill: farm.BackfillEASY})
	if err != nil {
		t.Fatal(err)
	}
	tampered := *tr
	tampered.Events = append([]string(nil), tr.Events...)
	tampered.Events[len(tampered.Events)/2] = "t=1m0s job evil queued"
	if err := tampered.Verify(); !errors.Is(err, workload.ErrTraceDiverged) {
		t.Errorf("tampered event: got %v, want ErrTraceDiverged", err)
	}

	reseeded := *tr
	reseeded.Seed++
	if err := reseeded.Verify(); !errors.Is(err, workload.ErrTraceDiverged) {
		t.Errorf("tampered seed: got %v, want ErrTraceDiverged", err)
	}
}

// TestTraceVersionRejected: traces from the future (or another format)
// are rejected, not misparsed.
func TestTraceVersionRejected(t *testing.T) {
	tr, _, err := workload.Record(testSpec(), workload.RunConfig{Seed: 1, Policy: farm.FIFO, Backfill: farm.BackfillNone})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "future.trace.json")

	future := *tr
	future.Version = workload.TraceVersion + 1
	if err := future.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.ReadTrace(path); !errors.Is(err, workload.ErrBadTrace) {
		t.Errorf("future version: got %v, want ErrBadTrace", err)
	}
	if err := future.Verify(); !errors.Is(err, workload.ErrBadTrace) {
		t.Errorf("future version verify: got %v, want ErrBadTrace", err)
	}

	alien := *tr
	alien.Format = "not-a-farm-trace"
	if err := alien.Verify(); !errors.Is(err, workload.ErrBadTrace) {
		t.Errorf("alien format: got %v, want ErrBadTrace", err)
	}

	unknown := *tr
	unknown.Timer = "quantum"
	if err := unknown.Verify(); !errors.Is(err, workload.ErrBadTrace) {
		t.Errorf("unregistered timer: got %v, want ErrBadTrace", err)
	}
}

// TestReplayOpenLoop replays a recorded workload under different
// scheduling knobs: same jobs and scenario, different policy. The runs
// must complete every job; the streams are expected to differ.
func TestReplayOpenLoop(t *testing.T) {
	tr, ref, err := workload.Record(testSpec(), workload.RunConfig{Seed: 7, Policy: farm.FIFO, Backfill: farm.BackfillNone})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := workload.ReplayOpenLoop(tr, workload.RunConfig{Seed: 7, Policy: farm.Priority, Backfill: farm.BackfillEASY})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Jobs) != len(ref.Jobs) {
		t.Errorf("open-loop replay finished %d jobs, recorded run %d", len(sum.Jobs), len(ref.Jobs))
	}
}

// TestVerifyAcrossRestore is the acceptance pin: a recorded trace is
// reproduced byte-identically even when the verifying run crashes
// mid-way and continues from its checkpoint — the doomed run's stream
// plus the restored run's stream equals the recording.
func TestVerifyAcrossRestore(t *testing.T) {
	const (
		ckptEvery = 6 * time.Minute
		crashAt   = 12 * time.Minute
	)
	spec := testSpec()
	cfg := workload.RunConfig{
		Seed: 7, Policy: farm.Priority, Backfill: farm.BackfillEASY,
		CheckpointEvery: ckptEvery, CheckpointDir: t.TempDir(),
	}
	tr, _, err := workload.Record(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(tr.Events, "\n"), "checkpoint") {
		t.Fatal("recorded run saved no checkpoints; the boundary test would be vacuous")
	}

	policy, err := farm.ParsePolicy(tr.Policy)
	if err != nil {
		t.Fatal(err)
	}
	backfill, err := farm.ParseBackfill(tr.Backfill)
	if err != nil {
		t.Fatal(err)
	}
	every, scenario, err := tr.Scenario.Compile()
	if err != nil {
		t.Fatal(err)
	}
	pool := func() *farm.Cluster {
		c := farm.NewPaperCluster()
		c.Advance(30 * time.Minute)
		return c
	}

	// The doomed run: periodic checkpoints on the recorded grid, then at
	// crashAt an explicit save (standing in for the periodic one its
	// death preempts — same virtual time, same generation number) and an
	// interrupt.
	dir := t.TempDir()
	crashed := false
	var doomed *farm.Farm
	doomed, err = farm.New(pool(),
		farm.WithPolicy(policy), farm.WithBackfill(backfill), farm.WithSeed(tr.Seed),
		farm.WithCheckpoint(dir, tr.CheckpointEvery, tr.CheckpointGap),
		farm.WithScenario(every, func(tt time.Duration, c *farm.Cluster) {
			scenario(tt, c)
			if tt >= crashAt && !crashed {
				crashed = true
				if err := doomed.Checkpoint(dir); err != nil {
					t.Error(err)
				}
				doomed.Interrupt()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	subA := doomed.SubscribeBuffered(1 << 14)
	for _, sp := range tr.Jobs {
		if _, err := doomed.Submit(sp, nil); err != nil {
			t.Fatal(err)
		}
	}
	doomed.Drain()
	if _, err := doomed.Run(nil); !errors.Is(err, farm.ErrInterrupted) {
		t.Fatalf("doomed run: %v, want ErrInterrupted", err)
	}
	subA.Close()
	var got []string
	for ev := range subA.Events() {
		got = append(got, ev.String())
	}

	// The restored continuation re-attaches the same scenario and
	// checkpoint grid, as Restore requires for bit-identity.
	restored, err := farm.Restore(dir, farm.NewPaperCluster(), nil,
		farm.WithScenario(every, scenario),
		farm.WithCheckpoint(dir, tr.CheckpointEvery, tr.CheckpointGap))
	if err != nil {
		t.Fatal(err)
	}
	subB := restored.SubscribeBuffered(1 << 14)
	if _, err := restored.Run(nil); err != nil {
		t.Fatal(err)
	}
	for ev := range subB.Events() {
		got = append(got, ev.String())
	}

	want := strings.Join(tr.Events, "\n")
	if g := strings.Join(got, "\n"); g != want {
		t.Errorf("stitched crash+restore stream differs from the recorded trace:\nrecorded %d events, got %d", len(tr.Events), len(got))
	}
}
