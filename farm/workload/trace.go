package workload

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/farm"
	"repro/farm/autoscale"
)

// Trace file identification. A trace is self-describing: Format names
// the schema family and Version its revision, and readers reject
// anything they do not understand instead of misparsing it.
const (
	TraceFormat  = "farm-workload-trace"
	TraceVersion = 1
	// TraceMinor is the revision within TraceVersion this build writes
	// when it needs to. Minor 1 adds malleability: an autoscaler plan in
	// the header and resize/autoscale events in the stream. Traces
	// without either still serialize as plain v1 (minor omitted), so
	// recorded pins from older builds stay byte-identical; v1.0 traces
	// that nevertheless contain resize events are rejected as corrupt
	// rather than silently diverging on replay.
	TraceMinor = 1
)

// Trace sentinels, checkable with errors.Is.
var (
	// ErrBadTrace: the trace is unreadable — wrong format or version,
	// or it names a timer or pool this process has not registered.
	ErrBadTrace = errors.New("unsupported trace")
	// ErrTraceDiverged: a Verify re-run produced a different event
	// stream than the trace recorded.
	ErrTraceDiverged = errors.New("trace diverged")
)

// Trace is one recorded farm run, v1: the full scheduling decision
// stream (the farm.Subscribe surface, one stable String line per
// event) together with everything needed to reproduce it — the job
// list, the scheduling knobs, the cluster-side scenario and the
// checkpoint grid. Durations serialize as nanoseconds.
//
// Two replays are supported. Verify re-runs the recorded configuration
// and asserts the stream is byte-identical — the regression pin.
// ReplayOpenLoop re-submits the recorded arrivals open-loop against
// different knobs (policy, backfill, seed, timer, pool) — the
// policy-comparison path. Timers and pools are functions, so the trace
// carries registry names (RegisterTimer, RegisterPool), not values;
// checkpoint directories are operator-local and deliberately absent
// (event String forms omit them too), so Verify checkpoints into a
// throwaway directory on the recorded virtual-time grid.
type Trace struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Minor is the revision within Version (see TraceMinor); 0 is the
	// original v1 schema.
	Minor int    `json:"minor,omitempty"`
	Name  string `json:"name"`

	Seed            int64          `json:"seed"`
	Policy          string         `json:"policy"`
	Backfill        string         `json:"backfill"`
	Timer           string         `json:"timer,omitempty"`
	Pool            string         `json:"pool,omitempty"`
	CheckpointEvery time.Duration  `json:"checkpoint_every,omitempty"`
	CheckpointGap   time.Duration  `json:"checkpoint_gap,omitempty"`
	Scenario        *Scenario      `json:"scenario,omitempty"`
	Autoscale       *AutoscalePlan `json:"autoscale,omitempty"`

	Jobs   []farm.JobSpec `json:"jobs"`
	Events []string       `json:"events"`
}

// AutoscalePlan is the declarative form of the farm/autoscale control
// loop, so an autoscaled run rides in a trace as pure data the way a
// Scenario does: Every is the control-tick grid, the policy knobs are
// SupplyDemand's, Confirm and Cooldown the Engine's smoothing. Compile
// builds a fresh Engine per run — the engine is stateful, so a plan is
// never shared between runs.
type AutoscalePlan struct {
	Every     time.Duration `json:"every"`
	Spare     int           `json:"spare,omitempty"`
	Chunk     int           `json:"chunk,omitempty"`
	MaxFactor float64       `json:"max_factor,omitempty"`
	Confirm   int           `json:"confirm,omitempty"`
	Cooldown  time.Duration `json:"cooldown,omitempty"`
}

// Compile turns the plan into the farm option wiring a fresh engine.
func (p *AutoscalePlan) Compile() (farm.Option, error) {
	if p.Every <= 0 {
		return nil, fmt.Errorf("workload: %w: autoscale tick %v is not positive", farm.ErrInvalidSpec, p.Every)
	}
	eng := &autoscale.Engine{
		Policy: autoscale.SupplyDemand{
			Spare: p.Spare, Chunk: p.Chunk, MaxFactor: p.MaxFactor,
		},
		Confirm:  p.Confirm,
		Cooldown: p.Cooldown,
	}
	return eng.Option(p.Every), nil
}

// RunConfig is the knob set of one recorded or replayed run. The zero
// value is the farm's defaults: seed 0, FIFO, EASY backfill, the
// compute-only timer, the quiet paper pool, no checkpointing.
type RunConfig struct {
	Seed     int64
	Policy   farm.Policy
	Backfill farm.BackfillMode
	// Timer and Pool are registry names (RegisterTimer, RegisterPool);
	// empty means TimerCompute and PoolPaperQuiet.
	Timer string
	Pool  string
	// CheckpointEvery arms periodic checkpointing into CheckpointDir
	// (Record requires a directory when the interval is set; Verify
	// supplies its own throwaway directory). The interval is recorded in
	// the trace: CheckpointSaved events sit on its virtual-time grid.
	CheckpointEvery time.Duration
	CheckpointGap   time.Duration
	CheckpointDir   string
	// Autoscale, when non-nil, attaches the supply/demand control loop;
	// a trace recorded with it is written at v1.1 (the plan and the
	// resize/autoscale events are part of what Verify must reproduce).
	Autoscale *AutoscalePlan
}

// Built-in registry names.
const (
	// TimerCompute is the communication-free step timer, the farm's
	// default.
	TimerCompute = "compute"
	// PoolPaper is the paper's 25-host pool at time zero.
	PoolPaper = "paper"
	// PoolPaperQuiet is the paper pool after 30 idle minutes — load
	// averages decayed, every user idle — the experiments' common
	// starting condition and the default.
	PoolPaperQuiet = "paper-quiet"
)

// The timer and pool registries. Traces reference both by name so a
// trace file stays a pure data artifact; a process replaying a trace
// that uses a custom timer or pool registers it first under the
// recorded name.
var (
	regMu  sync.Mutex
	timers = map[string]farm.StepTimer{
		TimerCompute: farm.ComputeTimer,
	}
	pools = map[string]func() *farm.Cluster{
		PoolPaper: farm.NewPaperCluster,
		PoolPaperQuiet: func() *farm.Cluster {
			c := farm.NewPaperCluster()
			c.Advance(30 * time.Minute)
			return c
		},
	}
)

// RegisterTimer names a step timer for traces. Registering a name
// twice replaces it.
func RegisterTimer(name string, t farm.StepTimer) {
	regMu.Lock()
	defer regMu.Unlock()
	timers[name] = t
}

// RegisterPool names a pool constructor for traces. The constructor
// must build a fresh, identically shaped pool on every call.
func RegisterPool(name string, fn func() *farm.Cluster) {
	regMu.Lock()
	defer regMu.Unlock()
	pools[name] = fn
}

// timerFor resolves a timer name ("" = compute).
func timerFor(name string) (farm.StepTimer, error) {
	if name == "" {
		name = TimerCompute
	}
	regMu.Lock()
	t, ok := timers[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workload: %w: timer %q is not registered", ErrBadTrace, name)
	}
	return t, nil
}

// poolFor resolves a pool name ("" = quiet paper pool) to a fresh pool.
func poolFor(name string) (*farm.Cluster, error) {
	if name == "" {
		name = PoolPaperQuiet
	}
	regMu.Lock()
	fn, ok := pools[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workload: %w: pool %q is not registered", ErrBadTrace, name)
	}
	return fn(), nil
}

// build assembles the farm for one run: pool and timer from the
// registries, the scenario compiled onto WithScenario, checkpointing on
// the given grid.
func build(cfg RunConfig, sc *Scenario) (*farm.Farm, error) {
	pool, err := poolFor(cfg.Pool)
	if err != nil {
		return nil, err
	}
	timer, err := timerFor(cfg.Timer)
	if err != nil {
		return nil, err
	}
	opts := []farm.Option{
		farm.WithPolicy(cfg.Policy),
		farm.WithBackfill(cfg.Backfill),
		farm.WithSeed(cfg.Seed),
		farm.WithTimer(timer),
	}
	if sc != nil {
		every, fn, err := sc.Compile()
		if err != nil {
			return nil, err
		}
		opts = append(opts, farm.WithScenario(every, fn))
	}
	if cfg.Autoscale != nil {
		opt, err := cfg.Autoscale.Compile()
		if err != nil {
			return nil, err
		}
		opts = append(opts, opt)
	}
	if cfg.CheckpointEvery > 0 {
		if cfg.CheckpointDir == "" {
			return nil, fmt.Errorf("workload: %w: checkpoint interval %v without a directory", farm.ErrInvalidSpec, cfg.CheckpointEvery)
		}
		opts = append(opts, farm.WithCheckpoint(cfg.CheckpointDir, cfg.CheckpointEvery, cfg.CheckpointGap))
	}
	return farm.New(pool, opts...)
}

// run submits the jobs, drains the farm and runs it to completion,
// collecting the full event stream as String lines.
func run(f *farm.Farm, jobs []farm.JobSpec) (farm.Summary, []string, error) {
	// The subscriber drains concurrently and the buffer rides out its
	// scheduling hiccups, so the stream is complete (Dropped is checked,
	// not assumed).
	sub := f.SubscribeBuffered(1 << 14)
	var lines []string
	done := make(chan struct{})
	//detlint:allow goentropy -- subscriber drain: the goroutine only copies the already-ordered event stream into lines, and the reader joins on done before touching them
	go func() {
		defer close(done)
		for ev := range sub.Events() {
			lines = append(lines, ev.String())
		}
	}()
	fail := func(err error) (farm.Summary, []string, error) {
		sub.Close()
		<-done
		return farm.Summary{}, nil, err
	}
	for _, sp := range jobs {
		if _, err := f.Submit(sp, nil); err != nil {
			return fail(fmt.Errorf("workload: submit %s: %w", sp.ID, err))
		}
	}
	f.Drain()
	sum, err := f.Run(context.Background())
	if err != nil {
		return fail(fmt.Errorf("workload: run: %w", err))
	}
	// A drained Run closed the stream; the drain goroutine has the tail.
	<-done
	if d := sub.Dropped(); d > 0 {
		return farm.Summary{}, nil, fmt.Errorf("workload: event stream dropped %d events; trace incomplete", d)
	}
	return sum, lines, nil
}

// Record generates the spec's jobs at cfg.Seed, runs them under cfg
// with the spec's scenario attached, and returns the run's trace and
// metrics. The trace is closed over everything that shaped the stream,
// so Verify can re-run it bit-identically later, in another process.
func Record(spec *Spec, cfg RunConfig) (*Trace, farm.Summary, error) {
	jobs, err := Generate(spec, cfg.Seed)
	if err != nil {
		return nil, farm.Summary{}, err
	}
	f, err := build(cfg, spec.Scenario)
	if err != nil {
		return nil, farm.Summary{}, err
	}
	sum, lines, err := run(f, jobs)
	if err != nil {
		return nil, farm.Summary{}, err
	}
	minor := 0
	if cfg.Autoscale != nil || hasResizeEvents(lines) {
		// Malleability in the header or the stream: the trace needs the
		// v1.1 schema. Anything else stays plain v1 so pins recorded
		// before malleability existed remain byte-identical.
		minor = TraceMinor
	}
	return &Trace{
		Format:          TraceFormat,
		Version:         TraceVersion,
		Minor:           minor,
		Name:            spec.Name,
		Seed:            cfg.Seed,
		Policy:          cfg.Policy.String(),
		Backfill:        cfg.Backfill.String(),
		Timer:           cfg.Timer,
		Pool:            cfg.Pool,
		CheckpointEvery: cfg.CheckpointEvery,
		CheckpointGap:   cfg.CheckpointGap,
		Scenario:        spec.Scenario,
		Autoscale:       cfg.Autoscale,
		Jobs:            jobs,
		Events:          lines,
	}, sum, nil
}

// hasResizeEvents reports whether any recorded event line is a resize
// or an autoscale decision (their stable String forms).
func hasResizeEvents(lines []string) bool {
	for _, l := range lines {
		if strings.Contains(l, " resized ") || strings.Contains(l, " autoscale ") {
			return true
		}
	}
	return false
}

// config rebuilds the recorded RunConfig (parsing the policy and
// backfill names); the checkpoint directory is the caller's.
func (tr *Trace) config(ckptDir string) (RunConfig, error) {
	policy, err := farm.ParsePolicy(tr.Policy)
	if err != nil {
		return RunConfig{}, fmt.Errorf("workload: %w: %w", ErrBadTrace, err)
	}
	backfill, err := farm.ParseBackfill(tr.Backfill)
	if err != nil {
		return RunConfig{}, fmt.Errorf("workload: %w: %w", ErrBadTrace, err)
	}
	return RunConfig{
		Seed:            tr.Seed,
		Policy:          policy,
		Backfill:        backfill,
		Timer:           tr.Timer,
		Pool:            tr.Pool,
		CheckpointEvery: tr.CheckpointEvery,
		CheckpointGap:   tr.CheckpointGap,
		CheckpointDir:   ckptDir,
		Autoscale:       tr.Autoscale,
	}, nil
}

// Verify re-runs the trace's recorded configuration — same jobs, seed,
// knobs, scenario and checkpoint grid, a fresh pool from the registry —
// and asserts the event stream is byte-identical to the recording.
// A mismatch wraps ErrTraceDiverged and pinpoints the first divergent
// event. This is the regression pin CI runs: any drift in scheduling
// behavior, event ordering or trace rendering fails it.
func (tr *Trace) Verify() error {
	if err := tr.check(); err != nil {
		return err
	}
	ckptDir := ""
	if tr.CheckpointEvery > 0 {
		// The recorded run checkpointed, so this run must too — the
		// CheckpointSaved events are part of the stream. The directory is
		// not (String forms omit it); any throwaway location does.
		dir, err := os.MkdirTemp("", "trace-verify-")
		if err != nil {
			return fmt.Errorf("workload: verify: %w", err)
		}
		defer os.RemoveAll(dir)
		ckptDir = dir
	}
	cfg, err := tr.config(ckptDir)
	if err != nil {
		return err
	}
	f, err := build(cfg, tr.Scenario)
	if err != nil {
		return err
	}
	_, lines, err := run(f, tr.Jobs)
	if err != nil {
		return err
	}
	return diffEvents(tr.Events, lines)
}

// diffEvents compares two event streams line by line and reports the
// first divergence as an ErrTraceDiverged.
func diffEvents(want, got []string) error {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Errorf("workload: %w: event %d:\n  recorded: %s\n  replayed: %s", ErrTraceDiverged, i, want[i], got[i])
		}
	}
	if len(got) != len(want) {
		return fmt.Errorf("workload: %w: recorded %d events, replayed %d", ErrTraceDiverged, len(want), len(got))
	}
	return nil
}

// ReplayOpenLoop re-submits the trace's recorded arrivals open-loop
// under different knobs: the job list (IDs, shapes, sizes, arrival
// times) is held fixed while cfg chooses the policy, backfill mode,
// seed, timer and pool. The trace's cluster-side scenario stays
// attached — the recorded world, a different scheduler. This is the
// policy-comparison path: one recorded workload, a table of summaries.
func ReplayOpenLoop(tr *Trace, cfg RunConfig) (farm.Summary, error) {
	if err := tr.check(); err != nil {
		return farm.Summary{}, err
	}
	f, err := build(cfg, tr.Scenario)
	if err != nil {
		return farm.Summary{}, err
	}
	sum, _, err := run(f, tr.Jobs)
	return sum, err
}

// check rejects traces this package does not understand — including
// internally inconsistent ones: a v1.0 trace that nevertheless carries
// resize or autoscale material was written by a buggy tool or edited
// by hand, and replaying it would diverge silently at the first resize
// the replay does not reproduce.
func (tr *Trace) check() error {
	if tr.Format != TraceFormat {
		return fmt.Errorf("workload: %w: format %q, want %q", ErrBadTrace, tr.Format, TraceFormat)
	}
	if tr.Version != TraceVersion {
		return fmt.Errorf("workload: %w: version %d, this build reads version %d", ErrBadTrace, tr.Version, TraceVersion)
	}
	if tr.Minor > TraceMinor {
		return fmt.Errorf("workload: %w: version %d.%d, this build reads up to %d.%d", ErrBadTrace, tr.Version, tr.Minor, TraceVersion, TraceMinor)
	}
	if tr.Minor < TraceMinor && (tr.Autoscale != nil || hasResizeEvents(tr.Events)) {
		return fmt.Errorf("workload: %w: v%d.%d trace contains resize/autoscale material, which needs v%d.%d; re-record it",
			ErrBadTrace, tr.Version, tr.Minor, TraceVersion, TraceMinor)
	}
	return nil
}

// WriteFile serializes the trace as indented JSON.
func (tr *Trace) WriteFile(path string) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: encode trace: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTrace loads and checks a trace file; unknown formats or versions
// are rejected with ErrBadTrace rather than misparsed.
func ReadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("workload: %w: %w", ErrBadTrace, err)
	}
	if err := tr.check(); err != nil {
		return nil, err
	}
	return &tr, nil
}
