package cluster

import "time"

// HostEventKind classifies one entry of the cluster's host event stream.
type HostEventKind int

const (
	// EventReclaim records a regular user returning to their
	// workstation: the host's idle clock resets and a full-time user
	// process starts. When the host is reserved by a farm job, this is
	// the section-5.1 trigger — the subprocess must vacate.
	EventReclaim HostEventKind = iota
	// EventRelease records the user's last process leaving the host, so
	// the machine is reservable again.
	EventRelease
)

func (k HostEventKind) String() string {
	switch k {
	case EventReclaim:
		return "reclaim"
	case EventRelease:
		return "release"
	}
	return "event?"
}

// HostEvent is one entry of the cluster's event stream: a user arriving
// at or leaving a workstation, stamped with the virtual time it happened.
// A long-running farm drains the stream every scheduling round and reacts
// to reclaims of reserved hosts by migrating the displaced ranks.
type HostEvent struct {
	Kind HostEventKind
	Host *Host
	At   time.Duration
	// Owner is the job whose subprocess held the host at the instant
	// the event was recorded ("" for an unreserved host). It is
	// captured here, not at drain time: the owning job may complete —
	// releasing the host — before the farm's next round drains the
	// stream.
	Owner string
}

// Reclaim marks the host's regular user as returned: interactive activity
// is recorded, a full-time user process starts, and the host stops being
// reservable until UserGone. The event is appended to the cluster's
// stream so a farm scheduler reacts within its next round instead of
// waiting for the load averages to climb past the migration threshold.
func (c *Cluster) Reclaim(h *Host) {
	h.TouchUser()
	h.StartJob()
	h.reclaimed = true
	c.events = append(c.events, HostEvent{Kind: EventReclaim, Host: h, At: c.now, Owner: h.Owner()})
}

// UserGone removes one of the regular user's processes; when it was the
// last one the user is considered gone, the host becomes reservable again
// (once its user load decays) and a release event is recorded.
func (c *Cluster) UserGone(h *Host) {
	h.StopJob()
	if h.jobs == 0 && h.reclaimed {
		h.reclaimed = false
		c.events = append(c.events, HostEvent{Kind: EventRelease, Host: h, At: c.now})
	}
}

// DrainEvents returns the accumulated host events in order and clears the
// stream. The farm's event loop calls it once per scheduling round.
func (c *Cluster) DrainEvents() []HostEvent {
	evs := c.events
	c.events = nil
	return evs
}

// Reclaimed reports whether the regular user is currently present via the
// Reclaim/UserGone protocol. Unlike the load averages, the flag flips the
// instant the user returns, which is what lets the farm vacate a host
// "the moment" its owner needs it rather than minutes later.
func (h *Host) Reclaimed() bool { return h.reclaimed }
