package cluster

import (
	"math/rand"
	"testing"
	"time"
)

// --- SelectFree edge cases -------------------------------------------------

func TestSelectFreeEmptyPool(t *testing.T) {
	c := &Cluster{}
	if got := c.SelectFree(5, DefaultPolicy()); len(got) != 0 {
		t.Errorf("empty pool selected %d hosts", len(got))
	}
}

func TestSelectFreeAllBusy(t *testing.T) {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	for _, h := range c.Hosts {
		h.StartJob()
	}
	c.Advance(30 * time.Minute) // loads settle near 1 > 0.6
	if got := c.SelectFree(5, DefaultPolicy()); len(got) != 0 {
		t.Errorf("all-busy pool selected %d hosts", len(got))
	}
}

func TestSelectFreeFewerThanRequested(t *testing.T) {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	// Occupy all but three hosts with parallel subprocesses.
	for i, h := range c.Hosts {
		if i >= 3 {
			h.Assign(i)
		}
	}
	got := c.SelectFree(10, DefaultPolicy())
	if len(got) != 3 {
		t.Errorf("selected %d hosts, want the 3 free ones", len(got))
	}
}

func TestSelectFreeZero(t *testing.T) {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	if got := c.SelectFree(0, DefaultPolicy()); len(got) != 0 {
		t.Errorf("n=0 selected %d hosts", len(got))
	}
}

// TestSelectFreeModelTieBreak: within one availability group, 715s come
// before 720s before 710s, and names order ties within a model.
func TestSelectFreeModelTieBreak(t *testing.T) {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	got := c.SelectFree(25, DefaultPolicy())
	if len(got) != 25 {
		t.Fatalf("selected %d hosts, want 25", len(got))
	}
	lastPref, lastName := -1, ""
	for _, h := range got {
		p := modelPreference(h.Model)
		if p < lastPref {
			t.Fatalf("model preference went backwards at %s", h.Name)
		}
		if p == lastPref && h.Name < lastName {
			t.Fatalf("name order violated within model tier at %s", h.Name)
		}
		lastPref, lastName = p, h.Name
	}
}

// --- NeedsMigration edge cases ---------------------------------------------

func TestNeedsMigrationEmptyAndUnassigned(t *testing.T) {
	c := &Cluster{}
	if got := c.NeedsMigration(DefaultMigrationPolicy()); len(got) != 0 {
		t.Errorf("empty pool needs migration: %v", got)
	}
	c = NewPaperCluster()
	for _, h := range c.Hosts {
		h.StartJob()
		h.StartJob()
	}
	c.Advance(time.Hour)
	if got := c.NeedsMigration(DefaultMigrationPolicy()); len(got) != 0 {
		t.Errorf("loaded but unassigned hosts flagged: %v", got)
	}
}

func TestNeedsMigrationThresholdBoundary(t *testing.T) {
	c := NewPaperCluster()
	h := c.Hosts[0]
	h.Assign(0)
	h.StartJob() // blended load target: 2 (subprocess + user job)
	c.Advance(time.Hour)
	if got := c.NeedsMigration(MigrationPolicy{MaxLoad5: 2.5}); len(got) != 0 {
		t.Errorf("load below threshold flagged: %v", got)
	}
	got := c.NeedsMigration(DefaultMigrationPolicy())
	if len(got) != 1 || got[0] != h {
		t.Errorf("NeedsMigration = %v, want [%s]", got, h.Name)
	}
}

// --- Reservation API -------------------------------------------------------

func idlePaperCluster() *Cluster {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	return c
}

func TestReserveClaimsAndReleases(t *testing.T) {
	c := idlePaperCluster()
	res, err := c.Reserve("job-a", 20, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 20 {
		t.Fatalf("reserved %d hosts, want 20", len(res.Hosts))
	}
	for i, h := range res.Hosts {
		if h.Assigned() != i || h.Owner() != "job-a" {
			t.Errorf("host %s: assigned=%d owner=%q, want rank %d of job-a",
				h.Name, h.Assigned(), h.Owner(), i)
		}
	}
	if got := c.Capacity(DefaultPolicy()); got != 5 {
		t.Errorf("capacity after reserve = %d, want 5", got)
	}
	// A second job cannot over-claim the remainder.
	if _, err := c.Reserve("job-b", 6, DefaultPolicy(), nil); err == nil {
		t.Error("over-reservation accepted")
	}
	res.Release()
	if got := c.Capacity(DefaultPolicy()); got != 25 {
		t.Errorf("capacity after release = %d, want 25", got)
	}
}

// TestReserveReusesJustReleasedHosts: the farm discounts its own
// subprocesses' load, so a host handed back one instant ago is reservable
// again even though the blended uptime average has not decayed.
func TestReserveReusesJustReleasedHosts(t *testing.T) {
	c := idlePaperCluster()
	res, err := c.Reserve("job-a", 25, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Hour) // blended loads settle near 1 on every host
	res.Release()
	if got := c.SelectFree(25, DefaultPolicy()); len(got) != 0 {
		t.Errorf("section-4.1 selection sees %d free hosts before loads decay", len(got))
	}
	if got := c.Capacity(DefaultPolicy()); got != 25 {
		t.Errorf("farm capacity = %d, want 25 (own load discounted)", got)
	}
	if _, err := c.Reserve("job-b", 25, DefaultPolicy(), nil); err != nil {
		t.Errorf("re-reserve after release failed: %v", err)
	}
}

// TestReserveExcludesUserLoad: regular users' processes do make a host
// ineligible for reservation.
func TestReserveExcludesUserLoad(t *testing.T) {
	c := idlePaperCluster()
	c.Hosts[0].StartJob()
	c.Advance(30 * time.Minute)
	if got := c.Capacity(DefaultPolicy()); got != 24 {
		t.Errorf("capacity with one user-busy host = %d, want 24", got)
	}
	res, err := c.Reserve("job-a", 24, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hosts {
		if h == c.Hosts[0] {
			t.Error("user-busy host reserved")
		}
	}
}

// TestReservePrefersIdleAndFastModels: the section-4.1 scan preferences
// survive the randomized permutation.
func TestReservePrefersIdleAndFastModels(t *testing.T) {
	c := idlePaperCluster()
	c.Hosts[0].TouchUser() // one active-user 715
	rng := rand.New(rand.NewSource(7))
	res, err := c.Reserve("job-a", 25, DefaultPolicy(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// The active-user host must come last despite being a 715.
	if res.Hosts[24] != c.Hosts[0] {
		t.Errorf("active-user host at position %v, want last", res.Hosts[24].Name)
	}
	// Within the idle group: 15 remaining 715s, then 720s, then 710s.
	for i, h := range res.Hosts[:24] {
		want := HP715
		switch {
		case i >= 15 && i < 21:
			want = HP720
		case i >= 21:
			want = HP710
		}
		if h.Model != want {
			t.Errorf("position %d is %v, want %v", i, h.Model, want)
		}
	}
}

// TestReserveRandomizedScanVaries: different seeds produce different
// permutations within a tier, while one seed reproduces exactly.
func TestReserveRandomizedScanVaries(t *testing.T) {
	names := func(seed int64) []string {
		c := idlePaperCluster()
		res, err := c.Reserve("j", 16, DefaultPolicy(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(res.Hosts))
		for i, h := range res.Hosts {
			out[i] = h.Name
		}
		return out
	}
	a1, a2, b := names(1), names(1), names(2)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a1[i], a2[i])
		}
	}
	diff := false
	for i := range a1 {
		if a1[i] != b[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 1 and 2 produced the identical permutation of 16 hosts")
	}
}

func TestReserveRejectsBadCount(t *testing.T) {
	c := idlePaperCluster()
	if _, err := c.Reserve("j", 0, DefaultPolicy(), nil); err == nil {
		t.Error("n=0 reservation accepted")
	}
	if _, err := c.Reserve("j", 26, DefaultPolicy(), nil); err == nil {
		t.Error("reservation beyond pool size accepted")
	}
}

// TestReleaseRespectsNewOwner: hosts reassigned since are left alone.
func TestReleaseRespectsNewOwner(t *testing.T) {
	c := idlePaperCluster()
	res, err := c.Reserve("job-a", 2, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Hosts[0].Unassign()
	res.Hosts[0].AssignTo("job-b", 0)
	res.Release()
	if res.Hosts[0].Owner() != "job-b" {
		t.Error("release stole job-b's host")
	}
	if res.Hosts[1].Assigned() != -1 {
		t.Error("release left job-a's host assigned")
	}
}
