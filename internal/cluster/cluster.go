// Package cluster models the paper's pool of 25 non-dedicated HP9000/700
// workstations: sixteen 715/50 models, six 720s and three 710s on a shared
// network, each with UNIX-style 1/5/15-minute load averages, an interactive
// user who may be active or idle, and background jobs competing for CPU.
//
// The model substitutes for hardware this reproduction does not have; it
// exposes exactly the observables the paper's programs read — "uptime"
// load averages and user idle time — so the free-host selection policy of
// section 4.1 and the migration trigger of section 5.1 run unchanged
// against it. Time is explicit (Advance), so tests and the performance
// simulator control it deterministically.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Model identifies a workstation model. Speed factors are the measured
// relative speeds of the paper's section-7 table (LB 2D row): 715/50 = 1.0,
// 710 = 0.84, 720 = 0.86, where 1.0 corresponds to 39,132 fluid nodes
// integrated per second.
type Model int

const (
	HP715 Model = iota
	HP710
	HP720
)

func (m Model) String() string {
	switch m {
	case HP715:
		return "HP9000/715-50"
	case HP710:
		return "HP9000/710"
	case HP720:
		return "HP9000/720"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// SpeedFactor returns the model's relative speed for the given method and
// dimensionality, from the section-7 speed table.
func (m Model) SpeedFactor(method string) float64 {
	table := map[string]map[Model]float64{
		"lb2d": {HP715: 1.0, HP710: 0.84, HP720: 0.86},
		"lb3d": {HP715: 0.51, HP710: 0.40, HP720: 0.42},
		"fd2d": {HP715: 1.24, HP710: 1.08, HP720: 1.17},
		"fd3d": {HP715: 1.0, HP710: 0.85, HP720: 0.94},
	}
	if row, ok := table[method]; ok {
		return row[m]
	}
	// Unknown method: fall back to the LB 2D relative speeds.
	return map[Model]float64{HP715: 1.0, HP710: 0.84, HP720: 0.86}[m]
}

// BaseNodesPerSecond is the absolute speed corresponding to relative speed
// 1.0 in the section-7 table: 39,132 fluid nodes integrated per second.
const BaseNodesPerSecond = 39132.0

// Load-average time constants of the UNIX kernel.
var loadTaus = [3]time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute}

// Host is one virtual workstation.
type Host struct {
	Name  string
	Model Model

	// jobs is the number of full-time competing processes (not counting
	// a parallel subprocess, which runs at low priority and is invisible
	// to the load threshold decision in this model: "nice" keeps it out
	// of the regular users' way).
	jobs int

	// loads are the 1/5/15-minute exponentially averaged load values.
	loads [3]float64

	// userLoads are the same averages restricted to the regular users'
	// processes (jobs), excluding any parallel subprocess. A farm
	// scheduler reads these: it knows which subprocesses are its own, so
	// it can reuse a just-released host without waiting for the blended
	// uptime average to decay. The paper's single-job policies read only
	// the blended loads.
	userLoads [3]float64

	// idleFor is how long the interactive user has been idle.
	idleFor time.Duration

	// reclaimed marks the regular user as present via the event protocol
	// (Cluster.Reclaim / Cluster.UserGone), independent of the lagging
	// load averages.
	reclaimed bool

	// assigned is the rank of the parallel subprocess placed here, or -1.
	assigned int

	// owner identifies which job the subprocess belongs to ("" for the
	// single-job protocols of sections 4-5).
	owner string
}

// NewHost creates an idle host with no user activity.
func NewHost(name string, model Model) *Host {
	return &Host{Name: name, Model: model, idleFor: time.Hour, assigned: -1}
}

// Uptime returns the 1, 5 and 15-minute load averages, the observable the
// monitoring program reads via the UNIX command "uptime".
func (h *Host) Uptime() (l1, l5, l15 float64) {
	return h.loads[0], h.loads[1], h.loads[2]
}

// IdleFor returns how long the interactive user has been idle.
func (h *Host) IdleFor() time.Duration { return h.idleFor }

// UserIdle reports whether the user has been idle for more than 20 minutes,
// the section-4.1 threshold separating idle-user from active-user hosts.
func (h *Host) UserIdle() bool { return h.idleFor >= 20*time.Minute }

// Jobs returns the number of competing full-time processes.
func (h *Host) Jobs() int { return h.jobs }

// StartJob adds a competing full-time process (a regular user's
// computation).
func (h *Host) StartJob() { h.jobs++ }

// StopJob removes one competing process.
func (h *Host) StopJob() {
	if h.jobs > 0 {
		h.jobs--
	}
}

// TouchUser marks interactive activity, resetting the idle clock.
func (h *Host) TouchUser() { h.idleFor = 0 }

// Assigned returns the rank of the parallel subprocess on this host, or -1.
func (h *Host) Assigned() int { return h.assigned }

// Assign places a parallel subprocess on the host.
func (h *Host) Assign(rank int) { h.AssignTo("", rank) }

// AssignTo places a parallel subprocess owned by a named job on the host.
// The owner lets a multi-job scheduler tell its jobs' subprocesses apart.
func (h *Host) AssignTo(owner string, rank int) {
	h.assigned = rank
	h.owner = owner
}

// Owner returns the job the subprocess belongs to ("" when unassigned or
// assigned by the single-job protocol).
func (h *Host) Owner() string { return h.owner }

// Unassign removes the parallel subprocess.
func (h *Host) Unassign() {
	h.assigned = -1
	h.owner = ""
}

// UserLoad15 returns the fifteen-minute load attributable to regular
// users' processes alone, the observable a farm scheduler uses for
// capacity decisions (see the userLoads field).
func (h *Host) UserLoad15() float64 { return h.userLoads[2] }

// advance evolves the load averages toward the current job count over dt,
// and accumulates user idle time. A parallel subprocess contributes a full
// unit of load (it is a full-time process, merely niced), so the observable
// load includes it when present.
func (h *Host) advance(dt time.Duration) {
	target := float64(h.jobs)
	if h.assigned >= 0 {
		target++
	}
	user := float64(h.jobs)
	for i, tau := range loadTaus {
		a := 1 - math.Exp(-dt.Seconds()/tau.Seconds())
		h.loads[i] += (target - h.loads[i]) * a
		h.userLoads[i] += (user - h.userLoads[i]) * a
	}
	h.idleFor += dt
}

// Speed returns the host's effective fluid-node integration speed
// (nodes per second) for a numerical method, degraded by competing jobs:
// with k full-time competitors, the niced subprocess receives roughly
// 1/(k+1) of the CPU.
func (h *Host) Speed(method string) float64 {
	s := BaseNodesPerSecond * h.Model.SpeedFactor(method)
	return s / float64(h.jobs+1)
}

// Cluster is a pool of hosts.
type Cluster struct {
	Hosts []*Host
	now   time.Duration

	// events is the pending host event stream (see events.go).
	events []HostEvent
}

// NewPaperCluster builds the paper's pool: sixteen 715/50s, six 720s and
// three 710s.
func NewPaperCluster() *Cluster {
	c := &Cluster{}
	for i := 0; i < 16; i++ {
		c.Hosts = append(c.Hosts, NewHost(fmt.Sprintf("hp715-%02d", i), HP715))
	}
	for i := 0; i < 6; i++ {
		c.Hosts = append(c.Hosts, NewHost(fmt.Sprintf("hp720-%02d", i), HP720))
	}
	for i := 0; i < 3; i++ {
		c.Hosts = append(c.Hosts, NewHost(fmt.Sprintf("hp710-%02d", i), HP710))
	}
	return c
}

// Now returns the cluster's simulated time.
func (c *Cluster) Now() time.Duration { return c.now }

// Advance moves simulated time forward, evolving every host.
func (c *Cluster) Advance(dt time.Duration) {
	c.now += dt
	for _, h := range c.Hosts {
		h.advance(dt)
	}
}

// ByName returns the named host or nil.
func (c *Cluster) ByName(name string) *Host {
	for _, h := range c.Hosts {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// SelectionPolicy holds the free-host selection thresholds of section 4.1.
type SelectionPolicy struct {
	// MaxLoad15 is the fifteen-minute load threshold below which a host is
	// selectable ("the load must be less than 0.6 where 1.0 means a
	// full-time process is running").
	MaxLoad15 float64
	// MinIdle is the user idle time that moves a host into the preferred
	// idle-user group.
	MinIdle time.Duration
}

// DefaultPolicy returns the paper's thresholds.
func DefaultPolicy() SelectionPolicy {
	return SelectionPolicy{MaxLoad15: 0.6, MinIdle: 20 * time.Minute}
}

// SelectFree returns up to n free hosts following the section-4.1 strategy:
// idle-user workstations with low load first, then active-user
// workstations, preferring 715 models within each group (the paper: "our
// strategy is to choose 715 models first before choosing the slightly
// slower 710 and 720 models"). Hosts already running a parallel subprocess
// are never selected.
func (c *Cluster) SelectFree(n int, pol SelectionPolicy) []*Host {
	idleUser, activeUser := c.classify(pol, func(h *Host) float64 { return h.loads[2] })
	prefer := func(hosts []*Host) {
		sort.SliceStable(hosts, func(i, j int) bool {
			pi, pj := modelPreference(hosts[i].Model), modelPreference(hosts[j].Model)
			if pi != pj {
				return pi < pj
			}
			return hosts[i].Name < hosts[j].Name
		})
	}
	prefer(idleUser)
	prefer(activeUser)
	out := append(idleUser, activeUser...)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// classify splits the hosts with no parallel subprocess and a
// fifteen-minute load (as read by loadOf) below the threshold into the
// preferred idle-user group and the active-user group of section 4.1. It
// is shared by SelectFree (blended uptime load) and the farm reservation
// path (user-attributable load).
func (c *Cluster) classify(pol SelectionPolicy, loadOf func(*Host) float64) (idle, active []*Host) {
	for _, h := range c.Hosts {
		if h.assigned >= 0 {
			continue
		}
		if loadOf(h) >= pol.MaxLoad15 {
			continue
		}
		if h.idleFor >= pol.MinIdle {
			idle = append(idle, h)
		} else {
			active = append(active, h)
		}
	}
	return idle, active
}

// modelPreference orders 715 first, then 720, then 710 (the paper treats
// 710 as the slowest).
func modelPreference(m Model) int {
	switch m {
	case HP715:
		return 0
	case HP720:
		return 1
	default:
		return 2
	}
}

// MigrationPolicy holds the section-5.1 migration trigger.
type MigrationPolicy struct {
	// MaxLoad5 is the five-minute-average load beyond which the host is
	// considered busy with a second full-time process (typically 1.5).
	MaxLoad5 float64
}

// DefaultMigrationPolicy returns the paper's threshold of 1.5.
func DefaultMigrationPolicy() MigrationPolicy { return MigrationPolicy{MaxLoad5: 1.5} }

// NeedsMigration returns the hosts whose parallel subprocess should migrate:
// assigned hosts whose five-minute load exceeds the threshold (a second
// full-time process is running alongside the subprocess), or whose regular
// user announced their return through the Reclaim event protocol — the
// event path reacts immediately instead of waiting minutes for the
// five-minute average to climb.
func (c *Cluster) NeedsMigration(pol MigrationPolicy) []*Host {
	var out []*Host
	for _, h := range c.Hosts {
		if h.assigned < 0 {
			continue
		}
		_, l5, _ := h.Uptime()
		if l5 > pol.MaxLoad5 || h.reclaimed {
			out = append(out, h)
		}
	}
	return out
}
