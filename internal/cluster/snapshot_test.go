package cluster

import (
	"math/rand"
	"testing"
	"time"
)

// TestSnapshotRoundTrip drives a pool through load evolution, a
// reservation and an undrained reclaim event, snapshots it, and restores
// into a freshly built pool: every observable — clock, load averages,
// idle clocks, reclaim flags, assignments, pending events — must come
// back bit-identical, since the farm's crash recovery builds on it.
func TestSnapshotRoundTrip(t *testing.T) {
	a := NewPaperCluster()
	a.Advance(17 * time.Minute)
	a.Hosts[3].StartJob()
	a.Hosts[3].TouchUser()
	a.Advance(7 * time.Minute)
	if _, err := a.Reserve("jobX", 4, DefaultPolicy(), rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	a.Reclaim(a.Hosts[9])
	a.Advance(90 * time.Second)

	b := NewPaperCluster()
	if err := b.RestoreSnapshot(a.Snapshot()); err != nil {
		t.Fatal(err)
	}

	if b.Now() != a.Now() {
		t.Errorf("restored clock %v, want %v", b.Now(), a.Now())
	}
	for i, ha := range a.Hosts {
		hb := b.ByName(ha.Name)
		if hb == nil {
			t.Fatalf("host %s missing after restore", ha.Name)
		}
		if ha.loads != hb.loads || ha.userLoads != hb.userLoads {
			t.Errorf("host %d loads differ: %v/%v vs %v/%v", i, ha.loads, ha.userLoads, hb.loads, hb.userLoads)
		}
		if ha.jobs != hb.jobs || ha.idleFor != hb.idleFor || ha.reclaimed != hb.reclaimed {
			t.Errorf("host %d state differs", i)
		}
		if ha.assigned != hb.assigned || ha.owner != hb.owner {
			t.Errorf("host %d assignment %d/%q vs %d/%q", i, ha.assigned, ha.owner, hb.assigned, hb.owner)
		}
	}
	evA, evB := a.DrainEvents(), b.DrainEvents()
	if len(evA) != 1 || len(evB) != 1 {
		t.Fatalf("pending events: original %d, restored %d, want 1 each", len(evA), len(evB))
	}
	if evA[0].Kind != evB[0].Kind || evA[0].At != evB[0].At || evA[0].Host.Name != evB[0].Host.Name {
		t.Errorf("restored event %+v differs from original %+v", evB[0], evA[0])
	}

	// The two pools must now evolve identically.
	a.Advance(5 * time.Minute)
	b.Advance(5 * time.Minute)
	for i := range a.Hosts {
		if a.Hosts[i].loads != b.Hosts[i].loads {
			t.Errorf("host %d diverged after restore", i)
		}
	}
}

// TestRestoreSnapshotShapeMismatch: restoring into the wrong pool must
// fail loudly rather than produce a silently wrong farm.
func TestRestoreSnapshotShapeMismatch(t *testing.T) {
	snap := NewPaperCluster().Snapshot()

	small := &Cluster{Hosts: []*Host{NewHost("only", HP715)}}
	if err := small.RestoreSnapshot(snap); err == nil {
		t.Error("restore into a 1-host pool succeeded")
	}

	renamed := NewPaperCluster()
	renamed.Hosts[0].Name = "imposter"
	if err := renamed.RestoreSnapshot(snap); err == nil {
		t.Error("restore with a missing host name succeeded")
	}

	remodeled := NewPaperCluster()
	remodeled.Hosts[0].Model = HP710
	if err := remodeled.RestoreSnapshot(snap); err == nil {
		t.Error("restore with a model mismatch succeeded")
	}
}
