package cluster

import (
	"testing"
	"time"
)

// idleCluster returns the paper pool with every user idle past the
// section-4.1 threshold.
func idleCluster() *Cluster {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	return c
}

// TestReclaimEventStream: Reclaim records an event stamped with the
// virtual time, flips the host's user-present flag instantly (no waiting
// for load averages), and UserGone records the matching release.
func TestReclaimEventStream(t *testing.T) {
	c := idleCluster()
	h := c.Hosts[0]
	c.Advance(5 * time.Minute)
	at := c.Now()

	c.Reclaim(h)
	if !h.Reclaimed() {
		t.Error("host not marked reclaimed")
	}
	if h.IdleFor() != 0 {
		t.Errorf("idle clock = %v after user returned", h.IdleFor())
	}
	if h.Jobs() != 1 {
		t.Errorf("user jobs = %d, want 1", h.Jobs())
	}

	c.UserGone(h)
	if h.Reclaimed() {
		t.Error("host still reclaimed after UserGone")
	}

	evs := c.DrainEvents()
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2 (reclaim + release)", len(evs))
	}
	if evs[0].Kind != EventReclaim || evs[0].Host != h || evs[0].At != at {
		t.Errorf("reclaim event = %+v, want kind=reclaim host=%s at=%v", evs[0], h.Name, at)
	}
	if evs[1].Kind != EventRelease || evs[1].Host != h {
		t.Errorf("release event = %+v, want kind=release host=%s", evs[1], h.Name)
	}
	if left := c.DrainEvents(); len(left) != 0 {
		t.Errorf("stream not cleared: %d events remain", len(left))
	}
}

// TestUserGoneKeepsUserUntilLastProcess: two Reclaims stack two user
// processes; the release event fires only when the last one leaves.
func TestUserGoneKeepsUserUntilLastProcess(t *testing.T) {
	c := idleCluster()
	h := c.Hosts[3]
	c.Reclaim(h)
	c.Reclaim(h)
	c.DrainEvents()
	c.UserGone(h)
	if !h.Reclaimed() {
		t.Error("user considered gone with a process still running")
	}
	if evs := c.DrainEvents(); len(evs) != 0 {
		t.Errorf("premature release event: %+v", evs)
	}
	c.UserGone(h)
	if h.Reclaimed() {
		t.Error("user still present after last process left")
	}
}

// TestReclaimedHostNotReservable: the flag makes a host ineligible the
// instant the user returns, even though its user load has not climbed
// yet — and eligible again right after the user leaves.
func TestReclaimedHostNotReservable(t *testing.T) {
	c := idleCluster()
	h := c.Hosts[7]
	if got := c.Capacity(DefaultPolicy()); got != 25 {
		t.Fatalf("capacity = %d, want 25", got)
	}
	c.Reclaim(h)
	if h.UserLoad15() >= DefaultPolicy().MaxLoad15 {
		t.Fatalf("user load already over threshold; the flag test is vacuous")
	}
	if got := c.Capacity(DefaultPolicy()); got != 24 {
		t.Errorf("capacity = %d after reclaim, want 24", got)
	}
	c.UserGone(h)
	if got := c.Capacity(DefaultPolicy()); got != 25 {
		t.Errorf("capacity = %d after user left, want 25", got)
	}
}

// TestNeedsMigrationOnReclaim: a reserved host fires the migration
// trigger immediately on reclaim, without waiting for the five-minute
// load to cross the threshold.
func TestNeedsMigrationOnReclaim(t *testing.T) {
	c := idleCluster()
	res, err := c.Reserve("job-a", 3, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if busy := c.NeedsMigration(DefaultMigrationPolicy()); len(busy) != 0 {
		t.Fatalf("quiet pool needs migration: %v", busy)
	}
	c.Reclaim(res.Hosts[1])
	busy := c.NeedsMigration(DefaultMigrationPolicy())
	if len(busy) != 1 || busy[0] != res.Hosts[1] {
		t.Errorf("NeedsMigration = %v, want [%s]", busy, res.Hosts[1].Name)
	}
}

// TestMigrateSwapsReservation: Migrate rehosts the displaced rank onto a
// fresh machine, preserving the Hosts[rank] mapping and the owner, and
// frees the reclaimed host.
func TestMigrateSwapsReservation(t *testing.T) {
	c := idleCluster()
	res, err := c.Reserve("job-a", 3, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	old := res.Hosts[1]
	c.Reclaim(old)

	ranks, repl, err := c.Migrate(res, []*Host{old}, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 1 || ranks[0] != 1 || len(repl) != 1 {
		t.Fatalf("Migrate = ranks %v repl %v, want rank 1 and one replacement", ranks, repl)
	}
	if old.Assigned() != -1 {
		t.Error("reclaimed host still assigned after migration")
	}
	nh := res.Hosts[1]
	if nh != repl[0] || nh.Assigned() != 1 || nh.Owner() != "job-a" {
		t.Errorf("replacement %s: assigned %d owner %q, want rank 1 owner job-a",
			nh.Name, nh.Assigned(), nh.Owner())
	}
	if nh == old || nh.Reclaimed() {
		t.Error("migration picked a user-busy host")
	}
}

// TestMigrateFailsWithoutCapacity: when every other host is user-busy the
// reservation is left intact and an error tells the caller to suspend.
func TestMigrateFailsWithoutCapacity(t *testing.T) {
	c := idleCluster()
	res, err := c.Reserve("job-a", 2, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range c.Hosts {
		if h.Assigned() < 0 {
			c.Reclaim(h) // users everywhere else
		}
	}
	c.Reclaim(res.Hosts[0])
	if _, _, err := c.Migrate(res, []*Host{res.Hosts[0]}, DefaultPolicy(), nil); err == nil {
		t.Fatal("Migrate succeeded with zero reservable hosts")
	}
	if res.Hosts[0] == nil || res.Hosts[0].Assigned() != 0 {
		t.Error("failed Migrate mutated the reservation")
	}
}

// TestShrinkAndRelease: Shrink empties the displaced slots and Release
// tolerates them.
func TestShrinkAndRelease(t *testing.T) {
	c := idleCluster()
	res, err := c.Reserve("job-a", 3, DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dropped := res.Hosts[2]
	ranks := res.Shrink([]*Host{dropped})
	if len(ranks) != 1 || ranks[0] != 2 {
		t.Fatalf("Shrink = %v, want [2]", ranks)
	}
	if res.Hosts[2] != nil {
		t.Error("shrunk slot not emptied")
	}
	if dropped.Assigned() != -1 {
		t.Error("shrunk host still assigned")
	}
	res.Release()
	for _, h := range c.Hosts {
		if h.Assigned() >= 0 {
			t.Errorf("host %s still assigned after Release", h.Name)
		}
	}
}
