package cluster

import (
	"fmt"
	"time"
)

// HostState is the complete serializable state of one virtual
// workstation: everything Host.advance and the selection/migration
// policies read. A farm checkpoint embeds one per host so a restored
// coordinator sees the exact pool — load averages, idle clocks, reclaim
// flags and subprocess assignments — it crashed with.
type HostState struct {
	Name  string
	Model Model

	Jobs      int
	Loads     [3]float64
	UserLoads [3]float64
	IdleFor   time.Duration
	Reclaimed bool

	Assigned int
	Owner    string
}

// EventState is one pending host event, with the host identified by name
// so the record serializes. Owner is the reservation holder captured
// when the event was recorded, so a restored farm's event reporting
// matches the dead coordinator's.
type EventState struct {
	Kind  HostEventKind
	Host  string
	At    time.Duration
	Owner string
}

// Snapshot is the complete serializable state of a cluster: the virtual
// clock, every host, and the undrained host event stream.
type Snapshot struct {
	Now    time.Duration
	Hosts  []HostState
	Events []EventState
}

// Snapshot captures the cluster's current state. The copy is deep: later
// Advance calls or host mutations do not affect it.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{Now: c.now, Hosts: make([]HostState, len(c.Hosts))}
	for i, h := range c.Hosts {
		s.Hosts[i] = HostState{
			Name:      h.Name,
			Model:     h.Model,
			Jobs:      h.jobs,
			Loads:     h.loads,
			UserLoads: h.userLoads,
			IdleFor:   h.idleFor,
			Reclaimed: h.reclaimed,
			Assigned:  h.assigned,
			Owner:     h.owner,
		}
	}
	for _, ev := range c.events {
		s.Events = append(s.Events, EventState{Kind: ev.Kind, Host: ev.Host.Name, At: ev.At, Owner: ev.Owner})
	}
	return s
}

// RestoreSnapshot overwrites the cluster's state from a snapshot taken of
// an identically shaped pool: hosts are matched by name and must agree on
// model, and no host may be missing from either side. A shape mismatch
// leaves the cluster partially restored and returns a descriptive error —
// callers restore into a freshly built pool and discard it on failure.
func (c *Cluster) RestoreSnapshot(s Snapshot) error {
	if len(s.Hosts) != len(c.Hosts) {
		return fmt.Errorf("cluster: snapshot has %d hosts, pool has %d", len(s.Hosts), len(c.Hosts))
	}
	byName := make(map[string]*Host, len(c.Hosts))
	for _, h := range c.Hosts {
		byName[h.Name] = h
	}
	for _, hs := range s.Hosts {
		h := byName[hs.Name]
		if h == nil {
			return fmt.Errorf("cluster: snapshot host %q not in pool", hs.Name)
		}
		if h.Model != hs.Model {
			return fmt.Errorf("cluster: snapshot host %q is a %v, pool has a %v", hs.Name, hs.Model, h.Model)
		}
		h.jobs = hs.Jobs
		h.loads = hs.Loads
		h.userLoads = hs.UserLoads
		h.idleFor = hs.IdleFor
		h.reclaimed = hs.Reclaimed
		h.assigned = hs.Assigned
		h.owner = hs.Owner
	}
	c.now = s.Now
	c.events = nil
	for _, ev := range s.Events {
		h := byName[ev.Host]
		if h == nil {
			return fmt.Errorf("cluster: snapshot event for unknown host %q", ev.Host)
		}
		c.events = append(c.events, HostEvent{Kind: ev.Kind, Host: h, At: ev.At, Owner: ev.Owner})
	}
	return nil
}
