package cluster

import (
	"testing"
	"time"
)

func TestPaperClusterComposition(t *testing.T) {
	c := NewPaperCluster()
	if len(c.Hosts) != 25 {
		t.Fatalf("pool size %d, want 25", len(c.Hosts))
	}
	count := map[Model]int{}
	for _, h := range c.Hosts {
		count[h.Model]++
	}
	if count[HP715] != 16 || count[HP720] != 6 || count[HP710] != 3 {
		t.Errorf("composition %v, want 16/6/3", count)
	}
}

func TestSpeedTable(t *testing.T) {
	// The section-7 speed table, relative to the 715/50.
	cases := []struct {
		method string
		model  Model
		want   float64
	}{
		{"lb2d", HP715, 1.0}, {"lb2d", HP710, 0.84}, {"lb2d", HP720, 0.86},
		{"lb3d", HP715, 0.51}, {"lb3d", HP710, 0.40}, {"lb3d", HP720, 0.42},
		{"fd2d", HP715, 1.24}, {"fd2d", HP710, 1.08}, {"fd2d", HP720, 1.17},
		{"fd3d", HP715, 1.0}, {"fd3d", HP710, 0.85}, {"fd3d", HP720, 0.94},
	}
	for _, c := range cases {
		if got := c.model.SpeedFactor(c.method); got != c.want {
			t.Errorf("SpeedFactor(%s, %v) = %v, want %v", c.method, c.model, got, c.want)
		}
	}
}

func TestLoadAverageConverges(t *testing.T) {
	h := NewHost("x", HP715)
	h.StartJob()
	// After 5 minutes, the 1-minute average is nearly 1; the 15-minute
	// average lags behind.
	for i := 0; i < 300; i++ {
		h.advance(time.Second)
	}
	l1, l5, l15 := h.Uptime()
	if l1 < 0.95 {
		t.Errorf("l1 = %v, want near 1", l1)
	}
	if l5 < 0.5 || l5 > 0.75 {
		t.Errorf("l5 = %v, want ~0.63 after one tau", l5)
	}
	if l15 > l5 || l5 > l1 {
		t.Errorf("averages out of order: %v %v %v", l1, l5, l15)
	}
	h.StopJob()
	for i := 0; i < 3600; i++ {
		h.advance(time.Second)
	}
	l1, _, l15 = h.Uptime()
	if l1 > 0.01 || l15 > 0.05 {
		t.Errorf("load did not decay: l1=%v l15=%v", l1, l15)
	}
}

func TestAssignedSubprocessContributesLoad(t *testing.T) {
	h := NewHost("x", HP715)
	h.Assign(3)
	for i := 0; i < 1200; i++ {
		h.advance(time.Second)
	}
	_, l5, _ := h.Uptime()
	if l5 < 0.9 {
		t.Errorf("l5 = %v, want ~1 with a parallel subprocess running", l5)
	}
	// Adding one competing full-time job pushes the load toward 2, past
	// the migration threshold.
	h.StartJob()
	for i := 0; i < 1200; i++ {
		h.advance(time.Second)
	}
	_, l5, _ = h.Uptime()
	if l5 < 1.6 {
		t.Errorf("l5 = %v, want approaching 2", l5)
	}
}

func TestSelectFreePrefersIdle715(t *testing.T) {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute) // everyone idle > 20 min, zero load
	// Make two 715s active-user machines and one busy.
	c.Hosts[0].TouchUser()
	c.Hosts[1].TouchUser()
	c.Hosts[2].StartJob()
	c.Advance(20 * time.Second)
	got := c.SelectFree(20, DefaultPolicy())
	if len(got) != 20 {
		t.Fatalf("selected %d hosts, want 20", len(got))
	}
	// The first selections must be idle-user 715s, not the touched ones.
	for i := 0; i < 13; i++ {
		if got[i].Model != HP715 {
			t.Errorf("selection %d is %v, want HP715 first", i, got[i].Model)
		}
		if got[i].Name == "hp715-00" || got[i].Name == "hp715-01" {
			t.Errorf("active-user host %s selected before idle hosts", got[i].Name)
		}
	}
	// 720s are preferred over 710s within the idle group.
	idx720, idx710 := -1, -1
	for i, h := range got {
		if h.Model == HP720 && idx720 == -1 {
			idx720 = i
		}
		if h.Model == HP710 && idx710 == -1 {
			idx710 = i
		}
	}
	if idx720 == -1 || (idx710 != -1 && idx720 > idx710) {
		t.Errorf("720 selected at %d, 710 at %d; want 720 first", idx720, idx710)
	}
}

func TestSelectFreeSkipsLoadedAndAssigned(t *testing.T) {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	// A host with a long-running job exceeds the 0.6 load threshold.
	c.Hosts[5].StartJob()
	c.Advance(30 * time.Minute)
	c.Hosts[6].Assign(0)
	got := c.SelectFree(25, DefaultPolicy())
	for _, h := range got {
		if h.Name == c.Hosts[5].Name {
			t.Error("loaded host selected")
		}
		if h.Name == c.Hosts[6].Name {
			t.Error("already-assigned host selected")
		}
	}
	if len(got) != 23 {
		t.Errorf("selected %d, want 23", len(got))
	}
}

func TestNeedsMigration(t *testing.T) {
	c := NewPaperCluster()
	c.Advance(30 * time.Minute)
	h := c.Hosts[3]
	h.Assign(7)
	// Subprocess alone: load ~1, no migration.
	c.Advance(20 * time.Minute)
	if busy := c.NeedsMigration(DefaultMigrationPolicy()); len(busy) != 0 {
		t.Errorf("migration triggered with no competing job: %v", busy)
	}
	// A second full-time process arrives: load -> 2 > 1.5.
	h.StartJob()
	c.Advance(10 * time.Minute)
	busy := c.NeedsMigration(DefaultMigrationPolicy())
	if len(busy) != 1 || busy[0] != h {
		t.Errorf("NeedsMigration = %v, want [%s]", busy, h.Name)
	}
	// Unassigned hosts never appear, however loaded.
	h.Unassign()
	if busy := c.NeedsMigration(DefaultMigrationPolicy()); len(busy) != 0 {
		t.Errorf("unassigned host flagged: %v", busy)
	}
}

func TestSpeedDegradesWithCompetingJobs(t *testing.T) {
	h := NewHost("x", HP715)
	full := h.Speed("lb2d")
	if full != BaseNodesPerSecond {
		t.Errorf("idle 715 speed = %v, want %v", full, BaseNodesPerSecond)
	}
	h.StartJob()
	if got := h.Speed("lb2d"); got != full/2 {
		t.Errorf("speed with one competitor = %v, want half", got)
	}
}

func TestByName(t *testing.T) {
	c := NewPaperCluster()
	if c.ByName("hp720-03") == nil {
		t.Error("ByName failed to find existing host")
	}
	if c.ByName("nope") != nil {
		t.Error("ByName invented a host")
	}
}
