package cluster

import (
	"fmt"
	"math/rand"
	"sort"
)

// Reservation is a capacity claim on the pool: a set of hosts set aside
// for one job of a multi-job farm, where Hosts[i] serves the job's rank i.
// Reserving marks the hosts assigned, so neither SelectFree nor another
// Reserve can hand them out until Release.
type Reservation struct {
	Owner string
	Hosts []*Host
}

// ReservableWhenFree reports whether the host would satisfy the farm's
// reservation criteria once its parallel subprocess (if any) is
// released: the regular user is absent per the Reclaim event protocol
// and the user-attributable load sits below the selection threshold. It
// is the per-host predicate behind reservable(), and schedulers share it
// wherever they must predict a held host's future availability — the
// EASY shadow walk and the preemption capacity count — so those
// estimates can never diverge from what Reserve will actually grant.
func (h *Host) ReservableWhenFree(pol SelectionPolicy) bool {
	return !h.reclaimed && h.UserLoad15() < pol.MaxLoad15
}

// reservable returns the hosts a farm scheduler may claim, split into the
// preferred idle-user group and the active-user group of section 4.1.
//
// It differs from SelectFree in two deliberate ways. First, the load
// threshold applies to the user-attributable load (UserLoad15) rather
// than the blended uptime average: the farm knows which subprocesses are
// its own, so a host that just released one is immediately reusable even
// though its visible load average has not decayed yet; only regular
// users' activity makes a host ineligible. Second, a host whose user is
// present per the Reclaim event protocol is excluded even before the
// user's load shows up in the averages — otherwise the farm would claim
// back the very machine it just vacated.
func (c *Cluster) reservable(pol SelectionPolicy) (idle, active []*Host) {
	for _, h := range c.Hosts {
		if h.assigned >= 0 || !h.ReservableWhenFree(pol) {
			continue
		}
		if h.idleFor >= pol.MinIdle {
			idle = append(idle, h)
		} else {
			active = append(active, h)
		}
	}
	return idle, active
}

// Capacity returns how many hosts a Reserve call could claim right now.
func (c *Cluster) Capacity(pol SelectionPolicy) int {
	idle, active := c.reservable(pol)
	return len(idle) + len(active)
}

// Reserve claims n hosts for the named owner, assigning rank i to the
// i-th chosen host. The scan keeps the section-4.1 preferences — idle-user
// hosts before active-user hosts, faster models first — but within each
// preference tier the order is a fresh random permutation drawn from rng,
// in the spirit of Lee & Wright's random-permutation fix for cyclic scan
// orders: no fixed host ordering can produce adversarial worst-case
// packing across scheduling rounds. A nil rng keeps the deterministic
// name order of SelectFree.
func (c *Cluster) Reserve(owner string, n int, pol SelectionPolicy, rng *rand.Rand) (*Reservation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: reserve %d hosts", n)
	}
	idle, active := c.reservable(pol)
	if len(idle)+len(active) < n {
		return nil, fmt.Errorf("cluster: reserve %d hosts for %q: only %d reservable",
			n, owner, len(idle)+len(active))
	}
	orderTiers(idle, active, rng)
	all := append(idle, active...)
	r := &Reservation{Owner: owner, Hosts: all[:n:n]}
	for i, h := range r.Hosts {
		h.AssignTo(owner, i)
	}
	return r, nil
}

// orderTiers arranges each preference group for a reservation scan: a
// fresh random permutation from rng (or deterministic name order when rng
// is nil), then a stable sort by model preference so the permutation
// survives within each model tier.
func orderTiers(idle, active []*Host, rng *rand.Rand) {
	order := func(hosts []*Host) {
		if rng != nil {
			rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
		} else {
			sort.SliceStable(hosts, func(i, j int) bool { return hosts[i].Name < hosts[j].Name })
		}
		sort.SliceStable(hosts, func(i, j int) bool {
			return modelPreference(hosts[i].Model) < modelPreference(hosts[j].Model)
		})
	}
	order(idle)
	order(active)
}

// Release frees every host still held by the reservation. Hosts whose
// assignment changed hands since (another owner, or the single-job
// protocol) are left alone, so Release is safe to call after a job's own
// cleanup already unassigned them.
func (r *Reservation) Release() {
	for _, h := range r.Hosts {
		if h != nil && h.assigned >= 0 && h.owner == r.Owner {
			h.Unassign()
		}
	}
}

// Shrink releases the reservation's claim on the given hosts — reclaimed
// by their regular users — and returns the displaced rank indices. The
// slots are left empty (nil) until Cluster.Migrate rehosts them; a
// reservation with empty slots cannot serve its job, so Shrink is only a
// building block of the migrate-or-suspend paths.
func (r *Reservation) Shrink(drop []*Host) []int {
	var ranks []int
	for _, d := range drop {
		for rank, h := range r.Hosts {
			if h == nil || h != d {
				continue
			}
			if h.assigned >= 0 && h.owner == r.Owner {
				h.Unassign()
			}
			r.Hosts[rank] = nil
			ranks = append(ranks, rank)
		}
	}
	sort.Ints(ranks)
	return ranks
}

// Migrate moves the reservation's claim off the given busy hosts onto
// freshly scanned replacements, preserving every displaced rank's slot:
// afterwards Hosts[rank] is the new home of rank. The replacement scan
// follows the same preference tiers and random permutation as Reserve.
// When fewer replacements are reservable than hosts were reclaimed the
// reservation is left untouched and an error is returned — the caller
// falls back to suspending the whole job (it must not squat beside the
// returned users).
func (c *Cluster) Migrate(r *Reservation, busy []*Host, pol SelectionPolicy, rng *rand.Rand) (ranks []int, repl []*Host, err error) {
	if len(busy) == 0 {
		return nil, nil, nil
	}
	idle, active := c.reservable(pol)
	if len(idle)+len(active) < len(busy) {
		return nil, nil, fmt.Errorf("cluster: migrate %d ranks of %q: only %d reservable hosts",
			len(busy), r.Owner, len(idle)+len(active))
	}
	orderTiers(idle, active, rng)
	all := append(idle, active...)
	ranks = r.Shrink(busy)
	repl = all[:len(ranks):len(ranks)]
	for i, rank := range ranks {
		repl[i].AssignTo(r.Owner, rank)
		r.Hosts[rank] = repl[i]
	}
	return ranks, repl, nil
}
