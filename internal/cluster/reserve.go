package cluster

import (
	"fmt"
	"math/rand"
	"sort"
)

// Reservation is a capacity claim on the pool: a set of hosts set aside
// for one job of a multi-job farm, where Hosts[i] serves the job's rank i.
// Reserving marks the hosts assigned, so neither SelectFree nor another
// Reserve can hand them out until Release.
type Reservation struct {
	Owner string
	Hosts []*Host
}

// reservable returns the hosts a farm scheduler may claim, split into the
// preferred idle-user group and the active-user group of section 4.1.
//
// It differs from SelectFree in one deliberate way: the load threshold
// applies to the user-attributable load (UserLoad15) rather than the
// blended uptime average. The farm knows which subprocesses are its own,
// so a host that just released one is immediately reusable even though
// its visible load average has not decayed yet; only regular users'
// activity makes a host ineligible.
func (c *Cluster) reservable(pol SelectionPolicy) (idle, active []*Host) {
	return c.classify(pol, (*Host).UserLoad15)
}

// Capacity returns how many hosts a Reserve call could claim right now.
func (c *Cluster) Capacity(pol SelectionPolicy) int {
	idle, active := c.reservable(pol)
	return len(idle) + len(active)
}

// Reserve claims n hosts for the named owner, assigning rank i to the
// i-th chosen host. The scan keeps the section-4.1 preferences — idle-user
// hosts before active-user hosts, faster models first — but within each
// preference tier the order is a fresh random permutation drawn from rng,
// in the spirit of Lee & Wright's random-permutation fix for cyclic scan
// orders: no fixed host ordering can produce adversarial worst-case
// packing across scheduling rounds. A nil rng keeps the deterministic
// name order of SelectFree.
func (c *Cluster) Reserve(owner string, n int, pol SelectionPolicy, rng *rand.Rand) (*Reservation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: reserve %d hosts", n)
	}
	idle, active := c.reservable(pol)
	if len(idle)+len(active) < n {
		return nil, fmt.Errorf("cluster: reserve %d hosts for %q: only %d reservable",
			n, owner, len(idle)+len(active))
	}
	order := func(hosts []*Host) {
		if rng != nil {
			rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
		} else {
			sort.SliceStable(hosts, func(i, j int) bool { return hosts[i].Name < hosts[j].Name })
		}
		// Stable, so the permutation survives within each model tier.
		sort.SliceStable(hosts, func(i, j int) bool {
			return modelPreference(hosts[i].Model) < modelPreference(hosts[j].Model)
		})
	}
	order(idle)
	order(active)
	all := append(idle, active...)
	r := &Reservation{Owner: owner, Hosts: all[:n:n]}
	for i, h := range r.Hosts {
		h.AssignTo(owner, i)
	}
	return r, nil
}

// Release frees every host still held by the reservation. Hosts whose
// assignment changed hands since (another owner, or the single-job
// protocol) are left alone, so Release is safe to call after a job's own
// cleanup already unassigned them.
func (r *Reservation) Release() {
	for _, h := range r.Hosts {
		if h.assigned >= 0 && h.owner == r.Owner {
			h.Unassign()
		}
	}
}
