package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fluid"
)

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	f := []float64{0, 0.5, 1, 0.25, 0.75, 1}
	if err := WritePGM(&buf, 3, 2, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad header: %q", out[:12])
	}
	pix := out[len("P5\n3 2\n255\n"):]
	if len(pix) != 6 {
		t.Fatalf("pixel count %d", len(pix))
	}
	// First row written is y=1 (top): values 0.25, 0.75, 1.
	if pix[0] != byte(63) || pix[2] != 255 {
		t.Errorf("top row pixels: %v", pix[:3])
	}
	// Clamping out-of-range values.
	buf.Reset()
	if err := WritePGM(&buf, 1, 1, []float64{99}, 0, 1); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes()[len(buf.Bytes())-1]; b != 255 {
		t.Errorf("clamped pixel %d, want 255", b)
	}
}

func TestWritePGMErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, 2, 2, []float64{1}, 0, 1); err == nil {
		t.Error("short field accepted")
	}
	if err := WritePGM(&buf, 1, 1, []float64{0}, 1, 1); err == nil {
		t.Error("empty range accepted")
	}
}

func TestSymmetricRange(t *testing.T) {
	lo, hi := SymmetricRange([]float64{-0.2, 0.5, -0.7})
	if lo != -0.7 || hi != 0.7 {
		t.Errorf("range (%v, %v), want (-0.7, 0.7)", lo, hi)
	}
	lo, hi = SymmetricRange([]float64{0, 0})
	if lo != -1 || hi != 1 {
		t.Errorf("zero-field range (%v, %v), want (-1, 1)", lo, hi)
	}
}

func TestASCIIVorticity(t *testing.T) {
	nx, ny := 8, 4
	m := fluid.NewMask2D(nx, ny)
	m.Border(fluid.Wall)
	m.Set(0, 2, fluid.Inlet)
	m.Set(nx-1, 2, fluid.Outlet)
	vort := make([]float64, nx*ny)
	vort[2*nx+4] = 1.0  // strong CCW cell
	vort[1*nx+4] = -1.0 // strong CW cell
	out := ASCIIVorticity(nx, ny, vort, m, nx)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != ny {
		t.Fatalf("%d lines, want %d", len(lines), ny)
	}
	if !strings.Contains(out, "#") {
		t.Error("walls not rendered")
	}
	if !strings.Contains(out, ">") || !strings.Contains(out, "<") {
		t.Error("inlet/outlet not rendered")
	}
	// Row y=2 is the second line from the top (ny-1-2 = 1).
	if lines[1][4] != '@' {
		t.Errorf("strong vorticity cell rendered as %q", lines[1][4])
	}
	if lines[2][4] != 'o' {
		t.Errorf("negative vorticity cell rendered as %q", lines[2][4])
	}
}

func TestSeriesTable(t *testing.T) {
	out := SeriesTable("sqrt(N)", []string{"(2x2)", "(5x4)"},
		[]float64{100, 200},
		[][]float64{{0.9, 0.95}, {0.6, 0.8}})
	if !strings.Contains(out, "sqrt(N)") || !strings.Contains(out, "(5x4)") {
		t.Error("missing headers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[1], "0.9000") || !strings.Contains(lines[2], "0.8000") {
		t.Errorf("values missing: %q", out)
	}
}
