// Package viz renders gathered simulation fields: binary PGM images (the
// equi-vorticity plots of figures 1-2) and ASCII contour maps for
// terminals. Only the standard library is used.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/fluid"
)

// WritePGM writes a row-major field as an 8-bit binary PGM image, mapping
// [lo, hi] linearly to [0, 255]. The image's first row is the field's top
// (y = ny-1), matching the paper's figure orientation.
func WritePGM(w io.Writer, nx, ny int, f []float64, lo, hi float64) error {
	if len(f) != nx*ny {
		return fmt.Errorf("viz: field has %d values, want %d", len(f), nx*ny)
	}
	if hi <= lo {
		return fmt.Errorf("viz: empty value range [%g, %g]", lo, hi)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", nx, ny)
	for y := ny - 1; y >= 0; y-- {
		for x := 0; x < nx; x++ {
			v := (f[y*nx+x] - lo) / (hi - lo)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			if err := bw.WriteByte(byte(v * 255)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SymmetricRange returns (-a, a) where a is the maximum absolute value of
// the field, suitable for signed quantities like vorticity; zero fields get
// (-1, 1) so rendering never divides by zero.
func SymmetricRange(f []float64) (lo, hi float64) {
	a := 0.0
	for _, v := range f {
		if x := math.Abs(v); x > a {
			a = x
		}
	}
	if a == 0 {
		a = 1
	}
	return -a, a
}

// vortGlyphs maps signed magnitude buckets to characters: capital letters
// for counter-clockwise vorticity, lower-case for clockwise.
var vortGlyphs = []byte(" .:-=+*#%@")

// ASCIIVorticity renders a vorticity field with the wall mask overlaid
// (walls are '#', inlets '>', outlets '<'), downsampled to at most width
// columns. Positive and negative vorticity share the magnitude ramp;
// negative cells are marked by 'o' at high magnitude.
func ASCIIVorticity(nx, ny int, vort []float64, mask *fluid.Mask2D, width int) string {
	if width <= 0 || width > nx {
		width = nx
	}
	step := nx / width
	if step < 1 {
		step = 1
	}
	_, hi := SymmetricRange(vort)
	var out []byte
	for y := ny - 1; y >= 0; y -= step {
		for x := 0; x < nx; x += step {
			switch mask.At(x, y) {
			case fluid.Wall:
				out = append(out, '#')
				continue
			case fluid.Inlet:
				out = append(out, '>')
				continue
			case fluid.Outlet:
				out = append(out, '<')
				continue
			}
			v := vort[y*nx+x] / hi // in [-1, 1]
			mag := math.Abs(v)
			idx := int(mag * float64(len(vortGlyphs)-1))
			if idx >= len(vortGlyphs) {
				idx = len(vortGlyphs) - 1
			}
			g := vortGlyphs[idx]
			if v < -0.3 && g != ' ' {
				g = 'o'
			}
			out = append(out, g)
		}
		out = append(out, '\n')
	}
	return string(out)
}

// SeriesTable formats (x, y) series as an aligned text table, the output
// format of cmd/experiments: one row per x value, one column per series.
func SeriesTable(xName string, labels []string, xs []float64, ys [][]float64) string {
	var out []byte
	out = append(out, fmt.Sprintf("%-12s", xName)...)
	for _, l := range labels {
		out = append(out, fmt.Sprintf(" %14s", l)...)
	}
	out = append(out, '\n')
	for i, x := range xs {
		out = append(out, fmt.Sprintf("%-12.4g", x)...)
		for s := range labels {
			out = append(out, fmt.Sprintf(" %14.4f", ys[s][i])...)
		}
		out = append(out, '\n')
	}
	return string(out)
}
