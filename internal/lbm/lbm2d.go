// Package lbm implements the lattice Boltzmann method of section 6 (and
// Skordos, Phys. Rev. E 48:4823): a relaxation algorithm that represents
// the fluid by population variables F_i alongside the traditional fluid
// variables rho, Vx, Vy. Each cycle the populations are relaxed toward a
// local equilibrium computed from the (filtered) fluid variables, shifted
// to the nearest neighbours of each node, and the fluid variables are
// recomputed from the shifted populations. The per-cycle sequence is the
// paper's:
//
//	Relax F_i                     (inner)
//	Shift F_i                     (inner)
//	Communicate: send/recv F_i    (boundary)
//	Calculate rho, Vx, Vy from F_i (inner)
//	Filter rho, Vx, Vy            (inner)
//
// One message per neighbour per step; in 2D only the three D2Q9
// populations crossing each side are communicated (3 variables per
// boundary node), in 3D the five D3Q15 populations crossing each face
// (5 variables per node) — the counts of section 6 that drive the
// method's communication behaviour in the performance figures.
//
// The lattice is D2Q9 in two dimensions (D3Q15 in three), with BGK
// relaxation; solid walls use full-way bounce-back, which places the
// physical wall half-way between the wall node and the adjacent fluid node.
//
// Every inner phase is per-cell independent, so a rank's subregion is
// additionally cut into row slabs updated concurrently by the shared
// worker pool when Workers > 1; writes are disjoint by row and no node's
// arithmetic changes, so the fields stay bit-identical to the serial
// sweep at any worker count (see internal/pool).
package lbm

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/filter"
	"repro/internal/fluid"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/pool"
)

// Q2 is the number of D2Q9 populations.
const Q2 = 9

// D2Q9 lattice vectors. Index 0 is the rest population; 1-4 are the axis
// directions; 5-8 the diagonals.
var (
	cx2 = [Q2]int{0, 1, 0, -1, 0, 1, -1, -1, 1}
	cy2 = [Q2]int{0, 0, 1, 0, -1, 1, 1, -1, -1}
	w2  = [Q2]float64{4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36}
	opp2 = [Q2]int{0, 3, 4, 1, 2, 7, 8, 5, 6}
)

// outgoing2 lists, for each 2D direction, the population indices whose
// lattice vector points into that direction's neighbour: the populations
// that must be communicated across that side or corner.
var outgoing2 = map[decomp.Dir][]int{
	decomp.East:      {1, 5, 8},
	decomp.West:      {3, 6, 7},
	decomp.North:     {2, 5, 6},
	decomp.South:     {4, 7, 8},
	decomp.NorthEast: {5},
	decomp.NorthWest: {6},
	decomp.SouthWest: {7},
	decomp.SouthEast: {8},
}

// NuFromTau returns the kinematic viscosity of the BGK lattice with
// relaxation time tau: nu = (tau - 1/2) / 3 (dx = dt = 1, c_s^2 = 1/3).
func NuFromTau(tau float64) float64 { return (tau - 0.5) / 3 }

// TauFromNu is the inverse of NuFromTau.
func TauFromNu(nu float64) float64 { return 3*nu + 0.5 }

// Solver2D integrates one subregion with the D2Q9 lattice Boltzmann method.
type Solver2D struct {
	Par fluid.Params
	Tau float64 // BGK relaxation time, from Par.Nu

	Mask func(x, y int) fluid.CellType

	// Workers is the intra-rank slab count; <= 1 runs the serial sweeps.
	// Results are bit-identical at every value.
	Workers int

	F  [Q2]*grid.Field2D // populations, ghost depth 1
	nF [Q2]*grid.Field2D // post-shift buffers

	Rho, Vx, Vy *grid.Field2D // fluid variables (ghost layers unused)

	scratch []float64

	// Static per-node structure, cached at construction so the hot loops
	// never call the mask closure: the interior cell types and, per row,
	// whether every cell is plain Interior (the branch-free fast path).
	cells   []fluid.CellType
	rowOpen []bool
	plan    *filter.Plan2D

	// Parallel-kernel machinery: the pool runner, the prebuilt range
	// closures (built once so the steady-state step allocates nothing),
	// the population being shifted, and the reused exchange buffer.
	par                       pool.Runner
	relaxFn, shiftFn, macroFn func(lo, hi int)
	runFn                     filter.RunFunc
	shiftSrc, shiftDst        *grid.Field2D
	shiftDx, shiftDy          int
	xbuf                      []float64

	// Filter field list built once at construction so the steady-state
	// step allocates nothing; Swap exchanges field contents, never these
	// pointers, so it stays valid across steps.
	filterFields []*grid.Field2D
}

// NewSolver2D allocates a D2Q9 solver for an nx-by-ny subregion,
// initialized to equilibrium at rho = Rho0, V = 0. The LB sound speed is
// fixed at c_s = 1/sqrt(3); Par.Cs is ignored by this method.
func NewSolver2D(nx, ny int, par fluid.Params, mask func(x, y int) fluid.CellType) (*Solver2D, error) {
	if err := par.Check(); err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, fmt.Errorf("lbm: nil mask")
	}
	s := &Solver2D{
		Par:     par,
		Tau:     TauFromNu(par.Nu),
		Mask:    mask,
		Rho:     grid.NewField2D(nx, ny, 1),
		Vx:      grid.NewField2D(nx, ny, 1),
		Vy:      grid.NewField2D(nx, ny, 1),
		scratch: make([]float64, nx*ny),
		cells:   make([]fluid.CellType, nx*ny),
		rowOpen: make([]bool, ny),
		plan:    filter.NewPlan2D(nx, ny, mask),
	}
	s.filterFields = []*grid.Field2D{s.Rho, s.Vx, s.Vy}
	for i := 0; i < Q2; i++ {
		s.F[i] = grid.NewField2D(nx, ny, 1)
		s.nF[i] = grid.NewField2D(nx, ny, 1)
	}
	for y := 0; y < ny; y++ {
		open := true
		for x := 0; x < nx; x++ {
			c := mask(x, y)
			s.cells[y*nx+x] = c
			if c != fluid.Interior {
				open = false
			}
		}
		s.rowOpen[y] = open
	}
	s.relaxFn = s.relaxRows
	s.shiftFn = s.shiftRows
	s.macroFn = s.macroRows
	s.runFn = s.run
	s.Rho.Fill(par.Rho0)
	s.InitEquilibrium()
	return s, nil
}

// SetWorkers sets the intra-rank slab count (the core setup threads the
// per-rank budget through here).
func (s *Solver2D) SetWorkers(n int) { s.Workers = n }

// run executes fn over [0, n) on the shared pool with the configured
// worker count.
func (s *Solver2D) run(n int, fn func(lo, hi int)) { s.par.Run(s.Workers, n, fn) }

// InitEquilibrium sets every interior fluid population to the equilibrium
// of the current Rho, Vx, Vy fields, and zeroes ghost and wall populations.
// Zero ghosts and empty walls make closed domain boundaries exactly
// mass-neutral: wall nodes carry only populations in bounce-back transit,
// receive nothing from beyond the domain, and reflect nothing spurious, so
// total population mass is conserved to machine precision from step zero.
// Ghosts on periodic or seam sides are overwritten by the exchange before
// they are ever read.
func (s *Solver2D) InitEquilibrium() {
	for y := -1; y <= s.Rho.NY; y++ {
		for x := -1; x <= s.Rho.NX; x++ {
			ghost := x < 0 || x >= s.Rho.NX || y < 0 || y >= s.Rho.NY
			if ghost || s.Mask(x, y) == fluid.Wall {
				for i := 0; i < Q2; i++ {
					s.F[i].Set(x, y, 0)
				}
				continue
			}
			for i := 0; i < Q2; i++ {
				s.F[i].Set(x, y, feq2(i, s.Rho.At(x, y), s.Vx.At(x, y), s.Vy.At(x, y)))
			}
		}
	}
}

// feq2 is the D2Q9 BGK equilibrium distribution.
func feq2(i int, rho, vx, vy float64) float64 {
	return feq2v(i, rho, vx, vy, vx*vx+vy*vy)
}

// feq2v is feq2 with the speed-squared hoisted: the relax kernel computes
// v2 once per node instead of once per population. The expression is
// identical, so the hoisting is bit-exact.
func feq2v(i int, rho, vx, vy, v2 float64) float64 {
	cu := float64(cx2[i])*vx + float64(cy2[i])*vy
	return w2[i] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*v2)
}

// Phases returns the number of compute phases per step: relax+shift (with
// exchange after), then macroscopics+filter.
func (s *Solver2D) Phases() int { return 2 }

// Exchanges reports whether a halo exchange follows the phase; only the
// relax+shift phase communicates (one message per neighbour per step).
func (s *Solver2D) Exchanges(phase int) bool { return phase == 0 }

// Compute runs one compute phase.
func (s *Solver2D) Compute(phase int) {
	switch phase {
	case 0:
		s.relax()
		s.shift()
	case 1:
		s.macroscopics()
		s.applyFilter()
	default:
		panic(fmt.Sprintf("lbm: invalid phase %d", phase))
	}
}

// relax applies BGK relaxation toward the equilibrium of the (filtered)
// fluid variables at every interior node, bounce-back at walls, and
// equilibrium forcing at inlets and outlets. A body force enters as the
// standard first-order population shift 3 w_i rho (c_i . g).
func (s *Solver2D) relax() { s.run(s.Rho.NY, s.relaxFn) }

// relaxRows relaxes rows [y0, y1). All-Interior rows skip the cell-type
// dispatch entirely; mixed rows branch on the cached cell types. Each
// node writes only its own populations, so slabs are write-disjoint.
func (s *Solver2D) relaxRows(y0, y1 int) {
	p := s.Par
	invTau := 1 / s.Tau
	forced := p.ForceX != 0 || p.ForceY != 0
	nx := s.Rho.NX
	for y := y0; y < y1; y++ {
		open := s.rowOpen[y]
		for x := 0; x < nx; x++ {
			if !open {
				switch s.cells[y*nx+x] {
				case fluid.Wall:
					// Full-way bounce-back: reflect the populations that
					// streamed into the wall during the previous step.
					for i := 1; i < Q2; i++ {
						if j := opp2[i]; j > i {
							a, b := s.F[i].At(x, y), s.F[j].At(x, y)
							s.F[i].Set(x, y, b)
							s.F[j].Set(x, y, a)
						}
					}
					continue
				case fluid.Inlet:
					for i := 0; i < Q2; i++ {
						s.F[i].Set(x, y, feq2(i, p.InletRho, p.InletVx, p.InletVy))
					}
					continue
				case fluid.Outlet:
					// Prescribed density, local velocity: anchors the mean
					// pressure while letting flow leave.
					vx, vy := s.Vx.At(x, y), s.Vy.At(x, y)
					for i := 0; i < Q2; i++ {
						s.F[i].Set(x, y, feq2(i, p.OutletRho, vx, vy))
					}
					continue
				}
			}
			rho, vx, vy := s.Rho.At(x, y), s.Vx.At(x, y), s.Vy.At(x, y)
			v2 := vx*vx + vy*vy
			for i := 0; i < Q2; i++ {
				f := s.F[i].At(x, y)
				s.F[i].Set(x, y, f+(feq2v(i, rho, vx, vy, v2)-f)*invTau)
			}
			if forced {
				for i := 1; i < Q2; i++ {
					cg := float64(cx2[i])*p.ForceX + float64(cy2[i])*p.ForceY
					s.F[i].Add(x, y, 3*w2[i]*rho*cg)
				}
			}
		}
	}
}

// shift streams the relaxed populations to the nearest neighbours: every
// interior target gathers from its upwind neighbour, and ghost targets
// collect the outflow that the exchange will deliver to neighbouring
// subregions. Interior edge values computed from stale ghosts are
// overwritten by the incoming exchange data.
//
// The row sweep (interior rows plus the ghost-column targets at the same
// y) runs on the pool; the ghost-row strip and corner are finished
// serially — they are O(nx) of the O(nx*ny) population.
func (s *Solver2D) shift() {
	nx, ny := s.Rho.NX, s.Rho.NY
	for i := 0; i < Q2; i++ {
		dx, dy := cx2[i], cy2[i]
		src, dst := s.F[i], s.nF[i]
		s.shiftSrc, s.shiftDst, s.shiftDx, s.shiftDy = src, dst, dx, dy
		s.run(ny, s.shiftFn)
		if dx != 0 || dy != 0 {
			gx := -1
			if dx > 0 {
				gx = nx
			}
			gy := -1
			if dy > 0 {
				gy = ny
			}
			if dy != 0 {
				for x := 0; x < nx; x++ {
					dst.Set(x, gy, src.At(x-dx, gy-dy))
				}
				if dx != 0 {
					dst.Set(gx, gy, src.At(gx-dx, gy-dy))
				}
			}
		}
		src.Swap(dst)
	}
}

// shiftRows streams the current population into dst rows [y0, y1),
// including the ghost-column target of each row when the population has
// an x component. Writes land only in rows [y0, y1) of dst.
func (s *Solver2D) shiftRows(y0, y1 int) {
	nx := s.Rho.NX
	src, dst, dx, dy := s.shiftSrc, s.shiftDst, s.shiftDx, s.shiftDy
	for y := y0; y < y1; y++ {
		for x := 0; x < nx; x++ {
			dst.Set(x, y, src.At(x-dx, y-dy))
		}
		if dx != 0 {
			gx := -1
			if dx > 0 {
				gx = nx
			}
			dst.Set(gx, y, src.At(gx-dx, y-dy))
		}
	}
}

// macroscopics recomputes rho, Vx, Vy from the populations at interior
// nodes. Wall nodes keep rho = Rho0, V = 0: their populations are in
// bounce-back transit and carry no fluid state.
func (s *Solver2D) macroscopics() { s.run(s.Rho.NY, s.macroFn) }

// macroRows recomputes the fluid variables on rows [y0, y1).
func (s *Solver2D) macroRows(y0, y1 int) {
	nx := s.Rho.NX
	for y := y0; y < y1; y++ {
		open := s.rowOpen[y]
		for x := 0; x < nx; x++ {
			if !open && s.cells[y*nx+x] == fluid.Wall {
				s.Rho.Set(x, y, s.Par.Rho0)
				s.Vx.Set(x, y, 0)
				s.Vy.Set(x, y, 0)
				continue
			}
			rho, mx, my := 0.0, 0.0, 0.0
			for i := 0; i < Q2; i++ {
				f := s.F[i].At(x, y)
				rho += f
				mx += f * float64(cx2[i])
				my += f * float64(cy2[i])
			}
			s.Rho.Set(x, y, rho)
			s.Vx.Set(x, y, mx/rho)
			s.Vy.Set(x, y, my/rho)
		}
	}
}

func (s *Solver2D) applyFilter() {
	s.plan.Apply(s.filterFields, s.Par.Eps, s.scratch, s.runFn)
}

// sendRegion returns the ghost-strip region of population i's outflow
// toward dir, trimmed so that every packed value was sourced from this
// subregion's interior. A diagonal population on a side strip skips the
// one node whose source lies outside the interior: that value travels on
// the corner path of the adjacent neighbour instead, so trimming keeps
// exactly one writer per receiving node.
func (s *Solver2D) sendRegion(i int, dir decomp.Dir) halo.Region2D {
	r := halo.SendGhost2D(s.F[i], dir)
	return trim2(r, dir, cx2[i], cy2[i])
}

// recvRegion returns the interior-edge region where population i arriving
// from dir is stored; it mirrors the sender's trimmed region.
func (s *Solver2D) recvRegion(i int, dir decomp.Dir) halo.Region2D {
	r := halo.RecvInterior2D(s.F[i], dir)
	return trim2(r, dir.Opposite(), cx2[i], cy2[i])
}

// trim2 clips a side strip for a population moving with lattice vector
// (dx, dy) crossing side dir: along a vertical side the strip loses the
// node at the end the population slants away from, and symmetrically for
// horizontal sides. Corner regions (1x1) are never trimmed.
func trim2(r halo.Region2D, dir decomp.Dir, dx, dy int) halo.Region2D {
	switch dir {
	case decomp.East, decomp.West:
		if dy > 0 {
			r.Y0, r.NY = r.Y0+1, r.NY-1
		} else if dy < 0 {
			r.NY--
		}
	case decomp.North, decomp.South:
		if dx > 0 {
			r.X0, r.NX = r.X0+1, r.NX-1
		} else if dx < 0 {
			r.NX--
		}
	}
	return r
}

// Pack extracts, for the neighbour at dir, the populations streaming into
// it (outflow-delivery convention; all boundary data in one message).
func (s *Solver2D) Pack(phase int, dir decomp.Dir, buf []float64) []float64 {
	for _, i := range outgoing2[dir] {
		buf = halo.Extract2D(s.F[i], s.sendRegion(i, dir), buf)
	}
	return buf
}

// Unpack stores populations received from the neighbour at dir into the
// interior edge strip on that side. The sender packed its outgoing
// populations for direction Opposite(dir), which are exactly the
// populations entering this subregion from dir.
func (s *Solver2D) Unpack(phase int, dir decomp.Dir, buf []float64) {
	for _, i := range outgoing2[dir.Opposite()] {
		buf = halo.Inject2D(s.F[i], s.recvRegion(i, dir), buf)
	}
	if len(buf) != 0 {
		panic(fmt.Sprintf("lbm: %d leftover values after unpack", len(buf)))
	}
}

// MsgLen returns the message length for a direction: roughly 3 populations
// per side node (exactly 3L-2 per side of length L after corner trimming),
// 1 value per corner.
func (s *Solver2D) MsgLen(phase int, dir decomp.Dir) int {
	n := 0
	for _, i := range outgoing2[dir] {
		n += s.sendRegion(i, dir).Len()
	}
	return n
}

// Stencil returns the neighbour stencil: full, because diagonal
// populations cross subregion corners.
func (s *Solver2D) Stencil() decomp.Stencil { return decomp.Full }

// StepSerial advances a standalone solver one step with periodic wrapping
// on the requested axes. ("Serial" refers to the absence of a transport —
// the exchange wraps in place; the compute slabs still honour Workers.)
func (s *Solver2D) StepSerial(periodicX, periodicY bool) {
	s.Compute(0)
	s.selfExchange(periodicX, periodicY)
	s.Compute(1)
}

// selfExchange wraps outflow back into the solver's own opposite edges,
// reusing the solver's exchange buffer so the steady-state step does not
// allocate.
func (s *Solver2D) selfExchange(periodicX, periodicY bool) {
	wrap := func(d decomp.Dir) {
		s.xbuf = s.Pack(0, d, s.xbuf[:0])
		s.Unpack(0, d.Opposite(), s.xbuf)
	}
	if periodicX {
		wrap(decomp.East)
		wrap(decomp.West)
	}
	if periodicY {
		wrap(decomp.North)
		wrap(decomp.South)
	}
	if periodicX && periodicY {
		wrap(decomp.NorthEast)
		wrap(decomp.NorthWest)
		wrap(decomp.SouthEast)
		wrap(decomp.SouthWest)
	}
}

// Vorticity computes the curl at interior node (x, y) by centered
// differences of the fluid velocity.
func (s *Solver2D) Vorticity(x, y int) float64 {
	return 0.5*(s.Vy.At(x+1, y)-s.Vy.At(x-1, y)) - 0.5*(s.Vx.At(x, y+1)-s.Vx.At(x, y-1))
}
