package lbm

import (
	"fmt"
	"maps"
	"slices"
)

// MethodName identifies the 2D lattice Boltzmann method in dump files.
func (s *Solver2D) MethodName() string { return "lb2d" }

// DumpFields returns deep copies of the populations and fluid variables
// (raw storage, ghosts included).
func (s *Solver2D) DumpFields() map[string][]float64 {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	out := map[string][]float64{
		"rho": cp(s.Rho.Data()),
		"vx":  cp(s.Vx.Data()),
		"vy":  cp(s.Vy.Data()),
	}
	for i := 0; i < Q2; i++ {
		out[fmt.Sprintf("f%d", i)] = cp(s.F[i].Data())
	}
	return out
}

// RestoreFields reloads populations and fluid variables from a dump.
func (s *Solver2D) RestoreFields(fields map[string][]float64) error {
	dsts := map[string][]float64{
		"rho": s.Rho.Data(),
		"vx":  s.Vx.Data(),
		"vy":  s.Vy.Data(),
	}
	for i := 0; i < Q2; i++ {
		dsts[fmt.Sprintf("f%d", i)] = s.F[i].Data()
	}
	for _, name := range slices.Sorted(maps.Keys(dsts)) {
		dst := dsts[name]
		src, ok := fields[name]
		if !ok {
			return fmt.Errorf("lbm: dump missing field %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("lbm: field %q has %d values, want %d", name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}

// MethodName identifies the 3D lattice Boltzmann method in dump files.
func (s *Solver3D) MethodName() string { return "lb3d" }

// DumpFields returns deep copies of the 3D populations and fluid variables.
func (s *Solver3D) DumpFields() map[string][]float64 {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	out := map[string][]float64{
		"rho": cp(s.Rho.Data()),
		"vx":  cp(s.Vx.Data()),
		"vy":  cp(s.Vy.Data()),
		"vz":  cp(s.Vz.Data()),
	}
	for i := 0; i < Q3; i++ {
		out[fmt.Sprintf("f%d", i)] = cp(s.F[i].Data())
	}
	return out
}

// RestoreFields reloads the 3D populations and fluid variables.
func (s *Solver3D) RestoreFields(fields map[string][]float64) error {
	dsts := map[string][]float64{
		"rho": s.Rho.Data(),
		"vx":  s.Vx.Data(),
		"vy":  s.Vy.Data(),
		"vz":  s.Vz.Data(),
	}
	for i := 0; i < Q3; i++ {
		dsts[fmt.Sprintf("f%d", i)] = s.F[i].Data()
	}
	for _, name := range slices.Sorted(maps.Keys(dsts)) {
		dst := dsts[name]
		src, ok := fields[name]
		if !ok {
			return fmt.Errorf("lbm: dump missing field %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("lbm: field %q has %d values, want %d", name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}
