package lbm

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/filter"
	"repro/internal/fluid"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/pool"
)

// Q3 is the number of D3Q15 populations: rest + 6 axis + 8 cube diagonals.
const Q3 = 15

// D3Q15 lattice vectors and weights. Exactly five populations cross each
// face of a box subregion (the axis vector plus four diagonals), which is
// why the paper's 3D lattice Boltzmann method communicates 5 variables per
// boundary node.
var (
	cx3 = [Q3]int{0, 1, -1, 0, 0, 0, 0, 1, 1, 1, 1, -1, -1, -1, -1}
	cy3 = [Q3]int{0, 0, 0, 1, -1, 0, 0, 1, 1, -1, -1, 1, 1, -1, -1}
	cz3 = [Q3]int{0, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 1, -1}
	w3  = [Q3]float64{2.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72}
	opp3 [Q3]int
)

func init() {
	for i := 0; i < Q3; i++ {
		for j := 0; j < Q3; j++ {
			if cx3[j] == -cx3[i] && cy3[j] == -cy3[i] && cz3[j] == -cz3[i] {
				opp3[i] = j
				break
			}
		}
	}
}

// Solver3D integrates one box subregion with the D3Q15 lattice Boltzmann
// method.
//
// Halo exchange uses ghost-fill sweeps ordered x, then y, then z: each
// sweep sends, per face, the five populations crossing it, with the strip
// extended over the ghost layers of previously swept axes so that
// populations crossing subregion edges and corners propagate through two or
// three face messages. After the sweeps every ghost node holds the relaxed
// populations pointing into this subregion and the shift step is purely
// local. The (P x 1 x 1) pencil decompositions of figure 9 degenerate to a
// single exchange per step, matching the paper's one-message count; fuller
// 3D lattices pay one message per face per step.
//
// When Workers > 1 the inner phases are cut into z-plane slabs on the
// shared pool; writes are disjoint by plane and per-node arithmetic is
// unchanged, so fields stay bit-identical to the serial sweep.
type Solver3D struct {
	Par fluid.Params
	Tau float64

	Mask func(x, y, z int) fluid.CellType

	// Workers is the intra-rank slab count; <= 1 runs the serial sweeps.
	Workers int

	F  [Q3]*grid.Field3D
	nF [Q3]*grid.Field3D

	Rho, Vx, Vy, Vz *grid.Field3D

	scratch []float64

	// Static per-node structure cached at construction (see Solver2D).
	cells   []fluid.CellType
	rowOpen []bool // indexed z*ny + y
	plan    *filter.Plan3D

	par                       pool.Runner
	relaxFn, shiftFn, macroFn func(lo, hi int)
	runFn                     filter.RunFunc
	shiftSrc, shiftDst        *grid.Field3D
	shiftDx, shiftDy, shiftDz int
	xbuf                      []float64

	// Filter field list built once at construction so the steady-state
	// step allocates nothing (see Solver2D).
	filterFields []*grid.Field3D
}

// NewSolver3D allocates a D3Q15 solver initialized to equilibrium at
// rho = Rho0, V = 0.
func NewSolver3D(nx, ny, nz int, par fluid.Params, mask func(x, y, z int) fluid.CellType) (*Solver3D, error) {
	if err := par.Check(); err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, fmt.Errorf("lbm: nil mask")
	}
	s := &Solver3D{
		Par:     par,
		Tau:     TauFromNu(par.Nu),
		Mask:    mask,
		Rho:     grid.NewField3D(nx, ny, nz, 1),
		Vx:      grid.NewField3D(nx, ny, nz, 1),
		Vy:      grid.NewField3D(nx, ny, nz, 1),
		Vz:      grid.NewField3D(nx, ny, nz, 1),
		scratch: make([]float64, nx*ny*nz),
		cells:   make([]fluid.CellType, nx*ny*nz),
		rowOpen: make([]bool, ny*nz),
		plan:    filter.NewPlan3D(nx, ny, nz, mask),
	}
	s.filterFields = []*grid.Field3D{s.Rho, s.Vx, s.Vy, s.Vz}
	for i := 0; i < Q3; i++ {
		s.F[i] = grid.NewField3D(nx, ny, nz, 1)
		s.nF[i] = grid.NewField3D(nx, ny, nz, 1)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			open := true
			for x := 0; x < nx; x++ {
				c := mask(x, y, z)
				s.cells[(z*ny+y)*nx+x] = c
				if c != fluid.Interior {
					open = false
				}
			}
			s.rowOpen[z*ny+y] = open
		}
	}
	s.relaxFn = s.relaxPlanes
	s.shiftFn = s.shiftPlanes
	s.macroFn = s.macroPlanes
	s.runFn = s.run
	s.Rho.Fill(par.Rho0)
	s.InitEquilibrium()
	return s, nil
}

// SetWorkers sets the intra-rank slab count.
func (s *Solver3D) SetWorkers(n int) { s.Workers = n }

func (s *Solver3D) run(n int, fn func(lo, hi int)) { s.par.Run(s.Workers, n, fn) }

// InitEquilibrium sets every interior fluid population to the equilibrium
// of the current fluid variables and zeroes ghost and wall populations,
// making closed boundaries exactly mass-neutral from step zero (see
// Solver2D.InitEquilibrium).
func (s *Solver3D) InitEquilibrium() {
	for z := -1; z <= s.Rho.NZ; z++ {
		for y := -1; y <= s.Rho.NY; y++ {
			for x := -1; x <= s.Rho.NX; x++ {
				ghost := x < 0 || x >= s.Rho.NX || y < 0 || y >= s.Rho.NY ||
					z < 0 || z >= s.Rho.NZ
				if ghost || s.Mask(x, y, z) == fluid.Wall {
					for i := 0; i < Q3; i++ {
						s.F[i].Set(x, y, z, 0)
					}
					continue
				}
				for i := 0; i < Q3; i++ {
					s.F[i].Set(x, y, z, feq3(i, s.Rho.At(x, y, z),
						s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)))
				}
			}
		}
	}
}

// feq3 is the D3Q15 BGK equilibrium distribution.
func feq3(i int, rho, vx, vy, vz float64) float64 {
	return feq3v(i, rho, vx, vy, vz, vx*vx+vy*vy+vz*vz)
}

// feq3v is feq3 with the speed-squared hoisted out of the per-population
// loop; the expression is identical, so the hoisting is bit-exact.
func feq3v(i int, rho, vx, vy, vz, v2 float64) float64 {
	cu := float64(cx3[i])*vx + float64(cy3[i])*vy + float64(cz3[i])*vz
	return w3[i] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*v2)
}

// Phases returns the compute-phase count: relax, then one no-op phase per
// sweep axis (y, z), then shift+macroscopics+filter. The x-face exchange
// follows the relax phase.
func (s *Solver3D) Phases() int { return 4 }

// Exchanges reports whether an exchange follows the phase; ExchangeDirs
// says on which faces.
func (s *Solver3D) Exchanges(phase int) bool { return phase <= 2 }

// Face pairs exchanged after each compute phase, fixed at package level
// so ExchangeDirs stays allocation-free on the step path.
var (
	xFaces3 = []decomp.Dir3{decomp.West3, decomp.East3}
	yFaces3 = []decomp.Dir3{decomp.South3, decomp.North3}
	zFaces3 = []decomp.Dir3{decomp.Down3, decomp.Up3}
)

// ExchangeDirs returns the faces exchanged after the given phase: x faces
// after relax, then y faces, then z faces.
func (s *Solver3D) ExchangeDirs(phase int) []decomp.Dir3 {
	switch phase {
	case 0:
		return xFaces3
	case 1:
		return yFaces3
	case 2:
		return zFaces3
	}
	return nil
}

// Compute runs one compute phase. Phases 1 and 2 are pure exchange points.
func (s *Solver3D) Compute(phase int) {
	switch phase {
	case 0:
		s.relax()
	case 1, 2:
		// Sweep barriers: no local work, only the y/z face exchanges.
	case 3:
		s.shift()
		s.macroscopics()
		s.applyFilter()
	default:
		panic(fmt.Sprintf("lbm: invalid phase %d", phase))
	}
}

func (s *Solver3D) relax() { s.run(s.Rho.NZ, s.relaxFn) }

// relaxPlanes relaxes z-planes [z0, z1). All-Interior rows skip the
// cell-type dispatch; each node writes only its own populations.
func (s *Solver3D) relaxPlanes(z0, z1 int) {
	p := s.Par
	invTau := 1 / s.Tau
	forced := p.ForceX != 0 || p.ForceY != 0 || p.ForceZ != 0
	nx, ny := s.Rho.NX, s.Rho.NY
	for z := z0; z < z1; z++ {
		for y := 0; y < ny; y++ {
			open := s.rowOpen[z*ny+y]
			row := (z*ny + y) * nx
			for x := 0; x < nx; x++ {
				if !open {
					switch s.cells[row+x] {
					case fluid.Wall:
						for i := 1; i < Q3; i++ {
							if j := opp3[i]; j > i {
								a, b := s.F[i].At(x, y, z), s.F[j].At(x, y, z)
								s.F[i].Set(x, y, z, b)
								s.F[j].Set(x, y, z, a)
							}
						}
						continue
					case fluid.Inlet:
						for i := 0; i < Q3; i++ {
							s.F[i].Set(x, y, z, feq3(i, p.InletRho, p.InletVx, p.InletVy, p.InletVz))
						}
						continue
					case fluid.Outlet:
						vx, vy, vz := s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)
						for i := 0; i < Q3; i++ {
							s.F[i].Set(x, y, z, feq3(i, p.OutletRho, vx, vy, vz))
						}
						continue
					}
				}
				rho := s.Rho.At(x, y, z)
				vx, vy, vz := s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)
				v2 := vx*vx + vy*vy + vz*vz
				for i := 0; i < Q3; i++ {
					f := s.F[i].At(x, y, z)
					s.F[i].Set(x, y, z, f+(feq3v(i, rho, vx, vy, vz, v2)-f)*invTau)
				}
				if forced {
					for i := 1; i < Q3; i++ {
						cg := float64(cx3[i])*p.ForceX + float64(cy3[i])*p.ForceY + float64(cz3[i])*p.ForceZ
						s.F[i].Add(x, y, z, 3*w3[i]*rho*cg)
					}
				}
			}
		}
	}
}

// shift streams populations to interior targets, reading ghost sources
// filled by the three exchange sweeps. Targets are interior-only, so the
// z-plane slabs cover the whole write range.
func (s *Solver3D) shift() {
	for i := 0; i < Q3; i++ {
		s.shiftSrc, s.shiftDst = s.F[i], s.nF[i]
		s.shiftDx, s.shiftDy, s.shiftDz = cx3[i], cy3[i], cz3[i]
		s.run(s.Rho.NZ, s.shiftFn)
		s.F[i].Swap(s.nF[i])
	}
}

// shiftPlanes streams the current population into dst z-planes [z0, z1).
func (s *Solver3D) shiftPlanes(z0, z1 int) {
	nx, ny := s.Rho.NX, s.Rho.NY
	src, dst := s.shiftSrc, s.shiftDst
	dx, dy, dz := s.shiftDx, s.shiftDy, s.shiftDz
	for z := z0; z < z1; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				dst.Set(x, y, z, src.At(x-dx, y-dy, z-dz))
			}
		}
	}
}

func (s *Solver3D) macroscopics() { s.run(s.Rho.NZ, s.macroFn) }

// macroPlanes recomputes the fluid variables on z-planes [z0, z1).
func (s *Solver3D) macroPlanes(z0, z1 int) {
	nx, ny := s.Rho.NX, s.Rho.NY
	for z := z0; z < z1; z++ {
		for y := 0; y < ny; y++ {
			open := s.rowOpen[z*ny+y]
			row := (z*ny + y) * nx
			for x := 0; x < nx; x++ {
				if !open && s.cells[row+x] == fluid.Wall {
					s.Rho.Set(x, y, z, s.Par.Rho0)
					s.Vx.Set(x, y, z, 0)
					s.Vy.Set(x, y, z, 0)
					s.Vz.Set(x, y, z, 0)
					continue
				}
				rho, mx, my, mz := 0.0, 0.0, 0.0, 0.0
				for i := 0; i < Q3; i++ {
					f := s.F[i].At(x, y, z)
					rho += f
					mx += f * float64(cx3[i])
					my += f * float64(cy3[i])
					mz += f * float64(cz3[i])
				}
				s.Rho.Set(x, y, z, rho)
				s.Vx.Set(x, y, z, mx/rho)
				s.Vy.Set(x, y, z, my/rho)
				s.Vz.Set(x, y, z, mz/rho)
			}
		}
	}
}

func (s *Solver3D) applyFilter() {
	s.plan.Apply(s.filterFields, s.Par.Eps, s.scratch, s.runFn)
}

// crossingTab3 caches, per face direction, the population indices with a
// positive velocity component along it — Pack/Unpack run in the hot
// exchange path and must not allocate.
var crossingTab3 = func() (tab [6][]int) {
	for _, dir := range decomp.Dirs3() {
		dx, dy, dz := dir.Delta()
		for i := 1; i < Q3; i++ {
			if cx3[i]*dx+cy3[i]*dy+cz3[i]*dz > 0 {
				tab[dir] = append(tab[dir], i)
			}
		}
	}
	return tab
}()

// crossing3 returns the population indices with a positive velocity
// component along face direction dir.
func crossing3(dir decomp.Dir3) []int { return crossingTab3[dir] }

// sweepRegion returns the send (interior) or receive (ghost) strip for a
// face, extended over the ghost layers of the axes swept before it.
func (s *Solver3D) sweepRegion(dir decomp.Dir3, interior bool) halo.Region3D {
	var r halo.Region3D
	if interior {
		r = halo.SendInterior3D(s.F[0], dir)
	} else {
		r = halo.RecvGhost3D(s.F[0], dir)
	}
	switch dir {
	case decomp.South3, decomp.North3: // y sweep: extend over x ghosts
		r.X0, r.NX = r.X0-1, r.NX+2
	case decomp.Down3, decomp.Up3: // z sweep: extend over x and y ghosts
		r.X0, r.NX = r.X0-1, r.NX+2
		r.Y0, r.NY = r.Y0-1, r.NY+2
	}
	return r
}

// Pack extracts the populations crossing face dir from the (extended)
// interior strip: the data the neighbour's ghost layer needs before it can
// shift.
func (s *Solver3D) Pack(phase int, dir decomp.Dir3, buf []float64) []float64 {
	r := s.sweepRegion(dir, true)
	for _, i := range crossing3(dir) {
		buf = halo.Extract3D(s.F[i], r, buf)
	}
	return buf
}

// Unpack stores populations received from the neighbour at dir into the
// (extended) ghost strip on that side. The sender packed the populations
// crossing its Opposite(dir) face, which point into this subregion.
func (s *Solver3D) Unpack(phase int, dir decomp.Dir3, buf []float64) {
	r := s.sweepRegion(dir, false)
	for _, i := range crossing3(dir.Opposite()) {
		buf = halo.Inject3D(s.F[i], r, buf)
	}
	if len(buf) != 0 {
		panic(fmt.Sprintf("lbm: %d leftover values after 3D unpack", len(buf)))
	}
}

// MsgLen returns the message length for a face: 5 populations per strip
// node.
func (s *Solver3D) MsgLen(phase int, dir decomp.Dir3) int {
	return len(crossing3(dir)) * s.sweepRegion(dir, true).Len()
}

// StepSerial advances a standalone solver one step with periodic wrapping,
// reusing the solver's exchange buffer so the steady-state step does not
// allocate.
func (s *Solver3D) StepSerial(px, py, pz bool) {
	for ph := 0; ph < s.Phases(); ph++ {
		s.Compute(ph)
		if !s.Exchanges(ph) {
			continue
		}
		for _, d := range s.ExchangeDirs(ph) {
			var wraps bool
			switch d {
			case decomp.West3, decomp.East3:
				wraps = px
			case decomp.South3, decomp.North3:
				wraps = py
			case decomp.Down3, decomp.Up3:
				wraps = pz
			}
			if !wraps {
				continue
			}
			s.xbuf = s.Pack(ph, d, s.xbuf[:0])
			s.Unpack(ph, d.Opposite(), s.xbuf)
		}
	}
}
