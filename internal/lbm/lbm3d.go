package lbm

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/filter"
	"repro/internal/fluid"
	"repro/internal/grid"
	"repro/internal/halo"
)

// Q3 is the number of D3Q15 populations: rest + 6 axis + 8 cube diagonals.
const Q3 = 15

// D3Q15 lattice vectors and weights. Exactly five populations cross each
// face of a box subregion (the axis vector plus four diagonals), which is
// why the paper's 3D lattice Boltzmann method communicates 5 variables per
// boundary node.
var (
	cx3 = [Q3]int{0, 1, -1, 0, 0, 0, 0, 1, 1, 1, 1, -1, -1, -1, -1}
	cy3 = [Q3]int{0, 0, 0, 1, -1, 0, 0, 1, 1, -1, -1, 1, 1, -1, -1}
	cz3 = [Q3]int{0, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 1, -1}
	w3  = [Q3]float64{2.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72, 1.0 / 72}
	opp3 [Q3]int
)

func init() {
	for i := 0; i < Q3; i++ {
		for j := 0; j < Q3; j++ {
			if cx3[j] == -cx3[i] && cy3[j] == -cy3[i] && cz3[j] == -cz3[i] {
				opp3[i] = j
				break
			}
		}
	}
}

// Solver3D integrates one box subregion with the D3Q15 lattice Boltzmann
// method.
//
// Halo exchange uses ghost-fill sweeps ordered x, then y, then z: each
// sweep sends, per face, the five populations crossing it, with the strip
// extended over the ghost layers of previously swept axes so that
// populations crossing subregion edges and corners propagate through two or
// three face messages. After the sweeps every ghost node holds the relaxed
// populations pointing into this subregion and the shift step is purely
// local. The (P x 1 x 1) pencil decompositions of figure 9 degenerate to a
// single exchange per step, matching the paper's one-message count; fuller
// 3D lattices pay one message per face per step.
type Solver3D struct {
	Par fluid.Params
	Tau float64

	Mask func(x, y, z int) fluid.CellType

	F  [Q3]*grid.Field3D
	nF [Q3]*grid.Field3D

	Rho, Vx, Vy, Vz *grid.Field3D

	scratch []float64
}

// NewSolver3D allocates a D3Q15 solver initialized to equilibrium at
// rho = Rho0, V = 0.
func NewSolver3D(nx, ny, nz int, par fluid.Params, mask func(x, y, z int) fluid.CellType) (*Solver3D, error) {
	if err := par.Check(); err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, fmt.Errorf("lbm: nil mask")
	}
	s := &Solver3D{
		Par:     par,
		Tau:     TauFromNu(par.Nu),
		Mask:    mask,
		Rho:     grid.NewField3D(nx, ny, nz, 1),
		Vx:      grid.NewField3D(nx, ny, nz, 1),
		Vy:      grid.NewField3D(nx, ny, nz, 1),
		Vz:      grid.NewField3D(nx, ny, nz, 1),
		scratch: make([]float64, nx*ny*nz),
	}
	for i := 0; i < Q3; i++ {
		s.F[i] = grid.NewField3D(nx, ny, nz, 1)
		s.nF[i] = grid.NewField3D(nx, ny, nz, 1)
	}
	s.Rho.Fill(par.Rho0)
	s.InitEquilibrium()
	return s, nil
}

// InitEquilibrium sets every interior fluid population to the equilibrium
// of the current fluid variables and zeroes ghost and wall populations,
// making closed boundaries exactly mass-neutral from step zero (see
// Solver2D.InitEquilibrium).
func (s *Solver3D) InitEquilibrium() {
	for z := -1; z <= s.Rho.NZ; z++ {
		for y := -1; y <= s.Rho.NY; y++ {
			for x := -1; x <= s.Rho.NX; x++ {
				ghost := x < 0 || x >= s.Rho.NX || y < 0 || y >= s.Rho.NY ||
					z < 0 || z >= s.Rho.NZ
				if ghost || s.Mask(x, y, z) == fluid.Wall {
					for i := 0; i < Q3; i++ {
						s.F[i].Set(x, y, z, 0)
					}
					continue
				}
				for i := 0; i < Q3; i++ {
					s.F[i].Set(x, y, z, feq3(i, s.Rho.At(x, y, z),
						s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)))
				}
			}
		}
	}
}

// feq3 is the D3Q15 BGK equilibrium distribution.
func feq3(i int, rho, vx, vy, vz float64) float64 {
	cu := float64(cx3[i])*vx + float64(cy3[i])*vy + float64(cz3[i])*vz
	v2 := vx*vx + vy*vy + vz*vz
	return w3[i] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*v2)
}

// Phases returns the compute-phase count: relax, then one no-op phase per
// sweep axis (y, z), then shift+macroscopics+filter. The x-face exchange
// follows the relax phase.
func (s *Solver3D) Phases() int { return 4 }

// Exchanges reports whether an exchange follows the phase; ExchangeDirs
// says on which faces.
func (s *Solver3D) Exchanges(phase int) bool { return phase <= 2 }

// ExchangeDirs returns the faces exchanged after the given phase: x faces
// after relax, then y faces, then z faces.
func (s *Solver3D) ExchangeDirs(phase int) []decomp.Dir3 {
	switch phase {
	case 0:
		return []decomp.Dir3{decomp.West3, decomp.East3}
	case 1:
		return []decomp.Dir3{decomp.South3, decomp.North3}
	case 2:
		return []decomp.Dir3{decomp.Down3, decomp.Up3}
	}
	return nil
}

// Compute runs one compute phase. Phases 1 and 2 are pure exchange points.
func (s *Solver3D) Compute(phase int) {
	switch phase {
	case 0:
		s.relax()
	case 1, 2:
		// Sweep barriers: no local work, only the y/z face exchanges.
	case 3:
		s.shift()
		s.macroscopics()
		s.applyFilter()
	default:
		panic(fmt.Sprintf("lbm: invalid phase %d", phase))
	}
}

func (s *Solver3D) relax() {
	p := s.Par
	invTau := 1 / s.Tau
	forced := p.ForceX != 0 || p.ForceY != 0 || p.ForceZ != 0
	for z := 0; z < s.Rho.NZ; z++ {
		for y := 0; y < s.Rho.NY; y++ {
			for x := 0; x < s.Rho.NX; x++ {
				switch s.Mask(x, y, z) {
				case fluid.Wall:
					for i := 1; i < Q3; i++ {
						if j := opp3[i]; j > i {
							a, b := s.F[i].At(x, y, z), s.F[j].At(x, y, z)
							s.F[i].Set(x, y, z, b)
							s.F[j].Set(x, y, z, a)
						}
					}
					continue
				case fluid.Inlet:
					for i := 0; i < Q3; i++ {
						s.F[i].Set(x, y, z, feq3(i, p.InletRho, p.InletVx, p.InletVy, p.InletVz))
					}
					continue
				case fluid.Outlet:
					vx, vy, vz := s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)
					for i := 0; i < Q3; i++ {
						s.F[i].Set(x, y, z, feq3(i, p.OutletRho, vx, vy, vz))
					}
					continue
				}
				rho := s.Rho.At(x, y, z)
				vx, vy, vz := s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)
				for i := 0; i < Q3; i++ {
					f := s.F[i].At(x, y, z)
					s.F[i].Set(x, y, z, f+(feq3(i, rho, vx, vy, vz)-f)*invTau)
				}
				if forced {
					for i := 1; i < Q3; i++ {
						cg := float64(cx3[i])*p.ForceX + float64(cy3[i])*p.ForceY + float64(cz3[i])*p.ForceZ
						s.F[i].Add(x, y, z, 3*w3[i]*rho*cg)
					}
				}
			}
		}
	}
}

// shift streams populations to interior targets, reading ghost sources
// filled by the three exchange sweeps.
func (s *Solver3D) shift() {
	nx, ny, nz := s.Rho.NX, s.Rho.NY, s.Rho.NZ
	for i := 0; i < Q3; i++ {
		dx, dy, dz := cx3[i], cy3[i], cz3[i]
		src, dst := s.F[i], s.nF[i]
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					dst.Set(x, y, z, src.At(x-dx, y-dy, z-dz))
				}
			}
		}
		src.Swap(dst)
	}
}

func (s *Solver3D) macroscopics() {
	for z := 0; z < s.Rho.NZ; z++ {
		for y := 0; y < s.Rho.NY; y++ {
			for x := 0; x < s.Rho.NX; x++ {
				if s.Mask(x, y, z) == fluid.Wall {
					s.Rho.Set(x, y, z, s.Par.Rho0)
					s.Vx.Set(x, y, z, 0)
					s.Vy.Set(x, y, z, 0)
					s.Vz.Set(x, y, z, 0)
					continue
				}
				rho, mx, my, mz := 0.0, 0.0, 0.0, 0.0
				for i := 0; i < Q3; i++ {
					f := s.F[i].At(x, y, z)
					rho += f
					mx += f * float64(cx3[i])
					my += f * float64(cy3[i])
					mz += f * float64(cz3[i])
				}
				s.Rho.Set(x, y, z, rho)
				s.Vx.Set(x, y, z, mx/rho)
				s.Vy.Set(x, y, z, my/rho)
				s.Vz.Set(x, y, z, mz/rho)
			}
		}
	}
}

func (s *Solver3D) applyFilter() {
	filter.Apply3D([]*grid.Field3D{s.Rho, s.Vx, s.Vy, s.Vz}, s.Par.Eps, s.Mask, s.scratch)
}

// crossing3 returns the population indices with a positive velocity
// component along face direction dir.
func crossing3(dir decomp.Dir3) []int {
	var out []int
	dx, dy, dz := dir.Delta()
	for i := 1; i < Q3; i++ {
		if cx3[i]*dx+cy3[i]*dy+cz3[i]*dz > 0 {
			out = append(out, i)
		}
	}
	return out
}

// sweepRegion returns the send (interior) or receive (ghost) strip for a
// face, extended over the ghost layers of the axes swept before it.
func (s *Solver3D) sweepRegion(dir decomp.Dir3, interior bool) halo.Region3D {
	var r halo.Region3D
	if interior {
		r = halo.SendInterior3D(s.F[0], dir)
	} else {
		r = halo.RecvGhost3D(s.F[0], dir)
	}
	switch dir {
	case decomp.South3, decomp.North3: // y sweep: extend over x ghosts
		r.X0, r.NX = r.X0-1, r.NX+2
	case decomp.Down3, decomp.Up3: // z sweep: extend over x and y ghosts
		r.X0, r.NX = r.X0-1, r.NX+2
		r.Y0, r.NY = r.Y0-1, r.NY+2
	}
	return r
}

// Pack extracts the populations crossing face dir from the (extended)
// interior strip: the data the neighbour's ghost layer needs before it can
// shift.
func (s *Solver3D) Pack(phase int, dir decomp.Dir3, buf []float64) []float64 {
	r := s.sweepRegion(dir, true)
	for _, i := range crossing3(dir) {
		buf = halo.Extract3D(s.F[i], r, buf)
	}
	return buf
}

// Unpack stores populations received from the neighbour at dir into the
// (extended) ghost strip on that side. The sender packed the populations
// crossing its Opposite(dir) face, which point into this subregion.
func (s *Solver3D) Unpack(phase int, dir decomp.Dir3, buf []float64) {
	r := s.sweepRegion(dir, false)
	for _, i := range crossing3(dir.Opposite()) {
		buf = halo.Inject3D(s.F[i], r, buf)
	}
	if len(buf) != 0 {
		panic(fmt.Sprintf("lbm: %d leftover values after 3D unpack", len(buf)))
	}
}

// MsgLen returns the message length for a face: 5 populations per strip
// node.
func (s *Solver3D) MsgLen(phase int, dir decomp.Dir3) int {
	return len(crossing3(dir)) * s.sweepRegion(dir, true).Len()
}

// StepSerial advances a standalone solver one step with periodic wrapping.
func (s *Solver3D) StepSerial(px, py, pz bool) {
	for ph := 0; ph < s.Phases(); ph++ {
		s.Compute(ph)
		if !s.Exchanges(ph) {
			continue
		}
		dirs := s.ExchangeDirs(ph)
		periodic := map[decomp.Dir3]bool{
			decomp.West3: px, decomp.East3: px,
			decomp.South3: py, decomp.North3: py,
			decomp.Down3: pz, decomp.Up3: pz,
		}
		var buf []float64
		for _, d := range dirs {
			if !periodic[d] {
				continue
			}
			buf = s.Pack(ph, d, buf[:0])
			s.Unpack(ph, d.Opposite(), buf)
		}
	}
}
