package lbm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/decomp"
	"repro/internal/fluid"
)

func maskFrom(m *fluid.Mask2D) func(x, y int) fluid.CellType {
	return func(x, y int) fluid.CellType { return m.At(x, y) }
}

func allFluid(x, y int) fluid.CellType { return fluid.Interior }

func TestLatticeInvariants(t *testing.T) {
	// Weights sum to one; velocity moments vanish; second moment gives
	// c_s^2 = 1/3 on both lattices.
	sw, sx, sy := 0.0, 0.0, 0.0
	xx, yy, xy := 0.0, 0.0, 0.0
	for i := 0; i < Q2; i++ {
		sw += w2[i]
		sx += w2[i] * float64(cx2[i])
		sy += w2[i] * float64(cy2[i])
		xx += w2[i] * float64(cx2[i]*cx2[i])
		yy += w2[i] * float64(cy2[i]*cy2[i])
		xy += w2[i] * float64(cx2[i]*cy2[i])
	}
	if math.Abs(sw-1) > 1e-15 || math.Abs(sx) > 1e-15 || math.Abs(sy) > 1e-15 {
		t.Errorf("D2Q9 low moments wrong: %v %v %v", sw, sx, sy)
	}
	if math.Abs(xx-1.0/3) > 1e-15 || math.Abs(yy-1.0/3) > 1e-15 || math.Abs(xy) > 1e-15 {
		t.Errorf("D2Q9 second moments wrong: %v %v %v", xx, yy, xy)
	}
	sw = 0
	var m3 [3]float64
	var mm [3][3]float64
	for i := 0; i < Q3; i++ {
		sw += w3[i]
		c := [3]int{cx3[i], cy3[i], cz3[i]}
		for a := 0; a < 3; a++ {
			m3[a] += w3[i] * float64(c[a])
			for b := 0; b < 3; b++ {
				mm[a][b] += w3[i] * float64(c[a]*c[b])
			}
		}
	}
	if math.Abs(sw-1) > 1e-15 {
		t.Errorf("D3Q15 weights sum %v", sw)
	}
	for a := 0; a < 3; a++ {
		if math.Abs(m3[a]) > 1e-15 {
			t.Errorf("D3Q15 first moment[%d] = %v", a, m3[a])
		}
		for b := 0; b < 3; b++ {
			want := 0.0
			if a == b {
				want = 1.0 / 3
			}
			if math.Abs(mm[a][b]-want) > 1e-15 {
				t.Errorf("D3Q15 second moment[%d][%d] = %v, want %v", a, b, mm[a][b], want)
			}
		}
	}
}

func TestOppositesAndOutgoing(t *testing.T) {
	for i := 0; i < Q2; i++ {
		j := opp2[i]
		if cx2[j] != -cx2[i] || cy2[j] != -cy2[i] {
			t.Errorf("opp2[%d] = %d is not the reverse vector", i, j)
		}
	}
	for i := 0; i < Q3; i++ {
		j := opp3[i]
		if cx3[j] != -cx3[i] || cy3[j] != -cy3[i] || cz3[j] != -cz3[i] {
			t.Errorf("opp3[%d] = %d is not the reverse vector", i, j)
		}
	}
	// Each moving population appears in exactly one side set per axis it
	// moves along, and the side sets have 3 members.
	for _, d := range []decomp.Dir{decomp.East, decomp.West, decomp.North, decomp.South} {
		if len(outgoing2[d]) != 3 {
			t.Errorf("side %v carries %d populations, want 3", d, len(outgoing2[d]))
		}
		dx, dy := d.Delta()
		for _, i := range outgoing2[d] {
			if cx2[i]*dx+cy2[i]*dy <= 0 {
				t.Errorf("population %d does not cross side %v", i, d)
			}
		}
	}
	// 3D: five populations cross each face (the paper's 5 variables/node).
	for _, d := range decomp.Dirs3() {
		if got := len(crossing3(d)); got != 5 {
			t.Errorf("face %v carries %d populations, want 5", d, got)
		}
	}
}

func TestEquilibriumMoments(t *testing.T) {
	rho, vx, vy := 1.05, 0.08, -0.03
	var srho, sx, sy float64
	for i := 0; i < Q2; i++ {
		f := feq2(i, rho, vx, vy)
		srho += f
		sx += f * float64(cx2[i])
		sy += f * float64(cy2[i])
	}
	if math.Abs(srho-rho) > 1e-14 {
		t.Errorf("equilibrium density %v, want %v", srho, rho)
	}
	if math.Abs(sx-rho*vx) > 1e-14 || math.Abs(sy-rho*vy) > 1e-14 {
		t.Errorf("equilibrium momentum (%v,%v), want (%v,%v)", sx, sy, rho*vx, rho*vy)
	}
	var s3, s3x, s3y, s3z float64
	vz := 0.05
	for i := 0; i < Q3; i++ {
		f := feq3(i, rho, vx, vy, vz)
		s3 += f
		s3x += f * float64(cx3[i])
		s3y += f * float64(cy3[i])
		s3z += f * float64(cz3[i])
	}
	if math.Abs(s3-rho) > 1e-14 || math.Abs(s3x-rho*vx) > 1e-14 ||
		math.Abs(s3y-rho*vy) > 1e-14 || math.Abs(s3z-rho*vz) > 1e-14 {
		t.Error("D3Q15 equilibrium moments wrong")
	}
}

func TestTauNuRoundTrip(t *testing.T) {
	for _, nu := range []float64{0.01, 0.05, 1.0 / 6} {
		if got := NuFromTau(TauFromNu(nu)); math.Abs(got-nu) > 1e-15 {
			t.Errorf("NuFromTau(TauFromNu(%v)) = %v", nu, got)
		}
	}
}

func channelParams(nu, g float64) fluid.Params {
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0.005
	p.ForceX = g
	return p
}

// TestPoiseuilleProfile drives a periodic LB channel to steady state. With
// full-way bounce-back the physical walls sit half a node outside the last
// fluid nodes, so the profile is compared against plates at y = 0.5 and
// y = ny - 1.5.
func TestPoiseuilleProfile(t *testing.T) {
	nx, ny := 8, 21
	nu, g := 0.1, 1e-5
	s, err := NewSolver2D(nx, ny, channelParams(nu, g), maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 6000; step++ {
		s.StepSerial(true, false)
	}
	y0, y1 := 0.5, float64(ny)-1.5
	umax := fluid.PoiseuilleMax(y0, y1, g, nu)
	maxRel := 0.0
	for y := 1; y < ny-1; y++ {
		want := fluid.PoiseuilleProfile(float64(y), y0, y1, g, nu)
		got := s.Vx.At(nx/2, y)
		if rel := math.Abs(got-want) / umax; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.02 {
		t.Errorf("LB Poiseuille relative error %.4g, want < 2%%", maxRel)
	}
}

// TestPoiseuilleConvergence checks that the wall error of the LB method
// shrinks roughly quadratically with resolution (the paper: both methods
// converge quadratically to the exact Hagen-Poiseuille solution).
func TestPoiseuilleConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("resolution sweep is slow")
	}
	nu := 0.1
	errAt := func(ny int) float64 {
		// Scale the force so the centreline velocity is resolution-
		// independent (fixed Mach), and run to steady state.
		h := float64(ny) - 2
		g := 0.01 * 2 * nu / (h * h / 4)
		s, err := NewSolver2D(4, ny, channelParams(nu, g), maskFrom(fluid.ChannelMask2D(4, ny)))
		if err != nil {
			t.Fatal(err)
		}
		steps := int(6 * h * h / nu)
		for i := 0; i < steps; i++ {
			s.StepSerial(true, false)
		}
		y0, y1 := 0.5, float64(ny)-1.5
		umax := fluid.PoiseuilleMax(y0, y1, g, nu)
		worst := 0.0
		for y := 1; y < ny-1; y++ {
			want := fluid.PoiseuilleProfile(float64(y), y0, y1, g, nu)
			if rel := math.Abs(s.Vx.At(2, y)-want) / umax; rel > worst {
				worst = rel
			}
		}
		return worst
	}
	coarse, fine := errAt(11), errAt(21)
	// Doubling the resolution should cut the error by ~4; accept > 2.5 to
	// absorb the compressibility floor.
	if coarse/fine < 2.5 {
		t.Errorf("convergence ratio %.2f (coarse %.3g, fine %.3g), want > 2.5",
			coarse/fine, coarse, fine)
	}
}

// TestMassConservation: bounce-back walls, periodic wrap and body forcing
// all conserve mass exactly (the forcing term's zeroth moment vanishes).
func TestMassConservation(t *testing.T) {
	nx, ny := 16, 12
	p := channelParams(0.05, 1e-5)
	p.Eps = 0 // the filter acts on rho and is not conservative
	s, err := NewSolver2D(nx, ny, p, maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	mass := func() float64 {
		total := 0.0
		for i := 0; i < Q2; i++ {
			total += s.F[i].SumInterior()
		}
		return total
	}
	m0 := mass()
	for i := 0; i < 300; i++ {
		s.StepSerial(true, false)
	}
	if rel := math.Abs(mass()-m0) / m0; rel > 1e-12 {
		t.Errorf("population mass drifted by %.3g", rel)
	}
}

// TestShearWaveDecay measures the BGK viscosity against nu = (tau-1/2)/3.
func TestShearWaveDecay(t *testing.T) {
	n := 32
	nu := 0.05
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0
	s, err := NewSolver2D(n, n, p, allFluid)
	if err != nil {
		t.Fatal(err)
	}
	amp := 1e-4
	k := 2 * math.Pi / float64(n)
	for y := -1; y <= n; y++ {
		for x := -1; x <= n; x++ {
			s.Vx.Set(x, y, amp*math.Sin(k*float64(y)))
		}
	}
	s.InitEquilibrium()
	steps := 400
	for i := 0; i < steps; i++ {
		s.StepSerial(true, true)
	}
	got := s.Vx.At(0, n/4)
	want := amp * math.Exp(-nu*k*k*float64(steps))
	if rel := math.Abs(got-want) / want; rel > 0.02 {
		t.Errorf("LB shear decay: got %.6g want %.6g (rel %.3g)", got, want, rel)
	}
}

// TestStationaryEquilibrium: a uniform fluid at rest stays exactly at rest.
func TestStationaryEquilibrium(t *testing.T) {
	s, err := NewSolver2D(10, 10, fluid.DefaultParams(), allFluid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.StepSerial(true, true)
	}
	if v := s.Vx.MaxAbsInterior() + s.Vy.MaxAbsInterior(); v > 1e-14 {
		t.Errorf("spurious velocity %.3g in uniform fluid", v)
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if math.Abs(s.Rho.At(x, y)-1) > 1e-14 {
				t.Fatalf("density drifted at (%d,%d): %v", x, y, s.Rho.At(x, y))
			}
		}
	}
}

// TestTrimRegions verifies the diagonal-population side trimming that keeps
// exactly one writer per receiving node (corner values travel on corner
// paths, never on side paths).
func TestTrimRegions(t *testing.T) {
	s, err := NewSolver2D(8, 6, fluid.DefaultParams(), allFluid)
	if err != nil {
		t.Fatal(err)
	}
	// East side, population 5 (c = (1,1)): the y=0 entry is corner-owned.
	r := s.sendRegion(5, decomp.East)
	if r.Y0 != 1 || r.NY != 5 {
		t.Errorf("East pop5 region %v, want Y0=1 NY=5", r)
	}
	// East side, population 8 (c = (1,-1)): the top entry is trimmed.
	r = s.sendRegion(8, decomp.East)
	if r.Y0 != 0 || r.NY != 5 {
		t.Errorf("East pop8 region %v, want Y0=0 NY=5", r)
	}
	// Axis population 1 is untrimmed.
	r = s.sendRegion(1, decomp.East)
	if r.Y0 != 0 || r.NY != 6 {
		t.Errorf("East pop1 region %v, want full side", r)
	}
	// Corner regions stay 1x1.
	r = s.sendRegion(5, decomp.NorthEast)
	if r.Len() != 1 {
		t.Errorf("corner region %v, want single node", r)
	}
	// Sender and receiver regions have matching sizes.
	for _, d := range decomp.Dirs(decomp.Full) {
		for _, i := range outgoing2[d] {
			send := s.sendRegion(i, d)
			recv := s.recvRegion(i, d.Opposite())
			if send.Len() != recv.Len() {
				t.Errorf("dir %v pop %d: send %v recv %v", d, i, send, recv)
			}
		}
	}
}

// TestMsgLenMatchesPack checks MsgLen agrees with the actual packed size.
func TestMsgLenMatchesPack(t *testing.T) {
	s, err := NewSolver2D(9, 7, fluid.DefaultParams(), allFluid)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decomp.Dirs(decomp.Full) {
		buf := s.Pack(0, d, nil)
		if len(buf) != s.MsgLen(0, d) {
			t.Errorf("dir %v: packed %d, MsgLen %d", d, len(buf), s.MsgLen(0, d))
		}
	}
}

// TestEquilibriumMomentsProperty: the D2Q9 equilibrium reproduces density
// and momentum for arbitrary (subsonic) states — the invariant that makes
// BGK relaxation conserve mass and momentum.
func TestEquilibriumMomentsProperty(t *testing.T) {
	f := func(r8, vx8, vy8 int8) bool {
		rho := 1 + float64(r8)/1000 // near unity
		vx := float64(vx8) / 1000   // |v| << c_s
		vy := float64(vy8) / 1000
		var srho, sx, sy float64
		for i := 0; i < Q2; i++ {
			fi := feq2(i, rho, vx, vy)
			srho += fi
			sx += fi * float64(cx2[i])
			sy += fi * float64(cy2[i])
		}
		return math.Abs(srho-rho) < 1e-13 &&
			math.Abs(sx-rho*vx) < 1e-13 && math.Abs(sy-rho*vy) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRelaxConservesProperty: one relax step at a random subsonic state
// conserves node mass and momentum exactly (no forcing).
func TestRelaxConservesProperty(t *testing.T) {
	f := func(seed int8) bool {
		p := fluid.DefaultParams()
		p.Nu = 0.08
		p.Eps = 0
		s, err := NewSolver2D(4, 4, p, allFluid)
		if err != nil {
			return false
		}
		// Perturb populations deterministically from the seed.
		for i := 0; i < Q2; i++ {
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					d := float64((int(seed)+i*7+x*3+y*5)%11) / 5000
					s.F[i].Set(x, y, s.F[i].At(x, y)+d)
				}
			}
		}
		s.macroscopics() // sync fluid variables with the perturbed F
		var m0, px0, py0 float64
		for i := 0; i < Q2; i++ {
			m0 += s.F[i].SumInterior()
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					px0 += s.F[i].At(x, y) * float64(cx2[i])
					py0 += s.F[i].At(x, y) * float64(cy2[i])
				}
			}
		}
		s.relax()
		var m1, px1, py1 float64
		for i := 0; i < Q2; i++ {
			m1 += s.F[i].SumInterior()
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					px1 += s.F[i].At(x, y) * float64(cx2[i])
					py1 += s.F[i].At(x, y) * float64(cy2[i])
				}
			}
		}
		return math.Abs(m1-m0) < 1e-12 && math.Abs(px1-px0) < 1e-12 && math.Abs(py1-py0) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInletOutletThroughflow: a jet enters from the left inlet and leaves
// through the right outlet; a rightward stream develops and stays stable
// (the flue-pipe boundary conditions in isolation).
func TestInletOutletThroughflow(t *testing.T) {
	nx, ny := 30, 12
	m := fluid.ChannelMask2D(nx, ny)
	for y := 1; y < ny-1; y++ {
		m.Set(0, y, fluid.Inlet)
		m.Set(nx-1, y, fluid.Outlet)
	}
	p := fluid.DefaultParams()
	p.Nu = 0.05
	p.Eps = 0.005
	p.InletVx = 0.05
	s, err := NewSolver2D(nx, ny, p, maskFrom(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		s.StepSerial(false, false)
	}
	if mid := s.Vx.At(nx/2, ny/2); mid < 0.01 {
		t.Errorf("midstream velocity %.4g, want rightward flow > 0.01", mid)
	}
	if v := s.Vx.MaxAbsInterior(); v > 0.5 {
		t.Errorf("unstable: max velocity %.3g", v)
	}
}

// TestDumpRestoreRoundTrip: DumpFields/RestoreFields reproduce the solver
// bit-for-bit, including ghost storage, mid-simulation.
func TestDumpRestoreRoundTrip(t *testing.T) {
	nx, ny := 12, 10
	p := channelParams(0.08, 1e-5)
	a, err := NewSolver2D(nx, ny, p, maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		a.StepSerial(true, false)
	}
	fields := a.DumpFields()
	b, err := NewSolver2D(nx, ny, p, maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFields(fields); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.StepSerial(true, false)
		b.StepSerial(true, false)
	}
	for i := 0; i < Q2; i++ {
		if !a.F[i].InteriorEqual(b.F[i], 0) {
			t.Fatalf("population %d diverged after restore", i)
		}
	}
	// Restore rejects missing and mis-sized fields.
	delete(fields, "f3")
	if err := b.RestoreFields(fields); err == nil {
		t.Error("restore with missing field accepted")
	}
	fields["f3"] = []float64{1, 2}
	if err := b.RestoreFields(fields); err == nil {
		t.Error("restore with short field accepted")
	}
}
