package lbm

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/fluid"
)

// jetMask2D builds a mask exercising every boundary branch of the relax
// kernel: channel walls, an inlet column, an outlet column, and an
// interior obstacle so several rows lose the all-open fast path.
func jetMask2D(nx, ny int) *fluid.Mask2D {
	m := fluid.ChannelMask2D(nx, ny)
	m.FillRect(0, 1, 1, ny-1, fluid.Inlet)
	m.FillRect(nx-1, 1, nx, ny-1, fluid.Outlet)
	m.FillRect(nx/3, ny/3, nx/3+3, ny/3+4, fluid.Wall)
	return m
}

func jetMask3D(nx, ny, nz int) *fluid.Mask3D {
	m := fluid.ChannelMask3D(nx, ny, nz)
	for z := 1; z < nz-1; z++ {
		for y := 1; y < ny-1; y++ {
			m.Set(0, y, z, fluid.Inlet)
			m.Set(nx-1, y, z, fluid.Outlet)
		}
	}
	for z := nz / 3; z < nz/3+2; z++ {
		for y := ny / 3; y < ny/3+3; y++ {
			m.Set(nx/2, y, z, fluid.Wall)
		}
	}
	return m
}

func testParams() fluid.Params {
	par := fluid.DefaultParams()
	par.Nu = 0.05
	par.Eps = 0.01
	par.ForceX = 1e-5
	par.InletVx = 0.04
	return par
}

// workerCounts are the budgets every parallel-identity test sweeps:
// serial, even split, a count that does not divide the row count, and
// whatever the machine would default to.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestParallelIdentity2D requires the worker-slab step to be bit-identical
// to the serial step at every worker count — same populations, same
// macroscopic fields, after enough steps for boundary effects to cross
// slab seams.
func TestParallelIdentity2D(t *testing.T) {
	const nx, ny, steps = 36, 29, 40
	m := jetMask2D(nx, ny)
	mask := func(x, y int) fluid.CellType { return m.At(x, y) }

	ref, err := NewSolver2D(nx, ny, testParams(), mask)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < steps; n++ {
		ref.StepSerial(false, false)
	}

	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("w%d", w), func(t *testing.T) {
			s, err := NewSolver2D(nx, ny, testParams(), mask)
			if err != nil {
				t.Fatal(err)
			}
			s.SetWorkers(w)
			for n := 0; n < steps; n++ {
				s.StepSerial(false, false)
			}
			for i := 0; i < Q2; i++ {
				compareBits(t, fmt.Sprintf("F[%d]", i), ref.F[i].Data(), s.F[i].Data())
			}
			compareBits(t, "Rho", ref.Rho.Data(), s.Rho.Data())
			compareBits(t, "Vx", ref.Vx.Data(), s.Vx.Data())
			compareBits(t, "Vy", ref.Vy.Data(), s.Vy.Data())
		})
	}
}

func TestParallelIdentity3D(t *testing.T) {
	const nx, ny, nz, steps = 14, 11, 13, 25
	m := jetMask3D(nx, ny, nz)
	mask := func(x, y, z int) fluid.CellType { return m.At(x, y, z) }

	ref, err := NewSolver3D(nx, ny, nz, testParams(), mask)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < steps; n++ {
		ref.StepSerial(false, false, true)
	}

	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("w%d", w), func(t *testing.T) {
			s, err := NewSolver3D(nx, ny, nz, testParams(), mask)
			if err != nil {
				t.Fatal(err)
			}
			s.SetWorkers(w)
			for n := 0; n < steps; n++ {
				s.StepSerial(false, false, true)
			}
			for i := 0; i < Q3; i++ {
				compareBits(t, fmt.Sprintf("F[%d]", i), ref.F[i].Data(), s.F[i].Data())
			}
			compareBits(t, "Rho", ref.Rho.Data(), s.Rho.Data())
			compareBits(t, "Vx", ref.Vx.Data(), s.Vx.Data())
			compareBits(t, "Vy", ref.Vy.Data(), s.Vy.Data())
			compareBits(t, "Vz", ref.Vz.Data(), s.Vz.Data())
		})
	}
}

// compareBits fails on the first element where the two slices are not
// the same float64 bits (== would accept -0 vs +0 and miss NaN drift).
func compareBits(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] || (want[i] == 0 && got[i] == 0 && signbit(want[i]) != signbit(got[i])) {
			t.Fatalf("%s[%d]: serial %v, parallel %v", name, i, want[i], got[i])
		}
	}
}

func signbit(f float64) bool { return f < 0 || (f == 0 && 1/f < 0) }

// TestStepZeroAlloc pins the steady-state allocation budget of the hot
// step at zero for both the serial and the parallel path. The filter
// plans, shift state, and exchange buffers are all preallocated; a
// regression here shows up as GC pressure at scale.
func TestStepZeroAlloc(t *testing.T) {
	m2 := jetMask2D(24, 19)
	s2, err := NewSolver2D(24, 19, testParams(), func(x, y int) fluid.CellType { return m2.At(x, y) })
	if err != nil {
		t.Fatal(err)
	}
	m3 := jetMask3D(10, 9, 8)
	s3, err := NewSolver3D(10, 9, 8, testParams(), func(x, y, z int) fluid.CellType { return m3.At(x, y, z) })
	if err != nil {
		t.Fatal(err)
	}
	// Periodic axes exercise the Pack/Unpack exchange path too.
	for name, step := range map[string]func(){
		"2D/serial": func() { s2.StepSerial(true, false) },
		"3D/serial": func() { s3.StepSerial(false, false, true) },
	} {
		step() // warm up once outside the measurement
		if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
			t.Errorf("%s: %v allocs per step, want 0", name, allocs)
		}
	}
	// The parallel path allocates nothing on the submitting goroutine
	// either (tasks are sent by value to the warm shared pool).
	s2.SetWorkers(2)
	s3.SetWorkers(2)
	s2.StepSerial(true, false)
	s3.StepSerial(false, false, true)
	if allocs := testing.AllocsPerRun(10, func() { s2.StepSerial(true, false) }); allocs != 0 {
		t.Errorf("2D/w2: %v allocs per step, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { s3.StepSerial(false, false, true) }); allocs != 0 {
		t.Errorf("3D/w2: %v allocs per step, want 0", allocs)
	}
}
