package lbm

import (
	"math"
	"testing"

	"repro/internal/decomp"
	"repro/internal/fluid"
)

func mask3From(m *fluid.Mask3D) func(x, y, z int) fluid.CellType {
	return func(x, y, z int) fluid.CellType { return m.At(x, y, z) }
}

func allFluid3(x, y, z int) fluid.CellType { return fluid.Interior }

// TestPoiseuille3D drives plane-Poiseuille flow between plates (walls on
// the y boundaries, periodic in x and z) and compares the profile.
func TestPoiseuille3D(t *testing.T) {
	nx, ny, nz := 4, 15, 4
	nu, g := 0.1, 2e-5
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0
	p.ForceX = g
	s, err := NewSolver3D(nx, ny, nz, p, mask3From(fluid.ChannelMask3D(nx, ny, nz)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		s.StepSerial(true, false, true)
	}
	y0, y1 := 0.5, float64(ny)-1.5
	umax := fluid.PoiseuilleMax(y0, y1, g, nu)
	worst := 0.0
	for y := 1; y < ny-1; y++ {
		want := fluid.PoiseuilleProfile(float64(y), y0, y1, g, nu)
		got := s.Vx.At(nx/2, y, nz/2)
		if rel := math.Abs(got-want) / umax; rel > worst {
			worst = rel
		}
	}
	if worst > 0.03 {
		t.Errorf("3D LB Poiseuille relative error %.4g, want < 3%%", worst)
	}
	// The flow must be uniform along the periodic axes.
	if d := math.Abs(s.Vx.At(0, ny/2, 0) - s.Vx.At(nx-1, ny/2, nz-1)); d > 1e-12 {
		t.Errorf("flow not uniform along periodic axes: %.3g", d)
	}
}

// TestMass3D checks exact mass conservation in the closed 3D channel.
func TestMass3D(t *testing.T) {
	nx, ny, nz := 6, 8, 6
	p := fluid.DefaultParams()
	p.Nu = 0.05
	p.Eps = 0
	p.ForceX = 1e-5
	s, err := NewSolver3D(nx, ny, nz, p, mask3From(fluid.ChannelMask3D(nx, ny, nz)))
	if err != nil {
		t.Fatal(err)
	}
	mass := func() float64 {
		total := 0.0
		for i := 0; i < Q3; i++ {
			total += s.F[i].SumInterior()
		}
		return total
	}
	m0 := mass()
	for i := 0; i < 200; i++ {
		s.StepSerial(true, false, true)
	}
	if rel := math.Abs(mass()-m0) / m0; rel > 1e-12 {
		t.Errorf("3D mass drifted by %.3g", rel)
	}
}

// TestShearWaveDecay3D measures the D3Q15 viscosity.
func TestShearWaveDecay3D(t *testing.T) {
	n := 16
	nu := 0.05
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0
	s, err := NewSolver3D(n, n, n, p, allFluid3)
	if err != nil {
		t.Fatal(err)
	}
	amp := 1e-4
	k := 2 * math.Pi / float64(n)
	for z := -1; z <= n; z++ {
		for y := -1; y <= n; y++ {
			for x := -1; x <= n; x++ {
				s.Vx.Set(x, y, z, amp*math.Sin(k*float64(y)))
			}
		}
	}
	s.InitEquilibrium()
	steps := 200
	for i := 0; i < steps; i++ {
		s.StepSerial(true, true, true)
	}
	got := s.Vx.At(0, n/4, 0)
	want := amp * math.Exp(-nu*k*k*float64(steps))
	// BGK decay matches nu k^2 to leading order with an O(k^4) dispersion
	// correction: ~3% at this wavenumber (k = 2 pi / 16).
	if rel := math.Abs(got-want) / want; rel > 0.06 {
		t.Errorf("3D shear decay: got %.6g want %.6g (rel %.3g)", got, want, rel)
	}
}

// TestStationary3D: uniform fluid at rest stays exactly at rest.
func TestStationary3D(t *testing.T) {
	s, err := NewSolver3D(6, 6, 6, fluid.DefaultParams(), allFluid3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s.StepSerial(true, true, true)
	}
	if v := s.Vx.MaxAbsInterior() + s.Vy.MaxAbsInterior() + s.Vz.MaxAbsInterior(); v > 1e-14 {
		t.Errorf("spurious 3D velocity %.3g", v)
	}
}

// TestSweepRegions checks the extended-strip geometry of the x/y/z sweeps.
func TestSweepRegions(t *testing.T) {
	s, err := NewSolver3D(5, 6, 7, fluid.DefaultParams(), allFluid3)
	if err != nil {
		t.Fatal(err)
	}
	// x sweep: bare faces.
	r := s.sweepRegion(decomp.East3, true)
	if r.NX != 1 || r.NY != 6 || r.NZ != 7 || r.X0 != 4 {
		t.Errorf("east sweep region %+v", r)
	}
	// y sweep: extended over x ghosts.
	r = s.sweepRegion(decomp.North3, true)
	if r.NX != 7 || r.X0 != -1 || r.NY != 1 || r.Y0 != 5 {
		t.Errorf("north sweep region %+v", r)
	}
	// z sweep: extended over x and y ghosts.
	r = s.sweepRegion(decomp.Up3, false)
	if r.NX != 7 || r.NY != 8 || r.NZ != 1 || r.Z0 != 7 || r.Y0 != -1 {
		t.Errorf("up sweep region %+v", r)
	}
	// MsgLen = 5 populations x strip nodes and matches Pack.
	for _, d := range decomp.Dirs3() {
		buf := s.Pack(0, d, nil)
		if len(buf) != s.MsgLen(0, d) {
			t.Errorf("dir %v: packed %d, MsgLen %d", d, len(buf), s.MsgLen(0, d))
		}
	}
}

// TestPhaseContract3D checks the sweep phase structure.
func TestPhaseContract3D(t *testing.T) {
	s, err := NewSolver3D(5, 5, 5, fluid.DefaultParams(), allFluid3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases() != 4 {
		t.Fatalf("Phases = %d, want 4", s.Phases())
	}
	wantDirs := [][]decomp.Dir3{
		{decomp.West3, decomp.East3},
		{decomp.South3, decomp.North3},
		{decomp.Down3, decomp.Up3},
		nil,
	}
	for ph := 0; ph < 4; ph++ {
		dirs := s.ExchangeDirs(ph)
		if len(dirs) != len(wantDirs[ph]) {
			t.Errorf("phase %d dirs = %v", ph, dirs)
			continue
		}
		for i := range dirs {
			if dirs[i] != wantDirs[ph][i] {
				t.Errorf("phase %d dirs = %v, want %v", ph, dirs, wantDirs[ph])
			}
		}
		if s.Exchanges(ph) != (ph <= 2) {
			t.Errorf("Exchanges(%d) = %v", ph, s.Exchanges(ph))
		}
	}
}
