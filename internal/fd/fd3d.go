package fd

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/filter"
	"repro/internal/fluid"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/pool"
)

// Solver3D integrates one box subregion of the 3D isothermal Navier-Stokes
// equations with the same scheme as Solver2D plus the V_z momentum equation
// (section 6). It communicates 4 variables per boundary node: Vx, Vy, Vz
// after the velocity update and rho after the density update.
//
// When Workers > 1 the inner phases run as z-plane slabs on the shared
// pool, bit-identical to the serial sweep.
type Solver3D struct {
	Par fluid.Params

	Mask func(x, y, z int) fluid.CellType

	// Workers is the intra-rank slab count; <= 1 runs the serial sweeps.
	Workers int

	Rho, Vx, Vy, Vz *grid.Field3D

	nVx, nVy, nVz, nRho *grid.Field3D
	scratch             []float64

	// Static per-node structure cached at construction (see Solver2D).
	cells   []fluid.CellType
	rowOpen []bool // indexed z*ny + y
	plan    *filter.Plan3D

	par          pool.Runner
	velFn, denFn func(lo, hi int)
	runFn        filter.RunFunc
	xbuf         []float64

	// Field lists built once at construction so the steady-state step
	// allocates nothing (see Solver2D).
	filterFields []*grid.Field3D
	phaseFields  [2][]*grid.Field3D
}

// NewSolver3D allocates a 3D solver initialized to rho = Rho0, V = 0.
func NewSolver3D(nx, ny, nz int, par fluid.Params, mask func(x, y, z int) fluid.CellType) (*Solver3D, error) {
	if err := par.Check(); err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, fmt.Errorf("fd: nil mask")
	}
	s := &Solver3D{
		Par:     par,
		Mask:    mask,
		Rho:     grid.NewField3D(nx, ny, nz, 1),
		Vx:      grid.NewField3D(nx, ny, nz, 1),
		Vy:      grid.NewField3D(nx, ny, nz, 1),
		Vz:      grid.NewField3D(nx, ny, nz, 1),
		nVx:     grid.NewField3D(nx, ny, nz, 1),
		nVy:     grid.NewField3D(nx, ny, nz, 1),
		nVz:     grid.NewField3D(nx, ny, nz, 1),
		nRho:    grid.NewField3D(nx, ny, nz, 1),
		scratch: make([]float64, nx*ny*nz),
		cells:   make([]fluid.CellType, nx*ny*nz),
		rowOpen: make([]bool, ny*nz),
		plan:    filter.NewPlan3D(nx, ny, nz, mask),
	}
	s.filterFields = []*grid.Field3D{s.Rho, s.Vx, s.Vy, s.Vz}
	s.phaseFields = [2][]*grid.Field3D{{s.Vx, s.Vy, s.Vz}, {s.Rho}}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			open := true
			for x := 0; x < nx; x++ {
				c := mask(x, y, z)
				s.cells[(z*ny+y)*nx+x] = c
				if c != fluid.Interior {
					open = false
				}
			}
			s.rowOpen[z*ny+y] = open
		}
	}
	s.velFn = s.velocityPlanes
	s.denFn = s.densityPlanes
	s.runFn = s.run
	s.Rho.Fill(par.Rho0)
	return s, nil
}

// SetWorkers sets the intra-rank slab count.
func (s *Solver3D) SetWorkers(n int) { s.Workers = n }

func (s *Solver3D) run(n int, fn func(lo, hi int)) { s.par.Run(s.Workers, n, fn) }

// Phases returns the number of compute phases per step.
func (s *Solver3D) Phases() int { return 3 }

// Exchanges reports whether a halo exchange follows the phase.
func (s *Solver3D) Exchanges(phase int) bool { return phase == 0 || phase == 1 }

// ExchangeDirs returns the faces exchanged after a phase: all six for the
// velocity and density phases (star stencil, no sweep ordering needed).
func (s *Solver3D) ExchangeDirs(phase int) []decomp.Dir3 {
	if s.Exchanges(phase) {
		return decomp.Dirs3()
	}
	return nil
}

// Compute runs one compute phase.
func (s *Solver3D) Compute(phase int) {
	switch phase {
	case 0:
		s.computeVelocity()
	case 1:
		s.computeDensity()
	case 2:
		s.applyFilter()
	default:
		panic(fmt.Sprintf("fd: invalid phase %d", phase))
	}
}

func (s *Solver3D) computeVelocity() {
	s.run(s.Vx.NZ, s.velFn)
	s.Vx.Swap(s.nVx)
	s.Vy.Swap(s.nVy)
	s.Vz.Swap(s.nVz)
}

// velocityPlanes updates the velocity of z-planes [z0, z1). The momentum
// derivatives are written out term by term (the serial version's grad/lap
// helper closures, manually inlined with identical expressions) so the hot
// loop builds no closures.
func (s *Solver3D) velocityPlanes(z0, z1 int) {
	p := s.Par
	dt, nu, cs2 := p.Dt, p.Nu, p.Cs*p.Cs
	nx, ny := s.Vx.NX, s.Vx.NY
	for z := z0; z < z1; z++ {
		for y := 0; y < ny; y++ {
			open := s.rowOpen[z*ny+y]
			row := (z*ny + y) * nx
			for x := 0; x < nx; x++ {
				if !open {
					switch s.cells[row+x] {
					case fluid.Wall:
						s.nVx.Set(x, y, z, 0)
						s.nVy.Set(x, y, z, 0)
						s.nVz.Set(x, y, z, 0)
						continue
					case fluid.Inlet:
						s.nVx.Set(x, y, z, p.InletVx)
						s.nVy.Set(x, y, z, p.InletVy)
						s.nVz.Set(x, y, z, p.InletVz)
						continue
					case fluid.Outlet:
						s.nVx.Set(x, y, z, s.Vx.At(x, y, z))
						s.nVy.Set(x, y, z, s.Vy.At(x, y, z))
						s.nVz.Set(x, y, z, s.Vz.At(x, y, z))
						continue
					}
				}
				vx, vy, vz := s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)
				rho := s.Rho.At(x, y, z)

				gxx := 0.5 * (s.Vx.At(x+1, y, z) - s.Vx.At(x-1, y, z))
				gxy := 0.5 * (s.Vx.At(x, y+1, z) - s.Vx.At(x, y-1, z))
				gxz := 0.5 * (s.Vx.At(x, y, z+1) - s.Vx.At(x, y, z-1))
				gyx := 0.5 * (s.Vy.At(x+1, y, z) - s.Vy.At(x-1, y, z))
				gyy := 0.5 * (s.Vy.At(x, y+1, z) - s.Vy.At(x, y-1, z))
				gyz := 0.5 * (s.Vy.At(x, y, z+1) - s.Vy.At(x, y, z-1))
				gzx := 0.5 * (s.Vz.At(x+1, y, z) - s.Vz.At(x-1, y, z))
				gzy := 0.5 * (s.Vz.At(x, y+1, z) - s.Vz.At(x, y-1, z))
				gzz := 0.5 * (s.Vz.At(x, y, z+1) - s.Vz.At(x, y, z-1))
				rx := 0.5 * (s.Rho.At(x+1, y, z) - s.Rho.At(x-1, y, z))
				ry := 0.5 * (s.Rho.At(x, y+1, z) - s.Rho.At(x, y-1, z))
				rz := 0.5 * (s.Rho.At(x, y, z+1) - s.Rho.At(x, y, z-1))
				lapVx := s.Vx.At(x+1, y, z) + s.Vx.At(x-1, y, z) +
					s.Vx.At(x, y+1, z) + s.Vx.At(x, y-1, z) +
					s.Vx.At(x, y, z+1) + s.Vx.At(x, y, z-1) - 6*s.Vx.At(x, y, z)
				lapVy := s.Vy.At(x+1, y, z) + s.Vy.At(x-1, y, z) +
					s.Vy.At(x, y+1, z) + s.Vy.At(x, y-1, z) +
					s.Vy.At(x, y, z+1) + s.Vy.At(x, y, z-1) - 6*s.Vy.At(x, y, z)
				lapVz := s.Vz.At(x+1, y, z) + s.Vz.At(x-1, y, z) +
					s.Vz.At(x, y+1, z) + s.Vz.At(x, y-1, z) +
					s.Vz.At(x, y, z+1) + s.Vz.At(x, y, z-1) - 6*s.Vz.At(x, y, z)

				s.nVx.Set(x, y, z, vx+dt*(-(vx*gxx+vy*gxy+vz*gxz)-cs2/rho*rx+nu*lapVx+p.ForceX))
				s.nVy.Set(x, y, z, vy+dt*(-(vx*gyx+vy*gyy+vz*gyz)-cs2/rho*ry+nu*lapVy+p.ForceY))
				s.nVz.Set(x, y, z, vz+dt*(-(vx*gzx+vy*gzy+vz*gzz)-cs2/rho*rz+nu*lapVz+p.ForceZ))
			}
		}
	}
}

func (s *Solver3D) computeDensity() {
	s.run(s.Rho.NZ, s.denFn)
	s.Rho.Swap(s.nRho)
}

// densityPlanes updates the density of z-planes [z0, z1).
func (s *Solver3D) densityPlanes(z0, z1 int) {
	p := s.Par
	dt := p.Dt
	nx, ny := s.Rho.NX, s.Rho.NY
	for z := z0; z < z1; z++ {
		for y := 0; y < ny; y++ {
			open := s.rowOpen[z*ny+y]
			row := (z*ny + y) * nx
			for x := 0; x < nx; x++ {
				if !open {
					switch s.cells[row+x] {
					case fluid.Inlet:
						s.nRho.Set(x, y, z, p.InletRho)
						continue
					case fluid.Outlet:
						s.nRho.Set(x, y, z, p.OutletRho)
						continue
					}
				}
				dFx := 0.5 * (s.Rho.At(x+1, y, z)*s.Vx.At(x+1, y, z) - s.Rho.At(x-1, y, z)*s.Vx.At(x-1, y, z))
				dFy := 0.5 * (s.Rho.At(x, y+1, z)*s.Vy.At(x, y+1, z) - s.Rho.At(x, y-1, z)*s.Vy.At(x, y-1, z))
				dFz := 0.5 * (s.Rho.At(x, y, z+1)*s.Vz.At(x, y, z+1) - s.Rho.At(x, y, z-1)*s.Vz.At(x, y, z-1))
				s.nRho.Set(x, y, z, s.Rho.At(x, y, z)-dt*(dFx+dFy+dFz))
			}
		}
	}
}

func (s *Solver3D) applyFilter() {
	s.plan.Apply(s.filterFields, s.Par.Eps, s.scratch, s.runFn)
}

func (s *Solver3D) fields(phase int) []*grid.Field3D {
	if phase == 0 {
		return s.phaseFields[0]
	}
	return s.phaseFields[1]
}

// Pack extracts the interior face strip sent to the neighbour at dir after
// the given phase (ghost-fill convention; star stencil, faces only).
func (s *Solver3D) Pack(phase int, dir decomp.Dir3, buf []float64) []float64 {
	return halo.PackSend3D(s.fields(phase), dir, true, buf)
}

// Unpack stores data received from the neighbour at dir into the ghost
// face strip on that side.
func (s *Solver3D) Unpack(phase int, dir decomp.Dir3, buf []float64) {
	halo.UnpackRecv3D(s.fields(phase), dir, true, buf)
}

// MsgLen returns the message length for a phase and face direction.
func (s *Solver3D) MsgLen(phase int, dir decomp.Dir3) int {
	return halo.MsgLen3D(s.fields(phase), dir)
}

// StepSerial advances a standalone solver one step with periodic wrapping
// on the requested axes.
func (s *Solver3D) StepSerial(periodicX, periodicY, periodicZ bool) {
	for ph := 0; ph < s.Phases(); ph++ {
		s.Compute(ph)
		if s.Exchanges(ph) {
			s.selfExchange(ph, periodicX, periodicY, periodicZ)
		}
	}
}

func (s *Solver3D) selfExchange(phase int, px, py, pz bool) {
	wrap := func(a, b decomp.Dir3) {
		s.xbuf = s.Pack(phase, a, s.xbuf[:0])
		s.Unpack(phase, b, s.xbuf)
		s.xbuf = s.Pack(phase, b, s.xbuf[:0])
		s.Unpack(phase, a, s.xbuf)
	}
	if px {
		wrap(decomp.East3, decomp.West3)
	}
	if py {
		wrap(decomp.North3, decomp.South3)
	}
	if pz {
		wrap(decomp.Up3, decomp.Down3)
	}
}
