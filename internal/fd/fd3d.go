package fd

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/filter"
	"repro/internal/fluid"
	"repro/internal/grid"
	"repro/internal/halo"
)

// Solver3D integrates one box subregion of the 3D isothermal Navier-Stokes
// equations with the same scheme as Solver2D plus the V_z momentum equation
// (section 6). It communicates 4 variables per boundary node: Vx, Vy, Vz
// after the velocity update and rho after the density update.
type Solver3D struct {
	Par fluid.Params

	Mask func(x, y, z int) fluid.CellType

	Rho, Vx, Vy, Vz *grid.Field3D

	nVx, nVy, nVz, nRho *grid.Field3D
	scratch             []float64
}

// NewSolver3D allocates a 3D solver initialized to rho = Rho0, V = 0.
func NewSolver3D(nx, ny, nz int, par fluid.Params, mask func(x, y, z int) fluid.CellType) (*Solver3D, error) {
	if err := par.Check(); err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, fmt.Errorf("fd: nil mask")
	}
	s := &Solver3D{
		Par:     par,
		Mask:    mask,
		Rho:     grid.NewField3D(nx, ny, nz, 1),
		Vx:      grid.NewField3D(nx, ny, nz, 1),
		Vy:      grid.NewField3D(nx, ny, nz, 1),
		Vz:      grid.NewField3D(nx, ny, nz, 1),
		nVx:     grid.NewField3D(nx, ny, nz, 1),
		nVy:     grid.NewField3D(nx, ny, nz, 1),
		nVz:     grid.NewField3D(nx, ny, nz, 1),
		nRho:    grid.NewField3D(nx, ny, nz, 1),
		scratch: make([]float64, nx*ny*nz),
	}
	s.Rho.Fill(par.Rho0)
	return s, nil
}

// Phases returns the number of compute phases per step.
func (s *Solver3D) Phases() int { return 3 }

// Exchanges reports whether a halo exchange follows the phase.
func (s *Solver3D) Exchanges(phase int) bool { return phase == 0 || phase == 1 }

// ExchangeDirs returns the faces exchanged after a phase: all six for the
// velocity and density phases (star stencil, no sweep ordering needed).
func (s *Solver3D) ExchangeDirs(phase int) []decomp.Dir3 {
	if s.Exchanges(phase) {
		return decomp.Dirs3()
	}
	return nil
}

// Compute runs one compute phase.
func (s *Solver3D) Compute(phase int) {
	switch phase {
	case 0:
		s.computeVelocity()
	case 1:
		s.computeDensity()
	case 2:
		s.applyFilter()
	default:
		panic(fmt.Sprintf("fd: invalid phase %d", phase))
	}
}

func (s *Solver3D) computeVelocity() {
	p := s.Par
	dt, nu, cs2 := p.Dt, p.Nu, p.Cs*p.Cs
	for z := 0; z < s.Vx.NZ; z++ {
		for y := 0; y < s.Vx.NY; y++ {
			for x := 0; x < s.Vx.NX; x++ {
				switch s.Mask(x, y, z) {
				case fluid.Wall:
					s.nVx.Set(x, y, z, 0)
					s.nVy.Set(x, y, z, 0)
					s.nVz.Set(x, y, z, 0)
					continue
				case fluid.Inlet:
					s.nVx.Set(x, y, z, p.InletVx)
					s.nVy.Set(x, y, z, p.InletVy)
					s.nVz.Set(x, y, z, p.InletVz)
					continue
				case fluid.Outlet:
					s.nVx.Set(x, y, z, s.Vx.At(x, y, z))
					s.nVy.Set(x, y, z, s.Vy.At(x, y, z))
					s.nVz.Set(x, y, z, s.Vz.At(x, y, z))
					continue
				}
				vx, vy, vz := s.Vx.At(x, y, z), s.Vy.At(x, y, z), s.Vz.At(x, y, z)
				rho := s.Rho.At(x, y, z)

				grad := func(f *grid.Field3D) (gx, gy, gz float64) {
					gx = 0.5 * (f.At(x+1, y, z) - f.At(x-1, y, z))
					gy = 0.5 * (f.At(x, y+1, z) - f.At(x, y-1, z))
					gz = 0.5 * (f.At(x, y, z+1) - f.At(x, y, z-1))
					return
				}
				lap := func(f *grid.Field3D) float64 {
					return f.At(x+1, y, z) + f.At(x-1, y, z) +
						f.At(x, y+1, z) + f.At(x, y-1, z) +
						f.At(x, y, z+1) + f.At(x, y, z-1) - 6*f.At(x, y, z)
				}
				gxx, gxy, gxz := grad(s.Vx)
				gyx, gyy, gyz := grad(s.Vy)
				gzx, gzy, gzz := grad(s.Vz)
				rx, ry, rz := grad(s.Rho)

				adv := func(gx, gy, gz float64) float64 { return vx*gx + vy*gy + vz*gz }
				s.nVx.Set(x, y, z, vx+dt*(-adv(gxx, gxy, gxz)-cs2/rho*rx+nu*lap(s.Vx)+p.ForceX))
				s.nVy.Set(x, y, z, vy+dt*(-adv(gyx, gyy, gyz)-cs2/rho*ry+nu*lap(s.Vy)+p.ForceY))
				s.nVz.Set(x, y, z, vz+dt*(-adv(gzx, gzy, gzz)-cs2/rho*rz+nu*lap(s.Vz)+p.ForceZ))
			}
		}
	}
	s.Vx.Swap(s.nVx)
	s.Vy.Swap(s.nVy)
	s.Vz.Swap(s.nVz)
}

func (s *Solver3D) computeDensity() {
	p := s.Par
	dt := p.Dt
	for z := 0; z < s.Rho.NZ; z++ {
		for y := 0; y < s.Rho.NY; y++ {
			for x := 0; x < s.Rho.NX; x++ {
				switch s.Mask(x, y, z) {
				case fluid.Inlet:
					s.nRho.Set(x, y, z, p.InletRho)
					continue
				case fluid.Outlet:
					s.nRho.Set(x, y, z, p.OutletRho)
					continue
				}
				dFx := 0.5 * (s.Rho.At(x+1, y, z)*s.Vx.At(x+1, y, z) - s.Rho.At(x-1, y, z)*s.Vx.At(x-1, y, z))
				dFy := 0.5 * (s.Rho.At(x, y+1, z)*s.Vy.At(x, y+1, z) - s.Rho.At(x, y-1, z)*s.Vy.At(x, y-1, z))
				dFz := 0.5 * (s.Rho.At(x, y, z+1)*s.Vz.At(x, y, z+1) - s.Rho.At(x, y, z-1)*s.Vz.At(x, y, z-1))
				s.nRho.Set(x, y, z, s.Rho.At(x, y, z)-dt*(dFx+dFy+dFz))
			}
		}
	}
	s.Rho.Swap(s.nRho)
}

func (s *Solver3D) applyFilter() {
	filter.Apply3D([]*grid.Field3D{s.Rho, s.Vx, s.Vy, s.Vz}, s.Par.Eps, s.Mask, s.scratch)
}

func (s *Solver3D) fields(phase int) []*grid.Field3D {
	if phase == 0 {
		return []*grid.Field3D{s.Vx, s.Vy, s.Vz}
	}
	return []*grid.Field3D{s.Rho}
}

// Pack extracts the interior face strip sent to the neighbour at dir after
// the given phase (ghost-fill convention; star stencil, faces only).
func (s *Solver3D) Pack(phase int, dir decomp.Dir3, buf []float64) []float64 {
	return halo.PackSend3D(s.fields(phase), dir, true, buf)
}

// Unpack stores data received from the neighbour at dir into the ghost
// face strip on that side.
func (s *Solver3D) Unpack(phase int, dir decomp.Dir3, buf []float64) {
	halo.UnpackRecv3D(s.fields(phase), dir, true, buf)
}

// MsgLen returns the message length for a phase and face direction.
func (s *Solver3D) MsgLen(phase int, dir decomp.Dir3) int {
	return halo.MsgLen3D(s.fields(phase), dir)
}

// StepSerial advances a standalone solver one step with periodic wrapping
// on the requested axes.
func (s *Solver3D) StepSerial(periodicX, periodicY, periodicZ bool) {
	for ph := 0; ph < s.Phases(); ph++ {
		s.Compute(ph)
		if s.Exchanges(ph) {
			s.selfExchange(ph, periodicX, periodicY, periodicZ)
		}
	}
}

func (s *Solver3D) selfExchange(phase int, px, py, pz bool) {
	wrap := func(a, b decomp.Dir3) {
		buf := s.Pack(phase, a, nil)
		s.Unpack(phase, b, buf)
		buf = s.Pack(phase, b, buf[:0])
		s.Unpack(phase, a, buf)
	}
	if px {
		wrap(decomp.East3, decomp.West3)
	}
	if py {
		wrap(decomp.North3, decomp.South3)
	}
	if pz {
		wrap(decomp.Up3, decomp.Down3)
	}
}
