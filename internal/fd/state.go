package fd

import "fmt"

// MethodName identifies the 2D finite-difference method in dump files.
func (s *Solver2D) MethodName() string { return "fd2d" }

// DumpFields returns deep copies of the raw field storage (ghosts
// included), keyed by canonical names, for a migration dump file.
func (s *Solver2D) DumpFields() map[string][]float64 {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	return map[string][]float64{
		"rho": cp(s.Rho.Data()),
		"vx":  cp(s.Vx.Data()),
		"vy":  cp(s.Vy.Data()),
	}
}

// RestoreFields reloads raw field storage from a dump, reproducing the
// solver state bit-for-bit.
func (s *Solver2D) RestoreFields(fields map[string][]float64) error {
	for _, f := range []struct {
		name string
		dst  []float64
	}{
		{"rho", s.Rho.Data()},
		{"vx", s.Vx.Data()},
		{"vy", s.Vy.Data()},
	} {
		name, dst := f.name, f.dst
		src, ok := fields[name]
		if !ok {
			return fmt.Errorf("fd: dump missing field %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("fd: field %q has %d values, want %d", name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}

// MethodName identifies the 3D finite-difference method in dump files.
func (s *Solver3D) MethodName() string { return "fd3d" }

// DumpFields returns deep copies of the raw 3D field storage.
func (s *Solver3D) DumpFields() map[string][]float64 {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	return map[string][]float64{
		"rho": cp(s.Rho.Data()),
		"vx":  cp(s.Vx.Data()),
		"vy":  cp(s.Vy.Data()),
		"vz":  cp(s.Vz.Data()),
	}
}

// RestoreFields reloads raw 3D field storage from a dump.
func (s *Solver3D) RestoreFields(fields map[string][]float64) error {
	for _, f := range []struct {
		name string
		dst  []float64
	}{
		{"rho", s.Rho.Data()},
		{"vx", s.Vx.Data()},
		{"vy", s.Vy.Data()},
		{"vz", s.Vz.Data()},
	} {
		name, dst := f.name, f.dst
		src, ok := fields[name]
		if !ok {
			return fmt.Errorf("fd: dump missing field %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("fd: field %q has %d values, want %d", name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}
