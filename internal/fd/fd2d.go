// Package fd implements the explicit finite-difference method of section 6:
// a straightforward discretization of the isothermal Navier-Stokes
// equations 1-3 with centered differences in space and forward Euler in
// time, on a uniform orthogonal grid with dx = 1.
//
// For numerical stability the density equation is updated using the
// velocities at time t+dt: the velocities are computed first, and the
// density is computed as a separate step (this ordering makes the acoustic
// subsystem a symplectic-Euler update, which is neutrally stable where
// plain forward Euler would grow). The per-cycle sequence is exactly the
// paper's:
//
//	Calculate Vx, Vy   (inner)
//	Communicate Vx, Vy (boundary)
//	Calculate rho      (inner)
//	Communicate rho    (boundary)
//	Filter rho, Vx, Vy (inner)
//
// so the method sends two messages per neighbour per integration step and
// communicates 3 variables per boundary node in 2D (4 in 3D), the counts
// that drive its efficiency behaviour in figures 7-8.
//
// Like the lattice Boltzmann method, every inner phase writes each node
// from its own neighbourhood reads of the previous-step fields, so a
// rank's subregion is cut into row slabs (z-plane slabs in 3D) on the
// shared worker pool when Workers > 1; results are bit-identical to the
// serial sweep at any worker count (see internal/pool).
package fd

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/filter"
	"repro/internal/fluid"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/pool"
)

// Solver2D integrates one subregion (or a whole serial domain) of the 2D
// isothermal Navier-Stokes equations.
type Solver2D struct {
	Par fluid.Params

	// Mask gives the cell type at subregion-local coordinates; ghost
	// offsets (-1, NX, NY) must be answered too (walls beyond the domain,
	// fluid across a seam).
	Mask func(x, y int) fluid.CellType

	// Workers is the intra-rank slab count; <= 1 runs the serial sweeps.
	// Results are bit-identical at every value.
	Workers int

	Rho, Vx, Vy *grid.Field2D // current state, ghost depth 1

	nVx, nVy, nRho *grid.Field2D // next-step buffers
	scratch        []float64     // filter workspace

	// Static per-node structure cached at construction: interior cell
	// types and per-row all-Interior flags (the branch-light fast path).
	// Only interior coordinates are cached; ghost queries still go through
	// Mask (they occur only in the filter plan, precomputed once).
	cells   []fluid.CellType
	rowOpen []bool
	plan    *filter.Plan2D

	par          pool.Runner
	velFn, denFn func(lo, hi int)
	runFn        filter.RunFunc
	xbuf         []float64

	// Field lists built once at construction so the steady-state step
	// allocates nothing; Swap exchanges field contents, never these
	// pointers, so they stay valid across steps.
	filterFields []*grid.Field2D
	phaseFields  [2][]*grid.Field2D
}

// NewSolver2D allocates a solver for an nx-by-ny subregion. The fields are
// initialized to rho = Rho0, V = 0; callers overwrite them for other
// initial states.
func NewSolver2D(nx, ny int, par fluid.Params, mask func(x, y int) fluid.CellType) (*Solver2D, error) {
	if err := par.Check(); err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, fmt.Errorf("fd: nil mask")
	}
	s := &Solver2D{
		Par:  par,
		Mask: mask,
		Rho:  grid.NewField2D(nx, ny, 1),
		Vx:   grid.NewField2D(nx, ny, 1),
		Vy:   grid.NewField2D(nx, ny, 1),
		nVx:  grid.NewField2D(nx, ny, 1),
		nVy:  grid.NewField2D(nx, ny, 1),
		nRho: grid.NewField2D(nx, ny, 1),

		scratch: make([]float64, nx*ny),
		cells:   make([]fluid.CellType, nx*ny),
		rowOpen: make([]bool, ny),
		plan:    filter.NewPlan2D(nx, ny, mask),
	}
	s.filterFields = []*grid.Field2D{s.Rho, s.Vx, s.Vy}
	s.phaseFields = [2][]*grid.Field2D{{s.Vx, s.Vy}, {s.Rho}}
	for y := 0; y < ny; y++ {
		open := true
		for x := 0; x < nx; x++ {
			c := mask(x, y)
			s.cells[y*nx+x] = c
			if c != fluid.Interior {
				open = false
			}
		}
		s.rowOpen[y] = open
	}
	s.velFn = s.velocityRows
	s.denFn = s.densityRows
	s.runFn = s.run
	s.Rho.Fill(par.Rho0)
	return s, nil
}

// SetWorkers sets the intra-rank slab count (the core setup threads the
// per-rank budget through here).
func (s *Solver2D) SetWorkers(n int) { s.Workers = n }

func (s *Solver2D) run(n int, fn func(lo, hi int)) { s.par.Run(s.Workers, n, fn) }

// Phases returns the number of compute phases per integration step.
func (s *Solver2D) Phases() int { return 3 }

// Exchanges reports whether a halo exchange follows the given phase.
// Velocities are exchanged after phase 0 and density after phase 1; the
// filter phase needs no communication.
func (s *Solver2D) Exchanges(phase int) bool { return phase == 0 || phase == 1 }

// Compute runs one compute phase on the interior nodes.
func (s *Solver2D) Compute(phase int) {
	switch phase {
	case 0:
		s.computeVelocity()
	case 1:
		s.computeDensity()
	case 2:
		s.applyFilter()
	default:
		panic(fmt.Sprintf("fd: invalid phase %d", phase))
	}
}

// computeVelocity advances Vx, Vy by one forward-Euler step of the momentum
// equations 2-3 and applies the velocity boundary conditions. Every node
// writes only nVx/nVy at its own coordinates, so row slabs are
// write-disjoint; the swap happens after all slabs finish.
func (s *Solver2D) computeVelocity() {
	s.run(s.Vx.NY, s.velFn)
	s.Vx.Swap(s.nVx)
	s.Vy.Swap(s.nVy)
}

// velocityRows updates the velocity of rows [y0, y1).
func (s *Solver2D) velocityRows(y0, y1 int) {
	p := s.Par
	dt, nu, cs2 := p.Dt, p.Nu, p.Cs*p.Cs
	nx := s.Vx.NX
	for y := y0; y < y1; y++ {
		open := s.rowOpen[y]
		for x := 0; x < nx; x++ {
			if !open {
				switch s.cells[y*nx+x] {
				case fluid.Wall:
					s.nVx.Set(x, y, 0)
					s.nVy.Set(x, y, 0)
					continue
				case fluid.Inlet:
					s.nVx.Set(x, y, p.InletVx)
					s.nVy.Set(x, y, p.InletVy)
					continue
				case fluid.Outlet:
					// Open boundary: velocity convects out unchanged.
					s.nVx.Set(x, y, s.Vx.At(x, y))
					s.nVy.Set(x, y, s.Vy.At(x, y))
					continue
				}
			}
			vx, vy := s.Vx.At(x, y), s.Vy.At(x, y)
			rho := s.Rho.At(x, y)

			dVxdx := 0.5 * (s.Vx.At(x+1, y) - s.Vx.At(x-1, y))
			dVxdy := 0.5 * (s.Vx.At(x, y+1) - s.Vx.At(x, y-1))
			dVydx := 0.5 * (s.Vy.At(x+1, y) - s.Vy.At(x-1, y))
			dVydy := 0.5 * (s.Vy.At(x, y+1) - s.Vy.At(x, y-1))
			dRdx := 0.5 * (s.Rho.At(x+1, y) - s.Rho.At(x-1, y))
			dRdy := 0.5 * (s.Rho.At(x, y+1) - s.Rho.At(x, y-1))
			lapVx := s.Vx.At(x+1, y) + s.Vx.At(x-1, y) + s.Vx.At(x, y+1) + s.Vx.At(x, y-1) - 4*vx
			lapVy := s.Vy.At(x+1, y) + s.Vy.At(x-1, y) + s.Vy.At(x, y+1) + s.Vy.At(x, y-1) - 4*vy

			s.nVx.Set(x, y, vx+dt*(-vx*dVxdx-vy*dVxdy-cs2/rho*dRdx+nu*lapVx+p.ForceX))
			s.nVy.Set(x, y, vy+dt*(-vx*dVydx-vy*dVydy-cs2/rho*dRdy+nu*lapVy+p.ForceY))
		}
	}
}

// computeDensity advances rho by the continuity equation 1 using the
// just-updated velocities, then applies the density boundary conditions.
// The flux form conserves mass exactly over the interior.
func (s *Solver2D) computeDensity() {
	s.run(s.Rho.NY, s.denFn)
	s.Rho.Swap(s.nRho)
}

// densityRows updates the density of rows [y0, y1).
func (s *Solver2D) densityRows(y0, y1 int) {
	p := s.Par
	dt := p.Dt
	nx := s.Rho.NX
	for y := y0; y < y1; y++ {
		open := s.rowOpen[y]
		for x := 0; x < nx; x++ {
			if !open {
				switch s.cells[y*nx+x] {
				case fluid.Inlet:
					s.nRho.Set(x, y, p.InletRho)
					continue
				case fluid.Outlet:
					s.nRho.Set(x, y, p.OutletRho)
					continue
				}
			}
			// Walls evolve by the same flux form; with V = 0 at wall
			// nodes the normal flux at the wall face vanishes and mass
			// stays where it is.
			dFxdx := 0.5 * (s.Rho.At(x+1, y)*s.Vx.At(x+1, y) - s.Rho.At(x-1, y)*s.Vx.At(x-1, y))
			dFydy := 0.5 * (s.Rho.At(x, y+1)*s.Vy.At(x, y+1) - s.Rho.At(x, y-1)*s.Vy.At(x, y-1))
			s.nRho.Set(x, y, s.Rho.At(x, y)-dt*(dFxdx+dFydy))
		}
	}
}

// applyFilter runs the shared fourth-order filter on rho, Vx, Vy.
func (s *Solver2D) applyFilter() {
	s.plan.Apply(s.filterFields, s.Par.Eps, s.scratch, s.runFn)
}

// fields returns the state fields in the fixed exchange order.
func (s *Solver2D) fields(phase int) []*grid.Field2D {
	if phase == 0 {
		return s.phaseFields[0]
	}
	return s.phaseFields[1]
}

// Pack extracts the boundary data sent to the neighbour at dir after the
// given phase: the interior edge strips of the fields updated in that
// phase (ghost-fill convention).
func (s *Solver2D) Pack(phase int, dir decomp.Dir, buf []float64) []float64 {
	return halo.PackSend2D(s.fields(phase), dir, true, buf)
}

// Unpack stores boundary data received from the neighbour at dir into the
// ghost strips on that side.
func (s *Solver2D) Unpack(phase int, dir decomp.Dir, buf []float64) {
	halo.UnpackRecv2D(s.fields(phase), dir, true, buf)
}

// MsgLen returns the message length (float64 count) for a phase and
// direction; the transports use it to size receive buffers.
func (s *Solver2D) MsgLen(phase int, dir decomp.Dir) int {
	return halo.MsgLen2D(s.fields(phase), dir)
}

// Stencil returns the neighbour stencil the method needs: star, because
// centered differences couple axis neighbours only.
func (s *Solver2D) Stencil() decomp.Stencil { return decomp.Star }

// StepSerial advances a standalone (single-subregion) solver one full step,
// wrapping or reflecting its own ghosts between phases. periodicX/Y select
// periodic wrapping; non-periodic sides see walls via the mask.
func (s *Solver2D) StepSerial(periodicX, periodicY bool) {
	for ph := 0; ph < s.Phases(); ph++ {
		s.Compute(ph)
		if s.Exchanges(ph) {
			s.selfExchange(ph, periodicX, periodicY)
		}
	}
}

// selfExchange fills ghosts from the solver's own opposite edges (periodic)
// or leaves them untouched (walls handle non-periodic sides via the mask),
// reusing the solver's exchange buffer so the steady-state step does not
// allocate.
func (s *Solver2D) selfExchange(phase int, periodicX, periodicY bool) {
	if periodicX {
		s.xbuf = s.Pack(phase, decomp.East, s.xbuf[:0])
		s.Unpack(phase, decomp.West, s.xbuf)
		s.xbuf = s.Pack(phase, decomp.West, s.xbuf[:0])
		s.Unpack(phase, decomp.East, s.xbuf)
	}
	if periodicY {
		s.xbuf = s.Pack(phase, decomp.North, s.xbuf[:0])
		s.Unpack(phase, decomp.South, s.xbuf)
		s.xbuf = s.Pack(phase, decomp.South, s.xbuf[:0])
		s.Unpack(phase, decomp.North, s.xbuf)
	}
}

// MaxVelocity returns the maximum interior |V| component, a stability probe.
func (s *Solver2D) MaxVelocity() float64 {
	mx, my := s.Vx.MaxAbsInterior(), s.Vy.MaxAbsInterior()
	if mx > my {
		return mx
	}
	return my
}

// Vorticity computes the curl dVy/dx - dVx/dy at interior node (x, y).
func (s *Solver2D) Vorticity(x, y int) float64 {
	return 0.5*(s.Vy.At(x+1, y)-s.Vy.At(x-1, y)) - 0.5*(s.Vx.At(x, y+1)-s.Vx.At(x, y-1))
}
