package fd

import (
	"math"
	"testing"

	"repro/internal/decomp"
	"repro/internal/fluid"
)

func mask3From(m *fluid.Mask3D) func(x, y, z int) fluid.CellType {
	return func(x, y, z int) fluid.CellType { return m.At(x, y, z) }
}

func allFluid3(x, y, z int) fluid.CellType { return fluid.Interior }

// TestPoiseuille3D: plane Poiseuille between plates; node-centred walls
// make the discrete steady state the exact parabola.
func TestPoiseuille3D(t *testing.T) {
	nx, ny, nz := 4, 15, 4
	nu, g := 0.1, 2e-5
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0.005
	p.ForceX = g
	s, err := NewSolver3D(nx, ny, nz, p, mask3From(fluid.ChannelMask3D(nx, ny, nz)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		s.StepSerial(true, false, true)
	}
	umax := fluid.PoiseuilleMax(0, float64(ny-1), g, nu)
	worst := 0.0
	for y := 1; y < ny-1; y++ {
		want := fluid.PoiseuilleProfile(float64(y), 0, float64(ny-1), g, nu)
		got := s.Vx.At(nx/2, y, nz/2)
		if rel := math.Abs(got-want) / umax; rel > worst {
			worst = rel
		}
	}
	if worst > 1e-6 {
		t.Errorf("3D FD Poiseuille relative error %.3g, want < 1e-6", worst)
	}
}

// TestMass3D: flux-form continuity conserves mass in the periodic duct.
func TestMass3D(t *testing.T) {
	nx, ny, nz := 8, 10, 8
	p := fluid.DefaultParams()
	p.Nu = 0.1
	p.ForceX = 1e-5
	s, err := NewSolver3D(nx, ny, nz, p, mask3From(fluid.ChannelMask3D(nx, ny, nz)))
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Rho.SumInterior()
	for i := 0; i < 150; i++ {
		s.StepSerial(true, false, true)
	}
	if rel := math.Abs(s.Rho.SumInterior()-m0) / m0; rel > 1e-9 {
		t.Errorf("3D mass drifted by %.3g", rel)
	}
}

// TestShearWaveDecay3D measures viscous decay in a periodic box.
func TestShearWaveDecay3D(t *testing.T) {
	n := 16
	nu := 0.1
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0
	s, err := NewSolver3D(n, n, n, p, allFluid3)
	if err != nil {
		t.Fatal(err)
	}
	amp := 1e-3
	k := 2 * math.Pi / float64(n)
	for z := -1; z <= n; z++ {
		for y := -1; y <= n; y++ {
			for x := -1; x <= n; x++ {
				s.Vx.Set(x, y, z, amp*math.Sin(k*float64(z)))
			}
		}
	}
	steps := 100
	for i := 0; i < steps; i++ {
		s.StepSerial(true, true, true)
	}
	got := s.Vx.At(0, 0, n/4)
	want := amp * math.Exp(-nu*k*k*float64(steps))
	// The discrete Laplacian underestimates k^2 by k^2/12: ~2% at n=16.
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("3D shear decay: got %.6g want %.6g (rel %.3g)", got, want, rel)
	}
}

// TestPhaseContract3D checks the phase structure and message sizes.
func TestPhaseContract3D(t *testing.T) {
	s, err := NewSolver3D(6, 7, 8, fluid.DefaultParams(), allFluid3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases() != 3 {
		t.Fatalf("Phases = %d", s.Phases())
	}
	if !s.Exchanges(0) || !s.Exchanges(1) || s.Exchanges(2) {
		t.Error("exchange pattern wrong")
	}
	// Velocity message: 3 fields x face area; density: 1 field.
	if got := s.MsgLen(0, decomp.East3); got != 3*7*8 {
		t.Errorf("velocity MsgLen = %d, want %d", got, 3*7*8)
	}
	if got := s.MsgLen(1, decomp.Up3); got != 6*7 {
		t.Errorf("density MsgLen = %d, want %d", got, 6*7)
	}
	buf := s.Pack(0, decomp.North3, nil)
	if len(buf) != s.MsgLen(0, decomp.North3) {
		t.Errorf("Pack length %d != MsgLen %d", len(buf), s.MsgLen(0, decomp.North3))
	}
}
