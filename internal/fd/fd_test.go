package fd

import (
	"math"
	"testing"

	"repro/internal/decomp"
	"repro/internal/fluid"
)

// maskFrom adapts a global mask to the solver's local mask signature for a
// serial (whole-domain) solver.
func maskFrom(m *fluid.Mask2D) func(x, y int) fluid.CellType {
	return func(x, y int) fluid.CellType { return m.At(x, y) }
}

func channelParams(nu, g float64) fluid.Params {
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0.005
	p.ForceX = g
	return p
}

// TestPoiseuilleSteadyState drives a periodic channel to steady state and
// compares against the exact Hagen-Poiseuille profile. With node-centred
// walls the discrete steady state is the exact parabola (second differences
// of a quadratic are exact), so the tolerance is tight.
func TestPoiseuilleSteadyState(t *testing.T) {
	nx, ny := 16, 21
	nu, g := 0.1, 1e-5
	s, err := NewSolver2D(nx, ny, channelParams(nu, g), maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 8000; step++ {
		s.StepSerial(true, false)
	}
	maxErr := 0.0
	for y := 1; y < ny-1; y++ {
		want := fluid.PoiseuilleProfile(float64(y), 0, float64(ny-1), g, nu)
		got := s.Vx.At(nx/2, y)
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	umax := fluid.PoiseuilleMax(0, float64(ny-1), g, nu)
	if maxErr/umax > 1e-6 {
		t.Errorf("Poiseuille relative error %.3g, want < 1e-6 (umax %.3g)", maxErr/umax, umax)
	}
	// The transverse velocity must stay at numerical zero.
	if vy := s.Vy.MaxAbsInterior(); vy > 1e-12 {
		t.Errorf("transverse velocity %.3g, want ~0", vy)
	}
}

// TestMassConservation checks that the flux-form continuity update
// conserves total mass exactly in a closed periodic channel.
func TestMassConservation(t *testing.T) {
	nx, ny := 20, 15
	s, err := NewSolver2D(nx, ny, channelParams(0.1, 1e-5), maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Rho.SumInterior()
	for step := 0; step < 200; step++ {
		s.StepSerial(true, false)
	}
	m1 := s.Rho.SumInterior()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-9 {
		t.Errorf("mass drifted by %.3g relative", rel)
	}
}

// TestShearWaveDecay checks the viscous decay rate of a sinusoidal shear
// wave against exp(-nu k^2 t) in a fully periodic box.
func TestShearWaveDecay(t *testing.T) {
	n := 32
	nu := 0.1
	p := fluid.DefaultParams()
	p.Nu = nu
	p.Eps = 0 // pure viscosity: measure nu alone
	s, err := NewSolver2D(n, n, p, func(x, y int) fluid.CellType { return fluid.Interior })
	if err != nil {
		t.Fatal(err)
	}
	amp := 1e-3
	k := 2 * math.Pi / float64(n)
	for y := -1; y <= n; y++ {
		for x := -1; x <= n; x++ {
			s.Vx.Set(x, y, amp*math.Sin(k*float64(y)))
		}
	}
	steps := 200
	for i := 0; i < steps; i++ {
		s.StepSerial(true, true)
	}
	// Fit the surviving amplitude at the quarter-wave node.
	got := s.Vx.At(0, n/4) // sin(k y) = 1 at y = n/4
	want := amp * math.Exp(-nu*k*k*float64(steps))
	if rel := math.Abs(got-want) / want; rel > 0.02 {
		t.Errorf("shear wave decay: got %.6g want %.6g (rel %.3g)", got, want, rel)
	}
}

// TestAcousticPulseSpeed launches a small density pulse and checks the
// wavefront travels at the speed of sound, the phenomenon that forces
// dx ~ c_s dt (equation 4).
func TestAcousticPulseSpeed(t *testing.T) {
	n := 80
	p := fluid.DefaultParams()
	p.Nu = 0.05
	p.Eps = 0.005
	s, err := NewSolver2D(n, n, p, func(x, y int) fluid.CellType { return fluid.Interior })
	if err != nil {
		t.Fatal(err)
	}
	c := float64(n) / 2
	for y := -1; y <= n; y++ {
		for x := -1; x <= n; x++ {
			s.Rho.Set(x, y, p.Rho0+fluid.AcousticPulse2D(float64(x), float64(y), c, c, 1e-3, 3))
		}
	}
	steps := 40
	for i := 0; i < steps; i++ {
		s.StepSerial(true, true)
	}
	// Find the density maximum along the +x ray from the centre.
	bestR, bestV := 0, -math.MaxFloat64
	for r := 1; r < n/2-2; r++ {
		v := s.Rho.At(n/2+r, n/2) - p.Rho0
		if v > bestV {
			bestV, bestR = v, r
		}
	}
	want := p.Cs * float64(steps)
	if math.Abs(float64(bestR)-want) > 3 {
		t.Errorf("wavefront at r = %d, want ~%.1f (cs*t)", bestR, want)
	}
}

// TestWallsStopFlow verifies the no-slip condition: with a force pushing
// against a solid block, velocity at and inside the block stays zero.
func TestWallsStopFlow(t *testing.T) {
	nx, ny := 24, 16
	m := fluid.ChannelMask2D(nx, ny)
	m.FillRect(10, 1, 14, 15, fluid.Wall) // block across the channel
	s, err := NewSolver2D(nx, ny, channelParams(0.1, 1e-5), maskFrom(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.StepSerial(true, false)
	}
	for y := 0; y < ny; y++ {
		for x := 10; x < 14; x++ {
			if s.Vx.At(x, y) != 0 || s.Vy.At(x, y) != 0 {
				t.Fatalf("velocity nonzero inside wall at (%d,%d)", x, y)
			}
		}
	}
	if s.MaxVelocity() > 0.1 {
		t.Errorf("flow runaway: max velocity %.3g", s.MaxVelocity())
	}
}

// TestInletOutletThroughflow drives flow with an inlet on the left and an
// outlet on the right and checks a rightward stream develops.
func TestInletOutletThroughflow(t *testing.T) {
	nx, ny := 30, 12
	m := fluid.ChannelMask2D(nx, ny)
	for y := 1; y < ny-1; y++ {
		m.Set(0, y, fluid.Inlet)
		m.Set(nx-1, y, fluid.Outlet)
	}
	p := fluid.DefaultParams()
	p.Nu = 0.1
	p.Eps = 0.005
	p.InletVx = 0.05
	s, err := NewSolver2D(nx, ny, p, maskFrom(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		s.StepSerial(false, false)
	}
	mid := s.Vx.At(nx/2, ny/2)
	if mid < 0.01 {
		t.Errorf("midstream velocity %.4g, want rightward flow > 0.01", mid)
	}
	if s.MaxVelocity() > 0.5 {
		t.Errorf("unstable: max velocity %.3g", s.MaxVelocity())
	}
}

// TestVorticityOfShear checks the curl computation on a linear shear
// Vx = y, whose vorticity is exactly -1.
func TestVorticityOfShear(t *testing.T) {
	n := 10
	p := fluid.DefaultParams()
	s, err := NewSolver2D(n, n, p, func(x, y int) fluid.CellType { return fluid.Interior })
	if err != nil {
		t.Fatal(err)
	}
	for y := -1; y <= n; y++ {
		for x := -1; x <= n; x++ {
			s.Vx.Set(x, y, float64(y))
		}
	}
	if got := s.Vorticity(5, 5); math.Abs(got-(-1)) > 1e-14 {
		t.Errorf("vorticity = %v, want -1", got)
	}
}

// TestSolverRejectsBadInput covers constructor validation.
func TestSolverRejectsBadInput(t *testing.T) {
	p := fluid.DefaultParams()
	if _, err := NewSolver2D(8, 8, p, nil); err == nil {
		t.Error("nil mask accepted")
	}
	p.Nu = -1
	if _, err := NewSolver2D(8, 8, p, maskFrom(fluid.NewMask2D(8, 8))); err == nil {
		t.Error("negative viscosity accepted")
	}
}

// TestPhaseContract checks the phase/exchange structure the distributed
// driver relies on: 3 phases, exchanges after velocity and density.
func TestPhaseContract(t *testing.T) {
	s, err := NewSolver2D(8, 8, fluid.DefaultParams(), maskFrom(fluid.NewMask2D(8, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases() != 3 {
		t.Errorf("Phases = %d, want 3", s.Phases())
	}
	want := []bool{true, true, false}
	for ph, w := range want {
		if s.Exchanges(ph) != w {
			t.Errorf("Exchanges(%d) = %v, want %v", ph, s.Exchanges(ph), w)
		}
	}
	// Message lengths: phase 0 carries 2 fields, phase 1 carries 1.
	len0 := s.MsgLen(0, decomp.East)
	len1 := s.MsgLen(1, decomp.East)
	if len0 != 2*8 || len1 != 8 {
		t.Errorf("MsgLen = %d, %d; want 16, 8", len0, len1)
	}
}

// TestDumpRestoreRoundTrip: FD state save/restore is bit-exact and
// validates its inputs.
func TestDumpRestoreRoundTrip(t *testing.T) {
	nx, ny := 14, 11
	p := channelParams(0.1, 1e-5)
	a, err := NewSolver2D(nx, ny, p, maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		a.StepSerial(true, false)
	}
	fields := a.DumpFields()
	b, err := NewSolver2D(nx, ny, p, maskFrom(fluid.ChannelMask2D(nx, ny)))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFields(fields); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.StepSerial(true, false)
		b.StepSerial(true, false)
	}
	if !a.Rho.InteriorEqual(b.Rho, 0) || !a.Vx.InteriorEqual(b.Vx, 0) || !a.Vy.InteriorEqual(b.Vy, 0) {
		t.Fatal("FD state diverged after restore")
	}
	delete(fields, "vy")
	if err := b.RestoreFields(fields); err == nil {
		t.Error("restore with missing field accepted")
	}
	if a.MethodName() != "fd2d" {
		t.Errorf("MethodName = %q", a.MethodName())
	}
}

// TestDumpRestore3D: the 3D FD state round-trips too.
func TestDumpRestore3D(t *testing.T) {
	p := fluid.DefaultParams()
	p.Nu = 0.1
	p.ForceX = 1e-5
	a, err := NewSolver3D(6, 7, 6, p, mask3From(fluid.ChannelMask3D(6, 7, 6)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		a.StepSerial(true, false, true)
	}
	b, err := NewSolver3D(6, 7, 6, p, mask3From(fluid.ChannelMask3D(6, 7, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFields(a.DumpFields()); err != nil {
		t.Fatal(err)
	}
	a.StepSerial(true, false, true)
	b.StepSerial(true, false, true)
	if !a.Rho.InteriorEqual(b.Rho, 0) || !a.Vz.InteriorEqual(b.Vz, 0) {
		t.Fatal("3D FD state diverged after restore")
	}
	if a.MethodName() != "fd3d" || b.MethodName() != "fd3d" {
		t.Error("3D MethodName wrong")
	}
}
