package filter

import (
	"math"
	"testing"

	"repro/internal/fluid"
	"repro/internal/grid"
)

func allFluid(x, y int) fluid.CellType { return fluid.Interior }

func allFluid3(x, y, z int) fluid.CellType { return fluid.Interior }

func TestFilterLeavesConstantField(t *testing.T) {
	f := grid.NewField2D(12, 12, 1)
	f.Fill(3.7)
	Apply2D([]*grid.Field2D{f}, 0.01, allFluid, make([]float64, 12*12))
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			if f.At(x, y) != 3.7 {
				t.Fatalf("constant field changed at (%d,%d): %v", x, y, f.At(x, y))
			}
		}
	}
}

func TestFilterLeavesQuadraticField(t *testing.T) {
	// The fourth difference of a quadratic is exactly zero, so the filter
	// must not perturb a parabolic (Poiseuille) profile.
	f := grid.NewField2D(16, 16, 1)
	for y := -1; y <= 16; y++ {
		for x := -1; x <= 16; x++ {
			f.Set(x, y, float64(y*y)+0.5*float64(x*x)-2*float64(x))
		}
	}
	want := f.Clone()
	Apply2D([]*grid.Field2D{f}, 0.02, allFluid, make([]float64, 16*16))
	if !f.InteriorEqual(want, 1e-12) {
		t.Error("filter perturbed a quadratic field")
	}
}

func TestFilterDampsGridScaleOscillation(t *testing.T) {
	// The (-1)^x mode is the highest spatial frequency; one filter pass
	// with strength eps multiplies it by (1 - 16 eps) per axis.
	f := grid.NewField2D(20, 20, 1)
	for y := -1; y <= 20; y++ {
		for x := -1; x <= 20; x++ {
			if (x+y)%2 == 0 {
				f.Set(x, y, 1)
			} else {
				f.Set(x, y, -1)
			}
		}
	}
	eps := 0.01
	Apply2D([]*grid.Field2D{f}, eps, allFluid, make([]float64, 20*20))
	// Interior node far from the skip zone: both axes contribute 16 eps.
	got := math.Abs(f.At(10, 10))
	want := math.Abs(1 - 32*eps)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("damped amplitude %v, want %v", got, want)
	}
	if got >= 1 {
		t.Error("filter failed to damp the grid-scale mode")
	}
}

func TestFilterSkipZone(t *testing.T) {
	// Nodes within distance 2 of a subregion side are skipped.
	f := grid.NewField2D(12, 12, 1)
	for y := -1; y <= 12; y++ {
		for x := -1; x <= 12; x++ {
			if (x+y)%2 == 0 {
				f.Set(x, y, 1)
			} else {
				f.Set(x, y, -1)
			}
		}
	}
	before := f.Clone()
	Apply2D([]*grid.Field2D{f}, 0.01, allFluid, make([]float64, 12*12))
	for _, p := range [][2]int{{0, 5}, {1, 5}, {11, 5}, {10, 5}, {5, 0}, {5, 1}, {5, 11}, {5, 10}} {
		if f.At(p[0], p[1]) != before.At(p[0], p[1]) {
			t.Errorf("skip-zone node (%d,%d) was filtered", p[0], p[1])
		}
	}
	if f.At(5, 5) == before.At(5, 5) {
		t.Error("interior node was not filtered")
	}
}

func TestFilterSkipsNearWalls(t *testing.T) {
	// A wall at (6,6): nodes within stencil reach of it are skipped.
	mask := func(x, y int) fluid.CellType {
		if x == 6 && y == 6 {
			return fluid.Wall
		}
		return fluid.Interior
	}
	f := grid.NewField2D(13, 13, 1)
	for y := -1; y <= 13; y++ {
		for x := -1; x <= 13; x++ {
			if (x+y)%2 == 0 {
				f.Set(x, y, 1)
			} else {
				f.Set(x, y, -1)
			}
		}
	}
	before := f.Clone()
	Apply2D([]*grid.Field2D{f}, 0.01, mask, make([]float64, 13*13))
	// (4,6) has the wall at distance 2 on its stencil arm: skipped.
	if f.At(4, 6) != before.At(4, 6) {
		t.Error("node with wall in stencil reach was filtered")
	}
	// (4,4) does not reach the wall with a star stencil: filtered.
	if f.At(4, 4) == before.At(4, 4) {
		t.Error("diagonal node should not see the wall (star stencil)")
	}
}

func TestFilterZeroEpsIsNoOp(t *testing.T) {
	f := grid.NewField2D(8, 8, 1)
	f.Set(4, 4, 5)
	want := f.Clone()
	Apply2D([]*grid.Field2D{f}, 0, allFluid, nil) // nil scratch legal when eps == 0
	if !f.InteriorEqual(want, 0) {
		t.Error("eps=0 filter modified the field")
	}
}

func TestFilterSweepOrderIndependent(t *testing.T) {
	// The correction is gathered before any write, so a spike's neighbours
	// see the unfiltered spike. Verify against the hand-computed result.
	f := grid.NewField2D(16, 16, 1)
	f.Set(8, 8, 1)
	eps := 0.01
	Apply2D([]*grid.Field2D{f}, eps, allFluid, make([]float64, 16*16))
	// At the spike: correction = 6+6 = 12 times the spike value.
	if got, want := f.At(8, 8), 1-eps*12; math.Abs(got-want) > 1e-15 {
		t.Errorf("spike value %v, want %v", got, want)
	}
	// At distance 1: -4 from the spike's column plus 0 from own row... the
	// node (7,8) sees the spike at x+1: coefficient -4.
	if got, want := f.At(7, 8), 0+eps*4.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("neighbour value %v, want %v", got, want)
	}
	// At distance 2 on-axis: coefficient +1.
	if got, want := f.At(6, 8), -eps*1.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("distance-2 value %v, want %v", got, want)
	}
	// Off-axis diagonal neighbour: unaffected by the star-shaped operator.
	if got := f.At(7, 7); got != 0 {
		t.Errorf("diagonal value %v, want 0", got)
	}
}

func TestFilterScratchTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized scratch did not panic")
		}
	}()
	f := grid.NewField2D(8, 8, 1)
	Apply2D([]*grid.Field2D{f}, 0.01, allFluid, make([]float64, 10))
}

func TestFilter3DQuadraticUnchanged(t *testing.T) {
	f := grid.NewField3D(10, 10, 10, 1)
	for z := -1; z <= 10; z++ {
		for y := -1; y <= 10; y++ {
			for x := -1; x <= 10; x++ {
				f.Set(x, y, z, float64(x*x+y*y+z*z))
			}
		}
	}
	want := f.Clone()
	Apply3D([]*grid.Field3D{f}, 0.02, allFluid3, make([]float64, 1000))
	if !f.InteriorEqual(want, 1e-12) {
		t.Error("3D filter perturbed a quadratic field")
	}
}

func TestFilter3DDampsSpike(t *testing.T) {
	f := grid.NewField3D(12, 12, 12, 1)
	f.Set(6, 6, 6, 1)
	eps := 0.01
	Apply3D([]*grid.Field3D{f}, eps, allFluid3, make([]float64, 12*12*12))
	if got, want := f.At(6, 6, 6), 1-eps*18; math.Abs(got-want) > 1e-15 {
		t.Errorf("3D spike value %v, want %v", got, want)
	}
	if got := f.At(2, 2, 2); got != 0 {
		t.Errorf("far node %v, want 0", got)
	}
}

func TestApplicable2DBounds(t *testing.T) {
	if Applicable2D(1, 5, 10, 10, allFluid) {
		t.Error("x=1 should be in the skip zone")
	}
	if Applicable2D(5, 8, 10, 10, allFluid) {
		t.Error("y=8 of ny=10 should be in the skip zone")
	}
	if !Applicable2D(5, 5, 10, 10, allFluid) {
		t.Error("centre node should be filterable")
	}
}
