package filter

import (
	"repro/internal/fluid"
	"repro/internal/grid"
)

// RunFunc is a parallel-for executor: it invokes fn over disjoint
// sub-ranges covering [0, n) and returns once all of them are done. The
// solvers pass their pool-backed runner; Serial is the in-place default.
type RunFunc func(n int, fn func(lo, hi int))

// Serial runs the whole range on the calling goroutine.
func Serial(n int, fn func(lo, hi int)) { fn(0, n) }

// Plan2D is the filter with its applicability precomputed. Applicability
// depends only on the mask and the subregion geometry — both fixed for a
// solver's lifetime — so evaluating the 9-point mask probe per node per
// step is pure overhead; the plan replaces it with one bitmap lookup.
//
// Apply parallelizes over rows through a RunFunc with a barrier between
// the correction and update sweeps of each field. Every node's arithmetic
// is unchanged from the serial Apply2D and no node reads another node's
// written value within a sweep, so the result is bit-identical for every
// executor and worker count.
type Plan2D struct {
	nx, ny int
	ok     []bool // row-major applicability of the full stencil

	// Per-Apply state consumed by the prebuilt sweep closures; set by
	// Apply before handing the closures to the executor, so the
	// steady-state step builds no new closures and allocates nothing.
	f       *grid.Field2D
	eps     float64
	scratch []float64
	correct func(lo, hi int)
	update  func(lo, hi int)
}

// NewPlan2D precomputes filter applicability for an nx-by-ny subregion.
func NewPlan2D(nx, ny int, mask func(x, y int) fluid.CellType) *Plan2D {
	p := &Plan2D{nx: nx, ny: ny, ok: make([]bool, nx*ny)}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			p.ok[y*nx+x] = Applicable2D(x, y, nx, ny, mask)
		}
	}
	p.correct = p.correctRows
	p.update = p.updateRows
	return p
}

// correctRows computes the fourth-difference correction of rows
// [y0, y1) into scratch; nodes outside the stencil's reach get zero.
func (p *Plan2D) correctRows(y0, y1 int) {
	f, nx := p.f, p.nx
	for y := y0; y < y1; y++ {
		row := p.scratch[y*nx : (y+1)*nx]
		okRow := p.ok[y*nx : (y+1)*nx]
		for x := range row {
			if !okRow[x] {
				row[x] = 0
				continue
			}
			d4x := f.At(x-2, y) - 4*f.At(x-1, y) + 6*f.At(x, y) - 4*f.At(x+1, y) + f.At(x+2, y)
			d4y := f.At(x, y-2) - 4*f.At(x, y-1) + 6*f.At(x, y) - 4*f.At(x, y+1) + f.At(x, y+2)
			row[x] = d4x + d4y
		}
	}
}

// updateRows applies the stored corrections to rows [y0, y1).
func (p *Plan2D) updateRows(y0, y1 int) {
	f, nx, eps := p.f, p.nx, p.eps
	for y := y0; y < y1; y++ {
		row := p.scratch[y*nx : (y+1)*nx]
		for x, c := range row {
			if c != 0 {
				f.Add(x, y, -eps*c)
			}
		}
	}
}

// Apply filters the fields in place with strength eps. scratch must hold
// at least nx*ny values; run executes the row sweeps (Serial for the
// serial path). The correction sweep of a field completes before its
// update sweep starts, so no node reads a filtered value.
func (p *Plan2D) Apply(fields []*grid.Field2D, eps float64, scratch []float64, run RunFunc) {
	if eps == 0 || len(fields) == 0 {
		return
	}
	if len(scratch) < p.nx*p.ny {
		panic("filter: scratch buffer too small")
	}
	p.eps, p.scratch = eps, scratch
	for _, f := range fields {
		if f.NX != p.nx || f.NY != p.ny {
			panic("filter: field geometry mismatch")
		}
		p.f = f
		run(p.ny, p.correct)
		run(p.ny, p.update)
	}
	p.f, p.scratch = nil, nil
}

// Plan3D is the 3D filter plan; Apply parallelizes over z-planes.
type Plan3D struct {
	nx, ny, nz int
	ok         []bool

	f       *grid.Field3D
	eps     float64
	scratch []float64
	correct func(lo, hi int)
	update  func(lo, hi int)
}

// NewPlan3D precomputes filter applicability for a box subregion.
func NewPlan3D(nx, ny, nz int, mask func(x, y, z int) fluid.CellType) *Plan3D {
	p := &Plan3D{nx: nx, ny: ny, nz: nz, ok: make([]bool, nx*ny*nz)}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				p.ok[(z*ny+y)*nx+x] = Applicable3D(x, y, z, nx, ny, nz, mask)
			}
		}
	}
	p.correct = p.correctPlanes
	p.update = p.updatePlanes
	return p
}

// correctPlanes computes corrections for z-planes [z0, z1) into scratch.
func (p *Plan3D) correctPlanes(z0, z1 int) {
	f, nx, ny := p.f, p.nx, p.ny
	for z := z0; z < z1; z++ {
		for y := 0; y < ny; y++ {
			base := (z*ny + y) * nx
			row := p.scratch[base : base+nx]
			okRow := p.ok[base : base+nx]
			for x := range row {
				if !okRow[x] {
					row[x] = 0
					continue
				}
				d4x := f.At(x-2, y, z) - 4*f.At(x-1, y, z) + 6*f.At(x, y, z) - 4*f.At(x+1, y, z) + f.At(x+2, y, z)
				d4y := f.At(x, y-2, z) - 4*f.At(x, y-1, z) + 6*f.At(x, y, z) - 4*f.At(x, y+1, z) + f.At(x, y+2, z)
				d4z := f.At(x, y, z-2) - 4*f.At(x, y, z-1) + 6*f.At(x, y, z) - 4*f.At(x, y, z+1) + f.At(x, y, z+2)
				row[x] = d4x + d4y + d4z
			}
		}
	}
}

// updatePlanes applies stored corrections to z-planes [z0, z1).
func (p *Plan3D) updatePlanes(z0, z1 int) {
	f, nx, ny, eps := p.f, p.nx, p.ny, p.eps
	for z := z0; z < z1; z++ {
		for y := 0; y < ny; y++ {
			base := (z*ny + y) * nx
			row := p.scratch[base : base+nx]
			for x, c := range row {
				if c != 0 {
					f.Set(x, y, z, f.At(x, y, z)-eps*c)
				}
			}
		}
	}
}

// Apply filters the 3D fields in place; scratch must hold nx*ny*nz
// values.
func (p *Plan3D) Apply(fields []*grid.Field3D, eps float64, scratch []float64, run RunFunc) {
	if eps == 0 || len(fields) == 0 {
		return
	}
	if len(scratch) < p.nx*p.ny*p.nz {
		panic("filter: scratch buffer too small")
	}
	p.eps, p.scratch = eps, scratch
	for _, f := range fields {
		if f.NX != p.nx || f.NY != p.ny || f.NZ != p.nz {
			panic("filter: field geometry mismatch")
		}
		p.f = f
		run(p.nz, p.correct)
		run(p.nz, p.update)
	}
	p.f, p.scratch = nil, nil
}
