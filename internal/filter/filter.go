// Package filter implements the fourth-order numerical-viscosity filter of
// section 6. The filter dissipates high spatial frequencies whose
// wavelength is comparable to the grid mesh size, preventing the
// slow-growing instabilities that appear in subsonic flow at high Reynolds
// number. The same filter is applied to rho, Vx, Vy (and Vz in 3D) by both
// the finite-difference and the lattice Boltzmann method.
//
// The discrete operator is the classical fourth-difference dissipation
// (Peyret & Taylor):
//
//	u <- u - eps * (D4x u + D4y u [+ D4z u])
//	D4x u = u[x-2] - 4 u[x-1] + 6 u[x] - 4 u[x+1] + u[x+2]
//
// The stencil reaches two nodes in every axis, but the parallel system
// exchanges only one ghost layer per step (section 4.2: 3 variables per
// boundary node in 2D). The filter therefore skips nodes within distance 2
// of a subregion side or of a wall, where the full stencil is not
// available. The skip zone is part of the numerical method's definition, so
// serial and parallel runs of the same decomposition agree bitwise; the
// physics tests confirm the skipped seam is numerically harmless.
package filter

import (
	"repro/internal/fluid"
	"repro/internal/grid"
)

// Applicable2D reports whether the filter stencil may be evaluated at
// interior node (x, y) of an nx-by-ny subregion: the node must be at least
// two nodes away from every subregion side that has no live neighbour
// data... both sides in this implementation (see the package comment), and
// at least two nodes away from any non-fluid cell so the stencil never
// reads across a wall, inlet or outlet.
//
// mask gives the cell type at subregion-local coordinates and may consult
// ghost cells (offsets -1 and nx/ny are legal queries).
func Applicable2D(x, y, nx, ny int, mask func(x, y int) fluid.CellType) bool {
	if x < 2 || x >= nx-2 || y < 2 || y >= ny-2 {
		return false
	}
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			if dx != 0 && dy != 0 {
				continue // star-shaped stencil: axes only
			}
			if mask(x+dx, y+dy) != fluid.Interior {
				return false
			}
		}
	}
	return true
}

// Apply2D filters the listed fields in place with strength eps. All fields
// share the mask and geometry. scratch must hold at least NX*NY values and
// is overwritten; passing a reused buffer avoids per-step allocation.
//
// The correction at every node is computed from the unfiltered values
// before any node is written, so the result does not depend on sweep order.
func Apply2D(fields []*grid.Field2D, eps float64, mask func(x, y int) fluid.CellType, scratch []float64) {
	if eps == 0 || len(fields) == 0 {
		return
	}
	nx, ny := fields[0].NX, fields[0].NY
	if len(scratch) < nx*ny {
		panic("filter: scratch buffer too small")
	}
	for _, f := range fields {
		if f.NX != nx || f.NY != ny {
			panic("filter: field geometry mismatch")
		}
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if !Applicable2D(x, y, nx, ny, mask) {
					scratch[y*nx+x] = 0
					continue
				}
				d4x := f.At(x-2, y) - 4*f.At(x-1, y) + 6*f.At(x, y) - 4*f.At(x+1, y) + f.At(x+2, y)
				d4y := f.At(x, y-2) - 4*f.At(x, y-1) + 6*f.At(x, y) - 4*f.At(x, y+1) + f.At(x, y+2)
				scratch[y*nx+x] = d4x + d4y
			}
		}
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if c := scratch[y*nx+x]; c != 0 {
					f.Add(x, y, -eps*c)
				}
			}
		}
	}
}

// Applicable3D is the 3D analogue of Applicable2D.
func Applicable3D(x, y, z, nx, ny, nz int, mask func(x, y, z int) fluid.CellType) bool {
	if x < 2 || x >= nx-2 || y < 2 || y >= ny-2 || z < 2 || z >= nz-2 {
		return false
	}
	for d := -2; d <= 2; d++ {
		if mask(x+d, y, z) != fluid.Interior ||
			mask(x, y+d, z) != fluid.Interior ||
			mask(x, y, z+d) != fluid.Interior {
			return false
		}
	}
	return true
}

// Apply3D filters 3D fields in place; scratch must hold NX*NY*NZ values.
func Apply3D(fields []*grid.Field3D, eps float64, mask func(x, y, z int) fluid.CellType, scratch []float64) {
	if eps == 0 || len(fields) == 0 {
		return
	}
	nx, ny, nz := fields[0].NX, fields[0].NY, fields[0].NZ
	if len(scratch) < nx*ny*nz {
		panic("filter: scratch buffer too small")
	}
	for _, f := range fields {
		if f.NX != nx || f.NY != ny || f.NZ != nz {
			panic("filter: field geometry mismatch")
		}
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					i := (z*ny+y)*nx + x
					if !Applicable3D(x, y, z, nx, ny, nz, mask) {
						scratch[i] = 0
						continue
					}
					d4x := f.At(x-2, y, z) - 4*f.At(x-1, y, z) + 6*f.At(x, y, z) - 4*f.At(x+1, y, z) + f.At(x+2, y, z)
					d4y := f.At(x, y-2, z) - 4*f.At(x, y-1, z) + 6*f.At(x, y, z) - 4*f.At(x, y+1, z) + f.At(x, y+2, z)
					d4z := f.At(x, y, z-2) - 4*f.At(x, y, z-1) + 6*f.At(x, y, z) - 4*f.At(x, y, z+1) + f.At(x, y, z+2)
					scratch[i] = d4x + d4y + d4z
				}
			}
		}
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					if c := scratch[(z*ny+y)*nx+x]; c != 0 {
						f.Set(x, y, z, f.At(x, y, z)-eps*c)
					}
				}
			}
		}
	}
}
