// Package fluid holds the problem description shared by the two numerical
// methods of section 6: the cell-type mask (fluid, wall, inlet, outlet),
// the physical parameters of the isothermal Navier-Stokes equations 1-3
// (kinematic viscosity nu and speed of sound c_s), and the analytic
// solutions used to validate the solvers (Hagen-Poiseuille channel flow,
// the test problem of section 7).
//
// Grid spacing is fixed at dx = 1 lattice unit; the time step dt is chosen
// by the subsonic resolution requirement dx ~ c_s dt of equation 4.
package fluid

import (
	"fmt"
	"math"
)

// CellType classifies a grid node of the simulated region (figure 1: gray
// areas are walls; dark-gray walls demarcate the inlet and the outlet).
type CellType uint8

const (
	// Interior is an ordinary fluid node updated by the solver.
	Interior CellType = iota
	// Wall is a solid no-slip node (zero velocity; bounce-back in LB).
	Wall
	// Inlet is a node with prescribed velocity and density (the jet).
	Inlet
	// Outlet is a node with prescribed density (open boundary).
	Outlet
)

func (c CellType) String() string {
	switch c {
	case Interior:
		return "fluid"
	case Wall:
		return "wall"
	case Inlet:
		return "inlet"
	case Outlet:
		return "outlet"
	}
	return fmt.Sprintf("CellType(%d)", uint8(c))
}

// Params are the physical and numerical constants of a simulation. The
// zero value is not usable; call Check before running.
type Params struct {
	Nu  float64 // kinematic viscosity
	Cs  float64 // speed of sound
	Dt  float64 // integration time step (dx = 1)
	Eps float64 // fourth-order filter strength (0 disables the filter)

	Rho0 float64 // reference density

	// Body acceleration driving channel flows (Poiseuille).
	ForceX, ForceY, ForceZ float64

	// Inlet boundary values (the jet of air entering a flue pipe).
	InletVx, InletVy, InletVz float64
	InletRho                  float64

	// Outlet prescribed density.
	OutletRho float64
}

// Check validates the parameter set for explicit time-marching: positive
// viscosity, sound speed and density, and a time step satisfying both the
// acoustic resolution requirement of equation 4 (c_s dt <~ dx) and the
// diffusive stability limit of forward Euler (nu dt / dx^2 <= 1/4 in 2D).
func (p Params) Check() error {
	if p.Nu <= 0 {
		return fmt.Errorf("fluid: viscosity nu = %g must be positive", p.Nu)
	}
	if p.Cs <= 0 {
		return fmt.Errorf("fluid: sound speed cs = %g must be positive", p.Cs)
	}
	if p.Dt <= 0 {
		return fmt.Errorf("fluid: time step dt = %g must be positive", p.Dt)
	}
	if p.Rho0 <= 0 {
		return fmt.Errorf("fluid: reference density rho0 = %g must be positive", p.Rho0)
	}
	if p.Cs*p.Dt > 1.0+1e-12 {
		return fmt.Errorf("fluid: cs*dt = %g exceeds dx = 1; acoustic waves unresolved (eq. 4)", p.Cs*p.Dt)
	}
	if p.Nu*p.Dt > 0.25 {
		return fmt.Errorf("fluid: nu*dt = %g exceeds the diffusive stability limit 1/4", p.Nu*p.Dt)
	}
	if p.Eps < 0 || p.Eps > 1.0/16 {
		return fmt.Errorf("fluid: filter strength eps = %g outside [0, 1/16]", p.Eps)
	}
	return nil
}

// DefaultParams returns a parameter set suitable for the test problems:
// lattice-Boltzmann-compatible sound speed c_s = 1/sqrt(3), dt = 1.
func DefaultParams() Params {
	return Params{
		Nu:        0.05,
		Cs:        1 / math.Sqrt(3),
		Dt:        1,
		Eps:       0.01,
		Rho0:      1,
		InletRho:  1,
		OutletRho: 1,
	}
}

// Mask2D is the cell-type mask of a 2D region, global or per subregion.
type Mask2D struct {
	NX, NY int
	cells  []CellType
}

// NewMask2D returns an all-Interior mask.
func NewMask2D(nx, ny int) *Mask2D {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("fluid: invalid mask size %dx%d", nx, ny))
	}
	return &Mask2D{NX: nx, NY: ny, cells: make([]CellType, nx*ny)}
}

// At returns the cell type at (x, y). Coordinates outside the mask are
// reported as Wall: the region is enclosed by walls (figure 1), so anything
// beyond the grid behaves as solid.
func (m *Mask2D) At(x, y int) CellType {
	if x < 0 || x >= m.NX || y < 0 || y >= m.NY {
		return Wall
	}
	return m.cells[y*m.NX+x]
}

// Set assigns the cell type at (x, y); out-of-range panics.
func (m *Mask2D) Set(x, y int, c CellType) {
	if x < 0 || x >= m.NX || y < 0 || y >= m.NY {
		panic(fmt.Sprintf("fluid: mask index (%d,%d) out of range %dx%d", x, y, m.NX, m.NY))
	}
	m.cells[y*m.NX+x] = c
}

// FillRect sets the rectangle [x0,x1) x [y0,y1) to cell type c, clipped to
// the mask.
func (m *Mask2D) FillRect(x0, y0, x1, y1 int, c CellType) {
	for y := max(y0, 0); y < min(y1, m.NY); y++ {
		for x := max(x0, 0); x < min(x1, m.NX); x++ {
			m.cells[y*m.NX+x] = c
		}
	}
}

// Border sets the outermost layer of the mask to cell type c, the paper's
// dark-gray enclosing walls.
func (m *Mask2D) Border(c CellType) {
	m.FillRect(0, 0, m.NX, 1, c)
	m.FillRect(0, m.NY-1, m.NX, m.NY, c)
	m.FillRect(0, 0, 1, m.NY, c)
	m.FillRect(m.NX-1, 0, m.NX, m.NY, c)
}

// CountType returns the number of nodes with cell type c.
func (m *Mask2D) CountType(c CellType) int {
	n := 0
	for _, v := range m.cells {
		if v == c {
			n++
		}
	}
	return n
}

// Solid reports whether (x, y) is a wall; used by decomp.DeactivateWalls.
func (m *Mask2D) Solid(x, y int) bool { return m.At(x, y) == Wall }

// Mask3D is the 3D cell-type mask.
type Mask3D struct {
	NX, NY, NZ int
	cells      []CellType
}

// NewMask3D returns an all-Interior 3D mask.
func NewMask3D(nx, ny, nz int) *Mask3D {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("fluid: invalid mask size %dx%dx%d", nx, ny, nz))
	}
	return &Mask3D{NX: nx, NY: ny, NZ: nz, cells: make([]CellType, nx*ny*nz)}
}

// At returns the cell type at (x, y, z); outside the mask is Wall.
func (m *Mask3D) At(x, y, z int) CellType {
	if x < 0 || x >= m.NX || y < 0 || y >= m.NY || z < 0 || z >= m.NZ {
		return Wall
	}
	return m.cells[(z*m.NY+y)*m.NX+x]
}

// Set assigns the cell type at (x, y, z).
func (m *Mask3D) Set(x, y, z int, c CellType) {
	if x < 0 || x >= m.NX || y < 0 || y >= m.NY || z < 0 || z >= m.NZ {
		panic(fmt.Sprintf("fluid: mask index (%d,%d,%d) out of range", x, y, z))
	}
	m.cells[(z*m.NY+y)*m.NX+x] = c
}

// ChannelMask2D returns the Hagen-Poiseuille geometry of section 7: a
// rectangular channel with solid walls along y = 0 and y = NY-1 and
// periodic flow in x driven by a body force.
func ChannelMask2D(nx, ny int) *Mask2D {
	m := NewMask2D(nx, ny)
	m.FillRect(0, 0, nx, 1, Wall)
	m.FillRect(0, ny-1, nx, ny, Wall)
	return m
}

// ChannelMask3D returns a 3D duct with walls on the y boundaries only
// (flow between parallel plates, periodic in x and z), the 3D analogue of
// the section-7 test problem with a known parabolic profile.
func ChannelMask3D(nx, ny, nz int) *Mask3D {
	m := NewMask3D(nx, ny, nz)
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			m.Set(x, 0, z, Wall)
			m.Set(x, ny-1, z, Wall)
		}
	}
	return m
}

// PoiseuilleProfile returns the steady Hagen-Poiseuille velocity profile
// between parallel no-slip plates at y = y0 and y = y1, driven by body
// acceleration g in x: u(y) = g/(2 nu) (y - y0)(y1 - y).
func PoiseuilleProfile(y, y0, y1, g, nu float64) float64 {
	return g / (2 * nu) * (y - y0) * (y1 - y0 - (y - y0))
}

// PoiseuilleMax returns the centreline velocity of the profile.
func PoiseuilleMax(y0, y1, g, nu float64) float64 {
	h := (y1 - y0) / 2
	return g / (2 * nu) * h * h
}

// AcousticPulse2D returns the density perturbation of a Gaussian acoustic
// pulse of amplitude a and width w centred at (cx, cy), used by the
// acoustics example to demonstrate the wave propagation that forces the
// small time steps of equation 4.
func AcousticPulse2D(x, y, cx, cy, a, w float64) float64 {
	r2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
	return a * math.Exp(-r2/(2*w*w))
}
