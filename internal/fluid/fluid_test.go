package fluid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsCheck(t *testing.T) {
	good := DefaultParams()
	if err := good.Check(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	bad := []Params{
		{Nu: 0, Cs: 0.5, Dt: 1, Rho0: 1},
		{Nu: 0.1, Cs: 0, Dt: 1, Rho0: 1},
		{Nu: 0.1, Cs: 0.5, Dt: 0, Rho0: 1},
		{Nu: 0.1, Cs: 0.5, Dt: 1, Rho0: 0},
		{Nu: 0.1, Cs: 2, Dt: 1, Rho0: 1},           // cs dt > dx: eq. 4 violated
		{Nu: 0.3, Cs: 0.5, Dt: 1, Rho0: 1},         // nu dt > 1/4
		{Nu: 0.1, Cs: 0.5, Dt: 1, Rho0: 1, Eps: 1}, // filter too strong
	}
	for i, p := range bad {
		if err := p.Check(); err == nil {
			t.Errorf("bad params #%d accepted: %+v", i, p)
		}
	}
}

func TestCellTypeString(t *testing.T) {
	for c, want := range map[CellType]string{
		Interior: "fluid", Wall: "wall", Inlet: "inlet", Outlet: "outlet",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestMask2DOutsideIsWall(t *testing.T) {
	m := NewMask2D(4, 4)
	for _, p := range [][2]int{{-1, 0}, {4, 0}, {0, -1}, {0, 4}, {-3, -3}, {100, 100}} {
		if m.At(p[0], p[1]) != Wall {
			t.Errorf("At(%d,%d) = %v, want Wall", p[0], p[1], m.At(p[0], p[1]))
		}
	}
	if m.At(2, 2) != Interior {
		t.Error("interior node not fluid by default")
	}
}

func TestMask2DFillRectAndBorder(t *testing.T) {
	m := NewMask2D(6, 5)
	m.Border(Wall)
	if m.CountType(Wall) != 6*5-4*3 {
		t.Errorf("border wall count = %d, want %d", m.CountType(Wall), 6*5-4*3)
	}
	m.FillRect(2, 2, 4, 3, Inlet)
	if m.At(2, 2) != Inlet || m.At(3, 2) != Inlet {
		t.Error("FillRect did not set inlet cells")
	}
	// Clipping: out-of-range rectangles must not panic.
	m.FillRect(-5, -5, 100, 1, Outlet)
	if m.At(0, 0) != Outlet {
		t.Error("clipped FillRect did not write row 0")
	}
}

func TestMask2DSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	NewMask2D(3, 3).Set(3, 0, Wall)
}

func TestChannelMasks(t *testing.T) {
	m := ChannelMask2D(10, 7)
	for x := 0; x < 10; x++ {
		if m.At(x, 0) != Wall || m.At(x, 6) != Wall {
			t.Fatalf("channel wall missing at x=%d", x)
		}
	}
	for y := 1; y < 6; y++ {
		if m.At(3, y) != Interior {
			t.Fatalf("channel interior blocked at y=%d", y)
		}
	}
	m3 := ChannelMask3D(5, 6, 7)
	if m3.At(2, 0, 3) != Wall || m3.At(2, 5, 3) != Wall {
		t.Error("3D channel walls missing")
	}
	if m3.At(2, 3, 0) != Interior || m3.At(0, 3, 3) != Interior {
		t.Error("3D channel should be open in x and z")
	}
}

func TestMask3DOutsideIsWall(t *testing.T) {
	m := NewMask3D(3, 3, 3)
	if m.At(-1, 0, 0) != Wall || m.At(0, 3, 0) != Wall || m.At(0, 0, -1) != Wall {
		t.Error("outside 3D mask should be Wall")
	}
}

func TestPoiseuilleProfile(t *testing.T) {
	g, nu := 1e-4, 0.1
	y0, y1 := 0.0, 20.0
	// Zero at the walls.
	if v := PoiseuilleProfile(y0, y0, y1, g, nu); v != 0 {
		t.Errorf("profile at y0 = %v, want 0", v)
	}
	if v := PoiseuilleProfile(y1, y0, y1, g, nu); v != 0 {
		t.Errorf("profile at y1 = %v, want 0", v)
	}
	// Maximum at the centre matches PoiseuilleMax.
	mid := PoiseuilleProfile((y0+y1)/2, y0, y1, g, nu)
	if math.Abs(mid-PoiseuilleMax(y0, y1, g, nu)) > 1e-15 {
		t.Errorf("centreline %v != PoiseuilleMax %v", mid, PoiseuilleMax(y0, y1, g, nu))
	}
	// Symmetry property over random offsets.
	f := func(frac float64) bool {
		u := math.Mod(math.Abs(frac), 1)
		a := PoiseuilleProfile(y0+u*(y1-y0), y0, y1, g, nu)
		b := PoiseuilleProfile(y1-u*(y1-y0), y0, y1, g, nu)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAcousticPulse2D(t *testing.T) {
	if v := AcousticPulse2D(5, 5, 5, 5, 0.01, 3); v != 0.01 {
		t.Errorf("pulse centre = %v, want amplitude", v)
	}
	if v := AcousticPulse2D(50, 5, 5, 5, 0.01, 3); v > 1e-10 {
		t.Errorf("pulse far field = %v, want ~0", v)
	}
}
