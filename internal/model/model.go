// Package model implements the theoretical parallel-efficiency model of
// section 8, equations 5-21: efficiency as a function of the parallel
// grain size N (nodes per subregion), the decomposition geometry constant
// m, the processor speed U_calc, and the network speed (U_com for a
// point-to-point network, V_com for a shared bus whose communication time
// grows with P-1).
package model

import "math"

// Efficiency computes f = (1 + Tcom/Tcalc)^-1, equation 12: for a
// completely parallelizable computation whose communication does not
// overlap computation, efficiency equals processor utilization.
func Efficiency(tcom, tcalc float64) float64 {
	return 1 / (1 + tcom/tcalc)
}

// SurfaceNodes2D returns N_c = m sqrt(N), equation 15.
func SurfaceNodes2D(m int, n float64) float64 { return float64(m) * math.Sqrt(n) }

// SurfaceNodes3D returns N_c = m N^(2/3), equation 16.
func SurfaceNodes3D(m int, n float64) float64 { return float64(m) * math.Pow(n, 2.0/3.0) }

// Efficiency2D is equation 17: a fixed-capacity (point-to-point) network,
// f = (1 + N^-1/2 m Ucalc/Ucom)^-1.
func Efficiency2D(n float64, m int, ucalcOverUcom float64) float64 {
	return 1 / (1 + math.Pow(n, -0.5)*float64(m)*ucalcOverUcom)
}

// Efficiency3D is equation 18: f = (1 + N^-1/3 m Ucalc/Ucom)^-1.
func Efficiency3D(n float64, m int, ucalcOverUcom float64) float64 {
	return 1 / (1 + math.Pow(n, -1.0/3.0)*float64(m)*ucalcOverUcom)
}

// SharedBusEfficiency2D is equation 20: on a shared bus the communication
// time grows with the number of processors,
// f = (1 + N^-1/2 (P-1) m Ucalc/Vcom)^-1. The paper plots figures 12 and
// 13 with Ucalc/Vcom = 2/3.
func SharedBusEfficiency2D(n float64, p, m int, ucalcOverVcom float64) float64 {
	return 1 / (1 + math.Pow(n, -0.5)*float64(p-1)*float64(m)*ucalcOverVcom)
}

// SharedBusEfficiency3D is equation 21: the 3D analogue with the 5/6
// prefactor that converts the 2D calibration of Ucalc/Vcom to 3D (the 3D
// computation is half as fast per node and each 3D boundary node carries
// 5/3 as much data: (5/3)/2 = 5/6).
func SharedBusEfficiency3D(n float64, p, m int, ucalcOverVcom float64) float64 {
	return 1 / (1 + 5.0/6.0*math.Pow(n, -1.0/3.0)*float64(p-1)*float64(m)*ucalcOverVcom)
}

// PaperCalibration is the Ucalc/Vcom ratio the paper uses in figures 12
// and 13.
const PaperCalibration = 2.0 / 3.0

// Speedup converts efficiency to speedup S = f * P (equation 7).
func Speedup(f float64, p int) float64 { return f * float64(p) }

// MigrationOverhead returns the fractional slowdown of a computation that
// pays costSec of downtime every intervalSec (section 5.1: one ~30 s
// migration every ~45 minutes, an insignificant cost).
func MigrationOverhead(costSec, intervalSec float64) float64 {
	return costSec / (intervalSec + costSec)
}

// UnsyncWindowFull is equation 22: the largest step difference between two
// processes under a full stencil, max(J,K)-1.
func UnsyncWindowFull(j, k int) int {
	if j > k {
		return j - 1
	}
	return k - 1
}

// UnsyncWindowStar is equation 23: (J-1)+(K-1) under a star stencil.
func UnsyncWindowStar(j, k int) int { return (j - 1) + (k - 1) }
