package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEfficiencyLimits(t *testing.T) {
	// No communication: perfect efficiency.
	if f := Efficiency(0, 1); f != 1 {
		t.Errorf("f = %v, want 1", f)
	}
	// Communication equal to computation: f = 1/2 (equation 12).
	if f := Efficiency(1, 1); f != 0.5 {
		t.Errorf("f = %v, want 0.5", f)
	}
}

func TestSurfaceNodes(t *testing.T) {
	// A 100x100 subregion with m = 4 communicates 400 nodes.
	if got := SurfaceNodes2D(4, 10000); got != 400 {
		t.Errorf("SurfaceNodes2D = %v, want 400", got)
	}
	// A 25^3 subregion with m = 2: 2 * 625 = 1250.
	if got := SurfaceNodes3D(2, 15625); math.Abs(got-1250) > 1e-9 {
		t.Errorf("SurfaceNodes3D = %v, want 1250", got)
	}
}

func TestSharedBusEfficiencyPaperValues(t *testing.T) {
	// Spot values of equation 20 at the paper's calibration 2/3.
	// P=20, m=4, N=100^2: f = (1 + (19*4*2/3)/100)^-1.
	want := 1 / (1 + 19.0*4*2.0/3/100)
	if got := SharedBusEfficiency2D(10000, 20, 4, PaperCalibration); math.Abs(got-want) > 1e-12 {
		t.Errorf("eq20 = %v, want %v", got, want)
	}
	// Figure 13's 3D curve at P=20, N=25^3, m=2 with the 5/6 factor.
	n := 25.0 * 25 * 25
	want3 := 1 / (1 + 5.0/6.0*math.Pow(n, -1.0/3.0)*19*2*2.0/3)
	if got := SharedBusEfficiency3D(n, 20, 2, PaperCalibration); math.Abs(got-want3) > 1e-12 {
		t.Errorf("eq21 = %v, want %v", got, want3)
	}
}

func TestEfficiencyMonotonicity(t *testing.T) {
	// Efficiency increases with N and decreases with P and m.
	f := func(n16 uint16, p8, m8 uint8) bool {
		n := float64(n16%500+10) * 100
		p := int(p8%30) + 2
		m := int(m8%4) + 1
		f1 := SharedBusEfficiency2D(n, p, m, PaperCalibration)
		f2 := SharedBusEfficiency2D(4*n, p, m, PaperCalibration)
		f3 := SharedBusEfficiency2D(n, p+1, m, PaperCalibration)
		return f1 > 0 && f1 <= 1 && f2 > f1 && f3 < f1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiency2Dvs3DScaling(t *testing.T) {
	// The same node count per subregion yields lower efficiency in 3D
	// because the surface fraction scales as N^-1/3 versus N^-1/2
	// (section 8's explanation of why 3D is so much harder).
	n := 14500.0 // the comparable sizes of figure 9
	f2 := Efficiency2D(n, 2, 1)
	f3 := Efficiency3D(n, 2, 1)
	if f3 >= f2 {
		t.Errorf("3D efficiency %v should be below 2D %v at equal N", f3, f2)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(0.8, 20); math.Abs(s-16) > 1e-12 {
		t.Errorf("Speedup = %v, want 16", s)
	}
}

func TestMigrationOverhead(t *testing.T) {
	// 30 s per 45 min: ~1.1%, the paper's "insignificant" cost.
	got := MigrationOverhead(30, 45*60)
	if got < 0.01 || got > 0.012 {
		t.Errorf("MigrationOverhead = %v, want ~0.011", got)
	}
}

func TestUnsyncWindows(t *testing.T) {
	// The (6 x 4) example: full stencil max(6,4)-1 = 5, star 8.
	if got := UnsyncWindowFull(6, 4); got != 5 {
		t.Errorf("full window = %d, want 5", got)
	}
	if got := UnsyncWindowStar(6, 4); got != 8 {
		t.Errorf("star window = %d, want 8", got)
	}
}
