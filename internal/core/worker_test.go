package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dump"
	"repro/internal/msg"
)

// stubProgram is a minimal Program: one phase, one peer, records the
// payloads it unpacks in order.
type stubProgram struct {
	rank     int
	peer     int
	computed int
	unpacked []float64
}

func (p *stubProgram) Rank() int         { return p.rank }
func (p *stubProgram) Phases() int       { return 1 }
func (p *stubProgram) Compute(phase int) { p.computed++ }
func (p *stubProgram) Sends(phase int) []Send {
	return []Send{{Peer: p.peer, Dir: 0, Data: []float64{float64(p.computed)}}}
}
func (p *stubProgram) Expects(phase int) []Expect {
	return []Expect{{Peer: p.peer, Dir: 0}}
}
func (p *stubProgram) Unpack(phase int, dir int, data []float64) {
	p.unpacked = append(p.unpacked, data...)
}
func (p *stubProgram) DumpState(step, epoch int) *dump.State {
	return &dump.State{Rank: p.rank, Step: step, Epoch: epoch, Method: "stub",
		NX: 1, NY: 1, NZ: 1, Fields: map[string][]float64{"x": {1}}}
}
func (p *stubProgram) RestoreState(st *dump.State) error { return nil }

// TestWorkerBuffersEarlyMessages: a fast peer may run several steps ahead
// (appendix A); its early messages must be buffered and consumed in step
// order, not dropped or misapplied.
func TestWorkerBuffersEarlyMessages(t *testing.T) {
	hub := msg.NewHub()
	factory := func(rank, epoch int) (msg.Transport, error) { return hub.Join(rank), nil }
	events := make(chan Event, 8)

	prog := &stubProgram{rank: 0, peer: 1}
	w, err := NewWorker(prog, factory, 0, events)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// The peer floods messages for steps 0..4 before the worker starts.
	peer := hub.Join(1)
	for s := 4; s >= 0; s-- { // deliberately reversed arrival order
		if err := peer.Send(msg.Message{To: 0, Step: s, Phase: 0, Dir: 0,
			Data: []float64{float64(100 + s)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RunSteps(5); err != nil {
		t.Fatal(err)
	}
	if len(prog.unpacked) != 5 {
		t.Fatalf("unpacked %d payloads, want 5", len(prog.unpacked))
	}
	for s := 0; s < 5; s++ {
		if prog.unpacked[s] != float64(100+s) {
			t.Errorf("step %d consumed %v, want %v", s, prog.unpacked[s], float64(100+s))
		}
	}
}

// TestWorkerUnsyncDrift: two coupled workers where one is much slower;
// the fast one must be able to run ahead only as far as its data
// dependencies allow (one step here, since they exchange every step), and
// everything completes.
func TestWorkerUnsyncDrift(t *testing.T) {
	hub := msg.NewHub()
	factory := func(rank, epoch int) (msg.Transport, error) { return hub.Join(rank), nil }
	events := make(chan Event, 8)
	a, err := NewWorker(&stubProgram{rank: 0, peer: 1}, factory, 0, events)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorker(&stubProgram{rank: 1, peer: 0}, factory, 0, events)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	const steps = 50
	errs := make(chan error, 2)
	go func() { errs <- a.RunSteps(steps) }()
	go func() {
		// The slow worker dribbles its steps.
		for i := 0; i < steps; i++ {
			time.Sleep(100 * time.Microsecond)
			if err := b.RunStep(); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if a.Step != steps || b.Step != steps {
		t.Errorf("steps: %d, %d; want %d", a.Step, b.Step, steps)
	}
}

// TestWorkerErrorEventOnClosedTransport: killing the transport mid-run
// surfaces an EventError rather than hanging — the failure path the
// monitoring program watches for ("if an unrecoverable error occurs, the
// distributed simulation is stopped").
func TestWorkerErrorEventOnClosedTransport(t *testing.T) {
	hub := msg.NewHub()
	factory := func(rank, epoch int) (msg.Transport, error) { return hub.Join(rank), nil }
	events := make(chan Event, 8)
	w, err := NewWorker(&stubProgram{rank: 0, peer: 1}, factory, 0, events)
	if err != nil {
		t.Fatal(err)
	}
	// No peer exists; the worker will block in Recv. Close the transport
	// underneath it.
	go w.Start(3)
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case e := <-events:
		if e.Kind != EventError {
			t.Errorf("event %v, want error", e.Kind)
		}
		if !errors.Is(e.Err, msg.ErrClosed) {
			t.Errorf("error %v, want ErrClosed in chain", e.Err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no error event after transport close")
	}
	w.Shutdown()
}

// TestWorkerPauseWithoutSyncFuncFails: the pause path requires the
// shared-file sync machinery; without it the control command reports an
// error instead of wedging the worker.
func TestWorkerPauseWithoutSyncFuncFails(t *testing.T) {
	hub := msg.NewHub()
	factory := func(rank, epoch int) (msg.Transport, error) { return hub.Join(rank), nil }
	events := make(chan Event, 8)
	prog := &stubProgram{rank: 0, peer: 0} // self-loop so steps complete
	w, err := NewWorker(prog, factory, 0, events)
	if err != nil {
		t.Fatal(err)
	}
	go w.Start(2)
	// Wait for completion.
	for e := range events {
		if e.Kind == EventDone {
			break
		}
	}
	w.RequestPause(1) // no SyncFunc wired
	// The worker must stay alive and responsive.
	time.Sleep(20 * time.Millisecond)
	w.Shutdown()
}

// TestRestoredWorkerStartsAtDumpStep: NewWorkerAt seeds the step counter.
func TestRestoredWorkerStartsAtDumpStep(t *testing.T) {
	hub := msg.NewHub()
	factory := func(rank, epoch int) (msg.Transport, error) { return hub.Join(rank), nil }
	events := make(chan Event, 8)
	prog := &stubProgram{rank: 0, peer: 0}
	w, err := NewWorkerAt(prog, factory, 3, events, 17)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Step != 17 || w.Epoch != 3 {
		t.Errorf("worker at step %d epoch %d, want 17, 3", w.Step, w.Epoch)
	}
	if err := w.RunSteps(18); err != nil {
		t.Fatal(err)
	}
	if prog.computed != 1 {
		t.Errorf("computed %d steps, want exactly 1", prog.computed)
	}
}
