package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/dump"
	"repro/internal/fluid"
	"repro/internal/syncfile"
)

func newTestJob(t *testing.T, cfg *Config2D, until int) (*Job, *JobPrograms2D) {
	t.Helper()
	sf, err := syncfile.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sf.Poll = time.Millisecond
	j, jp, err := NewJob2D(cfg, HubFactory(), sf, until)
	if err != nil {
		t.Fatal(err)
	}
	j.WaitTimeout = 30 * time.Second
	return j, jp
}

// TestMigrationPreservesSolution runs the full section-5.1 protocol twice
// mid-run and checks the final solution is bitwise identical to an
// uninterrupted run: sync, dump, restart on a "new host", re-open
// channels, continue.
func TestMigrationPreservesSolution(t *testing.T) {
	const steps = 40
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 2, 24, 16), steps)
	if err != nil {
		t.Fatal(err)
	}

	cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
	j, jp := newTestJob(t, cfg, steps)
	j.Start()

	// Let the computation get going, then migrate rank 1, then rank 3.
	time.Sleep(20 * time.Millisecond)
	var dumps []*dump.State
	if err := j.MigrateRanks([]int{1}, func(rank int, st *dump.State) {
		dumps = append(dumps, st)
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := j.MigrateRanks([]int{3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()

	if j.Migrations != 2 {
		t.Errorf("Migrations = %d, want 2", j.Migrations)
	}
	if len(dumps) != 1 || dumps[0].Rank != 1 {
		t.Errorf("onDump saw %v", dumps)
	}
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("migrated run differs from reference at (%d,%d) by %g", x, y, d)
	}
	if j.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2 after two migrations", j.Epoch())
	}
}

// TestSimultaneousMigration migrates two ranks in one round (the paper:
// "the synchronization allows more than one process to migrate at the
// same time if it is desired").
func TestSimultaneousMigration(t *testing.T) {
	const steps = 30
	ref, _, err := RunSequential2D(channelConfig(t, MethodFD, 2, 2, 24, 16), steps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := channelConfig(t, MethodFD, 2, 2, 24, 16)
	j, jp := newTestJob(t, cfg, steps)
	j.Start()
	time.Sleep(15 * time.Millisecond)
	if err := j.MigrateRanks([]int{0, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("double migration differs at (%d,%d) by %g", x, y, d)
	}
}

// TestMigrationAfterCompletion: a migration request that lands when some
// workers already finished still completes (sync step clamps to the run
// length).
func TestMigrationAfterCompletion(t *testing.T) {
	const steps = 5
	cfg := channelConfig(t, MethodLB, 2, 1, 16, 8)
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 1, 16, 8), steps)
	if err != nil {
		t.Fatal(err)
	}
	j, jp := newTestJob(t, cfg, steps)
	j.Start()
	// Wait for both workers to report done, then migrate.
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	if err := j.MigrateRanks([]int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("post-completion migration corrupted state at (%d,%d) by %g", x, y, d)
	}
}

// TestMonitorDrivenMigration wires the virtual cluster to the job: a
// background job lands on a workstation, the five-minute load crosses 1.5,
// MonitorOnce migrates the affected rank to a free host, and the solution
// is unharmed.
func TestMonitorDrivenMigration(t *testing.T) {
	const steps = 40
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 2, 24, 16), steps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
	j, jp := newTestJob(t, cfg, steps)

	cl := cluster.NewPaperCluster()
	cl.Advance(30 * time.Minute) // all users idle
	if err := j.PlaceOnCluster(cl); err != nil {
		t.Fatal(err)
	}
	j.Start()

	// No migration needed while hosts are quiet.
	if ranks, err := j.MonitorOnce(cluster.DefaultMigrationPolicy(), nil); err != nil || len(ranks) != 0 {
		t.Fatalf("spurious migration: %v %v", ranks, err)
	}

	// A regular user starts a full-time job on rank 2's host.
	busyHost := j.HostOf(2)
	busyHost.StartJob()
	cl.Advance(10 * time.Minute) // load climbs past 1.5

	ranks, err := j.MonitorOnce(cluster.DefaultMigrationPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 1 || ranks[0] != 2 {
		t.Fatalf("migrated ranks %v, want [2]", ranks)
	}
	if busyHost.Assigned() != -1 {
		t.Error("busy host still has the subprocess assigned")
	}
	if newHost := j.HostOf(2); newHost == busyHost || newHost.Assigned() != 2 {
		t.Error("rank 2 not reassigned to a fresh host")
	}

	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("monitored run differs at (%d,%d) by %g", x, y, d)
	}
}

// TestMigrateUnknownRank: protocol rejects ranks that do not exist.
func TestMigrateUnknownRank(t *testing.T) {
	cfg := channelConfig(t, MethodLB, 2, 1, 16, 8)
	j, _ := newTestJob(t, cfg, 5)
	if err := j.MigrateRanks([]int{7}, nil); err == nil {
		t.Error("migration of unknown rank accepted")
	}
	j.Start()
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
}

// TestMonitorLoop drives the full monitoring program: periodic checks on
// simulated time, a scripted load scenario, automatic migration, and the
// usual bitwise-exactness guarantee.
func TestMonitorLoop(t *testing.T) {
	const steps = 60
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 2, 24, 16), steps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
	j, jp := newTestJob(t, cfg, steps)
	cl := cluster.NewPaperCluster()
	cl.Advance(30 * time.Minute)
	if err := j.PlaceOnCluster(cl); err != nil {
		t.Fatal(err)
	}
	j.Start()

	migrated, err := j.MonitorLoop(5*time.Minute, cluster.DefaultMigrationPolicy(),
		func(tick int, c *cluster.Cluster) {
			if tick == 1 {
				// A user job lands on rank 0's host at the second check.
				j.HostOf(0).StartJob()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Error("monitor loop never migrated despite the busy host")
	}
	j.Shutdown()
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("monitored run differs at (%d,%d) by %g", x, y, d)
	}
}

// TestMonitorLoopRequiresCluster: defensive error path.
func TestMonitorLoopRequiresCluster(t *testing.T) {
	cfg := channelConfig(t, MethodLB, 2, 1, 16, 8)
	j, _ := newTestJob(t, cfg, 2)
	if _, err := j.MonitorLoop(time.Minute, cluster.DefaultMigrationPolicy(), nil); err == nil {
		t.Error("MonitorLoop without a cluster accepted")
	}
	j.Start()
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
}

// TestMigration3D: the full protocol on a 3D job (the LB sweep exchange
// crosses the migration boundary intact).
func TestMigration3D(t *testing.T) {
	const steps = 20
	mkCfg := func() *Config3D {
		d, err := decomp.New3D(2, 2, 1, 12, 12, 8)
		if err != nil {
			t.Fatal(err)
		}
		d.PeriodicX = true
		p := fluid.DefaultParams()
		p.Nu = 0.1
		p.Eps = 0.005
		p.ForceX = 1e-5
		return &Config3D{
			Method: MethodLB, Par: p,
			Mask: fluid.ChannelMask3D(12, 12, 8), D: d,
		}
	}
	ref, _, err := RunSequential3D(mkCfg(), steps)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := syncfile.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sf.Poll = time.Millisecond
	j, jp, err := NewJob3D(mkCfg(), HubFactory(), sf, steps)
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	time.Sleep(10 * time.Millisecond)
	if err := j.MigrateRanks([]int{2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
	got := jp.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Vx[i] != got.Vx[i] ||
			ref.Vy[i] != got.Vy[i] || ref.Vz[i] != got.Vz[i] {
			t.Fatalf("3D migrated run differs at node %d", i)
		}
	}
}
