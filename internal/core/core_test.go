package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/msg"
	"repro/internal/registry"
)

// channelConfig builds a periodic-channel test problem with a gentle body
// force and a density ripple, so every field evolves nontrivially.
func channelConfig(t *testing.T, method string, jx, jy, gx, gy int) *Config2D {
	t.Helper()
	st := decomp.Star
	if method == MethodLB {
		st = decomp.Full
	}
	d, err := decomp.New2D(jx, jy, gx, gy, st)
	if err != nil {
		t.Fatal(err)
	}
	d.PeriodicX = true
	p := fluid.DefaultParams()
	p.Nu = 0.1
	p.Eps = 0.01
	p.ForceX = 1e-5
	return &Config2D{
		Method: method,
		Par:    p,
		Mask:   fluid.ChannelMask2D(gx, gy),
		D:      d,
		InitRho: func(x, y int) float64 {
			return 1 + 0.001*math.Sin(2*math.Pi*float64(x)/float64(gx))
		},
	}
}

func resultsEqual(a, b *Result2D, tol float64) (bool, int, int, float64) {
	if a.NX != b.NX || a.NY != b.NY {
		return false, -1, -1, 0
	}
	for y := 0; y < a.NY; y++ {
		for x := 0; x < a.NX; x++ {
			i := y*a.NX + x
			for _, pair := range [][2][]float64{{a.Rho, b.Rho}, {a.Vx, b.Vx}, {a.Vy, b.Vy}} {
				if d := math.Abs(pair[0][i] - pair[1][i]); d > tol {
					return false, x, y, d
				}
			}
		}
	}
	return true, 0, 0, 0
}

// TestParallelMatchesSequentialLB: the goroutine-parallel run over the
// channel transport is bitwise identical to the sequential phase-lockstep
// execution of the same decomposition (lattice Boltzmann, filter on).
func TestParallelMatchesSequentialLB(t *testing.T) {
	cfg := channelConfig(t, MethodLB, 3, 2, 36, 24)
	const steps = 25
	seq, _, err := RunSequential2D(cfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := channelConfig(t, MethodLB, 3, 2, 36, 24)
	par, err := RunParallel2D(cfg2, steps, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	if ok, x, y, d := resultsEqual(seq, par, 0); !ok {
		t.Errorf("parallel differs from sequential at (%d,%d) by %g", x, y, d)
	}
}

// TestParallelMatchesSequentialFD: same check for finite differences,
// whose cycle has two exchanges per step.
func TestParallelMatchesSequentialFD(t *testing.T) {
	cfg := channelConfig(t, MethodFD, 2, 3, 30, 27)
	const steps = 25
	seq, _, err := RunSequential2D(cfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := channelConfig(t, MethodFD, 2, 3, 30, 27)
	par, err := RunParallel2D(cfg2, steps, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	if ok, x, y, d := resultsEqual(seq, par, 0); !ok {
		t.Errorf("parallel differs from sequential at (%d,%d) by %g", x, y, d)
	}
}

// TestDecompositionInvariance: with the filter disabled the numerics have
// no seam dependence, so a 1x1 "serial" run and a 4x2 decomposed run agree
// bitwise (the paper's parallel program as a straightforward extension of
// the serial program).
func TestDecompositionInvariance(t *testing.T) {
	for _, method := range []string{MethodFD, MethodLB} {
		serialCfg := channelConfig(t, method, 1, 1, 32, 16)
		serialCfg.Par.Eps = 0
		parCfg := channelConfig(t, method, 4, 2, 32, 16)
		parCfg.Par.Eps = 0
		const steps = 20
		a, _, err := RunSequential2D(serialCfg, steps)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunParallel2D(parCfg, steps, HubFactory())
		if err != nil {
			t.Fatal(err)
		}
		if ok, x, y, d := resultsEqual(a, b, 0); !ok {
			t.Errorf("%s: decomposition changed the solution at (%d,%d) by %g", method, x, y, d)
		}
	}
}

// TestFilterSeamEffectIsSmall: with the filter on, the seam skip zones make
// decomposed runs differ from the 1x1 run, but only at the level of the
// filter correction itself.
func TestFilterSeamEffectIsSmall(t *testing.T) {
	serialCfg := channelConfig(t, MethodLB, 1, 1, 32, 16)
	parCfg := channelConfig(t, MethodLB, 4, 2, 32, 16)
	const steps = 50
	a, _, err := RunSequential2D(serialCfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel2D(parCfg, steps, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	// The runs must differ (the seam skip zones are real)...
	if ok, _, _, _ := resultsEqual(a, b, 0); ok {
		t.Error("filtered runs identical across decompositions; seam zones inert?")
	}
	// ...but only within the size of the perturbation being filtered
	// (the initial ripple has amplitude 1e-3).
	if ok, x, y, d := resultsEqual(a, b, 1e-3); !ok {
		t.Errorf("seam effect too large at (%d,%d): %g", x, y, d)
	}
}

// TestTCPMatchesHub: the TCP transport on loopback produces the same
// solution as the in-process channel transport.
func TestTCPMatchesHub(t *testing.T) {
	cfgA := channelConfig(t, MethodLB, 2, 2, 24, 16)
	cfgB := channelConfig(t, MethodLB, 2, 2, 24, 16)
	const steps = 10
	a, err := RunParallel2D(cfgA, steps, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tcpFactory := func(rank, epoch int) (msg.Transport, error) {
		return msg.NewTCP(rank, epoch, reg)
	}
	b, err := RunParallel2D(cfgB, steps, tcpFactory)
	if err != nil {
		t.Fatal(err)
	}
	if ok, x, y, d := resultsEqual(a, b, 0); !ok {
		t.Errorf("TCP differs from hub at (%d,%d) by %g", x, y, d)
	}
}

// TestPoiseuilleThroughDriver: physics through the full distributed stack.
func TestPoiseuilleThroughDriver(t *testing.T) {
	d, _ := decomp.New2D(2, 2, 16, 21, decomp.Full)
	d.PeriodicX = true
	p := fluid.DefaultParams()
	p.Nu = 0.1
	p.Eps = 0.005
	p.ForceX = 1e-5
	cfg := &Config2D{Method: MethodLB, Par: p, Mask: fluid.ChannelMask2D(16, 21), D: d}
	res, err := RunParallel2D(cfg, 6000, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	y0, y1 := 0.5, float64(21)-1.5
	umax := fluid.PoiseuilleMax(y0, y1, p.ForceX, p.Nu)
	worst := 0.0
	for y := 1; y < 20; y++ {
		want := fluid.PoiseuilleProfile(float64(y), y0, y1, p.ForceX, p.Nu)
		got := res.At(res.Vx, 8, y)
		if rel := math.Abs(got-want) / umax; rel > worst {
			worst = rel
		}
	}
	if worst > 0.02 {
		t.Errorf("distributed Poiseuille error %.4g, want < 2%%", worst)
	}
}

// TestInactiveSubregions: a geometry whose left half is wall deactivates
// subregions (figure 2: only 15 of 24 subregions employed) and still runs.
func TestInactiveSubregions(t *testing.T) {
	gx, gy := 32, 16
	mask := fluid.ChannelMask2D(gx, gy)
	mask.FillRect(0, 0, 8, gy, fluid.Wall) // left quarter is solid
	d, _ := decomp.New2D(4, 2, gx, gy, decomp.Full)
	d.PeriodicX = false
	if n := d.DeactivateWalls(mask.Solid); n != 2 {
		t.Fatalf("deactivated %d subregions, want 2", n)
	}
	p := fluid.DefaultParams()
	p.Nu = 0.1
	p.Eps = 0
	p.ForceX = 1e-5
	cfg := &Config2D{Method: MethodLB, Par: p, Mask: mask, D: d}
	seq, _, err := RunSequential2D(cfg, 15)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel2D(cfg, 15, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	if par.ActiveRegions != 6 {
		t.Errorf("active regions = %d, want 6", par.ActiveRegions)
	}
	if ok, x, y, d := resultsEqual(seq, par, 0); !ok {
		t.Errorf("inactive-region runs differ at (%d,%d) by %g", x, y, d)
	}
}

// TestDecomposeSubmitRoundTrip: the decomposition program's dumps fully
// reconstruct the computation (restart-from-checkpoint correctness).
func TestDecomposeSubmitRoundTrip(t *testing.T) {
	cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
	const firstLeg, secondLeg = 12, 13

	// Reference: straight run of firstLeg+secondLeg steps.
	ref, _, err := RunSequential2D(cfg, firstLeg+secondLeg)
	if err != nil {
		t.Fatal(err)
	}

	// Run firstLeg steps, dump every rank, rebuild from dumps, continue.
	cfgB := channelConfig(t, MethodLB, 2, 2, 24, 16)
	_, progs, err := RunSequential2D(cfgB, firstLeg)
	if err != nil {
		t.Fatal(err)
	}
	progs2 := make([]*Program2D, len(progs))
	for i, p := range progs {
		st := p.DumpState(firstLeg, 0)
		np, err := cfgB.NewProgram(st.Rank)
		if err != nil {
			t.Fatal(err)
		}
		if err := np.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		progs2[i] = np
	}
	if err := stepSequential2D(progs2, secondLeg); err != nil {
		t.Fatal(err)
	}
	got := Gather2D(cfgB, progs2, firstLeg+secondLeg)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("restart differs from straight run at (%d,%d) by %g", x, y, d)
	}
}

// TestParallel3DMatchesSequential: the 3D sweep exchange is exact under
// real concurrency for both methods.
func TestParallel3DMatchesSequential(t *testing.T) {
	for _, method := range []string{MethodFD, MethodLB} {
		d, err := decomp.New3D(2, 2, 2, 12, 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		d.PeriodicX = true
		d.PeriodicZ = true
		p := fluid.DefaultParams()
		p.Nu = 0.1
		p.Eps = 0.005
		p.ForceX = 1e-5
		cfg := &Config3D{
			Method: method, Par: p,
			Mask: fluid.ChannelMask3D(12, 12, 12), D: d,
			InitRho: func(x, y, z int) float64 {
				return 1 + 0.001*math.Sin(2*math.Pi*float64(x)/12)
			},
		}
		const steps = 12
		seq, _, err := RunSequential3D(cfg, steps)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunParallel3D(cfg, steps, HubFactory())
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq.Rho {
			if seq.Rho[i] != par.Rho[i] || seq.Vx[i] != par.Vx[i] ||
				seq.Vy[i] != par.Vy[i] || seq.Vz[i] != par.Vz[i] {
				t.Errorf("%s: 3D parallel differs from sequential at %d", method, i)
				break
			}
		}
	}
}

// TestConfigValidation covers config error paths.
func TestConfigValidation(t *testing.T) {
	d, _ := decomp.New2D(2, 2, 16, 16, decomp.Star)
	good := &Config2D{Method: MethodFD, Par: fluid.DefaultParams(), Mask: fluid.NewMask2D(16, 16), D: d}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := *good
	bad.Method = "spectral"
	if err := bad.Validate(); err == nil {
		t.Error("unknown method accepted")
	}
	bad = *good
	bad.Mask = fluid.NewMask2D(8, 8)
	if err := bad.Validate(); err == nil {
		t.Error("mismatched mask accepted")
	}
	bad = *good
	bad.Par.Nu = -1
	if err := bad.Validate(); err == nil {
		t.Error("bad params accepted")
	}
}

// TestUDPMatchesHub: the appendix-D datagram transport (program-level
// acks and retransmission) produces the same solution as the channel
// transport.
func TestUDPMatchesHub(t *testing.T) {
	cfgA := channelConfig(t, MethodLB, 2, 2, 24, 16)
	cfgB := channelConfig(t, MethodLB, 2, 2, 24, 16)
	const steps = 10
	a, err := RunParallel2D(cfgA, steps, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	udpFactory := func(rank, epoch int) (msg.Transport, error) {
		return msg.NewUDP(rank, epoch, reg)
	}
	b, err := RunParallel2D(cfgB, steps, udpFactory)
	if err != nil {
		t.Fatal(err)
	}
	if ok, x, y, d := resultsEqual(a, b, 0); !ok {
		t.Errorf("UDP differs from hub at (%d,%d) by %g", x, y, d)
	}
}

// TestUDPLossyStillExact: with every fifth datagram dropped on first
// transmission, the retransmission protocol keeps the parallel solution
// bitwise exact — the robustness appendix D claims for UDP under network
// errors.
func TestUDPLossyStillExact(t *testing.T) {
	cfgA := channelConfig(t, MethodLB, 2, 1, 20, 12)
	cfgB := channelConfig(t, MethodLB, 2, 1, 20, 12)
	const steps = 8
	a, err := RunParallel2D(cfgA, steps, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	n := 0
	lossyFactory := func(rank, epoch int) (msg.Transport, error) {
		u, err := msg.NewUDP(rank, epoch, reg)
		if err != nil {
			return nil, err
		}
		u.Drop = func() bool {
			mu.Lock()
			defer mu.Unlock()
			n++
			return n%5 == 0
		}
		return u, nil
	}
	b, err := RunParallel2D(cfgB, steps, lossyFactory)
	if err != nil {
		t.Fatal(err)
	}
	if ok, x, y, d := resultsEqual(a, b, 0); !ok {
		t.Errorf("lossy UDP differs at (%d,%d) by %g", x, y, d)
	}
}
