package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestSuspendResumePreservesSolution checkpoints a whole running job
// through the migration dump path, restarts it, and checks the final
// solution is bitwise identical to an uninterrupted run — the guarantee a
// farm scheduler's preemption relies on.
func TestSuspendResumePreservesSolution(t *testing.T) {
	const steps = 40
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 2, 24, 16), steps)
	if err != nil {
		t.Fatal(err)
	}

	cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
	j, jp := newTestJob(t, cfg, steps)
	j.Start()
	time.Sleep(15 * time.Millisecond)

	states, err := j.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Fatalf("suspend returned %d states, want 4", len(states))
	}
	for rank, st := range states {
		if st.Rank != rank {
			t.Errorf("state %d has rank %d, want sorted by rank", rank, st.Rank)
		}
	}

	// While suspended nothing runs; the pool could be handed to another
	// job here. Resume and finish.
	if err := j.Resume(states); err != nil {
		t.Fatal(err)
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()

	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("suspended run differs from reference at (%d,%d) by %g", x, y, d)
	}
	if j.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1 after one suspend/resume", j.Epoch())
	}
}

// TestSnapshotKeepsRunning checkpoints a running job without evicting it:
// Snapshot returns states frozen at the save point while the job
// continues to completion, bit-identical to an uninterrupted run — and a
// second job rebuilt from the snapshot finishes with the same bits too.
// This is the farm coordinator's durability primitive: persist a running
// job's state without giving up its hosts.
func TestSnapshotKeepsRunning(t *testing.T) {
	const steps = 40
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 2, 24, 16), steps)
	if err != nil {
		t.Fatal(err)
	}

	cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
	j, jp := newTestJob(t, cfg, steps)
	j.Start()
	time.Sleep(15 * time.Millisecond)

	states, err := j.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Fatalf("snapshot returned %d states, want 4", len(states))
	}
	savedSteps := make([]int, len(states))
	for rank, st := range states {
		if st.Rank != rank {
			t.Errorf("state %d has rank %d, want sorted by rank", rank, st.Rank)
		}
		savedSteps[rank] = st.Step
	}

	// The job kept its workers: it must finish on its own, undisturbed.
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("snapshotted run differs from reference at (%d,%d) by %g", x, y, d)
	}

	// The returned states stayed frozen at the save point even though the
	// job ran past it.
	for rank, st := range states {
		if st.Step != savedSteps[rank] {
			t.Errorf("rank %d snapshot advanced from step %d to %d", rank, savedSteps[rank], st.Step)
		}
	}

	// A fresh job restored from the snapshot finishes bit-identically —
	// the coordinator-crash restore path.
	cfg2 := channelConfig(t, MethodLB, 2, 2, 24, 16)
	j2, jp2 := newTestJob(t, cfg2, steps)
	if err := j2.Resume(states); err != nil {
		t.Fatal(err)
	}
	if err := j2.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j2.Shutdown()
	got2 := jp2.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got2, 0); !ok {
		t.Errorf("restored run differs from reference at (%d,%d) by %g", x, y, d)
	}
}

// TestSuspendTwice exercises repeated preemption of the same job.
func TestSuspendTwice(t *testing.T) {
	const steps = 30
	ref, _, err := RunSequential2D(channelConfig(t, MethodFD, 2, 1, 16, 8), steps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := channelConfig(t, MethodFD, 2, 1, 16, 8)
	j, jp := newTestJob(t, cfg, steps)
	j.Start()
	for i := 0; i < 2; i++ {
		time.Sleep(5 * time.Millisecond)
		states, err := j.Suspend()
		if err != nil {
			t.Fatalf("suspend %d: %v", i, err)
		}
		if err := j.Resume(states); err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("twice-suspended run differs at (%d,%d) by %g", x, y, d)
	}
}

// TestSuspendAfterCompletion: suspending a job whose workers already
// finished still dumps a complete, restartable checkpoint.
func TestSuspendAfterCompletion(t *testing.T) {
	const steps = 5
	cfg := channelConfig(t, MethodLB, 2, 1, 16, 8)
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 1, 16, 8), steps)
	if err != nil {
		t.Fatal(err)
	}
	j, jp := newTestJob(t, cfg, steps)
	j.Start()
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	states, err := j.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		if st.Step != steps {
			t.Errorf("rank %d dumped at step %d, want %d", st.Rank, st.Step, steps)
		}
	}
	if err := j.Resume(states); err != nil {
		t.Fatal(err)
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
	got := jp.Gather(steps)
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Errorf("post-completion suspend corrupted state at (%d,%d) by %g", x, y, d)
	}
}

// TestPlaceOnAndRelease: an external scheduler's reservation flows into
// the job's host bookkeeping and back out.
func TestPlaceOnAndRelease(t *testing.T) {
	cfg := channelConfig(t, MethodLB, 2, 1, 16, 8)
	j, _ := newTestJob(t, cfg, 3)
	cl := cluster.NewPaperCluster()
	cl.Advance(30 * time.Minute)
	res, err := cl.Reserve("job-a", j.P(), cluster.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.PlaceOn(cl, res.Hosts); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < j.P(); rank++ {
		h := j.HostOf(rank)
		if h == nil || h.Assigned() != rank {
			t.Fatalf("rank %d not placed: %v", rank, h)
		}
	}
	j.ReleaseHosts()
	if j.HostOf(0) != nil {
		t.Error("ReleaseHosts kept the placement")
	}
	if res.Hosts[0].Assigned() != -1 {
		t.Error("ReleaseHosts left the host assigned")
	}
	res.Release() // idempotent after the job released its hosts
	j.Start()
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
}
