package core

import (
	"reflect"
	"testing"

	"repro/internal/decomp"
)

// weightedChannelConfig rebuilds channelConfig over an explicit
// decomposition, so the same problem can run uniform and weighted.
func weightedChannelConfig(t *testing.T, method string, d *decomp.Decomp2D) *Config2D {
	t.Helper()
	cfg := channelConfig(t, method, d.JX, d.JY, d.GX, d.GY)
	d.PeriodicX = true
	cfg.D = d
	return cfg
}

// TestWeightedEqualSpeedsBitIdenticalDumps is the degenerate-case
// guarantee at the dump level: decomposing a problem with the
// speed-weighted splitter under equal speeds produces rank dump states
// bit-identical to the uniform decomposition's — shapes, ranks, fields
// and all — so homogeneous pools are untouched by the weighting layer.
func TestWeightedEqualSpeedsBitIdenticalDumps(t *testing.T) {
	for _, method := range []string{MethodLB, MethodFD} {
		st := decomp.Star
		if method == MethodLB {
			st = decomp.Full
		}
		speed := make([]float64, 3*2)
		for i := range speed {
			speed[i] = 39132
		}
		wd, err := decomp.New2DWeighted(3, 2, 35, 17, st, speed) // remainders on both axes
		if err != nil {
			t.Fatal(err)
		}
		ud, err := decomp.New2D(3, 2, 35, 17, st)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decompose2D(weightedChannelConfig(t, method, ud))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompose2D(weightedChannelConfig(t, method, wd))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: equal-speed weighted dumps differ from uniform", method)
		}
	}
}

// TestWeightedParallelMatchesSequential: a genuinely non-uniform
// weighted decomposition (2:1:1 speeds) runs the parallel program
// bit-identically to the sequential reference on the same spans — the
// paper's central reproducibility claim holds for weighted subregions.
func TestWeightedParallelMatchesSequential(t *testing.T) {
	const steps = 25
	mk := func() *Config2D {
		d, err := decomp.New2DWeighted(3, 1, 36, 12, decomp.Full, []float64{2, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		return weightedChannelConfig(t, MethodLB, d)
	}
	// The spans must actually be non-uniform for this to test anything.
	if sh := mk().D.ShapeOf(); reflect.DeepEqual(sh.X, []int{12, 12, 12}) {
		t.Fatal("weighted spans degenerated to uniform; bad test setup")
	}
	ref, _, err := RunSequential2D(mk(), steps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunParallel2D(mk(), steps, HubFactory())
	if err != nil {
		t.Fatal(err)
	}
	if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
		t.Fatalf("weighted parallel differs from sequential at (%d,%d) by %g", x, y, d)
	}
}
