package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/syncfile"
)

// resizeCfg2D builds a filter-off channel config (Eps = 0 is the resize
// precondition: filter applicability is seam-dependent).
func resizeCfg2D(t *testing.T, method string, jx, jy int) *Config2D {
	t.Helper()
	d, err := decomp.New2D(jx, jy, 24, 16, decomp.Full)
	if err != nil {
		t.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0
	par.ForceX = 1e-5
	return &Config2D{
		Method: method,
		Par:    par,
		Mask:   fluid.ChannelMask2D(24, 16),
		D:      d,
	}
}

func resizeCfg3D(t *testing.T, method string, jx, jy, jz int) *Config3D {
	t.Helper()
	d, err := decomp.New3D(jx, jy, jz, 12, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The duct mask walls only the y faces; x and z must be periodic so
	// the domain is enclosed — the dump/restore bit-identity precondition
	// (see Resize's doc comment).
	d.PeriodicX = true
	d.PeriodicZ = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0
	par.ForceX = 1e-5
	return &Config3D{
		Method: method,
		Par:    par,
		Mask:   fluid.ChannelMask3D(12, 10, 8),
		D:      d,
	}
}

// startJob2D launches a job and waits until every rank has advanced past
// the given step, so a mid-run Resize really interrupts in-flight compute.
func startJob2D(t *testing.T, cfg *Config2D, steps int) (*Job, *JobPrograms2D) {
	t.Helper()
	sf, err := syncfile.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sf.Poll = time.Millisecond
	job, progs, err := NewJob2D(cfg, HubFactory(), sf, steps)
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	return job, progs
}

// TestResize2DBitIdentical: grow then shrink a running 2D job and compare
// the final fields bit-for-bit with the sequential reference, for both
// methods.
func TestResize2DBitIdentical(t *testing.T) {
	const steps = 30
	for _, method := range []string{MethodLB, MethodFD} {
		t.Run(method, func(t *testing.T) {
			ref, _, err := RunSequential2D(resizeCfg2D(t, method, 2, 2), steps)
			if err != nil {
				t.Fatal(err)
			}

			cfg := resizeCfg2D(t, method, 2, 2)
			job, progs := startJob2D(t, cfg, steps)
			// Grow 4 -> 6 ranks.
			if err := job.Resize(decomp.UniformShape2D(3, 2, 24, 16)); err != nil {
				t.Fatalf("grow: %v", err)
			}
			if got := job.P(); got != 6 {
				t.Fatalf("after grow P = %d, want 6", got)
			}
			// Shrink 6 -> 2 ranks.
			if err := job.Resize(decomp.UniformShape2D(2, 1, 24, 16)); err != nil {
				t.Fatalf("shrink: %v", err)
			}
			if got := job.P(); got != 2 {
				t.Fatalf("after shrink P = %d, want 2", got)
			}
			if err := job.WaitDone(); err != nil {
				t.Fatal(err)
			}
			job.Shutdown()

			got := progs.Gather(steps)
			if got.NX != ref.NX || got.NY != ref.NY {
				t.Fatalf("result shape %dx%d, want %dx%d", got.NX, got.NY, ref.NX, ref.NY)
			}
			for i := range ref.Rho {
				for _, pair := range [][2][]float64{{ref.Rho, got.Rho}, {ref.Vx, got.Vx}, {ref.Vy, got.Vy}} {
					if d := math.Abs(pair[0][i] - pair[1][i]); d != 0 {
						t.Fatalf("resized solution differs at index %d by %g", i, d)
					}
				}
			}
		})
	}
}

// TestResize3DBitIdentical is the 3D analogue: grow 2 -> 4 ranks mid-run.
func TestResize3DBitIdentical(t *testing.T) {
	const steps = 12
	for _, method := range []string{MethodLB, MethodFD} {
		t.Run(method, func(t *testing.T) {
			ref, _, err := RunSequential3D(resizeCfg3D(t, method, 2, 1, 1), steps)
			if err != nil {
				t.Fatal(err)
			}

			cfg := resizeCfg3D(t, method, 2, 1, 1)
			sf, err := syncfile.New(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			sf.Poll = time.Millisecond
			job, progs, err := NewJob3D(cfg, HubFactory(), sf, steps)
			if err != nil {
				t.Fatal(err)
			}
			job.Start()
			if err := job.Resize(decomp.UniformShape3D(2, 2, 1, 12, 10, 8)); err != nil {
				t.Fatalf("grow: %v", err)
			}
			if got := job.P(); got != 4 {
				t.Fatalf("after grow P = %d, want 4", got)
			}
			if err := job.WaitDone(); err != nil {
				t.Fatal(err)
			}
			job.Shutdown()

			got := progs.Gather(steps)
			for i := range ref.Rho {
				for _, pair := range [][2][]float64{{ref.Rho, got.Rho}, {ref.Vx, got.Vx}, {ref.Vy, got.Vy}, {ref.Vz, got.Vz}} {
					if d := math.Abs(pair[0][i] - pair[1][i]); d != 0 {
						t.Fatalf("resized 3D solution differs at index %d by %g", i, d)
					}
				}
			}
		})
	}
}

// TestResizeRequiresFilterOff: with the fourth-order filter on, Resize
// refuses (seam-dependent applicability) and the job keeps running to a
// correct unresized completion.
func TestResizeRequiresFilterOff(t *testing.T) {
	const steps = 10
	cfg := resizeCfg2D(t, MethodLB, 2, 2)
	cfg.Par.Eps = 0.01
	ref, _, err := RunSequential2D(resizeCfg2D(t, MethodLB, 2, 2), steps)
	_ = ref
	if err != nil {
		t.Fatal(err)
	}
	job, progs := startJob2D(t, cfg, steps)
	err = job.Resize(decomp.UniformShape2D(3, 2, 24, 16))
	if err == nil || !strings.Contains(err.Error(), "filter") {
		t.Fatalf("resize with Eps != 0: err = %v, want filter precondition error", err)
	}
	// The failed resize resumed the job on its old decomposition.
	if got := job.P(); got != 4 {
		t.Fatalf("after refused resize P = %d, want 4", got)
	}
	if err := job.WaitDone(); err != nil {
		t.Fatal(err)
	}
	job.Shutdown()
	if got := progs.Gather(steps); got.ActiveRegions != 4 {
		t.Fatalf("gathered ActiveRegions = %d, want 4", got.ActiveRegions)
	}
}
