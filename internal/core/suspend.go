package core

import (
	"fmt"
	"maps"
	"slices"

	"repro/internal/cluster"
	"repro/internal/dump"
)

// Suspend halts the whole job through the section-5.1 migration protocol
// applied to every rank at once: all processes synchronize, each saves its
// state into a dump and exits. The returned states (ordered by rank) are
// the complete checkpoint; Resume restarts the job from them, and the
// continued computation is bitwise identical to an uninterrupted run —
// the same guarantee migration gives, reused as a scheduling primitive so
// a farm can preempt a low-priority job and give its hosts to another.
//
// After Suspend no workers are running; only Resume is valid next.
func (j *Job) Suspend() ([]*dump.State, error) {
	// 1-2. Signal every process to synchronize and wait for all of them
	// to reach the synchronization step (done events may interleave).
	j.round++
	for _, rank := range j.ranks() {
		j.workers[rank].RequestPause(j.round)
	}
	paused := map[int]bool{}
	for len(paused) < j.P() {
		e, err := j.nextEvent()
		if err != nil {
			return nil, fmt.Errorf("core: suspend: waiting for pause: %w", err)
		}
		switch e.Kind {
		case EventPaused:
			paused[e.Rank] = true
		case EventDone:
			j.done[e.Rank] = true
		}
	}

	// 3. Every process saves its state and exits.
	states := map[int]*dump.State{}
	for _, rank := range j.ranks() {
		j.workers[rank].RequestMigrate()
	}
	for len(states) < j.P() {
		e, err := j.nextEvent()
		if err != nil {
			return nil, fmt.Errorf("core: suspend: waiting for dumps: %w", err)
		}
		if e.Kind == EventMigrated {
			states[e.Rank] = e.State.(*dump.State)
		}
	}
	out := make([]*dump.State, 0, j.P())
	for rank := 0; rank < j.P(); rank++ {
		st, ok := states[rank]
		if !ok {
			return nil, fmt.Errorf("core: suspend: no dump for rank %d", rank)
		}
		out = append(out, st)
	}
	// The compute goroutines have exited; retire their controllers too.
	for _, rank := range j.ranks() {
		j.workers[rank].Shutdown()
	}
	return out, nil
}

// Snapshot checkpoints a running job without giving up its hosts: the
// suspend protocol runs in full — every rank synchronizes, dumps its
// state and exits — and the job immediately resumes from the captured
// states on the same placement. The returned states are frozen at the
// save point (Resume re-stamps epochs on its own copies), so a farm
// coordinator can persist them to disk while the computation continues;
// the suspend/resume round trip carries the same bit-identity guarantee
// as a migration, so taking a snapshot never changes the results.
func (j *Job) Snapshot() ([]*dump.State, error) {
	states, err := j.Suspend()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	// Resume overwrites each state's Epoch for the restarted workers; hand
	// the caller shallow copies so the persisted checkpoint keeps the save
	// point's view. The field arrays are never mutated after a dump
	// (RestoreState copies out of them), so sharing them is safe.
	out := make([]*dump.State, len(states))
	for i, st := range states {
		cp := *st
		out[i] = &cp
	}
	if err := j.Resume(states); err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return out, nil
}

// Resume restarts a suspended job from the states Suspend returned: every
// rank's Program is rebuilt from its dump and a fresh worker starts at
// the next communication epoch, exactly as step 4 of the migration
// protocol restarts a single migrated process.
func (j *Job) Resume(states []*dump.State) error {
	if len(states) != j.P() {
		return fmt.Errorf("core: resume: %d states for %d ranks", len(states), j.P())
	}
	j.epoch++
	j.done = make(map[int]bool)
	restarted := make([]*Worker, 0, len(states))
	for _, st := range states {
		st.Epoch = j.epoch
		prog, err := j.Rebuild(st)
		if err != nil {
			return fmt.Errorf("core: resume: rebuilding rank %d: %w", st.Rank, err)
		}
		// Keep any scheduler-level worker-budget override across the
		// suspend/resume round trip (Rebuild restores the config default).
		if j.workersOverride > 0 {
			if p, ok := prog.(workerBudgeted); ok {
				p.SetWorkers(j.workersOverride)
			}
		}
		w, err := NewWorkerAt(prog, j.Factory, j.epoch, j.events, st.Step)
		if err != nil {
			return fmt.Errorf("core: resume: restarting rank %d: %w", st.Rank, err)
		}
		j.workers[st.Rank] = w
		if j.onRebuild != nil {
			j.onRebuild(st.Rank, prog)
		}
		restarted = append(restarted, w)
	}
	for _, w := range restarted {
		j.wireSync(w)
	}
	for _, w := range restarted {
		go w.Start(j.Until)
	}
	return nil
}

// PlaceOn records an externally chosen placement — a scheduler's
// reservation — instead of selecting hosts itself as PlaceOnCluster does:
// hosts[rank] serves rank. Hosts the caller has not assigned yet are
// assigned here.
func (j *Job) PlaceOn(c *cluster.Cluster, hosts []*cluster.Host) error {
	if len(hosts) < j.P() {
		return fmt.Errorf("core: placement has %d hosts, need %d", len(hosts), j.P())
	}
	j.Cluster = c
	for rank := 0; rank < j.P(); rank++ {
		if hosts[rank].Assigned() < 0 {
			hosts[rank].Assign(rank)
		}
		j.hostOf[rank] = hosts[rank]
	}
	return nil
}

// Rehost records that a rank now runs on a different host. The farm's
// reclaim path uses it together with MigrateRanks: the cluster-side swap
// (cluster.Migrate) has already unassigned the reclaimed host and
// assigned the replacement, so only the job's own rank->host bookkeeping
// needs to follow.
func (j *Job) Rehost(rank int, h *cluster.Host) {
	j.hostOf[rank] = h
}

// ReleaseHosts unassigns every host of the job's current placement, for a
// suspension or a completed run handing the pool back to a scheduler.
func (j *Job) ReleaseHosts() {
	for _, rank := range slices.Sorted(maps.Keys(j.hostOf)) {
		if h := j.hostOf[rank]; h != nil {
			h.Unassign()
		}
		delete(j.hostOf, rank)
	}
}
