package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/msg"
)

// TransportFactory opens a rank's communication channels for an epoch.
// Epochs increment at every migration, when all channels are re-opened
// (section 4.2: "once a TCP/IP channel is opened at startup, it remains
// open throughout the computation except during migration when it must be
// re-opened").
type TransportFactory func(rank, epoch int) (msg.Transport, error)

// SyncFunc announces a rank's current step for a synchronization round and
// returns the chosen synchronization step (appendix B: every process
// announces, T_max is read back, and T_max + 1 is the sync step). It is
// called from the worker's control goroutine, never from the compute loop,
// mirroring the paper's use of UNIX signal handlers: a process blocked in
// a receive still announces promptly.
type SyncFunc func(round, rank, step int) (int, error)

// ctrl messages from the coordinator to a worker: the in-process stand-in
// for the paper's UNIX signals (kill -USR2 to request migration sync, CONT
// to resume).
type ctrlMsg struct {
	kind  ctrlKind
	round int        // sync round for ctrlPause
	epoch int        // new communication epoch for ctrlResume
	reply chan error // signalled when the command has taken effect
}

type ctrlKind int

const (
	ctrlPause   ctrlKind = iota // sync, run to the sync step, then hold
	ctrlResume                  // re-open channels and continue
	ctrlMigrate                 // dump state and exit (while paused)
	ctrlStop                    // exit without dumping (while paused)
)

// Event is a worker lifecycle notification to the coordinator.
type Event struct {
	Rank  int
	Kind  EventKind
	Step  int
	Err   error
	State interface{} // *dump.State for EventMigrated
}

// EventKind enumerates worker notifications.
type EventKind int

const (
	// EventDone: the worker reached the requested step count.
	EventDone EventKind = iota
	// EventPaused: the worker reached the synchronization step, closed
	// its channels and holds.
	EventPaused
	// EventMigrated: the worker dumped its state and exited.
	EventMigrated
	// EventError: the worker failed.
	EventError
)

func (k EventKind) String() string {
	switch k {
	case EventDone:
		return "done"
	case EventPaused:
		return "paused"
	case EventMigrated:
		return "migrated"
	case EventError:
		return "error"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// pkey identifies a not-yet-consumed message slot.
type pkey struct {
	step, phase, dir, peer int
}

// pauseAt sentinels.
const (
	pauseNone = -1
	// pausePending: a synchronization round is in progress; the compute
	// loop must hold at the next step boundary until the sync step is
	// known. The paper's processes block after announcing their step;
	// without this, a fast worker could run past the chosen step.
	pausePending = -2
)

// Worker runs one Program over a Transport: the parallel program of
// section 4.1, "compute locally, communicate with neighbours", repeated.
//
// Communication is first-come-first-served (appendix C): whatever message
// arrives next is either consumed by the current phase or buffered for the
// step it belongs to, so a delayed neighbour never stalls progress that
// does not depend on it. Neighbouring subregions may drift several steps
// apart (appendix A); the pending buffer absorbs the early messages.
type Worker struct {
	Prog    Program
	Factory TransportFactory
	Sync    SyncFunc // nil disables the pause protocol

	Step  int
	Epoch int

	t       msg.Transport
	pending map[pkey][]float64
	want    map[pkey]bool // await's scratch set, reused so the step loop stays allocation-free

	step    atomic.Int64 // mirror of Step, readable by the controller
	pauseAt atomic.Int64 // sync step to hold at; pauseNone / pausePending

	ctrl   chan ctrlMsg
	paused chan ctrlMsg  // resume/migrate/stop commands, forwarded
	wake   chan struct{} // nudges a done worker to re-check pauseAt
	events chan<- Event
}

// NewWorker creates a worker starting at step 0.
func NewWorker(prog Program, factory TransportFactory, epoch int, events chan<- Event) (*Worker, error) {
	return NewWorkerAt(prog, factory, epoch, events, 0)
}

// NewWorkerAt creates a worker whose state is already at the given step
// (a restart from a dump file).
func NewWorkerAt(prog Program, factory TransportFactory, epoch int, events chan<- Event, step int) (*Worker, error) {
	t, err := factory(prog.Rank(), epoch)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		Prog:    prog,
		Factory: factory,
		Step:    step,
		Epoch:   epoch,
		t:       t,
		pending: make(map[pkey][]float64),
		want:    make(map[pkey]bool),
		ctrl:    make(chan ctrlMsg, 8),
		paused:  make(chan ctrlMsg, 8),
		wake:    make(chan struct{}, 1),
		events:  events,
	}
	w.step.Store(int64(step))
	w.pauseAt.Store(pauseNone)
	return w, nil
}

// Rank returns the worker's rank.
func (w *Worker) Rank() int { return w.Prog.Rank() }

// RunStep advances one full integration step: every phase computes and
// exchanges.
func (w *Worker) RunStep() error {
	for ph := 0; ph < w.Prog.Phases(); ph++ {
		w.Prog.Compute(ph)
		for _, s := range w.Prog.Sends(ph) {
			err := w.t.Send(msg.Message{
				To:    s.Peer,
				Step:  w.Step,
				Phase: ph,
				Dir:   s.Dir,
				Data:  s.Data,
			})
			if err != nil {
				return fmt.Errorf("rank %d step %d phase %d: send to %d: %w",
					w.Rank(), w.Step, ph, s.Peer, err)
			}
		}
		if err := w.await(ph); err != nil {
			return err
		}
	}
	w.Step++
	w.step.Store(int64(w.Step))
	return nil
}

// await blocks until every expected message of (w.Step, phase) has been
// unpacked, buffering messages that belong to later steps.
func (w *Worker) await(phase int) error {
	want := w.want
	clear(want)
	for _, e := range w.Prog.Expects(phase) {
		k := pkey{w.Step, phase, e.Dir, e.Peer}
		if data, ok := w.pending[k]; ok {
			delete(w.pending, k)
			w.Prog.Unpack(phase, e.Dir, data)
			continue
		}
		want[k] = true
	}
	for len(want) > 0 {
		m, err := w.t.Recv()
		if err != nil {
			return fmt.Errorf("rank %d step %d phase %d: recv: %w", w.Rank(), w.Step, phase, err)
		}
		k := pkey{m.Step, m.Phase, m.Dir, m.From}
		if want[k] {
			delete(want, k)
			w.Prog.Unpack(phase, m.Dir, m.Data)
			continue
		}
		// A message for a later step: buffer it. Neighbours can run
		// several steps ahead (appendix A).
		w.pending[k] = m.Data
	}
	return nil
}

// RunSteps advances until Step reaches until, without any control-plane
// interaction. It is the simple path used by tests and examples.
func (w *Worker) RunSteps(until int) error {
	for w.Step < until {
		if err := w.RunStep(); err != nil {
			return err
		}
	}
	return nil
}

// Start runs the worker to completion of `until` steps while honouring the
// migration control protocol. It blocks; run it in its own goroutine (one
// goroutine = one workstation process). The controller goroutine plays the
// role of the UNIX signal handler: it services synchronization requests
// even while the compute loop is blocked in a receive.
func (w *Worker) Start(until int) {
	go w.controller(until)
	doneSent := false
	for {
		pa := w.pauseAt.Load()
		if pa == pausePending {
			// A sync round is being resolved; hold at this boundary.
			if _, ok := <-w.wake; !ok {
				w.t.Close()
				return
			}
			continue
		}
		if pa >= 0 && int64(w.Step) >= pa {
			// Synchronization step reached: close channels and hold
			// (section 5.1).
			w.t.Close()
			w.events <- Event{Rank: w.Rank(), Kind: EventPaused, Step: w.Step}
			if !w.holdPaused() {
				return
			}
			doneSent = false
			continue
		}
		if w.Step >= until {
			if !doneSent {
				w.events <- Event{Rank: w.Rank(), Kind: EventDone, Step: w.Step}
				doneSent = true
			}
			// Wait for a pause request (a migration elsewhere still
			// needs this worker) or shutdown.
			if _, ok := <-w.wake; !ok {
				w.t.Close()
				return
			}
			continue
		}
		if err := w.RunStep(); err != nil {
			w.events <- Event{Rank: w.Rank(), Kind: EventError, Step: w.Step, Err: err}
			return
		}
	}
}

// controller services control commands asynchronously. Pause requests are
// resolved through the shared synchronization file and clamped to `until`
// (a worker that already finished cannot advance further, so the sync step
// never exceeds the run length).
func (w *Worker) controller(until int) {
	for c := range w.ctrl {
		switch c.kind {
		case ctrlPause:
			if w.Sync == nil {
				c.fail(fmt.Errorf("rank %d: no SyncFunc configured", w.Rank()))
				continue
			}
			// Block the compute loop at its next boundary, then announce.
			// The announced step may lag the true step by at most the one
			// step in flight, and the sync step is T_max + 1 >= announced
			// + 1, so the worker never overshoots it.
			w.pauseAt.Store(pausePending)
			s, err := w.Sync(c.round, w.Rank(), int(w.step.Load()))
			if err != nil {
				w.pauseAt.Store(pauseNone)
				w.nudge()
				c.fail(err)
				continue
			}
			if s > until {
				s = until
			}
			w.pauseAt.Store(int64(s))
			w.nudge()
			c.ok()
		default:
			// Resume/migrate/stop apply to a paused worker.
			w.paused <- c
		}
	}
	close(w.wake)
	close(w.paused)
}

// nudge wakes the compute loop if it is holding.
func (w *Worker) nudge() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (c ctrlMsg) ok() {
	if c.reply != nil {
		c.reply <- nil
	}
}

func (c ctrlMsg) fail(err error) {
	if c.reply != nil {
		c.reply <- err
	}
}

// holdPaused processes commands while paused at the sync step. It returns
// false when the worker exits (migration or stop).
func (w *Worker) holdPaused() bool {
	for c := range w.paused {
		switch c.kind {
		case ctrlResume:
			t, err := w.Factory(w.Rank(), c.epoch)
			if err != nil {
				c.fail(err)
				w.events <- Event{Rank: w.Rank(), Kind: EventError, Step: w.Step, Err: err}
				return false
			}
			w.t = t
			w.Epoch = c.epoch
			w.pauseAt.Store(pauseNone)
			c.ok()
			return true
		case ctrlMigrate:
			st := w.Prog.DumpState(w.Step, w.Epoch)
			c.ok()
			w.events <- Event{Rank: w.Rank(), Kind: EventMigrated, Step: w.Step, State: st}
			return false
		case ctrlStop:
			c.ok()
			return false
		default:
			c.fail(fmt.Errorf("rank %d: unexpected control %d while paused", w.Rank(), c.kind))
		}
	}
	return false
}

// RequestPause asks the worker to synchronize (round) and hold at the sync
// step. It is the coordinator's "kill -USR2".
func (w *Worker) RequestPause(round int) {
	w.ctrl <- ctrlMsg{kind: ctrlPause, round: round}
}

// RequestResume re-opens the worker's channels under a new epoch. The
// returned channel yields the outcome; it is the coordinator's "CONT".
func (w *Worker) RequestResume(epoch int) chan error {
	reply := make(chan error, 1)
	w.ctrl <- ctrlMsg{kind: ctrlResume, epoch: epoch, reply: reply}
	return reply
}

// RequestMigrate tells a paused worker to dump its state and exit.
func (w *Worker) RequestMigrate() chan error {
	reply := make(chan error, 1)
	w.ctrl <- ctrlMsg{kind: ctrlMigrate, reply: reply}
	return reply
}

// Shutdown closes the control plane; a running worker finishes its steps,
// a done worker exits.
func (w *Worker) Shutdown() {
	close(w.ctrl)
}

// Close tears down the worker's transport (used by simple non-Start runs).
func (w *Worker) Close() error { return w.t.Close() }
