package core

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/dump"
	"repro/internal/fd"
	"repro/internal/fluid"
	"repro/internal/lbm"
	"repro/internal/msg"
	"repro/internal/pool"
)

// Method names accepted by the configs.
const (
	MethodFD = "fd" // explicit finite differences
	MethodLB = "lb" // lattice Boltzmann
)

// Config2D describes a complete 2D simulation: the initialization program's
// output (global mask and initial fields), the physical parameters, the
// numerical method, and the decomposition.
type Config2D struct {
	Method string // MethodFD or MethodLB
	Par    fluid.Params
	Mask   *fluid.Mask2D
	D      *decomp.Decomp2D

	// Workers is the intra-rank worker-slab budget handed to each rank's
	// solver; 0 means an even share of GOMAXPROCS across the ranks
	// (pool.DefaultPerRank). Fields are bit-identical at every value.
	Workers int

	// Initial fields at global coordinates; nil means rho = Rho0, V = 0.
	InitRho, InitVx, InitVy func(x, y int) float64
}

// Validate checks the configuration.
func (c *Config2D) Validate() error {
	if c.Method != MethodFD && c.Method != MethodLB {
		return fmt.Errorf("core: unknown method %q", c.Method)
	}
	if c.Mask == nil || c.D == nil {
		return fmt.Errorf("core: mask and decomposition are required")
	}
	if c.Mask.NX != c.D.GX || c.Mask.NY != c.D.GY {
		return fmt.Errorf("core: mask %dx%d does not match decomposition grid %dx%d",
			c.Mask.NX, c.Mask.NY, c.D.GX, c.D.GY)
	}
	return c.Par.Check()
}

// wrapCoord folds a global coordinate into [0, g) on periodic axes.
func wrapCoord(v, g int, periodic bool) int {
	if !periodic {
		return v
	}
	return ((v % g) + g) % g
}

// LocalMask2D adapts the global mask to one subregion's local coordinates,
// respecting the decomposition's periodic axes. Coordinates outside a
// non-periodic domain read as Wall (the region is enclosed by walls).
func LocalMask2D(d *decomp.Decomp2D, sub *decomp.Subregion2D, m *fluid.Mask2D) func(x, y int) fluid.CellType {
	return func(x, y int) fluid.CellType {
		gx := wrapCoord(sub.X0+x, d.GX, d.PeriodicX)
		gy := wrapCoord(sub.Y0+y, d.GY, d.PeriodicY)
		return m.At(gx, gy)
	}
}

// globalAt evaluates an init function at wrapped global coordinates, with a
// default for nodes beyond a non-periodic domain.
func (c *Config2D) globalAt(f func(x, y int) float64, gx, gy int, def float64) float64 {
	gx = wrapCoord(gx, c.D.GX, c.D.PeriodicX)
	gy = wrapCoord(gy, c.D.GY, c.D.PeriodicY)
	if gx < 0 || gx >= c.D.GX || gy < 0 || gy >= c.D.GY {
		return def
	}
	if f == nil {
		return def
	}
	return f(gx, gy)
}

// workerBudget resolves the intra-rank worker count: the explicit Workers
// knob if set, else an even share of GOMAXPROCS across the ranks so
// co-scheduled ranks don't oversubscribe the machine.
func (c *Config2D) workerBudget() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return pool.DefaultPerRank(c.D.P())
}

// NewMethod2D builds the numerical method instance for one subregion,
// with fields initialized from the config: the combined initialization +
// decomposition programs of section 4.1 for a fresh start, plus the
// intra-rank worker budget.
func (c *Config2D) NewMethod2D(rank int) (Method2D, error) {
	m, err := c.newMethod2D(rank)
	if err != nil {
		return nil, err
	}
	m.SetWorkers(c.workerBudget())
	return m, nil
}

func (c *Config2D) newMethod2D(rank int) (Method2D, error) {
	sub := c.D.ByRank(rank)
	mask := LocalMask2D(c.D, sub, c.Mask)
	switch c.Method {
	case MethodFD:
		s, err := fd.NewSolver2D(sub.NX, sub.NY, c.Par, mask)
		if err != nil {
			return nil, err
		}
		// Fill interior and ghosts from the global initial state: the
		// ghost values equal the neighbours' edges, exactly the state an
		// exchange would have produced.
		for y := -1; y <= sub.NY; y++ {
			for x := -1; x <= sub.NX; x++ {
				gx, gy := sub.X0+x, sub.Y0+y
				s.Rho.Set(x, y, c.globalAt(c.InitRho, gx, gy, c.Par.Rho0))
				s.Vx.Set(x, y, c.globalAt(c.InitVx, gx, gy, 0))
				s.Vy.Set(x, y, c.globalAt(c.InitVy, gx, gy, 0))
			}
		}
		return s, nil
	case MethodLB:
		s, err := lbm.NewSolver2D(sub.NX, sub.NY, c.Par, mask)
		if err != nil {
			return nil, err
		}
		for y := -1; y <= sub.NY; y++ {
			for x := -1; x <= sub.NX; x++ {
				gx, gy := sub.X0+x, sub.Y0+y
				s.Rho.Set(x, y, c.globalAt(c.InitRho, gx, gy, c.Par.Rho0))
				s.Vx.Set(x, y, c.globalAt(c.InitVx, gx, gy, 0))
				s.Vy.Set(x, y, c.globalAt(c.InitVy, gx, gy, 0))
			}
		}
		s.InitEquilibrium()
		return s, nil
	}
	return nil, fmt.Errorf("core: unknown method %q", c.Method)
}

// NewProgram builds the Program for one rank.
func (c *Config2D) NewProgram(rank int) (*Program2D, error) {
	m, err := c.NewMethod2D(rank)
	if err != nil {
		return nil, err
	}
	return NewProgram2D(m, c.D, rank), nil
}

// Decompose2D is the decomposition program: it produces one dump.State per
// active subregion, each containing everything a workstation needs to
// participate.
func Decompose2D(c *Config2D) ([]*dump.State, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	states := make([]*dump.State, 0, c.D.P())
	for rank := 0; rank < c.D.P(); rank++ {
		p, err := c.NewProgram(rank)
		if err != nil {
			return nil, err
		}
		states = append(states, p.DumpState(0, 0))
	}
	return states, nil
}

// Submit2D is the job-submit program for one rank: it rebuilds the Program
// from a dump file and wraps it in a Worker whose channels are opened
// through the factory.
func Submit2D(c *Config2D, st *dump.State, factory TransportFactory, events chan<- Event) (*Worker, error) {
	p, err := c.NewProgram(st.Rank)
	if err != nil {
		return nil, err
	}
	if err := p.RestoreState(st); err != nil {
		return nil, err
	}
	return NewWorkerAt(p, factory, st.Epoch, events, st.Step)
}

// Result2D is a gathered global solution.
type Result2D struct {
	NX, NY        int
	Rho, Vx, Vy   []float64 // row-major interior fields
	Vorticity     []float64 // curl of velocity (centered differences)
	Steps         int
	ActiveRegions int
}

// At indexes a gathered field.
func (r *Result2D) At(f []float64, x, y int) float64 { return f[y*r.NX+x] }

// Gather2D assembles the global fields from per-rank programs, inverting
// the decomposition.
func Gather2D(c *Config2D, progs []*Program2D, steps int) *Result2D {
	res := &Result2D{
		NX: c.D.GX, NY: c.D.GY,
		Rho:           make([]float64, c.D.GX*c.D.GY),
		Vx:            make([]float64, c.D.GX*c.D.GY),
		Vy:            make([]float64, c.D.GX*c.D.GY),
		Vorticity:     make([]float64, c.D.GX*c.D.GY),
		Steps:         steps,
		ActiveRegions: c.D.P(),
	}
	for i := range res.Rho {
		res.Rho[i] = c.Par.Rho0
	}
	for _, p := range progs {
		var rho, vx, vy interface {
			At(x, y int) float64
		}
		switch m := p.M.(type) {
		case *fd.Solver2D:
			rho, vx, vy = m.Rho, m.Vx, m.Vy
		case *lbm.Solver2D:
			rho, vx, vy = m.Rho, m.Vx, m.Vy
		default:
			continue
		}
		sub := p.Sub
		for y := 0; y < sub.NY; y++ {
			for x := 0; x < sub.NX; x++ {
				g := (sub.Y0+y)*c.D.GX + (sub.X0 + x)
				res.Rho[g] = rho.At(x, y)
				res.Vx[g] = vx.At(x, y)
				res.Vy[g] = vy.At(x, y)
			}
		}
	}
	// Vorticity from the gathered velocity (interior nodes only).
	for y := 1; y < res.NY-1; y++ {
		for x := 1; x < res.NX-1; x++ {
			g := y*res.NX + x
			res.Vorticity[g] = 0.5*(res.Vy[g+1]-res.Vy[g-1]) - 0.5*(res.Vx[g+res.NX]-res.Vx[g-res.NX])
		}
	}
	return res
}

// RunSequential2D executes the decomposed problem in one goroutine,
// delivering messages directly between programs in phase lockstep. It is
// the serial reference: identical numerics to the parallel run (including
// the filter's seam behaviour), with no transports involved.
func RunSequential2D(c *Config2D, steps int) (*Result2D, []*Program2D, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	progs := make([]*Program2D, c.D.P())
	for rank := range progs {
		p, err := c.NewProgram(rank)
		if err != nil {
			return nil, nil, err
		}
		progs[rank] = p
	}
	if err := stepSequential2D(progs, steps); err != nil {
		return nil, nil, err
	}
	return Gather2D(c, progs, steps), progs, nil
}

// stepSequential2D advances a set of programs in phase lockstep.
func stepSequential2D(progs []*Program2D, steps int) error {
	if len(progs) == 0 {
		return fmt.Errorf("core: no programs")
	}
	phases := progs[0].Phases()
	for s := 0; s < steps; s++ {
		for ph := 0; ph < phases; ph++ {
			for _, p := range progs {
				p.Compute(ph)
			}
			// Deliver all sends after all computes: every payload is
			// copied immediately, so in-place solver buffers are safe.
			type delivery struct {
				to, dir int
				data    []float64
			}
			var inbox []delivery
			for _, p := range progs {
				for _, snd := range p.Sends(ph) {
					inbox = append(inbox, delivery{
						to: snd.Peer, dir: snd.Dir,
						data: append([]float64(nil), snd.Data...),
					})
				}
			}
			for _, d := range inbox {
				progs[d.to].Unpack(ph, d.dir, d.data)
			}
		}
	}
	return nil
}

// RunParallel2D runs the decomposed problem with one goroutine per
// subregion over the given transport factory (channel hub or TCP): the
// job-submit program plus the parallel program of section 4.
func RunParallel2D(c *Config2D, steps int, factory TransportFactory) (*Result2D, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	progs := make([]*Program2D, c.D.P())
	workers := make([]*Worker, c.D.P())
	events := make(chan Event, 4*c.D.P())
	for rank := range progs {
		p, err := c.NewProgram(rank)
		if err != nil {
			return nil, err
		}
		progs[rank] = p
		w, err := NewWorker(p, factory, 0, events)
		if err != nil {
			return nil, err
		}
		workers[rank] = w
	}
	errs := make(chan error, len(workers))
	for _, w := range workers {
		go func(w *Worker) {
			errs <- w.RunSteps(steps)
		}(w)
	}
	var first error
	for range workers {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	for _, w := range workers {
		w.Close()
	}
	if first != nil {
		return nil, first
	}
	return Gather2D(c, progs, steps), nil
}

// HubFactory returns a TransportFactory over a fresh in-process hub.
func HubFactory() TransportFactory {
	hub := msg.NewHub()
	return func(rank, epoch int) (msg.Transport, error) {
		return hub.Join(rank), nil
	}
}
