package core

import (
	"testing"
	"time"

	"repro/internal/dump"
	"repro/internal/lbm"
)

// TestWorkerBudgetBitIdenticalThroughLifecycle is the tentpole identity
// check at the job level: the same problem run at different intra-rank
// worker budgets — with a mid-run migration and a suspend/resume round
// trip thrown in — must produce bitwise identical solutions. Parallel
// slabs, the migration dump path, and the checkpoint rebuild all promise
// exact reproducibility; this test holds them to it simultaneously.
func TestWorkerBudgetBitIdenticalThroughLifecycle(t *testing.T) {
	const steps = 40
	ref, _, err := RunSequential2D(channelConfig(t, MethodLB, 2, 2, 24, 16), steps)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 7} {
		cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
		cfg.Workers = workers
		j, jp := newTestJob(t, cfg, steps)
		j.Start()

		time.Sleep(15 * time.Millisecond)
		if err := j.MigrateRanks([]int{2}, nil); err != nil {
			t.Fatalf("workers=%d: migrate: %v", workers, err)
		}
		time.Sleep(10 * time.Millisecond)
		states, err := j.Suspend()
		if err != nil {
			t.Fatalf("workers=%d: suspend: %v", workers, err)
		}
		if err := j.Resume(states); err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if err := j.WaitDone(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j.Shutdown()

		got := jp.Gather(steps)
		if ok, x, y, d := resultsEqual(ref, got, 0); !ok {
			t.Errorf("workers=%d differs from serial reference at (%d,%d) by %g",
				workers, x, y, d)
		}
	}
}

// solverWorkers reads the live per-rank budgets off the job's programs.
func solverWorkers(t *testing.T, jp *JobPrograms2D) map[int]int {
	t.Helper()
	out := map[int]int{}
	for rank, p := range jp.progs {
		s, ok := p.M.(*lbm.Solver2D)
		if !ok {
			t.Fatalf("rank %d: method %T is not *lbm.Solver2D", rank, p.M)
		}
		out[rank] = s.Workers
	}
	return out
}

// TestSetWorkersSurvivesRebuilds: a scheduler-level override applied
// before Start must stick across the migration and resume rebuild paths,
// which construct fresh solvers from the config.
func TestSetWorkersSurvivesRebuilds(t *testing.T) {
	const steps = 60
	cfg := channelConfig(t, MethodLB, 2, 2, 24, 16)
	j, jp := newTestJob(t, cfg, steps)
	j.SetWorkers(5)
	j.Start()

	time.Sleep(10 * time.Millisecond)
	if err := j.MigrateRanks([]int{1}, func(rank int, st *dump.State) {}); err != nil {
		t.Fatal(err)
	}
	for rank, w := range solverWorkers(t, jp) {
		if w != 5 {
			t.Errorf("after migrate: rank %d workers = %d, want 5", rank, w)
		}
	}

	states, err := j.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Resume(states); err != nil {
		t.Fatal(err)
	}
	for rank, w := range solverWorkers(t, jp) {
		if w != 5 {
			t.Errorf("after resume: rank %d workers = %d, want 5", rank, w)
		}
	}
	if err := j.WaitDone(); err != nil {
		t.Fatal(err)
	}
	j.Shutdown()
}
