// Package core is the distributed simulation driver of sections 4-5: it
// binds a numerical method (finite differences or lattice Boltzmann), a
// static rectangular decomposition and a message transport into the
// parallel program whose cycle is "compute locally, communicate with
// neighbours".
//
// The paper's four control modules map onto this package as follows:
//
//   - initialization program  -> the caller builds a global initial state
//     (examples and cmd/fluidsim construct masks and fields);
//   - decomposition program   -> Decompose2D/Decompose3D, which produce one
//     dump.State per active subregion;
//   - job-submit program      -> Submit2D/Submit3D plus Coordinator.Start,
//     which place workers and open their communication channels;
//   - monitoring program      -> Coordinator.Monitor and the migration
//     protocol in coordinator.go.
//
// A Program is one parallel subprocess's view of the computation; Worker
// runs a Program against a Transport. The same Program code runs under the
// in-process channel transport, the TCP transport, and the serial
// reference executor, which is how the paper's "serial program = parallel
// program minus communication" modularity is expressed here.
package core

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/dump"
)

// Program is one subprocess's computation: a numerical method bound to a
// subregion of a decomposition. Direction codes are opaque to the Worker;
// they only need to match between a sender's Sends and the receiving
// Program's Unpack.
type Program interface {
	// Rank returns the dense rank of the subregion.
	Rank() int
	// Phases returns the number of compute phases per integration step.
	Phases() int
	// Compute runs one local phase.
	Compute(phase int)
	// Sends returns the messages to emit after a phase. The returned
	// payload slices are only valid until the next call.
	Sends(phase int) []Send
	// Expects returns the (peer, dirCode) pairs the Program must receive
	// after a phase before the next phase may start.
	Expects(phase int) []Expect
	// Unpack consumes a received payload for a phase and direction code.
	Unpack(phase int, dirCode int, data []float64)
	// DumpState serializes the full state for a dump file.
	DumpState(step, epoch int) *dump.State
	// RestoreState reloads a dump produced by DumpState.
	RestoreState(st *dump.State) error
}

// Send is one outgoing halo message.
type Send struct {
	Peer int // destination rank
	Dir  int // direction code from the receiver's perspective
	Data []float64
}

// Expect is one incoming halo message the Program waits for.
type Expect struct {
	Peer int
	Dir  int
}

// Method2D is the per-subregion interface both 2D solvers implement.
type Method2D interface {
	Phases() int
	Exchanges(phase int) bool
	Compute(phase int)
	Pack(phase int, dir decomp.Dir, buf []float64) []float64
	Unpack(phase int, dir decomp.Dir, buf []float64)
	Stencil() decomp.Stencil
	MethodName() string
	DumpFields() map[string][]float64
	RestoreFields(map[string][]float64) error
	// SetWorkers sets the intra-rank worker-slab budget for the compute
	// phases. Results are bit-identical at every value (see internal/pool).
	SetWorkers(n int)
}

// Program2D binds a Method2D to one subregion of a 2D decomposition.
type Program2D struct {
	M   Method2D
	D   *decomp.Decomp2D
	Sub *decomp.Subregion2D

	buf []float64
}

// NewProgram2D builds the Program for the subregion with the given rank.
func NewProgram2D(m Method2D, d *decomp.Decomp2D, rank int) *Program2D {
	return &Program2D{M: m, D: d, Sub: d.ByRank(rank)}
}

// Rank returns the subregion's dense rank.
func (p *Program2D) Rank() int { return p.Sub.Rank }

// Phases returns the method's phase count.
func (p *Program2D) Phases() int { return p.M.Phases() }

// Compute runs one local phase.
func (p *Program2D) Compute(phase int) { p.M.Compute(phase) }

// Sends packs one message per neighbour for exchanging phases. The
// direction code is the receiver's view: data sent toward dir arrives at
// the neighbour from dir.Opposite().
func (p *Program2D) Sends(phase int) []Send {
	if !p.M.Exchanges(phase) {
		return nil
	}
	var out []Send
	p.buf = p.buf[:0]
	for _, dir := range decomp.Dirs(p.M.Stencil()) {
		n := p.D.Neighbor(p.Sub, dir)
		if n == nil {
			continue
		}
		start := len(p.buf)
		p.buf = p.M.Pack(phase, dir, p.buf)
		out = append(out, Send{
			Peer: n.Rank,
			Dir:  int(dir.Opposite()),
			Data: p.buf[start:],
		})
	}
	return out
}

// Expects lists the messages due after an exchanging phase: one from every
// neighbour, identified by the direction it lies in.
func (p *Program2D) Expects(phase int) []Expect {
	if !p.M.Exchanges(phase) {
		return nil
	}
	var out []Expect
	for _, dir := range decomp.Dirs(p.M.Stencil()) {
		if n := p.D.Neighbor(p.Sub, dir); n != nil {
			out = append(out, Expect{Peer: n.Rank, Dir: int(dir)})
		}
	}
	return out
}

// Unpack stores a received payload into the method's halo regions.
func (p *Program2D) Unpack(phase int, dirCode int, data []float64) {
	p.M.Unpack(phase, decomp.Dir(dirCode), data)
}

// DumpState serializes the subregion state.
func (p *Program2D) DumpState(step, epoch int) *dump.State {
	return &dump.State{
		Rank:   p.Sub.Rank,
		Step:   step,
		Epoch:  epoch,
		Method: p.M.MethodName(),
		NX:     p.Sub.NX, NY: p.Sub.NY, NZ: 1,
		Fields: p.M.DumpFields(),
	}
}

// RestoreState reloads a dump into the method.
func (p *Program2D) RestoreState(st *dump.State) error {
	if st.Method != p.M.MethodName() {
		return fmt.Errorf("core: dump method %q, solver is %q", st.Method, p.M.MethodName())
	}
	if st.NX != p.Sub.NX || st.NY != p.Sub.NY {
		return fmt.Errorf("core: dump geometry %dx%d, subregion is %dx%d",
			st.NX, st.NY, p.Sub.NX, p.Sub.NY)
	}
	return p.M.RestoreFields(st.Fields)
}

// Method3D is the per-subregion interface both 3D solvers implement. The
// per-phase face sets differ between the methods (the LB sweeps), so the
// interface exposes them explicitly.
type Method3D interface {
	Phases() int
	Exchanges(phase int) bool
	ExchangeDirs(phase int) []decomp.Dir3
	Compute(phase int)
	Pack(phase int, dir decomp.Dir3, buf []float64) []float64
	Unpack(phase int, dir decomp.Dir3, buf []float64)
	MethodName() string
	DumpFields() map[string][]float64
	RestoreFields(map[string][]float64) error
	// SetWorkers sets the intra-rank worker-slab budget for the compute
	// phases. Results are bit-identical at every value (see internal/pool).
	SetWorkers(n int)
}

// Program3D binds a Method3D to one box of a 3D decomposition.
type Program3D struct {
	M   Method3D
	D   *decomp.Decomp3D
	Sub *decomp.Subregion3D

	buf []float64
}

// NewProgram3D builds the Program for the box with the given rank.
func NewProgram3D(m Method3D, d *decomp.Decomp3D, rank int) *Program3D {
	return &Program3D{M: m, D: d, Sub: d.ByRank(rank)}
}

// Rank returns the box's dense rank.
func (p *Program3D) Rank() int { return p.Sub.Rank }

// Phases returns the method's phase count.
func (p *Program3D) Phases() int { return p.M.Phases() }

// Compute runs one local phase.
func (p *Program3D) Compute(phase int) { p.M.Compute(phase) }

// Sends packs one message per exchanged face of the phase.
func (p *Program3D) Sends(phase int) []Send {
	var out []Send
	p.buf = p.buf[:0]
	for _, dir := range p.M.ExchangeDirs(phase) {
		n := p.D.Neighbor(p.Sub, dir)
		if n == nil {
			continue
		}
		start := len(p.buf)
		p.buf = p.M.Pack(phase, dir, p.buf)
		out = append(out, Send{
			Peer: n.Rank,
			Dir:  int(dir.Opposite()),
			Data: p.buf[start:],
		})
	}
	return out
}

// Expects lists the per-face messages due after a phase.
func (p *Program3D) Expects(phase int) []Expect {
	var out []Expect
	for _, dir := range p.M.ExchangeDirs(phase) {
		if n := p.D.Neighbor(p.Sub, dir); n != nil {
			out = append(out, Expect{Peer: n.Rank, Dir: int(dir)})
		}
	}
	return out
}

// Unpack stores a received payload into the method's halo regions.
func (p *Program3D) Unpack(phase int, dirCode int, data []float64) {
	p.M.Unpack(phase, decomp.Dir3(dirCode), data)
}

// DumpState serializes the box state.
func (p *Program3D) DumpState(step, epoch int) *dump.State {
	return &dump.State{
		Rank:   p.Sub.Rank,
		Step:   step,
		Epoch:  epoch,
		Method: p.M.MethodName(),
		NX:     p.Sub.NX, NY: p.Sub.NY, NZ: p.Sub.NZ,
		Fields: p.M.DumpFields(),
	}
}

// RestoreState reloads a dump into the method.
func (p *Program3D) RestoreState(st *dump.State) error {
	if st.Method != p.M.MethodName() {
		return fmt.Errorf("core: dump method %q, solver is %q", st.Method, p.M.MethodName())
	}
	if st.NX != p.Sub.NX || st.NY != p.Sub.NY || st.NZ != p.Sub.NZ {
		return fmt.Errorf("core: dump geometry %dx%dx%d, box is %dx%dx%d",
			st.NX, st.NY, st.NZ, p.Sub.NX, p.Sub.NY, p.Sub.NZ)
	}
	return p.M.RestoreFields(st.Fields)
}
