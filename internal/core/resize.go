package core

import (
	"fmt"
	"maps"
	"slices"

	"repro/internal/decomp"
	"repro/internal/dump"
)

// Resize re-decomposes a running job onto a new lattice of subregions at a
// step boundary: every process synchronizes and dumps (the section-5.1
// suspend protocol), the dumped interiors are stitched back into the global
// fields, the global grid is split again under the new shape, and one fresh
// worker per new rank restarts at the same step. It is the malleable-job
// extension of migration — migration moves ranks between hosts, Resize
// changes how many ranks there are.
//
// The continued computation is bitwise identical to an uninterrupted run,
// under one precondition enforced here: the fourth-order filter must be off
// (Par.Eps == 0). The filter's applicability test is seam-dependent — it
// consults neighbouring subregion geometry — so changing the decomposition
// would change which nodes get filtered and the results would (correctly)
// diverge. Everything else in both methods depends only on global node
// coordinates, so a re-split reproduces the exact global state: interiors
// are authoritative at a step boundary, and each new rank's ghost layers
// are filled with its new neighbours' edge values — exactly the state the
// last halo exchange would have produced.
//
// Like every dump/restore path (migration, checkpointing), bit-identity
// also requires an enclosed domain: every face of the global grid must be
// periodic or covered by Wall/Inlet/Outlet cells. On an open face the
// solvers read beyond-domain ghost values that live in their double-swap
// buffers — only the current buffer is dumped, so no restore can
// reproduce them (the hidden buffer's ghosts alternate with step parity).
// Enclosed domains never read those ghosts, which is what makes the whole
// dump-file protocol exact.
//
// The shape must cover the job's global grid (spans summing to GX/GY[/GZ]);
// the rank count after the resize is len(sh.X)*len(sh.Y)[*len(sh.Z)].
// Decompositions with deactivated subregions are not resizable: the re-split
// activates every subregion, which would change the gathered solution in
// the wall regions.
func (j *Job) Resize(sh decomp.Shape) error {
	if j.resplit == nil {
		return fmt.Errorf("core: resize: job has no re-split program (built without NewJob2D/NewJob3D)")
	}
	states, err := j.Suspend()
	if err != nil {
		return fmt.Errorf("core: resize: %w", err)
	}
	newStates, err := j.resplit(states, sh)
	if err != nil {
		// Validation failed before anything was mutated; put the job back
		// the way it was so the caller still holds a consistent run.
		if rerr := j.Resume(states); rerr != nil {
			return fmt.Errorf("core: resize: %w (and resume after failure: %v)", err, rerr)
		}
		return fmt.Errorf("core: resize: %w", err)
	}

	// The old rank->host map describes ranks that no longer exist; clear
	// it so a later ReleaseHosts cannot unassign hosts a scheduler gave
	// away. The caller re-places the resized job (PlaceOn). A failed
	// resplit above keeps the map — the rollback resumed the job on its
	// old placement.
	for rank := range j.hostOf {
		delete(j.hostOf, rank)
	}

	// Restart with a fresh worker set at the new rank count — Resume's loop,
	// minus its fixed-P assumption.
	j.workers = make(map[int]*Worker)
	j.done = make(map[int]bool)
	j.epoch++
	for _, st := range newStates {
		st.Epoch = j.epoch
		prog, err := j.Rebuild(st)
		if err != nil {
			return fmt.Errorf("core: resize: rebuilding rank %d: %w", st.Rank, err)
		}
		if j.workersOverride > 0 {
			if p, ok := prog.(workerBudgeted); ok {
				p.SetWorkers(j.workersOverride)
			}
		}
		w, err := NewWorkerAt(prog, j.Factory, j.epoch, j.events, st.Step)
		if err != nil {
			return fmt.Errorf("core: resize: restarting rank %d: %w", st.Rank, err)
		}
		j.workers[st.Rank] = w
		if j.onRebuild != nil {
			j.onRebuild(st.Rank, prog)
		}
	}
	for _, rank := range j.ranks() {
		j.wireSync(j.workers[rank])
	}
	for _, rank := range j.ranks() {
		go j.workers[rank].Start(j.Until)
	}
	return nil
}

// commonStep verifies every dump is at the same step boundary and returns it.
func commonStep(states []*dump.State) (int, error) {
	if len(states) == 0 {
		return 0, fmt.Errorf("no dumps")
	}
	s := states[0].Step
	for _, st := range states {
		if st.Step != s {
			return 0, fmt.Errorf("dumps at different steps (%d and %d)", s, st.Step)
		}
	}
	return s, nil
}

// resplit2D is the 2D re-split program: old-shape dumps in, new-shape dumps
// out, both at the same step. The config's decomposition is replaced in
// place on success, so the job's Rebuild closure and the caller's gather
// path follow the new lattice.
func resplit2D(cfg *Config2D, states []*dump.State, sh decomp.Shape) ([]*dump.State, error) {
	if cfg.Par.Eps != 0 {
		return nil, fmt.Errorf("resize requires the fourth-order filter off (Par.Eps = %v, want 0): filter applicability is seam-dependent, so a re-split would change the results", cfg.Par.Eps)
	}
	if cfg.D.P() != cfg.D.Total() {
		return nil, fmt.Errorf("resize of a decomposition with %d of %d subregions deactivated",
			cfg.D.Total()-cfg.D.P(), cfg.D.Total())
	}
	if len(states) != cfg.D.P() {
		return nil, fmt.Errorf("%d dumps for %d ranks", len(states), cfg.D.P())
	}
	step, err := commonStep(states)
	if err != nil {
		return nil, err
	}
	newD, err := decomp.New2DShaped(sh, cfg.D.Stencil)
	if err != nil {
		return nil, err
	}
	if newD.GX != cfg.D.GX || newD.GY != cfg.D.GY {
		return nil, fmt.Errorf("shape covers %dx%d, grid is %dx%d", newD.GX, newD.GY, cfg.D.GX, cfg.D.GY)
	}
	newD.PeriodicX, newD.PeriodicY = cfg.D.PeriodicX, cfg.D.PeriodicY

	// Stitch each dumped field's interiors into global arrays. Dump arrays
	// are raw storage with one ghost layer: index (y+1)*(NX+2)+(x+1).
	oldD := cfg.D
	global := make(map[string][]float64)
	for _, st := range states {
		sub := oldD.ByRank(st.Rank)
		for name, data := range st.Fields {
			g, ok := global[name]
			if !ok {
				g = make([]float64, oldD.GX*oldD.GY)
				global[name] = g
			}
			for y := 0; y < sub.NY; y++ {
				for x := 0; x < sub.NX; x++ {
					g[(sub.Y0+y)*oldD.GX+(sub.X0+x)] = data[(y+1)*(sub.NX+2)+(x+1)]
				}
			}
		}
	}

	// Commit the new decomposition, then cut one dump per new rank: a fresh
	// program supplies the local geometry (and the constant-equilibrium
	// values beyond a non-periodic boundary), and every in-domain node —
	// interiors and ghosts — is overwritten from the stitched globals.
	*cfg.D = *newD
	out := make([]*dump.State, 0, cfg.D.P())
	for rank := 0; rank < cfg.D.P(); rank++ {
		prog, err := cfg.NewProgram(rank)
		if err != nil {
			return nil, fmt.Errorf("cutting rank %d: %w", rank, err)
		}
		st := prog.DumpState(step, 0)
		sub := cfg.D.ByRank(rank)
		for _, name := range slices.Sorted(maps.Keys(st.Fields)) {
			data := st.Fields[name]
			g := global[name]
			if g == nil {
				return nil, fmt.Errorf("old dumps lack field %q", name)
			}
			for y := -1; y <= sub.NY; y++ {
				gy := wrapCoord(sub.Y0+y, cfg.D.GY, cfg.D.PeriodicY)
				if gy < 0 || gy >= cfg.D.GY {
					continue
				}
				for x := -1; x <= sub.NX; x++ {
					gx := wrapCoord(sub.X0+x, cfg.D.GX, cfg.D.PeriodicX)
					if gx < 0 || gx >= cfg.D.GX {
						continue
					}
					data[(y+1)*(sub.NX+2)+(x+1)] = g[gy*cfg.D.GX+gx]
				}
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// resplit3D is the 3D analogue of resplit2D.
func resplit3D(cfg *Config3D, states []*dump.State, sh decomp.Shape) ([]*dump.State, error) {
	if cfg.Par.Eps != 0 {
		return nil, fmt.Errorf("resize requires the fourth-order filter off (Par.Eps = %v, want 0): filter applicability is seam-dependent, so a re-split would change the results", cfg.Par.Eps)
	}
	if len(states) != cfg.D.P() {
		return nil, fmt.Errorf("%d dumps for %d ranks", len(states), cfg.D.P())
	}
	step, err := commonStep(states)
	if err != nil {
		return nil, err
	}
	newD, err := decomp.New3DShaped(sh)
	if err != nil {
		return nil, err
	}
	if newD.GX != cfg.D.GX || newD.GY != cfg.D.GY || newD.GZ != cfg.D.GZ {
		return nil, fmt.Errorf("shape covers %dx%dx%d, grid is %dx%dx%d",
			newD.GX, newD.GY, newD.GZ, cfg.D.GX, cfg.D.GY, cfg.D.GZ)
	}
	newD.PeriodicX, newD.PeriodicY, newD.PeriodicZ = cfg.D.PeriodicX, cfg.D.PeriodicY, cfg.D.PeriodicZ

	oldD := cfg.D
	global := make(map[string][]float64)
	for _, st := range states {
		sub := oldD.ByRank(st.Rank)
		sx, sxy := sub.NX+2, (sub.NX+2)*(sub.NY+2)
		for name, data := range st.Fields {
			g, ok := global[name]
			if !ok {
				g = make([]float64, oldD.GX*oldD.GY*oldD.GZ)
				global[name] = g
			}
			for z := 0; z < sub.NZ; z++ {
				for y := 0; y < sub.NY; y++ {
					for x := 0; x < sub.NX; x++ {
						gi := ((sub.Z0+z)*oldD.GY+(sub.Y0+y))*oldD.GX + (sub.X0 + x)
						g[gi] = data[(z+1)*sxy+(y+1)*sx+(x+1)]
					}
				}
			}
		}
	}

	*cfg.D = *newD
	out := make([]*dump.State, 0, cfg.D.P())
	for rank := 0; rank < cfg.D.P(); rank++ {
		prog, err := cfg.NewProgram(rank)
		if err != nil {
			return nil, fmt.Errorf("cutting rank %d: %w", rank, err)
		}
		st := prog.DumpState(step, 0)
		sub := cfg.D.ByRank(rank)
		sx, sxy := sub.NX+2, (sub.NX+2)*(sub.NY+2)
		for _, name := range slices.Sorted(maps.Keys(st.Fields)) {
			data := st.Fields[name]
			g := global[name]
			if g == nil {
				return nil, fmt.Errorf("old dumps lack field %q", name)
			}
			for z := -1; z <= sub.NZ; z++ {
				gz := wrapCoord(sub.Z0+z, cfg.D.GZ, cfg.D.PeriodicZ)
				if gz < 0 || gz >= cfg.D.GZ {
					continue
				}
				for y := -1; y <= sub.NY; y++ {
					gy := wrapCoord(sub.Y0+y, cfg.D.GY, cfg.D.PeriodicY)
					if gy < 0 || gy >= cfg.D.GY {
						continue
					}
					for x := -1; x <= sub.NX; x++ {
						gx := wrapCoord(sub.X0+x, cfg.D.GX, cfg.D.PeriodicX)
						if gx < 0 || gx >= cfg.D.GX {
							continue
						}
						data[(z+1)*sxy+(y+1)*sx+(x+1)] = g[(gz*cfg.D.GY+gy)*cfg.D.GX+gx]
					}
				}
			}
		}
		out = append(out, st)
	}
	return out, nil
}
