package core

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/dump"
	"repro/internal/fd"
	"repro/internal/fluid"
	"repro/internal/lbm"
	"repro/internal/pool"
)

// Config3D describes a complete 3D simulation.
type Config3D struct {
	Method string
	Par    fluid.Params
	Mask   *fluid.Mask3D
	D      *decomp.Decomp3D

	// Workers is the intra-rank worker-slab budget per solver; 0 means an
	// even share of GOMAXPROCS across ranks (pool.DefaultPerRank).
	Workers int

	InitRho, InitVx, InitVy, InitVz func(x, y, z int) float64
}

// workerBudget resolves the intra-rank worker count (see Config2D).
func (c *Config3D) workerBudget() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return pool.DefaultPerRank(c.D.P())
}

// Validate checks the configuration.
func (c *Config3D) Validate() error {
	if c.Method != MethodFD && c.Method != MethodLB {
		return fmt.Errorf("core: unknown method %q", c.Method)
	}
	if c.Mask == nil || c.D == nil {
		return fmt.Errorf("core: mask and decomposition are required")
	}
	if c.Mask.NX != c.D.GX || c.Mask.NY != c.D.GY || c.Mask.NZ != c.D.GZ {
		return fmt.Errorf("core: mask %dx%dx%d does not match grid %dx%dx%d",
			c.Mask.NX, c.Mask.NY, c.Mask.NZ, c.D.GX, c.D.GY, c.D.GZ)
	}
	return c.Par.Check()
}

// LocalMask3D adapts the global mask to one box's local coordinates.
func LocalMask3D(d *decomp.Decomp3D, sub *decomp.Subregion3D, m *fluid.Mask3D) func(x, y, z int) fluid.CellType {
	return func(x, y, z int) fluid.CellType {
		gx := wrapCoord(sub.X0+x, d.GX, d.PeriodicX)
		gy := wrapCoord(sub.Y0+y, d.GY, d.PeriodicY)
		gz := wrapCoord(sub.Z0+z, d.GZ, d.PeriodicZ)
		return m.At(gx, gy, gz)
	}
}

func (c *Config3D) globalAt(f func(x, y, z int) float64, gx, gy, gz int, def float64) float64 {
	gx = wrapCoord(gx, c.D.GX, c.D.PeriodicX)
	gy = wrapCoord(gy, c.D.GY, c.D.PeriodicY)
	gz = wrapCoord(gz, c.D.GZ, c.D.PeriodicZ)
	if gx < 0 || gx >= c.D.GX || gy < 0 || gy >= c.D.GY || gz < 0 || gz >= c.D.GZ {
		return def
	}
	if f == nil {
		return def
	}
	return f(gx, gy, gz)
}

// NewMethod3D builds the numerical method for one box with initialized
// fields and the intra-rank worker budget.
func (c *Config3D) NewMethod3D(rank int) (Method3D, error) {
	m, err := c.newMethod3D(rank)
	if err != nil {
		return nil, err
	}
	m.SetWorkers(c.workerBudget())
	return m, nil
}

func (c *Config3D) newMethod3D(rank int) (Method3D, error) {
	sub := c.D.ByRank(rank)
	mask := LocalMask3D(c.D, sub, c.Mask)
	initFields := func(rho, vx, vy, vz interface {
		Set(x, y, z int, v float64)
	}, nx, ny, nz int) {
		for z := -1; z <= nz; z++ {
			for y := -1; y <= ny; y++ {
				for x := -1; x <= nx; x++ {
					gx, gy, gz := sub.X0+x, sub.Y0+y, sub.Z0+z
					rho.Set(x, y, z, c.globalAt(c.InitRho, gx, gy, gz, c.Par.Rho0))
					vx.Set(x, y, z, c.globalAt(c.InitVx, gx, gy, gz, 0))
					vy.Set(x, y, z, c.globalAt(c.InitVy, gx, gy, gz, 0))
					vz.Set(x, y, z, c.globalAt(c.InitVz, gx, gy, gz, 0))
				}
			}
		}
	}
	switch c.Method {
	case MethodFD:
		s, err := fd.NewSolver3D(sub.NX, sub.NY, sub.NZ, c.Par, mask)
		if err != nil {
			return nil, err
		}
		initFields(s.Rho, s.Vx, s.Vy, s.Vz, sub.NX, sub.NY, sub.NZ)
		return s, nil
	case MethodLB:
		s, err := lbm.NewSolver3D(sub.NX, sub.NY, sub.NZ, c.Par, mask)
		if err != nil {
			return nil, err
		}
		initFields(s.Rho, s.Vx, s.Vy, s.Vz, sub.NX, sub.NY, sub.NZ)
		s.InitEquilibrium()
		return s, nil
	}
	return nil, fmt.Errorf("core: unknown method %q", c.Method)
}

// NewProgram builds the Program for one rank.
func (c *Config3D) NewProgram(rank int) (*Program3D, error) {
	m, err := c.NewMethod3D(rank)
	if err != nil {
		return nil, err
	}
	return NewProgram3D(m, c.D, rank), nil
}

// Decompose3D produces one dump per active box.
func Decompose3D(c *Config3D) ([]*dump.State, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	states := make([]*dump.State, 0, c.D.P())
	for rank := 0; rank < c.D.P(); rank++ {
		p, err := c.NewProgram(rank)
		if err != nil {
			return nil, err
		}
		states = append(states, p.DumpState(0, 0))
	}
	return states, nil
}

// Result3D is a gathered global 3D solution.
type Result3D struct {
	NX, NY, NZ      int
	Rho, Vx, Vy, Vz []float64
	Steps           int
}

// At indexes a gathered 3D field.
func (r *Result3D) At(f []float64, x, y, z int) float64 {
	return f[(z*r.NY+y)*r.NX+x]
}

// Gather3D assembles the global 3D fields.
func Gather3D(c *Config3D, progs []*Program3D, steps int) *Result3D {
	n := c.D.GX * c.D.GY * c.D.GZ
	res := &Result3D{
		NX: c.D.GX, NY: c.D.GY, NZ: c.D.GZ,
		Rho: make([]float64, n), Vx: make([]float64, n),
		Vy: make([]float64, n), Vz: make([]float64, n),
		Steps: steps,
	}
	for _, p := range progs {
		var rho, vx, vy, vz interface {
			At(x, y, z int) float64
		}
		switch m := p.M.(type) {
		case *fd.Solver3D:
			rho, vx, vy, vz = m.Rho, m.Vx, m.Vy, m.Vz
		case *lbm.Solver3D:
			rho, vx, vy, vz = m.Rho, m.Vx, m.Vy, m.Vz
		default:
			continue
		}
		sub := p.Sub
		for z := 0; z < sub.NZ; z++ {
			for y := 0; y < sub.NY; y++ {
				for x := 0; x < sub.NX; x++ {
					g := ((sub.Z0+z)*c.D.GY+(sub.Y0+y))*c.D.GX + (sub.X0 + x)
					res.Rho[g] = rho.At(x, y, z)
					res.Vx[g] = vx.At(x, y, z)
					res.Vy[g] = vy.At(x, y, z)
					res.Vz[g] = vz.At(x, y, z)
				}
			}
		}
	}
	return res
}

// RunSequential3D executes the decomposed 3D problem in phase lockstep.
func RunSequential3D(c *Config3D, steps int) (*Result3D, []*Program3D, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	progs := make([]*Program3D, c.D.P())
	for rank := range progs {
		p, err := c.NewProgram(rank)
		if err != nil {
			return nil, nil, err
		}
		progs[rank] = p
	}
	phases := progs[0].Phases()
	for s := 0; s < steps; s++ {
		for ph := 0; ph < phases; ph++ {
			for _, p := range progs {
				p.Compute(ph)
			}
			type delivery struct {
				to, dir int
				data    []float64
			}
			var inbox []delivery
			for _, p := range progs {
				for _, snd := range p.Sends(ph) {
					inbox = append(inbox, delivery{
						to: snd.Peer, dir: snd.Dir,
						data: append([]float64(nil), snd.Data...),
					})
				}
			}
			for _, d := range inbox {
				progs[d.to].Unpack(ph, d.dir, d.data)
			}
		}
	}
	return Gather3D(c, progs, steps), progs, nil
}

// RunParallel3D runs the decomposed 3D problem with one goroutine per box.
func RunParallel3D(c *Config3D, steps int, factory TransportFactory) (*Result3D, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	progs := make([]*Program3D, c.D.P())
	workers := make([]*Worker, c.D.P())
	events := make(chan Event, 4*c.D.P())
	for rank := range progs {
		p, err := c.NewProgram(rank)
		if err != nil {
			return nil, err
		}
		progs[rank] = p
		w, err := NewWorker(p, factory, 0, events)
		if err != nil {
			return nil, err
		}
		workers[rank] = w
	}
	errs := make(chan error, len(workers))
	for _, w := range workers {
		go func(w *Worker) {
			errs <- w.RunSteps(steps)
		}(w)
	}
	var first error
	for range workers {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	for _, w := range workers {
		w.Close()
	}
	if first != nil {
		return nil, first
	}
	return Gather3D(c, progs, steps), nil
}
