package core

import (
	"fmt"
	"maps"
	"slices"
	"time"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/dump"
	"repro/internal/syncfile"
)

// Job owns a distributed simulation: its workers, their communication
// epoch, the synchronization machinery and (optionally) the virtual
// cluster the workers are placed on. It implements the job-submit and
// monitoring programs of section 4.1 and the migration protocol of
// section 5.1:
//
//	the affected process receives a signal to migrate;
//	all the processes get synchronized;
//	process A saves its state into a dump file, and stops running;
//	process A is restarted on a free host, and the computation continues.
//
// Job methods must be called from a single goroutine (the designated
// workstation of section 4.1 that performs initialization, decomposition,
// submission and monitoring).
type Job struct {
	Factory TransportFactory
	Sync    *syncfile.Sync
	Until   int

	// Rebuild reconstructs a Program from a migration dump; wired by the
	// constructors to the config's NewProgram + RestoreState.
	Rebuild func(st *dump.State) (Program, error)

	// WaitTimeout bounds every coordination wait (default 60s).
	WaitTimeout time.Duration

	events    chan Event
	workers   map[int]*Worker
	epoch     int
	round     int
	done      map[int]bool
	onRebuild func(rank int, prog Program)

	// resplit re-cuts a full set of same-step dumps onto a new decomposition
	// shape; wired by the constructors to resplit2D/resplit3D over the
	// config. See Job.Resize.
	resplit func(states []*dump.State, sh decomp.Shape) ([]*dump.State, error)

	// Optional virtual-cluster placement.
	Cluster *cluster.Cluster
	hostOf  map[int]*cluster.Host

	// Migrations counts completed migrations.
	Migrations int

	// workersOverride, when positive, replaces the config's intra-rank
	// worker budget on every live solver and on every solver rebuilt
	// after a migration (the scheduler threads farm.WithWorkers here).
	workersOverride int
}

// workerBudgeted is implemented by programs whose method accepts an
// intra-rank worker budget (both Program2D and Program3D).
type workerBudgeted interface{ SetWorkers(n int) }

// SetWorkers overrides the intra-rank worker budget of every rank's
// solver, now and across future migrations. Fields are bit-identical at
// every value. Call before Start (or while every worker is paused): the
// budget is plain solver state, not synchronized with running compute
// phases. n <= 0 clears the override (rebuilt solvers fall back to the
// config default).
func (j *Job) SetWorkers(n int) {
	j.workersOverride = n
	if n <= 0 {
		return
	}
	for _, rank := range j.ranks() {
		if p, ok := j.workers[rank].Prog.(workerBudgeted); ok {
			p.SetWorkers(n)
		}
	}
}

// ranks returns the job's worker ranks in ascending order, so every
// loop over the workers map visits them in a reproducible order.
func (j *Job) ranks() []int {
	return slices.Sorted(maps.Keys(j.workers))
}

// SetWorkers forwards the intra-rank worker budget to the method.
func (p *Program2D) SetWorkers(n int) { p.M.SetWorkers(n) }

// SetWorkers forwards the intra-rank worker budget to the method.
func (p *Program3D) SetWorkers(n int) { p.M.SetWorkers(n) }

// NewJob2D prepares a job for a 2D config. Workers are created immediately
// (channels open at epoch 0) but do not run until Start.
func NewJob2D(cfg *Config2D, factory TransportFactory, sync *syncfile.Sync, until int) (*Job, *JobPrograms2D, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	j := newJob(factory, sync, until, cfg.D.P())
	j.Rebuild = func(st *dump.State) (Program, error) {
		p, err := cfg.NewProgram(st.Rank)
		if err != nil {
			return nil, err
		}
		if err := p.RestoreState(st); err != nil {
			return nil, err
		}
		return p, nil
	}
	jp := &JobPrograms2D{cfg: cfg, progs: make(map[int]*Program2D)}
	for rank := 0; rank < cfg.D.P(); rank++ {
		p, err := cfg.NewProgram(rank)
		if err != nil {
			return nil, nil, err
		}
		jp.progs[rank] = p
		w, err := NewWorker(p, factory, 0, j.events)
		if err != nil {
			return nil, nil, err
		}
		j.wireSync(w)
		j.workers[rank] = w
	}
	j.onRebuild = func(rank int, prog Program) {
		jp.progs[rank] = prog.(*Program2D)
	}
	j.resplit = func(states []*dump.State, sh decomp.Shape) ([]*dump.State, error) {
		out, err := resplit2D(cfg, states, sh)
		if err != nil {
			return nil, err
		}
		// The old rank set is gone; onRebuild refills the map as Resize
		// rebuilds each new rank.
		jp.progs = make(map[int]*Program2D)
		return out, nil
	}
	return j, jp, nil
}

// JobPrograms2D tracks the live Program of every rank across migrations,
// so the final solution can be gathered.
type JobPrograms2D struct {
	cfg   *Config2D
	progs map[int]*Program2D
}

// Gather assembles the global solution from the current programs.
func (jp *JobPrograms2D) Gather(steps int) *Result2D {
	ordered := make([]*Program2D, 0, len(jp.progs))
	for _, rank := range slices.Sorted(maps.Keys(jp.progs)) {
		ordered = append(ordered, jp.progs[rank])
	}
	return Gather2D(jp.cfg, ordered, steps)
}

func newJob(factory TransportFactory, sync *syncfile.Sync, until, p int) *Job {
	return &Job{
		Factory:     factory,
		Sync:        sync,
		Until:       until,
		WaitTimeout: 60 * time.Second,
		events:      make(chan Event, 32*p),
		workers:     make(map[int]*Worker),
		done:        make(map[int]bool),
		hostOf:      make(map[int]*cluster.Host),
	}
}

func (j *Job) wireSync(w *Worker) {
	p := j.P()
	w.Sync = func(round, rank, step int) (int, error) {
		return j.Sync.SyncStep(round, rank, step, p, j.waitTimeout())
	}
}

func (j *Job) waitTimeout() time.Duration {
	if j.WaitTimeout > 0 {
		return j.WaitTimeout
	}
	return 60 * time.Second
}

// P returns the number of parallel subprocesses. It counts created
// workers, which is fixed for the life of the job.
func (j *Job) P() int {
	if n := len(j.workers); n > 0 {
		return n
	}
	return 1
}

// Worker returns the current worker of a rank (it changes on migration).
func (j *Job) Worker(rank int) *Worker { return j.workers[rank] }

// Epoch returns the current communication epoch.
func (j *Job) Epoch() int { return j.epoch }

// Start launches every worker on its own goroutine.
func (j *Job) Start() {
	// The sync funcs capture P; re-wire now that all workers exist.
	for _, rank := range j.ranks() {
		j.wireSync(j.workers[rank])
	}
	for _, rank := range j.ranks() {
		go j.workers[rank].Start(j.Until)
	}
}

// PlaceOnCluster assigns each rank to a free host of the virtual cluster
// using the section-4.1 selection policy.
func (j *Job) PlaceOnCluster(c *cluster.Cluster) error {
	hosts := c.SelectFree(j.P(), cluster.DefaultPolicy())
	if len(hosts) < j.P() {
		return fmt.Errorf("core: cluster has %d free hosts, need %d", len(hosts), j.P())
	}
	j.Cluster = c
	for rank := 0; rank < j.P(); rank++ {
		hosts[rank].Assign(rank)
		j.hostOf[rank] = hosts[rank]
	}
	return nil
}

// HostOf returns the host a rank runs on, or nil without a cluster.
func (j *Job) HostOf(rank int) *cluster.Host { return j.hostOf[rank] }

// nextEvent reads one worker event with a deadline.
func (j *Job) nextEvent() (Event, error) {
	select {
	case e := <-j.events:
		if e.Kind == EventError {
			return e, fmt.Errorf("core: rank %d failed at step %d: %w", e.Rank, e.Step, e.Err)
		}
		return e, nil
	//detlint:allow nodeterm -- liveness timeout: it only bounds how long we wait for a worker event, and a firing aborts the run; it never reorders or changes delivered events
	case <-time.After(j.waitTimeout()):
		return Event{}, fmt.Errorf("core: no worker event within %v", j.waitTimeout())
	}
}

// WaitDone blocks until every rank reports completion, servicing nothing
// else. Call MonitorLoop instead to interleave migration checks.
func (j *Job) WaitDone() error {
	for len(j.done) < j.P() {
		e, err := j.nextEvent()
		if err != nil {
			return err
		}
		if e.Kind == EventDone {
			j.done[e.Rank] = true
		}
	}
	return nil
}

// Shutdown stops all workers' control planes after completion.
func (j *Job) Shutdown() {
	for _, rank := range j.ranks() {
		j.workers[rank].Shutdown()
	}
}

// MigrateRanks executes the full migration protocol for the given ranks:
// global synchronization, dump, restart at the next epoch, resume. The
// onNewHost callback (optional) reports each migrated rank's dump so the
// caller can reassign cluster hosts or persist the dump file.
func (j *Job) MigrateRanks(ranks []int, onDump func(rank int, st *dump.State)) error {
	if len(ranks) == 0 {
		return nil
	}
	migrating := map[int]bool{}
	for _, r := range ranks {
		if _, ok := j.workers[r]; !ok {
			return fmt.Errorf("core: no worker with rank %d", r)
		}
		migrating[r] = true
	}

	// 1. Signal every process to synchronize (kill -USR2 to all).
	j.round++
	for _, rank := range j.ranks() {
		j.workers[rank].RequestPause(j.round)
	}
	// 2. Wait until all processes reach the synchronization step. Done
	// events from finishing workers may interleave.
	paused := map[int]bool{}
	for len(paused) < j.P() {
		e, err := j.nextEvent()
		if err != nil {
			return fmt.Errorf("core: waiting for pause: %w", err)
		}
		switch e.Kind {
		case EventPaused:
			paused[e.Rank] = true
		case EventDone:
			j.done[e.Rank] = true
		}
	}

	// 3. Migrating processes save their state and exit.
	j.epoch++
	states := map[int]*dump.State{}
	for _, r := range ranks {
		j.workers[r].RequestMigrate()
	}
	for len(states) < len(ranks) {
		e, err := j.nextEvent()
		if err != nil {
			return fmt.Errorf("core: waiting for dumps: %w", err)
		}
		if e.Kind == EventMigrated {
			st := e.State.(*dump.State)
			states[e.Rank] = st
			if onDump != nil {
				onDump(e.Rank, st)
			}
		}
	}

	// 4. Restart each migrated process on its new host from the dump,
	// with channels at the new epoch.
	for _, r := range ranks {
		st := states[r]
		st.Epoch = j.epoch
		prog, err := j.Rebuild(st)
		if err != nil {
			return fmt.Errorf("core: rebuilding rank %d: %w", r, err)
		}
		// Rebuild restores the config's worker budget; keep any
		// scheduler-level override across the migration.
		if j.workersOverride > 0 {
			if p, ok := prog.(workerBudgeted); ok {
				p.SetWorkers(j.workersOverride)
			}
		}
		w, err := NewWorkerAt(prog, j.Factory, j.epoch, j.events, st.Step)
		if err != nil {
			return fmt.Errorf("core: restarting rank %d: %w", r, err)
		}
		j.wireSync(w)
		j.workers[r] = w
		if j.onRebuild != nil {
			j.onRebuild(r, prog)
		}
		delete(j.done, r)
		go w.Start(j.Until)
	}

	// 5. CONT: the waiting processes re-open their channels and the
	// distributed computation continues.
	for _, rank := range j.ranks() {
		if migrating[rank] {
			continue
		}
		if err := <-j.workers[rank].RequestResume(j.epoch); err != nil {
			return fmt.Errorf("core: resuming rank %d: %w", rank, err)
		}
		delete(j.done, rank) // resumed workers re-announce completion
	}
	j.Migrations += len(ranks)
	return nil
}

// MonitorOnce performs one monitoring-program check (section 4.1: "checks
// every few minutes whether the parallel processes are progressing
// correctly"; section 5.1: migrate when the five-minute load exceeds the
// threshold). It returns the ranks migrated.
func (j *Job) MonitorOnce(pol cluster.MigrationPolicy, onDump func(int, *dump.State)) ([]int, error) {
	if j.Cluster == nil {
		return nil, nil
	}
	busy := j.Cluster.NeedsMigration(pol)
	if len(busy) == 0 {
		return nil, nil
	}
	var ranks []int
	var freed []*cluster.Host
	for _, h := range busy {
		ranks = append(ranks, h.Assigned())
		freed = append(freed, h)
	}
	// Select replacement hosts before unassigning, so the busy hosts
	// cannot be re-picked.
	repl := j.Cluster.SelectFree(len(ranks), cluster.DefaultPolicy())
	if len(repl) < len(ranks) {
		return nil, fmt.Errorf("core: need %d free hosts for migration, found %d", len(ranks), len(repl))
	}
	if err := j.MigrateRanks(ranks, onDump); err != nil {
		return nil, err
	}
	for i, h := range freed {
		h.Unassign()
		repl[i].Assign(ranks[i])
		j.hostOf[ranks[i]] = repl[i]
	}
	return ranks, nil
}

// MonitorLoop runs the monitoring program until every rank completes: it
// waits for worker events, and every checkEvery simulated minutes advances
// the virtual cluster and performs a MonitorOnce check (section 4.1: "the
// monitoring program checks every few minutes whether the parallel
// processes are progressing correctly"). The loop drives simulated time,
// so tests and examples control load scenarios through the scenario
// callback, which is invoked before each check and may start or stop jobs
// on hosts. It returns the total number of migrations performed.
func (j *Job) MonitorLoop(checkEvery time.Duration, pol cluster.MigrationPolicy,
	scenario func(tick int, c *cluster.Cluster)) (int, error) {
	if j.Cluster == nil {
		return 0, fmt.Errorf("core: MonitorLoop requires PlaceOnCluster")
	}
	migrations := 0
	for tick := 0; len(j.done) < j.P(); tick++ {
		// Drain any pending events without blocking for long.
		select {
		case e := <-j.events:
			if e.Kind == EventError {
				return migrations, fmt.Errorf("core: rank %d failed at step %d: %w", e.Rank, e.Step, e.Err)
			}
			if e.Kind == EventDone {
				j.done[e.Rank] = true
			}
			continue
		//detlint:allow nodeterm -- poll pacing only: the tick bounds how fast the monitor spins between drains; decisions are driven by tick count and virtual cluster time, not by this wall-clock delay
		case <-time.After(time.Millisecond):
		}
		if scenario != nil {
			scenario(tick, j.Cluster)
		}
		j.Cluster.Advance(checkEvery)
		ranks, err := j.MonitorOnce(pol, nil)
		if err != nil {
			return migrations, err
		}
		migrations += len(ranks)
	}
	return migrations, nil
}

// NewJob3D prepares a job for a 3D config, the analogue of NewJob2D.
func NewJob3D(cfg *Config3D, factory TransportFactory, sync *syncfile.Sync, until int) (*Job, *JobPrograms3D, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	j := newJob(factory, sync, until, cfg.D.P())
	j.Rebuild = func(st *dump.State) (Program, error) {
		p, err := cfg.NewProgram(st.Rank)
		if err != nil {
			return nil, err
		}
		if err := p.RestoreState(st); err != nil {
			return nil, err
		}
		return p, nil
	}
	jp := &JobPrograms3D{cfg: cfg, progs: make(map[int]*Program3D)}
	for rank := 0; rank < cfg.D.P(); rank++ {
		p, err := cfg.NewProgram(rank)
		if err != nil {
			return nil, nil, err
		}
		jp.progs[rank] = p
		w, err := NewWorker(p, factory, 0, j.events)
		if err != nil {
			return nil, nil, err
		}
		j.wireSync(w)
		j.workers[rank] = w
	}
	j.onRebuild = func(rank int, prog Program) {
		jp.progs[rank] = prog.(*Program3D)
	}
	j.resplit = func(states []*dump.State, sh decomp.Shape) ([]*dump.State, error) {
		out, err := resplit3D(cfg, states, sh)
		if err != nil {
			return nil, err
		}
		jp.progs = make(map[int]*Program3D)
		return out, nil
	}
	return j, jp, nil
}

// JobPrograms3D tracks the live Program of every rank across migrations.
type JobPrograms3D struct {
	cfg   *Config3D
	progs map[int]*Program3D
}

// Gather assembles the global 3D solution from the current programs.
func (jp *JobPrograms3D) Gather(steps int) *Result3D {
	ordered := make([]*Program3D, 0, len(jp.progs))
	for _, rank := range slices.Sorted(maps.Keys(jp.progs)) {
		ordered = append(ordered, jp.progs[rank])
	}
	return Gather3D(jp.cfg, ordered, steps)
}
