// Package ckpt is the farm-level durability layer: a versioned,
// atomically written checkpoint of a whole multi-job scheduler, built on
// the paper's section-4.1 dump files. A checkpoint directory holds one
// MANIFEST.json — the coordinator's complete bookkeeping (virtual clock,
// RNG state, policy, queue order, per-job accounting, fair-share credit,
// and a full cluster snapshot) — plus, per job that has simulation
// state, the per-rank dump files written through internal/dump's codec
// and paced by its Sequencer, keeping the section-5.2 shared-file-server
// etiquette even for whole-farm saves.
//
// Every save writes its state files into a fresh generation directory
// (states-<seq>/<jobID>/dump-rankNNNN.gob, named by the manifest's
// StatesDir) and only then renames the manifest into place — the commit
// point. A coordinator that dies mid-save therefore leaves the previous
// checkpoint fully intact: the old manifest still points at the old,
// untouched generation, and the half-written new generation is inert
// until Prune removes it after the next successful save. On top of that,
// every rank dump carries the step it was saved at, and Load*/Validate
// reject version skew, missing or surplus rank files, and state files
// that disagree with the manifest with errors that say exactly what is
// wrong, rather than letting a restore build a wrong farm.
package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/dump"
)

// Version is the manifest format version this build reads and writes.
// Bump it on any incompatible change to Manifest or the directory layout;
// Load refuses other versions so a restore never misinterprets a
// checkpoint.
const Version = 1

// ManifestName is the manifest file inside a checkpoint directory.
const ManifestName = "MANIFEST.json"

// Job phases a checkpoint distinguishes. Order within a phase is
// preserved: the manifest lists jobs pending first, then the queue in
// queue order, then running, then finished in completion order.
const (
	PhasePending  = "pending"
	PhaseQueued   = "queued"
	PhaseRunning  = "running"
	PhaseFinished = "finished"
)

// JobRecord is the complete serialized state of one farm job: its spec,
// its scheduling phase, and every accounting field the coordinator tracks
// for it. Hosts (running jobs only) maps rank i to the name of the host
// serving it. StateSteps, when non-empty, records the integration step of
// each persisted rank dump — the loader cross-checks the dump files
// against it to catch torn checkpoints.
type JobRecord struct {
	ID     string
	Method string
	JX     int
	JY     int
	JZ     int `json:",omitempty"`
	Side   int
	Steps  int

	Priority int           `json:",omitempty"`
	User     string        `json:",omitempty"`
	Weight   float64       `json:",omitempty"`
	Submit   time.Duration `json:",omitempty"`

	Phase string

	Remaining  float64
	StepSec    float64       `json:",omitempty"`
	PlacedAt   time.Duration `json:",omitempty"`
	FinishAt   time.Duration `json:",omitempty"`
	Started    bool          `json:",omitempty"`
	Live       bool          `json:",omitempty"`
	FirstStart time.Duration
	DoneAt     time.Duration `json:",omitempty"`
	Served     time.Duration `json:",omitempty"`
	Preempts   int           `json:",omitempty"`
	Backfilled bool          `json:",omitempty"`
	Migrations int           `json:",omitempty"`
	Repricings int           `json:",omitempty"`

	// CurJX/CurJY/CurJZ record the job's current decomposition lattice
	// when resizes moved it off the spec's (all zero otherwise); the
	// rank dumps, placement and spans below all follow it. GridX/Y/Z
	// persist the spec's explicitly pinned global grid, zero when the
	// grid derives from the lattice. Resizes/GrowRanks/ShrinkRanks are
	// the malleability accounting.
	CurJX       int `json:",omitempty"`
	CurJY       int `json:",omitempty"`
	CurJZ       int `json:",omitempty"`
	GridX       int `json:",omitempty"`
	GridY       int `json:",omitempty"`
	GridZ       int `json:",omitempty"`
	Resizes     int `json:",omitempty"`
	GrowRanks   int `json:",omitempty"`
	ShrinkRanks int `json:",omitempty"`

	Hosts      []string `json:",omitempty"`
	StateSteps []int    `json:",omitempty"`

	// SpansX/Y/Z record the job's decomposition shape when it differs
	// from the uniform split: the per-axis interior node counts the
	// speed-weighted splitter assigned at first placement. Restore must
	// rebuild exactly these spans or the rank dumps no longer fit their
	// subregions. Absent spans mean the uniform decomposition.
	SpansX []int `json:",omitempty"`
	SpansY []int `json:",omitempty"`
	SpansZ []int `json:",omitempty"`
	// Imbalance is the job's load-imbalance ratio at its last pricing
	// (1.0 is perfect balance; zero if the job never ran).
	Imbalance float64 `json:",omitempty"`
}

// Ranks returns the number of hosts the recorded job's spec asks for.
func (r JobRecord) Ranks() int {
	jz := r.JZ
	if jz < 1 {
		jz = 1
	}
	return r.JX * r.JY * jz
}

// CurRanks returns the number of hosts the job needs right now: the
// current (post-resize) lattice's rank count when one is recorded, the
// spec's otherwise. Placement and state-file counts follow it.
func (r JobRecord) CurRanks() int {
	if r.CurJX < 1 {
		return r.Ranks()
	}
	jz := r.CurJZ
	if jz < 1 {
		jz = 1
	}
	return r.CurJX * r.CurJY * jz
}

// grid returns the job's global grid extents: the pinned GridX/Y/Z when
// set, Side times the spec lattice otherwise (gz is zero for 2D jobs) —
// mirroring sched.JobSpec.Grid.
func (r JobRecord) grid() (gx, gy, gz int) {
	gx, gy, gz = r.GridX, r.GridY, r.GridZ
	if gx == 0 {
		gx = r.Side * r.JX
	}
	if gy == 0 {
		gy = r.Side * r.JY
	}
	if r.JZ < 1 {
		return gx, gy, 0
	}
	if gz == 0 {
		gz = r.Side * r.JZ
	}
	return gx, gy, gz
}

// checkCur validates the recorded current lattice against the job's
// dimensionality and grid.
func (r JobRecord) checkCur() error {
	if r.CurJX == 0 && r.CurJY == 0 && r.CurJZ == 0 {
		return nil
	}
	if r.CurJX < 1 || r.CurJY < 1 {
		return fmt.Errorf("ckpt: job %s: current lattice %dx%dx%d", r.ID, r.CurJX, r.CurJY, r.CurJZ)
	}
	if r.JZ < 1 && r.CurJZ != 0 {
		return fmt.Errorf("ckpt: job %s: 2D job with 3D current lattice (CurJZ = %d)", r.ID, r.CurJZ)
	}
	if r.JZ >= 1 && r.CurJZ < 1 {
		return fmt.Errorf("ckpt: job %s: 3D job with 2D current lattice", r.ID)
	}
	gx, gy, gz := r.grid()
	if r.CurJX > gx || r.CurJY > gy || (r.JZ >= 1 && r.CurJZ > gz) {
		return fmt.Errorf("ckpt: job %s: current lattice %dx%dx%d exceeds grid %dx%dx%d",
			r.ID, r.CurJX, r.CurJY, r.CurJZ, gx, gy, gz)
	}
	return nil
}

// Shape returns the recorded decomposition shape (zero when the job
// used the uniform split).
func (r JobRecord) Shape() decomp.Shape {
	return decomp.Shape{X: r.SpansX, Y: r.SpansY, Z: r.SpansZ}
}

// checkShape validates the recorded spans against the job's current
// lattice and grid, so a torn or hand-edited manifest can never rebuild
// a job whose subregions disagree with its rank dumps.
func (r JobRecord) checkShape() error {
	sh := r.Shape()
	if sh.IsZero() {
		return nil
	}
	jx, jy, jz := r.JX, r.JY, r.JZ
	if r.CurJX > 0 {
		jx, jy, jz = r.CurJX, r.CurJY, r.CurJZ
	}
	gx, gy, gz := r.grid()
	if jz < 1 {
		jz, gz = 0, 0
	}
	if err := sh.Check(jx, jy, jz, gx, gy, gz); err != nil {
		return fmt.Errorf("ckpt: job %s: %w", r.ID, err)
	}
	return nil
}

// Manifest is one complete farm checkpoint. All job times are
// farm-relative virtual times (relative to Start, the absolute cluster
// time of the coordinator's Run entry), exactly as the scheduler accounts
// them, so a restored run continues on the same clock.
type Manifest struct {
	Version int

	// SavedAt is the farm-relative virtual time of the checkpoint; Start
	// is the absolute cluster time the interrupted Run began at.
	SavedAt time.Duration
	Start   time.Duration

	Policy   string
	Backfill string
	// RNG is the scheduler's complete generator state (the splitmix64
	// word), so the restored farm draws the same placement permutations.
	RNG    uint64
	Closed bool

	Reclaims int
	// EASYDegraded counts the scheduling rounds whose EASY backfill
	// shadow was incomputable (explicit fallback to aggressive mode).
	EASYDegraded int                      `json:",omitempty"`
	ServedByUser map[string]time.Duration `json:",omitempty"`

	// StatesDir names the generation directory (states-<seq>) holding
	// this save's per-rank dump files. Each save uses a fresh sequence
	// number, so a crash mid-save can never overwrite the generation the
	// committed manifest points at.
	StatesDir string `json:",omitempty"`

	Jobs    []JobRecord
	Cluster cluster.Snapshot
}

// StatesDirName returns the generation directory name for a save
// sequence number.
func StatesDirName(seq int) string { return fmt.Sprintf("states-%010d", seq) }

// ParseStatesDir extracts the save sequence number from a generation
// directory name.
func ParseStatesDir(name string) (int, error) {
	var seq int
	if _, err := fmt.Sscanf(name, "states-%d", &seq); err != nil || StatesDirName(seq) != name {
		return 0, fmt.Errorf("ckpt: malformed states directory name %q", name)
	}
	return seq, nil
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	if m.Version != Version {
		return fmt.Errorf("ckpt: manifest version %d, this build reads version %d", m.Version, Version)
	}
	// The save side of Jobs/StatesDir lives downstream in internal/sched,
	// whose facts cannot flow up the import graph; the write/read pairing
	// is verified there, where both sides are in view.
	//detlint:allow ckptpair -- save side is downstream in internal/sched; pairing checked there
	seen := make(map[string]bool, len(m.Jobs))
	for i, jr := range m.Jobs { //detlint:allow ckptpair -- save side is downstream in internal/sched; pairing checked there
		if jr.ID == "" {
			return fmt.Errorf("ckpt: job %d has no ID", i)
		}
		if seen[jr.ID] {
			return fmt.Errorf("ckpt: duplicate job ID %q", jr.ID)
		}
		seen[jr.ID] = true
		switch jr.Phase {
		case PhasePending, PhaseQueued, PhaseRunning, PhaseFinished:
		default:
			return fmt.Errorf("ckpt: job %s has unknown phase %q", jr.ID, jr.Phase)
		}
		if err := jr.checkCur(); err != nil {
			return err
		}
		if jr.Phase == PhaseRunning && len(jr.Hosts) != jr.CurRanks() {
			return fmt.Errorf("ckpt: running job %s records %d hosts for %d ranks",
				jr.ID, len(jr.Hosts), jr.CurRanks())
		}
		if jr.Phase != PhaseRunning && len(jr.Hosts) != 0 {
			return fmt.Errorf("ckpt: %s job %s records a placement", jr.Phase, jr.ID)
		}
		if n := len(jr.StateSteps); n != 0 && n != jr.CurRanks() {
			return fmt.Errorf("ckpt: job %s records %d state steps for %d ranks",
				jr.ID, n, jr.CurRanks())
		}
		//detlint:allow ckptpair -- save side is downstream in internal/sched; pairing checked there
		if len(jr.StateSteps) > 0 && m.StatesDir == "" {
			return fmt.Errorf("ckpt: job %s records rank states but the manifest names no states directory", jr.ID)
		}
		if err := jr.checkShape(); err != nil {
			return err
		}
	}
	//detlint:allow ckptpair -- save side is downstream in internal/sched; pairing checked there
	if m.StatesDir != "" {
		if _, err := ParseStatesDir(m.StatesDir); err != nil { //detlint:allow ckptpair -- save side is downstream in internal/sched; pairing checked there
			return err
		}
	}
	return nil
}

// ManifestPath returns the manifest file of a checkpoint directory.
func ManifestPath(dir string) string { return filepath.Join(dir, ManifestName) }

// JobDir returns the directory holding one job's per-rank dump files
// within a save generation.
func JobDir(dir, statesDir, jobID string) string {
	return filepath.Join(dir, statesDir, jobID)
}

// CheckJobID rejects job IDs that cannot name a checkpoint subdirectory.
func CheckJobID(id string) error {
	if id == "" || id == "." || id == ".." || strings.ContainsAny(id, `/\`) {
		return fmt.Errorf("ckpt: job ID %q cannot name a checkpoint directory", id)
	}
	return nil
}

// Save writes the manifest atomically (temp file + rename), the commit
// point of a checkpoint: callers persist every job's rank dumps first, so
// a manifest that exists describes files that exist.
func Save(dir string, m *Manifest) error {
	m.Version = Version
	if err := m.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: encode manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-manifest-*")
	if err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	// The rename overwrites the one manifest path — the previous
	// checkpoint's commit record. Flush the new bytes (and afterwards
	// the directory entry) to stable storage so a power failure cannot
	// persist the rename without the data, which would corrupt the only
	// manifest and lose both checkpoints.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if err := os.Rename(name, ManifestPath(dir)); err != nil {
		os.Remove(name)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		if err := d.Sync(); err != nil {
			d.Close()
			return fmt.Errorf("ckpt: save: %w", err)
		}
		d.Close()
	}
	return nil
}

// Load reads and validates a checkpoint manifest.
func Load(dir string) (*Manifest, error) {
	data, err := os.ReadFile(ManifestPath(dir))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("ckpt: %s holds no checkpoint manifest", dir)
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: load: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ckpt: decode manifest %s: %w", ManifestPath(dir), err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveStates persists one job's per-rank states into a save generation
// through the sequencer (section 5.2: one save at a time, with a gap, so
// checkpoint I/O leaves the shared network and file server usable).
func SaveStates(dir, statesDir, jobID string, states []*dump.State, seq *dump.Sequencer) error {
	if _, err := ParseStatesDir(statesDir); err != nil {
		return err
	}
	if err := CheckJobID(jobID); err != nil {
		return err
	}
	if err := seq.SaveAll(JobDir(dir, statesDir, jobID), states); err != nil {
		return fmt.Errorf("ckpt: job %s: %w", jobID, err)
	}
	return nil
}

// LoadStates loads one job's per-rank states back from the manifest's
// generation and cross-checks each rank's saved integration step against
// the manifest record. A mismatch means the generation mixes files from
// different saves — which the generation scheme should make impossible,
// so treat it as corruption — and the whole checkpoint is rejected
// rather than restored into a farm whose bookkeeping disagrees with its
// simulations.
func LoadStates(dir, statesDir, jobID string, steps []int) ([]*dump.State, error) {
	if _, err := ParseStatesDir(statesDir); err != nil {
		return nil, err
	}
	if err := CheckJobID(jobID); err != nil {
		return nil, err
	}
	states, err := dump.LoadAll(JobDir(dir, statesDir, jobID), len(steps))
	if err != nil {
		return nil, fmt.Errorf("ckpt: job %s: %w", jobID, err)
	}
	for rank, st := range states {
		if st.Step != steps[rank] {
			return nil, fmt.Errorf(
				"ckpt: torn checkpoint: job %s rank %d dumped at step %d, manifest records step %d",
				jobID, rank, st.Step, steps[rank])
		}
	}
	return states, nil
}

// Prune removes every save generation except keep (the one the committed
// manifest names): stale generations from superseded saves and inert
// half-written ones from saves that never committed. Call it only after
// a successful Save.
func Prune(dir, keep string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "states-*"))
	if err != nil {
		return fmt.Errorf("ckpt: prune: %w", err)
	}
	for _, m := range matches {
		if filepath.Base(m) == keep {
			continue
		}
		if err := os.RemoveAll(m); err != nil {
			return fmt.Errorf("ckpt: prune: %w", err)
		}
	}
	return nil
}
