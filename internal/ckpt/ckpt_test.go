package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dump"
)

func sampleManifest() *Manifest {
	c := cluster.NewPaperCluster()
	c.Advance(30 * time.Minute)
	return &Manifest{
		SavedAt:   5 * time.Minute,
		Start:     30 * time.Minute,
		Policy:    "fifo",
		Backfill:  "easy",
		RNG:       0xdeadbeef,
		Closed:    true,
		Reclaims:  2,
		StatesDir: StatesDirName(1),
		ServedByUser: map[string]time.Duration{
			"cfd": 3 * time.Minute,
		},
		Jobs: []JobRecord{
			{ID: "waiting", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 100,
				Phase: PhaseQueued, Remaining: 100, FirstStart: -1},
			{ID: "active", Method: "lb2d", JX: 1, JY: 2, Side: 40, Steps: 200,
				Phase: PhaseRunning, Remaining: 120.5, StepSec: 0.04,
				Started: true, Hosts: []string{"hp715-00", "hp715-01"},
				StateSteps: []int{80, 79}},
			{ID: "done", Method: "fd2d", JX: 1, JY: 1, Side: 10, Steps: 5,
				Phase: PhaseFinished, Started: true, DoneAt: time.Minute},
		},
		Cluster: c.Snapshot(),
	}
}

func sampleState(rank, step int) *dump.State {
	return &dump.State{
		Rank: rank, Step: step, Method: "lb2d",
		NX: 4, NY: 4, NZ: 1,
		Fields: map[string][]float64{"rho": {1, 2, 3}},
	}
}

// TestManifestRoundTrip: Save then Load reproduces every field, including
// the float64 accounting, bit-exactly.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleManifest()
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version || got.SavedAt != want.SavedAt || got.Start != want.Start {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.RNG != want.RNG || got.Policy != want.Policy || got.Backfill != want.Backfill || !got.Closed {
		t.Errorf("config mismatch: %+v", got)
	}
	if got.ServedByUser["cfd"] != 3*time.Minute || got.Reclaims != 2 {
		t.Errorf("accounting mismatch: %+v", got)
	}
	if len(got.Jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(got.Jobs))
	}
	active := got.Jobs[1]
	if active.Remaining != 120.5 || active.StepSec != 0.04 {
		t.Errorf("float accounting not bit-exact: %+v", active)
	}
	if len(active.Hosts) != 2 || active.Hosts[0] != "hp715-00" {
		t.Errorf("placement mismatch: %v", active.Hosts)
	}
	if len(got.Cluster.Hosts) != 25 || got.Cluster.Now != 30*time.Minute {
		t.Errorf("cluster snapshot mismatch: now %v, %d hosts", got.Cluster.Now, len(got.Cluster.Hosts))
	}
	// The restored snapshot must be bit-identical to the saved one.
	for i, h := range got.Cluster.Hosts {
		if h != sampleManifest().Cluster.Hosts[i] {
			t.Errorf("host %d snapshot differs after the JSON round trip", i)
		}
	}
}

// TestLoadRejectsCorruption: every corruption mode is reported with a
// descriptive error instead of producing a wrong manifest.
func TestLoadRejectsCorruption(t *testing.T) {
	missing := t.TempDir()
	if _, err := Load(missing); err == nil || !strings.Contains(err.Error(), "no checkpoint manifest") {
		t.Errorf("missing manifest: %v", err)
	}

	garbage := t.TempDir()
	os.WriteFile(ManifestPath(garbage), []byte("{ truncated"), 0o644)
	if _, err := Load(garbage); err == nil || !strings.Contains(err.Error(), "decode manifest") {
		t.Errorf("garbage manifest: %v", err)
	}

	skewed := t.TempDir()
	m := sampleManifest()
	if err := Save(skewed, m); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(ManifestPath(skewed))
	data = []byte(strings.Replace(string(data), `"Version": 1`, `"Version": 99`, 1))
	os.WriteFile(ManifestPath(skewed), data, 0o644)
	if _, err := Load(skewed); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("version skew: %v", err)
	}
}

// TestValidateCatchesInconsistencies: structurally wrong manifests are
// rejected at save time too.
func TestValidateCatchesInconsistencies(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"duplicate IDs", func(m *Manifest) { m.Jobs[0].ID = "active" }, "duplicate job ID"},
		{"bad phase", func(m *Manifest) { m.Jobs[0].Phase = "zombie" }, "unknown phase"},
		{"host count", func(m *Manifest) { m.Jobs[1].Hosts = m.Jobs[1].Hosts[:1] }, "2 ranks"},
		{"queued with placement", func(m *Manifest) { m.Jobs[0].Hosts = []string{"hp715-00"} }, "records a placement"},
		{"state steps", func(m *Manifest) { m.Jobs[1].StateSteps = []int{1} }, "state steps"},
		{"states without a generation", func(m *Manifest) { m.StatesDir = "" }, "no states directory"},
		{"malformed generation", func(m *Manifest) { m.StatesDir = "../escape" }, "malformed states directory"},
	}
	for _, tc := range cases {
		m := sampleManifest()
		tc.mutate(m)
		err := Save(dir, m)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestStatesRoundTripAndTearDetection: per-rank states round-trip through
// the sequencer, and a dump whose step disagrees with the manifest — the
// signature of a save torn by a crash — is rejected.
func TestStatesRoundTripAndTearDetection(t *testing.T) {
	dir := t.TempDir()
	gen := StatesDirName(1)
	seq := dump.NewSequencer(0)
	states := []*dump.State{sampleState(0, 80), sampleState(1, 79)}
	if err := SaveStates(dir, gen, "active", states, seq); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStates(dir, gen, "active", []int{80, 79})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Step != 80 || got[1].Step != 79 {
		t.Errorf("states mismatch: %+v", got)
	}

	if _, err := LoadStates(dir, gen, "active", []int{80, 99}); err == nil ||
		!strings.Contains(err.Error(), "torn checkpoint") {
		t.Errorf("step mismatch: %v", err)
	}
	if _, err := LoadStates(dir, gen, "active", []int{80, 79, 78}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("missing rank: %v", err)
	}
	if _, err := LoadStates(dir, gen, "active", []int{80}); err == nil ||
		!strings.Contains(err.Error(), "expected 1") {
		t.Errorf("surplus rank: %v", err)
	}
	if _, err := LoadStates(dir, "wrong", "active", []int{80, 79}); err == nil ||
		!strings.Contains(err.Error(), "malformed states directory") {
		t.Errorf("malformed generation: %v", err)
	}
}

// TestSaveGenerationsSurviveTornSaves is the crash-during-checkpoint
// scenario: a half-written newer generation (dumped states but no
// manifest rename) must leave the committed checkpoint fully
// restorable, and Prune after the next successful save must drop every
// generation but the committed one.
func TestSaveGenerationsSurviveTornSaves(t *testing.T) {
	dir := t.TempDir()
	seq := dump.NewSequencer(0)

	// Save 1 commits: states + manifest.
	gen1 := StatesDirName(1)
	if err := SaveStates(dir, gen1, "active", []*dump.State{sampleState(0, 80), sampleState(1, 79)}, seq); err != nil {
		t.Fatal(err)
	}
	m := sampleManifest()
	if err := Save(dir, m); err != nil {
		t.Fatal(err)
	}

	// Save 2 tears: the states of a later step land on disk, the
	// coordinator dies before the manifest rename.
	gen2 := StatesDirName(2)
	if err := SaveStates(dir, gen2, "active", []*dump.State{sampleState(0, 95)}, seq); err != nil {
		t.Fatal(err)
	}

	// The committed checkpoint is untouched: the manifest still points
	// at generation 1, whose files load clean.
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatesDir != gen1 {
		t.Fatalf("manifest points at %q, want the committed %q", got.StatesDir, gen1)
	}
	if _, err := LoadStates(dir, got.StatesDir, "active", []int{80, 79}); err != nil {
		t.Fatalf("committed generation unloadable after a torn save: %v", err)
	}

	// The next successful save prunes both the superseded generation and
	// the torn one.
	gen3 := StatesDirName(3)
	if err := SaveStates(dir, gen3, "active", []*dump.State{sampleState(0, 99), sampleState(1, 99)}, seq); err != nil {
		t.Fatal(err)
	}
	m.StatesDir = gen3
	m.Jobs[1].StateSteps = []int{99, 99}
	if err := Save(dir, m); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, gen3); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "states-*"))
	if len(matches) != 1 || filepath.Base(matches[0]) != gen3 {
		t.Errorf("after prune the directory holds %v, want only %s", matches, gen3)
	}
	if _, err := LoadStates(dir, gen3, "active", []int{99, 99}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckJobID: IDs that would escape the checkpoint directory are
// refused.
func TestCheckJobID(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if err := CheckJobID(bad); err == nil {
			t.Errorf("ID %q accepted", bad)
		}
	}
	if err := CheckJobID("duct-wide.2"); err != nil {
		t.Errorf("ordinary ID rejected: %v", err)
	}
}
