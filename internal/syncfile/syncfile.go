// Package syncfile implements the shared-file synchronization algorithm of
// appendix B, used before process migration:
//
//	"In response to the request, every process writes the current
//	integration time step into a shared file (using file locking
//	semaphores, and append mode). Then, every process examines the shared
//	file to find the largest integration time step T_max among all the
//	processes. Further, every process chooses (T_max + 1) to be the
//	upcoming synchronization time step, and continues running until it
//	reaches this time step."
//
// Announce appends one line per process; O_APPEND makes small concurrent
// appends atomic on POSIX file systems, which plays the role of the paper's
// file-locking semaphores. Rounds are separate files so that consecutive
// migrations never read stale announcements.
package syncfile

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Sync coordinates synchronization rounds through a shared directory.
type Sync struct {
	Dir string
	// Poll is the interval between WaitAll retries (default 2ms).
	Poll time.Duration
}

// New creates the shared directory if needed.
func New(dir string) (*Sync, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("syncfile: %w", err)
	}
	return &Sync{Dir: dir}, nil
}

func (s *Sync) poll() time.Duration {
	if s.Poll > 0 {
		return s.Poll
	}
	return 2 * time.Millisecond
}

func (s *Sync) path(round int) string {
	return filepath.Join(s.Dir, fmt.Sprintf("sync-%06d", round))
}

// Announce appends this process's current integration step to the round's
// shared file.
func (s *Sync) Announce(round, rank, step int) error {
	f, err := os.OpenFile(s.path(round), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("syncfile: announce: %w", err)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%d %d\n", rank, step); err != nil {
		return fmt.Errorf("syncfile: announce: %w", err)
	}
	return nil
}

// ReadRound returns the announced steps by rank for a round; partially
// announced rounds return the subset seen so far.
func (s *Sync) ReadRound(round int) (map[int]int, error) {
	f, err := os.Open(s.path(round))
	if os.IsNotExist(err) {
		return map[int]int{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("syncfile: read: %w", err)
	}
	defer f.Close()
	out := map[int]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rank, step int
		if _, err := fmt.Sscanf(line, "%d %d", &rank, &step); err != nil {
			return nil, fmt.Errorf("syncfile: bad line %q: %w", line, err)
		}
		out[rank] = step
	}
	return out, sc.Err()
}

// WaitAll polls until p processes have announced, then returns the chosen
// synchronization step T_max + 1: the smallest step every process can still
// reach (no process may already be past it, by the un-synchronization bound
// of appendix A).
func (s *Sync) WaitAll(round, p int, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for {
		steps, err := s.ReadRound(round)
		if err != nil {
			return 0, err
		}
		if len(steps) >= p {
			tmax := 0
			for _, st := range steps {
				if st > tmax {
					tmax = st
				}
			}
			return tmax + 1, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("syncfile: round %d: %d of %d processes announced within %v",
				round, len(steps), p, timeout)
		}
		time.Sleep(s.poll())
	}
}

// SyncStep announces and waits in one call; every process of a round calls
// it and they all return the same synchronization step.
func (s *Sync) SyncStep(round, rank, step, p int, timeout time.Duration) (int, error) {
	if err := s.Announce(round, rank, step); err != nil {
		return 0, err
	}
	return s.WaitAll(round, p, timeout)
}

// Clear removes a completed round's file.
func (s *Sync) Clear(round int) error {
	err := os.Remove(s.path(round))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("syncfile: clear: %w", err)
	}
	return nil
}
