package syncfile

import (
	"sync"
	"testing"
	"time"
)

func TestAnnounceAndRead(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Announce(0, 2, 17)
	s.Announce(0, 0, 15)
	s.Announce(0, 1, 16)
	steps, err := s.ReadRound(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 || steps[0] != 15 || steps[1] != 16 || steps[2] != 17 {
		t.Errorf("steps = %v", steps)
	}
}

func TestReadMissingRoundIsEmpty(t *testing.T) {
	s, _ := New(t.TempDir())
	steps, err := s.ReadRound(99)
	if err != nil || len(steps) != 0 {
		t.Errorf("missing round: %v, %v", steps, err)
	}
}

func TestWaitAllReturnsTmaxPlusOne(t *testing.T) {
	s, _ := New(t.TempDir())
	s.Poll = time.Millisecond
	s.Announce(1, 0, 10)
	s.Announce(1, 1, 14)
	s.Announce(1, 2, 12)
	got, err := s.WaitAll(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Errorf("sync step = %d, want 15 (T_max + 1)", got)
	}
}

func TestWaitAllTimesOut(t *testing.T) {
	s, _ := New(t.TempDir())
	s.Poll = time.Millisecond
	s.Announce(2, 0, 5)
	if _, err := s.WaitAll(2, 3, 30*time.Millisecond); err == nil {
		t.Error("WaitAll with missing announcements succeeded")
	}
}

// TestConcurrentSyncStep runs P goroutines through a full round, as the
// parallel processes do on a migration signal: all must agree on the step.
func TestConcurrentSyncStep(t *testing.T) {
	s, _ := New(t.TempDir())
	s.Poll = time.Millisecond
	const p = 8
	// Un-synchronized current steps, max 23 -> sync step 24.
	steps := [p]int{20, 23, 21, 22, 20, 21, 23, 19}
	var wg sync.WaitGroup
	results := make([]int, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = s.SyncStep(5, rank, steps[rank], p, 5*time.Second)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if results[r] != 24 {
			t.Errorf("rank %d sync step = %d, want 24", r, results[r])
		}
	}
}

func TestRoundsAreIsolated(t *testing.T) {
	s, _ := New(t.TempDir())
	s.Poll = time.Millisecond
	s.Announce(0, 0, 100)
	s.Announce(1, 0, 5)
	got, err := s.WaitAll(1, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("round 1 sync step = %d, want 6 (round 0 must not leak)", got)
	}
}

func TestClear(t *testing.T) {
	s, _ := New(t.TempDir())
	s.Announce(3, 0, 1)
	if err := s.Clear(3); err != nil {
		t.Fatal(err)
	}
	steps, _ := s.ReadRound(3)
	if len(steps) != 0 {
		t.Error("cleared round still has announcements")
	}
	if err := s.Clear(3); err != nil {
		t.Errorf("double clear: %v", err)
	}
}

func TestRankReannouncementTakesLatest(t *testing.T) {
	// If a rank announces twice (restart during a round), the later line
	// wins because the map is rebuilt in file order.
	s, _ := New(t.TempDir())
	s.Announce(4, 0, 7)
	s.Announce(4, 0, 9)
	steps, _ := s.ReadRound(4)
	if steps[0] != 9 {
		t.Errorf("rank 0 step = %d, want 9", steps[0])
	}
}
