package sched

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched/metrics"
)

// TestProjectedStartPerHostAvailability: the EASY shadow walk must count
// a finishing job's hosts individually — a host reclaimed by its regular
// user mid-run, or one whose user load sits above the selection
// threshold, does not come back reservable at the job's finish and must
// not inflate the head's projected start.
func TestProjectedStartPerHostAvailability(t *testing.T) {
	head := &jobState{spec: JobSpec{ID: "head", Method: "lb2d", JX: 5, JY: 5, Side: 40, Steps: 100}}

	place := func(t *testing.T) (*Scheduler, *cluster.Cluster, *jobState) {
		t.Helper()
		pool := idlePool()
		s := New(pool, FIFO, 5)
		if err := s.Submit(JobSpec{
			ID: "runner", Method: "lb2d", JX: 5, JY: 4, Side: 200, Steps: 5000,
		}, nil); err != nil {
			t.Fatal(err)
		}
		s.admit(0)
		if err := s.scheduleRound(0); err != nil {
			t.Fatal(err)
		}
		if len(s.running) != 1 {
			t.Fatalf("runner not placed")
		}
		return s, pool, s.running[0]
	}

	// Baseline: 5 free + the runner's 20 hosts cover the 25-rank head at
	// the runner's virtual finish.
	s, pool, runner := place(t)
	if got := s.projectedStart(head); got != runner.finishAt {
		t.Fatalf("projected start = %v, want the runner's finish %v", got, runner.finishAt)
	}

	// A regular user reclaims one of the runner's hosts: that host will
	// not return to the pool when the runner finishes, so the head's
	// start is no longer computable from completions alone.
	pool.Reclaim(runner.res.Hosts[3])
	if got := s.projectedStart(head); got != -1 {
		t.Errorf("projected start = %v after a reclaim, want -1 (24 < 25 hosts)", got)
	}

	// Same through the load path: a user process pushes a held host's
	// user-attributable load past the selection threshold without any
	// reclaim event.
	s, pool, runner = place(t)
	runner.res.Hosts[7].StartJob()
	pool.Advance(30 * time.Minute) // load averages climb past 0.6
	if got := s.projectedStart(head); got != -1 {
		t.Errorf("projected start = %v with a user-busy held host, want -1", got)
	}
}

// TestEASYDegradeExplicitFallback: when the head's projected start is
// incomputable EASY falls back to aggressive backfill — but explicitly:
// the degrade is counted in the metrics summary and reported through the
// scheduler's debug log, instead of silently eroding the head's
// protection.
func TestEASYDegradeExplicitFallback(t *testing.T) {
	pool := idlePool()
	s := New(pool, FIFO, 5)
	var logs []string
	s.Logf = func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) }

	if err := s.Submit(JobSpec{
		ID: "a-runner", Method: "lb2d", JX: 5, JY: 4, Side: 200, Steps: 5000,
	}, nil); err != nil {
		t.Fatal(err)
	}
	s.admit(0)
	if err := s.scheduleRound(0); err != nil {
		t.Fatal(err)
	}
	if len(s.running) != 1 {
		t.Fatal("runner not placed")
	}

	// A user sits down at a free workstation: 4 reservable hosts remain,
	// and even the runner's 20 cannot cover the 25-rank head.
	for _, h := range pool.Hosts {
		if h.Assigned() < 0 {
			pool.Reclaim(h)
			break
		}
	}
	if err := s.Submit(JobSpec{
		ID: "b-head", Method: "lb2d", JX: 5, JY: 5, Side: 40, Steps: 100,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{
		ID: "c-small", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 15000,
	}, nil); err != nil {
		t.Fatal(err)
	}
	s.admit(0)
	if err := s.scheduleRound(0); err != nil {
		t.Fatal(err)
	}

	if s.easyDegraded != 1 {
		t.Errorf("easyDegraded = %d, want 1", s.easyDegraded)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "degrading to aggressive") || !strings.Contains(logs[0], "b-head") {
		t.Errorf("degrade not logged: %q", logs)
	}
	// The fallback is aggressive: the small job runs even though no
	// finish-before-shadow guarantee exists; the head stays queued.
	running := map[string]bool{}
	for _, js := range s.running {
		running[js.spec.ID] = true
	}
	if !running["c-small"] {
		t.Error("small job not backfilled under the explicit aggressive fallback")
	}
	if running["b-head"] || len(s.queue) != 1 || s.queue[0].spec.ID != "b-head" {
		t.Error("head should still be queued")
	}
	if !s.running[len(s.running)-1].backfilled {
		t.Error("small job not marked backfilled")
	}
}

// stormSpecs is the reclaim-storm workload of the EASY head-wait bound:
// a 20-rank head arrives behind a steady stream of 8-rank jobs while
// users keep taking workstations back.
func stormSpecs() []JobSpec {
	specs := []JobSpec{
		{ID: "head-wide", Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 6000,
			Submit: 2 * time.Minute},
	}
	for k := 0; k < 8; k++ {
		specs = append(specs, JobSpec{
			ID:     fmt.Sprintf("small-%d", k),
			Method: "lb2d", JX: 4, JY: 2, Side: 40, Steps: 15000,
			Submit: time.Duration(k) * 5 * time.Minute,
		})
	}
	return specs
}

// TestEASYHeadWaitBoundUnderReclaimStorm is the acceptance scenario for
// the corrected shadow walk: with users reclaiming reserved hosts every
// ten virtual minutes, EASY's per-host shadow keeps the wide head's wait
// bounded (it starts within a couple of small-job runtimes) while
// aggressive backfill lets the small-job stream starve it several-fold
// longer. Before the fix, the shadow counted reclaimed hosts as
// returning, so the head's reservation was optimistic and quietly
// stopped protecting it.
func TestEASYHeadWaitBoundUnderReclaimStorm(t *testing.T) {
	run := func(mode BackfillMode) metrics.Summary {
		t.Helper()
		c := cluster.NewPaperCluster()
		c.Advance(30 * time.Minute)
		s := New(c, FIFO, 1)
		s.Backfill = mode
		reclaimAt := make(map[*cluster.Host]time.Duration)
		s.ScenarioEvery = time.Minute
		s.Scenario = func(vt time.Duration, c *cluster.Cluster) {
			for h, at := range reclaimAt {
				if at >= 0 && vt-at >= 30*time.Minute {
					c.UserGone(h)
					reclaimAt[h] = -1
				}
			}
			if vt%(10*time.Minute) != 0 {
				return
			}
			for _, h := range c.Hosts {
				if h.Assigned() >= 0 && !h.Reclaimed() {
					c.Reclaim(h)
					reclaimAt[h] = vt
					return
				}
			}
		}
		for _, sp := range stormSpecs() {
			if err := s.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		sum, err := s.Run()
		if err != nil {
			t.Fatalf("backfill %v: %v", mode, err)
		}
		if len(sum.Jobs) != 9 {
			t.Fatalf("backfill %v: %d jobs finished, want 9", mode, len(sum.Jobs))
		}
		if sum.Reclaims == 0 {
			t.Fatalf("backfill %v: storm never reclaimed a host", mode)
		}
		return sum
	}

	easySum := run(BackfillEASY)
	easy := jobByID(t, easySum, "head-wide").Wait()
	agg := jobByID(t, run(BackfillAggressive), "head-wide").Wait()

	// The head needs 20 of 25 hosts while the storm keeps a few
	// reclaimed: EASY's sound reservation starts it within a couple of
	// small-job runtimes (~12 minutes each).
	if easy > 30*time.Minute {
		t.Errorf("EASY head wait = %v under the storm, want under 30m", easy)
	}
	if agg <= 2*easy {
		t.Errorf("aggressive head wait %v not much worse than EASY %v — starvation scenario broken", agg, easy)
	}
}
