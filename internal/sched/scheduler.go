package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched/metrics"
)

// Scheduler admits, queues, places, runs and preempts many jobs on one
// shared cluster. It is single-threaded and runs in the cluster's virtual
// time: the event loop jumps between arrivals and completions, so a trace
// replays deterministically for a fixed seed regardless of how fast the
// attached workloads really compute.
type Scheduler struct {
	Cluster *cluster.Cluster
	Policy  Policy
	// Select holds the section-4.1 thresholds used for capacity checks
	// and reservations.
	Select cluster.SelectionPolicy
	// Timer prices one integration step per placement; defaults to
	// ComputeTimer. Use PerfTimer for network-aware estimates.
	Timer StepTimer
	// Backfill lets jobs behind a blocked queue head run in the gaps its
	// ranks cannot fill. Disable for strict head-of-line order. Backfill
	// is aggressive (no EASY-style reservation for the head), so a steady
	// stream of small jobs can delay a wide head; see ROADMAP.md.
	Backfill bool

	rng      *rand.Rand
	pending  []*jobState // submitted, arrival time in the future
	queue    []*jobState
	running  []*jobState
	finished []*jobState

	// servedByUser accumulates virtual service time per tenant, the
	// WeightedFair bookkeeping.
	servedByUser map[string]time.Duration
}

// jobState is the scheduler's view of one job.
type jobState struct {
	spec JobSpec
	work Workload

	remaining float64 // integration steps left (fractional across preemptions)
	stepSec   float64 // current per-step estimate
	res       *cluster.Reservation
	placedAt  time.Duration
	finishAt  time.Duration

	started    bool
	firstStart time.Duration
	doneAt     time.Duration
	served     time.Duration
	preempts   int
	backfilled bool
}

// userKey returns the job's tenant; an unnamed user makes the job its
// own tenant.
func (j *jobState) userKey() string {
	if j.spec.User != "" {
		return j.spec.User
	}
	return j.spec.ID
}

// fairShare is the WeightedFair key: the tenant's virtual service time
// per unit weight.
func (s *Scheduler) fairShare(j *jobState) float64 {
	w := j.spec.Weight
	if w <= 0 {
		w = 1
	}
	return s.servedByUser[j.userKey()].Seconds() / w
}

// creditService charges served time to the job and its tenant.
func (s *Scheduler) creditService(j *jobState, d time.Duration) {
	j.served += d
	s.servedByUser[j.userKey()] += d
}

// New builds a scheduler over the cluster with the default selection
// policy, the compute-only step timer, backfill enabled, and a seeded RNG
// for the randomized placement scan.
func New(c *cluster.Cluster, policy Policy, seed int64) *Scheduler {
	return &Scheduler{
		Cluster:      c,
		Policy:       policy,
		Select:       cluster.DefaultPolicy(),
		Timer:        ComputeTimer,
		Backfill:     true,
		rng:          rand.New(rand.NewSource(seed)),
		servedByUser: make(map[string]time.Duration),
	}
}

// Submit queues a job. A nil workload replays the spec without running a
// simulation (NullWorkload). All submissions must precede Run.
func (s *Scheduler) Submit(spec JobSpec, w Workload) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, js := range s.pending {
		if js.spec.ID == spec.ID {
			return fmt.Errorf("sched: duplicate job ID %q", spec.ID)
		}
	}
	if w == nil {
		w = NullWorkload{}
	}
	s.pending = append(s.pending, &jobState{
		spec:       spec,
		work:       w,
		remaining:  float64(spec.Steps),
		firstStart: -1,
	})
	return nil
}

// Run drives the farm until every submitted job completes and returns the
// metrics summary. All reported times are relative to the cluster clock
// at the call.
func (s *Scheduler) Run() (metrics.Summary, error) {
	start := s.Cluster.Now()
	now := func() time.Duration { return s.Cluster.Now() - start }
	sort.SliceStable(s.pending, func(i, j int) bool {
		a, b := s.pending[i], s.pending[j]
		if a.spec.Submit != b.spec.Submit {
			return a.spec.Submit < b.spec.Submit
		}
		return a.spec.ID < b.spec.ID
	})
	total := len(s.pending)
	stalled := 0
	for len(s.finished) < total {
		t := now()
		s.admit(t)
		if err := s.scheduleRound(t); err != nil {
			return metrics.Summary{}, err
		}
		next, ok := s.nextEvent()
		if !ok {
			// Nothing running and no arrivals due: the queue is blocked
			// on host conditions (user load, idle thresholds). Let
			// virtual time pass so loads decay and users go idle; give
			// up after a simulated week without progress.
			if len(s.queue) == 0 && len(s.pending) == 0 {
				return metrics.Summary{}, fmt.Errorf("sched: no runnable work but %d jobs unfinished",
					total-len(s.finished))
			}
			next = t + time.Minute
			if stalled++; stalled > 7*24*60 {
				return metrics.Summary{}, fmt.Errorf("sched: farm stalled for a simulated week with %d jobs queued (pool %d hosts)",
					len(s.queue), len(s.Cluster.Hosts))
			}
		} else {
			stalled = 0
		}
		if dt := next - t; dt > 0 {
			s.Cluster.Advance(dt)
		}
		if err := s.complete(now()); err != nil {
			return metrics.Summary{}, err
		}
	}
	return s.summary(), nil
}

// admit moves every job whose arrival time has passed into the queue.
func (s *Scheduler) admit(t time.Duration) {
	keep := s.pending[:0]
	for _, js := range s.pending {
		if js.spec.Submit <= t {
			s.queue = append(s.queue, js)
		} else {
			keep = append(keep, js)
		}
	}
	s.pending = keep
}

// less orders the queue under the active policy; every policy falls back
// to (Submit, ID) so rounds are deterministic.
func (s *Scheduler) less(a, b *jobState) bool {
	switch s.Policy {
	case Priority:
		if a.spec.Priority != b.spec.Priority {
			return a.spec.Priority > b.spec.Priority
		}
	case WeightedFair:
		if fa, fb := s.fairShare(a), s.fairShare(b); fa != fb {
			return fa < fb
		}
	}
	if a.spec.Submit != b.spec.Submit {
		return a.spec.Submit < b.spec.Submit
	}
	return a.spec.ID < b.spec.ID
}

// scheduleRound places as many queued jobs as capacity (and, under
// Priority, preemption) allows. Each placement re-sorts the queue — a
// placement changes capacity and, under WeightedFair, shares.
func (s *Scheduler) scheduleRound(t time.Duration) error {
	for {
		sort.SliceStable(s.queue, func(i, j int) bool { return s.less(s.queue[i], s.queue[j]) })
		placed := -1
		for i, js := range s.queue {
			ok, err := s.tryPlace(js, t)
			if err != nil {
				return err
			}
			if ok {
				if i > 0 {
					js.backfilled = true
				}
				placed = i
				break
			}
			if i == 0 && s.Policy == Priority {
				ok, err := s.tryPreempt(js, t)
				if err != nil {
					return err
				}
				if ok {
					placed = 0
					break
				}
			}
			if !s.Backfill {
				break
			}
		}
		if placed < 0 {
			return nil
		}
		s.queue = append(s.queue[:placed], s.queue[placed+1:]...)
	}
}

// tryPlace reserves hosts for the job and starts (or resumes) it. A
// capacity shortfall returns (false, nil); workload failures are fatal.
func (s *Scheduler) tryPlace(js *jobState, t time.Duration) (bool, error) {
	res, err := s.Cluster.Reserve(js.spec.ID, js.spec.Ranks(), s.Select, s.rng)
	if err != nil {
		return false, nil // capacity shortfall; Reserve shuffles nothing on failure
	}
	sec, err := s.Timer(js.spec, res.Hosts)
	if err != nil {
		res.Release()
		return false, err
	}
	js.res = res
	js.stepSec = sec
	js.placedAt = t
	js.finishAt = t + time.Duration(js.remaining*sec*float64(time.Second))
	if !js.started {
		js.started = true
		js.firstStart = t
		err = js.work.Start(res.Hosts)
	} else {
		err = js.work.Resume(res.Hosts)
	}
	if err != nil {
		res.Release()
		return false, fmt.Errorf("sched: starting %s: %w", js.spec.ID, err)
	}
	s.running = append(s.running, js)
	return true, nil
}

// tryPreempt makes room for the blocked queue head by suspending running
// jobs of strictly lower priority — lowest priority first, most recently
// placed first among equals — then places the head.
func (s *Scheduler) tryPreempt(js *jobState, t time.Duration) (bool, error) {
	need := js.spec.Ranks() - s.Cluster.Capacity(s.Select)
	if need <= 0 {
		return false, nil
	}
	var victims []*jobState
	for _, r := range s.running {
		if r.spec.Priority < js.spec.Priority {
			victims = append(victims, r)
		}
	}
	sort.SliceStable(victims, func(i, j int) bool {
		a, b := victims[i], victims[j]
		if a.spec.Priority != b.spec.Priority {
			return a.spec.Priority < b.spec.Priority
		}
		if a.placedAt != b.placedAt {
			return a.placedAt > b.placedAt
		}
		return a.spec.ID > b.spec.ID
	})
	got := 0
	var chosen []*jobState
	for _, v := range victims {
		// Count only the victim's hosts that will actually be reservable
		// once released: a host whose regular user got busy since the
		// victim was placed frees no usable capacity, and suspending for
		// it would checkpoint a job without unblocking the head.
		freed := 0
		for _, h := range v.res.Hosts {
			if h.UserLoad15() < s.Select.MaxLoad15 {
				freed++
			}
		}
		if freed == 0 {
			continue
		}
		chosen = append(chosen, v)
		if got += freed; got >= need {
			break
		}
	}
	if got < need {
		return false, nil
	}
	for _, v := range chosen {
		if err := s.preempt(v, t); err != nil {
			return false, err
		}
	}
	return s.tryPlace(js, t)
}

// preempt suspends a running job through its workload's checkpoint path,
// releases its hosts and requeues it with the progress it made credited.
func (s *Scheduler) preempt(v *jobState, t time.Duration) error {
	elapsed := t - v.placedAt
	v.remaining -= elapsed.Seconds() / v.stepSec
	if v.remaining < 0 {
		v.remaining = 0
	}
	s.creditService(v, elapsed)
	v.preempts++
	if err := v.work.Suspend(); err != nil {
		return fmt.Errorf("sched: suspending %s: %w", v.spec.ID, err)
	}
	v.res.Release()
	v.res = nil
	for i, r := range s.running {
		if r == v {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.queue = append(s.queue, v)
	return nil
}

// nextEvent returns the earliest upcoming arrival or completion.
func (s *Scheduler) nextEvent() (time.Duration, bool) {
	best := time.Duration(-1)
	for _, js := range s.pending {
		if best < 0 || js.spec.Submit < best {
			best = js.spec.Submit
		}
	}
	for _, js := range s.running {
		if best < 0 || js.finishAt < best {
			best = js.finishAt
		}
	}
	return best, best >= 0
}

// complete retires every running job whose virtual finish time has
// arrived, letting the workload drain and releasing the hosts.
func (s *Scheduler) complete(t time.Duration) error {
	for i := 0; i < len(s.running); {
		js := s.running[i]
		if js.finishAt > t {
			i++
			continue
		}
		s.creditService(js, js.finishAt-js.placedAt)
		js.remaining = 0
		js.doneAt = js.finishAt
		if err := js.work.Finish(); err != nil {
			return fmt.Errorf("sched: finishing %s: %w", js.spec.ID, err)
		}
		js.res.Release()
		js.res = nil
		s.running = append(s.running[:i], s.running[i+1:]...)
		s.finished = append(s.finished, js)
	}
	return nil
}

// summary converts the finished jobs into the metrics report.
func (s *Scheduler) summary() metrics.Summary {
	jobs := make([]metrics.Job, len(s.finished))
	for i, js := range s.finished {
		jobs[i] = metrics.Job{
			ID:          js.spec.ID,
			Ranks:       js.spec.Ranks(),
			Priority:    js.spec.Priority,
			Submit:      js.spec.Submit,
			FirstStart:  js.firstStart,
			Done:        js.doneAt,
			Served:      js.served,
			Preemptions: js.preempts,
			Backfilled:  js.backfilled,
		}
	}
	return metrics.Summarize(jobs, len(s.Cluster.Hosts))
}

// Replay is the trace-replay convenience: it submits every spec with a
// NullWorkload and runs the farm to completion — the deterministic
// policy-comparison entry point cmd/experiments and tests use.
func Replay(c *cluster.Cluster, policy Policy, seed int64, timer StepTimer, specs []JobSpec) (metrics.Summary, error) {
	s := New(c, policy, seed)
	if timer != nil {
		s.Timer = timer
	}
	for _, sp := range specs {
		if err := s.Submit(sp, nil); err != nil {
			return metrics.Summary{}, err
		}
	}
	return s.Run()
}
