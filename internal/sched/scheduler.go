package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/sched/metrics"
)

// Scheduler admits, queues, places, runs and preempts many jobs on one
// shared cluster. It is a long-running online farm: Submit works before
// and during Run, the event loop idles (blocking, with virtual time
// frozen) while the farm is empty, and Close drains it for a clean
// shutdown. Scheduling itself is single-threaded and runs in the
// cluster's virtual time: the loop jumps between arrivals, completions
// and scenario ticks, so a trace replays deterministically for a fixed
// seed regardless of how fast the attached workloads really compute.
type Scheduler struct {
	Cluster *cluster.Cluster
	Policy  Policy
	// Select holds the section-4.1 thresholds used for capacity checks
	// and reservations.
	Select cluster.SelectionPolicy
	// Migration holds the section-5.1 trigger deciding when a reserved
	// host has become busy with its regular user's work.
	Migration cluster.MigrationPolicy
	// Timer prices one integration step per placement or migration;
	// defaults to ComputeTimer. Use PerfTimer for network-aware
	// estimates.
	Timer StepTimer
	// Workers, when positive, overrides the intra-rank worker-slab
	// budget of every placed workload that accepts one (WorkerBudgeted;
	// farm.WithWorkers threads through here). Zero keeps each job's own
	// default — an even share of GOMAXPROCS across its ranks. Solver
	// results are bit-identical at every value; only wall-clock speed
	// changes, and the virtual-time pricing (Timer) is unaffected.
	Workers int
	// Backfill lets jobs behind a blocked queue head run in the gaps its
	// ranks cannot fill. The default is BackfillEASY: a backfilled job
	// must finish before the head's projected start, so a steady stream
	// of small jobs cannot starve a wide head. BackfillAggressive drops
	// that reservation (the pre-EASY behaviour); BackfillNone enforces
	// strict head-of-line order.
	Backfill BackfillMode
	// Logf, when set, receives the scheduler's debug log lines (EASY
	// degrading to aggressive backfill when the head's projected start is
	// incomputable, and the like). Nil is silent. The lines are a thin
	// adapter over the structured event stream: they are the String
	// renderings of the diagnostic events.
	Logf func(format string, args ...any)

	// Events, when set, receives every structured Event of the
	// scheduling rounds — admissions, placements, backfills,
	// preemptions, migrations, completions, host reclaims, checkpoint
	// commits, EASY degrades — synchronously on the scheduling
	// goroutine, in a deterministic order for a fixed seed. The hook
	// must not block: the public farm package fans the stream out to
	// subscribers through bounded buffers. Set it before Run.
	Events func(Event)

	// Scenario, when set, is invoked on the scheduling goroutine at
	// every multiple of ScenarioEvery of virtual time while the farm has
	// work, before completions are retired. Experiments script user
	// activity through it — reclaim storms via Cluster.Reclaim /
	// Cluster.UserGone — and may Submit new jobs (live arrivals).
	Scenario      func(t time.Duration, c *cluster.Cluster)
	ScenarioEvery time.Duration

	// Autoscale, when set, is invoked on the scheduling goroutine at
	// every multiple of AutoscaleEvery of virtual time while the farm
	// has work, right after the scenario tick (so the control loop sees
	// the scripted user activity of the same instant). The callback
	// samples the farm through the control handle and actuates resize
	// decisions through it — the analyzer -> decision -> actuator
	// pipeline lives in farm/autoscale; this hook is only its
	// deterministic clock.
	Autoscale      func(t time.Duration, ctl AutoscaleControl)
	AutoscaleEvery time.Duration

	// CheckpointEvery, when positive, makes the event loop persist the
	// whole farm into CheckpointDir at every multiple of it in virtual
	// time (while the farm has work), so a crashed coordinator loses at
	// most one interval. CheckpointGap paces the per-rank dump writes
	// (the section-5.2 inter-save gap); zero writes back to back.
	// Restore does not re-arm these — re-set them (like Scenario) before
	// resuming a restored farm.
	CheckpointEvery time.Duration
	CheckpointDir   string
	CheckpointGap   time.Duration

	rng      *rand.Rand
	src      *SplitMix // rng's source, persisted by Checkpoint
	queue    []*jobState
	running  []*jobState
	finished []*jobState
	reclaims int
	// easyDegraded counts the scheduling rounds whose EASY shadow was
	// incomputable, so backfill explicitly fell back to aggressive.
	easyDegraded int

	// start anchors the farm-relative clock: the first Run sets it to
	// the cluster time it was entered at, unless Restore pre-set it to
	// the original run's anchor so a restored farm continues on the same
	// clock. Later Runs of the same farm keep the anchor — every job
	// time (Submit, placedAt, finishAt) is relative to it, so a farm
	// resumed after an interrupt must not re-base them.
	start    time.Duration
	anchored bool
	restored bool
	// ckptSeq numbers the save generations inside CheckpointDir; each
	// Checkpoint writes into a fresh states-<seq> directory so a crash
	// mid-save never damages the last committed checkpoint.
	ckptSeq int

	// mu guards the fields shared with Submit/Close callers on other
	// goroutines; everything else is owned by the Run loop.
	mu          sync.Mutex
	pending     []*jobState // submitted, not yet admitted to the queue
	ids         map[string]bool
	closed      bool
	looping     bool
	interrupted bool
	// ckptOnInterrupt makes the interrupted Run persist the farm into
	// CheckpointDir before returning ErrInterrupted — the
	// context-cancellation path of the public farm API.
	ckptOnInterrupt bool
	runFailed       bool // last Run exited with an error, reservations still held
	wake            chan struct{}
	// resizeReqs queues RequestResize calls for the event loop, which
	// drains them at the current virtual time each iteration.
	resizeReqs []resizeReq

	// servedByUser accumulates virtual service time per tenant, the
	// WeightedFair bookkeeping.
	servedByUser map[string]time.Duration
}

// jobState is the scheduler's view of one job.
type jobState struct {
	spec JobSpec
	work Workload

	remaining float64 // integration steps left (fractional across preemptions)
	stepSec   float64 // current per-step estimate
	res       *cluster.Reservation
	placedAt  time.Duration
	finishAt  time.Duration

	// shape is the job's per-axis span assignment, fixed at the first
	// placement (speed-weighted when that strictly beats uniform on the
	// mixed pool) and preserved across suspensions and migrations — the
	// rank dumps only fit one geometry. Zero means uniform.
	shape decomp.Shape
	// imbalance is the placement's load-imbalance ratio (slowest rank
	// over perfectly balanced; 1.0 is ideal), refreshed at every pricing.
	imbalance float64

	// curJX/curJY/curJZ is the job's current decomposition lattice after
	// resizes; all zero means the spec's lattice. The spec itself is
	// never mutated — it remains the submitted job — so the effective
	// spec (espec) carries the current lattice with the original grid
	// pinned whenever the scheduler prices or validates a resized job.
	curJX, curJY, curJZ int

	started    bool
	live       bool // submitted while the farm was running
	firstStart time.Duration
	doneAt     time.Duration
	served     time.Duration
	preempts   int
	backfilled bool
	migrations int
	repricings int
	// resizes counts completed resizes; growRanks/shrinkRanks total the
	// ranks added and removed by them.
	resizes     int
	growRanks   int
	shrinkRanks int
}

// resized reports whether the job currently runs a lattice other than
// its spec's.
func (j *jobState) resized() bool { return j.curJX > 0 }

// ranks returns the job's current rank count.
func (j *jobState) ranks() int {
	if !j.resized() {
		return j.spec.Ranks()
	}
	jz := j.curJZ
	if jz < 1 {
		jz = 1
	}
	return j.curJX * j.curJY * jz
}

// espec returns the job's effective spec: the submitted spec until the
// first resize, afterwards a copy carrying the current lattice with the
// original global grid pinned, so every pricing, shape validation and
// rank-count decision measures the same problem on the new rank count.
func (j *jobState) espec() JobSpec {
	if !j.resized() {
		return j.spec
	}
	e := j.spec
	e.GX, e.GY, e.GZ = j.spec.Grid()
	e.JX, e.JY, e.JZ = j.curJX, j.curJY, j.curJZ
	return e
}

// userKey returns the job's tenant; an unnamed user makes the job its
// own tenant.
func (j *jobState) userKey() string {
	if j.spec.User != "" {
		return j.spec.User
	}
	return j.spec.ID
}

// fairShare is the WeightedFair key: the tenant's virtual service time
// per unit weight.
func (s *Scheduler) fairShare(j *jobState) float64 {
	w := j.spec.Weight
	if w <= 0 {
		w = 1
	}
	return s.servedByUser[j.userKey()].Seconds() / w
}

// creditService charges served time to the job and its tenant.
func (s *Scheduler) creditService(j *jobState, d time.Duration) {
	j.served += d
	s.servedByUser[j.userKey()] += d
}

// New builds a scheduler over the cluster with the default selection and
// migration policies, the compute-only step timer, EASY backfill, and a
// seeded RNG for the randomized placement scan.
func New(c *cluster.Cluster, policy Policy, seed int64) *Scheduler {
	src := NewSplitMix(seed)
	return &Scheduler{
		Cluster:      c,
		Policy:       policy,
		Select:       cluster.DefaultPolicy(),
		Migration:    cluster.DefaultMigrationPolicy(),
		Timer:        ComputeTimer,
		Backfill:     BackfillEASY,
		rng:          rand.New(src),
		src:          src,
		ids:          make(map[string]bool),
		wake:         make(chan struct{}, 1),
		servedByUser: make(map[string]time.Duration),
	}
}

// Submit queues a job. A nil workload replays the spec without running a
// simulation (NullWorkload). Submit is safe from any goroutine and works
// while Run is active: a live submission whose arrival time has already
// passed on the farm clock is admitted at the current virtual time.
//
// Rejections are typed and checkable with errors.Is: ErrInvalidSpec
// wraps every spec-validation failure, ErrNoCapacity flags a job that
// needs more ranks than the pool has hosts (it could never be placed,
// so it is refused here instead of stalling the farm later), ErrClosed
// flags submissions after Close, and ErrDuplicateID a reused job ID.
func (s *Scheduler) Submit(spec JobSpec, w Workload) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if n := spec.Ranks(); n > len(s.Cluster.Hosts) {
		return fmt.Errorf("sched: submit %s: %d ranks on a %d-host pool: %w",
			spec.ID, n, len(s.Cluster.Hosts), ErrNoCapacity)
	}
	if w == nil {
		w = NullWorkload{}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("sched: submit %s: %w", spec.ID, ErrClosed)
	}
	if s.ids[spec.ID] {
		s.mu.Unlock()
		return fmt.Errorf("sched: submit %q: %w", spec.ID, ErrDuplicateID)
	}
	s.ids[spec.ID] = true
	s.pending = append(s.pending, &jobState{
		spec:       spec,
		work:       w,
		remaining:  float64(spec.Steps),
		firstStart: -1,
		live:       s.looping,
	})
	s.mu.Unlock()
	s.wakeup()
	return nil
}

// Close marks the farm closed to new submissions: Run finishes every job
// already accepted and returns. Safe from any goroutine; Submit after
// Close fails.
//
// After a Run that returned early — a workload failure, a stall, or an
// Interrupt — Close also hands back the reservations the placed jobs
// still hold, so the pool is reusable. It is idempotent: a second Close
// releases nothing twice and never panics. The release happens under the
// scheduler lock and only once a Run has actually exited with an error
// (never while the loop is live), so Close stays safe from any
// goroutine.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	if s.runFailed && !s.looping {
		for _, js := range s.running {
			if js.res != nil {
				js.res.Release()
				js.res = nil //detlint:allow eventcomplete -- teardown after a failed Run; the event stream is already closed
			}
		}
	}
	s.mu.Unlock()
	s.wakeup()
}

// wakeup nudges an idle Run loop; the buffered token makes the signal
// level-triggered, so it is never lost between the loop's empty-check
// and its block.
func (s *Scheduler) wakeup() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// isClosed reports whether Close was called.
func (s *Scheduler) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// isInterrupted reports whether Interrupt was called.
func (s *Scheduler) isInterrupted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interrupted
}

// now returns the farm-relative virtual time.
func (s *Scheduler) now() time.Duration { return s.Cluster.Now() - s.start }

// drained reports whether the farm holds no work at all.
func (s *Scheduler) drained() bool {
	if len(s.queue) > 0 || len(s.running) > 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending) == 0
}

// Run drives the farm: jobs are admitted as their arrival times pass (or
// the moment they are submitted live), reclaimed hosts are vacated by
// migration, and completions retire in virtual time. When the farm goes
// empty the loop blocks until another Submit or Close arrives; after
// Close it returns the metrics summary once everything accepted has
// finished. All reported times are relative to the cluster clock at the
// call.
func (s *Scheduler) Run() (sum metrics.Summary, err error) {
	if s.CheckpointEvery > 0 && s.CheckpointDir == "" {
		return metrics.Summary{}, fmt.Errorf("sched: CheckpointEvery set without a CheckpointDir")
	}
	s.mu.Lock()
	// An interrupted farm may Run again — unless Close already finalized
	// it: Close after a failed Run hands the placed jobs' reservations
	// back to the pool, so those jobs can no longer be completed or
	// migrated in memory. Refuse cleanly here instead of panicking on a
	// nil reservation rounds later. The check lives in the same critical
	// section that raises looping, so it serializes with Close's
	// !looping finalize path.
	for _, js := range s.running {
		if js.res == nil {
			s.mu.Unlock()
			return metrics.Summary{}, fmt.Errorf(
				"sched: running job %s holds no reservation (Close finalized this farm after an interrupted run); Restore from a checkpoint instead of re-running",
				js.spec.ID)
		}
	}
	if s.restored {
		// A restored farm continues on the interrupted run's clock.
		s.restored = false
	} else if !s.anchored {
		s.start = s.Cluster.Now()
	}
	s.anchored = true
	s.looping = true
	s.runFailed = false
	s.mu.Unlock()
	now := s.now
	defer func() {
		// Flag an early exit in the same critical section that retires
		// the loop, so a concurrent Close never observes the loop gone
		// without also seeing whether reservations need handing back.
		s.mu.Lock()
		s.looping = false
		s.runFailed = err != nil
		s.mu.Unlock()
	}()
	stallSince := time.Duration(-1)
	for {
		if s.isInterrupted() {
			return metrics.Summary{}, s.interruptExit()
		}
		t := now()
		s.admit(t)
		if err := s.handleReclaims(t); err != nil {
			return metrics.Summary{}, err
		}
		s.handleResizeRequests(t)
		if err := s.scheduleRound(t); err != nil {
			return metrics.Summary{}, err
		}
		if s.drained() {
			if s.isClosed() {
				break
			}
			// Idle: no work anywhere and the farm is still open. Block
			// until a submission or Close arrives; virtual time stands
			// still while nobody is computing.
			<-s.wake
			continue
		}
		next, ok := s.nextEvent()
		if !ok {
			// Nothing running and no arrivals due: the queue is blocked
			// on host conditions (user load, idle thresholds). Let
			// virtual time pass so loads decay and users go idle; give
			// up after a simulated week without progress.
			next = t + time.Minute
			if stallSince < 0 {
				stallSince = t
			}
			if t-stallSince > 7*24*time.Hour {
				return metrics.Summary{}, fmt.Errorf("sched: farm stalled for a simulated week with %d jobs queued (pool %d hosts)",
					len(s.queue), len(s.Cluster.Hosts))
			}
		} else {
			stallSince = -1
		}
		// Scenario, autoscale and auto-checkpoint ticks cap the advance so
		// scripted user activity, control-loop samples and periodic saves
		// land at exact virtual times.
		tick, scale, save := time.Duration(-1), time.Duration(-1), time.Duration(-1)
		if s.Scenario != nil && s.ScenarioEvery > 0 {
			tick = t - t%s.ScenarioEvery + s.ScenarioEvery
			if tick < next {
				next = tick
			}
		}
		if s.Autoscale != nil && s.AutoscaleEvery > 0 {
			scale = t - t%s.AutoscaleEvery + s.AutoscaleEvery
			if scale < next {
				next = scale
			}
		}
		if s.CheckpointEvery > 0 {
			save = t - t%s.CheckpointEvery + s.CheckpointEvery
			if save < next {
				next = save
			}
		}
		if dt := next - t; dt > 0 {
			s.Cluster.Advance(dt)
		}
		t = now()
		if tick >= 0 && t == tick {
			s.Scenario(t, s.Cluster)
			if s.isInterrupted() {
				return metrics.Summary{}, s.interruptExit()
			}
		}
		if scale >= 0 && t == scale {
			s.Autoscale(t, AutoscaleControl{s: s, t: t})
		}
		if save >= 0 && t == save {
			if err := s.Checkpoint(s.CheckpointDir); err != nil {
				return metrics.Summary{}, fmt.Errorf("sched: auto-checkpoint at %v: %w", t, err)
			}
		}
		if err := s.complete(t); err != nil {
			return metrics.Summary{}, err
		}
	}
	return s.summary(), nil
}

// admit moves every job whose arrival time has passed into the queue. A
// live submission's arrival is clamped to the current farm time, so its
// queue wait never counts time before it existed.
func (s *Scheduler) admit(t time.Duration) {
	s.mu.Lock()
	var admitted []*jobState
	keep := s.pending[:0]
	for _, js := range s.pending {
		if js.live && js.spec.Submit < t {
			js.spec.Submit = t
		}
		if js.spec.Submit <= t {
			s.queue = append(s.queue, js)
			admitted = append(admitted, js)
		} else {
			keep = append(keep, js)
		}
	}
	s.pending = keep
	s.mu.Unlock()
	// Emit outside the lock: the Events hook may fan out to subscriber
	// bookkeeping of its own.
	for _, js := range admitted {
		s.emit(JobQueued{T: t, ID: js.spec.ID})
	}
}

// handleReclaims drains the cluster's host event stream and vacates every
// reserved host whose regular user came back: the displaced ranks migrate
// to replacement hosts through the section-5.1 dump/rebuild path and the
// job is repriced on its new placement, or — when no replacements are
// reservable — the whole job is suspended and requeued. Either way the
// farm never squats beside a returned user.
func (s *Scheduler) handleReclaims(t time.Duration) error {
	for _, ev := range s.Cluster.DrainEvents() {
		if ev.Kind == cluster.EventReclaim {
			s.reclaims++
			s.emit(HostReclaimed{T: ev.At - s.start, Host: ev.Host.Name, Owner: ev.Owner})
		}
	}
	busy := s.Cluster.NeedsMigration(s.Migration)
	if len(busy) == 0 {
		return nil
	}
	byOwner := make(map[string][]*cluster.Host)
	for _, h := range busy {
		byOwner[h.Owner()] = append(byOwner[h.Owner()], h)
	}
	// Iterate over a copy: a fallback suspension mutates s.running.
	for _, js := range append([]*jobState(nil), s.running...) {
		hosts := byOwner[js.spec.ID]
		if len(hosts) == 0 {
			continue
		}
		if err := s.migrateOff(js, hosts, t); err != nil {
			return err
		}
	}
	return nil
}

// migrateOff moves a running job's displaced ranks off the busy hosts and
// reprices the job on the patched placement; without replacement capacity
// it falls back to suspending the whole job.
func (s *Scheduler) migrateOff(js *jobState, busy []*cluster.Host, t time.Duration) error {
	ranks, repl, err := s.Cluster.Migrate(js.res, busy, s.Select, s.rng)
	if err != nil {
		// Not enough reservable hosts to rehost the displaced ranks: the
		// job checkpoints off the pool entirely and waits in the queue.
		return s.preempt(js, t)
	}
	// Progress so far ran at the old placement's pace; credit it before
	// the new estimate replaces stepSec.
	elapsed := t - js.placedAt
	js.remaining -= elapsed.Seconds() / js.stepSec
	if js.remaining < 0 {
		js.remaining = 0
	}
	s.creditService(js, elapsed)
	if err := js.work.Migrate(ranks, repl); err != nil {
		return fmt.Errorf("sched: migrating %s: %w", js.spec.ID, err)
	}
	// The weighted shape was fixed when the job first dumped; reprice the
	// same geometry on the patched placement.
	sec, err := s.Timer(js.espec(), js.shape, js.res.Hosts)
	if err != nil {
		return err
	}
	imb, err := Imbalance(js.espec(), js.shape, js.res.Hosts)
	if err != nil {
		return err
	}
	js.imbalance = imb
	js.stepSec = sec
	js.placedAt = t
	js.finishAt = t + time.Duration(js.remaining*sec*float64(time.Second))
	js.migrations += len(ranks)
	js.repricings++
	s.emit(JobMigrated{T: t, ID: js.spec.ID, Ranks: append([]int(nil), ranks...),
		Hosts: hostNames(repl), StepSec: sec, Finish: js.finishAt})
	return nil
}

// less orders the queue under the active policy; every policy falls back
// to (Submit, ID) so rounds are deterministic.
func (s *Scheduler) less(a, b *jobState) bool {
	switch s.Policy {
	case Priority:
		if a.spec.Priority != b.spec.Priority {
			return a.spec.Priority > b.spec.Priority
		}
	case WeightedFair:
		if fa, fb := s.fairShare(a), s.fairShare(b); fa != fb {
			return fa < fb
		}
	}
	if a.spec.Submit != b.spec.Submit {
		return a.spec.Submit < b.spec.Submit
	}
	return a.spec.ID < b.spec.ID
}

// scheduleRound places as many queued jobs as capacity (and, under
// Priority, preemption) allows. Each placement re-sorts the queue — a
// placement changes capacity and, under WeightedFair, shares. Under
// BackfillEASY a candidate behind the blocked head must finish before the
// head's projected start (its virtual-finish-time reservation).
func (s *Scheduler) scheduleRound(t time.Duration) error {
	degradeCounted := false
	for {
		sort.SliceStable(s.queue, func(i, j int) bool { return s.less(s.queue[i], s.queue[j]) })
		placed := -1
		shadow, shadowSet := time.Duration(-1), false
		for i, js := range s.queue {
			deadline := time.Duration(-1)
			if i > 0 && s.Backfill == BackfillEASY {
				if !shadowSet {
					shadow = s.projectedStart(s.queue[0])
					shadowSet = true
					if shadow < 0 && !degradeCounted {
						// No reservation is computable for the head:
						// completions alone never free enough usable hosts.
						// Fall back to aggressive backfill for this round —
						// explicitly, so operators can see the head's
						// protection lapse instead of it eroding silently.
						// (The shadow is re-derived after every placement;
						// the round degrades once, however many passes run.)
						degradeCounted = true
						s.easyDegraded++
						s.emit(EASYDegraded{T: t, Head: s.queue[0].spec.ID, Ranks: s.queue[0].ranks()})
					}
				}
				deadline = shadow
			}
			ok, err := s.tryPlace(js, t, deadline)
			if err != nil {
				return err
			}
			if ok {
				placed = i
				break
			}
			if i == 0 && s.Policy == Priority {
				ok, err := s.tryPreempt(js, t)
				if err != nil {
					return err
				}
				if ok {
					placed = 0
					break
				}
			}
			if s.Backfill == BackfillNone {
				break
			}
		}
		if placed < 0 {
			return nil
		}
		js := s.queue[placed]
		s.queue = append(s.queue[:placed], s.queue[placed+1:]...)
		if placed > 0 {
			js.backfilled = true
			s.emit(JobBackfilled{T: t, ID: js.spec.ID, Hosts: hostNames(js.res.Hosts),
				StepSec: js.stepSec, Finish: js.finishAt, Weighted: !js.shape.IsZero()})
		} else {
			s.emit(JobPlaced{T: t, ID: js.spec.ID, Hosts: hostNames(js.res.Hosts),
				StepSec: js.stepSec, Finish: js.finishAt, Weighted: !js.shape.IsZero()})
		}
	}
}

// projectedStart estimates when the blocked queue head could start: the
// earliest virtual time at which enough hosts are reservable, assuming
// every running job returns its hosts at its virtual finish time and
// host conditions stay as they are. The shadow walk counts each
// finishing job's hosts individually — a host whose regular user has
// reclaimed it mid-run, or whose user load sits above the selection
// threshold, does not come back reservable when the job releases it, so
// it must not inflate the head's reservation. (Counting whole rank
// counts, as this walk once did, made the estimate optimistic under
// reclaim storms and silently eroded the head's protection.) It returns
// -1 when running-job completions alone never free enough hosts (the
// head waits on user activity instead) — no reservation is computable
// then, and EASY backfill explicitly degrades to the aggressive mode
// for the round (counted and logged by scheduleRound) until conditions
// change.
func (s *Scheduler) projectedStart(head *jobState) time.Duration {
	free := s.Cluster.Capacity(s.Select)
	need := head.ranks()
	run := append([]*jobState(nil), s.running...)
	sort.SliceStable(run, func(i, j int) bool { return run[i].finishAt < run[j].finishAt })
	for _, r := range run {
		if free >= need {
			break
		}
		for _, h := range r.res.Hosts {
			if h != nil && h.ReservableWhenFree(s.Select) {
				free++
			}
		}
		if free >= need {
			return r.finishAt
		}
	}
	return -1
}

// logf emits a debug line through the scheduler's Logf hook, if any.
func (s *Scheduler) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// chooseShape picks a fresh placement's decomposition shape and returns
// it with its per-step price: the speed-weighted shape when it strictly
// beats the uniform one under the scheduler's own step pricing, the
// zero shape (= uniform splitting) otherwise. Comparing with s.Timer —
// not a fixed compute bound — matters under PerfTimer, where a weighted
// shape's longer boundary spans can cost more in halo exchange than its
// balanced compute saves; the comparison guarantees weighting never
// prices a placement worse than the identical-spans split would have,
// whichever timer the farm runs. Equal speeds produce a weighted shape
// bit-identical to the uniform one, so homogeneous pools always fall
// through to uniform. Returning the price lets tryPlace reuse it
// instead of running the timer — a whole discrete-event simulation
// under PerfTimer — a second time on the winning shape.
func (s *Scheduler) chooseShape(spec JobSpec, hosts []*cluster.Host) (decomp.Shape, float64, error) {
	uni := UniformShape(spec)
	if w, err := WeightedShape(spec, hosts); err == nil && !w.Equal(uni) {
		wb, errW := s.Timer(spec, w, hosts)
		ub, errU := s.Timer(spec, uni, hosts)
		if errW == nil && errU == nil && wb < ub {
			return w, wb, nil
		}
		if errU == nil {
			return decomp.Shape{}, ub, nil
		}
		// The uniform pricing itself failed; re-run it below so the
		// caller sees the error exactly as a direct pricing would.
	}
	sec, err := s.Timer(spec, decomp.Shape{}, hosts)
	return decomp.Shape{}, sec, err
}

// tryPlace reserves hosts for the job and starts (or resumes) it. A
// capacity shortfall returns (false, nil); workload failures are fatal.
// A non-negative deadline is an EASY backfill window: the placement is
// abandoned when the job's projected finish would overrun it.
//
// A job's decomposition shape is decided here, at its first placement:
// the speed-weighted shape when it strictly beats uniform splitting on
// the reserved hosts, uniform otherwise (chooseShape). A job that has
// started before keeps the shape it dumped with — resumptions and
// migrations reprice the same geometry on the new hosts.
func (s *Scheduler) tryPlace(js *jobState, t time.Duration, deadline time.Duration) (bool, error) {
	res, err := s.Cluster.Reserve(js.spec.ID, js.ranks(), s.Select, s.rng)
	if err != nil {
		return false, nil // capacity shortfall; Reserve shuffles nothing on failure
	}
	shape, sec := js.shape, 0.0
	if !js.started {
		shape, sec, err = s.chooseShape(js.spec, res.Hosts)
	} else {
		// A resized job resumes on its current lattice (espec), with the
		// shape it dumped under.
		sec, err = s.Timer(js.espec(), shape, res.Hosts)
	}
	if err != nil {
		res.Release()
		return false, err
	}
	finish := t + time.Duration(js.remaining*sec*float64(time.Second))
	if deadline >= 0 && finish > deadline {
		res.Release()
		return false, nil
	}
	imb, err := Imbalance(js.espec(), shape, res.Hosts)
	if err != nil {
		res.Release()
		return false, err
	}
	js.shape = shape
	js.imbalance = imb
	js.res = res //detlint:allow eventcomplete -- the caller emits JobPlaced/JobBackfilled, which carry deadline context tryPlace lacks
	js.stepSec = sec
	js.placedAt = t
	js.finishAt = finish
	if !js.started {
		js.started = true
		js.firstStart = t
		if s.Workers > 0 {
			if wb, ok := js.work.(WorkerBudgeted); ok {
				wb.SetWorkers(s.Workers)
			}
		}
		err = js.work.Start(res.Hosts)
	} else {
		err = js.work.Resume(res.Hosts)
	}
	if err != nil {
		res.Release()
		return false, fmt.Errorf("sched: starting %s: %w", js.spec.ID, err)
	}
	s.running = append(s.running, js) //detlint:allow eventcomplete -- the caller emits JobPlaced/JobBackfilled, which carry deadline context tryPlace lacks
	return true, nil
}

// tryPreempt makes room for the blocked queue head by suspending running
// jobs of strictly lower priority — lowest priority first, most recently
// placed first among equals — then places the head.
func (s *Scheduler) tryPreempt(js *jobState, t time.Duration) (bool, error) {
	need := js.ranks() - s.Cluster.Capacity(s.Select)
	if need <= 0 {
		return false, nil
	}
	var victims []*jobState
	for _, r := range s.running {
		if r.spec.Priority < js.spec.Priority {
			victims = append(victims, r)
		}
	}
	sort.SliceStable(victims, func(i, j int) bool {
		a, b := victims[i], victims[j]
		if a.spec.Priority != b.spec.Priority {
			return a.spec.Priority < b.spec.Priority
		}
		if a.placedAt != b.placedAt {
			return a.placedAt > b.placedAt
		}
		return a.spec.ID > b.spec.ID
	})
	got := 0
	var chosen []*jobState
	for _, v := range victims {
		// Count only the victim's hosts that will actually be reservable
		// once released: a host whose regular user got busy since the
		// victim was placed frees no usable capacity, and suspending for
		// it would checkpoint a job without unblocking the head.
		freed := 0
		for _, h := range v.res.Hosts {
			if h.ReservableWhenFree(s.Select) {
				freed++
			}
		}
		if freed == 0 {
			continue
		}
		chosen = append(chosen, v)
		if got += freed; got >= need {
			break
		}
	}
	if got < need {
		return false, nil
	}
	for _, v := range chosen {
		if err := s.preempt(v, t); err != nil {
			return false, err
		}
	}
	return s.tryPlace(js, t, -1)
}

// preempt suspends a running job through its workload's checkpoint path,
// releases its hosts and requeues it with the progress it made credited.
func (s *Scheduler) preempt(v *jobState, t time.Duration) error {
	elapsed := t - v.placedAt
	v.remaining -= elapsed.Seconds() / v.stepSec
	if v.remaining < 0 {
		v.remaining = 0
	}
	s.creditService(v, elapsed)
	v.preempts++
	if err := v.work.Suspend(); err != nil {
		return fmt.Errorf("sched: suspending %s: %w", v.spec.ID, err)
	}
	v.res.Release()
	v.res = nil
	for i, r := range s.running {
		if r == v {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.queue = append(s.queue, v)
	s.emit(JobPreempted{T: t, ID: v.spec.ID, Remaining: v.remaining})
	return nil
}

// nextEvent returns the earliest upcoming arrival or completion.
func (s *Scheduler) nextEvent() (time.Duration, bool) {
	best := time.Duration(-1)
	s.mu.Lock()
	for _, js := range s.pending {
		if best < 0 || js.spec.Submit < best {
			best = js.spec.Submit
		}
	}
	s.mu.Unlock()
	for _, js := range s.running {
		if best < 0 || js.finishAt < best {
			best = js.finishAt
		}
	}
	return best, best >= 0
}

// complete retires every running job whose virtual finish time has
// arrived, letting the workload drain and releasing the hosts.
func (s *Scheduler) complete(t time.Duration) error {
	for i := 0; i < len(s.running); {
		js := s.running[i]
		if js.finishAt > t {
			i++
			continue
		}
		s.creditService(js, js.finishAt-js.placedAt)
		js.remaining = 0
		js.doneAt = js.finishAt
		if err := js.work.Finish(); err != nil {
			return fmt.Errorf("sched: finishing %s: %w", js.spec.ID, err)
		}
		js.res.Release()
		js.res = nil
		s.running = append(s.running[:i], s.running[i+1:]...)
		s.finished = append(s.finished, js)
		s.emit(JobFinished{T: js.doneAt, ID: js.spec.ID, Job: metricsJob(js)})
	}
	return nil
}

// metricsJob converts a job's accounting into its metrics record.
func metricsJob(js *jobState) metrics.Job {
	return metrics.Job{
		ID:          js.spec.ID,
		Ranks:       js.ranks(),
		Priority:    js.spec.Priority,
		Submit:      js.spec.Submit,
		FirstStart:  js.firstStart,
		Done:        js.doneAt,
		Served:      js.served,
		Preemptions: js.preempts,
		Backfilled:  js.backfilled,
		Migrations:  js.migrations,
		Repricings:  js.repricings,
		Resizes:     js.resizes,
		GrowRanks:   js.growRanks,
		ShrinkRanks: js.shrinkRanks,
		Weighted:    !js.shape.IsZero(),
		Imbalance:   js.imbalance,
	}
}

// summary converts the finished jobs into the metrics report.
func (s *Scheduler) summary() metrics.Summary {
	jobs := make([]metrics.Job, len(s.finished))
	for i, js := range s.finished {
		jobs[i] = metricsJob(js)
	}
	sum := metrics.Summarize(jobs, len(s.Cluster.Hosts))
	sum.Reclaims = s.reclaims
	sum.EASYDegraded = s.easyDegraded
	return sum
}

// Phase is where a job currently sits in the farm lifecycle.
type Phase int

const (
	// PhasePending: submitted, arrival time not yet reached.
	PhasePending Phase = iota
	// PhaseQueued: admitted, waiting for placement.
	PhaseQueued
	// PhaseRunning: placed on a reservation.
	PhaseRunning
	// PhaseFinished: completed; its metrics record is final.
	PhaseFinished
)

func (p Phase) String() string {
	switch p {
	case PhasePending:
		return "pending"
	case PhaseQueued:
		return "queued"
	case PhaseRunning:
		return "running"
	case PhaseFinished:
		return "finished"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// JobInfo is one job's identity and phase, with its metrics record once
// finished.
type JobInfo struct {
	ID         string
	Phase      Phase
	Metrics    metrics.Job
	HasMetrics bool
}

// Jobs lists every job the farm has accepted with its current phase —
// pending first, then queue order, running, finished. It reads the
// loop-owned lists, so call it only while Run is not active (the public
// farm package uses it to rebuild job handles after Restore); during a
// run, track the event stream instead.
func (s *Scheduler) Jobs() []JobInfo {
	var infos []JobInfo
	s.mu.Lock()
	for _, js := range s.pending {
		infos = append(infos, JobInfo{ID: js.spec.ID, Phase: PhasePending})
	}
	s.mu.Unlock()
	for _, js := range s.queue {
		infos = append(infos, JobInfo{ID: js.spec.ID, Phase: PhaseQueued})
	}
	for _, js := range s.running {
		infos = append(infos, JobInfo{ID: js.spec.ID, Phase: PhaseRunning})
	}
	for _, js := range s.finished {
		infos = append(infos, JobInfo{ID: js.spec.ID, Phase: PhaseFinished,
			Metrics: metricsJob(js), HasMetrics: true})
	}
	return infos
}

// Replay is the trace-replay convenience: it submits every spec with a
// NullWorkload, closes the farm and runs it to completion — the
// deterministic policy-comparison entry point cmd/experiments and tests
// use.
func Replay(c *cluster.Cluster, policy Policy, seed int64, timer StepTimer, specs []JobSpec) (metrics.Summary, error) {
	s := New(c, policy, seed)
	if timer != nil {
		s.Timer = timer
	}
	for _, sp := range specs {
		if err := s.Submit(sp, nil); err != nil {
			return metrics.Summary{}, err
		}
	}
	s.Close()
	return s.Run()
}
