package sched

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
)

// resizeCfg is the filter-off 2D LB channel the resize tests run as a
// real workload. The fourth-order filter's stencil spans subregion
// seams, so bit-identical resizing requires Eps = 0 (core.Job.Resize
// refuses otherwise); the global grid is fixed at 24x24 whatever the
// lattice, so the same problem re-splits onto any rank count.
func resizeCfg(t *testing.T, jx, jy int) *core.Config2D {
	t.Helper()
	const nx, ny = 24, 24
	d, err := decomp.New2D(jx, jy, nx, ny, decomp.Full)
	if err != nil {
		t.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0
	par.ForceX = 1e-5
	return &core.Config2D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask2D(nx, ny),
		D:      d,
	}
}

// resizeSpec is the matching JobSpec: a jx x jy lattice with the 24x24
// grid pinned explicitly, so the scheduler's resize lattices keep
// measuring the same problem the core config integrates.
func resizeSpec(id string, jx, jy, steps int) JobSpec {
	return JobSpec{ID: id, Method: "lb2d", JX: jx, JY: jy, Side: 12,
		GX: 24, GY: 24, Steps: steps}
}

// fixedTimer prices every placement at one virtual second per step, so
// the tests' virtual timelines are independent of host speeds and rank
// counts.
func fixedTimer(JobSpec, decomp.Shape, []*cluster.Host) (float64, error) {
	return 1, nil
}

// TestResizeLifecycleBitIdentical is the malleability acceptance test at
// the scheduler level: a real 2D LB simulation grows 4 -> 6 ranks and
// later shrinks 6 -> 2 through the autoscale control handle while
// running, finishes, and its final fields are bit-identical to a
// sequential reference. The metrics counters and the event stream record
// both resizes.
func TestResizeLifecycleBitIdentical(t *testing.T) {
	const steps = 40
	ref, _, err := core.RunSequential2D(resizeCfg(t, 2, 2), steps)
	if err != nil {
		t.Fatal(err)
	}

	pool := idlePool()
	s := New(pool, FIFO, 42)
	s.Timer = fixedTimer
	var events []Event
	s.Events = func(e Event) { events = append(events, e) }
	s.AutoscaleEvery = 5 * time.Second
	s.Autoscale = func(vt time.Duration, ctl AutoscaleControl) {
		switch vt {
		case 5 * time.Second:
			sm := ctl.Sample()
			if len(sm.Running) != 1 || sm.Running[0].Ranks != 4 {
				t.Errorf("sample at 5s: %+v, want one 4-rank running job", sm.Running)
			}
			if p := sm.Running[0].Progress; p < 0.1 || p > 0.15 {
				t.Errorf("progress at 5s = %v, want ~5/40", p)
			}
			ctl.Decide("sim", "grow", 4, 6, "queue empty, hosts free")
			if err := ctl.Resize("sim", 6); err != nil {
				t.Errorf("grow: %v", err)
			}
		case 15 * time.Second:
			if err := ctl.Resize("sim", 2); err != nil {
				t.Errorf("shrink: %v", err)
			}
		case 25 * time.Second:
			if n := ctl.Sample().Running[0].Ranks; n != 2 {
				t.Errorf("ranks after shrink = %d, want 2", n)
			}
			assigned := 0
			for _, h := range pool.Hosts {
				if h.Assigned() >= 0 {
					assigned++
				}
			}
			if assigned != 2 {
				t.Errorf("%d hosts assigned after shrink, want 2", assigned)
			}
		}
	}

	job, progs := newSimJob(t, resizeCfg(t, 2, 2), steps)
	if err := s.Submit(resizeSpec("sim", 2, 2, steps), &CoreWorkload{Job: job, Cluster: pool}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	sum, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	j := jobByID(t, sum, "sim")
	if j.Resizes != 2 || j.GrowRanks != 2 || j.ShrinkRanks != 4 {
		t.Errorf("resizes=%d grow=%d shrink=%d, want 2/2/4", j.Resizes, j.GrowRanks, j.ShrinkRanks)
	}
	if j.Ranks != 2 {
		t.Errorf("final ranks = %d, want 2 (the metrics record the last lattice)", j.Ranks)
	}
	if sum.Resizes != 2 || sum.GrowRanks != 2 || sum.ShrinkRanks != 4 {
		t.Errorf("summary resizes=%d grow=%d shrink=%d, want 2/2/4",
			sum.Resizes, sum.GrowRanks, sum.ShrinkRanks)
	}

	var resized []JobResized
	decisions := 0
	for _, e := range events {
		switch ev := e.(type) {
		case JobResized:
			resized = append(resized, ev)
		case AutoscaleDecision:
			decisions++
		}
	}
	if len(resized) != 2 || resized[0].From != 4 || resized[0].To != 6 ||
		resized[1].From != 6 || resized[1].To != 2 {
		t.Errorf("JobResized events %+v, want 4>6 then 6>2", resized)
	}
	if len(resized) == 2 && (len(resized[0].Hosts) != 6 || len(resized[1].Hosts) != 2) {
		t.Errorf("resized placements %d/%d hosts, want 6/2",
			len(resized[0].Hosts), len(resized[1].Hosts))
	}
	if decisions != 1 {
		t.Errorf("%d AutoscaleDecision events, want 1", decisions)
	}

	final := progs.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != final.Rho[i] || ref.Vx[i] != final.Vx[i] || ref.Vy[i] != final.Vy[i] {
			t.Fatalf("resized simulation differs from reference at node %d", i)
		}
	}
}

// TestResizeSentinelsAndNoOp covers the resize request surface: resizing
// to the current size is a silent no-op, a queued job and a finished job
// are ErrNotRunning, a stranger is ErrUnknownJob, a rank count beyond
// the pool — or beyond its free hosts — is ErrNoCapacity and leaves the
// job untouched, and the asynchronous RequestResize path commits a grow
// at the next loop iteration.
func TestResizeSentinelsAndNoOp(t *testing.T) {
	s := New(idlePool(), FIFO, 7)
	s.Timer = fixedTimer
	var events []Event
	s.Events = func(e Event) { events = append(events, e) }

	type verdict struct {
		name string
		err  error
		want error // nil = any non-nil error is wrong
	}
	var got []verdict
	var async []<-chan error
	s.AutoscaleEvery = 5 * time.Second
	s.Autoscale = func(vt time.Duration, ctl AutoscaleControl) {
		switch vt {
		case 5 * time.Second:
			got = append(got,
				verdict{"no-op", ctl.Resize("big", 20), nil},
				verdict{"queued", ctl.Resize("waiting", 4), ErrNotRunning},
				verdict{"stranger", ctl.Resize("ghost", 4), ErrUnknownJob},
				verdict{"beyond pool", ctl.Resize("big", 26), ErrNoCapacity},
				verdict{"beyond free", ctl.Resize("big", 24), ErrNoCapacity},
			)
			if err := ctl.Resize("big", 0); err == nil {
				t.Error("resize to 0 ranks accepted")
			}
			sm := ctl.Sample()
			if sm.QueueDepth != 1 || len(sm.Running) != 2 || len(sm.Queued) != 1 {
				t.Errorf("sample: depth=%d running=%d queued=%d, want 1/2/1",
					sm.QueueDepth, len(sm.Running), len(sm.Queued))
			}
			if u := sm.Utilization(); u != 22.0/25.0 {
				t.Errorf("utilization = %v, want 22/25", u)
			}
			for _, q := range sm.Queued {
				if q.Running || q.StepSec != 0 || q.Progress != 0 {
					t.Errorf("queued sample %+v, want unpriced and unstarted", q)
				}
			}
		case 10 * time.Second:
			// The asynchronous path: answered by the next loop iteration.
			async = append(async,
				s.RequestResize("small", 4),
				s.RequestResize("ghost", 1))
		case 35 * time.Second:
			got = append(got, verdict{"finished", ctl.Resize("big", 4), ErrNotRunning})
		}
	}

	// 20 + 2 of 25 hosts busy; "waiting" (8 ranks) queues behind them.
	for _, spec := range []JobSpec{
		{ID: "big", Method: "lb2d", JX: 5, JY: 4, Side: 10, Steps: 30},
		{ID: "small", Method: "lb2d", JX: 2, JY: 1, Side: 10, Steps: 50},
		{ID: "waiting", Method: "lb2d", JX: 4, JY: 2, Side: 10, Steps: 10},
	} {
		if err := s.Submit(spec, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	sum, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range got {
		if v.want == nil {
			if v.err != nil {
				t.Errorf("%s: %v, want nil", v.name, v.err)
			}
		} else if !errors.Is(v.err, v.want) {
			t.Errorf("%s: %v, want %v", v.name, v.err, v.want)
		}
	}
	if len(async) != 2 {
		t.Fatalf("%d async requests recorded, want 2", len(async))
	}
	if err := <-async[0]; err != nil {
		t.Errorf("RequestResize(small, 4): %v", err)
	}
	if err := <-async[1]; !errors.Is(err, ErrUnknownJob) {
		t.Errorf("RequestResize(ghost, 1): %v, want ErrUnknownJob", err)
	}

	if len(sum.Jobs) != 3 {
		t.Fatalf("%d jobs finished, want 3", len(sum.Jobs))
	}
	big, small := jobByID(t, sum, "big"), jobByID(t, sum, "small")
	if big.Resizes != 0 || big.Ranks != 20 {
		t.Errorf("big resizes=%d ranks=%d, want 0/20 (every attempt refused or no-op)",
			big.Resizes, big.Ranks)
	}
	if small.Resizes != 1 || small.GrowRanks != 2 || small.Ranks != 4 {
		t.Errorf("small resizes=%d grow=%d ranks=%d, want 1/2/4",
			small.Resizes, small.GrowRanks, small.Ranks)
	}
	count := 0
	for _, e := range events {
		if ev, ok := e.(JobResized); ok {
			count++
			if ev.ID != "small" || ev.From != 2 || ev.To != 4 || ev.T != 10*time.Second {
				t.Errorf("JobResized %+v, want small 2>4 at 10s", ev)
			}
		}
	}
	if count != 1 {
		t.Errorf("%d JobResized events, want 1 (no-ops and refusals emit nothing)", count)
	}
}

// TestResizeWithReclaimSameRound interleaves the two placement mutations
// at one virtual instant: a scenario tick reclaims one of a running
// simulation's hosts and the autoscale tick of the same instant grows
// the job, so the grow re-splits over a placement that still holds the
// reclaimed host and the migration vacates it immediately afterwards —
// resize first, then migration, both at the same virtual time. The
// simulation's final fields stay bit-identical through the combination.
func TestResizeWithReclaimSameRound(t *testing.T) {
	const steps = 60
	ref, _, err := core.RunSequential2D(resizeCfg(t, 2, 2), steps)
	if err != nil {
		t.Fatal(err)
	}

	pool := idlePool()
	s := New(pool, FIFO, 5)
	s.Timer = fixedTimer
	var events []Event
	s.Events = func(e Event) { events = append(events, e) }
	s.ScenarioEvery = 5 * time.Second
	s.Scenario = func(vt time.Duration, c *cluster.Cluster) {
		if vt != 10*time.Second {
			return
		}
		for _, h := range c.Hosts {
			if h.Owner() == "sim" {
				c.Reclaim(h)
				return
			}
		}
		t.Error("no host owned by sim at 10s")
	}
	s.AutoscaleEvery = 5 * time.Second
	s.Autoscale = func(vt time.Duration, ctl AutoscaleControl) {
		if vt == 10*time.Second {
			if err := ctl.Resize("sim", 6); err != nil {
				t.Errorf("grow during reclaim: %v", err)
			}
		}
	}

	job, progs := newSimJob(t, resizeCfg(t, 2, 2), steps)
	if err := s.Submit(resizeSpec("sim", 2, 2, steps), &CoreWorkload{Job: job, Cluster: pool}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	sum, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	j := jobByID(t, sum, "sim")
	if j.Resizes != 1 || j.GrowRanks != 2 || j.Migrations != 1 {
		t.Errorf("resizes=%d grow=%d migrations=%d, want 1/2/1", j.Resizes, j.GrowRanks, j.Migrations)
	}
	resizedAt, migratedAt := -1, -1
	for i, e := range events {
		switch ev := e.(type) {
		case JobResized:
			resizedAt = i
			if ev.T != 10*time.Second || ev.From != 4 || ev.To != 6 {
				t.Errorf("JobResized %+v, want 4>6 at 10s", ev)
			}
		case JobMigrated:
			migratedAt = i
			if ev.T != 10*time.Second || len(ev.Ranks) != 1 {
				t.Errorf("JobMigrated %+v, want one rank at 10s", ev)
			}
		}
	}
	if resizedAt < 0 || migratedAt < 0 || resizedAt > migratedAt {
		t.Errorf("event order: resize at %d, migration at %d; want resize first, both present",
			resizedAt, migratedAt)
	}

	final := progs.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != final.Rho[i] || ref.Vx[i] != final.Vx[i] || ref.Vy[i] != final.Vy[i] {
			t.Fatalf("resized+migrated simulation differs from reference at node %d", i)
		}
	}
}

// TestCheckpointRestoreAcrossResize kills a coordinator after its only
// job grew 4 -> 6 ranks, so the checkpoint holds the resized lattice
// (six rank states, the pinned grid, the resize counters). A fresh
// scheduler restores it with a workload factory that sizes the rebuilt
// simulation from the EFFECTIVE spec it receives, finishes the farm, and
// both the metrics summary and the simulation's final fields are
// bit-identical to the uninterrupted references.
func TestCheckpointRestoreAcrossResize(t *testing.T) {
	const steps = 40
	ref, _, err := core.RunSequential2D(resizeCfg(t, 2, 2), steps)
	if err != nil {
		t.Fatal(err)
	}
	spec := resizeSpec("sim", 2, 2, steps)
	growAt5 := func(vt time.Duration, ctl AutoscaleControl) {
		if vt == 5*time.Second {
			if err := ctl.Resize("sim", 6); err != nil {
				t.Errorf("grow: %v", err)
			}
		}
	}

	// Reference run: no crash, same scenario and autoscale tick grids.
	refFarm := New(idlePool(), FIFO, 42)
	refFarm.Timer = fixedTimer
	refFarm.ScenarioEvery = 5 * time.Second
	refFarm.Scenario = func(time.Duration, *cluster.Cluster) {}
	refFarm.AutoscaleEvery = 5 * time.Second
	refFarm.Autoscale = growAt5
	if err := refFarm.Submit(spec, nil); err != nil {
		t.Fatal(err)
	}
	refFarm.Close()
	want, err := refFarm.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The doomed coordinator: real simulation, resize at 5s, checkpoint
	// and crash at 10s.
	dir := t.TempDir()
	pool1 := idlePool()
	s1 := New(pool1, FIFO, 42)
	s1.Timer = fixedTimer
	job1, _ := newSimJob(t, resizeCfg(t, 2, 2), steps)
	crashed := false
	s1.ScenarioEvery = 5 * time.Second
	s1.Scenario = func(vt time.Duration, _ *cluster.Cluster) {
		if vt < 10*time.Second || crashed {
			return
		}
		crashed = true
		if err := s1.Checkpoint(dir); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		s1.Interrupt()
	}
	s1.AutoscaleEvery = 5 * time.Second
	s1.Autoscale = growAt5
	if err := s1.Submit(spec, &CoreWorkload{Job: job1, Cluster: pool1}); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if _, err := s1.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("crashed run returned %v, want ErrInterrupted", err)
	}
	if !crashed {
		t.Fatal("scenario never fired; the farm drained before 10 virtual seconds")
	}

	// The manifest must hold the resized placement: the 3x2 lattice, six
	// rank states, the original grid, and the resize history.
	m, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var jr *ckpt.JobRecord
	for i := range m.Jobs {
		if m.Jobs[i].ID == "sim" {
			jr = &m.Jobs[i]
		}
	}
	if jr == nil {
		t.Fatal("sim missing from manifest")
	}
	if jr.CurJX != 3 || jr.CurJY != 2 || jr.CurJZ != 0 {
		t.Errorf("checkpointed lattice %dx%dx%d, want 3x2", jr.CurJX, jr.CurJY, jr.CurJZ)
	}
	if jr.GridX != 24 || jr.GridY != 24 {
		t.Errorf("checkpointed grid %dx%d, want 24x24", jr.GridX, jr.GridY)
	}
	if jr.Resizes != 1 || jr.GrowRanks != 2 {
		t.Errorf("checkpointed resizes=%d grow=%d, want 1/2", jr.Resizes, jr.GrowRanks)
	}
	if len(jr.Hosts) != 6 || len(jr.StateSteps) != 6 {
		t.Errorf("checkpointed %d hosts / %d states, want 6/6", len(jr.Hosts), len(jr.StateSteps))
	}

	// Restore with a factory that honors the effective spec: the lattice
	// it receives is the current 3x2, not the submitted 2x2.
	pool2 := cluster.NewPaperCluster()
	var progs2 *core.JobPrograms2D
	reg := WorkloadRegistry{
		"sim": func(spec JobSpec) (Workload, error) {
			if spec.JX != 3 || spec.JY != 2 {
				t.Errorf("factory got lattice %dx%d, want the effective 3x2", spec.JX, spec.JY)
			}
			if gx, gy, _ := spec.Grid(); gx != 24 || gy != 24 {
				t.Errorf("factory got grid %dx%d, want 24x24", gx, gy)
			}
			job2, p2 := newSimJob(t, resizeCfg(t, spec.JX, spec.JY), spec.Steps)
			progs2 = p2
			return &CoreWorkload{Job: job2, Cluster: pool2}, nil
		},
	}
	s2, err := Restore(dir, pool2, reg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Timer = fixedTimer
	s2.ScenarioEvery = 5 * time.Second
	s2.Scenario = func(time.Duration, *cluster.Cluster) {}
	s2.AutoscaleEvery = 5 * time.Second
	s2.Autoscale = growAt5
	got, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored run's summary differs:\nwant %v\ngot  %v", want, got)
	}
	j := jobByID(t, got, "sim")
	if j.Resizes != 1 || j.GrowRanks != 2 || j.Ranks != 6 {
		t.Errorf("restored job resizes=%d grow=%d ranks=%d, want 1/2/6",
			j.Resizes, j.GrowRanks, j.Ranks)
	}
	if progs2 == nil {
		t.Fatal("workload registry never invoked")
	}
	final := progs2.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != final.Rho[i] || ref.Vx[i] != final.Vx[i] || ref.Vy[i] != final.Vy[i] {
			t.Fatalf("restored resized simulation differs from reference at node %d", i)
		}
	}
}

// TestChooseLattice pins the deterministic factorization: near-square
// (near-cubic) lattices, the longer factor along the longer grid axis,
// and a typed failure when nothing fits.
func TestChooseLattice(t *testing.T) {
	spec2D := func(gx, gy int) JobSpec {
		return JobSpec{Method: "lb2d", JX: 1, JY: 1, Side: 1, GX: gx, GY: gy}
	}
	spec3D := func(gx, gy, gz int) JobSpec {
		return JobSpec{Method: "lb3d", JX: 1, JY: 1, JZ: 1, Side: 1, GX: gx, GY: gy, GZ: gz}
	}
	cases := []struct {
		name       string
		n          int
		spec       JobSpec
		jx, jy, jz int
	}{
		{"square grid", 6, spec2D(24, 24), 3, 2, 0},
		{"tall grid", 6, spec2D(8, 24), 2, 3, 0},
		{"strip", 5, spec2D(24, 4), 5, 1, 0},
		{"swap to fit", 6, spec2D(2, 24), 2, 3, 0},
		{"cube", 27, spec3D(3, 3, 3), 3, 3, 3},
		{"box", 12, spec3D(8, 8, 2), 3, 2, 2},
		{"flat 3d", 12, spec3D(8, 8, 1), 4, 3, 1},
	}
	for _, tc := range cases {
		jx, jy, jz, err := chooseLattice(tc.n, tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if jx != tc.jx || jy != tc.jy || jz != tc.jz {
			t.Errorf("%s: chooseLattice(%d) = %dx%dx%d, want %dx%dx%d",
				tc.name, tc.n, jx, jy, jz, tc.jx, tc.jy, tc.jz)
		}
	}
	if _, _, _, err := chooseLattice(7, spec2D(4, 4)); err == nil {
		t.Error("7 ranks on a 4x4 grid: no lattice fits, want an error")
	}
	if _, _, _, err := chooseLattice(11, spec3D(4, 4, 4)); err == nil {
		t.Error("11 ranks on a 4x4x4 grid: no lattice fits, want an error")
	}
}

// TestJobSpecGrid covers the grid pinning introduced for malleability:
// derivation from the lattice when unset, the pinned values when set,
// and the validation failures for malformed grids.
func TestJobSpecGrid(t *testing.T) {
	derived := JobSpec{ID: "d", Method: "lb2d", JX: 3, JY: 2, Side: 10, Steps: 1}
	if gx, gy, gz := derived.Grid(); gx != 30 || gy != 20 || gz != 0 {
		t.Errorf("derived grid %dx%dx%d, want 30x20x0", gx, gy, gz)
	}
	pinned := JobSpec{ID: "p", Method: "lb3d", JX: 2, JY: 2, JZ: 2, Side: 8,
		GX: 40, GY: 48, Steps: 1}
	if gx, gy, gz := pinned.Grid(); gx != 40 || gy != 48 || gz != 16 {
		t.Errorf("pinned grid %dx%dx%d, want 40x48x16 (GZ derived)", gx, gy, gz)
	}
	if err := pinned.Validate(); err != nil {
		t.Errorf("pinned spec rejected: %v", err)
	}

	bad := []JobSpec{
		{ID: "neg", Method: "lb2d", JX: 1, JY: 1, Side: 4, GX: -1, Steps: 1},
		{ID: "gz2d", Method: "lb2d", JX: 1, JY: 1, Side: 4, GZ: 8, Steps: 1},
		{ID: "thin", Method: "lb2d", JX: 4, JY: 1, Side: 4, GX: 2, Steps: 1},
	}
	for _, spec := range bad {
		if err := spec.Validate(); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidSpec", spec.ID, err)
		}
	}
}

// TestSampleUtilization pins the control-loop arithmetic on a handmade
// sample (no farm involved).
func TestSampleUtilization(t *testing.T) {
	s := Sample{TotalHosts: 25, Running: []JobSample{{Ranks: 20}, {Ranks: 2}}}
	if u := s.Utilization(); u != 22.0/25.0 {
		t.Errorf("utilization = %v, want 22/25", u)
	}
	if u := (Sample{}).Utilization(); u != 0 {
		t.Errorf("empty sample utilization = %v, want 0", u)
	}
}
