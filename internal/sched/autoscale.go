package sched

import "time"

// AutoscaleControl is the deterministic handle the Autoscale hook
// receives each tick: it samples the farm's supply/demand state and
// actuates resize decisions, all synchronously on the scheduling
// goroutine at one virtual instant — the control loop in farm/autoscale
// is pure policy over this interface. The handle is only valid inside
// the hook invocation that received it.
type AutoscaleControl struct {
	s *Scheduler
	t time.Duration
}

// Now returns the virtual time of this control tick.
func (c AutoscaleControl) Now() time.Duration { return c.t }

// Sample captures the farm's state at this tick: queue depth, free and
// total hosts, and one JobSample per running and queued job, with
// progress extrapolated to the tick's instant.
func (c AutoscaleControl) Sample() Sample {
	s := c.s
	sm := Sample{
		T:          c.t,
		QueueDepth: len(s.queue),
		FreeHosts:  s.Cluster.Capacity(s.Select),
		TotalHosts: len(s.Cluster.Hosts),
	}
	for _, js := range s.running {
		sm.Running = append(sm.Running, jobSample(js, c.t, true))
	}
	for _, js := range s.queue {
		sm.Queued = append(sm.Queued, jobSample(js, c.t, false))
	}
	return sm
}

// Resize resizes the running job to n ranks, synchronously: the
// workload has re-split and the job is repriced when it returns nil.
// Errors are the typed resize errors (ErrUnknownJob, ErrNotRunning,
// ErrNoCapacity, or the workload's refusal) and leave the job running
// on its old decomposition.
func (c AutoscaleControl) Resize(id string, n int) error {
	return c.s.resizeByID(id, n, c.t)
}

// Decide records a policy decision on the event stream without acting
// on it, so hold decisions and the reasons behind grows/shrinks show up
// in traces. The policy calls it before (or instead of) Resize.
func (c AutoscaleControl) Decide(id, action string, from, to int, reason string) {
	c.s.emit(AutoscaleDecision{T: c.t, ID: id, Action: action, From: from, To: to, Reason: reason})
}

// Sample is one control tick's view of the farm.
type Sample struct {
	T time.Duration
	// QueueDepth counts the admitted jobs waiting for placement.
	QueueDepth int
	// FreeHosts is how many hosts a reservation could claim right now
	// (the section-4.1 selection criteria applied); TotalHosts the pool
	// size.
	FreeHosts  int
	TotalHosts int
	Running    []JobSample
	Queued     []JobSample
}

// Utilization is the fraction of the pool serving ranks at this tick.
func (s Sample) Utilization() float64 {
	if s.TotalHosts == 0 {
		return 0
	}
	busy := 0
	for _, j := range s.Running {
		busy += j.Ranks
	}
	return float64(busy) / float64(s.TotalHosts)
}

// JobSample is one job's state inside a Sample.
type JobSample struct {
	ID string
	// Ranks is the current rank count (after resizes); SpecRanks the
	// submitted one — the policy's shrink-back target.
	Ranks     int
	SpecRanks int
	// Steps is the job's total integration steps; Remaining how many are
	// left at this tick (fractional; extrapolated at the current pace
	// for a running job), and Progress the completed fraction in [0,1].
	Steps     int
	Remaining float64
	Progress  float64
	// StepSec is the priced per-step estimate (0 until first placement).
	StepSec float64
	Running bool
}

// jobSample extrapolates a job's progress to the tick's instant.
func jobSample(js *jobState, t time.Duration, running bool) JobSample {
	rem := js.remaining
	if running && js.stepSec > 0 {
		rem -= (t - js.placedAt).Seconds() / js.stepSec
		if rem < 0 {
			rem = 0
		}
	}
	p := 0.0
	if js.spec.Steps > 0 {
		p = 1 - rem/float64(js.spec.Steps)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
	}
	return JobSample{
		ID:        js.spec.ID,
		Ranks:     js.ranks(),
		SpecRanks: js.spec.Ranks(),
		Steps:     js.spec.Steps,
		Remaining: rem,
		Progress:  p,
		StepSec:   js.stepSec,
		Running:   running,
	}
}
