package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// TestSummaryMarshalJSON pins the wire schema byte-for-byte: field
// names, ordering and second-valued durations. Sweep outputs and any
// downstream tooling parse this form; changing it is a schema break and
// must be deliberate. (The resizes/grow_ranks/shrink_ranks fields were
// one such deliberate extension, when jobs became malleable.)
func TestSummaryMarshalJSON(t *testing.T) {
	s := Summary{
		Jobs: []Job{{
			ID: "duct-wide", Ranks: 20, Priority: 1,
			Submit: 30 * time.Second, FirstStart: 90 * time.Second,
			Done: 10 * time.Minute, Served: 8 * time.Minute,
			Preemptions: 1, Backfilled: true, Migrations: 2, Repricings: 2,
			Resizes: 2, GrowRanks: 8, ShrinkRanks: 4,
			Weighted: true, Imbalance: 1.25,
		}},
		Makespan: 10 * time.Minute, MeanWait: time.Minute, MaxWait: time.Minute,
		Utilization: 0.64, Preemptions: 1, Backfills: 1,
		Migrations: 2, Repricings: 2, Resizes: 2, GrowRanks: 8, ShrinkRanks: 4,
		Reclaims: 3, MeanImbalance: 1.25, MaxImbalance: 1.25, Weighted: 1,
		EASYDegraded: 0,
	}
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"jobs":[{"id":"duct-wide","ranks":20,"priority":1,"submit_s":30,` +
		`"wait_s":60,"done_s":600,"served_s":480,"preemptions":1,"backfilled":true,` +
		`"migrations":2,"repricings":2,"resizes":2,"grow_ranks":8,"shrink_ranks":4,` +
		`"weighted":true,"imbalance":1.25}],` +
		`"makespan_s":600,"mean_wait_s":60,"max_wait_s":60,"utilization":0.64,` +
		`"preemptions":1,"backfills":1,"migrations":2,"repricings":2,` +
		`"resizes":2,"grow_ranks":8,"shrink_ranks":4,"reclaims":3,` +
		`"mean_imbalance":1.25,"max_imbalance":1.25,"weighted":1,"easy_degraded":0}`
	if string(got) != want {
		t.Errorf("schema drifted:\n got %s\nwant %s", got, want)
	}

	// The empty summary stays well-formed: an empty jobs array, not null.
	got, err = json.Marshal(Summary{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"jobs":[],"makespan_s":0,"mean_wait_s":0,"max_wait_s":0,`+
		`"utilization":0,"preemptions":0,"backfills":0,"migrations":0,"repricings":0,`+
		`"resizes":0,"grow_ranks":0,"shrink_ranks":0,`+
		`"reclaims":0,"mean_imbalance":0,"max_imbalance":0,"weighted":0,"easy_degraded":0}` {
		t.Errorf("empty summary: %s", got)
	}
}
