package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	jobs := []Job{
		{ID: "b", Ranks: 10, Submit: 0, FirstStart: 0, Done: 100 * time.Second,
			Served: 100 * time.Second, Weighted: true, Imbalance: 1.05},
		{ID: "a", Ranks: 5, Submit: 0, FirstStart: 40 * time.Second, Done: 140 * time.Second,
			Served: 100 * time.Second, Preemptions: 2, Imbalance: 1.19},
		{ID: "c", Ranks: 1, Submit: 20 * time.Second, FirstStart: 60 * time.Second,
			Done: 200 * time.Second, Served: 140 * time.Second, Backfilled: true, Imbalance: 1.0},
	}
	s := Summarize(jobs, 20)

	if got := []string{s.Jobs[0].ID, s.Jobs[1].ID, s.Jobs[2].ID}; got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("jobs not sorted by (submit, id): %v", got)
	}
	if s.Makespan != 200*time.Second {
		t.Errorf("makespan = %v, want 200s", s.Makespan)
	}
	// Waits: 40s, 0, 40s -> mean 26.666s, max 40s.
	if want := time.Duration(80*float64(time.Second)) / 3; s.MeanWait != want {
		t.Errorf("mean wait = %v, want %v", s.MeanWait, want)
	}
	if s.MaxWait != 40*time.Second {
		t.Errorf("max wait = %v, want 40s", s.MaxWait)
	}
	// Busy host-seconds: 10*100 + 5*100 + 1*140 = 1640 over 20*200.
	if want := 1640.0 / 4000.0; s.Utilization != want {
		t.Errorf("utilization = %v, want %v", s.Utilization, want)
	}
	if s.Preemptions != 2 || s.Backfills != 1 {
		t.Errorf("preemptions %d backfills %d, want 2 and 1", s.Preemptions, s.Backfills)
	}
	if s.Weighted != 1 {
		t.Errorf("weighted jobs = %d, want 1", s.Weighted)
	}
	if s.MaxImbalance != 1.19 {
		t.Errorf("max imbalance = %v, want 1.19", s.MaxImbalance)
	}
	if want := (1.05 + 1.19 + 1.0) / 3; s.MeanImbalance != want {
		t.Errorf("mean imbalance = %v, want %v", s.MeanImbalance, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 25)
	if s.Makespan != 0 || s.Utilization != 0 || len(s.Jobs) != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]Job{
		{ID: "j1", Ranks: 4, Priority: 9, Done: time.Minute, Served: time.Minute,
			Preemptions: 1, Backfilled: true},
	}, 25)
	out := s.String()
	for _, want := range []string{"j1", "makespan", "mean wait", "utilization", "preemptions", "backfills", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}
