// Package metrics is the reporting layer of the simulation farm: per-job
// records of when a job was submitted, first started, preempted and
// completed, and the aggregate figures a scheduling policy is judged by —
// mean and maximum queue wait, makespan, pool utilization, preemption and
// backfill counts. All times are virtual (the cluster's clock), relative
// to the farm's start, which is what makes trace replays deterministic.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Job is the lifecycle record of one completed job.
type Job struct {
	ID       string
	Ranks    int
	Priority int

	// Submit, FirstStart and Done are farm-relative virtual times.
	Submit, FirstStart, Done time.Duration
	// Served is the total virtual time the job held its hosts.
	Served time.Duration

	Preemptions int
	Backfilled  bool

	// Migrations counts ranks moved off reclaimed hosts mid-run, and
	// Repricings counts the step-time re-estimates those moves caused.
	Migrations int
	Repricings int

	// Resizes counts the job's completed mid-run re-decompositions;
	// GrowRanks and ShrinkRanks total the ranks they added and removed.
	// Ranks above is the job's final rank count after them.
	Resizes     int
	GrowRanks   int
	ShrinkRanks int

	// Weighted reports whether the job ran a speed-weighted decomposition
	// (spans sized by host speed) rather than the uniform split.
	Weighted bool
	// Imbalance is the job's load-imbalance ratio at its last pricing:
	// the slowest rank's compute time over the perfectly balanced ideal.
	// 1.0 is perfect balance; a uniform split on a mixed-model pool sits
	// strictly above it. Zero for jobs that never ran.
	Imbalance float64
}

// Wait is the queue wait: submission to first placement.
func (j Job) Wait() time.Duration { return j.FirstStart - j.Submit }

// Summary aggregates a finished farm run.
type Summary struct {
	Jobs []Job

	// Makespan spans the first submission to the last completion.
	Makespan time.Duration
	// MeanWait and MaxWait aggregate the per-job queue waits.
	MeanWait, MaxWait time.Duration
	// Utilization is busy host-time over hosts x makespan.
	Utilization float64

	Preemptions int
	Backfills   int

	// Migrations and Repricings aggregate the per-job mid-run
	// host-reclaim responses; Reclaims counts the user-return events the
	// farm observed (set by the scheduler, not derivable from jobs).
	Migrations int
	Repricings int
	Reclaims   int

	// Resizes, GrowRanks and ShrinkRanks aggregate the per-job malleable
	// re-decompositions (the autoscaler's actuations).
	Resizes     int
	GrowRanks   int
	ShrinkRanks int

	// MeanImbalance and MaxImbalance aggregate the per-job load-imbalance
	// ratios over the jobs that ran (1.0 is perfect balance); Weighted
	// counts the jobs placed with a speed-weighted decomposition.
	MeanImbalance float64
	MaxImbalance  float64
	Weighted      int

	// EASYDegraded counts the scheduling rounds whose EASY shadow was
	// incomputable, so backfill explicitly fell back to aggressive mode
	// (set by the scheduler, not derivable from jobs).
	EASYDegraded int
}

// Summarize computes the aggregate figures for a set of completed jobs on
// a pool of the given size. Jobs are reported sorted by (Submit, ID).
func Summarize(jobs []Job, hosts int) Summary {
	s := Summary{Jobs: append([]Job(nil), jobs...)}
	sort.SliceStable(s.Jobs, func(i, j int) bool {
		if s.Jobs[i].Submit != s.Jobs[j].Submit {
			return s.Jobs[i].Submit < s.Jobs[j].Submit
		}
		return s.Jobs[i].ID < s.Jobs[j].ID
	})
	if len(s.Jobs) == 0 {
		return s
	}
	minSubmit, maxDone := s.Jobs[0].Submit, time.Duration(0)
	var totalWait time.Duration
	busyHostSec := 0.0
	imbSum, imbJobs := 0.0, 0
	for _, j := range s.Jobs {
		if j.Submit < minSubmit {
			minSubmit = j.Submit
		}
		if j.Done > maxDone {
			maxDone = j.Done
		}
		w := j.Wait()
		totalWait += w
		if w > s.MaxWait {
			s.MaxWait = w
		}
		busyHostSec += j.Served.Seconds() * float64(j.Ranks)
		s.Preemptions += j.Preemptions
		if j.Backfilled {
			s.Backfills++
		}
		s.Migrations += j.Migrations
		s.Repricings += j.Repricings
		s.Resizes += j.Resizes
		s.GrowRanks += j.GrowRanks
		s.ShrinkRanks += j.ShrinkRanks
		if j.Weighted {
			s.Weighted++
		}
		if j.Imbalance > 0 {
			imbSum += j.Imbalance
			imbJobs++
			if j.Imbalance > s.MaxImbalance {
				s.MaxImbalance = j.Imbalance
			}
		}
	}
	s.Makespan = maxDone - minSubmit
	s.MeanWait = totalWait / time.Duration(len(s.Jobs))
	if imbJobs > 0 {
		s.MeanImbalance = imbSum / float64(imbJobs)
	}
	if hosts > 0 && s.Makespan > 0 {
		s.Utilization = busyHostSec / (float64(hosts) * s.Makespan.Seconds())
	}
	return s
}

// String renders the summary as a fixed-width table, one job per line
// plus the aggregate footer.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %5s %4s %12s %12s %12s %8s %5s %5s %5s %7s\n",
		"job", "ranks", "prio", "submit", "wait", "done", "preempt", "bfill", "migr", "wtd", "imbal")
	for _, j := range s.Jobs {
		bf, wt := "", ""
		if j.Backfilled {
			bf = "yes"
		}
		if j.Weighted {
			wt = "yes"
		}
		fmt.Fprintf(&b, "%-12s %5d %4d %12s %12s %12s %8d %5s %5d %5s %7.3f\n",
			j.ID, j.Ranks, j.Priority,
			fmtDur(j.Submit), fmtDur(j.Wait()), fmtDur(j.Done), j.Preemptions, bf, j.Migrations,
			wt, j.Imbalance)
	}
	fmt.Fprintf(&b, "makespan %s  mean wait %s  max wait %s  utilization %.3f  preemptions %d  backfills %d\n",
		fmtDur(s.Makespan), fmtDur(s.MeanWait), fmtDur(s.MaxWait),
		s.Utilization, s.Preemptions, s.Backfills)
	fmt.Fprintf(&b, "reclaims %d  migrations %d  repricings %d  resizes %d (+%d/-%d ranks)  weighted %d  imbalance mean %.3f max %.3f  easy-degraded %d\n",
		s.Reclaims, s.Migrations, s.Repricings,
		s.Resizes, s.GrowRanks, s.ShrinkRanks,
		s.Weighted, s.MeanImbalance, s.MaxImbalance, s.EASYDegraded)
	return b.String()
}

// fmtDur prints a duration rounded to the scale a farm operator reads.
func fmtDur(d time.Duration) string {
	return d.Round(100 * time.Millisecond).String()
}
