package metrics

import (
	"encoding/json"
	"time"
)

// The JSON schema of Job and Summary is part of the experiments'
// machine-readable output (`cmd/experiments -exp=sweep` emits tables of
// it), so it is pinned here explicitly rather than derived from the Go
// structs: fields can be added to the structs freely, but the emitted
// names and units below only change with a schema version bump in the
// emitting tool. Durations serialize as float seconds (the unit every
// figure of the paper uses), not Go's nanosecond ints.

// jobJSON is Job's pinned wire form.
type jobJSON struct {
	ID          string  `json:"id"`
	Ranks       int     `json:"ranks"`
	Priority    int     `json:"priority"`
	SubmitSec   float64 `json:"submit_s"`
	WaitSec     float64 `json:"wait_s"`
	DoneSec     float64 `json:"done_s"`
	ServedSec   float64 `json:"served_s"`
	Preemptions int     `json:"preemptions"`
	Backfilled  bool    `json:"backfilled"`
	Migrations  int     `json:"migrations"`
	Repricings  int     `json:"repricings"`
	Resizes     int     `json:"resizes"`
	GrowRanks   int     `json:"grow_ranks"`
	ShrinkRanks int     `json:"shrink_ranks"`
	Weighted    bool    `json:"weighted"`
	Imbalance   float64 `json:"imbalance"`
}

// summaryJSON is Summary's pinned wire form.
type summaryJSON struct {
	Jobs          []jobJSON `json:"jobs"`
	MakespanSec   float64   `json:"makespan_s"`
	MeanWaitSec   float64   `json:"mean_wait_s"`
	MaxWaitSec    float64   `json:"max_wait_s"`
	Utilization   float64   `json:"utilization"`
	Preemptions   int       `json:"preemptions"`
	Backfills     int       `json:"backfills"`
	Migrations    int       `json:"migrations"`
	Repricings    int       `json:"repricings"`
	Resizes       int       `json:"resizes"`
	GrowRanks     int       `json:"grow_ranks"`
	ShrinkRanks   int       `json:"shrink_ranks"`
	Reclaims      int       `json:"reclaims"`
	MeanImbalance float64   `json:"mean_imbalance"`
	MaxImbalance  float64   `json:"max_imbalance"`
	Weighted      int       `json:"weighted"`
	EASYDegraded  int       `json:"easy_degraded"`
}

func sec(d time.Duration) float64 { return d.Seconds() }

// MarshalJSON renders the summary in its pinned wire form.
func (s Summary) MarshalJSON() ([]byte, error) {
	jobs := make([]jobJSON, len(s.Jobs))
	for i, j := range s.Jobs {
		jobs[i] = jobJSON{
			ID:          j.ID,
			Ranks:       j.Ranks,
			Priority:    j.Priority,
			SubmitSec:   sec(j.Submit),
			WaitSec:     sec(j.Wait()),
			DoneSec:     sec(j.Done),
			ServedSec:   sec(j.Served),
			Preemptions: j.Preemptions,
			Backfilled:  j.Backfilled,
			Migrations:  j.Migrations,
			Repricings:  j.Repricings,
			Resizes:     j.Resizes,
			GrowRanks:   j.GrowRanks,
			ShrinkRanks: j.ShrinkRanks,
			Weighted:    j.Weighted,
			Imbalance:   j.Imbalance,
		}
	}
	return json.Marshal(summaryJSON{
		Jobs:          jobs,
		MakespanSec:   sec(s.Makespan),
		MeanWaitSec:   sec(s.MeanWait),
		MaxWaitSec:    sec(s.MaxWait),
		Utilization:   s.Utilization,
		Preemptions:   s.Preemptions,
		Backfills:     s.Backfills,
		Migrations:    s.Migrations,
		Repricings:    s.Repricings,
		Resizes:       s.Resizes,
		GrowRanks:     s.GrowRanks,
		ShrinkRanks:   s.ShrinkRanks,
		Reclaims:      s.Reclaims,
		MeanImbalance: s.MeanImbalance,
		MaxImbalance:  s.MaxImbalance,
		Weighted:      s.Weighted,
		EASYDegraded:  s.EASYDegraded,
	})
}
