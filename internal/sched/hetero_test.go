package sched

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/sched/metrics"
)

// mixedPool builds an idle pool with one host per model given, in order.
func mixedPool(models ...cluster.Model) *cluster.Cluster {
	c := &cluster.Cluster{}
	for i, m := range models {
		c.Hosts = append(c.Hosts, cluster.NewHost(fmt.Sprintf("mixed-%02d", i), m))
	}
	c.Advance(30 * time.Minute)
	return c
}

// uniformTimer prices every placement with the uniform (identical-spans)
// decomposition regardless of the job's chosen shape — the pre-weighting
// behaviour, kept for comparisons.
func uniformTimer(spec JobSpec, _ decomp.Shape, hosts []*cluster.Host) (float64, error) {
	return ComputeTimer(spec, decomp.Shape{}, hosts)
}

// TestWeightedBeatsUniformOnMixedPool is the tentpole acceptance check:
// on a mixed-model placement the speed-weighted shape prices a step
// strictly below the uniform split, and its load-imbalance ratio drops
// toward 1; with equal speeds the weighted shape is the uniform shape.
func TestWeightedBeatsUniformOnMixedPool(t *testing.T) {
	spec := JobSpec{ID: "w", Method: "lb2d", JX: 4, JY: 1, Side: 40, Steps: 1}
	hosts := []*cluster.Host{
		cluster.NewHost("a", cluster.HP715),
		cluster.NewHost("b", cluster.HP715),
		cluster.NewHost("c", cluster.HP720),
		cluster.NewHost("d", cluster.HP710),
	}
	w, err := WeightedShape(spec, hosts)
	if err != nil {
		t.Fatal(err)
	}
	uniSec, err := ComputeTimer(spec, decomp.Shape{}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	wSec, err := ComputeTimer(spec, w, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if !(wSec < uniSec) {
		t.Errorf("weighted step %v not strictly below uniform %v", wSec, uniSec)
	}
	uniImb, err := Imbalance(spec, decomp.Shape{}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	wImb, err := Imbalance(spec, w, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if !(uniImb > 1.1) {
		t.Errorf("uniform imbalance %v suspiciously low for a 715/710 mix", uniImb)
	}
	if !(wImb < uniImb) {
		t.Errorf("weighted imbalance %v not below uniform %v", wImb, uniImb)
	}
	if wImb < 1-1e-9 {
		t.Errorf("imbalance %v below 1 (faster than perfectly balanced)", wImb)
	}

	// 3D: a (2 x 1 x 1) box chain across a 715/710 pair.
	spec3 := JobSpec{ID: "w3", Method: "lb3d", JX: 2, JY: 1, JZ: 1, Side: 16, Steps: 1}
	hosts3 := []*cluster.Host{hosts[0], hosts[3]}
	w3, err := WeightedShape(spec3, hosts3)
	if err != nil {
		t.Fatal(err)
	}
	uni3, err := ComputeTimer(spec3, decomp.Shape{}, hosts3)
	if err != nil {
		t.Fatal(err)
	}
	wSec3, err := ComputeTimer(spec3, w3, hosts3)
	if err != nil {
		t.Fatal(err)
	}
	if !(wSec3 < uni3) {
		t.Errorf("3D weighted step %v not strictly below uniform %v", wSec3, uni3)
	}

	// Equal speeds: the weighted shape degenerates to the uniform one.
	same := []*cluster.Host{
		cluster.NewHost("e", cluster.HP715), cluster.NewHost("f", cluster.HP715),
		cluster.NewHost("g", cluster.HP715), cluster.NewHost("h", cluster.HP715),
	}
	eq, err := WeightedShape(spec, same)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Equal(UniformShape(spec)) {
		t.Errorf("equal-speed weighted shape %v differs from uniform %v", eq, UniformShape(spec))
	}
	s := New(idlePool(), FIFO, 1)
	if sh, _, err := s.chooseShape(spec, same); err != nil || !sh.IsZero() {
		t.Errorf("chooseShape on equal speeds = %v, %v, want zero (uniform)", sh, err)
	}
	sh, sec, err := s.chooseShape(spec, hosts)
	if err != nil || sh.IsZero() {
		t.Errorf("chooseShape on the mixed pool stayed uniform (%v)", err)
	}
	// The returned price is the winning shape's own pricing, which
	// tryPlace reuses instead of re-running the timer.
	if want, err := s.Timer(spec, sh, hosts); err != nil || sec != want {
		t.Errorf("chooseShape price %v, want the shape's own pricing %v (%v)", sec, want, err)
	}
}

// TestFarmRunsWeightedOnMixedPool: a chain job reserving a mixed-model
// pool gets a speed-weighted shape from the scheduler, finishes sooner
// than the same trace priced uniform, and reports its imbalance through
// the metrics plane.
func TestFarmRunsWeightedOnMixedPool(t *testing.T) {
	specs := []JobSpec{{ID: "chain", Method: "lb2d", JX: 4, JY: 1, Side: 40, Steps: 2000}}
	pool := func() *cluster.Cluster {
		return mixedPool(cluster.HP715, cluster.HP715, cluster.HP720, cluster.HP710)
	}

	weighted, err := Replay(pool(), FIFO, 1, nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Replay(pool(), FIFO, 1, uniformTimer, specs)
	if err != nil {
		t.Fatal(err)
	}
	wj, uj := jobByID(t, weighted, "chain"), jobByID(t, uniform, "chain")
	if !wj.Weighted {
		t.Error("mixed-pool chain job not placed with a weighted shape")
	}
	if weighted.Weighted != 1 {
		t.Errorf("summary counts %d weighted jobs, want 1", weighted.Weighted)
	}
	if uj.Weighted || uniform.Weighted != 0 {
		t.Error("uniform-priced baseline chose a weighted shape (chooseShape must follow the farm's Timer)")
	}
	if !(wj.Done < uj.Done) {
		t.Errorf("weighted completion %v not before uniform %v", wj.Done, uj.Done)
	}
	if !(wj.Imbalance < uj.Imbalance) {
		t.Errorf("weighted imbalance %v not below the uniform split's %v", wj.Imbalance, uj.Imbalance)
	}
	if weighted.MaxImbalance != wj.Imbalance {
		t.Errorf("summary max imbalance %v != job's %v", weighted.MaxImbalance, wj.Imbalance)
	}
}

// TestEqualSpeedPoolBitIdenticalToUniform: on a homogeneous pool the
// weighted machinery must change nothing — the full farm trace (every
// job field and aggregate) is bit-identical to one priced with the
// uniform splitter, and no job is marked weighted.
func TestEqualSpeedPoolBitIdenticalToUniform(t *testing.T) {
	pool := func() *cluster.Cluster {
		c := &cluster.Cluster{}
		for i := 0; i < 25; i++ {
			c.Hosts = append(c.Hosts, cluster.NewHost(fmt.Sprintf("hp715-%02d", i), cluster.HP715))
		}
		c.Advance(30 * time.Minute)
		return c
	}
	got, err := Replay(pool(), FIFO, 42, nil, farmMix())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Replay(pool(), FIFO, 42, uniformTimer, farmMix())
	if err != nil {
		t.Fatal(err)
	}
	if got.Weighted != 0 {
		t.Errorf("%d jobs weighted on an equal-speed pool, want 0", got.Weighted)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("equal-speed farm diverged from uniform pricing:\nweighted: %v\nuniform:  %v", got, want)
	}
}

// weightedSimConfig is a real 2D LB channel decomposed with the
// speed-weighted splitter (a 715/710 pair, spans 2:1.68), the workload
// for the weighted checkpoint round trip.
func weightedSimConfig(t *testing.T) *core.Config2D {
	t.Helper()
	d, err := decomp.New2DWeighted(2, 1, 24, 16, decomp.Full, []float64{1.0, 0.84})
	if err != nil {
		t.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0.01
	par.ForceX = 1e-5
	return &core.Config2D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask2D(24, 16),
		D:      d,
	}
}

// TestWeightedJobCheckpointRestoreRoundTrip: a real simulation on a
// weighted decomposition runs under the farm on a mixed 715/710 pool,
// is checkpointed mid-run (through the snapshot path, still placed),
// killed, and restored. The manifest must record the job's weighted
// spans, the restored farm must finish with a summary bit-identical to
// an uninterrupted run, and the simulation's final fields must match
// the sequential reference on the same weighted decomposition.
func TestWeightedJobCheckpointRestoreRoundTrip(t *testing.T) {
	const steps = 40
	spec := JobSpec{ID: "wsim", Method: "lb2d", JX: 2, JY: 1, Side: 1000, Steps: steps}
	ref, _, err := core.RunSequential2D(weightedSimConfig(t), steps)
	if err != nil {
		t.Fatal(err)
	}

	pool := func() *cluster.Cluster { return mixedPool(cluster.HP715, cluster.HP710) }

	// Uninterrupted reference farm on the same scenario grid.
	runRef := func() metrics.Summary {
		t.Helper()
		s := New(pool(), FIFO, 9)
		s.ScenarioEvery = time.Minute
		s.Scenario = func(time.Duration, *cluster.Cluster) {}
		if err := s.Submit(spec, nil); err != nil {
			t.Fatal(err)
		}
		s.Close()
		sum, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	want := runRef()
	if j := jobByID(t, want, "wsim"); !j.Weighted || !(j.Imbalance < 1.02) {
		t.Fatalf("mixed-pool sim not weighted-balanced: weighted %v imbalance %v", j.Weighted, j.Imbalance)
	}

	// The doomed coordinator, with the real weighted simulation attached.
	dir := t.TempDir()
	pool1 := pool()
	s1 := New(pool1, FIFO, 9)
	job1, _ := newSimJob(t, weightedSimConfig(t), steps)
	crashed := false
	s1.ScenarioEvery = time.Minute
	s1.Scenario = func(vt time.Duration, _ *cluster.Cluster) {
		if vt < 5*time.Minute || crashed {
			return
		}
		crashed = true
		if err := s1.Checkpoint(dir); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		s1.Interrupt()
	}
	if err := s1.Submit(spec, &CoreWorkload{Job: job1, Cluster: pool1}); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if _, err := s1.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("crashed run returned %v, want ErrInterrupted", err)
	}
	if !crashed {
		t.Fatal("scenario never checkpointed; the sim drained before 5 virtual minutes")
	}

	// The manifest records the weighted spans: the 715's column is
	// strictly wider, the spans sum to the virtual grid, and restoring
	// rebuilds exactly this shape.
	m, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var jr ckpt.JobRecord
	for _, r := range m.Jobs {
		if r.ID == "wsim" {
			jr = r
		}
	}
	if jr.Phase != ckpt.PhaseRunning {
		t.Fatalf("wsim checkpointed as %q, want running", jr.Phase)
	}
	if len(jr.SpansX) != 2 || jr.SpansX[0] <= jr.SpansX[1] || jr.SpansX[0]+jr.SpansX[1] != 2000 {
		t.Errorf("manifest x spans %v, want two spans summing to 2000 with the 715's wider", jr.SpansX)
	}
	if jr.Imbalance <= 0 {
		t.Errorf("manifest imbalance %v, want > 0", jr.Imbalance)
	}

	// Restore with the weighted config rebuilt through the registry.
	pool2 := pool()
	var progs2 *core.JobPrograms2D
	reg := WorkloadRegistry{
		"wsim": func(sp JobSpec) (Workload, error) {
			job2, p2 := newSimJob(t, weightedSimConfig(t), sp.Steps)
			progs2 = p2
			return &CoreWorkload{Job: job2, Cluster: pool2}, nil
		},
	}
	s2, err := Restore(dir, pool2, reg)
	if err != nil {
		t.Fatal(err)
	}
	s2.ScenarioEvery = time.Minute
	s2.Scenario = func(time.Duration, *cluster.Cluster) {}
	got, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored weighted run differs from the uninterrupted one:\nwant %v\ngot  %v", want, got)
	}
	if progs2 == nil {
		t.Fatal("workload registry never invoked")
	}
	final := progs2.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != final.Rho[i] || ref.Vx[i] != final.Vx[i] || ref.Vy[i] != final.Vy[i] {
			t.Fatalf("restored weighted simulation differs from reference at node %d", i)
		}
	}
}

// TestManifestRejectsCorruptSpans: hand-mauled span records (wrong
// count, wrong sum) must fail manifest validation, never rebuild a job
// whose subregions disagree with its dumps.
func TestManifestRejectsCorruptSpans(t *testing.T) {
	base := ckpt.JobRecord{
		ID: "x", Method: "lb2d", JX: 2, JY: 1, Side: 10, Steps: 5,
		Phase: ckpt.PhaseQueued, Remaining: 5,
	}
	mk := func(mut func(*ckpt.JobRecord)) *ckpt.Manifest {
		jr := base
		mut(&jr)
		return &ckpt.Manifest{Version: ckpt.Version, Jobs: []ckpt.JobRecord{jr}}
	}
	if err := mk(func(jr *ckpt.JobRecord) { jr.SpansX = []int{12, 8}; jr.SpansY = []int{10} }).Validate(); err != nil {
		t.Errorf("valid spans rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*ckpt.JobRecord)
	}{
		{"wrong span count", func(jr *ckpt.JobRecord) { jr.SpansX = []int{20}; jr.SpansY = []int{10} }},
		{"wrong span sum", func(jr *ckpt.JobRecord) { jr.SpansX = []int{12, 9}; jr.SpansY = []int{10} }},
		{"zero span", func(jr *ckpt.JobRecord) { jr.SpansX = []int{20, 0}; jr.SpansY = []int{10} }},
		{"z spans on 2D", func(jr *ckpt.JobRecord) {
			jr.SpansX = []int{12, 8}
			jr.SpansY = []int{10}
			jr.SpansZ = []int{10}
		}},
		{"missing y spans", func(jr *ckpt.JobRecord) { jr.SpansX = []int{12, 8} }},
	}
	for _, tc := range bad {
		if err := mk(tc.mut).Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
