package sched

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/sched/metrics"
	"repro/internal/syncfile"
)

// TestReclaimMigratesBitIdentical is the online farm's acceptance
// scenario: a real 2D LB simulation runs on four hosts, a regular user
// reclaims one of them mid-run, and the farm migrates the displaced rank
// to a fresh host within the next scheduling round — repricing the job —
// while the finished solution stays bitwise identical to an undisturbed
// run (the suspend_test.go identity-check pattern, applied to the
// farm-driven partial migration).
func TestReclaimMigratesBitIdentical(t *testing.T) {
	const steps = 40
	mkCfg := func() *core.Config2D {
		d, err := decomp.New2D(2, 2, 24, 16, decomp.Full)
		if err != nil {
			t.Fatal(err)
		}
		d.PeriodicX = true
		par := fluid.DefaultParams()
		par.Nu = 0.1
		par.Eps = 0.01
		par.ForceX = 1e-5
		return &core.Config2D{
			Method: core.MethodLB,
			Par:    par,
			Mask:   fluid.ChannelMask2D(24, 16),
			D:      d,
		}
	}
	ref, _, err := core.RunSequential2D(mkCfg(), steps)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := syncfile.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sf.Poll = time.Millisecond
	job, progs, err := core.NewJob2D(mkCfg(), core.HubFactory(), sf, steps)
	if err != nil {
		t.Fatal(err)
	}

	pool := idlePool()
	s := New(pool, FIFO, 42)
	// Side inflates the virtual workload so the reclaim lands mid-run on
	// the scheduler's clock.
	err = s.Submit(JobSpec{
		ID: "sim", Method: "lb2d", JX: 2, JY: 2, Side: 1000, Steps: steps,
	}, &CoreWorkload{Job: job, Cluster: pool})
	if err != nil {
		t.Fatal(err)
	}
	// Five virtual minutes in, a user sits down at one of the sim's
	// workstations.
	reclaimed := false
	s.ScenarioEvery = time.Minute
	s.Scenario = func(vt time.Duration, c *cluster.Cluster) {
		if vt < 5*time.Minute || reclaimed {
			return
		}
		for _, h := range c.Hosts {
			if h.Owner() == "sim" {
				c.Reclaim(h)
				reclaimed = true
				return
			}
		}
	}
	s.Close()
	sum, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reclaimed {
		t.Fatal("scenario never fired; the sim finished before 5 virtual minutes")
	}
	if sum.Reclaims != 1 {
		t.Errorf("reclaims = %d, want 1", sum.Reclaims)
	}
	sim := jobByID(t, sum, "sim")
	if sim.Migrations != 1 {
		t.Errorf("sim migrations = %d, want 1 (one displaced rank)", sim.Migrations)
	}
	if sim.Repricings != 1 {
		t.Errorf("sim repricings = %d, want 1", sim.Repricings)
	}
	if sim.Preemptions != 0 {
		t.Errorf("sim preemptions = %d, want 0 (migration, not suspension)", sim.Preemptions)
	}
	if job.Migrations != 1 {
		t.Errorf("core job recorded %d migrations, want 1", job.Migrations)
	}
	// The user's machine must be free of the farm.
	for _, h := range pool.Hosts {
		if h.Reclaimed() && h.Assigned() >= 0 {
			t.Errorf("farm still squats on reclaimed host %s", h.Name)
		}
	}

	got := progs.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Vx[i] != got.Vx[i] || ref.Vy[i] != got.Vy[i] {
			t.Fatalf("migrated simulation differs from reference at node %d", i)
		}
	}
}

// TestReclaimFallsBackToSuspend: when no replacement host is reservable
// the farm must not squat beside the returned user — the whole job
// checkpoints off the pool and requeues until capacity returns.
func TestReclaimFallsBackToSuspend(t *testing.T) {
	pool := idlePool()
	s := New(pool, FIFO, 7)
	// The victim holds 4 hosts, the filler the other 21: zero spare.
	err := s.Submit(JobSpec{
		ID: "victim", Method: "lb2d", JX: 2, JY: 2, Side: 200, Steps: 2000,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Submit(JobSpec{
		ID: "filler", Method: "lb2d", JX: 7, JY: 3, Side: 200, Steps: 1000,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reclaimed := false
	s.ScenarioEvery = time.Minute
	s.Scenario = func(vt time.Duration, c *cluster.Cluster) {
		if vt < 2*time.Minute || reclaimed {
			return
		}
		for _, h := range c.Hosts {
			if h.Owner() == "victim" {
				c.Reclaim(h)
				reclaimed = true
				return
			}
		}
	}
	s.Close()
	sum, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reclaimed {
		t.Fatal("scenario never fired")
	}
	victim := jobByID(t, sum, "victim")
	if victim.Preemptions != 1 {
		t.Errorf("victim preemptions = %d, want 1 (suspension fallback)", victim.Preemptions)
	}
	if victim.Migrations != 0 {
		t.Errorf("victim migrations = %d, want 0 (no replacement capacity)", victim.Migrations)
	}
	if len(sum.Jobs) != 2 {
		t.Errorf("%d jobs finished, want 2", len(sum.Jobs))
	}
}

// TestSubmitDuringRun: the farm accepts and schedules work submitted
// after Run started, idles while empty, and drains cleanly on Close.
func TestSubmitDuringRun(t *testing.T) {
	s := New(idlePool(), FIFO, 7)
	type result struct {
		sum metrics.Summary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := s.Run()
		done <- result{sum, err}
	}()

	if err := s.Submit(JobSpec{
		ID: "live-a", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 100,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{
		ID: "live-b", Method: "fd2d", JX: 1, JY: 1, Side: 40, Steps: 100,
		Submit: 30 * time.Second,
	}, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if err := s.Submit(JobSpec{
		ID: "late", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1,
	}, nil); err == nil {
		t.Error("Submit accepted after Close")
	}

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.sum.Jobs) != 2 {
			t.Fatalf("%d jobs finished, want 2", len(r.sum.Jobs))
		}
		for _, j := range r.sum.Jobs {
			if j.Wait() < 0 {
				t.Errorf("job %s has negative queue wait %v", j.ID, j.Wait())
			}
			if j.Done <= j.FirstStart {
				t.Errorf("job %s done %v <= start %v", j.ID, j.Done, j.FirstStart)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Close")
	}
}

// TestEASYBoundsHeadWait: a steady stream of 12-rank jobs starves a
// 25-rank head under aggressive backfill, while EASY's virtual-finish
// reservation starts the head as soon as the first small job completes.
func TestEASYBoundsHeadWait(t *testing.T) {
	specs := []JobSpec{
		{ID: "head-wide", Method: "lb2d", JX: 5, JY: 5, Side: 40, Steps: 3000,
			Submit: time.Minute},
	}
	for k := 0; k < 8; k++ {
		specs = append(specs, JobSpec{
			ID: string(rune('a'+k)) + "-small", Method: "lb2d", JX: 4, JY: 3,
			Side: 40, Steps: 15000, Submit: time.Duration(k) * 5 * time.Minute,
		})
	}
	run := func(mode BackfillMode) metrics.Summary {
		t.Helper()
		s := New(idlePool(), FIFO, 3)
		s.Backfill = mode
		for _, sp := range specs {
			if err := s.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		sum, err := s.Run()
		if err != nil {
			t.Fatalf("backfill %v: %v", mode, err)
		}
		if len(sum.Jobs) != len(specs) {
			t.Fatalf("backfill %v: %d jobs finished, want %d", mode, len(sum.Jobs), len(specs))
		}
		return sum
	}

	easy := jobByID(t, run(BackfillEASY), "head-wide").Wait()
	agg := jobByID(t, run(BackfillAggressive), "head-wide").Wait()

	// EASY: the head starts when the first small job's hosts return,
	// i.e. within that job's ~11-13 virtual minutes.
	if easy > 15*time.Minute {
		t.Errorf("EASY head wait = %v, want under 15m (one small-job runtime)", easy)
	}
	// Aggressive: every later small job jumps the head; the stream holds
	// the pool until it dries up.
	if agg <= 2*easy {
		t.Errorf("aggressive head wait %v not much worse than EASY %v — starvation scenario broken", agg, easy)
	}
}
