package sched

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched/metrics"
)

// Event is one structured entry of the scheduler's decision stream. The
// event loop emits an Event at every decision point of a scheduling
// round — admission, placement, backfill, preemption, migration,
// completion, host reclaim, checkpoint commit, EASY degrade — through
// the Events hook, synchronously on the scheduling goroutine, so for a
// fixed seed the stream is deterministic: two runs of the same trace
// produce byte-identical event sequences, including across a
// checkpoint/restore boundary (a restored farm re-emits exactly the
// events the dead coordinator had not yet emitted, never the ones it
// had).
//
// All times are farm-relative virtual times (the same clock the metrics
// report), and String renders a stable single-line form — the trace
// tests compare those strings, and the Logf debug hook is a thin
// adapter over them.
type Event interface {
	// When returns the farm-relative virtual time of the decision.
	When() time.Duration
	fmt.Stringer
}

// JobQueued records a job's admission: its arrival time passed (or it
// was submitted live) and it now waits in the queue.
type JobQueued struct {
	T  time.Duration
	ID string
}

func (e JobQueued) When() time.Duration { return e.T }
func (e JobQueued) String() string {
	return fmt.Sprintf("t=%v queued %s", e.T, e.ID)
}

// JobPlaced records the queue head starting (or resuming) on a fresh
// reservation.
type JobPlaced struct {
	T  time.Duration
	ID string
	// Hosts is the placement, indexed by rank.
	Hosts []string
	// StepSec is the priced per-step estimate on this placement and
	// Finish the projected virtual completion time it implies.
	StepSec float64
	Finish  time.Duration
	// Weighted reports a speed-weighted decomposition shape.
	Weighted bool
}

func (e JobPlaced) When() time.Duration { return e.T }
func (e JobPlaced) String() string {
	return fmt.Sprintf("t=%v placed %s on [%s] step=%.6gs finish=%v weighted=%v",
		e.T, e.ID, strings.Join(e.Hosts, " "), e.StepSec, e.Finish, e.Weighted)
}

// JobBackfilled records a job behind the blocked queue head starting in
// the gaps the head cannot fill (under EASY, only because its projected
// finish lands before the head's reservation).
type JobBackfilled struct {
	T        time.Duration
	ID       string
	Hosts    []string
	StepSec  float64
	Finish   time.Duration
	Weighted bool
}

func (e JobBackfilled) When() time.Duration { return e.T }
func (e JobBackfilled) String() string {
	return fmt.Sprintf("t=%v backfilled %s on [%s] step=%.6gs finish=%v weighted=%v",
		e.T, e.ID, strings.Join(e.Hosts, " "), e.StepSec, e.Finish, e.Weighted)
}

// JobPreempted records a running job suspended off the pool — a
// priority preemption, or the whole-job fallback when a reclaimed
// host's ranks found no replacement — through the section-5.1 dump
// path. The job is requeued with Remaining integration steps left.
type JobPreempted struct {
	T         time.Duration
	ID        string
	Remaining float64
}

func (e JobPreempted) When() time.Duration { return e.T }
func (e JobPreempted) String() string {
	return fmt.Sprintf("t=%v preempted %s remaining=%.6g", e.T, e.ID, e.Remaining)
}

// JobMigrated records displaced ranks moving to replacement hosts
// mid-run (the section-5.1 dump/rebuild round trip) after their hosts'
// regular users returned; the job was repriced on the patched
// placement.
type JobMigrated struct {
	T  time.Duration
	ID string
	// Ranks are the displaced ranks; Hosts[i] is rank Ranks[i]'s new
	// home.
	Ranks   []int
	Hosts   []string
	StepSec float64
	Finish  time.Duration
}

func (e JobMigrated) When() time.Duration { return e.T }
func (e JobMigrated) String() string {
	parts := make([]string, len(e.Ranks))
	for i, r := range e.Ranks {
		parts[i] = fmt.Sprintf("%d>%s", r, e.Hosts[i])
	}
	return fmt.Sprintf("t=%v migrated %s [%s] step=%.6gs finish=%v",
		e.T, e.ID, strings.Join(parts, " "), e.StepSec, e.Finish)
}

// JobFinished records a job's completion, with its full metrics record.
type JobFinished struct {
	T   time.Duration
	ID  string
	Job metrics.Job
}

func (e JobFinished) When() time.Duration { return e.T }
func (e JobFinished) String() string {
	return fmt.Sprintf("t=%v finished %s wait=%v served=%v preempts=%d migr=%d",
		e.T, e.ID, e.Job.Wait(), e.Job.Served, e.Job.Preemptions, e.Job.Migrations)
}

// JobResized records a running job re-decomposed onto a new rank count
// mid-run (the malleable-job extension of migration): the reservation
// grew or shrank, the workload re-split at a step boundary, and the job
// was repriced on the new placement.
type JobResized struct {
	T  time.Duration
	ID string
	// From and To are the old and new rank counts.
	From, To int
	// Hosts is the new placement, indexed by rank.
	Hosts   []string
	StepSec float64
	Finish  time.Duration
}

func (e JobResized) When() time.Duration { return e.T }
func (e JobResized) String() string {
	return fmt.Sprintf("t=%v resized %s %d>%d on [%s] step=%.6gs finish=%v",
		e.T, e.ID, e.From, e.To, strings.Join(e.Hosts, " "), e.StepSec, e.Finish)
}

// AutoscaleDecision records one control-loop decision — grow, shrink or
// hold, with the policy's reason — whether or not it was actuated, so
// traces show why the rank counts moved (or did not).
type AutoscaleDecision struct {
	T  time.Duration
	ID string
	// Action is the policy's verdict ("grow", "shrink", "hold").
	Action   string
	From, To int
	Reason   string
}

func (e AutoscaleDecision) When() time.Duration { return e.T }
func (e AutoscaleDecision) String() string {
	return fmt.Sprintf("t=%v autoscale %s %s %d>%d reason=%q",
		e.T, e.Action, e.ID, e.From, e.To, e.Reason)
}

// HostReclaimed records a regular user sitting back down at a
// workstation a farm job had reserved: the scheduler vacates the host
// (migration or suspension) within the same round.
type HostReclaimed struct {
	T    time.Duration
	Host string
	// Owner is the job holding the host when the user returned; empty
	// when the reclaimed host was not reserved.
	Owner string
}

func (e HostReclaimed) When() time.Duration { return e.T }
func (e HostReclaimed) String() string {
	return fmt.Sprintf("t=%v reclaimed %s owner=%q", e.T, e.Host, e.Owner)
}

// CheckpointSaved records a committed farm checkpoint: the manifest was
// atomically renamed into place pointing at generation Gen, with Jobs
// job records. The directory path is deliberately omitted from String —
// it is operator-local and would break trace comparison across runs.
type CheckpointSaved struct {
	T   time.Duration
	Dir string
	Gen string
	// Jobs counts the job records in the committed manifest.
	Jobs int
}

func (e CheckpointSaved) When() time.Duration { return e.T }
func (e CheckpointSaved) String() string {
	return fmt.Sprintf("t=%v checkpoint %s jobs=%d", e.T, e.Gen, e.Jobs)
}

// EASYDegraded records a scheduling round whose blocked head had no
// computable projected start (completions alone never free enough
// usable hosts), so EASY backfill explicitly fell back to the
// aggressive mode for the round instead of silently eroding the head's
// protection.
type EASYDegraded struct {
	T     time.Duration
	Head  string
	Ranks int
}

func (e EASYDegraded) When() time.Duration { return e.T }
func (e EASYDegraded) String() string {
	return fmt.Sprintf("t=%v easy-degraded head=%s ranks=%d", e.T, e.Head, e.Ranks)
}

// emit delivers one event to the Events hook, if any. The Logf debug
// hook survives as a thin adapter over the stream: the diagnostic
// events are rendered to it in the legacy log wording.
func (s *Scheduler) emit(ev Event) {
	if s.Events != nil {
		s.Events(ev)
	}
	if d, ok := ev.(EASYDegraded); ok {
		s.logf("sched: EASY shadow incomputable for head %s (%d ranks); degrading to aggressive backfill this round",
			d.Head, d.Ranks)
	}
}

// hostNames copies a placement's host names, indexed by rank.
func hostNames(hosts []*cluster.Host) []string {
	names := make([]string, len(hosts))
	for i, h := range hosts {
		if h != nil {
			names[i] = h.Name
		}
	}
	return names
}
