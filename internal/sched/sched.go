// Package sched turns the paper's pool of non-dedicated workstations into
// a shared simulation farm: many queued jobs competing for one
// cluster.Cluster, with admission, capacity-aware placement, backfill,
// and migration-based preemption.
//
// The paper (section 5.1) prescribes process migration so a single
// parallel job can vacate a workstation its owner reclaims. This package
// reuses that exact machinery as a scheduling primitive: preempting a
// low-priority job is Job.Suspend — every rank synchronizes, dumps its
// state and exits — and resuming it later is Job.Resume, so a preempted
// simulation still produces bit-identical results to an undisturbed run.
//
// Placement extends cluster.SelectFree into a reservation API
// (cluster.Reserve): host slots are claimed per job and released on
// completion or preemption, and the greedy scan order is re-randomized
// every round — within the section-4.1 preference tiers — following Lee &
// Wright's observation that random permutations avoid the adversarial
// worst cases a fixed cyclic order admits.
//
// The scheduler runs in the cluster's virtual time, so multi-job traces
// replay deterministically: job runtimes come from a StepTimer, either
// the compute-only host-speed estimate or the perf discrete-event engine
// (PerfTimer), which replays each job's halo-exchange pattern over the
// modelled network. Metrics (queue wait, makespan, utilization,
// preemptions, backfills) live in the sched/metrics sub-package.
package sched

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ckpt"
)

// Sentinel errors returned (wrapped, with job context) by Submit;
// callers branch on them with errors.Is.
var (
	// ErrClosed rejects a submission after Close: the farm is draining.
	ErrClosed = errors.New("farm is closed to new submissions")
	// ErrDuplicateID rejects a job ID the farm has already accepted.
	ErrDuplicateID = errors.New("duplicate job ID")
	// ErrNoCapacity rejects a job that needs more ranks than the pool
	// has hosts: no scheduling round could ever place it, so it is
	// refused at submission instead of stalling the farm later.
	ErrNoCapacity = errors.New("job needs more ranks than the pool has hosts")
	// ErrInvalidSpec wraps every JobSpec validation failure.
	ErrInvalidSpec = errors.New("invalid job spec")
)

// Policy selects the queueing discipline.
type Policy int

const (
	// FIFO runs jobs in submission order (ties broken by ID).
	FIFO Policy = iota
	// Priority runs the highest-priority job first and preempts running
	// lower-priority jobs when the head of the queue cannot fit.
	Priority
	// WeightedFair picks the queued job with the least virtual service
	// time per unit weight, a stride-scheduling share of the farm.
	WeightedFair
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Priority:
		return "priority"
	case WeightedFair:
		return "fair"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps a policy name to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "priority":
		return Priority, nil
	case "fair":
		return WeightedFair, nil
	}
	return 0, fmt.Errorf("sched: unknown policy %q (fifo, priority, fair)", s)
}

// BackfillMode selects how jobs behind a blocked queue head may use the
// gaps its ranks cannot fill.
type BackfillMode int

const (
	// BackfillNone enforces strict head-of-line order: nothing behind a
	// blocked head runs (except a Priority preemption of the head
	// itself).
	BackfillNone BackfillMode = iota
	// BackfillAggressive places any queued job that fits right now. With
	// no reservation for the head, a steady stream of small jobs can
	// delay a wide head indefinitely — the starvation hole EASY closes.
	BackfillAggressive
	// BackfillEASY grants the blocked head a reservation at its
	// projected start (computed from the running jobs' virtual finish
	// times) and backfills only jobs whose own projected finish lands
	// before it, bounding the head's extra wait. The scheduler default.
	BackfillEASY
)

func (m BackfillMode) String() string {
	switch m {
	case BackfillNone:
		return "none"
	case BackfillAggressive:
		return "aggressive"
	case BackfillEASY:
		return "easy"
	}
	return fmt.Sprintf("BackfillMode(%d)", int(m))
}

// ParseBackfill maps a backfill mode name to its BackfillMode.
func ParseBackfill(s string) (BackfillMode, error) {
	switch s {
	case "none":
		return BackfillNone, nil
	case "aggressive":
		return BackfillAggressive, nil
	case "easy":
		return BackfillEASY, nil
	}
	return 0, fmt.Errorf("sched: unknown backfill mode %q (none, aggressive, easy)", s)
}

// methodDims maps the section-7 method names to their dimensionality.
var methodDims = map[string]int{
	"lb2d": 2, "fd2d": 2, "lb3d": 3, "fd3d": 3,
}

// JobSpec describes one job of the farm: the decomposed simulation it
// stands for (method, decomposition, subregion side), how long it runs,
// and how the queue should treat it. Specs are the scheduler's model of
// the work — a real core.Job attached through CoreWorkload computes
// whatever its own config says, while the spec drives the virtual-time
// accounting.
type JobSpec struct {
	ID     string
	Method string // lb2d, fd2d, lb3d or fd3d (the speed-table names)

	// JX, JY, JZ is the decomposition; JZ = 0 means 2D. Ranks() hosts
	// are needed, one per subregion, as in the paper.
	JX, JY, JZ int
	// Side is the subregion side length (square/cubic subregions, the
	// paper's scaling setup), fixing the per-rank workload.
	Side int
	// Steps is the number of integration steps.
	Steps int

	// GX, GY, GZ pin the global grid explicitly; zero derives it from
	// the lattice (Side*JX x Side*JY [x Side*JZ]), which every job
	// submitted before malleability used. The scheduler pins the grid
	// when it resizes a job: the lattice changes but the problem does
	// not, so pricing and shape validation must keep measuring the
	// original grid. User submissions normally leave these zero.
	GX, GY, GZ int

	// Priority orders the Priority policy (higher first); jobs with
	// strictly higher priority may preempt running lower-priority jobs.
	Priority int
	// User names the tenant the job belongs to for WeightedFair
	// accounting; an empty user makes the job its own tenant.
	User string
	// Weight is the WeightedFair share of the job's tenant (<= 0 means
	// 1): the scheduler favors the tenant with the least virtual service
	// time per unit weight. Jobs of one tenant should agree on it.
	Weight float64
	// Submit is the arrival time, relative to the farm's start.
	Submit time.Duration
}

// Is3D reports whether the spec decomposes a 3D problem.
func (s JobSpec) Is3D() bool { return s.JZ > 0 }

// Grid returns the spec's global grid extents: the pinned GX/GY/GZ when
// set, Side*JX x Side*JY [x Side*JZ] otherwise. gz is zero for 2D specs.
func (s JobSpec) Grid() (gx, gy, gz int) {
	gx, gy, gz = s.GX, s.GY, s.GZ
	if gx == 0 {
		gx = s.Side * s.JX
	}
	if gy == 0 {
		gy = s.Side * s.JY
	}
	if !s.Is3D() {
		return gx, gy, 0
	}
	if gz == 0 {
		gz = s.Side * s.JZ
	}
	return gx, gy, gz
}

// Ranks returns the number of hosts the job needs.
func (s JobSpec) Ranks() int {
	jz := s.JZ
	if jz < 1 {
		jz = 1
	}
	return s.JX * s.JY * jz
}

// NodesPerRank returns the fluid nodes each rank integrates per step.
func (s JobSpec) NodesPerRank() int {
	if s.Is3D() {
		return s.Side * s.Side * s.Side
	}
	return s.Side * s.Side
}

// Validate checks the spec. Every failure wraps ErrInvalidSpec, so
// callers distinguish a malformed spec from capacity or lifecycle
// rejections with errors.Is.
func (s JobSpec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("sched: %w: job needs an ID", ErrInvalidSpec)
	}
	// IDs name checkpoint subdirectories; reject at submission what
	// Checkpoint would otherwise choke on mid-run.
	if err := ckpt.CheckJobID(s.ID); err != nil {
		return fmt.Errorf("sched: %w: job %s: %v", ErrInvalidSpec, s.ID, err)
	}
	dim, ok := methodDims[s.Method]
	if !ok {
		return fmt.Errorf("sched: %w: job %s: unknown method %q", ErrInvalidSpec, s.ID, s.Method)
	}
	if dim == 3 && s.JZ < 1 {
		return fmt.Errorf("sched: %w: job %s: 3D method needs JZ >= 1", ErrInvalidSpec, s.ID)
	}
	if dim == 2 && s.JZ > 1 {
		return fmt.Errorf("sched: %w: job %s: 2D method with JZ = %d", ErrInvalidSpec, s.ID, s.JZ)
	}
	if s.JX < 1 || s.JY < 1 {
		return fmt.Errorf("sched: %w: job %s: decomposition %dx%dx%d", ErrInvalidSpec, s.ID, s.JX, s.JY, s.JZ)
	}
	if s.Side < 1 {
		return fmt.Errorf("sched: %w: job %s: subregion side %d", ErrInvalidSpec, s.ID, s.Side)
	}
	if s.GX < 0 || s.GY < 0 || s.GZ < 0 {
		return fmt.Errorf("sched: %w: job %s: negative grid %dx%dx%d", ErrInvalidSpec, s.ID, s.GX, s.GY, s.GZ)
	}
	if s.GZ > 0 && dim == 2 {
		return fmt.Errorf("sched: %w: job %s: 2D method with GZ = %d", ErrInvalidSpec, s.ID, s.GZ)
	}
	if gx, gy, gz := s.Grid(); gx < s.JX || gy < s.JY || (s.Is3D() && gz < s.JZ) {
		return fmt.Errorf("sched: %w: job %s: grid %dx%dx%d cannot give every subregion of the %dx%dx%d lattice a node",
			ErrInvalidSpec, s.ID, gx, gy, gz, s.JX, s.JY, s.JZ)
	}
	if s.Steps < 1 {
		return fmt.Errorf("sched: %w: job %s: %d steps", ErrInvalidSpec, s.ID, s.Steps)
	}
	if s.Submit < 0 {
		return fmt.Errorf("sched: %w: job %s: negative submit time", ErrInvalidSpec, s.ID)
	}
	return nil
}
