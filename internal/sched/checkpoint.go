package sched

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/dump"
)

// ErrInterrupted is returned by Run when Interrupt aborts the event loop.
var ErrInterrupted = errors.New("sched: run interrupted")

// Interrupt aborts a running event loop: Run returns ErrInterrupted at
// its next check, abandoning the in-memory farm the way a coordinator
// crash would. Crash-recovery tests and experiments pair it with
// Checkpoint — persist the farm, interrupt the loop, discard the
// scheduler, and Restore a fresh one from disk. Safe from any goroutine.
func (s *Scheduler) Interrupt() {
	s.mu.Lock()
	s.interrupted = true
	s.mu.Unlock()
	s.wakeup()
}

// InterruptCheckpoint aborts the event loop like Interrupt, but asks it
// to persist the farm into CheckpointDir first (when one is configured)
// so the abandoned run is restorable. This is the graceful-cancellation
// path of the public farm API: a canceled context checkpoints, then
// interrupts. Safe from any goroutine; the checkpoint itself runs on
// the scheduling goroutine at the loop's next interrupt check.
func (s *Scheduler) InterruptCheckpoint() {
	s.mu.Lock()
	s.interrupted = true
	s.ckptOnInterrupt = true
	s.mu.Unlock()
	s.wakeup()
}

// ClearInterrupt discards a pending interrupt request no Run consumed.
// The farm API calls it after Run returns when the run's context was
// canceled: its cancellation watcher may have fired just as the loop
// exited on its own, and the stale request must not abort the next Run.
func (s *Scheduler) ClearInterrupt() {
	s.mu.Lock()
	s.interrupted = false
	s.ckptOnInterrupt = false
	s.mu.Unlock()
}

// interruptExit finishes an interrupted Run: when InterruptCheckpoint
// requested a final save and a checkpoint directory is configured, the
// farm is persisted before the loop returns ErrInterrupted. The request
// is consumed — the flags reset — so a later Run of the same scheduler
// is not poisoned by an interrupt it already honored.
func (s *Scheduler) interruptExit() error {
	s.mu.Lock()
	want := s.ckptOnInterrupt
	s.interrupted = false
	s.ckptOnInterrupt = false
	s.mu.Unlock()
	if want && s.CheckpointDir != "" {
		if err := s.Checkpoint(s.CheckpointDir); err != nil {
			// Keep the sentinel in the chain: callers branching on
			// errors.Is(err, ErrInterrupted) must still recognize an
			// interrupted run whose final save failed.
			return fmt.Errorf("sched: checkpoint on interrupt: %w (%w)", err, ErrInterrupted)
		}
	}
	return ErrInterrupted
}

// WorkloadFactory rebuilds the functional side of one restored job from
// its spec: for a real simulation, a fresh core.Job wrapped in a
// CoreWorkload (whose rank states Restore then loads from the checkpoint
// and whose next Resume rebuilds the workers through the dump path).
//
// The spec passed in is the job's EFFECTIVE spec: for a job that was
// resized mid-run it carries the current (post-resize) lattice in
// JX/JY/JZ with the original global grid pinned in GX/GY/GZ, so a
// factory that sizes its simulation from the spec builds a job matching
// the checkpointed rank dumps. Factories must honor spec.Grid() and
// spec.Ranks() rather than assuming the submitted geometry.
type WorkloadFactory func(spec JobSpec) (Workload, error)

// WorkloadRegistry maps job IDs to factories, the hook Restore uses to
// reconstruct Workloads from the specs in a checkpoint manifest. Jobs
// without an entry restore as NullWorkload — but only when the checkpoint
// holds no rank states for them; dropping a real simulation's state on
// the floor is an error, not a default.
type WorkloadRegistry map[string]WorkloadFactory

// Checkpoint persists the whole farm into dir: every job's accounting
// and rank states, the queue order, the fair-share credit, the RNG state
// and a full cluster snapshot, versioned under ckpt.Version. Running
// jobs are checkpointed through Workload.Checkpoint — the suspend
// protocol followed by an immediate resume, so they keep their hosts and
// lose no placement — and their dump files are written one at a time
// with CheckpointGap pauses (the section-5.2 etiquette for the shared
// file server). Each save writes its states into a fresh generation
// directory and commits by renaming the manifest last, so a crash at any
// point leaves the previous complete checkpoint restorable; superseded
// generations are pruned after the commit.
//
// Checkpoint must run on the scheduling goroutine: the event loop calls
// it at CheckpointEvery ticks, and a Scenario callback may call it at an
// exact virtual time (the crash experiments do). It first retires every
// completion already due, so the checkpoint lands on a settled round
// boundary; beyond that the farm's virtual state is untouched, which is
// why a checkpointed run stays bit-identical to an undisturbed one.
func (s *Scheduler) Checkpoint(dir string) error {
	t := s.now()
	if err := s.complete(t); err != nil {
		return fmt.Errorf("sched: checkpoint: %w", err)
	}
	gen := ckpt.StatesDirName(s.ckptSeq + 1)
	m := &ckpt.Manifest{
		SavedAt:      t,
		Start:        s.start,
		Policy:       s.Policy.String(),
		Backfill:     s.Backfill.String(),
		RNG:          s.src.State(),
		Closed:       s.isClosed(),
		Reclaims:     s.reclaims,
		EASYDegraded: s.easyDegraded,
		ServedByUser: make(map[string]time.Duration, len(s.servedByUser)),
		StatesDir:    gen,
		Cluster:      s.Cluster.Snapshot(),
	}
	for user, d := range s.servedByUser {
		m.ServedByUser[user] = d
	}

	seq := dump.NewSequencer(s.CheckpointGap)
	add := func(js *jobState, phase string) error {
		if err := ckpt.CheckJobID(js.spec.ID); err != nil {
			return err
		}
		jr := recordJob(js, phase)
		if js.started && (phase == ckpt.PhaseQueued || phase == ckpt.PhaseRunning) {
			states, err := js.work.Checkpoint()
			if err != nil {
				return fmt.Errorf("sched: checkpoint %s: %w", js.spec.ID, err)
			}
			if len(states) > 0 {
				if err := ckpt.SaveStates(dir, gen, js.spec.ID, states, seq); err != nil {
					return err
				}
				jr.StateSteps = make([]int, len(states))
				for i, st := range states {
					jr.StateSteps[i] = st.Step
				}
			}
		}
		m.Jobs = append(m.Jobs, jr)
		return nil
	}

	s.mu.Lock()
	pending := append([]*jobState(nil), s.pending...)
	s.mu.Unlock()
	for _, js := range pending {
		if err := add(js, ckpt.PhasePending); err != nil {
			return err
		}
	}
	for _, js := range s.queue {
		if err := add(js, ckpt.PhaseQueued); err != nil {
			return err
		}
	}
	for _, js := range s.running {
		if err := add(js, ckpt.PhaseRunning); err != nil {
			return err
		}
	}
	for _, js := range s.finished {
		if err := add(js, ckpt.PhaseFinished); err != nil {
			return err
		}
	}
	if err := ckpt.Save(dir, m); err != nil {
		return err
	}
	s.ckptSeq++
	// The manifest now points at the new generation; drop superseded and
	// never-committed ones so the directory holds exactly one save.
	if err := ckpt.Prune(dir, gen); err != nil {
		return err
	}
	s.emit(CheckpointSaved{T: t, Dir: dir, Gen: gen, Jobs: len(m.Jobs)})
	return nil
}

// Restore rebuilds a farm from a checkpoint directory: the cluster is
// overwritten from the manifest's snapshot (it must be an identically
// shaped pool, typically freshly built), every job is reconstructed in
// its checkpointed phase with its workload rebuilt through the registry
// and its rank states reloaded from disk, running jobs resume their
// workers on their recorded hosts, and the scheduler's clock, RNG and
// fair-share credit continue where the dead coordinator stopped — so the
// restored Run finishes bit-identically to one that never crashed.
//
// Scenario, ScenarioEvery and the CheckpointEvery/Dir/Gap knobs are not
// persisted (a function pointer and operator-local paths don't belong in
// a manifest); re-attach them before Run exactly as originally
// configured, or the restored run's tick grid — and with it the
// bit-identity guarantee — changes.
//
// Corrupt, partial or mismatched checkpoints fail with descriptive
// errors; on failure the cluster and any partially resumed workloads
// should be discarded.
func Restore(dir string, c *cluster.Cluster, reg WorkloadRegistry) (*Scheduler, error) {
	m, err := ckpt.Load(dir)
	if err != nil {
		return nil, err
	}
	pol, err := ParsePolicy(m.Policy)
	if err != nil {
		return nil, fmt.Errorf("sched: restore: %w", err)
	}
	bf, err := ParseBackfill(m.Backfill)
	if err != nil {
		return nil, fmt.Errorf("sched: restore: %w", err)
	}
	if got := m.Start + m.SavedAt; m.Cluster.Now != got {
		return nil, fmt.Errorf("sched: restore: manifest clock disagrees with cluster snapshot (%v + %v != %v)",
			m.Start, m.SavedAt, m.Cluster.Now)
	}
	if err := c.RestoreSnapshot(m.Cluster); err != nil {
		return nil, fmt.Errorf("sched: restore: %w", err)
	}

	s := New(c, pol, 0)
	s.Backfill = bf
	s.src.SetState(m.RNG)
	s.start = m.Start
	s.restored = true
	s.closed = m.Closed
	s.reclaims = m.Reclaims
	s.easyDegraded = m.EASYDegraded
	if m.StatesDir != "" {
		// Continue the save-generation numbering past the restored-from
		// checkpoint, so this farm's own saves never collide with it.
		seq, err := ckpt.ParseStatesDir(m.StatesDir)
		if err != nil {
			return nil, err
		}
		s.ckptSeq = seq
	}
	for user, d := range m.ServedByUser {
		s.servedByUser[user] = d
	}

	for _, jr := range m.Jobs {
		js, err := restoreJob(dir, m.StatesDir, jr, c, reg)
		if err != nil {
			return nil, err
		}
		s.ids[js.spec.ID] = true
		// Restore replays bookkeeping the original run already announced:
		// each job's queue/run/finish events live in the pre-checkpoint
		// stream, and re-emitting them here would double-count.
		switch jr.Phase {
		case ckpt.PhasePending:
			s.pending = append(s.pending, js)
		case ckpt.PhaseQueued:
			s.queue = append(s.queue, js) //detlint:allow eventcomplete -- restore rebuilds state whose events the original run already emitted
		case ckpt.PhaseRunning:
			s.running = append(s.running, js) //detlint:allow eventcomplete -- restore rebuilds state whose events the original run already emitted
		case ckpt.PhaseFinished:
			s.finished = append(s.finished, js) //detlint:allow eventcomplete -- restore rebuilds state whose events the original run already emitted
		}
	}
	return s, nil
}

// restoreJob rebuilds one job from its manifest record: spec and
// accounting verbatim, workload from the registry, rank states from
// disk, and — for a running job — the reservation re-established on the
// snapshot-restored hosts, whose assignments must agree with the
// manifest.
func restoreJob(dir, statesDir string, jr ckpt.JobRecord, c *cluster.Cluster, reg WorkloadRegistry) (*jobState, error) {
	spec := JobSpec{
		ID: jr.ID, Method: jr.Method,
		JX: jr.JX, JY: jr.JY, JZ: jr.JZ, Side: jr.Side, Steps: jr.Steps,
		GX: jr.GridX, GY: jr.GridY, GZ: jr.GridZ,
		Priority: jr.Priority, User: jr.User, Weight: jr.Weight, Submit: jr.Submit,
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sched: restore: %w", err)
	}
	// The factory and shape checks see the job's effective geometry: the
	// current lattice with the original grid pinned, when resizes moved
	// the job off its spec (mirroring jobState.espec).
	espec := spec
	if jr.CurJX > 0 {
		espec.GX, espec.GY, espec.GZ = spec.Grid()
		espec.JX, espec.JY, espec.JZ = jr.CurJX, jr.CurJY, jr.CurJZ
		if err := espec.Validate(); err != nil {
			return nil, fmt.Errorf("sched: restore %s: resized lattice: %w", jr.ID, err)
		}
	}
	var states []*dump.State
	if len(jr.StateSteps) > 0 {
		var err error
		states, err = ckpt.LoadStates(dir, statesDir, jr.ID, jr.StateSteps)
		if err != nil {
			return nil, err
		}
	}

	var w Workload
	if f := reg[jr.ID]; f != nil {
		var err error
		w, err = f(espec)
		if err != nil {
			return nil, fmt.Errorf("sched: restore %s: workload factory: %w", jr.ID, err)
		}
	}
	if w == nil {
		if len(states) > 0 {
			return nil, fmt.Errorf(
				"sched: restore %s: checkpoint holds %d rank states but the registry has no workload factory for it",
				jr.ID, len(states))
		}
		w = NullWorkload{}
	}
	if len(states) > 0 {
		if err := w.Restore(states); err != nil {
			return nil, fmt.Errorf("sched: restore %s: %w", jr.ID, err)
		}
	}

	js := &jobState{
		spec:       spec,
		work:       w,
		remaining:  jr.Remaining,
		stepSec:    jr.StepSec,
		placedAt:   jr.PlacedAt,
		finishAt:   jr.FinishAt,
		shape:      jr.Shape(),
		imbalance:  jr.Imbalance,
		started:    jr.Started,
		live:       jr.Live,
		firstStart: jr.FirstStart,
		doneAt:     jr.DoneAt,
		served:     jr.Served,
		preempts:   jr.Preempts,
		backfilled: jr.Backfilled,
		migrations: jr.Migrations,
		repricings: jr.Repricings,

		curJX: jr.CurJX, curJY: jr.CurJY, curJZ: jr.CurJZ,
		resizes:     jr.Resizes,
		growRanks:   jr.GrowRanks,
		shrinkRanks: jr.ShrinkRanks,
	}
	if jr.Phase != ckpt.PhaseRunning {
		return js, nil
	}

	hosts := make([]*cluster.Host, len(jr.Hosts))
	for rank, name := range jr.Hosts {
		h := c.ByName(name)
		if h == nil {
			return nil, fmt.Errorf("sched: restore %s: placement names unknown host %q", jr.ID, name)
		}
		if h.Assigned() != rank || h.Owner() != jr.ID {
			return nil, fmt.Errorf(
				"sched: restore %s: host %s assigned to rank %d of %q, manifest says rank %d of %q",
				jr.ID, name, h.Assigned(), h.Owner(), rank, jr.ID)
		}
		hosts[rank] = h
	}
	js.res = &cluster.Reservation{Owner: jr.ID, Hosts: hosts} //detlint:allow eventcomplete -- re-establishes the placement the manifest recorded; its JobPlaced event predates the checkpoint
	if err := js.work.Resume(hosts); err != nil {
		return nil, fmt.Errorf("sched: restore %s: resuming workload: %w", jr.ID, err)
	}
	return js, nil
}

// recordJob converts a jobState into its manifest record (StateSteps is
// filled by the caller once the states are persisted).
func recordJob(js *jobState, phase string) ckpt.JobRecord {
	jr := ckpt.JobRecord{
		ID: js.spec.ID, Method: js.spec.Method,
		JX: js.spec.JX, JY: js.spec.JY, JZ: js.spec.JZ,
		Side: js.spec.Side, Steps: js.spec.Steps,
		GridX: js.spec.GX, GridY: js.spec.GY, GridZ: js.spec.GZ,
		CurJX: js.curJX, CurJY: js.curJY, CurJZ: js.curJZ,
		Priority: js.spec.Priority, User: js.spec.User,
		Weight: js.spec.Weight, Submit: js.spec.Submit,

		Phase:       phase,
		Resizes:     js.resizes,
		GrowRanks:   js.growRanks,
		ShrinkRanks: js.shrinkRanks,
		Remaining:   js.remaining,
		StepSec:     js.stepSec,
		PlacedAt:    js.placedAt,
		FinishAt:    js.finishAt,
		SpansX:      js.shape.X,
		SpansY:      js.shape.Y,
		SpansZ:      js.shape.Z,
		Imbalance:   js.imbalance,
		Started:     js.started,
		Live:        js.live,
		FirstStart:  js.firstStart,
		DoneAt:      js.doneAt,
		Served:      js.served,
		Preempts:    js.preempts,
		Backfilled:  js.backfilled,
		Migrations:  js.migrations,
		Repricings:  js.repricings,
	}
	if phase == ckpt.PhaseRunning {
		jr.Hosts = make([]string, len(js.res.Hosts))
		for rank, h := range js.res.Hosts {
			jr.Hosts[rank] = h.Name
		}
	}
	return jr
}
