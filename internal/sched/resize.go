package sched

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
)

// Sentinel errors of the resize path; callers branch with errors.Is.
var (
	// ErrUnknownJob flags a resize request for an ID the farm never
	// accepted.
	ErrUnknownJob = errors.New("unknown job")
	// ErrNotRunning flags a resize request for a job the farm knows but
	// is not currently running (pending, queued, suspended or finished):
	// only a placed job has a reservation to grow or shrink.
	ErrNotRunning = errors.New("job is not running")
)

// resizeReq is one queued RequestResize call, answered on ch.
type resizeReq struct {
	id string
	n  int
	ch chan error
}

// RequestResize asks the event loop to resize the running job to n ranks
// at the loop's current virtual time. It is safe from any goroutine —
// the public farm API calls it from Job.Resize — and returns a buffered
// channel that receives exactly one result: nil once the resize
// committed, or the typed error (ErrUnknownJob, ErrNotRunning,
// ErrNoCapacity, or a workload refusal) if it did not. The request is
// processed in the next loop iteration, after reclaims and before the
// scheduling round, so a resize never interleaves with a migration of
// the same job inside one round.
func (s *Scheduler) RequestResize(id string, n int) <-chan error {
	ch := make(chan error, 1)
	s.mu.Lock()
	s.resizeReqs = append(s.resizeReqs, resizeReq{id: id, n: n, ch: ch})
	s.mu.Unlock()
	s.wakeup()
	return ch
}

// handleResizeRequests drains the queued RequestResize calls at the
// current virtual time, answering each caller's channel.
func (s *Scheduler) handleResizeRequests(t time.Duration) {
	s.mu.Lock()
	reqs := s.resizeReqs
	s.resizeReqs = nil
	s.mu.Unlock()
	for _, r := range reqs {
		r.ch <- s.resizeByID(r.id, r.n, t)
	}
}

// resizeByID locates a running job by ID and resizes it; jobs the farm
// knows but is not running get ErrNotRunning, strangers ErrUnknownJob.
func (s *Scheduler) resizeByID(id string, n int, t time.Duration) error {
	for _, js := range s.running {
		if js.spec.ID == id {
			return s.resize(js, n, t)
		}
	}
	s.mu.Lock()
	known := s.ids[id]
	s.mu.Unlock()
	if known {
		return fmt.Errorf("sched: resize %s: %w", id, ErrNotRunning)
	}
	return fmt.Errorf("sched: resize %q: %w", id, ErrUnknownJob)
}

// resize re-decomposes a running job onto n ranks at the current virtual
// time: the progress made at the old pace is credited, a near-square
// lattice of n subregions is chosen within the job's (pinned) global
// grid, the reservation grows (fresh Reserve) or shrinks (tail hosts
// released), the workload re-splits through the core resize protocol,
// and the job is repriced on the new placement. Resizing to the current
// rank count is a no-op. Failures leave the job running on its old
// decomposition and reservation: a grow that cannot reserve or re-split
// releases the extra hosts; a shrink re-splits before any host is
// released, so its failure changes nothing.
func (s *Scheduler) resize(js *jobState, n int, t time.Duration) error {
	cur := js.ranks()
	if n == cur {
		return nil
	}
	if n < 1 {
		return fmt.Errorf("sched: resize %s to %d ranks", js.spec.ID, n)
	}
	if n > len(s.Cluster.Hosts) {
		return fmt.Errorf("sched: resize %s to %d ranks on a %d-host pool: %w",
			js.spec.ID, n, len(s.Cluster.Hosts), ErrNoCapacity)
	}
	espec := js.espec()
	jx, jy, jz, err := chooseLattice(n, espec)
	if err != nil {
		return fmt.Errorf("sched: resize %s: %w", js.spec.ID, err)
	}
	next := espec
	next.GX, next.GY, next.GZ = espec.Grid()
	next.JX, next.JY, next.JZ = jx, jy, jz

	// The run so far went at the old placement's pace; credit it and
	// re-anchor before anything can fail, so the accounting never
	// double-counts whatever happens next. On failure the job keeps its
	// old pace and the finish estimate is re-derived from the new anchor.
	elapsed := t - js.placedAt
	js.remaining -= elapsed.Seconds() / js.stepSec
	if js.remaining < 0 {
		js.remaining = 0
	}
	s.creditService(js, elapsed)
	js.placedAt = t

	var hosts []*cluster.Host
	if n > cur {
		add, err := s.Cluster.Reserve(js.spec.ID, n-cur, s.Select, s.rng)
		if err != nil {
			js.finishAt = t + time.Duration(js.remaining*js.stepSec*float64(time.Second))
			return fmt.Errorf("sched: resize %s %d->%d: %w (%v)", js.spec.ID, cur, n, ErrNoCapacity, err)
		}
		// Reserve numbered the extras from rank 0; re-number the merged
		// placement so hosts[rank] serves rank. The old hosts keep their
		// ranks (they lead the list), so a failed re-split needs no
		// un-renumbering — releasing the extras restores the placement.
		hosts = append(append([]*cluster.Host(nil), js.res.Hosts...), add.Hosts...)
		for rank, h := range hosts {
			h.AssignTo(js.spec.ID, rank)
		}
		if err := s.applyResize(js, next, hosts); err != nil {
			add.Release()
			js.finishAt = t + time.Duration(js.remaining*js.stepSec*float64(time.Second))
			return fmt.Errorf("sched: resize %s %d->%d: %w", js.spec.ID, cur, n, err)
		}
		js.res.Hosts = hosts
		js.growRanks += n - cur
	} else {
		// Shrink: re-split onto the leading n hosts first — the workload
		// refusing (filter on, deactivated subregions) must leave the
		// reservation whole — then release the tail.
		hosts = js.res.Hosts[:n:n]
		if err := s.applyResize(js, next, hosts); err != nil {
			js.finishAt = t + time.Duration(js.remaining*js.stepSec*float64(time.Second))
			return fmt.Errorf("sched: resize %s %d->%d: %w", js.spec.ID, cur, n, err)
		}
		drop := append([]*cluster.Host(nil), js.res.Hosts[n:]...)
		js.res.Shrink(drop)
		js.res.Hosts = js.res.Hosts[:n]
		js.shrinkRanks += cur - n
	}
	js.curJX, js.curJY, js.curJZ = jx, jy, jz
	js.finishAt = t + time.Duration(js.remaining*js.stepSec*float64(time.Second))
	js.resizes++
	js.repricings++
	s.emit(JobResized{T: t, ID: js.spec.ID, From: cur, To: n,
		Hosts: hostNames(js.res.Hosts), StepSec: js.stepSec, Finish: js.finishAt})
	return nil
}

// applyResize picks the new lattice's shape on the target hosts, drives
// the workload's re-split, and commits the job's shape, price and
// imbalance. It mutates nothing on failure.
func (s *Scheduler) applyResize(js *jobState, next JobSpec, hosts []*cluster.Host) error {
	shape, sec, err := s.chooseShape(next, hosts)
	if err != nil {
		return err
	}
	resolved, err := shapeOrUniform(next, shape)
	if err != nil {
		return err
	}
	imb, err := Imbalance(next, shape, hosts)
	if err != nil {
		return err
	}
	if err := js.work.Resize(resolved, hosts); err != nil {
		return err
	}
	js.shape = shape
	js.stepSec = sec
	js.imbalance = imb
	return nil
}

// chooseLattice factors n into a decomposition lattice for the spec's
// problem: near-square (near-cubic for 3D specs), deterministically —
// the largest factor <= the root first, longer factor along the longer
// grid axis — and bounded by the grid extents so every subregion keeps
// at least one node. It fails when no factorization of n fits the grid
// (n prime and longer than both axes, say).
func chooseLattice(n int, spec JobSpec) (jx, jy, jz int, err error) {
	gx, gy, gz := spec.Grid()
	if spec.Is3D() {
		for c := rootFloor(n, 3); c >= 1; c-- {
			if n%c != 0 || c > gz {
				continue
			}
			if x, y, ok := lattice2D(n/c, gx, gy); ok {
				return x, y, c, nil
			}
		}
		return 0, 0, 0, fmt.Errorf("no %d-rank lattice fits grid %dx%dx%d", n, gx, gy, gz)
	}
	x, y, ok := lattice2D(n, gx, gy)
	if !ok {
		return 0, 0, 0, fmt.Errorf("no %d-rank lattice fits grid %dx%d", n, gx, gy)
	}
	return x, y, 0, nil
}

// lattice2D picks the most nearly square factorization jx*jy = n that
// fits the gx x gy grid, preferring the longer factor along the longer
// axis (ties go to x, matching row-major rank order).
func lattice2D(n, gx, gy int) (jx, jy int, ok bool) {
	for a := rootFloor(n, 2); a >= 1; a-- {
		if n%a != 0 {
			continue
		}
		b := n / a // b >= a
		x, y := b, a
		if gy > gx {
			x, y = a, b
		}
		if x <= gx && y <= gy {
			return x, y, true
		}
		if y <= gx && x <= gy {
			return y, x, true
		}
	}
	return 0, 0, false
}

// rootFloor returns floor(n^(1/k)) exactly, correcting the float round.
func rootFloor(n, k int) int {
	if n < 1 {
		return 0
	}
	pow := func(r int) int {
		p := 1
		for i := 0; i < k; i++ {
			p *= r
		}
		return p
	}
	r := int(math.Round(math.Pow(float64(n), 1/float64(k))))
	for r > 1 && pow(r) > n {
		r--
	}
	for pow(r+1) <= n {
		r++
	}
	return r
}
