package sched

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dump"
)

// Workload is the functional side of a scheduled job: what actually runs
// when the scheduler places it. The scheduler calls Start on first
// placement, Suspend when the job is preempted, Resume on re-placement
// (hosts may differ — that is the point of migration), Migrate when some
// of the job's ranks move to new hosts mid-run because regular users
// reclaimed theirs, and Finish once the job's virtual runtime has
// elapsed.
//
// Checkpoint and Restore are the farm-level durability hooks: Checkpoint
// returns the per-rank dump states the coordinator persists to disk —
// without giving up the placement, so a running job keeps running — and
// Restore hands a freshly rebuilt workload the states loaded back from
// disk, to be consumed by the next Resume. Stateless workloads return
// nil states and ignore Restore.
type Workload interface {
	Start(hosts []*cluster.Host) error
	Suspend() error
	Resume(hosts []*cluster.Host) error
	// Migrate moves ranks[i] to hosts[i] while the rest of the job keeps
	// its placement.
	Migrate(ranks []int, hosts []*cluster.Host) error
	// Resize re-decomposes the running workload onto len(hosts) ranks at
	// a step boundary: shape is the resolved per-axis span assignment of
	// the new lattice and hosts[rank] serves new rank. Called only while
	// the workload is placed; a refusal (filter on, deactivated
	// subregions) must leave it running on its old decomposition.
	Resize(shape decomp.Shape, hosts []*cluster.Host) error
	Finish() error
	// Checkpoint returns the workload's current per-rank states (ordered
	// by rank) for persistence. A suspended workload returns the states
	// it already holds; a running one snapshots without stopping.
	Checkpoint() ([]*dump.State, error)
	// Restore hands back states loaded from a persisted checkpoint; the
	// next Resume (or the pending placement) continues from them.
	Restore(states []*dump.State) error
}

// WorkerBudgeted is implemented by workloads whose solvers accept an
// intra-rank worker-slab budget. The scheduler applies its Workers knob
// through this interface at first placement; the budget then survives
// the workload's own suspend/resume and migration rebuilds.
type WorkerBudgeted interface {
	SetWorkers(n int)
}

// NullWorkload replays scheduling decisions only — no simulation runs.
// Trace replays and policy experiments use it: all metrics come from the
// virtual-time accounting.
type NullWorkload struct{}

func (NullWorkload) Start([]*cluster.Host) error                { return nil }
func (NullWorkload) Suspend() error                             { return nil }
func (NullWorkload) Resume([]*cluster.Host) error               { return nil }
func (NullWorkload) Migrate([]int, []*cluster.Host) error       { return nil }
func (NullWorkload) Resize(decomp.Shape, []*cluster.Host) error { return nil }
func (NullWorkload) Finish() error                              { return nil }
func (NullWorkload) Checkpoint() ([]*dump.State, error)         { return nil, nil }
func (NullWorkload) Restore([]*dump.State) error                { return nil }

// CoreWorkload drives a real core.Job under the scheduler: Start launches
// the workers, Suspend checkpoints every rank through the section-5.1
// migration dump path, Resume rebuilds them from the dumps at the next
// communication epoch, and Finish waits for completion and shuts the job
// down. The dump/rebuild round trip is what makes preemption safe — the
// preempted simulation's results stay bit-identical to an unpreempted
// run.
type CoreWorkload struct {
	Job *core.Job
	// Cluster, when set, records host placements on the job so HostOf
	// works and released hosts are unassigned on suspension.
	Cluster *cluster.Cluster

	states []*dump.State
}

// SetWorkers forwards the intra-rank worker budget to the job, which
// re-applies it across migration and suspend/resume rebuilds. The
// scheduler calls it before Start, never while workers are running.
func (c *CoreWorkload) SetWorkers(n int) {
	if c.Job != nil {
		c.Job.SetWorkers(n)
	}
}

// Start places the job (if a cluster is attached) and launches it.
func (c *CoreWorkload) Start(hosts []*cluster.Host) error {
	if c.Job == nil {
		return fmt.Errorf("sched: CoreWorkload without a Job")
	}
	if c.Cluster != nil {
		if err := c.Job.PlaceOn(c.Cluster, hosts); err != nil {
			return err
		}
	}
	c.Job.Start()
	return nil
}

// Suspend checkpoints the whole job and stops its workers.
func (c *CoreWorkload) Suspend() error {
	states, err := c.Job.Suspend()
	if err != nil {
		return err
	}
	c.states = states
	if c.Cluster != nil {
		c.Job.ReleaseHosts()
	}
	return nil
}

// Resume restarts the job from its checkpoint on the new hosts.
func (c *CoreWorkload) Resume(hosts []*cluster.Host) error {
	if c.states == nil {
		return fmt.Errorf("sched: resume of %d-rank job without a checkpoint", c.Job.P())
	}
	if c.Cluster != nil {
		if err := c.Job.PlaceOn(c.Cluster, hosts); err != nil {
			return err
		}
	}
	err := c.Job.Resume(c.states)
	c.states = nil
	return err
}

// Migrate executes the section-5.1 protocol for just the displaced
// ranks: every process synchronizes, the displaced ones dump and exit,
// and they restart from their dumps at the next communication epoch on
// the new hosts. The rest of the job never leaves its machines, and the
// computation stays bit-identical.
func (c *CoreWorkload) Migrate(ranks []int, hosts []*cluster.Host) error {
	if c.Cluster != nil {
		for i, r := range ranks {
			c.Job.Rehost(r, hosts[i])
		}
	}
	return c.Job.MigrateRanks(ranks, nil)
}

// Resize re-splits the job onto the new lattice at a step boundary and
// records the new placement: hosts[rank] serves new rank. The scheduler
// has already renumbered the cluster-side assignments; PlaceOn only
// refreshes the job's own rank->host bookkeeping (core.Job.Resize
// cleared it — the old map's ranks no longer exist).
func (c *CoreWorkload) Resize(shape decomp.Shape, hosts []*cluster.Host) error {
	if c.Job == nil {
		return fmt.Errorf("sched: CoreWorkload without a Job")
	}
	if err := c.Job.Resize(shape); err != nil {
		return err
	}
	if c.Cluster != nil {
		if err := c.Job.PlaceOn(c.Cluster, hosts); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint returns the job's per-rank dump states for persistence. A
// suspended job hands over the checkpoint it already holds; a running job
// snapshots through core.Job.Snapshot — the full suspend protocol
// followed by an immediate resume on the same hosts, so the job never
// leaves its machines and the results stay bit-identical.
func (c *CoreWorkload) Checkpoint() ([]*dump.State, error) {
	if c.Job == nil {
		return nil, fmt.Errorf("sched: CoreWorkload without a Job")
	}
	if c.states != nil {
		return c.states, nil
	}
	return c.Job.Snapshot()
}

// Restore hands the workload states loaded from a persisted checkpoint.
// The workload must be freshly built (no checkpoint of its own yet); the
// next Resume rebuilds every rank from these states.
func (c *CoreWorkload) Restore(states []*dump.State) error {
	if c.Job == nil {
		return fmt.Errorf("sched: CoreWorkload without a Job")
	}
	if len(states) != c.Job.P() {
		return fmt.Errorf("sched: restoring %d states into a %d-rank job", len(states), c.Job.P())
	}
	if c.states != nil {
		return fmt.Errorf("sched: restore over an existing %d-rank checkpoint", len(c.states))
	}
	c.states = states
	return nil
}

// Finish waits for every rank to complete and shuts the job down.
func (c *CoreWorkload) Finish() error {
	if err := c.Job.WaitDone(); err != nil {
		return err
	}
	c.Job.Shutdown()
	if c.Cluster != nil {
		c.Job.ReleaseHosts()
	}
	return nil
}
