package sched

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/syncfile"
)

// TestSchedulerWorkersBitIdentical: the scheduler's Workers knob reaches
// a placed CoreWorkload before Start, and the parallel-slab run it
// triggers produces a solution bitwise identical to the sequential
// single-threaded reference — through the whole scheduler lifecycle.
func TestSchedulerWorkersBitIdentical(t *testing.T) {
	const steps = 30
	mkCfg := func() *core.Config2D {
		d, err := decomp.New2D(2, 2, 24, 16, decomp.Full)
		if err != nil {
			t.Fatal(err)
		}
		d.PeriodicX = true
		par := fluid.DefaultParams()
		par.Nu = 0.1
		par.Eps = 0.01
		par.ForceX = 1e-5
		return &core.Config2D{
			Method: core.MethodLB,
			Par:    par,
			Mask:   fluid.ChannelMask2D(24, 16),
			D:      d,
		}
	}
	ref, _, err := core.RunSequential2D(mkCfg(), steps)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := syncfile.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sf.Poll = time.Millisecond
	job, progs, err := core.NewJob2D(mkCfg(), core.HubFactory(), sf, steps)
	if err != nil {
		t.Fatal(err)
	}

	pool := idlePool()
	s := New(pool, FIFO, 1)
	s.Workers = 3
	if err := s.Submit(JobSpec{
		ID: "sim", Method: "lb2d", JX: 2, JY: 2, Side: 24, Steps: steps,
	}, &CoreWorkload{Job: job, Cluster: pool}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	got := progs.Gather(steps)
	if ref.NX != got.NX || ref.NY != got.NY {
		t.Fatalf("result shape %dx%d, want %dx%d", got.NX, got.NY, ref.NX, ref.NY)
	}
	for i := range ref.Rho {
		for _, pair := range [][2][]float64{{ref.Rho, got.Rho}, {ref.Vx, got.Vx}, {ref.Vy, got.Vy}} {
			if d := math.Abs(pair[0][i] - pair[1][i]); d != 0 {
				t.Fatalf("scheduler-run solution differs at index %d by %g", i, d)
			}
		}
	}
}
