package sched

// SplitMix is the farm's random source: SplitMix64 (Steele, Lea &
// Flood's mix of a Weyl sequence), a full-period 64-bit generator whose
// entire state is one word. The scheduler uses it for the reservation
// scan's random permutations, and the workload generators
// (farm/workload) use it to draw seeded arrival processes and job
// distributions, because both need the same two properties math/rand's
// default source lacks:
//
//   - The state is serializable. A checkpoint must persist the
//     generator mid-run: State/SetState let Scheduler.Checkpoint write
//     the word into the manifest and Restore resume the exact
//     permutation stream, which is part of what makes a
//     killed-and-restored farm finish bit-identically to an
//     uninterrupted one.
//
//   - Streams are cheaply derivable. Derive splits off an independent
//     deterministic substream per label, so a workload spec's cohorts
//     each draw from their own stream — editing one cohort never
//     shifts another's draws — while the whole generation stays a pure
//     function of (spec, seed).
type SplitMix struct {
	s uint64
}

// NewSplitMix returns a generator seeded with the given word.
func NewSplitMix(seed int64) *SplitMix {
	return &SplitMix{s: uint64(seed)}
}

// Uint64 advances the Weyl sequence and mixes it (rand.Source64).
func (r *SplitMix) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 narrows Uint64 (rand.Source).
func (r *SplitMix) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Seed resets the state (rand.Source).
func (r *SplitMix) Seed(seed int64) {
	r.s = uint64(seed)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *SplitMix) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n); n must be positive.
func (r *SplitMix) Intn(n int) int {
	if n <= 0 {
		panic("sched: SplitMix.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Derive returns an independent generator for the label, deterministic
// in (current state word, label) without advancing the parent. The
// label is folded in FNV-1a style and the result mixed once more, so
// distinct labels land in unrelated regions of the state space.
func (r *SplitMix) Derive(label string) *SplitMix {
	h := r.s ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	d := &SplitMix{s: h}
	d.s = d.Uint64() // decorrelate from the raw hash
	return d
}

// State returns the generator's complete state for a checkpoint manifest.
func (r *SplitMix) State() uint64 { return r.s }

// SetState resumes the generator from a checkpointed state.
func (r *SplitMix) SetState(s uint64) { r.s = s }
