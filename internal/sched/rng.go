package sched

// splitmix is the scheduler's random source for the reservation scan's
// random permutations: SplitMix64 (Steele, Lea & Flood's mix of a Weyl
// sequence), a full-period 64-bit generator whose entire state is one
// word. The farm uses it instead of math/rand's default source because a
// checkpoint must persist the generator mid-run: State/SetState let
// Scheduler.Checkpoint write the word into the manifest and Restore
// resume the exact permutation stream, which is part of what makes a
// killed-and-restored farm finish bit-identically to an uninterrupted
// one.
type splitmix struct {
	s uint64
}

func newSplitmix(seed int64) *splitmix {
	return &splitmix{s: uint64(seed)}
}

// Uint64 advances the Weyl sequence and mixes it (rand.Source64).
func (r *splitmix) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 narrows Uint64 (rand.Source).
func (r *splitmix) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Seed resets the state (rand.Source).
func (r *splitmix) Seed(seed int64) {
	r.s = uint64(seed)
}

// State returns the generator's complete state for a checkpoint manifest.
func (r *splitmix) State() uint64 { return r.s }

// SetState resumes the generator from a checkpointed state.
func (r *splitmix) SetState(s uint64) { r.s = s }
