package sched

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fluid"
	"repro/internal/perf"
	"repro/internal/sched/metrics"
	"repro/internal/syncfile"
)

func idlePool() *cluster.Cluster {
	c := cluster.NewPaperCluster()
	c.Advance(30 * time.Minute)
	return c
}

// farmMix is the deterministic multi-job scenario: eight jobs of mixed
// sizes and priorities arriving over the first minute.
func farmMix() []JobSpec {
	return []JobSpec{
		{ID: "a-wide", Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 2000, Priority: 1, Weight: 2},
		{ID: "b-quad", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 3000, Priority: 1, Weight: 1},
		{ID: "c-probe", Method: "fd2d", JX: 1, JY: 1, Side: 64, Steps: 5000, Priority: 0, Weight: 1},
		{ID: "d-box", Method: "lb3d", JX: 2, JY: 2, JZ: 1, Side: 16, Steps: 800, Priority: 1, Weight: 1,
			Submit: 20 * time.Second},
		{ID: "e-acoustic", Method: "fd2d", JX: 2, JY: 1, Side: 30, Steps: 2000, Priority: 0, Weight: 1,
			Submit: 20 * time.Second},
		{ID: "f-urgent", Method: "lb2d", JX: 4, JY: 4, Side: 20, Steps: 1000, Priority: 9, Weight: 4,
			Submit: 30 * time.Second},
		{ID: "g-grand", Method: "lb2d", JX: 6, JY: 4, Side: 40, Steps: 500, Priority: 5, Weight: 1,
			Submit: 60 * time.Second},
		{ID: "h-tail", Method: "fd2d", JX: 1, JY: 1, Side: 40, Steps: 1000, Priority: 0, Weight: 1,
			Submit: 70 * time.Second},
	}
}

func replayMix(t *testing.T, pol Policy) metrics.Summary {
	t.Helper()
	sum, err := Replay(idlePool(), pol, 42, nil, farmMix())
	if err != nil {
		t.Fatalf("%v replay: %v", pol, err)
	}
	return sum
}

func jobByID(t *testing.T, sum metrics.Summary, id string) metrics.Job {
	t.Helper()
	for _, j := range sum.Jobs {
		if j.ID == id {
			return j
		}
	}
	t.Fatalf("job %s missing from summary", id)
	return metrics.Job{}
}

// TestFarmPoliciesDeterministic replays the mixed workload under each of
// the three policies and asserts the headline metrics: every job
// completes, FIFO and fair never preempt, priority preempts through the
// migration path, backfill fills the gaps, and a repeated run with the
// same seed reproduces the summary exactly.
func TestFarmPoliciesDeterministic(t *testing.T) {
	fifo := replayMix(t, FIFO)
	prio := replayMix(t, Priority)
	fair := replayMix(t, WeightedFair)

	for _, tc := range []struct {
		pol Policy
		sum metrics.Summary
	}{{FIFO, fifo}, {Priority, prio}, {WeightedFair, fair}} {
		if len(tc.sum.Jobs) != 8 {
			t.Fatalf("%v: %d jobs completed, want 8", tc.pol, len(tc.sum.Jobs))
		}
		if tc.sum.Utilization <= 0 || tc.sum.Utilization > 1 {
			t.Errorf("%v: utilization %v out of (0,1]", tc.pol, tc.sum.Utilization)
		}
		if tc.sum.Makespan <= 0 {
			t.Errorf("%v: makespan %v", tc.pol, tc.sum.Makespan)
		}
		if tc.sum.MeanWait <= 0 {
			t.Errorf("%v: mean queue wait %v, want > 0 (the pool oversubscribes)", tc.pol, tc.sum.MeanWait)
		}
	}

	if fifo.Preemptions != 0 || fair.Preemptions != 0 {
		t.Errorf("preemptions: fifo %d fair %d, want 0 (only the priority policy preempts)",
			fifo.Preemptions, fair.Preemptions)
	}
	if prio.Preemptions < 2 {
		t.Errorf("priority preemptions = %d, want >= 2", prio.Preemptions)
	}
	if fifo.Backfills == 0 {
		t.Error("FIFO backfilled nothing despite the blocked wide job")
	}

	// The urgent job jumps the queue under priority scheduling.
	uf, up := jobByID(t, fifo, "f-urgent"), jobByID(t, prio, "f-urgent")
	if up.Wait() != 0 {
		t.Errorf("priority: urgent job waited %v, want immediate preemptive start", up.Wait())
	}
	if uf.Wait() <= up.Wait() {
		t.Errorf("urgent wait fifo %v <= priority %v", uf.Wait(), up.Wait())
	}
	// The first submitted job starts immediately under FIFO.
	if w := jobByID(t, fifo, "a-wide").Wait(); w != 0 {
		t.Errorf("fifo: first job waited %v", w)
	}

	// Determinism: an identical seeded run reproduces every number.
	for _, pol := range []Policy{FIFO, Priority, WeightedFair} {
		a, b := replayMix(t, pol), replayMix(t, pol)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: two seeded replays diverged:\n%v\n%v", pol, a, b)
		}
	}
}

// TestWeightedFairInterleavesTenants: 20-rank jobs serialize on the
// 25-host pool, so the fair policy must alternate tenants by served time
// per unit weight rather than drain one tenant's backlog first.
func TestWeightedFairInterleavesTenants(t *testing.T) {
	mk := func(id, user string, weight float64) JobSpec {
		return JobSpec{ID: id, User: user, Weight: weight,
			Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 500}
	}
	specs := []JobSpec{
		mk("h1", "heavy", 4), mk("h2", "heavy", 4),
		mk("l1", "light", 1), mk("l2", "light", 1),
	}
	sum, err := Replay(idlePool(), WeightedFair, 1, nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	// h1 runs first (all shares zero, tie by ID), charging tenant heavy.
	// Then light's share (0) is least, so l1 jumps h2. After l1, heavy's
	// share per weight (t/4) is below light's (t/1): h2, then l2.
	done := func(id string) time.Duration { return jobByID(t, sum, id).Done }
	if !(done("h1") < done("l1") && done("l1") < done("h2") && done("h2") < done("l2")) {
		t.Errorf("fair completion order wrong: h1 %v l1 %v h2 %v l2 %v",
			done("h1"), done("l1"), done("h2"), done("l2"))
	}
	// FIFO on the same trace drains heavy's backlog first.
	fifo, err := Replay(idlePool(), FIFO, 1, nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	doneF := func(id string) time.Duration { return jobByID(t, fifo, id).Done }
	if !(doneF("h2") < doneF("l1")) {
		t.Errorf("fifo order unexpected: h2 %v l1 %v", doneF("h2"), doneF("l1"))
	}
}

// TestFarmPreemptsRealCoreJob is the acceptance scenario: a real 2D LB
// simulation runs as a low-priority farm job, a high-priority burst
// arrives needing almost the whole pool, the scheduler suspends the
// simulation through the section-5.1 dump path, runs the burst, resumes
// the simulation from its checkpoint — and the finished simulation is
// bit-identical to an undisturbed run.
func TestFarmPreemptsRealCoreJob(t *testing.T) {
	const steps = 40
	mkCfg := func() *core.Config2D {
		d, err := decomp.New2D(2, 2, 24, 16, decomp.Full)
		if err != nil {
			t.Fatal(err)
		}
		d.PeriodicX = true
		par := fluid.DefaultParams()
		par.Nu = 0.1
		par.Eps = 0.01
		par.ForceX = 1e-5
		return &core.Config2D{
			Method: core.MethodLB,
			Par:    par,
			Mask:   fluid.ChannelMask2D(24, 16),
			D:      d,
		}
	}
	ref, _, err := core.RunSequential2D(mkCfg(), steps)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := syncfile.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sf.Poll = time.Millisecond
	job, progs, err := core.NewJob2D(mkCfg(), core.HubFactory(), sf, steps)
	if err != nil {
		t.Fatal(err)
	}

	pool := idlePool()
	s := New(pool, Priority, 42)
	// The sim job: 4 ranks, low priority, long virtual runtime (the Side
	// inflates the virtual workload so the burst arrives mid-run).
	err = s.Submit(JobSpec{
		ID: "sim", Method: "lb2d", JX: 2, JY: 2, Side: 1000, Steps: steps, Priority: 0,
	}, &CoreWorkload{Job: job, Cluster: pool})
	if err != nil {
		t.Fatal(err)
	}
	// The burst: 22 ranks at t = 5 virtual minutes. 21 hosts are free, so
	// the scheduler must preempt the sim.
	err = s.Submit(JobSpec{
		ID: "burst", Method: "lb2d", JX: 11, JY: 2, Side: 40, Steps: 100, Priority: 9,
		Submit: 5 * time.Minute,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	s.Close()
	sum, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Preemptions != 1 {
		t.Errorf("preemptions = %d, want exactly 1 (the sim)", sum.Preemptions)
	}
	sim := jobByID(t, sum, "sim")
	if sim.Preemptions != 1 {
		t.Errorf("sim preempted %d times, want 1", sim.Preemptions)
	}
	if w := jobByID(t, sum, "burst").Wait(); w != 0 {
		t.Errorf("burst waited %v, want preemptive immediate start", w)
	}
	if job.Epoch() != 1 {
		t.Errorf("job epoch = %d, want 1 after one suspend/resume", job.Epoch())
	}

	got := progs.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Vx[i] != got.Vx[i] || ref.Vy[i] != got.Vy[i] {
			t.Fatalf("preempted simulation differs from reference at node %d", i)
		}
	}
}

// TestPreemptSkipsUserBusyVictims: suspending a job whose hosts regular
// users have since reclaimed frees no reservable capacity, so the
// scheduler must not checkpoint it for nothing when that capacity cannot
// unblock the head.
func TestPreemptSkipsUserBusyVictims(t *testing.T) {
	pool := idlePool()
	s := New(pool, Priority, 1)
	if err := s.Submit(JobSpec{
		ID: "victim", Method: "lb2d", JX: 2, JY: 2, Side: 1000, Steps: 10000, Priority: 0,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{
		ID: "head", Method: "lb2d", JX: 11, JY: 2, Side: 40, Steps: 100, Priority: 9,
		Submit: 30 * time.Minute,
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Drive the rounds by hand so user activity can land mid-run.
	s.admit(0)
	if err := s.scheduleRound(0); err != nil {
		t.Fatal(err)
	}
	if len(s.running) != 1 || s.running[0].spec.ID != "victim" {
		t.Fatalf("victim not placed: %v running", len(s.running))
	}
	victim := s.running[0]
	// Regular users reclaim every one of the victim's hosts...
	for _, h := range victim.res.Hosts {
		h.StartJob()
	}
	pool.Advance(30 * time.Minute) // ...and their load climbs past 0.6.

	// The head needs 22 ranks; 21 hosts are free. Suspending the victim
	// would free only user-busy hosts, so nothing may be preempted.
	s.admit(30 * time.Minute)
	if err := s.scheduleRound(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if victim.preempts != 0 {
		t.Errorf("victim checkpointed %d times despite freeing no capacity", victim.preempts)
	}
	if len(s.running) != 1 || s.running[0] != victim {
		t.Errorf("victim no longer running after futile preemption attempt")
	}
	if len(s.queue) != 1 || s.queue[0].spec.ID != "head" {
		t.Errorf("head should still be queued")
	}
}

// TestPerfTimerAddsCommunication: the perf-plane estimate includes the
// network, so it prices a step at or above the compute-only bound.
func TestPerfTimerAddsCommunication(t *testing.T) {
	spec := JobSpec{ID: "x", Method: "lb2d", JX: 4, JY: 4, Side: 40, Steps: 1}
	hosts := perf.PaperHosts(spec.Ranks())
	compute, err := ComputeTimer(spec, decomp.Shape{}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	withNet, err := PerfTimer(perf.Ethernet)(spec, decomp.Shape{}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if withNet < compute {
		t.Errorf("perf step %v < compute-only %v", withNet, compute)
	}
	if withNet > 10*compute {
		t.Errorf("perf step %v implausibly above compute %v", withNet, compute)
	}
	// 3D too, exercising the Build3D path.
	spec3 := JobSpec{ID: "y", Method: "lb3d", JX: 2, JY: 2, JZ: 2, Side: 16, Steps: 1}
	if _, err := PerfTimer(perf.Ethernet)(spec3, decomp.Shape{}, perf.PaperHosts(spec3.Ranks())); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedJobRejectedAtSubmit: a job larger than the pool can
// never run, so Submit refuses it with ErrNoCapacity instead of letting
// the farm stall on it later.
func TestOversizedJobRejectedAtSubmit(t *testing.T) {
	s := New(idlePool(), FIFO, 1)
	err := s.Submit(JobSpec{ID: "huge", Method: "lb2d", JX: 6, JY: 5, Side: 10, Steps: 10}, nil)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("30-rank job on a 25-host pool: err = %v, want ErrNoCapacity", err)
	}
	// Replay surfaces the same typed rejection.
	if _, err := Replay(idlePool(), FIFO, 1, nil,
		[]JobSpec{{ID: "huge", Method: "lb2d", JX: 6, JY: 5, Side: 10, Steps: 10}}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("replay of an oversized job: err = %v, want ErrNoCapacity", err)
	}
}

// TestStalledFarmReportsError: a queued job blocked on host conditions
// (not capacity) trips the stall detector after a simulated week
// instead of spinning forever — the Run-loop branch the submit-time
// capacity check no longer reaches.
func TestStalledFarmReportsError(t *testing.T) {
	pool := idlePool()
	for _, h := range pool.Hosts {
		pool.Reclaim(h) // every user present: nothing is reservable, ever
	}
	s := New(pool, FIFO, 1)
	if err := s.Submit(JobSpec{ID: "blocked", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "stalled for a simulated week") {
		t.Fatalf("fully reclaimed pool: err = %v, want the week-long-stall report", err)
	}
}

// TestSubmitTypedErrors: every rejection class is a sentinel checkable
// with errors.Is — invalid specs, duplicate IDs, capacity, closed farm.
func TestSubmitTypedErrors(t *testing.T) {
	s := New(idlePool(), FIFO, 1)
	ok := JobSpec{ID: "x", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}
	if err := s.Submit(ok, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(ok, nil); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate ID: err = %v, want ErrDuplicateID", err)
	}
	if err := s.Submit(JobSpec{ID: "bad", Method: "nope", JX: 1, JY: 1, Side: 4, Steps: 1}, nil); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("invalid spec: err = %v, want ErrInvalidSpec", err)
	}
	if err := (JobSpec{ID: "neg", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1, Submit: -1}).Validate(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Validate: err = %v, want ErrInvalidSpec", err)
	}
	s.Close()
	if err := s.Submit(JobSpec{ID: "late", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close: err = %v, want ErrClosed", err)
	}
}

// TestSubmitValidation covers the spec checks and duplicate IDs.
func TestSubmitValidation(t *testing.T) {
	s := New(idlePool(), FIFO, 1)
	bad := []JobSpec{
		{},
		{ID: "x", Method: "nope", JX: 1, JY: 1, Side: 4, Steps: 1},
		{ID: "x", Method: "lb3d", JX: 1, JY: 1, Side: 4, Steps: 1},             // 3D needs JZ
		{ID: "x", Method: "lb2d", JX: 1, JY: 1, JZ: 2, Side: 4, Steps: 1},      // 2D with JZ
		{ID: "x", Method: "lb2d", JX: 0, JY: 1, Side: 4, Steps: 1},             // bad decomp
		{ID: "x", Method: "lb2d", JX: 1, JY: 1, Side: 0, Steps: 1},             // bad side
		{ID: "x", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 0},             // bad steps
		{ID: "x", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1, Submit: -1}, // negative arrival
		{ID: "a/b", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1},           // ID with path separator
		{ID: `a\b`, Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1},           // ID with path separator
		{ID: "..", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1},            // ID escaping the ckpt dir
	}
	for i, sp := range bad {
		if err := s.Submit(sp, nil); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("bad spec %d: err = %v, want ErrInvalidSpec (%+v)", i, err, sp)
		}
	}
	ok := JobSpec{ID: "x", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1}
	if err := s.Submit(ok, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(ok, nil); err == nil {
		t.Error("duplicate ID accepted")
	}
}

// TestPolicyNames round-trips the policy names the farm experiment uses.
func TestPolicyNames(t *testing.T) {
	for _, pol := range []Policy{FIFO, Priority, WeightedFair} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestSpecWorkload sanity-checks the spec arithmetic.
func TestSpecWorkload(t *testing.T) {
	s2 := JobSpec{ID: "a", Method: "lb2d", JX: 3, JY: 2, Side: 10, Steps: 1}
	if s2.Ranks() != 6 || s2.NodesPerRank() != 100 || s2.Is3D() {
		t.Errorf("2D spec arithmetic: ranks %d nodes %d 3d %v", s2.Ranks(), s2.NodesPerRank(), s2.Is3D())
	}
	s3 := JobSpec{ID: "b", Method: "fd3d", JX: 2, JY: 2, JZ: 3, Side: 4, Steps: 1}
	if s3.Ranks() != 12 || s3.NodesPerRank() != 64 || !s3.Is3D() {
		t.Errorf("3D spec arithmetic: ranks %d nodes %d 3d %v", s3.Ranks(), s3.NodesPerRank(), s3.Is3D())
	}
}

// TestComputeTimerHeterogeneous: under the uniform (zero) shape the step
// runs at the slowest rank's pace.
func TestComputeTimerHeterogeneous(t *testing.T) {
	spec := JobSpec{ID: "a", Method: "lb2d", JX: 2, JY: 1, Side: 10, Steps: 1}
	hosts := []*cluster.Host{
		cluster.NewHost("fast", cluster.HP715),
		cluster.NewHost("slow", cluster.HP710),
	}
	sec, err := ComputeTimer(spec, decomp.Shape{}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 / hosts[1].Speed("lb2d")
	if math.Abs(sec-want) > 1e-12 {
		t.Errorf("step = %v, want the 710's pace %v", sec, want)
	}
}
