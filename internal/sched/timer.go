package sched

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/netsim"
	"repro/internal/perf"
)

// StepTimer estimates the wall-clock seconds one integration step of a
// job takes on a given placement. The scheduler calls it at every
// (re)placement, so heterogeneous hosts and changed placements after a
// preemption are priced correctly.
type StepTimer func(spec JobSpec, hosts []*cluster.Host) (float64, error)

// ComputeTimer is the communication-free estimate: the parallel step runs
// at the pace of the slowest rank's local compute, NodesPerRank divided
// by the host's speed-table rate.
func ComputeTimer(spec JobSpec, hosts []*cluster.Host) (float64, error) {
	if len(hosts) < spec.Ranks() {
		return 0, fmt.Errorf("sched: %d hosts for %d ranks of %s", len(hosts), spec.Ranks(), spec.ID)
	}
	nodes := float64(spec.NodesPerRank())
	worst := 0.0
	for i := 0; i < spec.Ranks(); i++ {
		if t := nodes / hosts[i].Speed(spec.Method); t > worst {
			worst = t
		}
	}
	return worst, nil
}

// PerfTimer bridges the scheduler to the performance plane: the returned
// StepTimer builds the job's decomposition, derives its per-step
// halo-exchange pattern (message counts and sizes per section 6), and
// replays it through the perf discrete-event engine over a fresh netFn()
// network — so a job's virtual runtime includes the communication and
// pipeline effects the compute-only estimate ignores. Each estimate gets
// its own network instance; cross-job contention on one shared bus is an
// open item (see ROADMAP.md).
func PerfTimer(netFn func() netsim.Network) StepTimer {
	return func(spec JobSpec, hosts []*cluster.Host) (float64, error) {
		if len(hosts) < spec.Ranks() {
			return 0, fmt.Errorf("sched: %d hosts for %d ranks of %s", len(hosts), spec.Ranks(), spec.ID)
		}
		var workers []perf.WorkerSpec
		if spec.Is3D() {
			d, err := decomp.New3D(spec.JX, spec.JY, spec.JZ,
				spec.Side*spec.JX, spec.Side*spec.JY, spec.Side*spec.JZ)
			if err != nil {
				return 0, err
			}
			workers, err = perf.Build3D(d, spec.Method, hosts)
			if err != nil {
				return 0, err
			}
		} else {
			stencil := decomp.Star
			if spec.Method == perf.LB2D {
				stencil = decomp.Full
			}
			d, err := decomp.New2D(spec.JX, spec.JY,
				spec.Side*spec.JX, spec.Side*spec.JY, stencil)
			if err != nil {
				return 0, err
			}
			workers, err = perf.Build2D(d, spec.Method, hosts)
			if err != nil {
				return 0, err
			}
		}
		sec, _, err := perf.Measure(workers, netFn(), 0)
		return sec, err
	}
}
