package sched

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/netsim"
	"repro/internal/perf"
)

// StepTimer estimates the wall-clock seconds one integration step of a
// job takes on a given placement. The shape is the job's per-axis span
// assignment — speed-weighted for heterogeneous placements, zero for
// "uniform" — fixed at the job's first placement and preserved across
// suspensions and migrations (the rank dumps only fit one geometry).
// The scheduler calls the timer at every (re)placement and migration, so
// heterogeneous hosts and changed placements after a preemption are
// priced correctly against the job's actual per-rank loads.
type StepTimer func(spec JobSpec, shape decomp.Shape, hosts []*cluster.Host) (float64, error)

// shapeOrUniform resolves a zero shape to the spec's uniform shape and
// validates a non-zero one against the spec's lattice and grid.
func shapeOrUniform(spec JobSpec, shape decomp.Shape) (decomp.Shape, error) {
	if shape.IsZero() {
		return UniformShape(spec), nil
	}
	jz := spec.JZ
	if !spec.Is3D() {
		jz = 0
	}
	gx, gy, gz := spec.Grid()
	if err := shape.Check(spec.JX, spec.JY, jz, gx, gy, gz); err != nil {
		return decomp.Shape{}, fmt.Errorf("sched: job %s: %w", spec.ID, err)
	}
	return shape, nil
}

// UniformShape returns the spec's uniform (equal-spans) shape, the
// degenerate case every job priced before speed weighting used.
func UniformShape(spec JobSpec) decomp.Shape {
	gx, gy, gz := spec.Grid()
	if spec.Is3D() {
		return decomp.UniformShape3D(spec.JX, spec.JY, spec.JZ, gx, gy, gz)
	}
	return decomp.UniformShape2D(spec.JX, spec.JY, gx, gy)
}

// WeightedShape returns the spec's speed-weighted shape for a placement:
// hosts[rank] serves rank, and each subregion's spans are sized
// proportionally to its host's speed (per-axis marginals). Equal speeds
// reproduce UniformShape bit for bit.
func WeightedShape(spec JobSpec, hosts []*cluster.Host) (decomp.Shape, error) {
	if len(hosts) < spec.Ranks() {
		return decomp.Shape{}, fmt.Errorf("sched: %d hosts for %d ranks of %s", len(hosts), spec.Ranks(), spec.ID)
	}
	speed := make([]float64, spec.Ranks())
	for i := range speed {
		speed[i] = hosts[i].Speed(spec.Method)
	}
	gx, gy, gz := spec.Grid()
	if spec.Is3D() {
		return decomp.WeightedShape3D(spec.JX, spec.JY, spec.JZ, gx, gy, gz, speed)
	}
	return decomp.WeightedShape2D(spec.JX, spec.JY, gx, gy, speed)
}

// forEachRank walks the spec's lattice in rank order (row-major, planes
// outermost) yielding each rank's node count under the shape.
func forEachRank(spec JobSpec, shape decomp.Shape, f func(rank, nodes int)) {
	jz := spec.JZ
	if jz < 1 {
		jz = 1
	}
	rank := 0
	for k := 0; k < jz; k++ {
		for j := 0; j < spec.JY; j++ {
			for i := 0; i < spec.JX; i++ {
				f(rank, shape.Nodes(i, j, k))
				rank++
			}
		}
	}
}

// ComputeTimer is the communication-free estimate: the parallel step
// runs at the pace of the slowest rank's local compute, each rank's node
// count under the shape divided by its host's speed-table rate. With a
// zero (uniform) shape every rank integrates NodesPerRank nodes and the
// step is priced at the slowest host's pace — the pre-weighting
// behaviour; a speed-weighted shape balances the per-rank loads so mixed
// pools stop paying the worst-host penalty.
func ComputeTimer(spec JobSpec, shape decomp.Shape, hosts []*cluster.Host) (float64, error) {
	if len(hosts) < spec.Ranks() {
		return 0, fmt.Errorf("sched: %d hosts for %d ranks of %s", len(hosts), spec.Ranks(), spec.ID)
	}
	sh, err := shapeOrUniform(spec, shape)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	forEachRank(spec, sh, func(rank, nodes int) {
		if t := float64(nodes) / hosts[rank].Speed(spec.Method); t > worst {
			worst = t
		}
	})
	return worst, nil
}

// Imbalance returns the placement's load-imbalance ratio: the slowest
// rank's compute time over the ideal perfectly balanced time (total
// nodes spread over the hosts' aggregate speed). 1.0 is perfect balance;
// a uniform split of a mixed-model pool sits strictly above it. The
// scheduler records the ratio per job and sched/metrics aggregates it.
func Imbalance(spec JobSpec, shape decomp.Shape, hosts []*cluster.Host) (float64, error) {
	if len(hosts) < spec.Ranks() {
		return 0, fmt.Errorf("sched: %d hosts for %d ranks of %s", len(hosts), spec.Ranks(), spec.ID)
	}
	sh, err := shapeOrUniform(spec, shape)
	if err != nil {
		return 0, err
	}
	worst, total, speed := 0.0, 0, 0.0
	forEachRank(spec, sh, func(rank, nodes int) {
		if t := float64(nodes) / hosts[rank].Speed(spec.Method); t > worst {
			worst = t
		}
		total += nodes
	})
	for i := 0; i < spec.Ranks(); i++ {
		speed += hosts[i].Speed(spec.Method)
	}
	ideal := float64(total) / speed
	if ideal <= 0 {
		return 0, fmt.Errorf("sched: job %s: degenerate placement (no nodes or no speed)", spec.ID)
	}
	return worst / ideal, nil
}

// PerfTimer bridges the scheduler to the performance plane: the returned
// StepTimer builds the job's decomposition (shaped, when the scheduler
// chose a weighted shape), derives its per-step halo-exchange pattern
// (message counts and sizes per section 6), and replays it through the
// perf discrete-event engine over a fresh netFn() network — so a job's
// virtual runtime includes the communication and pipeline effects the
// compute-only estimate ignores. Each estimate gets its own network
// instance; cross-job contention on one shared bus is an open item (see
// ROADMAP.md).
func PerfTimer(netFn func() netsim.Network) StepTimer {
	return func(spec JobSpec, shape decomp.Shape, hosts []*cluster.Host) (float64, error) {
		if len(hosts) < spec.Ranks() {
			return 0, fmt.Errorf("sched: %d hosts for %d ranks of %s", len(hosts), spec.Ranks(), spec.ID)
		}
		sh, err := shapeOrUniform(spec, shape)
		if err != nil {
			return 0, err
		}
		var workers []perf.WorkerSpec
		if spec.Is3D() {
			d, err := decomp.New3DShaped(sh)
			if err != nil {
				return 0, err
			}
			workers, err = perf.Build3D(d, spec.Method, hosts)
			if err != nil {
				return 0, err
			}
		} else {
			stencil := decomp.Star
			if spec.Method == perf.LB2D {
				stencil = decomp.Full
			}
			d, err := decomp.New2DShaped(sh, stencil)
			if err != nil {
				return 0, err
			}
			workers, err = perf.Build2D(d, spec.Method, hosts)
			if err != nil {
				return 0, err
			}
		}
		sec, _, err := perf.Measure(workers, netFn(), 0)
		return sec, err
	}
}
