package sched

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dump"
	"repro/internal/fluid"
	"repro/internal/sched/metrics"
	"repro/internal/syncfile"
)

// simConfig is the small 2D LB channel the checkpoint tests run as a
// real workload (the same shape the preemption and reclaim tests use).
func simConfig(t *testing.T, jx, jy int) *core.Config2D {
	t.Helper()
	nx, ny := 12*jx, 8*jy
	d, err := decomp.New2D(jx, jy, nx, ny, decomp.Full)
	if err != nil {
		t.Fatal(err)
	}
	d.PeriodicX = true
	par := fluid.DefaultParams()
	par.Nu = 0.1
	par.Eps = 0.01
	par.ForceX = 1e-5
	return &core.Config2D{
		Method: core.MethodLB,
		Par:    par,
		Mask:   fluid.ChannelMask2D(nx, ny),
		D:      d,
	}
}

func newSimJob(t *testing.T, cfg *core.Config2D, steps int) (*core.Job, *core.JobPrograms2D) {
	t.Helper()
	sf, err := syncfile.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sf.Poll = time.Millisecond
	job, progs, err := core.NewJob2D(cfg, core.HubFactory(), sf, steps)
	if err != nil {
		t.Fatal(err)
	}
	return job, progs
}

// TestKillAndRestoreBitIdentical is the subsystem's acceptance scenario.
// A farm runs a real 2D LB simulation (high priority, placed by
// preempting a wide background job, which sits suspended in the queue)
// under a scenario tick grid. Five virtual minutes in, the coordinator
// checkpoints the whole farm to disk — the running simulation through
// the suspend-and-resume snapshot, without evicting it — and is then
// killed. A fresh scheduler restored from the directory, with the
// simulation rebuilt through the workload registry, finishes the farm;
// its metrics summary is bit-identical to an uninterrupted run's, and
// the simulation's final fields are bit-identical to a sequential
// reference.
func TestKillAndRestoreBitIdentical(t *testing.T) {
	const steps = 40
	specs := []JobSpec{
		{ID: "bg", Method: "lb2d", JX: 8, JY: 3, Side: 200, Steps: 2000, Priority: 0},
		{ID: "sim", Method: "lb2d", JX: 2, JY: 2, Side: 1000, Steps: steps, Priority: 9,
			Submit: 2 * time.Minute},
	}
	ref, _, err := core.RunSequential2D(simConfig(t, 2, 2), steps)
	if err != nil {
		t.Fatal(err)
	}

	// Reference farm run: no checkpoint, but the same scenario tick grid
	// (virtual-time advances must visit the same instants for the load
	// averages to evolve bit-identically).
	runRef := func() metrics.Summary {
		t.Helper()
		s := New(idlePool(), Priority, 42)
		s.ScenarioEvery = time.Minute
		s.Scenario = func(time.Duration, *cluster.Cluster) {}
		for _, sp := range specs {
			if err := s.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		sum, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	want := runRef()
	bg := jobByID(t, want, "bg")
	if bg.Preemptions != 1 {
		t.Fatalf("bg preempted %d times, want 1 (the checkpoint must see it suspended)", bg.Preemptions)
	}

	// The doomed coordinator: same trace, real simulation attached, a
	// checkpoint at t=5m followed by a "crash".
	dir := t.TempDir()
	pool1 := idlePool()
	s1 := New(pool1, Priority, 42)
	job1, _ := newSimJob(t, simConfig(t, 2, 2), steps)
	s1.ScenarioEvery = time.Minute
	crashed := false
	s1.Scenario = func(vt time.Duration, _ *cluster.Cluster) {
		if vt < 5*time.Minute || crashed {
			return
		}
		crashed = true
		if err := s1.Checkpoint(dir); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		s1.Interrupt()
	}
	if err := s1.Submit(specs[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := s1.Submit(specs[1], &CoreWorkload{Job: job1, Cluster: pool1}); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if _, err := s1.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("crashed run returned %v, want ErrInterrupted", err)
	}
	if !crashed {
		t.Fatal("scenario never checkpointed; the farm drained before 5 virtual minutes")
	}

	// The manifest must show the mid-storm shape: sim running with rank
	// states on disk, bg suspended in the queue.
	m, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]string{}
	for _, jr := range m.Jobs {
		phases[jr.ID] = jr.Phase
		if jr.ID == "sim" {
			if len(jr.StateSteps) != 4 {
				t.Errorf("sim checkpointed %d rank states, want 4", len(jr.StateSteps))
			}
			if len(jr.Hosts) != 4 {
				t.Errorf("sim placement records %d hosts, want 4", len(jr.Hosts))
			}
		}
	}
	if phases["sim"] != ckpt.PhaseRunning || phases["bg"] != ckpt.PhaseQueued {
		t.Fatalf("checkpoint phases %v, want sim running and bg queued", phases)
	}

	// Restore into a fresh pool and a fresh core job, discard the dead
	// coordinator, and finish the farm.
	pool2 := cluster.NewPaperCluster()
	var progs2 *core.JobPrograms2D
	reg := WorkloadRegistry{
		"sim": func(spec JobSpec) (Workload, error) {
			job2, p2 := newSimJob(t, simConfig(t, spec.JX, spec.JY), spec.Steps)
			progs2 = p2
			return &CoreWorkload{Job: job2, Cluster: pool2}, nil
		},
	}
	s2, err := Restore(dir, pool2, reg)
	if err != nil {
		t.Fatal(err)
	}
	s2.ScenarioEvery = time.Minute
	s2.Scenario = func(time.Duration, *cluster.Cluster) {}
	got, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored run's summary differs from the uninterrupted run:\nwant %v\ngot  %v", want, got)
	}
	if progs2 == nil {
		t.Fatal("workload registry never invoked")
	}
	final := progs2.Gather(steps)
	for i := range ref.Rho {
		if ref.Rho[i] != final.Rho[i] || ref.Vx[i] != final.Vx[i] || ref.Vy[i] != final.Vy[i] {
			t.Fatalf("restored simulation differs from reference at node %d", i)
		}
	}
}

// TestAutoCheckpointRestore: the event loop's periodic checkpoint
// (CheckpointEvery) is enough to survive a crash at an arbitrary later
// instant — restoring from the last auto-save and replaying the tail
// reproduces the uninterrupted run's summary bit-exactly. The reference
// run auto-checkpoints too (into a scratch directory): checkpoints are
// virtually side-effect-free, but they pin the same advance grid.
func TestAutoCheckpointRestore(t *testing.T) {
	specs := []JobSpec{
		{ID: "a-wide", Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 9000},
		{ID: "b-quad", Method: "lb2d", JX: 2, JY: 2, Side: 40, Steps: 12000},
		{ID: "c-late", Method: "fd2d", JX: 3, JY: 2, Side: 30, Steps: 9000,
			Submit: 10 * time.Minute},
	}
	run := func(dir string, crashAt time.Duration) (metrics.Summary, *Scheduler, error) {
		t.Helper()
		s := New(idlePool(), FIFO, 7)
		s.CheckpointEvery = 2 * time.Minute
		s.CheckpointDir = dir
		s.ScenarioEvery = time.Minute
		crashed := false
		s.Scenario = func(vt time.Duration, _ *cluster.Cluster) {
			if crashAt > 0 && vt >= crashAt && !crashed {
				crashed = true
				s.Interrupt()
			}
		}
		for _, sp := range specs {
			if err := s.Submit(sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		sum, err := s.Run()
		return sum, s, err
	}

	want, _, err := run(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if _, _, err := run(dir, 5*time.Minute); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("crashed run returned %v, want ErrInterrupted", err)
	}
	m, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.SavedAt != 4*time.Minute {
		t.Errorf("last auto-checkpoint at %v, want 4m", m.SavedAt)
	}
	// Superseded save generations are pruned: at most the committed one
	// remains (none here — null workloads have no rank states).
	if gens, _ := filepath.Glob(filepath.Join(dir, "states-*")); len(gens) > 1 {
		t.Errorf("%d save generations on disk after pruning: %v", len(gens), gens)
	}
	// The late arrival must have been captured as still pending.
	for _, jr := range m.Jobs {
		if jr.ID == "c-late" && jr.Phase != ckpt.PhasePending {
			t.Errorf("c-late checkpointed as %s, want pending", jr.Phase)
		}
	}

	s2, err := Restore(dir, cluster.NewPaperCluster(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s2.CheckpointEvery = 2 * time.Minute
	s2.CheckpointDir = t.TempDir()
	s2.ScenarioEvery = time.Minute
	s2.Scenario = func(time.Duration, *cluster.Cluster) {}
	got, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored run's summary differs:\nwant %v\ngot  %v", want, got)
	}
}

// copyTree duplicates a checkpoint directory so corruption subtests can
// each maul their own copy.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsCorruptCheckpoints takes one real checkpoint (a
// 2-rank simulation running) and mauls copies of it: every corruption —
// missing manifest, missing or surplus rank dumps, states disagreeing
// with the manifest, a wrongly shaped pool, a missing workload factory —
// must be rejected with an error naming the problem, never restored into
// a wrong farm.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	const steps = 30
	dir := t.TempDir()
	pool := idlePool()
	s := New(pool, FIFO, 3)
	job, _ := newSimJob(t, simConfig(t, 2, 1), steps)
	done := false
	s.ScenarioEvery = time.Minute
	s.Scenario = func(vt time.Duration, _ *cluster.Cluster) {
		if vt < 2*time.Minute || done {
			return
		}
		done = true
		if err := s.Checkpoint(dir); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		s.Interrupt()
	}
	if err := s.Submit(JobSpec{
		ID: "sim", Method: "lb2d", JX: 2, JY: 1, Side: 1000, Steps: steps,
	}, &CoreWorkload{Job: job, Cluster: pool}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("run returned %v, want ErrInterrupted", err)
	}

	reg := WorkloadRegistry{
		"sim": func(spec JobSpec) (Workload, error) {
			job2, _ := newSimJob(t, simConfig(t, spec.JX, spec.JY), spec.Steps)
			return &CoreWorkload{Job: job2}, nil
		},
	}
	restore := func(dir string, c *cluster.Cluster, reg WorkloadRegistry) error {
		t.Helper()
		_, err := Restore(dir, c, reg)
		return err
	}

	if err := restore(t.TempDir(), cluster.NewPaperCluster(), reg); err == nil ||
		!strings.Contains(err.Error(), "no checkpoint manifest") {
		t.Errorf("empty dir: %v", err)
	}

	maul := func(name string, corrupt func(copy string), want string) {
		t.Helper()
		cp := t.TempDir()
		copyTree(t, dir, cp)
		corrupt(cp)
		err := restore(cp, cluster.NewPaperCluster(), reg)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error %v does not mention %q", name, err, want)
		}
	}

	simDir := func(cp string) string {
		t.Helper()
		m, err := ckpt.Load(cp)
		if err != nil {
			t.Fatal(err)
		}
		return ckpt.JobDir(cp, m.StatesDir, "sim")
	}
	maul("missing rank dump", func(cp string) {
		os.Remove(dump.Path(simDir(cp), 1))
	}, "ranks [1] missing")

	maul("surplus rank dump", func(cp string) {
		jd := simDir(cp)
		data, err := os.ReadFile(dump.Path(jd, 0))
		if err != nil {
			t.Fatal(err)
		}
		os.WriteFile(dump.Path(jd, 2), data, 0o644)
	}, "3 rank dumps, expected 2")

	maul("torn state", func(cp string) {
		m, err := ckpt.Load(cp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m.Jobs {
			if m.Jobs[i].ID == "sim" {
				m.Jobs[i].StateSteps[1]++
			}
		}
		if err := ckpt.Save(cp, m); err != nil {
			t.Fatal(err)
		}
	}, "torn checkpoint")

	maul("garbage manifest", func(cp string) {
		os.WriteFile(ckpt.ManifestPath(cp), []byte("not json"), 0o644)
	}, "decode manifest")

	if err := restore(dir, &cluster.Cluster{Hosts: []*cluster.Host{cluster.NewHost("solo", cluster.HP715)}}, reg); err == nil ||
		!strings.Contains(err.Error(), "pool has 1") {
		t.Errorf("wrong pool shape: %v", err)
	}

	if err := restore(dir, cluster.NewPaperCluster(), nil); err == nil ||
		!strings.Contains(err.Error(), "no workload factory") {
		t.Errorf("missing factory: %v", err)
	}
}

// TestCloseAfterFailedRunIdempotent: a Run that dies mid-flight leaves
// the placed jobs holding their reservations; Close must hand every host
// back, and a second Close must be a harmless no-op (no double release,
// no panic) — the regression the restore path depends on when a crashed
// coordinator's scheduler is torn down before being replaced.
func TestCloseAfterFailedRunIdempotent(t *testing.T) {
	pool := idlePool()
	s := New(pool, FIFO, 1)
	s.ScenarioEvery = time.Minute
	fired := false
	s.Scenario = func(vt time.Duration, _ *cluster.Cluster) {
		if !fired {
			fired = true
			s.Interrupt()
		}
	}
	if err := s.Submit(JobSpec{
		ID: "x", Method: "lb2d", JX: 3, JY: 2, Side: 200, Steps: 5000,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("run returned %v, want ErrInterrupted", err)
	}

	assigned := 0
	for _, h := range pool.Hosts {
		if h.Assigned() >= 0 {
			assigned++
		}
	}
	if assigned != 6 {
		t.Fatalf("%d hosts assigned after the failed run, want 6 still held", assigned)
	}

	s.Close()
	for _, h := range pool.Hosts {
		if h.Assigned() >= 0 {
			t.Fatalf("host %s still assigned after Close", h.Name)
		}
	}
	// Re-entry: nothing to release, nothing to panic on, and the pool is
	// safe even if another job has since claimed the hosts.
	if _, err := pool.Reserve("other", 6, cluster.DefaultPolicy(), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	reserved := 0
	for _, h := range pool.Hosts {
		if h.Assigned() >= 0 {
			reserved++
		}
	}
	if reserved != 6 {
		t.Errorf("double Close disturbed another owner's reservation: %d hosts held, want 6", reserved)
	}
	if err := s.Submit(JobSpec{
		ID: "late", Method: "lb2d", JX: 1, JY: 1, Side: 4, Steps: 1,
	}, nil); err == nil {
		t.Error("Submit accepted after Close")
	}
}

// TestWeightedFairServiceRatio is the creditService/fairShare coverage:
// two tenants with 3:1 weights submitting identical serializing jobs
// receive service in exactly that ratio along the completion order, and
// the per-tenant credit equals the served time of the tenant's jobs.
func TestWeightedFairServiceRatio(t *testing.T) {
	var specs []JobSpec
	mk := func(id, user string, w float64) JobSpec {
		return JobSpec{ID: id, User: user, Weight: w,
			Method: "lb2d", JX: 5, JY: 4, Side: 40, Steps: 600}
	}
	for i := 0; i < 8; i++ {
		specs = append(specs, mk("h"+string(rune('1'+i)), "heavy", 3))
		specs = append(specs, mk("l"+string(rune('1'+i)), "light", 1))
	}
	s := New(idlePool(), WeightedFair, 11)
	for _, sp := range specs {
		if err := s.Submit(sp, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	sum, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Jobs) != 16 {
		t.Fatalf("%d jobs finished, want 16", len(sum.Jobs))
	}

	// 20-rank jobs serialize on the 25-host pool: order by completion.
	order := append([]metrics.Job(nil), sum.Jobs...)
	sort.Slice(order, func(i, j int) bool { return order[i].Done < order[j].Done })
	heavyIn := func(n int) int {
		c := 0
		for _, j := range order[:n] {
			if strings.HasPrefix(j.ID, "h") {
				c++
			}
		}
		return c
	}
	// Service accrues per unit weight, so every window of 4 completions
	// holds 3 heavy jobs and 1 light one.
	if got := heavyIn(4); got != 3 {
		t.Errorf("heavy jobs among first 4 completions = %d, want 3", got)
	}
	if got := heavyIn(8); got != 6 {
		t.Errorf("heavy jobs among first 8 completions = %d, want 6", got)
	}

	// The tenants' credited service must equal their jobs' served time —
	// creditService charges both ledgers together.
	var heavyServed, lightServed time.Duration
	for _, j := range sum.Jobs {
		if strings.HasPrefix(j.ID, "h") {
			heavyServed += j.Served
		} else {
			lightServed += j.Served
		}
	}
	if s.servedByUser["heavy"] != heavyServed || s.servedByUser["light"] != lightServed {
		t.Errorf("tenant ledgers %v/%v, want %v/%v",
			s.servedByUser["heavy"], s.servedByUser["light"], heavyServed, lightServed)
	}
}

// TestFairShareCredit covers the bookkeeping unit-level: credit divides
// by weight, defaults the weight to 1, and an unnamed user makes the job
// its own tenant.
func TestFairShareCredit(t *testing.T) {
	s := New(idlePool(), WeightedFair, 1)
	a := &jobState{spec: JobSpec{ID: "a", User: "u", Weight: 4}}
	b := &jobState{spec: JobSpec{ID: "b", User: "v"}} // weight defaults to 1
	c := &jobState{spec: JobSpec{ID: "c"}}            // own tenant

	s.creditService(a, 40*time.Second)
	s.creditService(b, 20*time.Second)
	s.creditService(c, 30*time.Second)

	if a.served != 40*time.Second || s.servedByUser["u"] != 40*time.Second {
		t.Errorf("job a served %v, tenant u %v", a.served, s.servedByUser["u"])
	}
	if got := s.fairShare(a); got != 10 {
		t.Errorf("fairShare(a) = %v, want 40s/weight 4 = 10", got)
	}
	if got := s.fairShare(b); got != 20 {
		t.Errorf("fairShare(b) = %v, want 20s/default weight 1 = 20", got)
	}
	if s.servedByUser["c"] != 30*time.Second {
		t.Errorf("unnamed user not charged as its own tenant: %v", s.servedByUser)
	}
	// A second job of the same tenant shares the ledger.
	a2 := &jobState{spec: JobSpec{ID: "a2", User: "u", Weight: 4}}
	s.creditService(a2, 8*time.Second)
	if got := s.fairShare(a); got != 12 {
		t.Errorf("fairShare(a) after tenant-mate credit = %v, want 48s/4 = 12", got)
	}
}
