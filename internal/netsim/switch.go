package netsim

import "fmt"

// Network abstracts the interconnect of the performance plane, so the
// experiment engine can run the same message pattern over the paper's
// shared bus or over the technologies its conclusion predicts would make
// 3D practical: "Ethernet switches, FDDI and ATM networks".
type Network interface {
	// Transmit requests the fabric at time t for a message of
	// payloadBytes from src to dst and returns the delivery time.
	// Requests must arrive in non-decreasing t order.
	Transmit(t float64, src, dst, payloadBytes int) float64
	// Stats returns accumulated counters.
	Stats() Stats
	// Utilization returns the busy fraction over an elapsed interval.
	Utilization(elapsed float64) float64
	// Reset clears state between experiments.
	Reset()
}

// Transmit adapts the Bus to the Network interface (the bus ignores
// endpoints: every frame occupies the single shared segment).
func (b *Bus) TransmitNet(t float64, src, dst, payloadBytes int) float64 {
	return b.Transmit(t, payloadBytes)
}

// busNet wraps Bus as a Network.
type busNet struct{ *Bus }

func (b busNet) Transmit(t float64, src, dst, payloadBytes int) float64 {
	return b.Bus.Transmit(t, payloadBytes)
}

// AsNetwork exposes a Bus through the Network interface.
func AsNetwork(b *Bus) Network { return busNet{b} }

// Switch models a store-and-forward switched network: each host has a
// dedicated full-duplex link into the fabric, so transmissions contend
// only per egress/ingress port, never globally. This is the "Ethernet
// switch" of the paper's conclusion; with a faster line rate it also
// stands in for FDDI (100 Mbps) and ATM (155 Mbps).
type Switch struct {
	BandwidthBps float64
	OverheadSec  float64
	FrameBytes   int

	txFree  map[int]float64 // per-source egress availability
	rxFree  map[int]float64 // per-destination ingress availability
	busySec float64
	msgs    int
	maxWait float64
	lastReq float64
}

// NewSwitch returns a switched fabric at the given line rate with the
// given per-message software overhead.
func NewSwitch(bandwidthBps, overheadSec float64, frameBytes int) *Switch {
	return &Switch{
		BandwidthBps: bandwidthBps,
		OverheadSec:  overheadSec,
		FrameBytes:   frameBytes,
		txFree:       map[int]float64{},
		rxFree:       map[int]float64{},
	}
}

// SwitchedEthernet returns a 10 Mbps switched Ethernet: same line rate and
// overhead as the shared bus, contention removed.
func SwitchedEthernet() *Switch { return NewSwitch(10e6, 0.5e-3, 60) }

// FDDI returns a 100 Mbps fabric (the token ring's capacity treated as
// switched point-to-point, an optimistic reading the paper's outlook
// shares).
func FDDI() *Switch { return NewSwitch(100e6, 0.5e-3, 60) }

// ATM returns a 155 Mbps fabric with smaller per-message overhead
// (hardware segmentation and reassembly).
func ATM() *Switch { return NewSwitch(155e6, 0.2e-3, 53) }

// Transmit sends a message through the fabric: it serializes on the
// source's egress link, then on the destination's ingress link.
func (s *Switch) Transmit(t float64, src, dst, payloadBytes int) float64 {
	if t < s.lastReq-1e-12 {
		panic(fmt.Sprintf("netsim: switch transmit at %.9f after %.9f", t, s.lastReq))
	}
	s.lastReq = t
	dur := s.OverheadSec + float64(payloadBytes+s.FrameBytes)*8/s.BandwidthBps

	start := t
	if f := s.txFree[src]; f > start {
		start = f
	}
	s.txFree[src] = start + dur
	// Store-and-forward: the frame reaches the switch at start+dur, then
	// serializes out of the destination port.
	out := start + dur
	if f := s.rxFree[dst]; f > out {
		out = f
	}
	s.rxFree[dst] = out + dur
	if wait := out + dur - t - 2*dur; wait > s.maxWait {
		s.maxWait = wait
	}
	s.busySec += dur
	s.msgs++
	return out + dur
}

// Stats returns accumulated counters; switched fabrics drop nothing, so
// Errors and Contended stay zero.
func (s *Switch) Stats() Stats {
	return Stats{Messages: s.msgs, BusySec: s.busySec, MaxBacklogSec: s.maxWait}
}

// Utilization reports the busiest-possible-port view: total serialization
// time over elapsed time (can exceed 1 across many parallel links; clamp).
func (s *Switch) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := s.busySec / elapsed
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears the fabric between experiments.
func (s *Switch) Reset() {
	s.txFree = map[int]float64{}
	s.rxFree = map[int]float64{}
	s.busySec, s.maxWait, s.lastReq = 0, 0, 0
	s.msgs = 0
}
