package netsim

import (
	"math"
	"testing"
)

func testBus() *Bus {
	return &Bus{BandwidthBps: 10e6, OverheadSec: 1e-3, FrameBytes: 0, CollisionFactor: 0}
}

func TestDuration(t *testing.T) {
	b := testBus()
	// 1250 bytes = 10000 bits = 1 ms at 10 Mbps, plus 1 ms overhead.
	if got := b.Duration(1250); math.Abs(got-2e-3) > 1e-12 {
		t.Errorf("Duration = %v, want 2ms", got)
	}
}

func TestTransmitIdleBus(t *testing.T) {
	b := testBus()
	at := b.Transmit(1.0, 1250)
	if math.Abs(at-1.002) > 1e-12 {
		t.Errorf("delivery at %v, want 1.002", at)
	}
	st := b.Stats()
	if st.Messages != 1 || st.Contended != 0 || st.MaxBacklogSec != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestTransmitQueues(t *testing.T) {
	b := testBus()
	b.Transmit(0, 1250)       // bus busy until 0.002
	at := b.Transmit(0, 1250) // queued behind the first
	if math.Abs(at-0.004) > 1e-12 {
		t.Errorf("second delivery at %v, want 0.004", at)
	}
	if st := b.Stats(); st.MaxBacklogSec < 0.0019 {
		t.Errorf("backlog %v, want ~2ms", st.MaxBacklogSec)
	}
}

func TestCollisionPenalty(t *testing.T) {
	b := testBus()
	b.CollisionFactor = 1.0
	b.Transmit(0, 1250)
	at := b.Transmit(0, 1250) // contended: pays double
	if math.Abs(at-(0.002+0.004)) > 1e-12 {
		t.Errorf("contended delivery at %v, want 0.006", at)
	}
	if st := b.Stats(); st.Contended != 1 {
		t.Errorf("contended = %d, want 1", st.Contended)
	}
}

func TestOverloadErrors(t *testing.T) {
	b := testBus()
	b.OverloadBacklogSec = 0.003
	for i := 0; i < 5; i++ {
		b.Transmit(0, 1250) // each adds 2ms of backlog
	}
	if st := b.Stats(); st.Errors == 0 {
		t.Error("no errors despite backlog past the overload threshold")
	}
}

func TestTransmitOutOfOrderPanics(t *testing.T) {
	b := testBus()
	b.Transmit(1.0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order transmit did not panic")
		}
	}()
	b.Transmit(0.5, 100)
}

func TestReset(t *testing.T) {
	b := testBus()
	b.Transmit(5, 1000)
	b.Reset()
	st := b.Stats()
	if st.Messages != 0 || st.BusySec != 0 {
		t.Errorf("stats after reset: %+v", st)
	}
	// After reset, earlier times are legal again.
	if at := b.Transmit(0, 1250); math.Abs(at-0.002) > 1e-12 {
		t.Errorf("post-reset delivery %v", at)
	}
}

func TestUtilization(t *testing.T) {
	b := testBus()
	b.Transmit(0, 1250)
	if u := b.Utilization(0.004); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if u := b.Utilization(0); u != 0 {
		t.Errorf("utilization at zero elapsed = %v", u)
	}
}

func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	var order []int
	q.At(3, func(t float64) { order = append(order, 3) })
	q.At(1, func(t float64) { order = append(order, 1) })
	q.At(2, func(t float64) { order = append(order, 2) })
	end := q.Run()
	if end != 3 {
		t.Errorf("final time %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("event order %v", order)
	}
}

func TestQueueTieBreakDeterministic(t *testing.T) {
	q := NewQueue()
	var order []string
	q.At(1, func(t float64) { order = append(order, "a") })
	q.At(1, func(t float64) { order = append(order, "b") })
	q.Run()
	if order[0] != "a" || order[1] != "b" {
		t.Errorf("tie-break order %v, want insertion order", order)
	}
}

func TestQueueCascade(t *testing.T) {
	// Events scheduled from within events run in time order.
	q := NewQueue()
	var times []float64
	q.At(1, func(t float64) {
		times = append(times, t)
		q.At(t+1, func(t float64) { times = append(times, t) })
	})
	q.At(1.5, func(t float64) { times = append(times, t) })
	q.Run()
	want := []float64{1, 1.5, 2}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestQueuePastSchedulingPanics(t *testing.T) {
	q := NewQueue()
	q.At(2, func(now float64) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		q.At(1, func(float64) {})
	})
	q.Run()
}
