package netsim

import (
	"math"
	"testing"
)

func TestSwitchNoCrossTalk(t *testing.T) {
	// Two disjoint pairs transmit simultaneously: on a switch neither
	// waits for the other (on the bus the second would queue).
	sw := NewSwitch(10e6, 0, 0)
	a := sw.Transmit(0, 0, 1, 12500) // 10 ms serialization, x2 store-and-forward
	b := sw.Transmit(0, 2, 3, 12500)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("disjoint transfers differ: %v vs %v", a, b)
	}
	if math.Abs(a-0.02) > 1e-9 {
		t.Errorf("delivery %v, want 0.02 (two 10ms hops)", a)
	}

	bus := &Bus{BandwidthBps: 10e6, OverheadSec: 0, FrameBytes: 0}
	a = bus.Transmit(0, 12500)
	b = bus.Transmit(0, 12500)
	if b <= a {
		t.Error("bus should serialize what the switch parallelizes")
	}
}

func TestSwitchEgressContention(t *testing.T) {
	// Two messages from the same source serialize on its egress link.
	sw := NewSwitch(10e6, 0, 0)
	first := sw.Transmit(0, 0, 1, 12500)
	second := sw.Transmit(0, 0, 2, 12500)
	if second <= first {
		t.Errorf("same-source sends did not serialize: %v then %v", first, second)
	}
}

func TestSwitchIngressContention(t *testing.T) {
	// Two messages to the same destination serialize on its ingress link.
	sw := NewSwitch(10e6, 0, 0)
	first := sw.Transmit(0, 0, 5, 12500)
	second := sw.Transmit(0, 1, 5, 12500)
	if second < first+0.01-1e-9 {
		t.Errorf("same-destination arrivals overlap: %v then %v", first, second)
	}
}

func TestSwitchResetAndStats(t *testing.T) {
	sw := SwitchedEthernet()
	sw.Transmit(0, 0, 1, 1000)
	if sw.Stats().Messages != 1 {
		t.Error("message not counted")
	}
	sw.Reset()
	if sw.Stats().Messages != 0 || sw.Stats().BusySec != 0 {
		t.Error("reset incomplete")
	}
	// Out-of-order requests panic, as on the bus.
	sw.Transmit(1, 0, 1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order switch transmit did not panic")
		}
	}()
	sw.Transmit(0.5, 0, 1, 10)
}

func TestFabricPresets(t *testing.T) {
	// FDDI and ATM are strictly faster per byte than switched Ethernet.
	msg := 100000
	se := SwitchedEthernet().Transmit(0, 0, 1, msg)
	fd := FDDI().Transmit(0, 0, 1, msg)
	at := ATM().Transmit(0, 0, 1, msg)
	if !(at < fd && fd < se) {
		t.Errorf("fabric ordering wrong: ATM %v, FDDI %v, switched %v", at, fd, se)
	}
}

func TestAsNetworkAdapter(t *testing.T) {
	var n Network = AsNetwork(DefaultEthernet())
	at := n.Transmit(0, 3, 4, 1250)
	if at <= 0 {
		t.Error("adapter transmit failed")
	}
	if n.Stats().Messages != 1 {
		t.Error("adapter stats missing")
	}
	n.Reset()
	if n.Stats().Messages != 0 {
		t.Error("adapter reset missing")
	}
}
