// Package netsim models the shared-bus 10 Mbps Ethernet of the paper's
// testbed. On a shared bus exactly one frame is in flight at a time, so
// the communication time seen by P simultaneously communicating processes
// grows linearly with P — the (P-1) factor of equation 19 that makes 2D
// simulations scale and 3D simulations collapse (figure 9).
//
// Every message costs a fixed per-message overhead (protocol and software
// latency, the term the paper identifies as dominating for subregions
// below 100^2 nodes) plus its serialization time bytes*8/bandwidth. The
// model also reports backlog statistics: when the offered load exceeds the
// bus capacity the backlog grows without bound, the regime in which the
// paper observed TCP/IP delivery failures after excessive retransmissions.
package netsim

import (
	"container/heap"
	"fmt"
)

// Bus is a shared-bus network with FIFO arbitration.
type Bus struct {
	// BandwidthBps is the raw bit rate (10 Mbps Ethernet by default).
	BandwidthBps float64
	// OverheadSec is the fixed per-message cost: interrupt handling,
	// protocol stacks, framing. It is what makes many small messages
	// slower than one large message (section 6: FD's two messages per
	// step versus LB's one).
	OverheadSec float64
	// FrameBytes is added to every message for TCP/IP/Ethernet headers.
	FrameBytes int

	// CollisionFactor is the extra fractional cost of a message that
	// finds the bus busy: CSMA/CD collisions, exponential backoff and
	// TCP retransmissions waste bandwidth exactly when the bus is
	// contended. A factor of 1 means a contended message effectively
	// transmits twice. This is what collapses 3D runs (figures 9-11)
	// while leaving lightly loaded 2D runs untouched.
	CollisionFactor float64

	// OverloadBacklogSec is the backlog beyond which transmissions are
	// counted as network errors (TCP retransmission failures under
	// excessive traffic, end of section 7).
	OverloadBacklogSec float64

	freeAt     float64
	busySec    float64
	maxBacklog float64
	messages   int
	contended  int
	errors     int
	lastReq    float64
}

// DefaultEthernet returns the paper's network: 10 Mbps shared bus with
// 0.5 ms per-message software overhead and 60 header bytes per message.
func DefaultEthernet() *Bus {
	return &Bus{
		BandwidthBps:    10e6,
		OverheadSec:     0.5e-3,
		FrameBytes:      60,
		CollisionFactor: 1.0,
		// Half a second of queued traffic is thousands of frame times:
		// the repeated-collision regime where 1990s Ethernet drops
		// frames (16-collision limit) and TCP retransmissions start
		// failing. The parallel processes' own receive-blocking keeps
		// healthy runs far below this (section 5.2's feedback argument).
		OverloadBacklogSec: 0.5,
	}
}

// Duration returns the bus occupancy of one message of the given payload.
func (b *Bus) Duration(payloadBytes int) float64 {
	return b.OverheadSec + float64(payloadBytes+b.FrameBytes)*8/b.BandwidthBps
}

// Transmit requests the bus at time t for a message of payloadBytes and
// returns the delivery time. Calls must be made in non-decreasing t order
// (the discrete-event engine guarantees this).
func (b *Bus) Transmit(t float64, payloadBytes int) float64 {
	if t < b.lastReq-1e-12 {
		panic(fmt.Sprintf("netsim: transmit at %.9f after %.9f; events out of order", t, b.lastReq))
	}
	b.lastReq = t
	start := t
	if b.freeAt > start {
		start = b.freeAt
	}
	backlog := start - t
	if backlog > b.maxBacklog {
		b.maxBacklog = backlog
	}
	if b.OverloadBacklogSec > 0 && backlog > b.OverloadBacklogSec {
		b.errors++
	}
	dur := b.Duration(payloadBytes)
	if backlog > 0 {
		// The bus was busy: collisions and retransmissions inflate the
		// effective cost of this message.
		dur *= 1 + b.CollisionFactor
		b.contended++
	}
	b.freeAt = start + dur
	b.busySec += dur
	b.messages++
	return b.freeAt
}

// Stats summarises bus activity.
type Stats struct {
	Messages      int
	Contended     int
	BusySec       float64
	MaxBacklogSec float64
	Errors        int
}

// Stats returns the accumulated counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Messages: b.messages, Contended: b.contended,
		BusySec: b.busySec, MaxBacklogSec: b.maxBacklog, Errors: b.errors,
	}
}

// Utilization returns the fraction of the elapsed time the bus was busy.
func (b *Bus) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := b.busySec / elapsed
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears the bus state between experiments.
func (b *Bus) Reset() {
	b.freeAt, b.busySec, b.maxBacklog, b.lastReq = 0, 0, 0, 0
	b.messages, b.contended, b.errors = 0, 0, 0
}

// Event is a scheduled discrete event.
type Event struct {
	Time float64
	Seq  int64 // tie-break for determinism
	Fn   func(t float64)
}

// Queue is a deterministic discrete-event queue.
type Queue struct {
	h   eventHeap
	seq int64
	now float64
}

// NewQueue returns an empty event queue.
func NewQueue() *Queue { return &Queue{} }

// Now returns the current simulation time.
func (q *Queue) Now() float64 { return q.now }

// At schedules fn at absolute time t (>= now).
func (q *Queue) At(t float64, fn func(t float64)) {
	if t < q.now-1e-12 {
		panic(fmt.Sprintf("netsim: scheduling event at %.9f before now %.9f", t, q.now))
	}
	q.seq++
	heap.Push(&q.h, &Event{Time: t, Seq: q.seq, Fn: fn})
}

// Run processes events until the queue drains, returning the final time.
func (q *Queue) Run() float64 {
	for q.h.Len() > 0 {
		e := heap.Pop(&q.h).(*Event)
		q.now = e.Time
		e.Fn(e.Time)
	}
	return q.now
}

// Empty reports whether all events have been processed.
func (q *Queue) Empty() bool { return q.h.Len() == 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
