package decomp

import (
	"reflect"
	"testing"
)

// TestWeightedSpansEqualWeightsBitIdentical: the degenerate equal-weights
// case must reproduce the uniform splitter bit for bit, remainders
// included, so homogeneous pools see no change at all.
func TestWeightedSpansEqualWeightsBitIdentical(t *testing.T) {
	for _, tc := range []struct{ g, p int }{
		{80, 2}, {81, 2}, {100, 7}, {40, 5}, {25, 25}, {26, 25}, {7, 3},
	} {
		w := make([]float64, tc.p)
		for i := range w {
			w[i] = 0.84 // any equal value, including a non-unit one
		}
		got, err := WeightedSpans(tc.g, w)
		if err != nil {
			t.Fatalf("WeightedSpans(%d, equal x%d): %v", tc.g, tc.p, err)
		}
		want := UniformSpans(tc.g, tc.p)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("g=%d p=%d: weighted %v != uniform %v", tc.g, tc.p, got, want)
		}
	}
}

// TestWeightedSpansProportional: spans track the weights (a 2:1 speed
// ratio yields a 2:1 span split) and always sum to the grid.
func TestWeightedSpansProportional(t *testing.T) {
	spans, err := WeightedSpans(30, []float64{1.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if spans[0] != 20 || spans[1] != 10 {
		t.Errorf("2:1 weights over 30 nodes = %v, want [20 10]", spans)
	}
	// A tiny weight still gets at least one node.
	spans, err = WeightedSpans(10, []float64{1, 1, 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, n := range spans {
		if n < 1 {
			t.Errorf("piece %d got %d nodes", i, n)
		}
		sum += n
	}
	if sum != 10 {
		t.Errorf("spans %v sum to %d, want 10", spans, sum)
	}
	// Invalid inputs are rejected.
	if _, err := WeightedSpans(2, []float64{1, 1, 1}); err == nil {
		t.Error("3 pieces over 2 nodes accepted")
	}
	if _, err := WeightedSpans(10, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedSpans(10, nil); err == nil {
		t.Error("no weights accepted")
	}
}

// TestNew2DWeightedEqualSpeedsBitIdentical: with equal speeds the whole
// weighted decomposition — every subregion struct, rank and offset — is
// bit-identical to the uniform one (the ISSUE's degenerate-case
// guarantee).
func TestNew2DWeightedEqualSpeedsBitIdentical(t *testing.T) {
	speed := make([]float64, 5*4)
	for i := range speed {
		speed[i] = 39132
	}
	got, err := New2DWeighted(5, 4, 203, 161, Full, speed) // remainders on both axes
	if err != nil {
		t.Fatal(err)
	}
	want, err := New2D(5, 4, 203, 161, Full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("equal-speed weighted decomposition differs from uniform:\n%v\n%v", got, want)
	}

	speed3 := make([]float64, 2*2*3)
	for i := range speed3 {
		speed3[i] = 1
	}
	got3, err := New3DWeighted(2, 2, 3, 17, 9, 11, speed3)
	if err != nil {
		t.Fatal(err)
	}
	want3, err := New3D(2, 2, 3, 17, 9, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got3, want3) {
		t.Errorf("equal-speed weighted 3D decomposition differs from uniform")
	}
}

// TestNew2DWeightedChainExact: on a (P x 1) chain the marginal weights
// are the per-rank speeds themselves, so each subregion's span is exactly
// proportional to its own host's speed and contiguity holds.
func TestNew2DWeightedChainExact(t *testing.T) {
	speed := []float64{2, 1, 1}
	d, err := New2DWeighted(3, 1, 120, 40, Star, speed)
	if err != nil {
		t.Fatal(err)
	}
	wantNX := []int{60, 30, 30}
	x0 := 0
	for i := 0; i < 3; i++ {
		s := d.Sub(i, 0)
		if s.NX != wantNX[i] {
			t.Errorf("column %d: NX = %d, want %d", i, s.NX, wantNX[i])
		}
		if s.X0 != x0 {
			t.Errorf("column %d: X0 = %d, want contiguous %d", i, s.X0, x0)
		}
		if s.NY != 40 || s.Y0 != 0 {
			t.Errorf("column %d: y span %d@%d, want 40@0", i, s.NY, s.Y0)
		}
		x0 += s.NX
	}
	// The faster host's subregion computes 2x the nodes: balanced at 2x
	// speed.
	if d.Sub(0, 0).Nodes() != 2*d.Sub(1, 0).Nodes() {
		t.Errorf("node ratio %d:%d, want 2:1", d.Sub(0, 0).Nodes(), d.Sub(1, 0).Nodes())
	}
}

// TestWeightedNeighborsAligned: weighted spans stay lattice-aligned, so
// the halo topology is identical to the uniform decomposition's and
// every east-west neighbour pair shares its y span (the message length).
func TestWeightedNeighborsAligned(t *testing.T) {
	speed := []float64{1.0, 0.84, 0.86, 1.0, 0.84, 0.86} // (3 x 2) mixed models
	d, err := New2DWeighted(3, 2, 121, 81, Full, speed)
	if err != nil {
		t.Fatal(err)
	}
	u, err := New2D(3, 2, 121, 81, Full)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Subregions() {
		us := u.Sub(s.I, s.J)
		for _, dir := range Dirs(Full) {
			n := d.Neighbor(d.Sub(s.I, s.J), dir)
			un := u.Neighbor(us, dir)
			if (n == nil) != (un == nil) {
				t.Fatalf("(%d,%d) dir %v: weighted neighbour %v, uniform %v", s.I, s.J, dir, n, un)
			}
			if n != nil && (n.I != un.I || n.J != un.J) {
				t.Errorf("(%d,%d) dir %v: weighted neighbour (%d,%d), uniform (%d,%d)",
					s.I, s.J, dir, n.I, n.J, un.I, un.J)
			}
		}
		if e := d.Neighbor(d.Sub(s.I, s.J), East); e != nil {
			if e.NY != s.NY || e.Y0 != s.Y0 {
				t.Errorf("(%d,%d): east neighbour y span %d@%d, self %d@%d — halo mismatch",
					s.I, s.J, e.NY, e.Y0, s.NY, s.Y0)
			}
		}
	}
}

// TestDeactivateRenumbersWeightedSpans is the satellite regression:
// deactivating subregions of a weighted (non-uniform-span) decomposition
// must renumber the remaining ranks densely in row-major order, keep
// ByRank consistent with the lattice, and drop the inactive subregion
// from the neighbour topology — exactly as it does for uniform spans.
func TestDeactivateRenumbersWeightedSpans(t *testing.T) {
	speed := []float64{2, 1, 1, 1, 1, 2} // (3 x 2), deliberately lopsided
	d, err := New2DWeighted(3, 2, 100, 60, Star, speed)
	if err != nil {
		t.Fatal(err)
	}
	d.Deactivate(1, 0)
	d.Deactivate(2, 1)
	if d.P() != 4 {
		t.Fatalf("P = %d after two deactivations of 6, want 4", d.P())
	}
	// Dense ranks in row-major order over the active subregions.
	want := map[[2]int]int{{0, 0}: 0, {2, 0}: 1, {0, 1}: 2, {1, 1}: 3}
	for pos, rank := range want {
		s := d.Sub(pos[0], pos[1])
		if !s.Active || s.Rank != rank {
			t.Errorf("(%d,%d): rank %d active %v, want rank %d active", pos[0], pos[1], s.Rank, s.Active, rank)
		}
		if got := d.ByRank(rank); got.I != pos[0] || got.J != pos[1] {
			t.Errorf("ByRank(%d) = (%d,%d), want (%d,%d)", rank, got.I, got.J, pos[0], pos[1])
		}
	}
	for _, pos := range [][2]int{{1, 0}, {2, 1}} {
		if s := d.Sub(pos[0], pos[1]); s.Active || s.Rank != -1 {
			t.Errorf("(%d,%d): still active (rank %d)", pos[0], pos[1], s.Rank)
		}
	}
	// The hole is gone from the topology, and spans survive untouched.
	if n := d.Neighbor(d.Sub(0, 0), East); n != nil {
		t.Errorf("(0,0) east neighbour is inactive (1,0), got rank %d", n.Rank)
	}
	if n := d.Neighbor(d.Sub(1, 1), West); n == nil || n.Rank != 2 {
		t.Errorf("(1,1) west neighbour = %v, want rank 2 at (0,1)", n)
	}
	// Column marginals 3:2:3 over 100 nodes: quotas 37.5/25/37.5, the
	// odd node going to the lower-index tie.
	if got := d.ShapeOf(); !reflect.DeepEqual(got.X, []int{38, 25, 37}) {
		t.Errorf("x spans after deactivation = %v, want [38 25 37]", got.X)
	}
	// ActiveSubregions returns exactly the renumbered four, in rank order.
	act := d.ActiveSubregions()
	if len(act) != 4 {
		t.Fatalf("%d active subregions, want 4", len(act))
	}
	for i, s := range act {
		if s.Rank != i {
			t.Errorf("active subregion %d has rank %d", i, s.Rank)
		}
	}
}

// TestShapeCheck covers the shape validation errors.
func TestShapeCheck(t *testing.T) {
	ok := Shape{X: []int{3, 2}, Y: []int{4}}
	if err := ok.Check(2, 1, 0, 5, 4, 0); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
	bad := []struct {
		name string
		sh   Shape
	}{
		{"wrong piece count", Shape{X: []int{5}, Y: []int{4}}},
		{"zero span", Shape{X: []int{5, 0}, Y: []int{4}}},
		{"sum mismatch", Shape{X: []int{3, 3}, Y: []int{4}}},
		{"z spans on 2D", Shape{X: []int{3, 2}, Y: []int{4}, Z: []int{1}}},
	}
	for _, tc := range bad {
		if err := tc.sh.Check(2, 1, 0, 5, 4, 0); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if _, err := New2DShaped(Shape{X: []int{3, 0}, Y: []int{4}}, Star); err == nil {
		t.Error("New2DShaped accepted a zero span")
	}
	if _, err := New3DShaped(Shape{X: []int{3}, Y: []int{4}}); err == nil {
		t.Error("New3DShaped accepted a shape without z spans")
	}
}

// TestShapeNodesAndEqual covers the Shape arithmetic helpers.
func TestShapeNodesAndEqual(t *testing.T) {
	s2 := Shape{X: []int{3, 2}, Y: []int{4, 1}}
	if s2.Nodes(0, 0, 0) != 12 || s2.Nodes(1, 1, 0) != 2 {
		t.Errorf("2D Nodes: %d, %d", s2.Nodes(0, 0, 0), s2.Nodes(1, 1, 0))
	}
	s3 := Shape{X: []int{3}, Y: []int{4}, Z: []int{5, 2}}
	if s3.Nodes(0, 0, 1) != 24 {
		t.Errorf("3D Nodes = %d, want 24", s3.Nodes(0, 0, 1))
	}
	if !s2.Equal(Shape{X: []int{3, 2}, Y: []int{4, 1}}) {
		t.Error("equal shapes compare unequal")
	}
	if s2.Equal(s3) || s2.Equal(Shape{}) {
		t.Error("unequal shapes compare equal")
	}
	if !(Shape{}).IsZero() || s2.IsZero() {
		t.Error("IsZero wrong")
	}
	if s2.Is3D() || !s3.Is3D() {
		t.Error("Is3D wrong")
	}
}

// TestNew3DWeightedSpans: the 3D weighted splitter sizes every axis by
// its marginal speed and keeps boxes contiguous.
func TestNew3DWeightedSpans(t *testing.T) {
	// (2 x 1 x 1): x axis split 2:1 by the two hosts' speeds.
	d, err := New3DWeighted(2, 1, 1, 90, 30, 30, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := d.Sub(0, 0, 0), d.Sub(1, 0, 0); a.NX != 60 || b.NX != 30 || b.X0 != 60 {
		t.Errorf("3D chain spans: %d@%d, %d@%d, want 60@0, 30@60", a.NX, a.X0, b.NX, b.X0)
	}
	if d.SurfaceFactor() != 1 {
		t.Errorf("surface factor %d, want 1 (one communicating face each)", d.SurfaceFactor())
	}
}
