// Package decomp implements the static rectangular domain decompositions of
// the paper: a global uniform grid is split into a (J x K) array of
// subregions in 2D, or (J x K x L) in 3D, and each active subregion is
// assigned to one parallel subprocess (sections 2-3). Subregions are
// identical-shaped under the uniform splitters (New2D/New3D); the
// speed-weighted splitters of weighted.go size spans proportionally to
// per-rank host speed for heterogeneous pools, with uniform splitting as
// the degenerate equal-weights case.
//
// The package also computes the decomposition-geometry constant m of
// section 8 (the surface factor in N_c = m N^{1/2} or m N^{2/3}), the
// neighbour topology under star or full stencils, and the identification of
// inactive subregions (subregions that are entirely solid wall, which the
// paper's figure-2 run leaves unassigned: 15 of 24 subregions employed).
package decomp

import "fmt"

// Stencil identifies the local-interaction pattern (figure 4 of the paper).
type Stencil int

const (
	// Star couples a node to neighbours along the coordinate axes only.
	Star Stencil = iota
	// Full couples a node to all neighbours including diagonals.
	Full
)

func (s Stencil) String() string {
	if s == Star {
		return "star"
	}
	return "full"
}

// Dir is a neighbour direction in 2D. The first four are the star
// directions; the last four complete the full stencil.
type Dir int

const (
	West Dir = iota
	East
	South
	North
	SouthWest
	SouthEast
	NorthWest
	NorthEast
	numDirs
)

// Opposite returns the direction pointing back at the sender; halo exchange
// pairs each send in direction d with a receive from Opposite(d).
func (d Dir) Opposite() Dir {
	switch d {
	case West:
		return East
	case East:
		return West
	case South:
		return North
	case North:
		return South
	case SouthWest:
		return NorthEast
	case SouthEast:
		return NorthWest
	case NorthWest:
		return SouthEast
	case NorthEast:
		return SouthWest
	}
	panic(fmt.Sprintf("decomp: invalid direction %d", d))
}

// Delta returns the (dx, dy) grid offset of direction d.
func (d Dir) Delta() (int, int) {
	switch d {
	case West:
		return -1, 0
	case East:
		return 1, 0
	case South:
		return 0, -1
	case North:
		return 0, 1
	case SouthWest:
		return -1, -1
	case SouthEast:
		return 1, -1
	case NorthWest:
		return -1, 1
	case NorthEast:
		return 1, 1
	}
	panic(fmt.Sprintf("decomp: invalid direction %d", d))
}

func (d Dir) String() string {
	names := [...]string{"W", "E", "S", "N", "SW", "SE", "NW", "NE"}
	if d < 0 || int(d) >= len(names) {
		return fmt.Sprintf("Dir(%d)", int(d))
	}
	return names[d]
}

// Dirs returns the directions that participate in a stencil, in a fixed
// deterministic order.
func Dirs(s Stencil) []Dir {
	if s == Star {
		return []Dir{West, East, South, North}
	}
	return []Dir{West, East, South, North, SouthWest, SouthEast, NorthWest, NorthEast}
}

// Subregion2D describes one rectangular piece of a 2D decomposition.
type Subregion2D struct {
	Rank   int // dense rank among active subregions; -1 if inactive
	I, J   int // position in the decomposition lattice (column, row)
	X0, Y0 int // global coordinates of the subregion's first interior node
	NX, NY int // interior node counts
	Active bool
}

// Nodes returns the number of interior nodes N of the subregion, the
// parallel grain size of section 3.
func (s Subregion2D) Nodes() int { return s.NX * s.NY }

// Decomp2D is a (J x K) decomposition of a GX x GY global grid.
type Decomp2D struct {
	JX, JY  int // subregion counts in x and y ("(5 x 4)" is JX=5, JY=4)
	GX, GY  int // global grid size
	Stencil Stencil

	// PeriodicX and PeriodicY make the lattice wrap around, so the
	// rightmost subregion neighbours the leftmost. The channel test
	// problem of section 7 is periodic in the flow direction.
	PeriodicX, PeriodicY bool

	subs   []Subregion2D // row-major by (J, I)
	active int
}

// New2D builds a uniform decomposition. The global grid need not divide
// evenly: the remainder nodes are distributed one per leading subregion,
// keeping shapes as close to identical as the paper's uniform scheme allows.
func New2D(jx, jy, gx, gy int, st Stencil) (*Decomp2D, error) {
	if jx <= 0 || jy <= 0 {
		return nil, fmt.Errorf("decomp: invalid decomposition (%d x %d)", jx, jy)
	}
	if gx < jx || gy < jy {
		return nil, fmt.Errorf("decomp: grid %dx%d smaller than decomposition (%d x %d)", gx, gy, jx, jy)
	}
	return New2DShaped(UniformShape2D(jx, jy, gx, gy), st)
}

// span splits g nodes into p pieces; piece i gets its offset and length.
// The first g%p pieces are one node longer.
func span(g, p, i int) (off, n int) {
	base := g / p
	rem := g % p
	if i < rem {
		return i * (base + 1), base + 1
	}
	return rem*(base+1) + (i-rem)*base, base
}

// P returns the number of active subregions, i.e. the processor count.
func (d *Decomp2D) P() int { return d.active }

// Total returns the total number of subregions, active or not.
func (d *Decomp2D) Total() int { return d.JX * d.JY }

// Sub returns the subregion at lattice position (i, j).
func (d *Decomp2D) Sub(i, j int) *Subregion2D {
	if i < 0 || i >= d.JX || j < 0 || j >= d.JY {
		panic(fmt.Sprintf("decomp: lattice position (%d,%d) outside (%d x %d)", i, j, d.JX, d.JY))
	}
	return &d.subs[j*d.JX+i]
}

// Subregions returns all subregions in deterministic row-major order.
func (d *Decomp2D) Subregions() []Subregion2D { return d.subs }

// ActiveSubregions returns only the active subregions, rank order.
func (d *Decomp2D) ActiveSubregions() []Subregion2D {
	out := make([]Subregion2D, 0, d.active)
	for _, s := range d.subs {
		if s.Active {
			out = append(out, s)
		}
	}
	return out
}

// Deactivate marks subregion (i, j) inactive (entirely solid wall) and
// recomputes the dense ranks of the remaining active subregions. It mirrors
// the paper's figure-2 configuration where 9 of 24 subregions are walls and
// only 15 workstations are employed.
func (d *Decomp2D) Deactivate(i, j int) {
	s := d.Sub(i, j)
	if !s.Active {
		return
	}
	s.Active = false
	d.renumber()
}

// DeactivateWalls deactivates every subregion whose nodes are all solid
// according to the mask, which must be GX x GY with true = solid wall.
// It returns the number of subregions deactivated.
func (d *Decomp2D) DeactivateWalls(solid func(x, y int) bool) int {
	n := 0
	for idx := range d.subs {
		s := &d.subs[idx]
		if !s.Active {
			continue
		}
		allSolid := true
	scan:
		for y := s.Y0; y < s.Y0+s.NY; y++ {
			for x := s.X0; x < s.X0+s.NX; x++ {
				if !solid(x, y) {
					allSolid = false
					break scan
				}
			}
		}
		if allSolid {
			s.Active = false
			n++
		}
	}
	if n > 0 {
		d.renumber()
	}
	return n
}

func (d *Decomp2D) renumber() {
	r := 0
	for i := range d.subs {
		if d.subs[i].Active {
			d.subs[i].Rank = r
			r++
		} else {
			d.subs[i].Rank = -1
		}
	}
	d.active = r
}

// ByRank returns the active subregion with the given dense rank.
func (d *Decomp2D) ByRank(rank int) *Subregion2D {
	for i := range d.subs {
		if d.subs[i].Active && d.subs[i].Rank == rank {
			return &d.subs[i]
		}
	}
	panic(fmt.Sprintf("decomp: no active subregion with rank %d", rank))
}

// Neighbor returns the active neighbour of s in direction dir, or nil if
// the neighbour is outside the lattice or inactive. Only directions in the
// decomposition's stencil yield neighbours.
func (d *Decomp2D) Neighbor(s *Subregion2D, dir Dir) *Subregion2D {
	inStencil := false
	for _, dd := range Dirs(d.Stencil) {
		if dd == dir {
			inStencil = true
			break
		}
	}
	if !inStencil {
		return nil
	}
	dx, dy := dir.Delta()
	ni, nj := s.I+dx, s.J+dy
	if d.PeriodicX {
		ni = (ni + d.JX) % d.JX
	}
	if d.PeriodicY {
		nj = (nj + d.JY) % d.JY
	}
	if ni < 0 || ni >= d.JX || nj < 0 || nj >= d.JY {
		return nil
	}
	n := d.Sub(ni, nj)
	if !n.Active {
		return nil
	}
	return n
}

// Neighbors returns the active neighbours of s under the stencil, keyed by
// direction, in Dirs order.
func (d *Decomp2D) Neighbors(s *Subregion2D) map[Dir]*Subregion2D {
	out := make(map[Dir]*Subregion2D)
	for _, dir := range Dirs(d.Stencil) {
		if n := d.Neighbor(s, dir); n != nil {
			out[dir] = n
		}
	}
	return out
}

// SideCount returns the number of communicating sides (star directions with
// an active neighbour) of subregion s.
func (d *Decomp2D) SideCount(s *Subregion2D) int {
	n := 0
	for _, dir := range []Dir{West, East, South, North} {
		dx, dy := dir.Delta()
		ni, nj := s.I+dx, s.J+dy
		if d.PeriodicX {
			ni = (ni + d.JX) % d.JX
		}
		if d.PeriodicY {
			nj = (nj + d.JY) % d.JY
		}
		if ni < 0 || ni >= d.JX || nj < 0 || nj >= d.JY {
			continue
		}
		if d.Sub(ni, nj).Active {
			n++
		}
	}
	return n
}

// SurfaceFactor returns the decomposition constant m of section 8, defined
// here as the maximum number of communicating sides over the active
// subregions: the slowest subregion's surface sets the communication time
// each step. This reproduces the paper's table for (P x 1), (2 x 2),
// (4 x 4) and (5 x 4); for (3 x 3) the paper lists m = 3 (the average
// rounded) where the maximum is 4 — PaperM reproduces the published table
// verbatim for the decompositions the paper names.
func (d *Decomp2D) SurfaceFactor() int {
	m := 0
	for i := range d.subs {
		if !d.subs[i].Active {
			continue
		}
		if c := d.SideCount(&d.subs[i]); c > m {
			m = c
		}
	}
	return m
}

// MeanSideCount returns the average number of communicating sides over
// active subregions.
func (d *Decomp2D) MeanSideCount() float64 {
	if d.active == 0 {
		return 0
	}
	sum := 0
	for i := range d.subs {
		if d.subs[i].Active {
			sum += d.SideCount(&d.subs[i])
		}
	}
	return float64(sum) / float64(d.active)
}

// PaperM returns the constant m exactly as tabulated in section 8 of the
// paper for the decompositions used in its performance measurements:
//
//	(P x 1) -> 2, (2 x 2) -> 2, (3 x 3) -> 3, (4 x 4) -> 4, (5 x 4) -> 4.
//
// For decompositions outside the table it falls back to SurfaceFactor.
func (d *Decomp2D) PaperM() int {
	switch {
	case d.JY == 1 || d.JX == 1:
		return 2
	case d.JX == 2 && d.JY == 2:
		return 2
	case d.JX == 3 && d.JY == 3:
		return 3
	case d.JX == 4 && d.JY == 4:
		return 4
	case (d.JX == 5 && d.JY == 4) || (d.JX == 4 && d.JY == 5):
		return 4
	}
	return d.SurfaceFactor()
}

// MaxUnsyncSteps returns the largest possible difference in integration
// step between two processes when one process stops (appendix A):
// max(J,K)-1 under a full stencil (eq. 22), (J-1)+(K-1) under a star
// stencil (eq. 23).
func (d *Decomp2D) MaxUnsyncSteps() int {
	if d.Stencil == Full {
		if d.JX > d.JY {
			return d.JX - 1
		}
		return d.JY - 1
	}
	return (d.JX - 1) + (d.JY - 1)
}

func (d *Decomp2D) String() string {
	return fmt.Sprintf("(%d x %d) of %dx%d, %d active, %s stencil",
		d.JX, d.JY, d.GX, d.GY, d.active, d.Stencil)
}
