// Speed-weighted decomposition: the heterogeneous-workstation refinement
// of the paper's uniform splitting. The pool mixes 715/50, 720 and 710
// models, so identical-shaped subregions run every job at its slowest
// host's pace; sizing each subregion's span proportionally to its host's
// speed balances the per-step compute so the step finishes together.
//
// The splitter stays rectangular and lattice-aligned — spans vary per
// axis index, never per cell — so the halo-exchange topology (Neighbor,
// Sends/Expects) is untouched: a weighted decomposition exchanges exactly
// the same messages as a uniform one, just with different boundary
// lengths. Uniform splitting is the degenerate equal-weights case, bit
// for bit: WeightedSpans with equal weights reproduces UniformSpans, so
// homogeneous pools see no change at all.
package decomp

import (
	"fmt"
	"slices"
	"sort"
)

// Shape is an explicit per-axis span assignment for a (JX x JY [x JZ])
// decomposition: X[i] interior nodes for lattice column i, Y[j] for row
// j, and — for 3D — Z[k] for layer k. A zero Shape means "uniform".
// Shapes are what a farm records in its checkpoints: a job placed with a
// weighted decomposition must be rebuilt with the same spans or its rank
// dumps no longer fit.
type Shape struct {
	X, Y, Z []int
}

// IsZero reports whether the shape is unset (uniform splitting applies).
func (s Shape) IsZero() bool { return len(s.X) == 0 && len(s.Y) == 0 && len(s.Z) == 0 }

// Is3D reports whether the shape carries a z axis.
func (s Shape) Is3D() bool { return len(s.Z) > 0 }

// Nodes returns the interior node count of the subregion at lattice
// position (i, j) in 2D or (i, j, k) in 3D (pass k = 0 for 2D shapes).
func (s Shape) Nodes(i, j, k int) int {
	n := s.X[i] * s.Y[j]
	if s.Is3D() {
		n *= s.Z[k]
	}
	return n
}

// Equal reports whether two shapes assign identical spans.
func (s Shape) Equal(o Shape) bool {
	return slices.Equal(s.X, o.X) && slices.Equal(s.Y, o.Y) && slices.Equal(s.Z, o.Z)
}

// Check validates the shape against a decomposition lattice and global
// grid: every axis present with the right piece count, every span
// positive, and the spans summing to the grid extent.
func (s Shape) Check(jx, jy, jz, gx, gy, gz int) error {
	axis := func(name string, spans []int, p, g int) error {
		if len(spans) != p {
			return fmt.Errorf("decomp: shape has %d %s spans for %d pieces", len(spans), name, p)
		}
		sum := 0
		for _, n := range spans {
			if n < 1 {
				return fmt.Errorf("decomp: shape has a %d-node %s span", n, name)
			}
			sum += n
		}
		if sum != g {
			return fmt.Errorf("decomp: %s spans sum to %d, grid is %d", name, sum, g)
		}
		return nil
	}
	if err := axis("x", s.X, jx, gx); err != nil {
		return err
	}
	if err := axis("y", s.Y, jy, gy); err != nil {
		return err
	}
	if jz > 0 {
		return axis("z", s.Z, jz, gz)
	}
	if len(s.Z) != 0 {
		return fmt.Errorf("decomp: 2D shape carries %d z spans", len(s.Z))
	}
	return nil
}

// UniformSpans splits g nodes into p equal pieces, remainder distributed
// one node per leading piece — exactly the spans New2D/New3D assign.
func UniformSpans(g, p int) []int {
	out := make([]int, p)
	for i := range out {
		_, out[i] = span(g, p, i)
	}
	return out
}

// UniformShape2D returns the uniform shape of a (jx x jy) decomposition.
func UniformShape2D(jx, jy, gx, gy int) Shape {
	return Shape{X: UniformSpans(gx, jx), Y: UniformSpans(gy, jy)}
}

// UniformShape3D returns the uniform shape of a (jx x jy x jz) box
// decomposition.
func UniformShape3D(jx, jy, jz, gx, gy, gz int) Shape {
	return Shape{X: UniformSpans(gx, jx), Y: UniformSpans(gy, jy), Z: UniformSpans(gz, jz)}
}

// WeightedSpans splits g nodes into len(w) contiguous pieces with piece i
// proportional to weight w[i], by the largest-remainder method: each
// piece gets the floor of its exact quota, and the leftover nodes go one
// each to the pieces with the largest fractional parts (ties to the
// lower index). Every piece gets at least one node. Equal weights
// reproduce UniformSpans bit for bit: all quotas tie, so the leading
// pieces take the remainder, exactly as the uniform splitter does.
func WeightedSpans(g int, w []float64) ([]int, error) {
	p := len(w)
	if p == 0 {
		return nil, fmt.Errorf("decomp: no weights")
	}
	if g < p {
		return nil, fmt.Errorf("decomp: %d nodes for %d weighted pieces", g, p)
	}
	total := 0.0
	for i, wi := range w {
		if wi <= 0 {
			return nil, fmt.Errorf("decomp: weight %d is %v, want > 0", i, wi)
		}
		total += wi
	}
	spans := make([]int, p)
	frac := make([]float64, p)
	assigned := 0
	for i, wi := range w {
		quota := float64(g) * wi / total
		spans[i] = int(quota)
		frac[i] = quota - float64(spans[i])
		assigned += spans[i]
	}
	// Distribute the remainder by largest fractional part, lower index
	// first among ties.
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return frac[order[a]] > frac[order[b]] })
	for r := 0; r < g-assigned; r++ {
		spans[order[r]]++
	}
	largest := func() int {
		max := 0
		for i, n := range spans {
			if n > spans[max] {
				max = i
			}
		}
		return max
	}
	// Floating-point quotas can (in pathological cases) over-assign; give
	// back from the largest pieces, and lift any zero-span piece (a tiny
	// weight floored to nothing) to one node.
	for over := assigned - g; over > 0; over-- {
		spans[largest()]--
	}
	for i := range spans {
		for spans[i] < 1 {
			spans[largest()]--
			spans[i]++
		}
	}
	return spans, nil
}

// SpeedWeights2D turns per-rank host speeds into per-axis weights for a
// (jx x jy) lattice, rank order row-major (rank = j*jx + i): the column
// weight is the mean speed of the column's hosts, the row weight the
// mean of the row's. For chain decompositions (jx = 1 or jy = 1) the
// marginal is exact — each subregion's span is proportional to its own
// host's speed; for general lattices it is the best rectangular
// approximation that keeps spans lattice-aligned.
func SpeedWeights2D(jx, jy int, speed []float64) (wx, wy []float64, err error) {
	if len(speed) != jx*jy {
		return nil, nil, fmt.Errorf("decomp: %d speeds for a (%d x %d) lattice", len(speed), jx, jy)
	}
	for i, s := range speed {
		if s <= 0 {
			return nil, nil, fmt.Errorf("decomp: speed of rank %d is %v, want > 0", i, s)
		}
	}
	wx = make([]float64, jx)
	wy = make([]float64, jy)
	for j := 0; j < jy; j++ {
		for i := 0; i < jx; i++ {
			s := speed[j*jx+i]
			wx[i] += s
			wy[j] += s
		}
	}
	return wx, wy, nil
}

// SpeedWeights3D is the 3D analogue of SpeedWeights2D, rank order
// (k*jy + j)*jx + i.
func SpeedWeights3D(jx, jy, jz int, speed []float64) (wx, wy, wz []float64, err error) {
	if len(speed) != jx*jy*jz {
		return nil, nil, nil, fmt.Errorf("decomp: %d speeds for a (%d x %d x %d) lattice", len(speed), jx, jy, jz)
	}
	for i, s := range speed {
		if s <= 0 {
			return nil, nil, nil, fmt.Errorf("decomp: speed of rank %d is %v, want > 0", i, s)
		}
	}
	wx = make([]float64, jx)
	wy = make([]float64, jy)
	wz = make([]float64, jz)
	for k := 0; k < jz; k++ {
		for j := 0; j < jy; j++ {
			for i := 0; i < jx; i++ {
				s := speed[(k*jy+j)*jx+i]
				wx[i] += s
				wy[j] += s
				wz[k] += s
			}
		}
	}
	return wx, wy, wz, nil
}

// WeightedShape2D computes the speed-weighted shape of a (jx x jy)
// decomposition of a gx x gy grid from per-rank host speeds. Equal
// speeds yield the uniform shape bit for bit.
func WeightedShape2D(jx, jy, gx, gy int, speed []float64) (Shape, error) {
	wx, wy, err := SpeedWeights2D(jx, jy, speed)
	if err != nil {
		return Shape{}, err
	}
	sx, err := WeightedSpans(gx, wx)
	if err != nil {
		return Shape{}, err
	}
	sy, err := WeightedSpans(gy, wy)
	if err != nil {
		return Shape{}, err
	}
	return Shape{X: sx, Y: sy}, nil
}

// WeightedShape3D computes the speed-weighted shape of a (jx x jy x jz)
// box decomposition of a gx x gy x gz grid from per-rank host speeds.
func WeightedShape3D(jx, jy, jz, gx, gy, gz int, speed []float64) (Shape, error) {
	wx, wy, wz, err := SpeedWeights3D(jx, jy, jz, speed)
	if err != nil {
		return Shape{}, err
	}
	sx, err := WeightedSpans(gx, wx)
	if err != nil {
		return Shape{}, err
	}
	sy, err := WeightedSpans(gy, wy)
	if err != nil {
		return Shape{}, err
	}
	sz, err := WeightedSpans(gz, wz)
	if err != nil {
		return Shape{}, err
	}
	return Shape{X: sx, Y: sy, Z: sz}, nil
}

// New2DShaped builds a 2D decomposition with explicit per-axis spans.
// The global grid is the sum of the spans; New2D is the uniform special
// case. Subregions stay contiguous (X0 of column i+1 is X0+NX of column
// i), so halo exchange works unchanged.
func New2DShaped(sh Shape, st Stencil) (*Decomp2D, error) {
	jx, jy := len(sh.X), len(sh.Y)
	if jx == 0 || jy == 0 || len(sh.Z) != 0 {
		return nil, fmt.Errorf("decomp: 2D shape needs x and y spans only (got %d/%d/%d)",
			len(sh.X), len(sh.Y), len(sh.Z))
	}
	gx, gy := 0, 0
	for _, n := range sh.X {
		gx += n
	}
	for _, n := range sh.Y {
		gy += n
	}
	if err := sh.Check(jx, jy, 0, gx, gy, 0); err != nil {
		return nil, err
	}
	d := &Decomp2D{JX: jx, JY: jy, GX: gx, GY: gy, Stencil: st}
	d.subs = make([]Subregion2D, jx*jy)
	y0 := 0
	for j := 0; j < jy; j++ {
		x0 := 0
		for i := 0; i < jx; i++ {
			d.subs[j*jx+i] = Subregion2D{
				Rank: j*jx + i, I: i, J: j,
				X0: x0, Y0: y0, NX: sh.X[i], NY: sh.Y[j],
				Active: true,
			}
			x0 += sh.X[i]
		}
		y0 += sh.Y[j]
	}
	d.active = jx * jy
	return d, nil
}

// New3DShaped builds a 3D decomposition with explicit per-axis spans,
// the analogue of New2DShaped.
func New3DShaped(sh Shape) (*Decomp3D, error) {
	jx, jy, jz := len(sh.X), len(sh.Y), len(sh.Z)
	if jx == 0 || jy == 0 || jz == 0 {
		return nil, fmt.Errorf("decomp: 3D shape needs x, y and z spans (got %d/%d/%d)",
			len(sh.X), len(sh.Y), len(sh.Z))
	}
	gx, gy, gz := 0, 0, 0
	for _, n := range sh.X {
		gx += n
	}
	for _, n := range sh.Y {
		gy += n
	}
	for _, n := range sh.Z {
		gz += n
	}
	if err := sh.Check(jx, jy, jz, gx, gy, gz); err != nil {
		return nil, err
	}
	d := &Decomp3D{JX: jx, JY: jy, JZ: jz, GX: gx, GY: gy, GZ: gz}
	d.subs = make([]Subregion3D, jx*jy*jz)
	r := 0
	z0 := 0
	for k := 0; k < jz; k++ {
		y0 := 0
		for j := 0; j < jy; j++ {
			x0 := 0
			for i := 0; i < jx; i++ {
				d.subs[(k*jy+j)*jx+i] = Subregion3D{
					Rank: r, I: i, J: j, K: k,
					X0: x0, Y0: y0, Z0: z0,
					NX: sh.X[i], NY: sh.Y[j], NZ: sh.Z[k],
					Active: true,
				}
				r++
				x0 += sh.X[i]
			}
			y0 += sh.Y[j]
		}
		z0 += sh.Z[k]
	}
	d.active = r
	return d, nil
}

// New2DWeighted builds a speed-weighted (jx x jy) decomposition of a
// gx x gy grid: per-rank host speeds (rank order row-major) size the
// spans so every subprocess finishes its local compute at about the same
// time. Equal speeds reproduce New2D bit for bit.
func New2DWeighted(jx, jy, gx, gy int, st Stencil, speed []float64) (*Decomp2D, error) {
	if jx <= 0 || jy <= 0 {
		return nil, fmt.Errorf("decomp: invalid decomposition (%d x %d)", jx, jy)
	}
	if gx < jx || gy < jy {
		return nil, fmt.Errorf("decomp: grid %dx%d smaller than decomposition (%d x %d)", gx, gy, jx, jy)
	}
	sh, err := WeightedShape2D(jx, jy, gx, gy, speed)
	if err != nil {
		return nil, err
	}
	return New2DShaped(sh, st)
}

// New3DWeighted builds a speed-weighted (jx x jy x jz) decomposition of
// a gx x gy x gz grid, the 3D analogue of New2DWeighted.
func New3DWeighted(jx, jy, jz, gx, gy, gz int, speed []float64) (*Decomp3D, error) {
	if jx <= 0 || jy <= 0 || jz <= 0 {
		return nil, fmt.Errorf("decomp: invalid decomposition (%d x %d x %d)", jx, jy, jz)
	}
	if gx < jx || gy < jy || gz < jz {
		return nil, fmt.Errorf("decomp: grid %dx%dx%d smaller than (%d x %d x %d)", gx, gy, gz, jx, jy, jz)
	}
	sh, err := WeightedShape3D(jx, jy, jz, gx, gy, gz, speed)
	if err != nil {
		return nil, err
	}
	return New3DShaped(sh)
}

// ShapeOf extracts the per-axis spans of an existing 2D decomposition
// (row 0's columns and column 0's rows; shaped decompositions are
// lattice-aligned by construction).
func (d *Decomp2D) ShapeOf() Shape {
	sh := Shape{X: make([]int, d.JX), Y: make([]int, d.JY)}
	for i := 0; i < d.JX; i++ {
		sh.X[i] = d.Sub(i, 0).NX
	}
	for j := 0; j < d.JY; j++ {
		sh.Y[j] = d.Sub(0, j).NY
	}
	return sh
}

// ShapeOf extracts the per-axis spans of an existing 3D decomposition.
func (d *Decomp3D) ShapeOf() Shape {
	sh := Shape{X: make([]int, d.JX), Y: make([]int, d.JY), Z: make([]int, d.JZ)}
	for i := 0; i < d.JX; i++ {
		sh.X[i] = d.Sub(i, 0, 0).NX
	}
	for j := 0; j < d.JY; j++ {
		sh.Y[j] = d.Sub(0, j, 0).NY
	}
	for k := 0; k < d.JZ; k++ {
		sh.Z[k] = d.Sub(0, 0, k).NZ
	}
	return sh
}
