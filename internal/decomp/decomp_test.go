package decomp

import (
	"testing"
	"testing/quick"
)

func TestSpanCoversGridExactly(t *testing.T) {
	f := func(g8, p8 uint8) bool {
		g, p := int(g8)+1, int(p8)%16+1
		if g < p {
			g = p
		}
		total := 0
		prevEnd := 0
		for i := 0; i < p; i++ {
			off, n := span(g, p, i)
			if off != prevEnd || n <= 0 {
				return false
			}
			prevEnd = off + n
			total += n
		}
		return total == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpanNearlyUniform(t *testing.T) {
	// Pieces differ by at most one node.
	for _, c := range []struct{ g, p int }{{100, 7}, {800, 5}, {500, 4}, {9, 3}, {10, 10}} {
		min, max := 1<<30, 0
		for i := 0; i < c.p; i++ {
			_, n := span(c.g, c.p, i)
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("span(%d,%d): piece sizes range [%d,%d]", c.g, c.p, min, max)
		}
	}
}

func TestNew2DBasic(t *testing.T) {
	d, err := New2D(5, 4, 800, 500, Star)
	if err != nil {
		t.Fatal(err)
	}
	if d.P() != 20 || d.Total() != 20 {
		t.Fatalf("P = %d, Total = %d, want 20, 20", d.P(), d.Total())
	}
	s := d.Sub(0, 0)
	if s.X0 != 0 || s.Y0 != 0 || s.NX != 160 || s.NY != 125 {
		t.Errorf("sub(0,0) = %+v", s)
	}
	// Ranks must be dense and unique.
	seen := map[int]bool{}
	for _, s := range d.Subregions() {
		if seen[s.Rank] {
			t.Fatalf("duplicate rank %d", s.Rank)
		}
		seen[s.Rank] = true
	}
}

func TestNew2DErrors(t *testing.T) {
	if _, err := New2D(0, 4, 100, 100, Star); err == nil {
		t.Error("accepted zero JX")
	}
	if _, err := New2D(5, 4, 4, 100, Star); err == nil {
		t.Error("accepted grid smaller than decomposition")
	}
}

func TestNeighborTopologyStar(t *testing.T) {
	d, _ := New2D(3, 3, 90, 90, Star)
	center := d.Sub(1, 1)
	nbrs := d.Neighbors(center)
	if len(nbrs) != 4 {
		t.Fatalf("center has %d star neighbours, want 4", len(nbrs))
	}
	if nbrs[West].I != 0 || nbrs[East].I != 2 || nbrs[South].J != 0 || nbrs[North].J != 2 {
		t.Errorf("bad neighbour positions: %+v", nbrs)
	}
	corner := d.Sub(0, 0)
	if got := len(d.Neighbors(corner)); got != 2 {
		t.Errorf("corner has %d neighbours, want 2", got)
	}
	// Diagonal lookups return nil under a star stencil.
	if d.Neighbor(center, NorthEast) != nil {
		t.Error("star stencil returned a diagonal neighbour")
	}
}

func TestNeighborTopologyFull(t *testing.T) {
	d, _ := New2D(3, 3, 90, 90, Full)
	center := d.Sub(1, 1)
	if got := len(d.Neighbors(center)); got != 8 {
		t.Fatalf("center has %d full neighbours, want 8", got)
	}
	corner := d.Sub(2, 2)
	if got := len(d.Neighbors(corner)); got != 3 {
		t.Errorf("corner has %d full neighbours, want 3", got)
	}
}

func TestNeighborReciprocity(t *testing.T) {
	d, _ := New2D(4, 3, 120, 90, Full)
	for idx := range d.Subregions() {
		s := &d.Subregions()[idx]
		for dir, n := range d.Neighbors(s) {
			back := d.Neighbor(n, dir.Opposite())
			if back == nil || back.I != s.I || back.J != s.J {
				t.Fatalf("neighbour reciprocity broken at (%d,%d) dir %v", s.I, s.J, dir)
			}
		}
	}
}

func TestDirOppositeInvolution(t *testing.T) {
	for d := West; d < numDirs; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
		dx, dy := d.Delta()
		ox, oy := d.Opposite().Delta()
		if dx != -ox || dy != -oy {
			t.Errorf("Opposite(%v) delta mismatch", d)
		}
	}
}

func TestDeactivateRenumbers(t *testing.T) {
	d, _ := New2D(6, 4, 1107, 700, Star)
	// Mimic figure 2: deactivate 9 all-wall subregions.
	walls := [][2]int{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {0, 1}, {5, 3}, {5, 2}, {0, 2}}
	for _, w := range walls {
		d.Deactivate(w[0], w[1])
	}
	if d.P() != 15 {
		t.Fatalf("active = %d, want 15", d.P())
	}
	// Ranks are dense 0..14 over active subregions.
	seen := map[int]bool{}
	for _, s := range d.ActiveSubregions() {
		if s.Rank < 0 || s.Rank >= 15 || seen[s.Rank] {
			t.Fatalf("bad rank %d", s.Rank)
		}
		seen[s.Rank] = true
	}
	// Inactive subregions are not returned as neighbours.
	s := d.Sub(1, 1)
	if d.Neighbor(s, South) != nil {
		t.Error("inactive subregion returned as neighbour")
	}
	// ByRank round-trips.
	for _, s := range d.ActiveSubregions() {
		got := d.ByRank(s.Rank)
		if got.I != s.I || got.J != s.J {
			t.Fatalf("ByRank(%d) = (%d,%d), want (%d,%d)", s.Rank, got.I, got.J, s.I, s.J)
		}
	}
}

func TestDeactivateWalls(t *testing.T) {
	d, _ := New2D(2, 2, 40, 40, Star)
	// Left half entirely solid.
	n := d.DeactivateWalls(func(x, y int) bool { return x < 20 })
	if n != 2 || d.P() != 2 {
		t.Fatalf("deactivated %d, active %d; want 2, 2", n, d.P())
	}
	if d.Sub(0, 0).Active || d.Sub(0, 1).Active {
		t.Error("solid subregions still active")
	}
	if !d.Sub(1, 0).Active || !d.Sub(1, 1).Active {
		t.Error("fluid subregions deactivated")
	}
}

func TestSurfaceFactorTable(t *testing.T) {
	// The m table of section 8: (P x 1) -> 2, (2 x 2) -> 2, (3 x 3) -> 3,
	// (4 x 4) -> 4, (5 x 4) -> 4. PaperM reproduces it verbatim.
	cases := []struct {
		jx, jy, want int
	}{
		{7, 1, 2}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {5, 4, 4},
	}
	for _, c := range cases {
		d, err := New2D(c.jx, c.jy, 40*c.jx, 40*c.jy, Star)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.PaperM(); got != c.want {
			t.Errorf("PaperM(%d x %d) = %d, want %d", c.jx, c.jy, got, c.want)
		}
	}
}

func TestSurfaceFactorMaxSides(t *testing.T) {
	d, _ := New2D(5, 4, 200, 160, Star)
	if got := d.SurfaceFactor(); got != 4 {
		t.Errorf("SurfaceFactor(5x4) = %d, want 4 (interior subregion)", got)
	}
	d1, _ := New2D(6, 1, 120, 20, Star)
	if got := d1.SurfaceFactor(); got != 2 {
		t.Errorf("SurfaceFactor(6x1) = %d, want 2", got)
	}
}

func TestMeanSideCount(t *testing.T) {
	d, _ := New2D(3, 3, 90, 90, Star)
	// 4 corners*2 + 4 edges*3 + 1 center*4 = 24 sides over 9 subregions.
	want := 24.0 / 9.0
	if got := d.MeanSideCount(); got != want {
		t.Errorf("MeanSideCount = %v, want %v", got, want)
	}
}

func TestUnsynchronizationBounds(t *testing.T) {
	// Appendix A: full stencil DN = max(J,K)-1 (eq. 22); star stencil
	// DN = (J-1)+(K-1) (eq. 23).
	full, _ := New2D(6, 4, 120, 80, Full)
	if got := full.MaxUnsyncSteps(); got != 5 {
		t.Errorf("full-stencil unsync = %d, want 5", got)
	}
	star, _ := New2D(6, 4, 120, 80, Star)
	if got := star.MaxUnsyncSteps(); got != 8 {
		t.Errorf("star-stencil unsync = %d, want 8", got)
	}
}

func TestNew3DBasic(t *testing.T) {
	d, err := New3D(3, 2, 2, 75, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d.P() != 12 {
		t.Fatalf("P = %d, want 12", d.P())
	}
	s := d.Sub(1, 1, 1)
	if s.X0 != 25 || s.Y0 != 25 || s.Z0 != 25 {
		t.Errorf("sub(1,1,1) offsets = (%d,%d,%d)", s.X0, s.Y0, s.Z0)
	}
	// Full coverage: node counts sum to the grid volume.
	total := 0
	for _, s := range d.Subregions() {
		total += s.Nodes()
	}
	if total != 75*50*50 {
		t.Errorf("total nodes %d != %d", total, 75*50*50)
	}
}

func TestNew3DErrors(t *testing.T) {
	if _, err := New3D(2, 2, 0, 10, 10, 10); err == nil {
		t.Error("accepted zero JZ")
	}
	if _, err := New3D(4, 2, 2, 3, 10, 10); err == nil {
		t.Error("accepted undersized grid")
	}
}

func Test3DNeighborsAndFaces(t *testing.T) {
	d, _ := New3D(3, 3, 3, 30, 30, 30)
	center := d.Sub(1, 1, 1)
	if got := d.FaceCount(center); got != 6 {
		t.Errorf("center faces = %d, want 6", got)
	}
	corner := d.Sub(0, 0, 0)
	if got := d.FaceCount(corner); got != 3 {
		t.Errorf("corner faces = %d, want 3", got)
	}
	if got := d.SurfaceFactor(); got != 6 {
		t.Errorf("SurfaceFactor = %d, want 6", got)
	}
	// (P x 1 x 1) pencil: m = 2 as used in figure 13.
	p, _ := New3D(8, 1, 1, 200, 25, 25)
	if got := p.SurfaceFactor(); got != 2 {
		t.Errorf("pencil SurfaceFactor = %d, want 2", got)
	}
}

func TestDir3OppositeInvolution(t *testing.T) {
	for d := West3; d < numDirs3; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
		dx, dy, dz := d.Delta()
		ox, oy, oz := d.Opposite().Delta()
		if dx != -ox || dy != -oy || dz != -oz {
			t.Errorf("Opposite(%v) delta mismatch", d)
		}
	}
}

func Test3DNeighborReciprocity(t *testing.T) {
	d, _ := New3D(2, 3, 2, 20, 30, 20)
	for idx := range d.Subregions() {
		s := &d.Subregions()[idx]
		for _, dir := range Dirs3() {
			n := d.Neighbor(s, dir)
			if n == nil {
				continue
			}
			back := d.Neighbor(n, dir.Opposite())
			if back == nil || back.Rank != s.Rank {
				t.Fatalf("3D reciprocity broken at rank %d dir %v", s.Rank, dir)
			}
		}
	}
}
