package decomp

import "fmt"

// Dir3 is a face direction in 3D. The paper's 3D decompositions are
// (P x 1 x 1) and small (J x K x L) lattices; halo exchange is per face
// (star stencil), which is all the D3Q15 lattice Boltzmann method and the
// 3D finite-difference stencil require.
type Dir3 int

const (
	West3  Dir3 = iota // -x
	East3              // +x
	South3             // -y
	North3             // +y
	Down3              // -z
	Up3                // +z
	numDirs3
)

// Opposite returns the direction pointing back at the sender.
func (d Dir3) Opposite() Dir3 {
	switch d {
	case West3:
		return East3
	case East3:
		return West3
	case South3:
		return North3
	case North3:
		return South3
	case Down3:
		return Up3
	case Up3:
		return Down3
	}
	panic(fmt.Sprintf("decomp: invalid 3D direction %d", d))
}

// Delta returns the (dx, dy, dz) lattice offset of direction d.
func (d Dir3) Delta() (int, int, int) {
	switch d {
	case West3:
		return -1, 0, 0
	case East3:
		return 1, 0, 0
	case South3:
		return 0, -1, 0
	case North3:
		return 0, 1, 0
	case Down3:
		return 0, 0, -1
	case Up3:
		return 0, 0, 1
	}
	panic(fmt.Sprintf("decomp: invalid 3D direction %d", d))
}

func (d Dir3) String() string {
	names := [...]string{"W", "E", "S", "N", "D", "U"}
	if d < 0 || int(d) >= len(names) {
		return fmt.Sprintf("Dir3(%d)", int(d))
	}
	return names[d]
}

// Dirs3 returns all six face directions in deterministic order.
func Dirs3() []Dir3 {
	return []Dir3{West3, East3, South3, North3, Down3, Up3}
}

// Subregion3D describes one box of a 3D decomposition.
type Subregion3D struct {
	Rank       int
	I, J, K    int
	X0, Y0, Z0 int
	NX, NY, NZ int
	Active     bool
}

// Nodes returns the interior node count of the subregion.
func (s Subregion3D) Nodes() int { return s.NX * s.NY * s.NZ }

// Decomp3D is a (J x K x L) decomposition of a GX x GY x GZ grid.
type Decomp3D struct {
	JX, JY, JZ int
	GX, GY, GZ int

	// Periodic axes wrap the lattice, as in Decomp2D.
	PeriodicX, PeriodicY, PeriodicZ bool

	subs   []Subregion3D
	active int
}

// New3D builds a uniform 3D decomposition; remainders are distributed one
// node per leading subregion along each axis.
func New3D(jx, jy, jz, gx, gy, gz int) (*Decomp3D, error) {
	if jx <= 0 || jy <= 0 || jz <= 0 {
		return nil, fmt.Errorf("decomp: invalid decomposition (%d x %d x %d)", jx, jy, jz)
	}
	if gx < jx || gy < jy || gz < jz {
		return nil, fmt.Errorf("decomp: grid %dx%dx%d smaller than (%d x %d x %d)", gx, gy, gz, jx, jy, jz)
	}
	return New3DShaped(UniformShape3D(jx, jy, jz, gx, gy, gz))
}

// P returns the number of active subregions.
func (d *Decomp3D) P() int { return d.active }

// Sub returns the subregion at lattice position (i, j, k).
func (d *Decomp3D) Sub(i, j, k int) *Subregion3D {
	if i < 0 || i >= d.JX || j < 0 || j >= d.JY || k < 0 || k >= d.JZ {
		panic(fmt.Sprintf("decomp: lattice position (%d,%d,%d) outside (%d x %d x %d)",
			i, j, k, d.JX, d.JY, d.JZ))
	}
	return &d.subs[(k*d.JY+j)*d.JX+i]
}

// Subregions returns all subregions in rank order.
func (d *Decomp3D) Subregions() []Subregion3D { return d.subs }

// ByRank returns the active subregion with the given rank.
func (d *Decomp3D) ByRank(rank int) *Subregion3D {
	for i := range d.subs {
		if d.subs[i].Active && d.subs[i].Rank == rank {
			return &d.subs[i]
		}
	}
	panic(fmt.Sprintf("decomp: no active 3D subregion with rank %d", rank))
}

// Neighbor returns the active neighbour in face direction dir, or nil.
func (d *Decomp3D) Neighbor(s *Subregion3D, dir Dir3) *Subregion3D {
	dx, dy, dz := dir.Delta()
	ni, nj, nk := s.I+dx, s.J+dy, s.K+dz
	if d.PeriodicX {
		ni = (ni + d.JX) % d.JX
	}
	if d.PeriodicY {
		nj = (nj + d.JY) % d.JY
	}
	if d.PeriodicZ {
		nk = (nk + d.JZ) % d.JZ
	}
	if ni < 0 || ni >= d.JX || nj < 0 || nj >= d.JY || nk < 0 || nk >= d.JZ {
		return nil
	}
	n := d.Sub(ni, nj, nk)
	if !n.Active {
		return nil
	}
	return n
}

// FaceCount returns the number of communicating faces of s.
func (d *Decomp3D) FaceCount(s *Subregion3D) int {
	n := 0
	for _, dir := range Dirs3() {
		if d.Neighbor(s, dir) != nil {
			n++
		}
	}
	return n
}

// SurfaceFactor returns the 3D analogue of m: the maximum number of
// communicating faces over active subregions, so that the communicating
// surface is N_c = m N^{2/3} (eq. 16).
func (d *Decomp3D) SurfaceFactor() int {
	m := 0
	for i := range d.subs {
		if !d.subs[i].Active {
			continue
		}
		if c := d.FaceCount(&d.subs[i]); c > m {
			m = c
		}
	}
	return m
}

func (d *Decomp3D) String() string {
	return fmt.Sprintf("(%d x %d x %d) of %dx%dx%d, %d active",
		d.JX, d.JY, d.JZ, d.GX, d.GY, d.GZ, d.active)
}
