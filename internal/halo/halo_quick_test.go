package halo

import (
	"testing"
	"testing/quick"

	"repro/internal/decomp"
	"repro/internal/grid"
)

// TestExtractInjectProperty: for any region inside any field, inject
// (extract (f)) reproduces exactly the region and touches nothing else.
func TestExtractInjectProperty(t *testing.T) {
	f := func(nx8, ny8, x8, y8, w8, h8 uint8) bool {
		nx, ny := int(nx8%20)+3, int(ny8%20)+3
		x0, y0 := int(x8%uint8(nx))-1, int(y8%uint8(ny))-1
		w, h := int(w8)%(nx-x0)+1, int(h8)%(ny-y0)+1
		if x0+w > nx+1 || y0+h > ny+1 {
			return true // region exceeds the ghost shell; skip
		}
		src := grid.NewField2D(nx, ny, 1)
		for y := -1; y <= ny; y++ {
			for x := -1; x <= nx; x++ {
				src.Set(x, y, float64(1000*y+x))
			}
		}
		r := Region2D{X0: x0, Y0: y0, NX: w, NY: h}
		buf := Extract2D(src, r, nil)
		dst := grid.NewField2D(nx, ny, 1)
		dst.Fill(-9)
		Inject2D(dst, r, buf)
		for y := -1; y <= ny; y++ {
			for x := -1; x <= nx; x++ {
				in := x >= x0 && x < x0+w && y >= y0 && y < y0+h
				want := -9.0
				if in {
					want = src.At(x, y)
				}
				if dst.At(x, y) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSendRecvRegionsComplementProperty: for every direction and field
// shape, the ghost-fill send region (interior) and receive region (ghost)
// are disjoint, equal-sized, and offset by exactly the side's normal
// times the interior extent.
func TestSendRecvRegionsComplementProperty(t *testing.T) {
	f := func(nx8, ny8, dir8 uint8) bool {
		nx, ny := int(nx8%30)+2, int(ny8%30)+2
		dir := decomp.Dir(dir8 % 8)
		fl := grid.NewField2D(nx, ny, 1)
		send := SendInterior2D(fl, dir)
		recv := RecvGhost2D(fl, dir)
		if send.Len() != recv.Len() || send.Len() == 0 {
			return false
		}
		// Disjoint: interior strips live in [0, n), ghost strips outside.
		inInterior := send.X0 >= 0 && send.Y0 >= 0 &&
			send.X0+send.NX <= nx && send.Y0+send.NY <= ny
		outInterior := recv.X0 < 0 || recv.Y0 < 0 ||
			recv.X0+recv.NX > nx || recv.Y0+recv.NY > ny
		return inInterior && outInterior
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
