package halo

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/grid"
)

// fillCoords stamps each node (ghosts included) with a unique value.
func fillCoords(f *grid.Field2D) {
	for y := -f.H; y < f.NY+f.H; y++ {
		for x := -f.H; x < f.NX+f.H; x++ {
			f.Set(x, y, float64(1000*y+x))
		}
	}
}

func TestExtractInjectRoundTrip(t *testing.T) {
	f := grid.NewField2D(6, 5, 1)
	fillCoords(f)
	r := Region2D{X0: 2, Y0: 1, NX: 3, NY: 2}
	buf := Extract2D(f, r, nil)
	if len(buf) != r.Len() {
		t.Fatalf("extracted %d values, want %d", len(buf), r.Len())
	}
	g := grid.NewField2D(6, 5, 1)
	rest := Inject2D(g, r, buf)
	if len(rest) != 0 {
		t.Fatalf("leftover %d values", len(rest))
	}
	for y := 1; y < 3; y++ {
		for x := 2; x < 5; x++ {
			if g.At(x, y) != f.At(x, y) {
				t.Errorf("(%d,%d): got %v want %v", x, y, g.At(x, y), f.At(x, y))
			}
		}
	}
	// Outside the region g is untouched.
	if g.At(0, 0) != 0 || g.At(5, 4) != 0 {
		t.Error("Inject2D wrote outside the region")
	}
}

func TestSideRegionsGeometry(t *testing.T) {
	f := grid.NewField2D(8, 5, 2)
	cases := []struct {
		dir  decomp.Dir
		send Region2D
		recv Region2D
	}{
		{decomp.West, Region2D{0, 0, 2, 5}, Region2D{-2, 0, 2, 5}},
		{decomp.East, Region2D{6, 0, 2, 5}, Region2D{8, 0, 2, 5}},
		{decomp.South, Region2D{0, 0, 8, 2}, Region2D{0, -2, 8, 2}},
		{decomp.North, Region2D{0, 3, 8, 2}, Region2D{0, 5, 8, 2}},
		{decomp.SouthWest, Region2D{0, 0, 2, 2}, Region2D{-2, -2, 2, 2}},
		{decomp.NorthEast, Region2D{6, 3, 2, 2}, Region2D{8, 5, 2, 2}},
	}
	for _, c := range cases {
		if got := SendInterior2D(f, c.dir); got != c.send {
			t.Errorf("SendInterior2D(%v) = %v, want %v", c.dir, got, c.send)
		}
		if got := RecvGhost2D(f, c.dir); got != c.recv {
			t.Errorf("RecvGhost2D(%v) = %v, want %v", c.dir, got, c.recv)
		}
		// Outflow-delivery regions mirror ghost-fill regions.
		if got := SendGhost2D(f, c.dir); got != c.recv {
			t.Errorf("SendGhost2D(%v) = %v, want %v", c.dir, got, c.recv)
		}
		if got := RecvInterior2D(f, c.dir); got != c.send {
			t.Errorf("RecvInterior2D(%v) = %v, want %v", c.dir, got, c.send)
		}
	}
}

// TestGhostFillExchange wires two side-by-side fields and checks that a
// West-East exchange reproduces a contiguous global grid: the ghost column
// of each equals the interior edge of the other.
func TestGhostFillExchange(t *testing.T) {
	left := grid.NewField2D(4, 3, 1)
	right := grid.NewField2D(4, 3, 1)
	// Global coordinates: left covers x 0..3, right covers x 4..7.
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			left.Set(x, y, float64(100*y+x))
			right.Set(x, y, float64(100*y+x+4))
		}
	}
	// left sends East interior edge -> right's West ghost, and vice versa.
	buf := Extract2D(left, SendInterior2D(left, decomp.East), nil)
	Inject2D(right, RecvGhost2D(right, decomp.West), buf)
	buf = Extract2D(right, SendInterior2D(right, decomp.West), nil)
	Inject2D(left, RecvGhost2D(left, decomp.East), buf)

	for y := 0; y < 3; y++ {
		if got, want := right.At(-1, y), float64(100*y+3); got != want {
			t.Errorf("right ghost (-1,%d) = %v, want %v", y, got, want)
		}
		if got, want := left.At(4, y), float64(100*y+4); got != want {
			t.Errorf("left ghost (4,%d) = %v, want %v", y, got, want)
		}
	}
}

func TestPackUnpackMultiField(t *testing.T) {
	a := grid.NewField2D(5, 4, 1)
	b := grid.NewField2D(5, 4, 1)
	fillCoords(a)
	for y := -1; y < 5; y++ {
		for x := -1; x < 6; x++ {
			b.Set(x, y, float64(-(1000*y + x)))
		}
	}
	fields := []*grid.Field2D{a, b}
	buf := PackSend2D(fields, decomp.North, true, nil)
	if len(buf) != MsgLen2D(fields, decomp.North) {
		t.Fatalf("message length %d, want %d", len(buf), MsgLen2D(fields, decomp.North))
	}
	// Receiver side: two fresh fields; the buffer fills their South ghosts
	// (data from the neighbour to the South arrives from direction South).
	ra := grid.NewField2D(5, 4, 1)
	rb := grid.NewField2D(5, 4, 1)
	UnpackRecv2D([]*grid.Field2D{ra, rb}, decomp.South, true, buf)
	for x := 0; x < 5; x++ {
		if got, want := ra.At(x, -1), a.At(x, 3); got != want {
			t.Errorf("ra ghost (%d,-1) = %v, want %v", x, got, want)
		}
		if got, want := rb.At(x, -1), b.At(x, 3); got != want {
			t.Errorf("rb ghost (%d,-1) = %v, want %v", x, got, want)
		}
	}
}

func TestUnpackLengthMismatchPanics(t *testing.T) {
	f := grid.NewField2D(4, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("UnpackRecv2D with oversized buffer did not panic")
		}
	}()
	buf := make([]float64, RecvGhost2D(f, decomp.West).Len()+3)
	UnpackRecv2D([]*grid.Field2D{f}, decomp.West, true, buf)
}

func fillCoords3(f *grid.Field3D) {
	for z := -f.H; z < f.NZ+f.H; z++ {
		for y := -f.H; y < f.NY+f.H; y++ {
			for x := -f.H; x < f.NX+f.H; x++ {
				f.Set(x, y, z, float64(10000*z+100*y+x))
			}
		}
	}
}

func TestExtractInject3DRoundTrip(t *testing.T) {
	f := grid.NewField3D(4, 4, 4, 1)
	fillCoords3(f)
	r := Region3D{X0: 1, Y0: 0, Z0: 2, NX: 2, NY: 3, NZ: 2}
	buf := Extract3D(f, r, nil)
	if len(buf) != r.Len() {
		t.Fatalf("extracted %d, want %d", len(buf), r.Len())
	}
	g := grid.NewField3D(4, 4, 4, 1)
	Inject3D(g, r, buf)
	for z := 2; z < 4; z++ {
		for y := 0; y < 3; y++ {
			for x := 1; x < 3; x++ {
				if g.At(x, y, z) != f.At(x, y, z) {
					t.Fatalf("(%d,%d,%d) mismatch", x, y, z)
				}
			}
		}
	}
}

func TestFaceRegions3D(t *testing.T) {
	f := grid.NewField3D(5, 6, 7, 1)
	cases := []struct {
		dir  decomp.Dir3
		send Region3D
		recv Region3D
	}{
		{decomp.West3, Region3D{0, 0, 0, 1, 6, 7}, Region3D{-1, 0, 0, 1, 6, 7}},
		{decomp.East3, Region3D{4, 0, 0, 1, 6, 7}, Region3D{5, 0, 0, 1, 6, 7}},
		{decomp.North3, Region3D{0, 5, 0, 5, 1, 7}, Region3D{0, 6, 0, 5, 1, 7}},
		{decomp.Up3, Region3D{0, 0, 6, 5, 6, 1}, Region3D{0, 0, 7, 5, 6, 1}},
	}
	for _, c := range cases {
		if got := SendInterior3D(f, c.dir); got != c.send {
			t.Errorf("SendInterior3D(%v) = %v, want %v", c.dir, got, c.send)
		}
		if got := RecvGhost3D(f, c.dir); got != c.recv {
			t.Errorf("RecvGhost3D(%v) = %v, want %v", c.dir, got, c.recv)
		}
	}
}

func TestGhostFillExchange3D(t *testing.T) {
	lo := grid.NewField3D(3, 3, 3, 1)
	hi := grid.NewField3D(3, 3, 3, 1)
	// Stacked in z: lo covers z 0..2, hi covers z 3..5.
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				lo.Set(x, y, z, float64(100*z+10*y+x))
				hi.Set(x, y, z, float64(100*(z+3)+10*y+x))
			}
		}
	}
	buf := PackSend3D([]*grid.Field3D{lo}, decomp.Up3, true, nil)
	UnpackRecv3D([]*grid.Field3D{hi}, decomp.Down3, true, buf)
	buf = PackSend3D([]*grid.Field3D{hi}, decomp.Down3, true, nil)
	UnpackRecv3D([]*grid.Field3D{lo}, decomp.Up3, true, buf)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if got, want := hi.At(x, y, -1), float64(100*2+10*y+x); got != want {
				t.Errorf("hi ghost (%d,%d,-1) = %v, want %v", x, y, got, want)
			}
			if got, want := lo.At(x, y, 3), float64(100*3+10*y+x); got != want {
				t.Errorf("lo ghost (%d,%d,3) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestMsgLen3DCounts(t *testing.T) {
	f := grid.NewField3D(10, 20, 30, 1)
	fields := []*grid.Field3D{f, f, f, f, f} // 5 variables as in 3D LB
	if got := MsgLen3D(fields, decomp.East3); got != 5*20*30 {
		t.Errorf("MsgLen3D = %d, want %d", got, 5*20*30)
	}
}
