// Package halo implements the "padding" / ghost-cell boundary exchange of
// section 4.2: each subregion is padded with extra node layers on the
// outside, and before (or after) each local computation the padded areas are
// copied between neighbouring subregions. Once the copy is done the boundary
// values are available locally and the interior update proceeds as if there
// were no communication at all.
//
// Two exchange conventions appear in the paper's two numerical methods:
//
//   - Ghost fill (finite differences): each process sends its interior edge
//     strip, and the receiver stores it into the ghost strip on the facing
//     side. Regions: SendInterior -> RecvGhost.
//
//   - Outflow delivery (lattice Boltzmann): the shift step writes populations
//     that leave the subregion into the ghost strip; each process sends its
//     ghost strip and the receiver stores it into its interior edge strip.
//     Regions: SendGhost -> RecvInterior.
//
// The package is deliberately dumb about meaning: it extracts and injects
// rectangular regions of grid fields into flat buffers, and packs several
// fields into a single buffer so that a method can send all its boundary
// data in one message (the paper notes LB sends one message per neighbour
// per step versus FD's two, which matters on a network with per-message
// overhead).
package halo

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/grid"
)

// Region2D is a rectangle in field-local coordinates; ghost offsets
// (negative, or >= NX/NY) are legal.
type Region2D struct {
	X0, Y0 int
	NX, NY int
}

// Len returns the node count of the region.
func (r Region2D) Len() int { return r.NX * r.NY }

func (r Region2D) String() string {
	return fmt.Sprintf("[%d:%d)x[%d:%d)", r.X0, r.X0+r.NX, r.Y0, r.Y0+r.NY)
}

// Extract2D appends the region's values (row-major) to buf and returns the
// extended buffer.
func Extract2D(f *grid.Field2D, r Region2D, buf []float64) []float64 {
	data, s := f.Data(), f.Stride()
	for y := r.Y0; y < r.Y0+r.NY; y++ {
		row := data[f.Idx(r.X0, y) : f.Idx(r.X0, y)+r.NX]
		buf = append(buf, row...) //detlint:allow allocsteady -- grows only on the first exchange; steady-state callers reuse a full-capacity buffer
		_ = s
	}
	return buf
}

// Inject2D copies len(r) values from buf into the region and returns the
// remainder of buf.
func Inject2D(f *grid.Field2D, r Region2D, buf []float64) []float64 {
	for y := r.Y0; y < r.Y0+r.NY; y++ {
		row := f.Data()[f.Idx(r.X0, y) : f.Idx(r.X0, y)+r.NX]
		copy(row, buf[:r.NX])
		buf = buf[r.NX:]
	}
	return buf
}

// sideSpans returns the x-span and y-span of the strip on side dir of an
// nx-by-ny interior with h layers, at depth inside (true = interior strip,
// false = ghost strip).
func sideSpans(nx, ny, h int, dir decomp.Dir, interior bool) Region2D {
	switch dir {
	case decomp.West:
		if interior {
			return Region2D{0, 0, h, ny}
		}
		return Region2D{-h, 0, h, ny}
	case decomp.East:
		if interior {
			return Region2D{nx - h, 0, h, ny}
		}
		return Region2D{nx, 0, h, ny}
	case decomp.South:
		if interior {
			return Region2D{0, 0, nx, h}
		}
		return Region2D{0, -h, nx, h}
	case decomp.North:
		if interior {
			return Region2D{0, ny - h, nx, h}
		}
		return Region2D{0, ny, nx, h}
	case decomp.SouthWest:
		if interior {
			return Region2D{0, 0, h, h}
		}
		return Region2D{-h, -h, h, h}
	case decomp.SouthEast:
		if interior {
			return Region2D{nx - h, 0, h, h}
		}
		return Region2D{nx, -h, h, h}
	case decomp.NorthWest:
		if interior {
			return Region2D{0, ny - h, h, h}
		}
		return Region2D{-h, ny, h, h}
	case decomp.NorthEast:
		if interior {
			return Region2D{nx - h, ny - h, h, h}
		}
		return Region2D{nx, ny, h, h}
	}
	panic(fmt.Sprintf("halo: invalid direction %v", dir))
}

// SendInterior2D is the interior strip adjacent to side dir: what a
// ghost-fill method sends to the neighbour at dir.
func SendInterior2D(f *grid.Field2D, dir decomp.Dir) Region2D {
	return sideSpans(f.NX, f.NY, f.H, dir, true)
}

// RecvGhost2D is the ghost strip on side dir: where a ghost-fill method
// stores data received from the neighbour at dir.
func RecvGhost2D(f *grid.Field2D, dir decomp.Dir) Region2D {
	return sideSpans(f.NX, f.NY, f.H, dir, false)
}

// SendGhost2D is the ghost strip on side dir: what an outflow-delivery
// method (LB after shifting) sends to the neighbour at dir.
func SendGhost2D(f *grid.Field2D, dir decomp.Dir) Region2D {
	return sideSpans(f.NX, f.NY, f.H, dir, false)
}

// RecvInterior2D is the interior strip adjacent to side dir: where an
// outflow-delivery method stores data received from the neighbour at dir.
func RecvInterior2D(f *grid.Field2D, dir decomp.Dir) Region2D {
	return sideSpans(f.NX, f.NY, f.H, dir, true)
}

// PackSend2D extracts the send regions of every field for direction dir
// under the given convention (ghostFill true = SendInterior) into one
// buffer, so all boundary data for a neighbour travels in one message.
func PackSend2D(fields []*grid.Field2D, dir decomp.Dir, ghostFill bool, buf []float64) []float64 {
	for _, f := range fields {
		var r Region2D
		if ghostFill {
			r = SendInterior2D(f, dir)
		} else {
			r = SendGhost2D(f, dir)
		}
		buf = Extract2D(f, r, buf)
	}
	return buf
}

// UnpackRecv2D injects a buffer produced by PackSend2D on the neighbour at
// dir into the receive regions of every field.
func UnpackRecv2D(fields []*grid.Field2D, dir decomp.Dir, ghostFill bool, buf []float64) {
	for _, f := range fields {
		var r Region2D
		if ghostFill {
			r = RecvGhost2D(f, dir)
		} else {
			r = RecvInterior2D(f, dir)
		}
		buf = Inject2D(f, r, buf)
	}
	if len(buf) != 0 {
		panic(fmt.Sprintf("halo: %d leftover values after unpack", len(buf)))
	}
}

// MsgLen2D returns the number of float64 values a PackSend2D message
// carries for the given fields and direction.
func MsgLen2D(fields []*grid.Field2D, dir decomp.Dir) int {
	n := 0
	for _, f := range fields {
		n += SendInterior2D(f, dir).Len()
	}
	return n
}
