package halo

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/grid"
)

// Region3D is a box in field-local coordinates; ghost offsets are legal.
type Region3D struct {
	X0, Y0, Z0 int
	NX, NY, NZ int
}

// Len returns the node count of the region.
func (r Region3D) Len() int { return r.NX * r.NY * r.NZ }

// Extract3D appends the region's values (x fastest, then y, then z) to buf.
func Extract3D(f *grid.Field3D, r Region3D, buf []float64) []float64 {
	for z := r.Z0; z < r.Z0+r.NZ; z++ {
		for y := r.Y0; y < r.Y0+r.NY; y++ {
			row := f.Data()[f.Idx(r.X0, y, z) : f.Idx(r.X0, y, z)+r.NX]
			buf = append(buf, row...) //detlint:allow allocsteady -- grows only on the first exchange; steady-state callers reuse a full-capacity buffer
		}
	}
	return buf
}

// Inject3D copies region values from buf into f and returns the remainder.
func Inject3D(f *grid.Field3D, r Region3D, buf []float64) []float64 {
	for z := r.Z0; z < r.Z0+r.NZ; z++ {
		for y := r.Y0; y < r.Y0+r.NY; y++ {
			row := f.Data()[f.Idx(r.X0, y, z) : f.Idx(r.X0, y, z)+r.NX]
			copy(row, buf[:r.NX])
			buf = buf[r.NX:]
		}
	}
	return buf
}

// faceSpans returns the strip on face dir, interior or ghost. Face strips
// span the full interior extent of the two tangential axes.
func faceSpans(nx, ny, nz, h int, dir decomp.Dir3, interior bool) Region3D {
	switch dir {
	case decomp.West3:
		if interior {
			return Region3D{0, 0, 0, h, ny, nz}
		}
		return Region3D{-h, 0, 0, h, ny, nz}
	case decomp.East3:
		if interior {
			return Region3D{nx - h, 0, 0, h, ny, nz}
		}
		return Region3D{nx, 0, 0, h, ny, nz}
	case decomp.South3:
		if interior {
			return Region3D{0, 0, 0, nx, h, nz}
		}
		return Region3D{0, -h, 0, nx, h, nz}
	case decomp.North3:
		if interior {
			return Region3D{0, ny - h, 0, nx, h, nz}
		}
		return Region3D{0, ny, 0, nx, h, nz}
	case decomp.Down3:
		if interior {
			return Region3D{0, 0, 0, nx, ny, h}
		}
		return Region3D{0, 0, -h, nx, ny, h}
	case decomp.Up3:
		if interior {
			return Region3D{0, 0, nz - h, nx, ny, h}
		}
		return Region3D{0, 0, nz, nx, ny, h}
	}
	panic(fmt.Sprintf("halo: invalid 3D direction %v", dir))
}

// SendInterior3D is the interior face strip sent by a ghost-fill method.
func SendInterior3D(f *grid.Field3D, dir decomp.Dir3) Region3D {
	return faceSpans(f.NX, f.NY, f.NZ, f.H, dir, true)
}

// RecvGhost3D is the ghost face strip filled by a ghost-fill method.
func RecvGhost3D(f *grid.Field3D, dir decomp.Dir3) Region3D {
	return faceSpans(f.NX, f.NY, f.NZ, f.H, dir, false)
}

// SendGhost3D is the ghost face strip sent by an outflow-delivery method.
func SendGhost3D(f *grid.Field3D, dir decomp.Dir3) Region3D {
	return faceSpans(f.NX, f.NY, f.NZ, f.H, dir, false)
}

// RecvInterior3D is the interior face strip filled by an outflow-delivery
// method.
func RecvInterior3D(f *grid.Field3D, dir decomp.Dir3) Region3D {
	return faceSpans(f.NX, f.NY, f.NZ, f.H, dir, true)
}

// PackSend3D extracts the send regions of every field for face dir into one
// buffer.
func PackSend3D(fields []*grid.Field3D, dir decomp.Dir3, ghostFill bool, buf []float64) []float64 {
	for _, f := range fields {
		var r Region3D
		if ghostFill {
			r = SendInterior3D(f, dir)
		} else {
			r = SendGhost3D(f, dir)
		}
		buf = Extract3D(f, r, buf)
	}
	return buf
}

// UnpackRecv3D injects a PackSend3D buffer from the neighbour at dir.
func UnpackRecv3D(fields []*grid.Field3D, dir decomp.Dir3, ghostFill bool, buf []float64) {
	for _, f := range fields {
		var r Region3D
		if ghostFill {
			r = RecvGhost3D(f, dir)
		} else {
			r = RecvInterior3D(f, dir)
		}
		buf = Inject3D(f, r, buf)
	}
	if len(buf) != 0 {
		panic(fmt.Sprintf("halo: %d leftover values after 3D unpack", len(buf)))
	}
}

// MsgLen3D returns the message length in float64 values for the fields and
// face direction.
func MsgLen3D(fields []*grid.Field3D, dir decomp.Dir3) int {
	n := 0
	for _, f := range fields {
		n += SendInterior3D(f, dir).Len()
	}
	return n
}
