package msg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
)

func TestChanRoundTrip(t *testing.T) {
	hub := NewHub()
	a, b := hub.Join(0), hub.Join(1)
	defer a.Close()
	defer b.Close()

	want := Message{To: 1, Step: 7, Phase: 1, Dir: 3, Data: []float64{1.5, -2.5, 3.25}}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 0 || got.Step != 7 || got.Phase != 1 || got.Dir != 3 {
		t.Errorf("header mismatch: %+v", got)
	}
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Errorf("payload[%d] = %v, want %v", i, got.Data[i], v)
		}
	}
}

func TestChanPayloadIsCopied(t *testing.T) {
	hub := NewHub()
	a, b := hub.Join(0), hub.Join(1)
	defer a.Close()
	defer b.Close()
	buf := []float64{1, 2, 3}
	if err := a.Send(Message{To: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // sender reuses its pack buffer
	got, _ := b.Recv()
	if got.Data[0] != 1 {
		t.Error("transport aliased the sender's buffer")
	}
}

func TestChanSendToUnknownRank(t *testing.T) {
	hub := NewHub()
	a := hub.Join(0)
	defer a.Close()
	if err := a.Send(Message{To: 42}); err == nil {
		t.Error("send to unjoined rank succeeded")
	}
}

func TestChanCloseUnblocksRecv(t *testing.T) {
	hub := NewHub()
	a := hub.Join(0)
	done := make(chan error)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := a.Send(Message{To: 0}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestChanFCFSAcrossPeers(t *testing.T) {
	hub := NewHub()
	r := hub.Join(0)
	defer r.Close()
	const peers = 5
	for p := 1; p <= peers; p++ {
		s := hub.Join(p)
		if err := s.Send(Message{To: 0, Step: p}); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	seen := map[int]bool{}
	for i := 0; i < peers; i++ {
		m, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		seen[m.From] = true
	}
	if len(seen) != peers {
		t.Errorf("received from %d distinct peers, want %d", len(seen), peers)
	}
}

func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	reg, err := registry.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTCP(0, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(1, 0, reg)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	if err := a.Send(Message{To: 1, Step: 3, Phase: 0, Dir: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 0 || got.To != 1 || got.Step != 3 {
		t.Errorf("header mismatch: %+v", got)
	}
	for i := range data {
		if got.Data[i] != data[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got.Data[i], data[i])
		}
	}
}

func TestTCPBidirectionalSingleConnection(t *testing.T) {
	// After a dials b, replies from b to a must flow without b dialing
	// back (the paper's channels are bidirectional FIFOs).
	a, b := newTCPPair(t)
	if err := a.Send(Message{To: 1, Step: 1, Data: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Message{To: 0, Step: 2, Data: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	m, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 1 || m.Step != 2 || m.Data[0] != 2 {
		t.Errorf("reply mismatch: %+v", m)
	}
}

func TestTCPEmptyPayload(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send(Message{To: 1, Step: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Step != 9 || len(m.Data) != 0 {
		t.Errorf("empty-payload message mangled: %+v", m)
	}
}

func TestTCPRing(t *testing.T) {
	// A ring of workers exchanging with both neighbours for several
	// steps: the standard communication pattern of a (P x 1)
	// decomposition.
	const P = 6
	const steps = 20
	reg, err := registry.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]*TCP, P)
	for i := range ts {
		tt, err := NewTCP(i, 0, reg)
		if err != nil {
			t.Fatal(err)
		}
		ts[i] = tt
		defer tt.Close()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, P)
	for i := 0; i < P; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr := ts[rank]
			left, right := (rank+P-1)%P, (rank+1)%P
			for s := 0; s < steps; s++ {
				payload := []float64{float64(rank), float64(s)}
				if err := tr.Send(Message{To: left, Step: s, Dir: 0, Data: payload}); err != nil {
					errCh <- err
					return
				}
				if err := tr.Send(Message{To: right, Step: s, Dir: 1, Data: payload}); err != nil {
					errCh <- err
					return
				}
				for n := 0; n < 2; n++ {
					m, err := tr.Recv()
					if err != nil {
						errCh <- err
						return
					}
					if m.From != left && m.From != right {
						errCh <- fmt.Errorf("rank %d got message from %d", rank, m.From)
						return
					}
					if int(m.Data[0]) != m.From {
						errCh <- fmt.Errorf("rank %d payload/from mismatch", rank)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	reg, _ := registry.New(t.TempDir())
	a, err := NewTCP(0, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestTCPEpochIsolation(t *testing.T) {
	// A transport in epoch 1 must not connect to a peer published only in
	// epoch 0: re-opened channels after migration use fresh addresses.
	reg, _ := registry.New(t.TempDir())
	reg.Poll = time.Millisecond
	a, err := NewTCP(0, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(1, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := reg.Lookup(1, 0, 50*time.Millisecond); err == nil {
		t.Error("epoch-1 lookup found an epoch-0 address")
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	r, w := newPipe()
	go func() {
		w.Write([]byte("this is not a frame header......"))
		w.Close()
	}()
	if _, err := readFrame(r); err == nil {
		t.Error("garbage frame accepted")
	}
}
