// Package msg is the custom messaging layer of section 4.2, replacing the
// paper's UNIX sockets with Go's net package (there is no MPI ecosystem in
// this reproduction; the transports below are the "custom RPC" substitute).
//
// Two transports implement the same interface:
//
//   - TCP: framed messages over real TCP connections on the loopback
//     interface, with the shared-file port registry handshake of the paper
//     ("I am listening at this port number ... Okay, the channel is open").
//     Connections stay open for the life of an epoch and are re-opened
//     after migrations, exactly as in section 4.2.
//
//   - Chan: in-process channels, used by tests and by the single-process
//     parallel runner; it preserves the same first-come-first-served
//     delivery semantics.
//
// Receive is FCFS across all peers (appendix C: asynchronous
// first-come-first-served communication via select outperforms strict
// ordering because delayed processes do not stall the others); the driver
// matches arrived messages to (step, phase, direction) slots itself.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/registry"
)

// Message is one halo-exchange (or control) message between two parallel
// subprocesses.
type Message struct {
	From, To int
	Step     int // integration time step the payload belongs to
	Phase    int // solver phase within the step
	Dir      int // direction code, from the receiver's perspective
	Data     []float64
}

// ErrClosed is returned by Recv and Send after Close.
var ErrClosed = errors.New("msg: transport closed")

// Transport sends and receives messages between ranks.
type Transport interface {
	// Send delivers m to rank m.To. It may block briefly for flow
	// control but never waits for the receiver to call Recv.
	Send(m Message) error
	// Recv blocks until any message arrives (FCFS over all peers).
	Recv() (Message, error)
	// Close tears the transport down; blocked Recv calls return ErrClosed.
	Close() error
}

// queueCap bounds in-flight messages per transport. The un-synchronization
// window of appendix A is (J-1)+(K-1) steps with <= 2 messages per step per
// neighbour, so real runs stay far below this.
const queueCap = 1024

// ---------------------------------------------------------------------------
// Channel transport

// Hub connects a set of in-process Chan transports.
type Hub struct {
	mu    sync.Mutex
	boxes map[int]chan Message
}

// NewHub creates an empty hub; ranks join with Join.
func NewHub() *Hub {
	return &Hub{boxes: make(map[int]chan Message)}
}

// Join registers a rank and returns its transport. Joining an occupied
// rank replaces the mailbox (used when a migrated worker rejoins).
func (h *Hub) Join(rank int) *Chan {
	h.mu.Lock()
	defer h.mu.Unlock()
	box := make(chan Message, queueCap)
	h.boxes[rank] = box
	return &Chan{hub: h, rank: rank, box: box}
}

func (h *Hub) lookup(rank int) (chan Message, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.boxes[rank]
	return c, ok
}

// Chan is the in-process transport of one rank.
type Chan struct {
	hub  *Hub
	rank int
	box  chan Message

	mu     sync.Mutex
	closed bool
}

// Send delivers m to the mailbox of rank m.To. If the destination has not
// joined yet (it may be re-opening its channels after a migration), Send
// waits up to DialTimeout for it, mirroring the TCP transport's dial
// behaviour.
func (c *Chan) Send(m Message) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	box, ok := c.hub.lookup(m.To)
	if !ok {
		deadline := time.Now().Add(DialTimeout)
		for !ok {
			if time.Now().After(deadline) {
				return fmt.Errorf("msg: rank %d not joined within %v", m.To, DialTimeout)
			}
			time.Sleep(time.Millisecond)
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return ErrClosed
			}
			box, ok = c.hub.lookup(m.To)
		}
	}
	m.From = c.rank
	// Copy the payload: the sender reuses its pack buffer.
	m.Data = append([]float64(nil), m.Data...)
	box <- m
	return nil
}

// Recv blocks until a message arrives.
func (c *Chan) Recv() (Message, error) {
	m, ok := <-c.box
	if !ok {
		return Message{}, ErrClosed
	}
	return m, nil
}

// Close closes the mailbox; pending messages are discarded.
func (c *Chan) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.hub.mu.Lock()
	if c.hub.boxes[c.rank] == c.box {
		delete(c.hub.boxes, c.rank)
	}
	c.hub.mu.Unlock()
	close(c.box)
	return nil
}

// ---------------------------------------------------------------------------
// TCP transport

// frame header: magic, from, step, phase, dir, payload length (in values).
const (
	frameMagic  = 0x50415331 // "PAS1", after the paper's author
	headerBytes = 6 * 4
)

// TCP is the real-socket transport. One goroutine per accepted connection
// reads frames into a single receive channel, which is the Go expression of
// the paper's select-based first-come-first-served receive loop.
type TCP struct {
	rank  int
	epoch int
	reg   *registry.Registry
	ln    net.Listener

	recv chan Message

	mu     sync.Mutex
	peers  map[int]*peerConn
	closed bool
	wg     sync.WaitGroup
}

type peerConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes
}

// DialTimeout bounds how long Send waits for a peer to publish its address
// and accept the connection.
const DialTimeout = 10 * time.Second

// NewTCP opens a listener on the loopback interface, publishes its address
// in the shared registry under (epoch, rank), and starts accepting peers.
func NewTCP(rank, epoch int, reg *registry.Registry) (*TCP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("msg: rank %d listen: %w", rank, err)
	}
	if err := reg.Publish(epoch, rank, ln.Addr().String()); err != nil {
		ln.Close()
		return nil, err
	}
	t := &TCP{
		rank:  rank,
		epoch: epoch,
		reg:   reg,
		ln:    ln,
		recv:  make(chan Message, queueCap),
		peers: make(map[int]*peerConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Rank returns the transport's rank (useful after restoring from a dump).
func (t *TCP) Rank() int { return t.rank }

// Addr returns the listening address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Handshake: the dialer announces its rank.
		var hello [4]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			conn.Close()
			continue
		}
		from := int(binary.LittleEndian.Uint32(hello[:]))
		pc := &peerConn{conn: conn}
		t.mu.Lock()
		if old, ok := t.peers[from]; ok {
			old.conn.Close()
		}
		t.peers[from] = pc
		closed := t.closed
		t.mu.Unlock()
		if closed {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	for {
		m, err := readFrame(conn)
		if err != nil {
			return
		}
		m.To = t.rank
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		t.recv <- m
	}
}

// dial returns the connection to a peer, establishing it on first use.
// To keep exactly one bidirectional channel per pair (the paper's FIFO
// channel), the lower rank dials and the higher rank waits for the
// incoming connection; without the tie-break, simultaneous cross-dials
// race and one side's connection gets torn down mid-message.
func (t *TCP) dial(to int) (*peerConn, error) {
	t.mu.Lock()
	if pc, ok := t.peers[to]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	t.mu.Unlock()

	if t.rank > to {
		// The peer dials us; wait for its connection to be accepted.
		deadline := time.Now().Add(DialTimeout)
		for {
			t.mu.Lock()
			pc, ok := t.peers[to]
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return nil, ErrClosed
			}
			if ok {
				return pc, nil
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("msg: rank %d: no connection from rank %d within %v", t.rank, to, DialTimeout)
			}
			time.Sleep(time.Millisecond)
		}
	}

	addr, err := t.reg.Lookup(t.epoch, to, DialTimeout)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("msg: rank %d dial rank %d: %w", t.rank, to, err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(t.rank))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("msg: rank %d handshake with %d: %w", t.rank, to, err)
	}
	pc := &peerConn{conn: conn}
	t.mu.Lock()
	t.peers[to] = pc
	closed := t.closed
	t.mu.Unlock()
	if closed {
		conn.Close()
		return nil, ErrClosed
	}
	// Read responses arriving on the dialed connection too.
	t.wg.Add(1)
	go t.readLoop(conn)
	return pc, nil
}

// Send frames and writes m to rank m.To, dialing on first use.
func (t *TCP) Send(m Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.mu.Unlock()
	pc, err := t.dial(m.To)
	if err != nil {
		return err
	}
	m.From = t.rank
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	return writeFrame(pc.conn, m)
}

// Recv blocks until any peer delivers a message (FCFS).
func (t *TCP) Recv() (Message, error) {
	m, ok := <-t.recv
	if !ok {
		return Message{}, ErrClosed
	}
	return m, nil
}

// Close unpublishes the address, closes the listener and all connections,
// and releases blocked receivers. It is the "close their TCP/IP
// communication channels" step of the migration protocol.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := t.peers
	t.peers = map[int]*peerConn{}
	t.mu.Unlock()

	t.reg.Unpublish(t.epoch, t.rank)
	t.ln.Close()
	for _, pc := range peers {
		pc.conn.Close()
	}
	t.wg.Wait()
	close(t.recv)
	return nil
}

// writeFrame encodes a message as a fixed header plus float64 payload.
func writeFrame(w io.Writer, m Message) error {
	buf := make([]byte, headerBytes+8*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.From))
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(m.Step)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(m.Phase)))
	binary.LittleEndian.PutUint32(buf[16:], uint32(int32(m.Dir)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(m.Data)))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[headerBytes+8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// readFrame decodes one frame.
func readFrame(r io.Reader) (Message, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return Message{}, fmt.Errorf("msg: bad frame magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	m := Message{
		From:  int(binary.LittleEndian.Uint32(hdr[4:])),
		Step:  int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
		Phase: int(int32(binary.LittleEndian.Uint32(hdr[12:]))),
		Dir:   int(int32(binary.LittleEndian.Uint32(hdr[16:]))),
	}
	n := int(binary.LittleEndian.Uint32(hdr[20:]))
	if n < 0 || n > 1<<26 {
		return Message{}, fmt.Errorf("msg: implausible payload length %d", n)
	}
	payload := make([]byte, 8*n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, err
	}
	m.Data = make([]float64, n)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return m, nil
}
