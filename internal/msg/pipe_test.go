package msg

import "io"

// newPipe returns an in-memory reader/writer pair for frame-level tests.
func newPipe() (io.Reader, io.WriteCloser) {
	r, w := io.Pipe()
	return r, w
}
