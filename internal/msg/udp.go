// udp.go implements the appendix-D alternative the paper discusses but
// does not adopt: UDP/IP datagrams. "There is no guaranteed delivery of
// messages. Thus, the distributed program must check that messages are
// delivered, and resend messages if necessary, which is a considerable
// effort. However, the benefit is that the distributed program has more
// control of the communication … [and] robustness in the case of network
// errors that occur under very high network traffic."
//
// This transport does that considerable effort: every data datagram
// carries a per-destination sequence number, the receiver acknowledges
// each one, the sender retransmits unacknowledged datagrams on a timer,
// and duplicates are suppressed on the receive path. Unlike TCP, the
// program knows precisely which data is outstanding at any time — the
// appendix's point about recovering from overload.
package msg

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/registry"
)

const (
	dgramData = 1
	dgramAck  = 2

	// udpMaxPayload bounds one datagram's float64 payload; halo messages
	// are far below a 64 KB datagram (a 300-node side carries ~7 KB).
	udpMaxPayload = 60000

	// DefaultRetransmit is the resend interval for unacknowledged
	// datagrams.
	DefaultRetransmit = 20 * time.Millisecond
)

// UDPStats counts reliability events.
type UDPStats struct {
	Sent          int
	Retransmitted int
	Duplicates    int
	Acked         int
}

// UDP is the datagram transport with program-level reliability.
type UDP struct {
	rank  int
	epoch int
	reg   *registry.Registry
	conn  *net.UDPConn

	recv chan Message

	mu      sync.Mutex
	peers   map[int]*net.UDPAddr
	nextSeq map[int]uint32
	unacked map[string][]byte // key: dest:seq -> encoded datagram
	seen    map[int]map[uint32]bool
	stats   UDPStats
	closed  bool

	// Drop, when non-nil, is a test hook: returning true drops an
	// outgoing data datagram (simulating the lossy network the paper's
	// appendix worries about). Retransmission must still deliver.
	Drop func() bool

	retransmit time.Duration
	wg         sync.WaitGroup
	done       chan struct{}
}

// NewUDP opens a datagram socket on the loopback interface, publishes its
// address under (epoch, rank), and starts the receive and retransmit
// loops.
func NewUDP(rank, epoch int, reg *registry.Registry) (*UDP, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("msg: rank %d udp listen: %w", rank, err)
	}
	if err := reg.Publish(epoch, rank, conn.LocalAddr().String()); err != nil {
		conn.Close()
		return nil, err
	}
	u := &UDP{
		rank:       rank,
		epoch:      epoch,
		reg:        reg,
		conn:       conn,
		recv:       make(chan Message, queueCap),
		peers:      make(map[int]*net.UDPAddr),
		nextSeq:    make(map[int]uint32),
		unacked:    make(map[string][]byte),
		seen:       make(map[int]map[uint32]bool),
		retransmit: DefaultRetransmit,
		done:       make(chan struct{}),
	}
	u.wg.Add(2)
	go u.readLoop()
	go u.retransmitLoop()
	return u, nil
}

// Stats returns the reliability counters.
func (u *UDP) Stats() UDPStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stats
}

func (u *UDP) peerAddr(rank int) (*net.UDPAddr, error) {
	u.mu.Lock()
	if a, ok := u.peers[rank]; ok {
		u.mu.Unlock()
		return a, nil
	}
	u.mu.Unlock()
	s, err := u.reg.Lookup(u.epoch, rank, DialTimeout)
	if err != nil {
		return nil, err
	}
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		return nil, fmt.Errorf("msg: resolving rank %d: %w", rank, err)
	}
	u.mu.Lock()
	u.peers[rank] = a
	u.mu.Unlock()
	return a, nil
}

// encodeData builds a data datagram: kind, seq, then the standard frame.
func encodeData(seq uint32, m Message) []byte {
	buf := make([]byte, 8+headerBytes+8*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:], dgramData)
	binary.LittleEndian.PutUint32(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[8:], frameMagic)
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.From))
	binary.LittleEndian.PutUint32(buf[16:], uint32(int32(m.Step)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(int32(m.Phase)))
	binary.LittleEndian.PutUint32(buf[24:], uint32(int32(m.Dir)))
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(m.Data)))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[8+headerBytes+8*i:], mathFloat64bits(v))
	}
	return buf
}

// Send transmits m as a reliable datagram.
func (u *UDP) Send(m Message) error {
	if 8*len(m.Data) > udpMaxPayload {
		return fmt.Errorf("msg: udp payload %d floats exceeds one datagram", len(m.Data))
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	u.mu.Unlock()
	addr, err := u.peerAddr(m.To)
	if err != nil {
		return err
	}
	m.From = u.rank
	u.mu.Lock()
	seq := u.nextSeq[m.To]
	u.nextSeq[m.To] = seq + 1
	pkt := encodeData(seq, m)
	u.unacked[fmt.Sprintf("%d:%d", m.To, seq)] = append([]byte(nil), pkt...)
	drop := u.Drop != nil && u.Drop()
	u.stats.Sent++
	u.mu.Unlock()

	if !drop {
		if _, err := u.conn.WriteToUDP(pkt, addr); err != nil {
			return fmt.Errorf("msg: udp send to %d: %w", m.To, err)
		}
	}
	// Delivery is guaranteed by the retransmit loop, not this write.
	return nil
}

// Recv blocks until a message arrives (exactly once per sent message).
func (u *UDP) Recv() (Message, error) {
	m, ok := <-u.recv
	if !ok {
		return Message{}, ErrClosed
	}
	return m, nil
}

func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < 8 {
			continue
		}
		kind := binary.LittleEndian.Uint32(buf[0:])
		seq := binary.LittleEndian.Uint32(buf[4:])
		switch kind {
		case dgramAck:
			if n < 12 {
				continue
			}
			acker := int(binary.LittleEndian.Uint32(buf[8:]))
			u.mu.Lock()
			key := fmt.Sprintf("%d:%d", acker, seq)
			if _, ok := u.unacked[key]; ok {
				delete(u.unacked, key)
				u.stats.Acked++
			}
			u.mu.Unlock()
		case dgramData:
			if n < 8+headerBytes {
				continue
			}
			m, err := decodeFrame(buf[8:n])
			if err != nil {
				continue
			}
			m.To = u.rank
			// Acknowledge every receipt, duplicates included: the ack
			// itself may have been lost.
			var ack [12]byte
			binary.LittleEndian.PutUint32(ack[0:], dgramAck)
			binary.LittleEndian.PutUint32(ack[4:], seq)
			binary.LittleEndian.PutUint32(ack[8:], uint32(u.rank))
			u.conn.WriteToUDP(ack[:], from)

			u.mu.Lock()
			if u.closed {
				u.mu.Unlock()
				return
			}
			peerSeen := u.seen[m.From]
			if peerSeen == nil {
				peerSeen = make(map[uint32]bool)
				u.seen[m.From] = peerSeen
			}
			if peerSeen[seq] {
				u.stats.Duplicates++
				u.mu.Unlock()
				continue
			}
			peerSeen[seq] = true
			u.mu.Unlock()
			u.recv <- m
		}
	}
}

func (u *UDP) retransmitLoop() {
	defer u.wg.Done()
	ticker := time.NewTicker(u.retransmit)
	defer ticker.Stop()
	for {
		select {
		case <-u.done:
			return
		case <-ticker.C:
			u.mu.Lock()
			type resend struct {
				pkt []byte
				to  int
			}
			var pending []resend
			for key, pkt := range u.unacked {
				var to, seq int
				fmt.Sscanf(key, "%d:%d", &to, &seq)
				pending = append(pending, resend{pkt: pkt, to: to})
			}
			u.stats.Retransmitted += len(pending)
			u.mu.Unlock()
			for _, r := range pending {
				if addr, err := u.peerAddr(r.to); err == nil {
					u.conn.WriteToUDP(r.pkt, addr)
				}
			}
		}
	}
}

// Close unpublishes the address and stops the loops.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	close(u.done)
	u.reg.Unpublish(u.epoch, u.rank)
	u.conn.Close()
	u.wg.Wait()
	close(u.recv)
	return nil
}

// decodeFrame parses the standard frame layout from a byte slice.
func decodeFrame(b []byte) (Message, error) {
	if binary.LittleEndian.Uint32(b[0:]) != frameMagic {
		return Message{}, fmt.Errorf("msg: bad datagram magic")
	}
	m := Message{
		From:  int(binary.LittleEndian.Uint32(b[4:])),
		Step:  int(int32(binary.LittleEndian.Uint32(b[8:]))),
		Phase: int(int32(binary.LittleEndian.Uint32(b[12:]))),
		Dir:   int(int32(binary.LittleEndian.Uint32(b[16:]))),
	}
	n := int(binary.LittleEndian.Uint32(b[20:]))
	if n < 0 || headerBytes+8*n > len(b) {
		return Message{}, fmt.Errorf("msg: datagram payload length %d outside packet", n)
	}
	m.Data = make([]float64, n)
	for i := range m.Data {
		m.Data[i] = mathFloat64frombits(binary.LittleEndian.Uint64(b[headerBytes+8*i:]))
	}
	return m, nil
}
