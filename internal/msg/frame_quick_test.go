package msg

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestFrameRoundTripProperty: any message survives the TCP frame encoding.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(from uint8, step int16, phase uint8, dir uint8, data []float64) bool {
		in := Message{
			From:  int(from),
			Step:  int(step),
			Phase: int(phase % 8),
			Dir:   int(dir % 8),
			Data:  data,
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, in); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		if out.From != in.From || out.Step != in.Step || out.Phase != in.Phase || out.Dir != in.Dir {
			return false
		}
		if len(out.Data) != len(in.Data) {
			return false
		}
		for i := range in.Data {
			a, b := in.Data[i], out.Data[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDatagramRoundTripProperty: the UDP data-datagram encoding preserves
// messages bit-for-bit too.
func TestDatagramRoundTripProperty(t *testing.T) {
	f := func(seq uint32, from uint8, step int16, data []float64) bool {
		in := Message{From: int(from), Step: int(step), Data: data}
		pkt := encodeData(seq, in)
		out, err := decodeFrame(pkt[8:])
		if err != nil {
			return false
		}
		if out.From != in.From || out.Step != in.Step || len(out.Data) != len(in.Data) {
			return false
		}
		for i := range in.Data {
			a, b := in.Data[i], out.Data[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
