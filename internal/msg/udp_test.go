package msg

import (
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
)

func newUDPPair(t *testing.T) (*UDP, *UDP) {
	t.Helper()
	reg, err := registry.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewUDP(0, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUDP(1, 0, reg)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestUDPRoundTrip(t *testing.T) {
	a, b := newUDPPair(t)
	data := []float64{1.5, -2.25, 1e-300, 0}
	if err := a.Send(Message{To: 1, Step: 5, Phase: 1, Dir: 2, Data: data}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.Step != 5 || m.Phase != 1 || m.Dir != 2 {
		t.Errorf("header mismatch: %+v", m)
	}
	for i := range data {
		if m.Data[i] != data[i] {
			t.Errorf("payload[%d] = %v, want %v", i, m.Data[i], data[i])
		}
	}
	// The ack should land and clear the unacked buffer.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if a.Stats().Acked == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ack never arrived: %+v", a.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUDPRetransmissionDelivers drops every first transmission; the
// retransmit loop must still deliver each message exactly once — the
// "considerable effort" appendix D describes, done.
func TestUDPRetransmissionDelivers(t *testing.T) {
	a, b := newUDPPair(t)
	var mu sync.Mutex
	dropNext := map[int]bool{}
	i := 0
	a.Drop = func() bool {
		mu.Lock()
		defer mu.Unlock()
		i++
		dropNext[i] = true
		return true // drop every initial send; only retransmits get through
	}
	const n = 5
	for k := 0; k < n; k++ {
		if err := a.Send(Message{To: 1, Step: k, Data: []float64{float64(k)}}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]bool{}
	for k := 0; k < n; k++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got[m.Step] {
			t.Fatalf("duplicate delivery of step %d", m.Step)
		}
		got[m.Step] = true
		if m.Data[0] != float64(m.Step) {
			t.Errorf("payload mismatch: %+v", m)
		}
	}
	if st := a.Stats(); st.Retransmitted == 0 {
		t.Error("no retransmissions recorded despite dropped sends")
	}
}

// TestUDPDuplicateSuppression: retransmits of an already-delivered
// datagram (lost ack) must not surface twice.
func TestUDPDuplicateSuppression(t *testing.T) {
	a, b := newUDPPair(t)
	// Shorten the retransmit interval race window by sending normally:
	// the first copy arrives, and before the ack is processed a
	// retransmission may fire; either way b must deliver exactly once.
	for k := 0; k < 20; k++ {
		if err := a.Send(Message{To: 1, Step: k, Data: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for k := 0; k < 20; k++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.Step] {
			t.Fatalf("step %d delivered twice", m.Step)
		}
		seen[m.Step] = true
	}
	// No further deliveries should be pending.
	select {
	case m := <-b.recv:
		t.Fatalf("unexpected extra message: %+v", m)
	case <-time.After(3 * DefaultRetransmit):
	}
}

func TestUDPOversizedPayloadRejected(t *testing.T) {
	a, _ := newUDPPair(t)
	big := make([]float64, udpMaxPayload/8+1)
	if err := a.Send(Message{To: 1, Data: big}); err == nil {
		t.Error("oversized datagram accepted")
	}
}

func TestUDPCloseUnblocksRecv(t *testing.T) {
	reg, _ := registry.New(t.TempDir())
	u, err := NewUDP(0, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() {
		_, err := u.Recv()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	u.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	if err := u.Send(Message{To: 1}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestUDPRing(t *testing.T) {
	const P = 4
	const steps = 10
	reg, err := registry.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	us := make([]*UDP, P)
	for i := range us {
		u, err := NewUDP(i, 0, reg)
		if err != nil {
			t.Fatal(err)
		}
		us[i] = u
		defer u.Close()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, P)
	for i := 0; i < P; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			u := us[rank]
			left, right := (rank+P-1)%P, (rank+1)%P
			for s := 0; s < steps; s++ {
				if err := u.Send(Message{To: left, Step: s, Data: []float64{float64(rank)}}); err != nil {
					errCh <- err
					return
				}
				if err := u.Send(Message{To: right, Step: s, Data: []float64{float64(rank)}}); err != nil {
					errCh <- err
					return
				}
				for n := 0; n < 2; n++ {
					if _, err := u.Recv(); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
