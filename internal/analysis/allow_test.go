package analysis_test

import (
	"go/ast"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"

	// Registers maporder so a directive naming it — a real pass that is
	// not part of this invocation — validates without being a typo.
	_ "repro/internal/analysis/passes/maporder"
)

// allowtest reports every call to boom(); it exists purely to give the
// allow-directive fixture something to suppress.
var allowtest = &analysis.Analyzer{
	Name: "allowtest",
	Doc:  "report calls to boom() so testdata/src/allow can exercise directive matching",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "boom called")
					}
				}
				return true
			})
		}
		return nil
	},
}

func TestAllowDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", allowtest, &analysis.Config{}, "allow")
}
