// Package analysistest runs one analyzer over golden packages under a
// testdata directory and diffs its findings against expectations
// written in the sources, mirroring x/tools' analysistest:
//
//	m := map[string]int{}
//	for k := range m { // want `iteration order is nondeterministic`
//		emit(k)
//	}
//
// A `// want` comment holds one or more Go-quoted regular expressions,
// each of which must match a distinct diagnostic reported on that
// line; diagnostics without a matching want, and wants without a
// matching diagnostic, fail the test.
//
// Golden packages are type-checked against stub imports: each import
// resolves to an empty package, undefined-member errors are ignored,
// and analyzers see exactly the partial type information they must
// tolerate. This keeps the harness hermetic — no export data, no
// GOPATH, no network — which is what lets the suite run in this repo's
// offline build.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes each named package under dir/src, in order, and checks
// the findings against the // want comments in its sources.
//
// Packages share one fact store and one importer: a later package that
// imports an earlier one (by its directory name as import path) sees
// both its real type information and the facts the analyzer exported
// for it, mirroring how cmd/go threads vetx files through a build.
// Order the packages dependency-first.
func Run(t *testing.T, dir string, a *analysis.Analyzer, cfg *analysis.Config, pkgs ...string) {
	t.Helper()
	imp := stubImporter{make(map[string]*types.Package)}
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(dir, "src", pkg), pkg, a, cfg, imp, facts)
		facts.Seal(pkg)
	}
}

// RunFixes analyzes one package, applies every suggested fix, and
// compares each rewritten file byte-for-byte against its committed
// <name>.golden sibling. Files without fixes must have no golden.
func RunFixes(t *testing.T, dir string, a *analysis.Analyzer, cfg *analysis.Config, pkg string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", pkg)
	fset := token.NewFileSet()
	files, err := parseDir(fset, pkgDir)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	diags := analyze(t, fset, files, pkg, a, cfg,
		stubImporter{make(map[string]*types.Package)}, analysis.NewFactStore())
	fixed, err := analysis.ApplyFixes(fset, diags, os.ReadFile)
	if err != nil {
		t.Fatalf("%s: applying fixes: %v", pkg, err)
	}
	for name, got := range fixed {
		golden := name + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("%s: fixes rewrote the file but no golden exists:\n%s", name, got)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("%s: fixed output differs from golden:\n%s",
				name, analysis.Diff(golden, want, got))
		}
	}
	goldens, _ := filepath.Glob(filepath.Join(pkgDir, "*.golden"))
	for _, g := range goldens {
		if _, ok := fixed[strings.TrimSuffix(g, ".golden")]; !ok {
			t.Errorf("%s exists but fixes did not rewrite its source file", g)
		}
	}
}

func runOne(t *testing.T, dir, pkgPath string, a *analysis.Analyzer, cfg *analysis.Config, imp stubImporter, facts *analysis.FactStore) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	diags := analyze(t, fset, files, pkgPath, a, cfg, imp, facts)

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := lineKey{posn.Filename, posn.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

func analyze(t *testing.T, fset *token.FileSet, files []*ast.File, pkgPath string, a *analysis.Analyzer, cfg *analysis.Config, imp stubImporter, facts *analysis.FactStore) []analysis.Diagnostic {
	t.Helper()
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer: imp,
		Error:    func(error) {}, // stub imports guarantee errors; analyzers must cope
	}
	pkg, _ := tc.Check(pkgPath, fset, files, info)
	if pkg != nil {
		// Later fixture packages import this one for real.
		pkg.MarkComplete()
		imp.pkgs[pkgPath] = pkg
	}

	diags, err := analysis.RunFacts(&analysis.Package{
		Fset:  fset,
		Files: files,
		Path:  pkgPath,
		Types: pkg,
		Info:  info,
	}, cfg, []*analysis.Analyzer{a}, facts)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	return diags
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// stubImporter resolves every import to an empty, complete package
// named after the path's last element.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s stubImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := s.pkgs[path]; p != nil {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.pkgs[path] = p
	return p, nil
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantMap map[lineKey][]*want

func (m wantMap) match(key lineKey, message string) bool {
	for _, w := range m[key] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRe is unanchored so an expectation can trail another directive
// in the same comment (e.g. after //detlint:allow ... ).
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) wantMap {
	t.Helper()
	wants := make(wantMap)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Slash)
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", posn, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", posn, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", posn, err)
					}
					key := lineKey{posn.Filename, posn.Line}
					wants[key] = append(wants[key], &want{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
