package errwrap_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errwrap"
)

func TestErrwrap(t *testing.T) {
	cfg := &analysis.Config{ErrorSurface: []string{"a"}}
	analysistest.Run(t, "testdata", errwrap.Analyzer, cfg, "a")
}

// TestFixes applies the %v/%s → %w verb repairs and compares the
// rewritten file byte-for-byte with its golden.
func TestFixes(t *testing.T) {
	cfg := &analysis.Config{ErrorSurface: []string{"fix"}}
	analysistest.RunFixes(t, "testdata", errwrap.Analyzer, cfg, "fix")
}
