package errwrap_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errwrap"
)

func TestErrwrap(t *testing.T) {
	cfg := &analysis.Config{ErrorSurface: []string{"a"}}
	analysistest.Run(t, "testdata", errwrap.Analyzer, cfg, "a")
}
