// Package a is errwrap golden input: the declared-sentinel /
// %w-wrapping / errors.Is contract of a public API package.
package a

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the declared failure modes; errwrap
// never flags their declarations.
var (
	ErrClosed     error = errors.New("farm closed")
	ErrNoCapacity error = errors.New("insufficient capacity")
)

func wrapOK(err error) error {
	return fmt.Errorf("farm: submit: %w", err)
}

func doubleWrapOK(err error) error {
	return fmt.Errorf("farm: %w: %w", ErrClosed, err)
}

func wrapV(err error) error {
	return fmt.Errorf("farm: submit: %v", err) // want `use %w so errors.Is/As still see the sentinel chain`
}

func wrapS(err error) error {
	return fmt.Errorf("farm: %w: %s", ErrClosed, err) // want `use %w so errors.Is/As still see the sentinel chain`
}

func notAnError(n int) error {
	return fmt.Errorf("farm: %d ranks", n)
}

func adHoc() error {
	return errors.New("farm closed") // want `declare a package-level Err sentinel`
}

func compareEq(err error) bool {
	return err == ErrClosed // want `use errors.Is`
}

func compareNeq(err error) bool {
	return err != ErrNoCapacity // want `use errors.Is`
}

func nilChecksPass(err error) bool {
	return err == nil || nil != err
}

func isPass(err error) bool {
	return errors.Is(err, ErrClosed)
}

func allowed(err error) error {
	//detlint:allow errwrap -- golden test: deliberately opaque wrap
	return fmt.Errorf("farm: %v", err)
}
