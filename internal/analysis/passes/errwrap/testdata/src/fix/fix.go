// Package fix is errwrap fix-golden input: fix.go.golden holds the
// byte-for-byte result of the one-character %v/%s → %w verb repairs.
package fix

import "fmt"

func wrapV(err error) error {
	return fmt.Errorf("farm: submit: %v", err)
}

func wrapMixed(base, err error) error {
	return fmt.Errorf("farm: %w: %s", base, err)
}

func wrapFlags(n int, err error) error {
	return fmt.Errorf("farm: rank %03d: %+v", n, err)
}
