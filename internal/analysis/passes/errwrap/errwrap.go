// Package errwrap keeps the public farm error surface checkable with
// errors.Is/As.
//
// The farm API declares its failure modes as sentinels (ErrClosed,
// ErrNoCapacity, ErrInvalidSpec, ErrNotRunning, …) and documents that
// callers dispatch on them with errors.Is. That contract rots in three
// quiet ways, each flagged here:
//
//   - an error formatted into fmt.Errorf with %v or %s instead of %w:
//     the text survives but the chain is cut, so errors.Is stops
//     matching;
//   - an ad-hoc errors.New inside a function body: an anonymous
//     failure mode no caller can test for — declare a package-level
//     sentinel or wrap an existing one;
//   - err == / != comparison against a non-nil error: breaks as soon
//     as anyone wraps the sentinel — use errors.Is.
package errwrap

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"

	"repro/internal/analysis"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "errwrap",
	Doc: "in the public farm API, require %w wrapping in fmt.Errorf, package-level error sentinels, " +
		"and errors.Is instead of == on errors",
	Run: run,
})

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.ErrorSurface, pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, n)
				case *ast.BinaryExpr:
					checkCompare(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	path, name, ok := analysis.CalleeOf(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch {
	case path == "errors" && name == "New":
		pass.Reportf(call.Pos(),
			"errors.New inside a function creates an error no caller can errors.Is against; declare a package-level Err sentinel or wrap one with %%w")
	case path == "fmt" && name == "Errorf":
		checkErrorf(pass, call)
	}
}

// checkErrorf lines the format verbs up with the arguments and flags
// error-typed arguments rendered by anything but %w, attaching the
// one-character %v→%w repair when the format is a plain string
// literal.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 || pass.TypesInfo == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	vs := verbs(constant.StringVal(tv.Value))
	// When the format is written in place as a literal, the same scan
	// over its source text yields the verb offsets for the fix. The two
	// scans agree verb-for-verb unless an escape sequence encodes a '%'
	// — then counts differ and the fix is dropped.
	var srcVerbs []verbAt
	lit, isLit := call.Args[0].(*ast.BasicLit)
	if isLit {
		srcVerbs = verbsAt(lit.Value)
		if len(srcVerbs) != len(vs) {
			srcVerbs = nil
		}
	}
	for i, arg := range call.Args[1:] {
		if i >= len(vs) {
			return // malformed format; govet's printf check owns that
		}
		if vs[i].ch == 'w' {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || !analysis.IsErrorType(atv.Type) {
			continue
		}
		d := analysis.Diagnostic{
			Pos: arg.Pos(),
			Message: fmt.Sprintf(
				"error argument formatted with %%%c; use %%w so errors.Is/As still see the sentinel chain", vs[i].ch),
		}
		if srcVerbs != nil {
			pos := lit.ValuePos + token.Pos(srcVerbs[i].off)
			d.Fixes = append(d.Fixes, analysis.SuggestedFix{
				Message: fmt.Sprintf("replace %%%c with %%w", vs[i].ch),
				Edits:   []analysis.TextEdit{{Pos: pos, End: pos + 1, NewText: "w"}},
			})
		}
		pass.Report(d)
	}
}

// verbAt is one fmt verb: its letter and the byte offset of that
// letter in the scanned string.
type verbAt struct {
	ch  rune
	off int
}

// verbs returns fmt verbs in argument order; '*' width and precision
// arguments appear as '*' entries.
func verbs(format string) []verbAt { return verbsAt(format) }

func verbsAt(format string) []verbAt {
	var out []verbAt
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			switch {
			case c == '%':
				// literal %%
			case c == '*':
				out = append(out, verbAt{'*', i})
				i++
				continue
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || ('0' <= c && c <= '9'):
				i++
				continue
			case c == '[':
				// explicit argument indexes defeat positional
				// matching; bail out for this format.
				return nil
			default:
				out = append(out, verbAt{rune(c), i})
			}
			break
		}
	}
	return out
}

func checkCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if pass.TypesInfo == nil {
		return
	}
	x, okx := pass.TypesInfo.Types[be.X]
	y, oky := pass.TypesInfo.Types[be.Y]
	if !okx || !oky || x.IsNil() || y.IsNil() {
		return
	}
	if analysis.IsErrorType(x.Type) && analysis.IsErrorType(y.Type) {
		pass.Reportf(be.OpPos,
			"errors compared with %s break once a sentinel is wrapped; use errors.Is", be.Op)
	}
}
