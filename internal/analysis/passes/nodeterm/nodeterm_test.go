package nodeterm_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/nodeterm"
)

func TestNodeterm(t *testing.T) {
	cfg := &analysis.Config{Deterministic: []string{"a"}}
	analysistest.Run(t, "testdata", nodeterm.Analyzer, cfg, "a", "b")
}
