// Package nodeterm forbids ambient entropy — wall-clock reads and
// global RNG draws — inside the deterministic simulation packages.
//
// Every replay guarantee in this repo (trace Verify, checkpoint
// restore identity, resize/autoscale replay) holds only if the
// simulation path computes from its declared inputs: spec, seed, and
// the virtual clock. time.Now (and the helpers that call it
// implicitly: Since, Until, After, Sleep, Tick, timers) smuggles the
// host's clock in; math/rand's package-level functions draw from a
// process-global generator seeded outside the checkpoint. Both make a
// replay diverge on a code path no test happens to cover.
//
// Constructing generators (rand.New over a serializable source) is
// deliberately out of scope here — that is strayrng's jurisdiction —
// so a sanctioned rand.New(sched.SplitMix) needs no escape hatch.
package nodeterm

import (
	"go/ast"

	"repro/internal/analysis"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid ambient entropy (wall clock, global RNG) in deterministic packages; " +
		"take time from the virtual clock and randomness from sched.SplitMix",
	Run: run,
})

// ambientTime lists time package functions that read the host clock,
// directly or by arming against it.
var ambientTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// ambientRand lists the math/rand{,/v2} package-level draws backed by
// the process-global generator. Constructors (rand.New over an
// explicit source) and type references are strayrng's jurisdiction.
var ambientRand = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "N": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.Deterministic, pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := analysis.PkgFuncOf(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			switch path {
			case "time":
				if ambientTime[name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the ambient wall clock; deterministic packages take time from the virtual clock or an explicit argument", name)
				}
			case "math/rand", "math/rand/v2":
				if ambientRand[name] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global generator; route randomness through the job's sched.SplitMix substream", name)
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is irreproducible entropy; deterministic packages derive randomness from the seed", name)
			}
			return true
		})
	}
	return nil
}
