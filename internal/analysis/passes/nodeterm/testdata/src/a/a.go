// Package a is nodeterm golden input: ambient clock reads and global
// RNG draws in a deterministic-scope package.
package a

import (
	crand "crypto/rand"
	mrand "math/rand"
	"time"
)

func clock() {
	_ = time.Now()               // want `time.Now reads the ambient wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the ambient wall clock`
	_ = time.Since(time.Time{})  // want `time.Since reads the ambient wall clock`
	_ = time.After(time.Second)  // want `time.After reads the ambient wall clock`
	_ = time.Duration(5)         // durations are values, not clock reads
}

func globalRNG() {
	_ = mrand.Intn(10)     // want `rand.Intn draws from the process-global generator`
	mrand.Shuffle(0, nil)  // want `rand.Shuffle draws from the process-global generator`
	_, _ = crand.Read(nil) // want `crypto/rand.Read is irreproducible entropy`
}

func constructorsAreStrayrngsJob(src mrand.Source) {
	// Building a generator over an explicit source is vetted by
	// strayrng, not here.
	_ = mrand.New(src)
}

func allowed() {
	_ = time.Now() //detlint:allow nodeterm -- golden test: trailing directive suppresses this line

	//detlint:allow nodeterm -- golden test: directive above covers the next line
	_ = time.Now()
}

func malformed() {
	_ = time.Now() //detlint:allow nodeterm // want `detlint:allow needs a reason` `time.Now reads the ambient wall clock`
}

func unknownName() {
	//detlint:allow nodetermz -- typo in the analyzer name // want `unknown analyzer nodetermz`
	_ = time.Now() // want `time.Now reads the ambient wall clock`
}
