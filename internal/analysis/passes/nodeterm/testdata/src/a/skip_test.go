// Test files are exempt: wall-clock timeouts in tests do not touch
// the shipped simulation path.
package a

import "time"

func waitInTest() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
}
