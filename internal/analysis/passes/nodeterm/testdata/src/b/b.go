// Package b is outside the deterministic scope: the same ambient
// entropy draws no findings.
package b

import "time"

func clock() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
}
