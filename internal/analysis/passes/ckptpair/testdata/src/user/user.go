// Package user completes the pair: rec's writes arrive as facts, and
// the C read below has no matching write anywhere, while rec's B write
// has no reader — both reported here, where both sides are in view.
package user // want `field B of rec\.Rec is written by the save side but never read on the restore side`

import "rec"

type App struct {
	a, c int
}

func (ap *App) Load(r *rec.Rec) {
	ap.a = r.A
	ap.c = r.C // want `field C of rec\.Rec is read on the restore side but never written by the save side`
}
