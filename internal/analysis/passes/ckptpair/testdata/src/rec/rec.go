// Package rec is the upstream half of the cross-package fixture: the
// save side lives here, the restore side in package user. Nothing is
// reported here — only the writer half is in view.
package rec

type Rec struct {
	A int
	B int
	C int
}

func Save(a, b int) *Rec {
	return &Rec{A: a, B: b}
}
