package c

type Rec struct {
	A int
	B int
	C int
	D int
	E int
}

type Box struct {
	a, b int
	jobs []int
	rec  Rec
}

// Snapshot is the save side: A and B round-trip, C is written and
// never restored, E is written under an allow (derived on load).
func (b *Box) Snapshot() *Rec {
	return &Rec{
		A: b.a,
		B: b.b,
		C: 3, // want `field C of c\.Rec is written by the save side but never read on the restore side`
		E: 5, //detlint:allow ckptpair -- E is a derived cache, recomputed on restore
	}
}

// Restore is the load side: D is read but nothing ever writes it.
func (b *Box) Restore(r *Rec) {
	b.a = r.A
	b.b = r.B
	b.jobs = append(b.jobs, r.D) // want `field D of c\.Rec is read on the restore side but never written by the save side`
}

// Manifest exercises the self-append mitigation: the right-hand read
// in m.Jobs = append(m.Jobs, j) is part of the mutation and must not
// balance the write.
type Manifest struct {
	Jobs  []int
	Count int
}

func (b *Box) record(m *Manifest, j int) {
	m.Jobs = append(m.Jobs, j) // want `field Jobs of c\.Manifest is written by the save side but never read on the restore side`
	m.Count++
}

func (b *Box) load(m *Manifest) {
	b.a = m.Count
}
