// Package ckptpair balances the two sides of a checkpoint: every
// field of a record struct (config ckpt_records) written on the save
// side must be read on the restore side, and every field the restore
// side consumes must be produced by a save. The drift this catches is
// the silent kind behind the open cross-machine-restore item — a new
// field added to the snapshot writer but never replayed, or a restore
// reading a field nothing populates (always the zero value, quietly).
//
// Each package in ckpt_scope exports, per record type, the set of
// fields it writes and reads, with positions. A package reports the
// imbalance only once both sides are in view — its own accesses merged
// with every dependency's — so the finding lands at the package that
// completes the pair (internal/sched for the ckpt manifest records,
// internal/cluster for its own snapshot).
//
// Mutation-reads do not count as restore reads: in
// m.Jobs = append(m.Jobs, jr), the right-hand m.Jobs is part of the
// write, and letting it self-balance would hide exactly the
// written-never-restored drift the pass exists for.
package ckptpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "ckptpair",
	Doc: "flag checkpoint record fields written by the save side but never read " +
		"on the restore side, and vice versa, across the ckpt_scope packages",
	Run: run,
})

type fact struct {
	// Records maps record type key -> field name -> access positions.
	Writes map[string]map[string][]string `json:"writes,omitempty"`
	Reads  map[string]map[string][]string `json:"reads,omitempty"`
}

type access struct {
	record string
	field  string
	pos    token.Pos
}

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.CkptScope, pass.PkgPath) {
		return nil
	}
	records := make(map[string]bool, len(pass.Config.CkptRecords))
	for _, r := range pass.Config.CkptRecords {
		records[r] = true
	}
	if len(records) == 0 {
		return nil
	}

	writes, reads := collect(pass, records)

	out := fact{Writes: make(map[string]map[string][]string), Reads: make(map[string]map[string][]string)}
	addFact := func(m map[string]map[string][]string, accs []access) {
		for _, a := range accs {
			fm := m[a.record]
			if fm == nil {
				fm = make(map[string][]string)
				m[a.record] = fm
			}
			fm[a.field] = append(fm[a.field], dataflow.Posn(pass.Fset, a.pos))
		}
	}
	addFact(out.Writes, writes)
	addFact(out.Reads, reads)
	if err := pass.ExportFact(&out); err != nil {
		return err
	}

	// Merge every dependency's accesses with our own.
	mergedW := make(map[string]map[string][]string)
	mergedR := make(map[string]map[string][]string)
	merge := func(dst map[string]map[string][]string, src map[string]map[string][]string) {
		for rec, fm := range src {
			d := dst[rec]
			if d == nil {
				d = make(map[string][]string)
				dst[rec] = d
			}
			for f, posns := range fm {
				d[f] = append(d[f], posns...)
			}
		}
	}
	for _, dep := range pass.FactPackages() {
		var f fact
		if ok, err := pass.ImportFact(dep, &f); err != nil {
			return err
		} else if !ok {
			continue
		}
		merge(mergedW, f.Writes)
		merge(mergedR, f.Reads)
	}
	merge(mergedW, out.Writes)
	merge(mergedR, out.Reads)

	// Local positions, for anchoring reports.
	localW := indexLocal(writes)
	localR := indexLocal(reads)

	var recs []string
	for rec := range records {
		recs = append(recs, rec)
	}
	sort.Strings(recs)
	for _, rec := range recs {
		w, r := mergedW[rec], mergedR[rec]
		// Both sides must be in view before imbalance means anything:
		// an upstream package seeing only the writer half stays quiet.
		if len(w) == 0 || len(r) == 0 {
			continue
		}
		for _, f := range sortedFields(w) {
			if _, ok := r[f]; ok {
				continue
			}
			report(pass, localW, rec, f, w[f],
				"field "+f+" of "+rec+" is written by the save side but never read on the restore side")
		}
		for _, f := range sortedFields(r) {
			if _, ok := w[f]; ok {
				continue
			}
			report(pass, localR, rec, f, r[f],
				"field "+f+" of "+rec+" is read on the restore side but never written by the save side")
		}
	}
	return nil
}

// report anchors a finding at a local access position when one exists;
// otherwise — the unbalanced access lives entirely in a dependency —
// at the package clause, citing the remote position.
func report(pass *analysis.Pass, local map[[2]string][]token.Pos, rec, field string, posns []string, msg string) {
	if ps := local[[2]string{rec, field}]; len(ps) > 0 {
		pass.Reportf(ps[0], "%s", msg)
		return
	}
	sort.Strings(posns)
	pass.Reportf(pass.Files[0].Name.Pos(), "%s (at %s)", msg, posns[0])
}

func indexLocal(accs []access) map[[2]string][]token.Pos {
	m := make(map[[2]string][]token.Pos)
	for _, a := range accs {
		key := [2]string{a.record, a.field}
		m[key] = append(m[key], a.pos)
	}
	for _, ps := range m {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	return m
}

func sortedFields(m map[string][]string) []string {
	fields := make([]string, 0, len(m))
	for f := range m {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields
}

// collect walks the package's non-test files for accesses to record
// fields. Writes: assignment left-hand sides, ++/--, and composite
// literal fields (keyed, or all fields for unkeyed literals). Reads:
// every other selector resolving to a record field — except reads of a
// field the same statement assigns, which are part of the mutation.
func collect(pass *analysis.Pass, records map[string]bool) (writes, reads []access) {
	split := func(sel *ast.SelectorExpr) (access, bool) {
		key, ok := dataflow.FieldKey(pass.TypesInfo, sel)
		if !ok {
			return access{}, false
		}
		i := strings.LastIndex(key, ".")
		rec, field := key[:i], key[i+1:]
		if !records[rec] || pass.Allowed(sel.Pos()) {
			return access{}, false
		}
		return access{record: rec, field: field, pos: sel.Sel.Pos()}, true
	}
	// lhsTarget unwraps index/slice/deref around an assignment target.
	lhsTarget := func(e ast.Expr) *ast.SelectorExpr {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				sel, _ := ast.Unparen(e).(*ast.SelectorExpr)
				return sel
			}
		}
	}

	assignLHS := make(map[*ast.SelectorExpr]bool) // selectors that are write targets
	mutated := make(map[ast.Node]map[[2]string]bool)

	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		// First sweep: mark assignment targets and note, per statement,
		// which record fields it writes (for the self-read exemption).
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel := lhsTarget(lhs); sel != nil {
						assignLHS[sel] = true
						if a, ok := split(sel); ok {
							writes = append(writes, a)
							fm := mutated[n]
							if fm == nil {
								fm = make(map[[2]string]bool)
								mutated[n] = fm
							}
							fm[[2]string{a.record, a.field}] = true
						}
					}
				}
			case *ast.IncDecStmt:
				if sel := lhsTarget(n.X); sel != nil {
					assignLHS[sel] = true
					if a, ok := split(sel); ok {
						writes = append(writes, a)
					}
				}
			case *ast.CompositeLit:
				writes = append(writes, litWrites(pass, n, records, split)...)
			}
			return true
		})
		// Second sweep: reads — every record-field selector that is not
		// a write target and not a self-read inside its own mutation.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || assignLHS[sel] {
				return true
			}
			a, ok := split(sel)
			if !ok {
				return true
			}
			for _, anc := range stack {
				if fm := mutated[anc]; fm != nil && fm[[2]string{a.record, a.field}] {
					return true // self-read within the mutation
				}
			}
			reads = append(reads, a)
			return true
		})
	}
	return writes, reads
}

// litWrites treats a composite literal of a record type as the save
// side writing its fields: the named ones for keyed literals, all of
// them for unkeyed.
func litWrites(pass *analysis.Pass, lit *ast.CompositeLit, records map[string]bool, split func(*ast.SelectorExpr) (access, bool)) []access {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	rec := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if !records[rec] {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []access
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
			for _, elt := range lit.Elts {
				kv, okkv := elt.(*ast.KeyValueExpr)
				if !okkv {
					continue
				}
				if id, okid := kv.Key.(*ast.Ident); okid && !pass.Allowed(kv.Pos()) {
					out = append(out, access{record: rec, field: id.Name, pos: kv.Key.Pos()})
				}
			}
			return out
		}
		// Unkeyed: positional, every field is written.
		for i := 0; i < st.NumFields() && i < len(lit.Elts); i++ {
			if !pass.Allowed(lit.Pos()) {
				out = append(out, access{record: rec, field: st.Field(i).Name(), pos: lit.Elts[i].Pos()})
			}
		}
	}
	return out
}
