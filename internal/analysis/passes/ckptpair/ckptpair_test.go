package ckptpair

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCkptPair(t *testing.T) {
	cfg := &analysis.Config{
		CkptScope:   []string{"c"},
		CkptRecords: []string{"c.Rec", "c.Manifest"},
	}
	analysistest.Run(t, "testdata", Analyzer, cfg, "c")
}

// TestCrossPackage: the save side lives in rec, the restore side in
// user; both imbalances surface in user, where the pair completes.
func TestCrossPackage(t *testing.T) {
	cfg := &analysis.Config{
		CkptScope:   []string{"rec", "user"},
		CkptRecords: []string{"rec.Rec"},
	}
	analysistest.Run(t, "testdata", Analyzer, cfg, "rec", "user")
}
