package lockorder

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	cfg := &analysis.Config{LockScope: []string{"l"}}
	analysistest.Run(t, "testdata", Analyzer, cfg, "l")
}

// TestCrossPackage: dep exports the MuX→MuY order edge; kern inverts
// it by holding MuY across a call into dep.
func TestCrossPackage(t *testing.T) {
	cfg := &analysis.Config{LockScope: []string{"dep", "kern"}}
	analysistest.Run(t, "testdata", Analyzer, cfg, "dep", "kern")
}
