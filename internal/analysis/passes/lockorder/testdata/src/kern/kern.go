package kern

import "dep"

// Backward holds MuY across a call that acquires MuX — the opposite of
// dep's established order, visible only through dep's exported facts.
func Backward() {
	dep.MuY.Lock()
	dep.GrabX() // want `call to dep\.GrabX acquires dep\.MuX while holding dep\.MuY, but dep\.BothForward \(.*\) acquires them in the opposite order`
	dep.MuY.Unlock()
}
