// Package dep is the upstream half of the cross-package fixture: it
// establishes the MuX-before-MuY order and exports it as an edge fact.
package dep

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

var MuX, MuY Mutex

func BothForward() {
	MuX.Lock()
	MuY.Lock()
	MuY.Unlock()
	MuX.Unlock()
}

func GrabX() {
	MuX.Lock()
	MuX.Unlock()
}
