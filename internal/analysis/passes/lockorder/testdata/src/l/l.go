package l

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

var a, b Mutex

func AB() {
	a.Lock()
	b.Lock() // want `acquires l\.b while holding l\.a, but l\.BA \(.*\) acquires them in the opposite order`
	b.Unlock()
	a.Unlock()
}

func BA() {
	b.Lock()
	a.Lock() // want `acquires l\.a while holding l\.b, but l\.AB \(.*\) acquires them in the opposite order`
	a.Unlock()
	b.Unlock()
}

type S struct {
	mu   Mutex
	next Mutex
}

// Fine and AlsoFine take the struct locks in the same order; a
// deferred Unlock holds mu to function end without upsetting it.
func (s *S) Fine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next.Lock()
	s.next.Unlock()
}

func (s *S) AlsoFine() {
	s.mu.Lock()
	s.next.Lock()
	s.next.Unlock()
	s.mu.Unlock()
}

// Sequential acquisition after release creates no edge.
func Sequential() {
	b.Lock()
	b.Unlock()
	a.Lock()
	a.Unlock()
}

// Local mutexes have no cross-function identity.
func Local() {
	var mu Mutex
	mu.Lock()
	a.Lock()
	a.Unlock()
	mu.Unlock()
}
